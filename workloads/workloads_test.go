package workloads

import "testing"

func TestWrappersGenerate(t *testing.T) {
	pc := DefaultPTFConfig()
	pc.RaRange, pc.DecRange = 1000, 500
	pc.BaseNights, pc.NumBatches = 1, 2
	pc.DetectionsPerNight = 100
	pc.NumFields, pc.FieldsPerNight = 4, 2
	d, err := GeneratePTF(pc, Real)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Batches) != 2 || d.Base.NumCells() == 0 {
		t.Error("PTF wrapper generation")
	}
	if _, err := GeneratePTFSizes(pc, []int{50, 100}); err != nil {
		t.Fatal(err)
	}

	gc := DefaultGEOConfig()
	gc.LongRange, gc.LatRange = 1000, 500
	gc.NumPOI, gc.NumClusters, gc.NumBatches = 300, 6, 2
	g, err := GenerateGEO(gc, Correlated)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Batches) != 2 {
		t.Error("GEO wrapper generation")
	}

	if _, err := PTF5View(d.Schema, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := PTF25View(d.Schema); err != nil {
		t.Fatal(err)
	}
	if _, err := GEOView(g.Schema); err != nil {
		t.Fatal(err)
	}
	if m, err := ParseMode("periodic"); err != nil || m != Periodic {
		t.Errorf("ParseMode = %v, %v", m, err)
	}
}
