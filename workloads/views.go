package workloads

import (
	arrayview "github.com/arrayview/arrayview"
	"github.com/arrayview/arrayview/internal/workload"
)

// PTF5View builds the paper's PTF-5 "association table": L1(1) similarity
// on (ra, dec) across the previous window time steps, COUNT per detection.
func PTF5View(schema *arrayview.Schema, window int64) (*arrayview.Definition, error) {
	return workload.PTF5View(schema, window)
}

// PTF25View builds the paper's PTF-25 view: L∞(2) on (ra, dec), any time.
func PTF25View(schema *arrayview.Schema) (*arrayview.Definition, error) {
	return workload.PTF25View(schema)
}

// GEOView builds the paper's GEO view: POIs within L∞(1) of each other.
func GEOView(schema *arrayview.Schema) (*arrayview.Definition, error) {
	return workload.GEOView(schema)
}

// CountView builds a COUNT(*) self-join view with the given shape grouped
// by every dimension of the schema.
func CountView(name string, schema *arrayview.Schema, sh *arrayview.Shape) (*arrayview.Definition, error) {
	return workload.CountView(name, schema, sh)
}
