// Package workloads exposes the evaluation dataset generators: the
// synthetic PTF astronomical catalog (sparse 3-D [time, ra, dec]
// detections clustered around nightly telescope pointings) and the
// LinkedGeoData-style GEO dataset (2-D points of interest with Gaussian
// replication), together with batch sequences in the paper's four
// configurations.
package workloads

import (
	"github.com/arrayview/arrayview/internal/workload"
)

// Re-exported workload types.
type (
	// Dataset is a generated base array plus disjoint update batches.
	Dataset = workload.Dataset
	// BatchMode selects how batches relate: Real, Random, Correlated,
	// Periodic.
	BatchMode = workload.BatchMode
	// PTFConfig parameterizes the synthetic PTF catalog.
	PTFConfig = workload.PTFConfig
	// GEOConfig parameterizes the synthetic GEO dataset.
	GEOConfig = workload.GEOConfig
)

// Batch modes.
const (
	// Real batches follow acquisition order (nightly for PTF).
	Real = workload.Real
	// Random batches sample uniformly.
	Random = workload.Random
	// Correlated batches repeat the same spatial footprint.
	Correlated = workload.Correlated
	// Periodic batches cycle three footprints (1,2,3,3,2,1,...).
	Periodic = workload.Periodic
)

// DefaultPTFConfig returns a laptop-scale PTF configuration.
func DefaultPTFConfig() PTFConfig { return workload.DefaultPTFConfig() }

// DefaultGEOConfig returns a laptop-scale GEO configuration.
func DefaultGEOConfig() GEOConfig { return workload.DefaultGEOConfig() }

// GeneratePTF builds the PTF catalog with nightly batches in the given
// mode.
func GeneratePTF(c PTFConfig, mode BatchMode) (*Dataset, error) {
	return workload.GeneratePTF(c, mode)
}

// GeneratePTFSizes builds a PTF catalog with one batch per entry of
// counts (the sensitivity-sweep workload).
func GeneratePTFSizes(c PTFConfig, counts []int) (*Dataset, error) {
	return workload.GeneratePTFSizes(c, counts)
}

// GenerateGEO builds the GEO dataset with batches in the given mode.
func GenerateGEO(c GEOConfig, mode BatchMode) (*Dataset, error) {
	return workload.GenerateGEO(c, mode)
}

// ParseMode parses a batch mode name ("real", "random", "correlated",
// "periodic").
func ParseMode(s string) (BatchMode, error) { return workload.ParseMode(s) }
