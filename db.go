package arrayview

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/query"
)

// DB is a handle to a simulated shared-nothing array database: N worker
// nodes plus a coordinator, a system catalog, and a calibrated cost model.
type DB struct {
	cl *cluster.Cluster
}

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	workers int
	model   *CostModel
}

// WithWorkersPerNode sets each node's worker-thread pool size.
func WithWorkersPerNode(n int) Option {
	return func(c *openConfig) { c.workers = n }
}

// WithCostModel overrides the calibrated Tntwk/Tcpu constants.
func WithCostModel(m CostModel) Option {
	return func(c *openConfig) { c.model = &m }
}

// Open creates a database with numNodes worker nodes.
func Open(numNodes int, opts ...Option) (*DB, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	var clOpts []cluster.Option
	if cfg.workers > 0 {
		clOpts = append(clOpts, cluster.WithWorkersPerNode(cfg.workers))
	}
	if cfg.model != nil {
		clOpts = append(clOpts, cluster.WithCostModel(*cfg.model))
	}
	cl, err := cluster.New(numNodes, clOpts...)
	if err != nil {
		return nil, err
	}
	return &DB{cl: cl}, nil
}

// NumNodes returns the worker count.
func (db *DB) NumNodes() int { return db.cl.NumNodes() }

// Load distributes an array's chunks round-robin in row-major order — the
// paper's default layout. Use LoadWith for other placements.
func (db *DB) Load(a *Array) error {
	return db.cl.LoadArray(a, &cluster.RoundRobin{})
}

// LoadWith distributes an array's chunks with a custom placement.
func (db *DB) LoadWith(a *Array, p Placement) error {
	return db.cl.LoadArray(a, p)
}

// Gather reconstructs a distributed array (base array or view) as a local
// copy.
func (db *DB) Gather(name string) (*Array, error) {
	return db.cl.Gather(name)
}

// ChunkHomes returns, for each node, how many chunks of the named array it
// currently homes — useful for observing reassignment at work.
func (db *DB) ChunkHomes(name string) []int {
	out := make([]int, db.cl.NumNodes())
	for _, key := range db.cl.Catalog().Keys(name) {
		if h, ok := db.cl.Catalog().Home(name, key); ok && h >= 0 {
			out[h]++
		}
	}
	return out
}

// MaterializedView is a view materialized over the cluster together with
// its incremental maintainer.
type MaterializedView struct {
	db         *DB
	def        *Definition
	maintainer *maintain.Maintainer
	engine     *query.Engine
}

// CreateView eagerly materializes the view over the already-loaded base
// array(s), distributes it, and attaches a maintainer with the given
// strategy. A nil params uses DefaultParams.
func (db *DB) CreateView(def *Definition, strategy Strategy, params *Params) (*MaterializedView, error) {
	planner, ok := maintain.Strategies()[string(strategy)]
	if !ok {
		return nil, fmt.Errorf("arrayview: unknown strategy %q", strategy)
	}
	p := maintain.DefaultParams()
	if params != nil {
		p = *params
	}
	if err := maintain.BuildView(db.cl, def, &cluster.RoundRobin{}); err != nil {
		return nil, err
	}
	m, err := maintain.NewMaintainer(db.cl, def, planner, p)
	if err != nil {
		return nil, err
	}
	mv := &MaterializedView{db: db, def: def, maintainer: m}
	if def.SelfJoin() {
		eng, err := query.NewEngine(db.cl, def, p)
		if err != nil {
			return nil, err
		}
		mv.engine = eng
	}
	return mv, nil
}

// Definition returns the view's definition.
func (v *MaterializedView) Definition() *Definition { return v.def }

// Update incrementally maintains the view (and ingests the batch into the
// base array) under a batch of insertions. The batch must be disjoint from
// the base content; use DisjointInsert to validate when unsure.
func (v *MaterializedView) Update(delta *Array) (*Report, error) {
	return v.maintainer.ApplyBatch(delta)
}

// Update2 maintains a two-array view under simultaneous insertions to α
// and/or β (either may be nil).
func (v *MaterializedView) Update2(dAlpha, dBeta *Array) (*Report, error) {
	return v.maintainer.ApplyBatch2(dAlpha, dBeta)
}

// Delete incrementally maintains the view (and the base array) under a
// batch of deletions. Every staged cell must exist in the base; use
// SubsetOf to validate when unsure. Views with MIN/MAX aggregates cannot
// be maintained under deletions.
func (v *MaterializedView) Delete(del *Array) (*Report, error) {
	return v.maintainer.ApplyDelete(del)
}

// Content gathers the current materialized content. Cells hold aggregate
// state tuples; render user-facing values with Values or
// Definition.Output.
func (v *MaterializedView) Content() (*Array, error) {
	return v.db.Gather(v.def.Name)
}

// Values returns the rendered aggregate values at a view cell (ok=false
// for an empty cell). It gathers the owning chunk; for bulk access use
// Content.
func (v *MaterializedView) Values(p Point) ([]float64, bool, error) {
	content, err := v.Content()
	if err != nil {
		return nil, false, err
	}
	t, ok := content.Get(p)
	if !ok {
		return nil, false, nil
	}
	return v.def.Output(t), true, nil
}

// Query answers a similarity join aggregate query with the given shape
// over the base array, using the view when the cost model favours it
// (Section 5). Only available on self-join views.
func (v *MaterializedView) Query(queryShape *Shape, mode QueryMode) (*QueryResult, error) {
	if v.engine == nil {
		return nil, fmt.Errorf("arrayview: query integration requires a self-join view")
	}
	return v.engine.Answer(queryShape, mode)
}

// DecideQuery prices both query evaluation paths without executing either.
func (v *MaterializedView) DecideQuery(queryShape *Shape) (QueryChoice, error) {
	if v.engine == nil {
		return QueryChoice{}, fmt.Errorf("arrayview: query integration requires a self-join view")
	}
	return v.engine.Decide(queryShape)
}

// ChainView is an n-array chain view materialized over the cluster. The
// differential computation runs at the coordinator (the paper's recursive
// n−1 joins); merging the differential into the distributed view reuses
// the cluster's storage paths.
type ChainView struct {
	db     *DB
	chain  *ChainDefinition
	inputs []string
}

// CreateChainView materializes a chain view over already-loaded input
// arrays (named by their schemas) and distributes it round-robin.
func (db *DB) CreateChainView(chain *ChainDefinition) (*ChainView, error) {
	inputs := make([]string, chain.NumInputs())
	arrays := make([]*Array, chain.NumInputs())
	for i, s := range chain.Inputs {
		inputs[i] = s.Name
		a, err := db.Gather(s.Name)
		if err != nil {
			return nil, err
		}
		arrays[i] = a
	}
	v, err := chain.Materialize(arrays)
	if err != nil {
		return nil, err
	}
	if err := db.cl.LoadArray(v, &cluster.RoundRobin{}); err != nil {
		return nil, err
	}
	return &ChainView{db: db, chain: chain, inputs: inputs}, nil
}

// Update maintains the chain view under insertions to the input at
// position k, ingesting the delta into that base array as well. The delta
// must be disjoint from the input's current content.
func (cv *ChainView) Update(k int, delta *Array) error {
	if k < 0 || k >= len(cv.inputs) {
		return fmt.Errorf("arrayview: chain has no position %d", k)
	}
	arrays := make([]*Array, len(cv.inputs))
	for i, name := range cv.inputs {
		a, err := cv.db.Gather(name)
		if err != nil {
			return err
		}
		arrays[i] = a
	}
	dv, err := cv.chain.DeltaInsert(arrays, k, delta)
	if err != nil {
		return err
	}
	// Merge the differential into the distributed view chunk-by-chunk at
	// each chunk's home, then ingest the delta into the input array.
	cat := cv.db.cl.Catalog()
	viewName := cv.chain.Name
	stateSpec := cv.chain.StateDefinition().StateMergeSpec()
	var mergeErr error
	dv.EachChunk(func(c *chunkAlias) bool {
		home, ok := cat.Home(viewName, c.Key())
		if !ok {
			home = (&RoundRobin{}).Place(c.Key(), cv.db.cl.NumNodes())
		}
		if err := cv.db.cl.MergeAt(home, viewName, c, stateSpec); err != nil {
			mergeErr = err
			return false
		}
		merged, err := cv.db.cl.GetAt(home, viewName, c.Key())
		if err != nil {
			mergeErr = err
			return false
		}
		if err := cat.SetChunk(viewName, c.Key(), home, merged.SizeBytes(), merged.NumCells()); err != nil {
			mergeErr = err
			return false
		}
		return true
	})
	if mergeErr != nil {
		return mergeErr
	}
	// Ingest the delta into the base input.
	inputName := cv.inputs[k]
	var ingestErr error
	delta.EachChunk(func(c *chunkAlias) bool {
		home, ok := cat.Home(inputName, c.Key())
		if !ok {
			home = (&RoundRobin{}).Place(c.Key(), cv.db.cl.NumNodes())
		}
		if err := cv.db.cl.MergeAt(home, inputName, c, cluster.MergeSpec{Kind: cluster.MergeCells}); err != nil {
			ingestErr = err
			return false
		}
		merged, err := cv.db.cl.GetAt(home, inputName, c.Key())
		if err != nil {
			ingestErr = err
			return false
		}
		if err := cat.SetChunk(inputName, c.Key(), home, merged.SizeBytes(), merged.NumCells()); err != nil {
			ingestErr = err
			return false
		}
		if bb, ok := merged.BoundingBox(); ok {
			if err := cat.SetChunkBBox(inputName, c.Key(), bb); err != nil {
				ingestErr = err
				return false
			}
		}
		return true
	})
	return ingestErr
}

// Content gathers the chain view's current materialized content.
func (cv *ChainView) Content() (*Array, error) {
	return cv.db.Gather(cv.chain.Name)
}
