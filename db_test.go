package arrayview

import (
	"testing"
)

func demoSchema() *Schema {
	return MustSchema("sky",
		[]Dimension{
			{Name: "x", Start: 0, End: 99, ChunkSize: 10},
			{Name: "y", Start: 0, End: 99, ChunkSize: 10},
		},
		[]Attribute{{Name: "flux", Type: Float64}})
}

func demoArray(t *testing.T) *Array {
	t.Helper()
	a := NewArray(demoSchema())
	pts := []Point{{5, 5}, {5, 6}, {6, 5}, {40, 40}, {41, 41}, {80, 20}}
	for i, p := range pts {
		if err := a.Set(p, Tuple{float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func demoView(t *testing.T) *Definition {
	t.Helper()
	s := demoSchema()
	def, err := NewDefinition("neighbors", s, s,
		Pred(L1(2, 1), nil),
		[]string{"x", "y"},
		[]Aggregate{{Kind: Count, As: "cnt"}, {Kind: Sum, Attr: "flux", As: "fluxsum"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

func TestFacadeEndToEnd(t *testing.T) {
	db, err := Open(4, WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 4 {
		t.Fatal("node count")
	}
	base := demoArray(t)
	if err := db.Load(base); err != nil {
		t.Fatal(err)
	}
	mv, err := db.CreateView(demoView(t), StrategyReassign, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Initial content matches the local reference.
	content, err := mv.Content()
	if err != nil {
		t.Fatal(err)
	}
	want, err := MaterializeLocal(mv.Definition(), base, base)
	if err != nil {
		t.Fatal(err)
	}
	if !content.Equal(want) {
		t.Fatal("initial view content diverges")
	}

	// Values renders COUNT and SUM: cell (5,5) has neighbors (5,6), (6,5)
	// plus itself.
	vals, ok, err := mv.Values(Point{5, 5})
	if err != nil || !ok {
		t.Fatalf("Values: %v %v", ok, err)
	}
	if vals[0] != 3 {
		t.Errorf("cnt at (5,5) = %v, want 3", vals[0])
	}
	if vals[1] != 1+2+3 {
		t.Errorf("fluxsum at (5,5) = %v, want 6", vals[1])
	}
	if _, ok, _ := mv.Values(Point{0, 0}); ok {
		t.Error("empty cell must report ok=false")
	}

	// A batch update.
	delta := NewArray(demoSchema())
	_ = delta.Set(Point{5, 4}, Tuple{10})
	_ = delta.Set(Point{42, 41}, Tuple{20})
	if err := DisjointInsert(base, delta); err != nil {
		t.Fatal(err)
	}
	rep, err := mv.Update(delta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaintenanceSeconds <= 0 || rep.NumUnits == 0 {
		t.Errorf("report: %+v", rep)
	}
	vals, _, err = mv.Values(Point{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 4 {
		t.Errorf("cnt at (5,5) after update = %v, want 4", vals[0])
	}

	// Query integration: L∞(1) from the L1(1) view.
	ans, err := mv.Query(Linf(2, 1), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Choice.UseView {
		t.Error("Δ ratio 4/9 should favour the view")
	}
	got, found := ans.Array.Get(Point{40, 40})
	if !found || got[0] != 2 { // self + diagonal (41,41)
		t.Errorf("query cnt at (40,40) = %v, %v, want 2", got, found)
	}

	ch, err := mv.DecideQuery(Linf(2, 1))
	if err != nil || !ch.UseView {
		t.Errorf("DecideQuery = %+v, %v", ch, err)
	}

	// Chunk home accounting covers all chunks.
	homes := db.ChunkHomes("sky")
	total := 0
	for _, n := range homes {
		total += n
	}
	gathered, _ := db.Gather("sky")
	if total != gathered.NumChunks() {
		t.Errorf("ChunkHomes sums to %d, want %d", total, gathered.NumChunks())
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Open(0); err == nil {
		t.Error("zero nodes must fail")
	}
	db, _ := Open(2)
	if err := db.Load(demoArray(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateView(demoView(t), "nope", nil); err == nil {
		t.Error("unknown strategy must fail")
	}
	bad := DefaultParams()
	bad.Lambda = 7
	if _, err := db.CreateView(demoView(t), StrategyBaseline, &bad); err == nil {
		t.Error("invalid params must fail")
	}
}

func TestFacadeShapeHelpers(t *testing.T) {
	if L1(2, 1).Card() != 5 || Linf(2, 1).Card() != 9 || L2(2, 1).Card() != 5 {
		t.Error("norm ball cardinalities")
	}
	d, err := DeltaShape(L1(2, 1), Linf(2, 1))
	if err != nil || d == nil || d.Card() != 4 {
		t.Errorf("DeltaShape = %v, %v", d, err)
	}
	if same, err := DeltaShape(L1(2, 2), L1(2, 2)); err != nil || same != nil {
		t.Error("identical shapes have nil delta")
	}
	if _, err := DeltaShape(L1(2, 1), L1(3, 1)); err == nil {
		t.Error("arity mismatch must return an error, not panic")
	}
	s, err := ShapeFromOffsets("ring", [][]int64{{0, 1}, {1, 0}, {0, -1}, {-1, 0}})
	if err != nil || s.Card() != 4 {
		t.Errorf("ShapeFromOffsets: %v %v", s, err)
	}
	e, err := EmbedShape(L1(2, 1), 3, []int{1, 2}, map[int][2]int64{0: {-5, 0}})
	if err != nil || e.NumDims() != 3 {
		t.Errorf("EmbedShape: %v %v", e, err)
	}
}

func TestFacadeCostModel(t *testing.T) {
	m := DefaultCostModel()
	if m.Tntwk <= 0 || m.Tcpu <= 0 {
		t.Error("cost model constants must be positive")
	}
	db, err := Open(2, WithCostModel(CostModel{Tntwk: 1, Tcpu: 1}))
	if err != nil {
		t.Fatal(err)
	}
	_ = db
}

func TestFacadeDeleteAndFilters(t *testing.T) {
	db, err := Open(3)
	if err != nil {
		t.Fatal(err)
	}
	base := demoArray(t)
	if err := db.Load(base); err != nil {
		t.Fatal(err)
	}
	def := demoView(t)
	if err := def.SetFilters(nil, []Condition{{Attr: "flux", Op: Le, Value: 5}}); err != nil {
		t.Fatal(err)
	}
	mv, err := db.CreateView(def, StrategyReassign, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (5,5) neighbors under flux<=5: self(1), (5,6)=2, (6,5)=3 → count 3.
	vals, ok, err := mv.Values(Point{5, 5})
	if err != nil || !ok || vals[0] != 3 {
		t.Fatalf("filtered count = %v ok=%v err=%v, want 3", vals, ok, err)
	}
	// Delete (5,6): count drops to 2.
	del := NewArray(demoSchema())
	_ = del.Set(Point{5, 6}, Tuple{2})
	if err := SubsetOf(base, del); err != nil {
		t.Fatal(err)
	}
	if _, err := mv.Delete(del); err != nil {
		t.Fatal(err)
	}
	vals, _, err = mv.Values(Point{5, 5})
	if err != nil || vals[0] != 2 {
		t.Fatalf("count after delete = %v, want 2", vals)
	}
	// The deleted cell's own view entry retracts to zero state.
	vals, ok, _ = mv.Values(Point{5, 6})
	if ok && vals[0] != 0 {
		t.Errorf("deleted cell view = %v, want 0 state", vals)
	}
	// SubsetOf rejects absent cells.
	bad := NewArray(demoSchema())
	_ = bad.Set(Point{0, 0}, Tuple{1})
	gathered, _ := db.Gather("sky")
	if err := SubsetOf(gathered, bad); err == nil {
		t.Error("SubsetOf must reject absent cells")
	}
}

func TestFacadeMinMaxView(t *testing.T) {
	db, _ := Open(2)
	base := demoArray(t)
	if err := db.Load(base); err != nil {
		t.Fatal(err)
	}
	s := demoSchema()
	def, err := NewDefinition("extremes", s, s, Pred(L1(2, 1), nil),
		[]string{"x", "y"},
		[]Aggregate{{Kind: Min, Attr: "flux", As: "fmin"}, {Kind: Max, Attr: "flux", As: "fmax"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := db.CreateView(def, StrategyDifferential, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (5,5): fluxes {1, 2, 3} → min 1, max 3.
	vals, ok, err := mv.Values(Point{5, 5})
	if err != nil || !ok || vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("min/max = %v, want [1 3]", vals)
	}
	// Insert a brighter neighbor; max rises incrementally.
	d := NewArray(s)
	_ = d.Set(Point{4, 5}, Tuple{9})
	if _, err := mv.Update(d); err != nil {
		t.Fatal(err)
	}
	vals, _, _ = mv.Values(Point{5, 5})
	if vals[1] != 9 {
		t.Errorf("max after insert = %v, want 9", vals[1])
	}
	// Deletions are rejected for MIN/MAX views.
	if _, err := mv.Delete(d); err == nil {
		t.Error("MIN/MAX view must reject Delete")
	}
}

func TestFacadeChain(t *testing.T) {
	s := MustSchema("L",
		[]Dimension{{Name: "x", Start: 0, End: 19, ChunkSize: 5}},
		[]Attribute{{Name: "v", Type: Float64}})
	chain, err := NewChain("triples", []*Schema{s, s, s},
		[]JoinPred{Pred(Linf(1, 1), nil), Pred(Linf(1, 1), nil)},
		[]string{"x"}, []Aggregate{{Kind: Count, As: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(pts ...int64) *Array {
		a := NewArray(s)
		for _, x := range pts {
			_ = a.Set(Point{x}, Tuple{float64(x)})
		}
		return a
	}
	inputs := []*Array{mk(1, 2), mk(2, 3), mk(3, 4)}
	v, err := chain.Materialize(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Chains from 2: 2→(2|3)→(3|4 within 1): 2→2→3, 2→3→3, 2→3→4 → count 3.
	tup, ok := v.Get(Point{2})
	if !ok || tup[0] != 3 {
		t.Fatalf("chain count at 2 = %v ok=%v, want 3", tup, ok)
	}
	// Incremental insert at position 2.
	delta := mk(5)
	dv, err := chain.DeltaInsert(inputs, 2, delta)
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeDeltaLocal(chain.StateDefinition(), v, dv); err != nil {
		t.Fatal(err)
	}
	// New chains ending at 5: need middle 4 (absent) → none; verify count
	// unchanged.
	tup, _ = v.Get(Point{2})
	if tup[0] != 3 {
		t.Errorf("count after no-op delta = %v, want 3", tup[0])
	}
}

func TestChainViewOnCluster(t *testing.T) {
	mkSchema := func(name string) *Schema {
		return MustSchema(name,
			[]Dimension{{Name: "x", Start: 0, End: 19, ChunkSize: 5}},
			[]Attribute{{Name: "v", Type: Float64}})
	}
	sa, sb := mkSchema("CA"), mkSchema("CB")
	mk := func(s *Schema, pts ...int64) *Array {
		a := NewArray(s)
		for _, x := range pts {
			_ = a.Set(Point{x}, Tuple{float64(x)})
		}
		return a
	}
	db, err := Open(3)
	if err != nil {
		t.Fatal(err)
	}
	alpha := mk(sa, 1, 5, 9)
	beta := mk(sb, 2, 5, 10)
	if err := db.Load(alpha); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(beta); err != nil {
		t.Fatal(err)
	}
	chain, err := NewChain("pairsV", []*Schema{sa, sb},
		[]JoinPred{Pred(Linf(1, 1), nil)},
		[]string{"x"}, []Aggregate{{Kind: Count, As: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := db.CreateChainView(chain)
	if err != nil {
		t.Fatal(err)
	}
	content, err := cv.Content()
	if err != nil {
		t.Fatal(err)
	}
	// 1→2 (dist 1) ✓; 5→5 ✓; 9→10 ✓.
	for _, x := range []int64{1, 5, 9} {
		if tup, ok := content.Get(Point{x}); !ok || tup[0] != 1 {
			t.Errorf("chain view at %d = %v ok=%v, want 1", x, tup, ok)
		}
	}
	// Insert 4 into β: α cell 5 gains a partner (|4-5| ≤ 1).
	if err := cv.Update(1, mk(sb, 4)); err != nil {
		t.Fatal(err)
	}
	content, err = cv.Content()
	if err != nil {
		t.Fatal(err)
	}
	if tup, _ := content.Get(Point{5}); tup[0] != 2 {
		t.Errorf("chain view at 5 after update = %v, want 2", tup)
	}
	// Verify against full recomputation over the gathered inputs.
	a2, _ := db.Gather("CA")
	b2, _ := db.Gather("CB")
	want, err := chain.Materialize([]*Array{a2, b2})
	if err != nil {
		t.Fatal(err)
	}
	ok := true
	want.EachCell(func(p Point, tup Tuple) bool {
		got, found := content.Get(p)
		if !found || got[0] != tup[0] {
			ok = false
		}
		return ok
	})
	if !ok {
		t.Fatal("chain view diverges from recomputation")
	}
	// Bad position errors.
	if err := cv.Update(7, mk(sb, 3)); err == nil {
		t.Error("bad position must fail")
	}
}

func TestFacadeTwoArrayView(t *testing.T) {
	sa := MustSchema("optical",
		[]Dimension{{Name: "p", Start: 0, End: 29, ChunkSize: 10}},
		[]Attribute{{Name: "mag", Type: Float64}})
	sb := MustSchema("radio",
		[]Dimension{{Name: "p", Start: 0, End: 29, ChunkSize: 6}},
		[]Attribute{{Name: "flux", Type: Float64}})
	db, err := Open(3)
	if err != nil {
		t.Fatal(err)
	}
	alpha := NewArray(sa)
	beta := NewArray(sb)
	for _, x := range []int64{3, 10, 20} {
		_ = alpha.Set(Point{x}, Tuple{float64(x)})
	}
	for _, x := range []int64{4, 11, 25} {
		_ = beta.Set(Point{x}, Tuple{float64(x * 2)})
	}
	if err := db.Load(alpha); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(beta); err != nil {
		t.Fatal(err)
	}
	// Cross-match optical detections against radio sources within 2 cells.
	def, err := NewDefinition("crossmatch", sa, sb,
		Pred(Linf(1, 2), nil),
		[]string{"p"},
		[]Aggregate{{Kind: Count, As: "n"}, {Kind: Sum, Attr: "flux", As: "f"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := db.CreateView(def, StrategyReassign, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals, ok, err := mv.Values(Point{3}) // matches radio 4
	if err != nil || !ok || vals[0] != 1 || vals[1] != 8 {
		t.Fatalf("crossmatch[3] = %v ok=%v err=%v, want [1 8]", vals, ok, err)
	}
	// Insert into both sides simultaneously.
	dA := NewArray(sa)
	_ = dA.Set(Point{24}, Tuple{24})
	dB := NewArray(sb)
	_ = dB.Set(Point{22}, Tuple{44})
	if _, err := mv.Update2(dA, dB); err != nil {
		t.Fatal(err)
	}
	// New optical 24 matches radio 22 (|2|) and 25 (|1|); optical 20
	// gains radio 22.
	vals, _, _ = mv.Values(Point{24})
	if vals[0] != 2 || vals[1] != 44+50 {
		t.Errorf("crossmatch[24] = %v, want [2 94]", vals)
	}
	vals, _, _ = mv.Values(Point{20})
	if vals[0] != 1 || vals[1] != 44 {
		t.Errorf("crossmatch[20] = %v, want [1 44]", vals)
	}
	// Two-array views don't answer Δ-shape queries or self-join deletes.
	if _, err := mv.Query(Linf(1, 1), Auto); err == nil {
		t.Error("two-array view must reject Query")
	}
	if _, err := mv.Delete(dA); err == nil {
		t.Error("two-array view must reject Delete")
	}
}
