// Query integration: answer similarity join queries whose shape differs
// from the view's, showing the Δ-shape construction and the analytical
// cost model's decision for each of the paper's Figure 6 shape pairs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	arrayview "github.com/arrayview/arrayview"
	"github.com/arrayview/arrayview/workloads"
)

func main() {
	schema := arrayview.MustSchema("catalog",
		[]arrayview.Dimension{
			{Name: "ra", Start: 0, End: 1999, ChunkSize: 100},
			{Name: "dec", Start: 0, End: 999, ChunkSize: 50},
		},
		[]arrayview.Attribute{{Name: "mag", Type: arrayview.Float64}})
	base := arrayview.NewArray(schema)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		p := arrayview.Point{rng.Int63n(2000), rng.Int63n(1000)}
		_ = base.Set(p, arrayview.Tuple{14 + rng.Float64()*8})
	}

	pairs := []struct {
		name        string
		view, query *arrayview.Shape
	}{
		{"L1(3)  <- Linf(2)", arrayview.Linf(2, 2), arrayview.L1(2, 3)},
		{"L2(2)  <- Linf(2)", arrayview.Linf(2, 2), arrayview.L2(2, 2)},
		{"Linf(1) <- L1(1)", arrayview.L1(2, 1), arrayview.Linf(2, 1)},
		{"Linf(1) <- Linf(2)", arrayview.Linf(2, 2), arrayview.Linf(2, 1)},
	}
	fmt.Printf("%-20s %-10s %-12s %-12s %s\n", "query <- view", "|Δ|/|q|", "view (s)", "complete (s)", "picked")
	for _, pair := range pairs {
		db, err := arrayview.Open(8)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Load(base); err != nil {
			log.Fatal(err)
		}
		def, err := workloads.CountView("V", schema, pair.view)
		if err != nil {
			log.Fatal(err)
		}
		mv, err := db.CreateView(def, arrayview.StrategyReassign, nil)
		if err != nil {
			log.Fatal(err)
		}

		// The Δ shape drives the decision.
		delta, err := arrayview.DeltaShape(pair.view, pair.query)
		if err != nil {
			log.Fatal(err)
		}
		choice, err := mv.DecideQuery(pair.query)
		if err != nil {
			log.Fatal(err)
		}
		picked := "complete"
		if choice.UseView {
			picked = "view"
		}
		fmt.Printf("%-20s %3d/%-6d %-12.4f %-12.4f %s\n",
			pair.name, delta.Card(), pair.query.Card(),
			choice.ViewCost, choice.CompleteCost, picked)

		// Execute through the chosen path and sanity-check one cell
		// against the forced alternative.
		auto, err := mv.Query(pair.query, arrayview.Auto)
		if err != nil {
			log.Fatal(err)
		}
		forced, err := mv.Query(pair.query, arrayview.ForceComplete)
		if err != nil {
			log.Fatal(err)
		}
		if !agree(auto.Array, forced.Array) {
			log.Fatalf("%s: paths disagree", pair.name)
		}
	}
	fmt.Println("\nall differential answers match the complete joins")
}

// agree compares two aggregate arrays, treating missing cells as zero.
func agree(a, b *arrayview.Array) bool {
	ok := true
	a.EachCell(func(p arrayview.Point, t arrayview.Tuple) bool {
		u, found := b.Get(p)
		if !found {
			ok = t[0] == 0
			return ok
		}
		ok = t[0] == u[0]
		return ok
	})
	return ok
}
