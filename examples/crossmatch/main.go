// Crossmatch: a two-array materialized view joining an optical catalog
// against a radio catalog — the cross-matching operation the paper lists
// among array-specific workloads. Both catalogs receive batches; the view
// is maintained under simultaneous updates to either side.
package main

import (
	"fmt"
	"log"
	"math/rand"

	arrayview "github.com/arrayview/arrayview"
)

func main() {
	optical := arrayview.MustSchema("optical",
		[]arrayview.Dimension{
			{Name: "ra", Start: 0, End: 1999, ChunkSize: 100},
			{Name: "dec", Start: 0, End: 999, ChunkSize: 50},
		},
		[]arrayview.Attribute{{Name: "mag", Type: arrayview.Float64}})
	radio := arrayview.MustSchema("radio",
		[]arrayview.Dimension{
			{Name: "ra", Start: 0, End: 1999, ChunkSize: 100},
			{Name: "dec", Start: 0, End: 999, ChunkSize: 50},
		},
		[]arrayview.Attribute{{Name: "flux", Type: arrayview.Float64}})

	rng := rand.New(rand.NewSource(11))
	fill := func(s *arrayview.Schema, n int, val func() float64) *arrayview.Array {
		a := arrayview.NewArray(s)
		for i := 0; i < n; i++ {
			_ = a.Set(arrayview.Point{rng.Int63n(2000), rng.Int63n(1000)}, arrayview.Tuple{val()})
		}
		return a
	}
	opt := fill(optical, 3000, func() float64 { return 14 + rng.Float64()*8 })
	rad := fill(radio, 800, func() float64 { return rng.Float64() * 100 })

	db, err := arrayview.Open(8)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Load(opt); err != nil {
		log.Fatal(err)
	}
	if err := db.Load(rad); err != nil {
		log.Fatal(err)
	}

	// For every optical detection: how many radio sources lie within
	// L∞(3), and their total flux. Bright-source filter on the radio side.
	def, err := arrayview.NewDefinition("crossmatch", optical, radio,
		arrayview.Pred(arrayview.Linf(2, 3), nil),
		[]string{"ra", "dec"},
		[]arrayview.Aggregate{
			{Kind: arrayview.Count, As: "nradio"},
			{Kind: arrayview.Sum, Attr: "flux", As: "flux"},
			{Kind: arrayview.Max, Attr: "flux", As: "peak"},
		}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := def.SetFilters(nil, []arrayview.Condition{
		{Attr: "flux", Op: arrayview.Ge, Value: 10},
	}); err != nil {
		log.Fatal(err)
	}

	mv, err := db.CreateView(def, arrayview.StrategyReassign, nil)
	if err != nil {
		log.Fatal(err)
	}
	report := func(when string) {
		content, err := mv.Content()
		if err != nil {
			log.Fatal(err)
		}
		matched, totalFlux := 0, 0.0
		content.EachCell(func(_ arrayview.Point, t arrayview.Tuple) bool {
			out := def.Output(t)
			if out[0] > 0 {
				matched++
				totalFlux += out[1]
			}
			return true
		})
		fmt.Printf("%s: %d optical detections matched; total matched flux %.0f\n",
			when, matched, totalFlux)
	}
	report("initial")

	// Nightly batches land on both instruments.
	for night := 1; night <= 3; night++ {
		dOpt := arrayview.NewArray(optical)
		for dOpt.NumCells() < 400 {
			p := arrayview.Point{rng.Int63n(2000), rng.Int63n(1000)}
			if _, ok := opt.Get(p); ok {
				continue
			}
			_ = dOpt.Set(p, arrayview.Tuple{14 + rng.Float64()*8})
			_ = opt.Set(p, arrayview.Tuple{0})
		}
		dRad := arrayview.NewArray(radio)
		for dRad.NumCells() < 100 {
			p := arrayview.Point{rng.Int63n(2000), rng.Int63n(1000)}
			if _, ok := rad.Get(p); ok {
				continue
			}
			_ = dRad.Set(p, arrayview.Tuple{rng.Float64() * 100})
			_ = rad.Set(p, arrayview.Tuple{0})
		}
		rep, err := mv.Update2(dOpt, dRad)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("night %d: +%d optical, +%d radio -> %d join units, maintenance %.4fs\n",
			night, dOpt.NumCells(), dRad.NumCells(), rep.NumUnits, rep.MaintenanceSeconds)
	}
	report("after 3 nights")
}
