// Quickstart: define a 2-D array, materialize a neighbor-count view over a
// 4-node cluster, maintain it incrementally under a batch of insertions,
// and answer a query with a different shape from the view.
package main

import (
	"fmt"
	"log"

	arrayview "github.com/arrayview/arrayview"
)

func main() {
	// A 100x100 sparse array of sky detections with one attribute, chunked
	// into 10x10 tiles.
	schema := arrayview.MustSchema("sky",
		[]arrayview.Dimension{
			{Name: "x", Start: 0, End: 99, ChunkSize: 10},
			{Name: "y", Start: 0, End: 99, ChunkSize: 10},
		},
		[]arrayview.Attribute{{Name: "flux", Type: arrayview.Float64}})

	base := arrayview.NewArray(schema)
	for _, c := range []struct {
		p arrayview.Point
		f float64
	}{
		{arrayview.Point{5, 5}, 1.0},
		{arrayview.Point{5, 6}, 2.0},
		{arrayview.Point{6, 5}, 3.0},
		{arrayview.Point{40, 40}, 4.0},
		{arrayview.Point{41, 41}, 5.0},
		{arrayview.Point{80, 20}, 6.0},
	} {
		if err := base.Set(c.p, arrayview.Tuple{c.f}); err != nil {
			log.Fatal(err)
		}
	}

	// A 4-node shared-nothing database.
	db, err := arrayview.Open(4)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Load(base); err != nil {
		log.Fatal(err)
	}

	// CREATE ARRAY VIEW neighbors AS
	//   SELECT COUNT(*) AS cnt, SUM(flux) AS fluxsum
	//   FROM sky A1 SIMILARITY JOIN sky A2 WITH SHAPE L1(1)
	//   GROUP BY A1.x, A1.y
	def, err := arrayview.NewDefinition("neighbors", schema, schema,
		arrayview.Pred(arrayview.L1(2, 1), nil),
		[]string{"x", "y"},
		[]arrayview.Aggregate{
			{Kind: arrayview.Count, As: "cnt"},
			{Kind: arrayview.Sum, Attr: "flux", As: "fluxsum"},
		}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(def)

	mv, err := db.CreateView(def, arrayview.StrategyReassign, nil)
	if err != nil {
		log.Fatal(err)
	}
	vals, _, err := mv.Values(arrayview.Point{5, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V[5,5] = cnt %.0f, fluxsum %.0f\n", vals[0], vals[1])

	// A batch of new detections, maintained incrementally.
	batch := arrayview.NewArray(schema)
	_ = batch.Set(arrayview.Point{5, 4}, arrayview.Tuple{7.0})
	_ = batch.Set(arrayview.Point{42, 41}, arrayview.Tuple{8.0})
	if err := arrayview.DisjointInsert(base, batch); err != nil {
		log.Fatal(err)
	}
	rep, err := mv.Update(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maintained batch: %d units, %.6fs simulated maintenance, %.6fs planning\n",
		rep.NumUnits, rep.MaintenanceSeconds, rep.OptimizationSeconds)

	vals, _, _ = mv.Values(arrayview.Point{5, 5})
	fmt.Printf("V[5,5] after batch = cnt %.0f, fluxsum %.0f\n", vals[0], vals[1])

	// Query with a different shape: the cost model answers from the view
	// when the Δ shape is smaller than the query shape.
	ans, err := mv.Query(arrayview.Linf(2, 1), arrayview.Auto)
	if err != nil {
		log.Fatal(err)
	}
	path := "complete join"
	if ans.Choice.UseView {
		path = "differential (view + Δ)"
	}
	fmt.Printf("L∞(1) query answered via %s; |Δ|=%d |query|=%d\n",
		path, ans.Choice.DeltaCard, ans.Choice.QueryCard)
	if cnt, ok := ans.Array.Get(arrayview.Point{41, 41}); ok {
		fmt.Printf("query count at (41,41) = %.0f\n", cnt[0])
	}
}
