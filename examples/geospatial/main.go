// Geospatial: maintain a POI-density view over the GEO dataset under
// correlated update batches, and watch the continuous reassignment
// converge — the maintenance time drops batch over batch as the array and
// view chunks migrate toward the update footprint.
package main

import (
	"fmt"
	"log"

	arrayview "github.com/arrayview/arrayview"
	"github.com/arrayview/arrayview/workloads"
)

func main() {
	cfg := workloads.DefaultGEOConfig()
	cfg.LongRange, cfg.LatRange = 4000, 2000
	cfg.NumPOI = 3000
	cfg.NumBatches = 8
	cfg.BatchFraction = 0.01

	series := make(map[arrayview.Strategy][]float64)
	for _, strategy := range []arrayview.Strategy{
		arrayview.StrategyBaseline,
		arrayview.StrategyDifferential,
		arrayview.StrategyReassign,
	} {
		costs, err := run(cfg, strategy)
		if err != nil {
			log.Fatal(err)
		}
		series[strategy] = costs
	}

	fmt.Println("maintenance time per correlated batch (simulated seconds):")
	fmt.Printf("%-6s %-12s %-12s %-12s\n", "batch", "baseline", "differential", "reassign")
	for i := range series[arrayview.StrategyBaseline] {
		fmt.Printf("%-6d %-12.4f %-12.4f %-12.4f\n", i+1,
			series[arrayview.StrategyBaseline][i],
			series[arrayview.StrategyDifferential][i],
			series[arrayview.StrategyReassign][i])
	}
	last := len(series[arrayview.StrategyBaseline]) - 1
	fmt.Printf("\nfinal-batch speedup of reassign over baseline: %.2fx\n",
		series[arrayview.StrategyBaseline][last]/series[arrayview.StrategyReassign][last])
}

func run(cfg workloads.GEOConfig, strategy arrayview.Strategy) ([]float64, error) {
	data, err := workloads.GenerateGEO(cfg, workloads.Correlated)
	if err != nil {
		return nil, err
	}
	db, err := arrayview.Open(8)
	if err != nil {
		return nil, err
	}
	// Hash placement scatters neighboring chunks across nodes — the
	// unfavourable static layout the paper's reassignment escapes from.
	if err := db.LoadWith(data.Base, arrayview.HashPlacement{}); err != nil {
		return nil, err
	}
	def, err := workloads.GEOView(data.Schema)
	if err != nil {
		return nil, err
	}
	mv, err := db.CreateView(def, strategy, nil)
	if err != nil {
		return nil, err
	}
	var costs []float64
	for _, batch := range data.Batches {
		rep, err := mv.Update(batch)
		if err != nil {
			return nil, err
		}
		costs = append(costs, rep.MaintenanceSeconds)
	}
	if strategy == arrayview.StrategyReassign {
		fmt.Printf("GEO chunk homes after reassignment: %v\n", db.ChunkHomes("GEO"))
	}
	return costs, nil
}
