// Astronomy: maintain the PTF "association table" — the paper's production
// use case — under nightly update batches, comparing the baseline plan
// against the three-stage heuristic.
//
// The association table clusters raw candidates within a given distance of
// each other over a time horizon (FoF clustering): an L1(1) similarity
// self-join on (ra, dec) across the previous nights, counted per
// detection.
package main

import (
	"fmt"
	"log"

	arrayview "github.com/arrayview/arrayview"
	"github.com/arrayview/arrayview/workloads"
)

func main() {
	cfg := workloads.DefaultPTFConfig()
	cfg.RaRange, cfg.DecRange = 4000, 2000
	cfg.DetectionsPerNight = 600
	cfg.NumBatches = 8

	for _, strategy := range []arrayview.Strategy{
		arrayview.StrategyBaseline,
		arrayview.StrategyReassign,
	} {
		total, err := runPipeline(cfg, strategy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("strategy %-12s total maintenance %.4fs (simulated)\n\n", strategy, total)
	}
}

func runPipeline(cfg workloads.PTFConfig, strategy arrayview.Strategy) (float64, error) {
	// Each run regenerates the same seeded catalog so strategies are
	// compared on identical data.
	data, err := workloads.GeneratePTF(cfg, workloads.Real)
	if err != nil {
		return 0, err
	}
	fmt.Printf("catalog %s\n", data.Schema)
	fmt.Printf("history: %d detections in %d chunks; %d nightly batches\n",
		data.Base.NumCells(), data.Base.NumChunks(), len(data.Batches))

	db, err := arrayview.Open(8)
	if err != nil {
		return 0, err
	}
	if err := db.Load(data.Base); err != nil {
		return 0, err
	}

	// The association table: similar detections within the previous two
	// nights.
	def, err := workloads.PTF5View(data.Schema, 2*cfg.NightLen)
	if err != nil {
		return 0, err
	}
	mv, err := db.CreateView(def, strategy, nil)
	if err != nil {
		return 0, err
	}

	fmt.Printf("view %s (strategy %s)\n", def.Name, strategy)
	total := 0.0
	for night, batch := range data.Batches {
		rep, err := mv.Update(batch)
		if err != nil {
			return 0, fmt.Errorf("night %d: %w", night+1, err)
		}
		total += rep.MaintenanceSeconds
		fmt.Printf("  night %2d: %5d detections, %4d chunks -> %4d join units, maintenance %.4fs\n",
			night+1, batch.NumCells(), batch.NumChunks(), rep.NumUnits, rep.MaintenanceSeconds)
	}

	// A downstream consumer: how many crowded detections (>= 3 similar
	// neighbors) does the final association table hold?
	content, err := mv.Content()
	if err != nil {
		return 0, err
	}
	crowded := 0
	content.EachCell(func(_ arrayview.Point, t arrayview.Tuple) bool {
		if def.Output(t)[0] >= 3 {
			crowded++
		}
		return true
	})
	fmt.Printf("association table: %d detections, %d crowded (cnt >= 3)\n", content.NumCells(), crowded)

	// Retention: expire the oldest night from the catalog. Deletions are
	// maintained incrementally too — the association table retracts the
	// expired detections' contributions.
	base, err := db.Gather("PTF")
	if err != nil {
		return 0, err
	}
	expire := arrayview.NewArray(data.Schema)
	base.EachCell(func(p arrayview.Point, t arrayview.Tuple) bool {
		if p[0] < cfg.NightLen { // the first night's time slab
			_ = expire.Set(p, t)
		}
		return true
	})
	if expire.NumCells() > 0 {
		rep, err := mv.Delete(expire)
		if err != nil {
			return 0, err
		}
		total += rep.MaintenanceSeconds
		fmt.Printf("expired night 0: %d detections retracted, maintenance %.4fs\n",
			expire.NumCells(), rep.MaintenanceSeconds)
	}
	return total, nil
}
