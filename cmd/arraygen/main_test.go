package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/arrayview/arrayview/internal/arrayio"
)

func TestRunGeneratesReadableFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("geo", "random", dir, 3, true); err != nil {
		t.Fatal(err)
	}
	base, err := os.Open(filepath.Join(dir, "base.arr"))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	a, err := arrayio.Read(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCells() == 0 {
		t.Error("generated base is empty")
	}
	if _, err := os.Stat(filepath.Join(dir, "batch-01.arr")); err != nil {
		t.Errorf("batch file missing: %v", err)
	}
}

func TestRunPTFSmall(t *testing.T) {
	dir := t.TempDir()
	if err := run("ptf", "correlated", dir, 0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "base.arr")); err != nil {
		t.Errorf("base file missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "random", t.TempDir(), 0, true); err == nil {
		t.Error("unknown dataset must fail")
	}
	if err := run("geo", "nope", t.TempDir(), 0, true); err == nil {
		t.Error("unknown mode must fail")
	}
}
