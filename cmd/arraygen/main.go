// Command arraygen emits the synthetic evaluation datasets — base array
// plus the batch sequence — to files in the arrayio format.
//
// Usage:
//
//	arraygen -dataset ptf -mode real -out /tmp/ptf
//	arraygen -dataset geo -mode correlated -out /tmp/geo -seed 42
//
// Output: <out>/base.arr and <out>/batch-<N>.arr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/arrayio"
	"github.com/arrayview/arrayview/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "ptf", "ptf|geo")
		mode    = flag.String("mode", "real", "real|random|correlated|periodic")
		out     = flag.String("out", ".", "output directory")
		seed    = flag.Int64("seed", 0, "override dataset seed")
		small   = flag.Bool("small", false, "generate the test-scale dataset")
	)
	flag.Parse()

	if err := run(*dataset, *mode, *out, *seed, *small); err != nil {
		fmt.Fprintln(os.Stderr, "arraygen:", err)
		os.Exit(1)
	}
}

func run(dataset, modeName, out string, seed int64, small bool) error {
	mode, err := workload.ParseMode(modeName)
	if err != nil {
		return err
	}
	var data *workload.Dataset
	switch dataset {
	case "ptf":
		cfg := workload.DefaultPTFConfig()
		if small {
			cfg.RaRange, cfg.DecRange = 2000, 1000
			cfg.DetectionsPerNight = 250
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		data, err = workload.GeneratePTF(cfg, mode)
	case "geo":
		cfg := workload.DefaultGEOConfig()
		if small {
			cfg.LongRange, cfg.LatRange = 2000, 1000
			cfg.NumPOI = 800
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		data, err = workload.GenerateGEO(cfg, mode)
	default:
		return fmt.Errorf("unknown dataset %q (want ptf or geo)", dataset)
	}
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if err := writeArray(filepath.Join(out, "base.arr"), data.Base); err != nil {
		return err
	}
	for i, b := range data.Batches {
		if err := writeArray(filepath.Join(out, fmt.Sprintf("batch-%02d.arr", i+1)), b); err != nil {
			return err
		}
	}
	fmt.Printf("%s: wrote base (%d cells, %d chunks) and %d batches to %s\n",
		data.Schema, data.Base.NumCells(), data.Base.NumChunks(), len(data.Batches), out)
	return nil
}

func writeArray(path string, a *array.Array) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := arrayio.Write(f, a); err != nil {
		return err
	}
	return f.Close()
}
