package main

import "testing"

func TestRunSingleExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small experiment")
	}
	if err := run("fig3", "GEO", "correlated", "small", 3, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "", "", "small", 0, 0); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := run("fig3", "nope", "", "small", 0, 0); err == nil {
		t.Error("unknown dataset must fail")
	}
	if err := run("fig3", "GEO", "nope", "small", 0, 0); err == nil {
		t.Error("unknown mode must fail")
	}
}
