package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small experiment")
	}
	if err := run("fig3", "GEO", "correlated", "small", 3, 2, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small experiment")
	}
	dir := t.TempDir()
	if err := run("fig3", "GEO", "correlated", "small", 3, 2, dir); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_fig3.json"))
	if err != nil {
		t.Fatal(err)
	}
	var results []map[string]any
	if err := json.Unmarshal(buf, &results); err != nil {
		t.Fatalf("BENCH_fig3.json is not valid JSON: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("BENCH_fig3.json holds no results")
	}
	if _, ok := results[0]["Results"]; !ok {
		t.Error("BENCH_fig3.json results lack the Results field")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "", "", "small", 0, 0, ""); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := run("fig3", "nope", "", "small", 0, 0, ""); err == nil {
		t.Error("unknown dataset must fail")
	}
	if err := run("fig3", "GEO", "nope", "small", 0, 0, ""); err == nil {
		t.Error("unknown mode must fail")
	}
}
