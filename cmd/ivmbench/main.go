// Command ivmbench regenerates the tables and figures of the paper's
// evaluation (Section 6 and Appendix C) on the simulated cluster.
//
// Usage:
//
//	ivmbench -experiment fig3 -dataset PTF-5 -mode correlated
//	ivmbench -experiment all -scale small
//	ivmbench -experiment fig6
//
// Experiments: fig3, fig5, fig6, fig9, fig10a, fig10b, fig10c, ablations,
// all. Datasets: PTF-5, PTF-25, GEO. Modes: real, random, correlated,
// periodic ("real" maps to "random" for GEO, as in the paper).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/arrayview/arrayview/internal/bench"
	"github.com/arrayview/arrayview/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig3|fig5|fig6|fig9|fig10a|fig10b|fig10c|scaling|ablations|all")
		dataset    = flag.String("dataset", "", "PTF-5|PTF-25|GEO (default: every dataset)")
		mode       = flag.String("mode", "", "real|random|correlated|periodic (default: every mode)")
		scale      = flag.String("scale", "default", "default|small")
		nodes      = flag.Int("nodes", 0, "override worker node count (default: 8)")
		seed       = flag.Int64("seed", 0, "override dataset seed")
	)
	flag.Parse()

	if err := run(*experiment, *dataset, *mode, *scale, *nodes, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ivmbench:", err)
		os.Exit(1)
	}
}

func run(experiment, dataset, mode, scale string, nodes int, seed int64) error {
	mkSpec := func(ds bench.Dataset, m workload.BatchMode) bench.Spec {
		var s bench.Spec
		if scale == "small" {
			s = bench.SmallSpec(ds, m)
		} else {
			s = bench.DefaultSpec(ds, m)
		}
		if nodes > 0 {
			s.Nodes = nodes
		}
		if seed != 0 {
			s.PTF.Seed = seed
			s.GEO.Seed = seed
		}
		return s
	}

	datasets := bench.Datasets()
	if dataset != "" {
		ds, err := bench.ParseDataset(dataset)
		if err != nil {
			return err
		}
		datasets = []bench.Dataset{ds}
	}
	modesFor := func(ds bench.Dataset) []workload.BatchMode {
		if mode != "" {
			m, err := workload.ParseMode(mode)
			if err != nil {
				return nil
			}
			return []workload.BatchMode{m}
		}
		if ds == bench.GEO {
			return []workload.BatchMode{workload.Random, workload.Correlated, workload.Periodic}
		}
		return []workload.BatchMode{workload.Real, workload.Correlated, workload.Periodic}
	}

	out := os.Stdout
	perPanel := func(fn func(spec bench.Spec) error) error {
		for _, ds := range datasets {
			ms := modesFor(ds)
			if ms == nil {
				return fmt.Errorf("bad mode %q", mode)
			}
			for _, m := range ms {
				if err := fn(mkSpec(ds, m)); err != nil {
					return err
				}
				fmt.Fprintln(out)
			}
		}
		return nil
	}

	runOne := func(name string) error {
		switch name {
		case "fig3":
			return perPanel(func(s bench.Spec) error { _, err := bench.Fig3(out, s); return err })
		case "fig5":
			return perPanel(func(s bench.Spec) error { _, err := bench.Fig5(out, s); return err })
		case "fig9":
			return perPanel(func(s bench.Spec) error { _, err := bench.Fig9(out, s); return err })
		case "fig6":
			spec := mkSpec(bench.PTF5, workload.Real)
			spec.PTF.NumBatches = 1
			_, err := bench.Fig6(out, spec)
			return err
		case "fig10a":
			sizes := []int{50, 100, 200, 400, 800, 1600}
			if scale == "small" {
				sizes = []int{50, 100, 200}
			}
			_, err := bench.Fig10a(out, mkSpec(bench.PTF25, workload.Real), sizes)
			return err
		case "fig10b":
			total, counts := 4000, []int{1, 2, 5, 10, 20}
			if scale == "small" {
				total, counts = 800, []int{1, 2, 5}
			}
			_, err := bench.Fig10b(out, mkSpec(bench.PTF25, workload.Real), total, counts)
			return err
		case "scaling":
			counts := []int{2, 4, 8, 16, 32}
			if scale == "small" {
				counts = []int{2, 4, 8}
			}
			_, err := bench.Scaling(out, mkSpec(bench.PTF5, workload.Real), counts)
			return err
		case "fig10c":
			_, err := bench.Fig10c(out, mkSpec(bench.PTF25, workload.Real), []float64{0.1, 0.2, 0.8})
			return err
		case "ablations":
			spec := mkSpec(bench.GEO, workload.Correlated)
			if _, err := bench.AblationPairOrder(out, mkSpec(bench.PTF5, workload.Real)); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if _, err := bench.AblationWindow(out, spec, nil); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if _, err := bench.AblationCPUQuota(out, spec, nil); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if _, err := bench.AblationLambda(out, spec, nil); err != nil {
				return err
			}
			fmt.Fprintln(out)
			_, err := bench.AblationCellPruning(out, mkSpec(bench.PTF5, workload.Real))
			return err
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if experiment == "all" {
		for _, name := range []string{"fig3", "fig5", "fig6", "fig9", "fig10a", "fig10b", "fig10c", "scaling", "ablations"} {
			fmt.Fprintf(out, "==== %s ====\n", name)
			if err := runOne(name); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	return runOne(experiment)
}
