// Command ivmbench regenerates the tables and figures of the paper's
// evaluation (Section 6 and Appendix C) on the simulated cluster.
//
// Usage:
//
//	ivmbench -experiment fig3 -dataset PTF-5 -mode correlated
//	ivmbench -experiment all -scale small
//	ivmbench -experiment fig6
//
// Experiments: fig3, fig5, fig6, fig9, fig10a, fig10b, fig10c, scaling,
// ablations, fabric, kernel, chaos, wire, serve, stream, skew, durable,
// all.
// Datasets: PTF-5, PTF-25, GEO.
// Modes: real, random, correlated, periodic ("real" maps to "random" for
// GEO, as in the paper).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/arrayview/arrayview/internal/bench"
	"github.com/arrayview/arrayview/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig3|fig5|fig6|fig9|fig10a|fig10b|fig10c|scaling|ablations|fabric|kernel|chaos|wire|serve|stream|skew|durable|all")
		dataset    = flag.String("dataset", "", "PTF-5|PTF-25|GEO (default: every dataset)")
		mode       = flag.String("mode", "", "real|random|correlated|periodic (default: every mode)")
		scale      = flag.String("scale", "default", "default|small")
		nodes      = flag.Int("nodes", 0, "override worker node count (default: 8)")
		seed       = flag.Int64("seed", 0, "override dataset seed")
		jsonDir    = flag.String("json", "", "also write machine-readable BENCH_<experiment>.json files to this directory")
	)
	flag.Parse()

	if err := run(*experiment, *dataset, *mode, *scale, *nodes, *seed, *jsonDir); err != nil {
		fmt.Fprintln(os.Stderr, "ivmbench:", err)
		os.Exit(1)
	}
}

func run(experiment, dataset, mode, scale string, nodes int, seed int64, jsonDir string) error {
	mkSpec := func(ds bench.Dataset, m workload.BatchMode) bench.Spec {
		var s bench.Spec
		if scale == "small" {
			s = bench.SmallSpec(ds, m)
		} else {
			s = bench.DefaultSpec(ds, m)
		}
		if nodes > 0 {
			s.Nodes = nodes
		}
		if seed != 0 {
			s.PTF.Seed = seed
			s.GEO.Seed = seed
		}
		return s
	}

	datasets := bench.Datasets()
	if dataset != "" {
		ds, err := bench.ParseDataset(dataset)
		if err != nil {
			return err
		}
		datasets = []bench.Dataset{ds}
	}
	modesFor := func(ds bench.Dataset) []workload.BatchMode {
		if mode != "" {
			m, err := workload.ParseMode(mode)
			if err != nil {
				return nil
			}
			return []workload.BatchMode{m}
		}
		if ds == bench.GEO {
			return []workload.BatchMode{workload.Random, workload.Correlated, workload.Periodic}
		}
		return []workload.BatchMode{workload.Real, workload.Correlated, workload.Periodic}
	}

	out := os.Stdout
	// collected gathers every experiment's typed result for -json output,
	// keyed by experiment name.
	collected := make(map[string][]any)
	record := func(name string, v any) { collected[name] = append(collected[name], v) }

	perPanel := func(name string, fn func(spec bench.Spec) (any, error)) error {
		for _, ds := range datasets {
			ms := modesFor(ds)
			if ms == nil {
				return fmt.Errorf("bad mode %q", mode)
			}
			for _, m := range ms {
				r, err := fn(mkSpec(ds, m))
				if err != nil {
					return err
				}
				record(name, r)
				fmt.Fprintln(out)
			}
		}
		return nil
	}

	runOne := func(name string) error {
		switch name {
		case "fig3":
			return perPanel(name, func(s bench.Spec) (any, error) { return bench.Fig3(out, s) })
		case "fig5":
			return perPanel(name, func(s bench.Spec) (any, error) { return bench.Fig5(out, s) })
		case "fig9":
			return perPanel(name, func(s bench.Spec) (any, error) { return bench.Fig9(out, s) })
		case "fabric":
			// Both fabrics: the in-process baseline and the TCP loopback
			// daemons, so the JSON output carries phase breakdowns and
			// per-node counters for each.
			return perPanel(name, func(s bench.Spec) (any, error) {
				local, err := bench.FabricValidation(out, s, false)
				if err != nil {
					return nil, err
				}
				fmt.Fprintln(out)
				tcp, err := bench.FabricValidation(out, s, true)
				if err != nil {
					return nil, err
				}
				return []any{local, tcp}, nil
			})
		case "wire":
			return perPanel(name, func(s bench.Spec) (any, error) { return bench.Wire(out, s) })
		case "fig6":
			spec := mkSpec(bench.PTF5, workload.Real)
			spec.PTF.NumBatches = 1
			r, err := bench.Fig6(out, spec)
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "fig10a":
			sizes := []int{50, 100, 200, 400, 800, 1600}
			if scale == "small" {
				sizes = []int{50, 100, 200}
			}
			r, err := bench.Fig10a(out, mkSpec(bench.PTF25, workload.Real), sizes)
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "fig10b":
			total, counts := 4000, []int{1, 2, 5, 10, 20}
			if scale == "small" {
				total, counts = 800, []int{1, 2, 5}
			}
			r, err := bench.Fig10b(out, mkSpec(bench.PTF25, workload.Real), total, counts)
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "scaling":
			counts := []int{2, 4, 8, 16, 32}
			if scale == "small" {
				counts = []int{2, 4, 8}
			}
			r, err := bench.Scaling(out, mkSpec(bench.PTF5, workload.Real), counts)
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "kernel":
			r, err := bench.Kernel(out)
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "chaos":
			r, err := bench.Chaos(out, mkSpec(bench.GEO, workload.Correlated))
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "durable":
			// WAL-backed durable store: ingest overhead vs in-memory, the
			// recovery ladder, checkpoint compaction, and the seeded
			// crash/fsync/torn-write fault matrix. -dataset may narrow the
			// panel; defaults to PTF-5 real.
			ds := bench.PTF5
			if dataset != "" {
				ds = datasets[0]
			}
			ms := modesFor(ds)
			if ms == nil {
				return fmt.Errorf("bad mode %q", mode)
			}
			r, err := bench.Durable(out, mkSpec(ds, ms[0]))
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "serve":
			// Query serving under live maintenance, both fabrics. One
			// dataset/mode panel: the default, or whatever -dataset/-mode
			// narrowed to.
			ds := bench.PTF5
			if dataset != "" {
				ds = datasets[0]
			}
			ms := modesFor(ds)
			if ms == nil {
				return fmt.Errorf("bad mode %q", mode)
			}
			r, err := bench.Serve(out, mkSpec(ds, ms[0]), 4)
			if err != nil {
				return err
			}
			record(name, r)
			// The repeated-shape mix A/Bs the query fast path: the same
			// schedule served cold and cached, with the per-round oracle
			// audit live.
			mr, err := bench.ServeMix(out, mkSpec(ds, ms[0]), 4, 0)
			if err != nil {
				return err
			}
			record(name, mr)
			return nil
		case "skew":
			// Heavy-light adaptive maintenance on the pointing-skew ladder:
			// all-eager vs adaptive per rung, with the lazy query path, the
			// snapshot audit, a TCP rung, and a streamed rung.
			ds := bench.PTF5
			if dataset != "" {
				ds = datasets[0]
			}
			spec := mkSpec(ds, workload.Real)
			if scale != "small" {
				// Long enough for the periodic pointing cycle (10 batches
				// over 3 nights) to leave its warmup: the adaptive layer's
				// plan scratch and join memo only pay off once footprints
				// and content start repeating.
				spec.PTF.NumBatches = 20
			}
			r, err := bench.Skew(out, spec, 0.8)
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "stream":
			// Batch-vs-streamed trickle ladder on the PTF self-join shape:
			// micro-batch maintenance through the pipelined operator graph,
			// with the snapshot audit live. -dataset may narrow to PTF-25;
			// GEO (two-array) is rejected by the experiment.
			ds := bench.PTF5
			if dataset != "" {
				ds = datasets[0]
			}
			multipliers, trickle, perBatch := []int{1, 2, 4}, 12, 150
			ladder := []int{100, 200, 400, 800}
			if scale == "small" {
				multipliers, trickle, perBatch = []int{1, 2}, 8, 150
				ladder = []int{50, 100, 200}
			}
			r, err := bench.Stream(out, mkSpec(ds, workload.Real), multipliers, trickle, perBatch, ladder)
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "fig10c":
			r, err := bench.Fig10c(out, mkSpec(bench.PTF25, workload.Real), []float64{0.1, 0.2, 0.8})
			if err != nil {
				return err
			}
			record(name, r)
			return nil
		case "ablations":
			spec := mkSpec(bench.GEO, workload.Correlated)
			a1, err := bench.AblationPairOrder(out, mkSpec(bench.PTF5, workload.Real))
			if err != nil {
				return err
			}
			record(name, a1)
			fmt.Fprintln(out)
			a2, err := bench.AblationWindow(out, spec, nil)
			if err != nil {
				return err
			}
			record(name, a2)
			fmt.Fprintln(out)
			a3, err := bench.AblationCPUQuota(out, spec, nil)
			if err != nil {
				return err
			}
			record(name, a3)
			fmt.Fprintln(out)
			a4, err := bench.AblationLambda(out, spec, nil)
			if err != nil {
				return err
			}
			record(name, a4)
			fmt.Fprintln(out)
			a5, err := bench.AblationCellPruning(out, mkSpec(bench.PTF5, workload.Real))
			if err != nil {
				return err
			}
			record(name, a5)
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	runAll := func() error {
		for _, name := range []string{"fig3", "fig5", "fig6", "fig9", "fig10a", "fig10b", "fig10c", "scaling", "ablations"} {
			fmt.Fprintf(out, "==== %s ====\n", name)
			if err := runOne(name); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}

	var err error
	if experiment == "all" {
		err = runAll()
	} else {
		err = runOne(experiment)
	}
	if err != nil {
		return err
	}
	return writeJSON(jsonDir, collected)
}

// writeJSON dumps each experiment's collected results to
// <dir>/BENCH_<experiment>.json. A no-op when dir is empty.
func writeJSON(dir string, collected map[string][]any) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, results := range collected {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return fmt.Errorf("marshaling %s results: %w", name, err)
		}
		path := filepath.Join(dir, "BENCH_"+name+".json")
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
