package main

import "testing"

func TestRunSmallVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small maintenance sequence")
	}
	if err := run("GEO", "", "reassign", 2, true, true, true, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributedSmallVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small maintenance sequence over loopback TCP")
	}
	if err := run("GEO", "", "reassign", 2, true, true, false, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "", "reassign", 1, true, false, false, false, ""); err == nil {
		t.Error("unknown dataset must fail")
	}
	if err := run("GEO", "nope", "reassign", 1, true, false, false, false, ""); err == nil {
		t.Error("unknown mode must fail")
	}
	if err := run("GEO", "", "nope", 1, true, false, false, false, ""); err == nil {
		t.Error("unknown strategy must fail")
	}
	if err := run("GEO", "", "reassign", 1, true, false, false, true, "127.0.0.1:1"); err == nil {
		t.Error("unreachable node daemons must fail")
	}
}
