// Command viewctl is a quick inspection tool: it builds a dataset and
// view, applies batches with a chosen strategy, and prints the plan,
// per-node ledger, and verification status for each batch.
//
// Usage:
//
//	viewctl -dataset PTF-5 -mode correlated -strategy reassign -batches 5
//	viewctl -dataset GEO -strategy baseline -verify
//
// With -serve it is instead a client for an ivmserve daemon started with
// the same dataset flags: -query issues one snapshot-isolated query and
// -stats prints the daemon's health counters.
//
//	viewctl -dataset PTF-5 -serve 127.0.0.1:7420 -query view
//	viewctl -dataset PTF-5 -serve 127.0.0.1:7420 -query linf:2 -qmode complete
//	viewctl -dataset PTF-5 -serve 127.0.0.1:7420 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/bench"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/serve"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/transport"
	"github.com/arrayview/arrayview/internal/view"
	"github.com/arrayview/arrayview/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "PTF-5", "PTF-5|PTF-25|GEO")
		modeName = flag.String("mode", "", "real|random|correlated|periodic")
		strategy = flag.String("strategy", "reassign", "baseline|differential|reassign")
		batches  = flag.Int("batches", 0, "limit number of batches (default: all)")
		small    = flag.Bool("small", true, "use the test-scale dataset")
		verify   = flag.Bool("verify", false, "verify the view against recomputation after each batch")
		expire   = flag.Bool("expire", false, "after the batches, delete the oldest slab and maintain the retraction")
		distrib  = flag.Bool("distributed", false, "run the data plane over TCP node daemons instead of in-process stores")
		connect  = flag.String("connect", "", "comma-separated ivmnode addresses (with -distributed; default: spawn loopback daemons)")
		serveAt  = flag.String("serve", "", "ivmserve daemon address; switches viewctl into query-client mode")
		querySp  = flag.String("query", "", "query shape: \"view\", or kind:radius with kind l1|l2|linf (with -serve)")
		qmode    = flag.String("qmode", "auto", "auto|view|complete (with -serve -query)")
		stats    = flag.Bool("stats", false, "print the serving daemon's health counters (with -serve)")
	)
	flag.Parse()

	var err error
	if *serveAt != "" {
		err = runClient(*dataset, *modeName, *small, *serveAt, *querySp, *qmode, *stats)
	} else {
		err = run(*dataset, *modeName, *strategy, *batches, *small, *verify, *expire, *distrib, *connect)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "viewctl:", err)
		os.Exit(1)
	}
}

// runClient speaks to an ivmserve daemon. The daemon and client must be
// started with the same dataset flags: the view definition (and so the
// result schema) is derived from the deterministic dataset generator rather
// than shipped over the wire.
func runClient(dataset, modeName string, small bool, addr, querySpec, qmode string, stats bool) error {
	ds, err := bench.ParseDataset(dataset)
	if err != nil {
		return err
	}
	mode := workload.Real
	if ds == bench.GEO {
		mode = workload.Random
	}
	if modeName != "" {
		if mode, err = workload.ParseMode(modeName); err != nil {
			return err
		}
	}
	var spec bench.Spec
	if small {
		spec = bench.SmallSpec(ds, mode)
	} else {
		spec = bench.DefaultSpec(ds, mode)
	}
	data, err := spec.Generate()
	if err != nil {
		return err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return err
	}
	c, err := serve.NewClient(addr, def.Schema(), nil)
	if err != nil {
		return err
	}
	defer c.Close()

	if stats {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("epoch=%d pins=%d retained=%d (%d bytes)\n", st.Epoch, st.Pins, st.Retained, st.RetainedBytes)
		fmt.Printf("cache: hits=%d misses=%d rate=%.2f resident=%d bytes\n",
			st.CacheHits, st.CacheMisses, st.HitRate(), st.CacheBytes)
		fmt.Printf("admission: queries=%d rejected=%d\n", st.Queries, st.Rejected)
		a := st.Adaptive
		fmt.Printf("adaptive: heavy=%d light=%d pending=%d chunks (%d cells) deferred=%d lazy-mats=%d drained=%d flips=%d/%d memo=%d/%d hits/misses\n",
			a.HeavyChunks, a.LightChunks, a.PendingChunks, a.PendingCells,
			a.Deferred, a.LazyMats, a.Drained, a.Promotions, a.Demotions,
			a.MemoHits, a.MemoMisses)
		d := st.Durable
		fmt.Printf("durable: commits=%d rollbacks=%d checkpoints=%d wal=%d bytes seg=%d bytes fsyncs=%d\n",
			d.Commits, d.Rollbacks, d.Checkpoints, d.WALBytes, d.SegBytes, d.Syncs)
		fp := st.FastPath
		fmt.Printf("fast path: view=%d/%d hits/misses resident=%d bytes evicted=%d invalidated=%d memo=%d/%d hits/misses solves-skipped=%d\n",
			fp.ViewHits, fp.ViewMisses, fp.ViewBytes, fp.ViewEvictions,
			fp.ViewInvalidations, fp.MemoHits, fp.MemoMisses, fp.SolveSkips)
	}
	if querySpec == "" {
		if !stats {
			return fmt.Errorf("nothing to do: pass -query or -stats with -serve")
		}
		return nil
	}

	sh, err := parseQueryShape(def, querySpec)
	if err != nil {
		return err
	}
	var m query.Mode
	switch qmode {
	case "auto":
		m = query.Auto
	case "view":
		m = query.ForceView
	case "complete":
		m = query.ForceComplete
	default:
		return fmt.Errorf("unknown query mode %q", qmode)
	}
	res, err := c.Query(sh, m)
	if err != nil {
		return err
	}
	path := "complete join"
	if res.UseView {
		path = "differential (via view)"
	}
	fmt.Printf("query %s: %d groups at epoch %d, answered by %s\n",
		sh, res.Array.NumCells(), res.Epoch, path)
	return nil
}

// parseQueryShape resolves the -query flag: "view" (or empty) reuses the
// view's own shape; "l1:R", "l2:R", "linf:R" build an Lp ball of radius R
// over the base array's dimensionality.
func parseQueryShape(def *view.Definition, s string) (*shape.Shape, error) {
	if s == "" || s == "view" {
		return def.Pred.Shape, nil
	}
	kind, radiusStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("bad -query %q: want \"view\" or kind:radius", s)
	}
	r, err := strconv.ParseInt(radiusStr, 10, 64)
	if err != nil || r < 0 {
		return nil, fmt.Errorf("bad -query radius %q", radiusStr)
	}
	dims := len(def.Alpha.Dims)
	switch strings.ToLower(kind) {
	case "l1":
		return shape.L1(dims, r), nil
	case "l2":
		return shape.L2(dims, r), nil
	case "linf":
		return shape.Linf(dims, r), nil
	default:
		return nil, fmt.Errorf("unknown query shape kind %q", kind)
	}
}

func run(dataset, modeName, strategy string, batches int, small, verify, expire, distrib bool, connect string) error {
	ds, err := bench.ParseDataset(dataset)
	if err != nil {
		return err
	}
	mode := workload.Real
	if ds == bench.GEO {
		mode = workload.Random
	}
	if modeName != "" {
		if mode, err = workload.ParseMode(modeName); err != nil {
			return err
		}
	}
	planner, ok := maintain.Strategies()[strategy]
	if !ok {
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	var spec bench.Spec
	if small {
		spec = bench.SmallSpec(ds, mode)
	} else {
		spec = bench.DefaultSpec(ds, mode)
	}

	data, err := spec.Generate()
	if err != nil {
		return err
	}
	var cl *cluster.Cluster
	if distrib {
		cl, err = distributedCluster(spec, connect)
	} else {
		cl, err = spec.Cluster()
	}
	if err != nil {
		return err
	}
	if err := cl.LoadArray(data.Base, &cluster.RoundRobin{}); err != nil {
		return err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return err
	}
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		return err
	}
	m, err := maintain.NewMaintainer(cl, def, planner, spec.Params)
	if err != nil {
		return err
	}

	fmt.Printf("view: %s\n", def)
	fabricName := "in-process"
	if distrib {
		fabricName = "tcp"
	}
	fmt.Printf("cluster: %d nodes (%s fabric); base: %d cells in %d chunks\n\n",
		cl.NumNodes(), fabricName, data.Base.NumCells(), data.Base.NumChunks())

	toRun := data.Batches
	if batches > 0 && batches < len(toRun) {
		toRun = toRun[:batches]
	}
	for i, batch := range toRun {
		rep, err := m.ApplyBatch(batch)
		if err != nil {
			return fmt.Errorf("batch %d: %w", i+1, err)
		}
		fmt.Printf("batch %d: %d cells in %d chunks\n", i+1, batch.NumCells(), batch.NumChunks())
		fmt.Printf("  %s\n", rep.Plan)
		fmt.Printf("  units=%d triples=%d\n", rep.NumUnits, rep.NumTriples)
		fmt.Printf("  maintenance=%.4fs (simulated)  optimization=%.6fs (measured)\n",
			rep.MaintenanceSeconds, rep.OptimizationSeconds)
		fmt.Printf("  ledger: %s\n", rep.Ledger)
		if distrib {
			if s := rep.Trace.String(); s != "" {
				fmt.Printf("  spans: %s\n", s)
			}
		}
		if verify {
			if err := verifyView(cl, def); err != nil {
				return fmt.Errorf("batch %d: %w", i+1, err)
			}
			fmt.Printf("  verified: view equals recomputation\n")
		}
	}
	if expire {
		base, err := cl.Gather(def.Alpha.Name)
		if err != nil {
			return err
		}
		// Retract the cells of the oldest first-dimension slab.
		cut := base.Schema().Dims[0].Start + base.Schema().Dims[0].ChunkSize
		del := array.New(base.Schema())
		base.EachCell(func(p array.Point, tup array.Tuple) bool {
			if p[0] < cut {
				_ = del.Set(p, tup)
			}
			return true
		})
		if del.NumCells() == 0 {
			fmt.Println("expire: nothing to retract")
			return nil
		}
		rep, err := m.ApplyDelete(del)
		if err != nil {
			return fmt.Errorf("expire: %w", err)
		}
		fmt.Printf("expired %d cells: maintenance=%.4fs (simulated)\n", del.NumCells(), rep.MaintenanceSeconds)
		if verify {
			if err := verifyView(cl, def); err != nil {
				return fmt.Errorf("expire: %w", err)
			}
			fmt.Printf("  verified: view equals recomputation\n")
		}
	}
	return nil
}

// distributedCluster builds a cluster whose data plane is a TCPFabric:
// either connected to externally-run ivmnode daemons (connect is a
// comma-separated address list) or to loopback daemons spawned in-process.
func distributedCluster(spec bench.Spec, connect string) (*cluster.Cluster, error) {
	var addrs []string
	if connect != "" {
		for _, a := range strings.Split(connect, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		fmt.Printf("connecting to %d node daemons\n", len(addrs))
	} else {
		lc, err := transport.StartLoopback(spec.Nodes, nil)
		if err != nil {
			return nil, err
		}
		addrs = lc.Addrs
		fmt.Printf("spawned %d loopback node daemons\n", len(addrs))
	}
	fab, err := transport.NewTCPFabric(addrs, transport.DefaultClientConfig())
	if err != nil {
		return nil, err
	}
	return cluster.New(len(addrs),
		cluster.WithWorkersPerNode(spec.Workers), cluster.WithFabric(fab))
}

func verifyView(cl *cluster.Cluster, def *view.Definition) error {
	base, err := cl.Gather(def.Alpha.Name)
	if err != nil {
		return err
	}
	got, err := cl.Gather(def.Name)
	if err != nil {
		return err
	}
	want, err := view.Materialize(def, base, base)
	if err != nil {
		return err
	}
	// Retractions can leave zero-state cells that a recomputation omits;
	// treat those as equal to absent.
	equal := true
	check := func(x, y *array.Array) {
		x.EachCell(func(p array.Point, tup array.Tuple) bool {
			other, found := y.Get(p)
			if !found {
				for _, v := range tup {
					if v != 0 {
						equal = false
						return false
					}
				}
				return true
			}
			for i := range tup {
				if other[i] != tup[i] {
					equal = false
					return false
				}
			}
			return true
		})
	}
	check(got, want)
	check(want, got)
	if !equal {
		return fmt.Errorf("view diverges from recomputation")
	}
	return nil
}
