// Command ivmnode runs one worker node daemon: an empty chunk store served
// over the cluster's TCP framing protocol. A coordinator (viewctl
// -distributed, or any program using a transport.TCPFabric) connects to a
// set of these and drives loads, transfers, joins, and merges against them.
//
// Usage:
//
//	ivmnode -listen :7070
//	ivmnode -listen 127.0.0.1:0 -idle-timeout 10m
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/arrayview/arrayview/internal/storage"
	"github.com/arrayview/arrayview/internal/transport"
)

func main() {
	var (
		listen       = flag.String("listen", ":7070", "listen address (host:port; :0 picks a free port)")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "close connections idle for this long (0 disables)")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline (0 disables)")
		statsEvery   = flag.Duration("stats", 0, "periodically print store stats (0 disables)")
		metrics      = flag.String("metrics", "", "serve JSON metrics over HTTP on this address (host:port; empty disables)")
	)
	flag.Parse()

	if err := run(*listen, *metrics, *idleTimeout, *writeTimeout, *statsEvery); err != nil {
		fmt.Fprintln(os.Stderr, "ivmnode:", err)
		os.Exit(1)
	}
}

func run(listen, metrics string, idleTimeout, writeTimeout, statsEvery time.Duration) error {
	cfg := &transport.ServerConfig{IdleTimeout: idleTimeout, WriteTimeout: writeTimeout}
	if idleTimeout == 0 {
		cfg.IdleTimeout = -1
	}
	if writeTimeout == 0 {
		cfg.WriteTimeout = -1
	}
	store := storage.NewStore()
	srv := transport.NewNodeServer(store, cfg)
	if err := srv.Listen(listen); err != nil {
		return err
	}
	fmt.Printf("ivmnode: serving on %s\n", srv.Addr())

	if metrics != "" {
		ms, err := transport.StartMetrics(metrics, srv)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ms.Close()
		fmt.Printf("ivmnode: metrics on http://%s\n", ms.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if statsEvery > 0 {
		ticker = time.NewTicker(statsEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-tick:
			fmt.Printf("ivmnode: %d chunks, %d bytes\n", store.NumChunks(), store.Bytes())
		case sig := <-stop:
			// Graceful: stop accepting, give in-flight requests a grace
			// window to finish and their responses to flush, then close.
			fmt.Printf("ivmnode: %v, draining\n", sig)
			srv.Drain(2 * time.Second)
			return srv.Close()
		}
	}
}
