package main

import (
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/bench"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/wal"
	"github.com/arrayview/arrayview/internal/workload"
)

// SIGTERM mid-workload loses zero committed batches: the daemon drains the
// in-flight batch, fsyncs the WAL, and exits; reopening the data directory
// recovers exactly the batches whose commits it had acknowledged.
func TestSigtermLosesNoCommittedBatches(t *testing.T) {
	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- run("PTF-5", "", "reassign", true, false, "",
			"127.0.0.1:0", "", dir, 120*time.Millisecond, false, false, 0, 0, 0, 0, 0, 0, false)
	}()
	// Let some batches commit, then terminate mid-workload. run's
	// signal.Notify intercepts the process-wide SIGTERM.
	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}

	spec := bench.SmallSpec(bench.PTF5, workload.Real)
	_, rec, err := wal.Open(wal.NewOSFS(dir), spec.Nodes, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec == nil {
		t.Fatal("no durable state survived shutdown")
	}
	if rec.Kind != "commit" {
		t.Fatalf("last barrier is a %s, want commit", rec.Kind)
	}
	data, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		t.Fatal(err)
	}
	k := int(rec.Applied)
	if k > len(data.Batches) {
		t.Fatalf("recovered applied cursor %d for %d batches", k, len(data.Batches))
	}
	if rec.Seq < rec.Applied {
		t.Fatalf("barrier seq %d behind applied cursor %d", rec.Seq, rec.Applied)
	}

	got, err := spec.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Install(got); err != nil {
		t.Fatalf("install: %v", err)
	}

	// Clean replay of exactly the k acknowledged batches, with the
	// daemon's own setup.
	want, err := spec.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if err := want.LoadArray(data.Base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	if err := maintain.BuildView(want, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	m, err := maintain.NewMaintainer(want, def, maintain.Strategies()["reassign"], spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := m.ApplyBatch(data.Batches[i]); err != nil {
			t.Fatalf("clean replay batch %d: %v", i, err)
		}
	}
	for _, name := range []string{def.Alpha.Name, def.Name} {
		g, err := got.Gather(name)
		if err != nil {
			t.Fatalf("gather recovered %s: %v", name, err)
		}
		w, err := want.Gather(name)
		if err != nil {
			t.Fatalf("gather replay %s: %v", name, err)
		}
		if !cellEqual(g, w) {
			t.Fatalf("%s: recovered state does not match clean replay of the %d acknowledged batches", name, k)
		}
	}

	// Restart on the same directory: the daemon recovers, resumes after
	// batch k, and finishes the workload.
	go func() {
		done <- run("PTF-5", "", "reassign", true, false, "",
			"127.0.0.1:0", "", dir, 10*time.Millisecond, false, false, 0, 0, 0, 0, 0, 0, false)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		time.Sleep(200 * time.Millisecond)
		_, rec2, err := wal.Open(wal.NewOSFS(dir), spec.Nodes, wal.Options{})
		if err == nil && rec2 != nil && int(rec2.Applied) >= len(data.Batches) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted daemon never finished the remaining batches")
		}
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("restarted daemon exited with: %v", err)
	}
}

func cellEqual(a, b *array.Array) bool {
	if a.NumCells() != b.NumCells() {
		return false
	}
	same := true
	a.EachCell(func(p array.Point, tup array.Tuple) bool {
		got, ok := b.Get(p)
		if !ok || len(got) != len(tup) {
			same = false
			return false
		}
		for i := range tup {
			if got[i] != tup[i] {
				same = false
				return false
			}
		}
		return true
	})
	return same
}
