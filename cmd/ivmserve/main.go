// Command ivmserve is the query-serving daemon: it builds (or connects to)
// a cluster, loads a dataset, materializes the view, and then answers
// shape-based similarity-join queries over the transport frame protocol at
// snapshot isolation — while applying maintenance batches in the
// background. Point viewctl -serve at it to query.
//
// Usage:
//
//	ivmserve -dataset PTF-5 -listen :7420 -interval 500ms
//	ivmserve -dataset PTF-5 -stream -interval 100ms
//	ivmserve -dataset GEO -distributed -listen 127.0.0.1:7420
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/bench"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/serve"
	"github.com/arrayview/arrayview/internal/stream"
	"github.com/arrayview/arrayview/internal/transport"
	"github.com/arrayview/arrayview/internal/view"
	"github.com/arrayview/arrayview/internal/wal"
	"github.com/arrayview/arrayview/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "PTF-5", "PTF-5|PTF-25|GEO")
		modeName = flag.String("mode", "", "real|random|correlated|periodic")
		strategy = flag.String("strategy", "reassign", "baseline|differential|reassign")
		small    = flag.Bool("small", true, "use the test-scale dataset")
		distrib  = flag.Bool("distributed", false, "run the data plane over TCP node daemons instead of in-process stores")
		connect  = flag.String("connect", "", "comma-separated ivmnode addresses (with -distributed; default: spawn loopback daemons)")
		listen   = flag.String("listen", "127.0.0.1:7420", "query-serving listen address")
		interval = flag.Duration("interval", 500*time.Millisecond, "delay between background maintenance batches (0 disables maintenance)")
		streamed = flag.Bool("stream", false, "maintain through the pipelined streaming graph instead of batch-at-a-time (self-join views only)")
		adaptive = flag.Bool("adaptive", false, "heavy-light adaptive maintenance: eager hot chunks, lazy cold chunks materialized on query touch (self-join views only)")
		metrics  = flag.String("metrics", "", "serve JSON health metrics over HTTP on this address (host:port; empty disables)")
		batches  = flag.Int("batches", 0, "limit background batches (default: all, then idle)")
		conc     = flag.Int("concurrency", 0, "max concurrent queries (default 8)")
		queue    = flag.Int("queue", 0, "admission queue depth (default 2x concurrency)")
		qtimeout = flag.Duration("qtimeout", 0, "per-query deadline (default 30s)")
		dataDir  = flag.String("data-dir", "", "WAL-backed durable chunk store directory; recovers committed state on startup (in-process stores only)")
		vcache   = flag.Int64("view-cache", 0, "assembled-view cache budget in bytes (default 256MiB; negative disables view caching)")
		joinW    = flag.Int("join-workers", 0, "snapshot-join fan-out width (default GOMAXPROCS; 1 forces serial)")
		coldPath = flag.Bool("no-fastpath", false, "disable the query fast path (view cache, plan memo, parallel joins)")
	)
	flag.Parse()

	if err := run(*dataset, *modeName, *strategy, *small, *distrib, *connect,
		*listen, *metrics, *dataDir, *interval, *streamed, *adaptive, *batches, *conc, *queue, *qtimeout,
		*vcache, *joinW, *coldPath); err != nil {
		fmt.Fprintln(os.Stderr, "ivmserve:", err)
		os.Exit(1)
	}
}

func run(dataset, modeName, strategy string, small, distrib bool, connect,
	listen, metrics, dataDir string, interval time.Duration, streamed, adaptive bool, batches, conc, queue int, qtimeout time.Duration,
	vcache int64, joinWorkers int, noFastPath bool) error {
	if dataDir != "" && distrib {
		return fmt.Errorf("-data-dir journals in-process stores; it cannot be combined with -distributed")
	}
	ds, err := bench.ParseDataset(dataset)
	if err != nil {
		return err
	}
	mode := workload.Real
	if ds == bench.GEO {
		mode = workload.Random
	}
	if modeName != "" {
		if mode, err = workload.ParseMode(modeName); err != nil {
			return err
		}
	}
	planner, ok := maintain.Strategies()[strategy]
	if !ok {
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	var spec bench.Spec
	if small {
		spec = bench.SmallSpec(ds, mode)
	} else {
		spec = bench.DefaultSpec(ds, mode)
	}

	data, err := spec.Generate()
	if err != nil {
		return err
	}
	// With -data-dir the chunk stores are WAL-backed: an earlier run's
	// committed state is recovered before serving, and every commit from
	// here on is durable against kill -9.
	var dur *wal.Durable
	var rec *wal.Recovered
	if dataDir != "" {
		if dur, rec, err = wal.Open(wal.NewOSFS(dataDir), spec.Nodes, wal.Options{}); err != nil {
			return fmt.Errorf("durable store: %w", err)
		}
	}
	var cl *cluster.Cluster
	if distrib {
		cl, err = distributedCluster(spec, connect)
	} else {
		cl, err = spec.Cluster()
	}
	if err != nil {
		return err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return err
	}
	applied := 0
	if rec != nil {
		if err := rec.Install(cl); err != nil {
			return fmt.Errorf("recovery: %w", err)
		}
		// The recovered catalog already holds the base, the view, and the
		// pending log; resume the input feed at the durable applied-batch
		// cursor. Barrier Seq is NOT a batch index — adaptive and streamed
		// maintenance write extra barriers (deferred-delta appends,
		// materializations, rollback/retry pairs) — so only retiring
		// barriers advance Applied.
		applied = int(rec.Applied)
		if applied > len(data.Batches) {
			applied = len(data.Batches)
		}
		fmt.Printf("recovered %s at barrier %d (%s), %d batches applied, epoch %d\n",
			dataDir, rec.Seq, rec.Kind, rec.Applied, rec.Epoch)
	} else {
		if err := cl.LoadArray(data.Base, &cluster.RoundRobin{}); err != nil {
			return err
		}
		if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
			return err
		}
	}
	if dur != nil {
		if err := dur.Attach(cl); err != nil {
			return fmt.Errorf("durable store: %w", err)
		}
	}
	if streamed && !def.SelfJoin() {
		return fmt.Errorf("-stream supports self-join views only (use a PTF dataset)")
	}
	if adaptive && !def.SelfJoin() {
		return fmt.Errorf("-adaptive supports self-join views only (use a PTF dataset)")
	}
	m, err := maintain.NewMaintainer(cl, def, planner, spec.Params)
	if err != nil {
		return err
	}
	eng, err := query.NewEngine(cl, def, spec.Params)
	if err != nil {
		return err
	}
	// With -adaptive, hot chunks maintain eagerly, cold-chunk deltas defer
	// to the pending log, and the serving path materializes them before
	// pinning a snapshot — queries stay exact, cold maintenance becomes
	// pay-on-read.
	var am *maintain.AdaptiveMaintainer
	counters := &obs.AdaptiveCounters{}
	if adaptive {
		cfg := maintain.DefaultAdaptiveConfig()
		cfg.Project = maintain.DropDims(0)
		cfg.Counters = counters
		am, err = maintain.NewAdaptiveMaintainer(cl, def, planner, spec.Params, cfg)
		if err != nil {
			return err
		}
		eng.Fresh = am.EnsureFresh
	}

	srv := serve.NewServer(eng, &serve.Config{
		MaxConcurrent:   conc,
		QueueDepth:      queue,
		QueryTimeout:    qtimeout,
		ViewCacheBytes:  vcache,
		JoinWorkers:     joinWorkers,
		DisableFastPath: noFastPath,
	})
	if am != nil {
		srv.SetFresh(am.EnsureFresh, counters)
	}
	if dur != nil {
		srv.SetDurable(dur.Counters())
	}
	if err := srv.Listen(listen); err != nil {
		return err
	}
	defer srv.Close()
	if metrics != "" {
		ms, err := serve.StartMetrics(metrics, srv)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s\n", ms.Addr())
	}
	fmt.Printf("view: %s\n", def)
	fmt.Printf("cluster: %d nodes; base: %d cells in %d chunks\n",
		cl.NumNodes(), data.Base.NumCells(), data.Base.NumChunks())
	fmt.Printf("serving queries on %s at epoch %d\n", srv.Addr(), cl.Epochs().Current())

	// Background maintenance: each batch commits and publishes a new epoch
	// while queries keep answering against their pinned snapshots.
	stop := make(chan struct{})
	maintDone := make(chan struct{})
	go func() {
		defer close(maintDone)
		if interval <= 0 {
			return
		}
		toRun := data.Batches
		if batches > 0 && batches < len(toRun) {
			toRun = toRun[:batches]
		}
		total := len(toRun)
		if applied >= total {
			toRun = nil
		} else {
			toRun = toRun[applied:]
		}
		if streamed {
			runStreamed(cl, def, planner, am, spec, toRun, applied, total, interval, stop)
			return
		}
		for i, b := range toRun {
			n := applied + i + 1
			select {
			case <-stop:
				return
			case <-time.After(interval):
			}
			var before uint64
			if dur != nil {
				before = dur.Applied()
			}
			if am != nil {
				if rep, err := am.ApplyBatch(b); err != nil {
					fmt.Fprintf(os.Stderr, "ivmserve: batch %d failed (rolled back): %v\n", n, err)
				} else {
					fmt.Printf("batch %d/%d committed; epoch %d (%d eager, %d deferred)\n",
						n, total, cl.Epochs().Current(), rep.HeavyChunks, rep.LightChunks)
				}
			} else if _, err := m.ApplyBatch(b); err != nil {
				fmt.Fprintf(os.Stderr, "ivmserve: batch %d failed (rolled back): %v\n", n, err)
			} else {
				fmt.Printf("batch %d/%d committed; epoch %d\n", n, total, cl.Epochs().Current())
			}
			if dur != nil && dur.Applied() == before {
				// The batch terminated without a retiring barrier — it
				// failed (rolled back) or was a no-op that wrote no barrier
				// at all. Record the skip so a restart resumes after it
				// rather than replaying it against state that has moved on.
				if err := dur.RetireBarrier(); err != nil {
					fmt.Fprintf(os.Stderr, "ivmserve: batch %d skip barrier: %v\n", n, err)
				}
			}
		}
		fmt.Printf("maintenance drained: %d batches applied\n", len(toRun))
		if am != nil {
			st := am.Stats()
			fmt.Printf("adaptive: heavy=%d/%d pending=%d entries (%d cells) memo=%d/%d hits/misses\n",
				st.HeavyClasses, st.SeenClasses, st.Pending.Entries, st.Pending.Cells,
				st.Memo.Hits, st.Memo.Misses)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	// Graceful shutdown: stop admitting queries, drain the maintenance
	// loop (the streaming sink included), materialize any deferred
	// light-chunk deltas through the normal commit path, and only then
	// fsync and close the WAL — an acknowledged batch is never lost.
	close(stop)
	srv.Close()
	<-maintDone
	if am != nil {
		if err := am.EnsureFresh(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "ivmserve: draining pending deltas: %v\n", err)
		}
	}
	st := srv.Stats()
	fmt.Printf("final: epoch=%d queries=%d rejected=%d cache-hit-rate=%.2f retained=%dB\n",
		st.Epoch, st.Queries, st.Rejected, st.HitRate(), st.RetainedBytes)
	if fp := st.FastPath; fp.ViewHits+fp.ViewMisses+fp.MemoHits+fp.MemoMisses > 0 {
		fmt.Printf("fast path: view=%d/%d hits/misses (%dB cached, %d evicted, %d invalidated) memo=%d/%d solves-skipped=%d\n",
			fp.ViewHits, fp.ViewMisses, fp.ViewBytes, fp.ViewEvictions, fp.ViewInvalidations,
			fp.MemoHits, fp.MemoMisses, fp.SolveSkips)
	}
	if dur != nil {
		d := st.Durable
		fmt.Printf("durable: commits=%d rollbacks=%d checkpoints=%d wal=%dB seg=%dB fsyncs=%d\n",
			d.Commits, d.Rollbacks, d.Checkpoints, d.WALBytes, d.SegBytes, d.Syncs)
		if err := dur.Close(); err != nil {
			return fmt.Errorf("durable store close: %w", err)
		}
	}
	return nil
}

// runStreamed feeds the background batches through the pipelined operator
// graph instead of batch-at-a-time maintenance: later batches enter the
// transfer stage while earlier ones are still joining, commits stay in
// admission order, and queries keep serving from pinned snapshots
// throughout. On shutdown the pipeline drains in-flight batches and prints
// its per-stage counters.
func runStreamed(cl *cluster.Cluster, def *view.Definition, planner maintain.Planner,
	am *maintain.AdaptiveMaintainer, spec bench.Spec, toRun []*array.Array, applied, total int, interval time.Duration, stop <-chan struct{}) {
	g, err := stream.NewGraph(stream.Config{
		Cluster:        cl,
		Def:            def,
		Planner:        planner,
		Params:         spec.Params,
		ArrayPlacement: &cluster.RoundRobin{},
		ViewPlacement:  &cluster.RoundRobin{},
		Adaptive:       am,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivmserve: streaming graph: %v\n", err)
		return
	}
	var wg sync.WaitGroup
feed:
	for i, b := range toRun {
		select {
		case <-stop:
			break feed
		case <-time.After(interval):
		}
		tk, err := g.Submit(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivmserve: submit %d: %v\n", applied+i+1, err)
			break
		}
		wg.Add(1)
		go func(n int, tk *stream.Ticket) {
			defer wg.Done()
			res := tk.Wait()
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "ivmserve: batch %d failed (rolled back): %v\n", n, res.Err)
				return
			}
			fmt.Printf("batch %d/%d committed; epoch %d (plan %s, %d retries)\n",
				n, total, res.Epoch, map[bool]string{true: "reused", false: "solved"}[res.Reused], res.Retries)
		}(applied+i+1, tk)
	}
	g.Drain()
	wg.Wait()
	st := g.Stats()
	fmt.Printf("pipeline drained: solves=%d reuses=%d retries=%d aborts=%d\n",
		st.Router.Solves, st.Router.Reuses, st.Retries, st.Aborts)
	for _, sg := range st.Stages {
		fmt.Printf("  stage %-9s entered=%d done=%d stalls=%d stall=%.3fs busy=%.3fs\n",
			sg.Name, sg.Entered, sg.Done, sg.Stalls, sg.StallSeconds, sg.BusySeconds)
	}
}

// distributedCluster builds a cluster whose data plane is a TCPFabric:
// either connected to externally-run ivmnode daemons or to loopback daemons
// spawned in-process.
func distributedCluster(spec bench.Spec, connect string) (*cluster.Cluster, error) {
	var addrs []string
	if connect != "" {
		for _, a := range strings.Split(connect, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		fmt.Printf("connecting to %d node daemons\n", len(addrs))
	} else {
		lc, err := transport.StartLoopback(spec.Nodes, nil)
		if err != nil {
			return nil, err
		}
		addrs = lc.Addrs
		fmt.Printf("spawned %d loopback node daemons\n", len(addrs))
	}
	fab, err := transport.NewTCPFabric(addrs, transport.DefaultClientConfig())
	if err != nil {
		return nil, err
	}
	return cluster.New(len(addrs),
		cluster.WithWorkersPerNode(spec.Workers), cluster.WithFabric(fab))
}
