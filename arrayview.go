// Package arrayview implements materialized array views with incremental
// maintenance under batch updates, reproducing Zhao, Rusu, Dong, Wu and
// Nugent, "Incremental View Maintenance over Array Data" (SIGMOD 2017).
//
// The library provides:
//
//   - a multi-dimensional sparse array data model with regular chunking;
//   - shape-based array similarity joins (a generalization of array
//     equi-join and distance-based similarity join);
//   - materialized array views defined by a similarity join plus group-by
//     aggregation, evaluated eagerly over a simulated shared-nothing
//     cluster;
//   - incremental view maintenance of batch insertions with three
//     strategies: the relational-style baseline, the greedy differential
//     join plan (Algorithm 1), and the full three-stage heuristic with
//     continuous view/array chunk reassignment (Algorithms 1-3);
//   - query integration: answering similarity join queries either from the
//     view via the Δ shape or from scratch, chosen by an analytical cost
//     model.
//
// # Quick start
//
//	schema := arrayview.MustSchema("catalog",
//		[]arrayview.Dimension{
//			{Name: "x", Start: 0, End: 999, ChunkSize: 50},
//			{Name: "y", Start: 0, End: 999, ChunkSize: 50},
//		},
//		[]arrayview.Attribute{{Name: "flux", Type: arrayview.Float64}})
//	data := arrayview.NewArray(schema)
//	// ... data.Set(point, tuple) ...
//
//	db, _ := arrayview.Open(8)
//	_ = db.Load(data)
//	def, _ := arrayview.NewDefinition("neighbors", schema, schema,
//		arrayview.Pred(arrayview.L1(2, 1), nil),
//		[]string{"x", "y"},
//		[]arrayview.Aggregate{{Kind: arrayview.Count, As: "cnt"}}, nil)
//	mv, _ := db.CreateView(def, arrayview.StrategyReassign, nil)
//	report, _ := mv.Update(batch) // incremental maintenance
//	answer, _ := mv.Query(arrayview.Linf(2, 1), arrayview.Auto)
package arrayview

import (
	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

// Core array model.
type (
	// Schema describes an array: named dimensions plus attributes.
	Schema = array.Schema
	// Dimension is one ordered dimension with regular chunking.
	Dimension = array.Dimension
	// Attribute is one named cell attribute.
	Attribute = array.Attribute
	// Array is an in-memory sparse multi-dimensional array.
	Array = array.Array
	// Point addresses one cell.
	Point = array.Point
	// Tuple holds one cell's attribute values.
	Tuple = array.Tuple
	// Region is an axis-aligned box of cells with inclusive bounds.
	Region = array.Region
	// AttrType is the declared type of an attribute.
	AttrType = array.AttrType
)

// Attribute types.
const (
	// Float64 declares a double-precision attribute.
	Float64 = array.Float64
	// Int64 declares an integer attribute.
	Int64 = array.Int64
)

// Shapes and join predicates.
type (
	// Shape is a finite set of integer offsets applied around each cell.
	Shape = shape.Shape
	// Mapping transforms α coordinates into β space (identity, translate,
	// regrid).
	Mapping = simjoin.Mapping
	// JoinPred bundles a shape and a mapping.
	JoinPred = simjoin.Pred
	// Identity is the identity mapping.
	Identity = simjoin.Identity
	// Translate shifts coordinates by a fixed offset.
	Translate = simjoin.Translate
	// Regrid coarsens coordinates by integer factors.
	Regrid = simjoin.Regrid
)

// Views.
type (
	// Definition is a materialized array view definition: similarity join
	// plus group-by aggregation.
	Definition = view.Definition
	// Aggregate is one aggregation of the view's SELECT list.
	Aggregate = view.Aggregate
	// AggKind enumerates COUNT, SUM, AVG.
	AggKind = view.AggKind
)

// Aggregate kinds.
const (
	// Count is COUNT(*).
	Count = view.Count
	// Sum is SUM(attr).
	Sum = view.Sum
	// Avg is AVG(attr).
	Avg = view.Avg
	// Min is MIN(attr) (insert-only maintenance).
	Min = view.Min
	// Max is MAX(attr) (insert-only maintenance).
	Max = view.Max
)

// Maintenance.
type (
	// Params tunes the maintenance optimization (λ, window, decay, seed).
	Params = maintain.Params
	// Report summarizes one maintained batch.
	Report = maintain.Report
	// Planner is a maintenance planning strategy.
	Planner = maintain.Planner
	// Placement assigns new chunks to nodes.
	Placement = cluster.Placement
	// RoundRobin places chunks cyclically.
	RoundRobin = cluster.RoundRobin
	// HashPlacement places chunks by key hash.
	HashPlacement = cluster.HashPlacement
	// CostModel holds the calibrated Tntwk/Tcpu constants.
	CostModel = cluster.CostModel
)

// Query integration.
type (
	// QueryMode selects the evaluation path of a query.
	QueryMode = query.Mode
	// QueryChoice records the cost model's verdict.
	QueryChoice = query.Choice
	// QueryResult is an answered query.
	QueryResult = query.Result
)

// Query modes.
const (
	// Auto lets the cost model pick between view and complete join.
	Auto = query.Auto
	// ForceComplete always computes from scratch.
	ForceComplete = query.ForceComplete
	// ForceView always answers from the view.
	ForceView = query.ForceView
)

// Strategy names a maintenance planning strategy.
type Strategy string

// Built-in strategies.
const (
	// StrategyBaseline is the relational-style baseline (Section 4.1).
	StrategyBaseline Strategy = "baseline"
	// StrategyDifferential optimizes the join plan only (Algorithm 1).
	StrategyDifferential Strategy = "differential"
	// StrategyReassign is the full three-stage heuristic (Algorithms 1-3).
	StrategyReassign Strategy = "reassign"
)

// NewSchema builds and validates a schema.
func NewSchema(name string, dims []Dimension, attrs []Attribute) (*Schema, error) {
	return array.NewSchema(name, dims, attrs)
}

// MustSchema is NewSchema that panics on error.
func MustSchema(name string, dims []Dimension, attrs []Attribute) *Schema {
	return array.MustSchema(name, dims, attrs)
}

// NewArray creates an empty array with the given schema.
func NewArray(s *Schema) *Array { return array.New(s) }

// L1 returns the L1-norm ball of radius r in dims dimensions (center
// included); L1(2, 1) is the paper's 5-cell cross.
func L1(dims int, r int64) *Shape { return shape.L1(dims, r) }

// L2 returns the Euclidean-norm ball of radius r.
func L2(dims int, r int64) *Shape { return shape.L2(dims, r) }

// Linf returns the L∞-norm ball of radius r (the full cube).
func Linf(dims int, r int64) *Shape { return shape.Linf(dims, r) }

// ShapeFromOffsets builds a custom shape from explicit offsets.
func ShapeFromOffsets(name string, offs [][]int64) (*Shape, error) {
	return shape.FromOffsets(name, offs)
}

// EmbedShape lifts a low-dimensional shape into ndims dimensions; see
// shape.Embed. Example: L1(1) on (ra, dec) over the previous 200 time
// steps is EmbedShape(L1(2,1), 3, []int{1,2}, map[int][2]int64{0:{-200,0}}).
func EmbedShape(inner *Shape, ndims int, dims []int, window map[int][2]int64) (*Shape, error) {
	return shape.Embed(inner, ndims, dims, window)
}

// DeltaShape returns the positional symmetric difference of two shapes
// (nil when identical) — the Δ shape of differential query answering. Both
// shapes are caller-supplied, so a dimensionality mismatch is reported as
// an error rather than a panic.
func DeltaShape(viewShape, queryShape *Shape) (*Shape, error) {
	return shape.DeltaChecked(viewShape, queryShape)
}

// Pred bundles a shape and mapping into a join predicate; a nil mapping
// means identity.
func Pred(s *Shape, m Mapping) JoinPred { return simjoin.NewPred(s, m) }

// NewDefinition builds and validates a view definition.
func NewDefinition(name string, alpha, beta *Schema, pred JoinPred, groupBy []string, aggs []Aggregate, chunking []int64) (*Definition, error) {
	return view.NewDefinition(name, alpha, beta, pred, groupBy, aggs, chunking)
}

// DefaultParams returns the paper's maintenance parameters (λ=0.5, window
// 5, exponential decay).
func DefaultParams() Params { return maintain.DefaultParams() }

// DefaultCostModel returns the calibrated per-byte network/CPU constants.
func DefaultCostModel() CostModel { return cluster.DefaultCostModel() }

// MaterializeLocal evaluates a view definition over in-memory arrays on a
// single node — the reference evaluator (beta may equal alpha for self
// joins).
func MaterializeLocal(def *Definition, alpha, beta *Array) (*Array, error) {
	return view.Materialize(def, alpha, beta)
}

// DisjointInsert verifies a batch contains no cell already in the base —
// the precondition for additive delta maintenance.
func DisjointInsert(base, delta *Array) error { return view.DisjointInsert(base, delta) }

// SubsetOf verifies every cell of del exists in base — the precondition
// for delta maintenance of deletions.
func SubsetOf(base, del *Array) error { return view.SubsetOf(base, del) }

// ChainDefinition is a view over a chain of n similarity joins (the full
// Definition 1 of the paper), maintained recursively under single-input
// updates.
type ChainDefinition = view.ChainDefinition

// NewChain builds and validates an n-array chain view definition:
// Preds[i] relates Inputs[i] to Inputs[i+1]; GroupBy lists dimensions of
// the first input and Aggs aggregate attributes of the last.
func NewChain(name string, inputs []*Schema, preds []JoinPred, groupBy []string, aggs []Aggregate) (*ChainDefinition, error) {
	return view.NewChain(name, inputs, preds, groupBy, aggs)
}

// MergeDeltaLocal folds a differential view into a materialized view
// in-place (both hold state tuples of the same definition).
func MergeDeltaLocal(def *Definition, v, dv *Array) error {
	return view.MergeDelta(def, v, dv)
}

// Attribute filters (the view class's "filtering" unary operator).
type (
	// Condition is one declarative attribute predicate, e.g.
	// {Attr: "mag", Op: Lt, Value: 19}.
	Condition = view.Condition
	// CmpOp is a comparison operator.
	CmpOp = view.CmpOp
)

// Comparison operators.
const (
	// Lt is <.
	Lt = view.Lt
	// Le is <=.
	Le = view.Le
	// Eq is ==.
	Eq = view.Eq
	// Ne is !=.
	Ne = view.Ne
	// Ge is >=.
	Ge = view.Ge
	// Gt is >.
	Gt = view.Gt
)

// chunkAlias aliases the internal chunk type for the facade's chunk-level
// helpers.
type chunkAlias = array.Chunk
