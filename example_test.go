package arrayview_test

import (
	"fmt"
	"log"

	arrayview "github.com/arrayview/arrayview"
)

// Example demonstrates the core loop: define an array, materialize a view,
// maintain it incrementally, and read the result.
func Example() {
	schema := arrayview.MustSchema("sky",
		[]arrayview.Dimension{
			{Name: "x", Start: 0, End: 99, ChunkSize: 10},
			{Name: "y", Start: 0, End: 99, ChunkSize: 10},
		},
		[]arrayview.Attribute{{Name: "flux", Type: arrayview.Float64}})
	base := arrayview.NewArray(schema)
	for _, p := range []arrayview.Point{{5, 5}, {5, 6}, {6, 5}} {
		if err := base.Set(p, arrayview.Tuple{1}); err != nil {
			log.Fatal(err)
		}
	}

	db, err := arrayview.Open(4)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Load(base); err != nil {
		log.Fatal(err)
	}
	def, err := arrayview.NewDefinition("neighbors", schema, schema,
		arrayview.Pred(arrayview.L1(2, 1), nil),
		[]string{"x", "y"},
		[]arrayview.Aggregate{{Kind: arrayview.Count, As: "cnt"}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	mv, err := db.CreateView(def, arrayview.StrategyReassign, nil)
	if err != nil {
		log.Fatal(err)
	}

	batch := arrayview.NewArray(schema)
	_ = batch.Set(arrayview.Point{5, 4}, arrayview.Tuple{1})
	if _, err := mv.Update(batch); err != nil {
		log.Fatal(err)
	}

	vals, _, err := mv.Values(arrayview.Point{5, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("neighbors of (5,5): %.0f\n", vals[0])
	// Output: neighbors of (5,5): 4
}

// ExampleDeltaShape shows the Δ-shape construction behind differential
// query answering.
func ExampleDeltaShape() {
	view := arrayview.L1(2, 1)    // the view's 5-cell cross
	query := arrayview.Linf(2, 1) // a 9-cell square query
	delta, err := arrayview.DeltaShape(view, query)
	if err != nil {
		panic(err)
	}
	fmt.Printf("|view|=%d |query|=%d |delta|=%d\n", view.Card(), query.Card(), delta.Card())
	// Output: |view|=5 |query|=9 |delta|=4
}

// ExampleNewChain evaluates a three-array chain view (Definition 1).
func ExampleNewChain() {
	s := arrayview.MustSchema("pts",
		[]arrayview.Dimension{{Name: "x", Start: 0, End: 9, ChunkSize: 5}},
		[]arrayview.Attribute{{Name: "v", Type: arrayview.Float64}})
	chain, err := arrayview.NewChain("c3", []*arrayview.Schema{s, s, s},
		[]arrayview.JoinPred{
			arrayview.Pred(arrayview.Linf(1, 1), nil),
			arrayview.Pred(arrayview.Linf(1, 1), nil),
		},
		[]string{"x"}, []arrayview.Aggregate{{Kind: arrayview.Count, As: "c"}})
	if err != nil {
		log.Fatal(err)
	}
	mk := func(xs ...int64) *arrayview.Array {
		a := arrayview.NewArray(s)
		for _, x := range xs {
			_ = a.Set(arrayview.Point{x}, arrayview.Tuple{1})
		}
		return a
	}
	v, err := chain.Materialize([]*arrayview.Array{mk(1), mk(1, 2), mk(2, 3)})
	if err != nil {
		log.Fatal(err)
	}
	t, _ := v.Get(arrayview.Point{1})
	fmt.Printf("chains from 1: %.0f\n", t[0])
	// Output: chains from 1: 3
}
