package query

import (
	"math/rand"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

// setup builds a 3-node cluster with a random sparse 2-D array and an
// L∞(1)-count view over it (the GEO-style configuration).
func setup(t *testing.T, seed int64, viewShape *shape.Shape) (*Engine, *array.Array) {
	t.Helper()
	schema := array.MustSchema("A",
		[]array.Dimension{
			{Name: "x", Start: 0, End: 39, ChunkSize: 5},
			{Name: "y", Start: 0, End: 39, ChunkSize: 5},
		},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	rng := rand.New(rand.NewSource(seed))
	base := array.New(schema)
	for i := 0; i < 150; i++ {
		_ = base.Set(array.Point{rng.Int63n(40), rng.Int63n(40)}, array.Tuple{float64(rng.Intn(5) + 1)})
	}
	cl, err := cluster.New(3, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def, err := view.NewDefinition("V", schema, schema,
		simjoin.NewPred(viewShape, nil),
		[]string{"x", "y"},
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}, {Kind: view.Sum, Attr: "v", As: "vs"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cl, def, maintain.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return eng, base
}

// reference computes the query aggregate locally.
func reference(t *testing.T, eng *Engine, base *array.Array, queryShape *shape.Shape) *array.Array {
	t.Helper()
	def, err := view.NewDefinition("ref", eng.Def.Alpha, eng.Def.Beta,
		simjoin.NewPred(queryShape, eng.Def.Pred.Mapping),
		eng.Def.GroupBy, eng.Def.Aggs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := view.Materialize(def, base, base)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// statesEqual compares aggregate state arrays, treating absent cells as
// all-zero state.
func statesEqual(a, b *array.Array) bool {
	ok := true
	check := func(x, y *array.Array) {
		x.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := y.Get(p)
			if !found {
				for _, v := range tup {
					if v != 0 {
						ok = false
						return false
					}
				}
				return true
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
	}
	check(a, b)
	check(b, a)
	return ok
}

func TestQueryBothPathsMatchReference(t *testing.T) {
	cases := []struct {
		name       string
		viewShape  *shape.Shape
		queryShape *shape.Shape
	}{
		{"Linf1<-L1_1", shape.L1(2, 1), shape.Linf(2, 1)},
		{"Linf1<-Linf2", shape.Linf(2, 2), shape.Linf(2, 1)},
		{"L1_3<-Linf2", shape.Linf(2, 2), shape.L1(2, 3)},
		{"L2_2<-Linf2", shape.Linf(2, 2), shape.L2(2, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, base := setup(t, 11, tc.viewShape)
			want := reference(t, eng, base, tc.queryShape)
			for _, mode := range []Mode{ForceView, ForceComplete} {
				res, err := eng.Answer(tc.queryShape, mode)
				if err != nil {
					t.Fatal(err)
				}
				if !statesEqual(res.Array, want) {
					t.Fatalf("mode %v diverges from reference", mode)
				}
				if res.Ledger == nil {
					t.Fatal("missing ledger")
				}
			}
		})
	}
}

func TestQueryIdenticalShapeIsFree(t *testing.T) {
	eng, base := setup(t, 5, shape.L1(2, 1))
	res, err := eng.Answer(shape.L1(2, 1), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Choice.UseView {
		t.Error("identical shape must use the view")
	}
	if res.Choice.DeltaCard != 0 {
		t.Errorf("DeltaCard = %d, want 0", res.Choice.DeltaCard)
	}
	want := reference(t, eng, base, shape.L1(2, 1))
	if !statesEqual(res.Array, want) {
		t.Error("identical-shape answer diverges")
	}
}

func TestQueryCostModelFollowsDeltaRatio(t *testing.T) {
	// Figure 6 / Section 6.4: Δ(L∞(1)←L1(1)) has ratio 4/9 < 1 → the view
	// wins; Δ(L∞(1)←L∞(2)) has ratio 16/9 > 1 → the complete join wins.
	eng1, _ := setup(t, 21, shape.L1(2, 1))
	ch1, err := eng1.Decide(shape.Linf(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(ch1.DeltaCard) / float64(ch1.QueryCard); ratio >= 1 {
		t.Fatalf("ratio = %v, want < 1", ratio)
	}
	if !ch1.UseView {
		t.Errorf("L∞(1)←L1(1): expected the view path (Δ ratio 4/9); costs view=%v complete=%v",
			ch1.ViewCost, ch1.CompleteCost)
	}

	eng2, _ := setup(t, 21, shape.Linf(2, 2))
	ch2, err := eng2.Decide(shape.Linf(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(ch2.DeltaCard) / float64(ch2.QueryCard); ratio <= 1 {
		t.Fatalf("ratio = %v, want > 1", ratio)
	}
	if ch2.UseView {
		t.Errorf("L∞(1)←L∞(2): expected the complete join (Δ ratio 16/9); costs view=%v complete=%v",
			ch2.ViewCost, ch2.CompleteCost)
	}
}

func TestQueryAutoMatchesDecision(t *testing.T) {
	eng, base := setup(t, 31, shape.L1(2, 1))
	q := shape.Linf(2, 1)
	ch, err := eng.Decide(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Answer(q, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Choice.UseView != ch.UseView {
		t.Error("Answer(Auto) must follow Decide")
	}
	want := reference(t, eng, base, q)
	if !statesEqual(res.Array, want) {
		t.Error("auto answer diverges from reference")
	}
}

func TestQueryLeavesLayoutUntouched(t *testing.T) {
	eng, _ := setup(t, 41, shape.L1(2, 1))
	cl := eng.Cluster
	before := make(map[string]int)
	for _, k := range cl.Catalog().Keys("A") {
		h, _ := cl.Catalog().Home("A", k)
		before[string(k)] = h
	}
	if _, err := eng.Answer(shape.Linf(2, 1), ForceComplete); err != nil {
		t.Fatal(err)
	}
	for _, k := range cl.Catalog().Keys("A") {
		h, _ := cl.Catalog().Home("A", k)
		if before[string(k)] != h {
			t.Fatalf("query moved chunk %v", k)
		}
		// No scratch replicas should remain resident off-home.
		for node := 0; node < cl.NumNodes(); node++ {
			if node != h && cl.Node(node).Store.Has("A", k) {
				t.Fatalf("scratch replica of %v left on node %d", k, node)
			}
		}
	}
}

func TestNewEngineValidation(t *testing.T) {
	sa := array.MustSchema("P",
		[]array.Dimension{{Name: "i", Start: 0, End: 9, ChunkSize: 5}},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	sb := array.MustSchema("Q",
		[]array.Dimension{{Name: "i", Start: 0, End: 9, ChunkSize: 5}},
		[]array.Attribute{{Name: "w", Type: array.Float64}})
	def, err := view.NewDefinition("W", sa, sb,
		simjoin.NewPred(shape.Linf(1, 1), nil),
		[]string{"i"}, []view.Aggregate{{Kind: view.Count, As: "c"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := cluster.New(2)
	if _, err := NewEngine(cl, def, maintain.DefaultParams()); err == nil {
		t.Error("two-array views must be rejected")
	}
}

func TestSplitDelta(t *testing.T) {
	vShape, qShape := shape.L1(2, 1), shape.Linf(2, 1)
	delta := shape.Delta(vShape, qShape)
	plus, minus, err := splitDelta(qShape, delta)
	if err != nil {
		t.Fatal(err)
	}
	if plus == nil || plus.Card() != 4 {
		t.Fatalf("plus = %v, want the 4 corners", plus)
	}
	if minus != nil {
		t.Fatalf("minus = %v, want nil (L1(1) ⊂ L∞(1))", minus)
	}
	// Reverse direction: view L∞(1), query L1(1): 4 minus offsets.
	delta2 := shape.Delta(qShape, vShape)
	plus2, minus2, err := splitDelta(vShape, delta2)
	if err != nil {
		t.Fatal(err)
	}
	if plus2 != nil || minus2 == nil || minus2.Card() != 4 {
		t.Fatalf("reverse split = %v / %v", plus2, minus2)
	}
}
