package query

import (
	"runtime"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/shape"
)

// solvesPerDecision is how many placement solves one Auto decision costs
// without the memo: planViewPath prices both differential variants and
// DecideCtx prices the complete path, each a full planner run.
const solvesPerDecision = 3

// maxDecideEntries bounds the decision memo. Entries are tiny (a few shapes
// and floats), so the cap only guards against a workload that never repeats
// a shape; eviction is FIFO.
const maxDecideEntries = 256

// FastPath carries the serving-path accelerators of one engine: the
// epoch-keyed assembled-view cache, the shape-keyed decision/plan memo, the
// chunk-pair memo, and the join worker pool width. All members are safe for
// concurrent use; a nil *FastPath disables every layer.
type FastPath struct {
	// Views caches decoded assembled views per (view, epoch). Nil disables
	// view caching while keeping the memos.
	Views *cluster.ViewCache
	// Counters receives hit/miss/skip accounting; nil disables counting.
	Counters *obs.FastPathCounters
	// JoinWorkers is the snapshot-join fan-out width; <= 0 means GOMAXPROCS,
	// 1 forces the serial kernel.
	JoinWorkers int

	mu sync.Mutex
	// decide memoizes per query-shape fingerprint the layout-independent
	// delta decomposition and, layout-versioned, the two plan costs.
	decide      map[string]*decideEntry
	decideOrder []string
	// pairs memoizes the snapshot join's chunk-pair enumeration per
	// (epoch, join-shape fingerprint). Two generations: inserting a pair
	// list for epoch E drops every entry older than E-1, so the memo tracks
	// the commit frontier without unbounded growth.
	pairs map[pairMemoKey][][2]array.ChunkKey
}

// NewFastPath returns a fast path with a view cache of the given budget
// (see cluster.NewViewCache) reporting into ctrs.
func NewFastPath(viewCacheBytes int64, ctrs *obs.FastPathCounters) *FastPath {
	return &FastPath{
		Views:    cluster.NewViewCache(viewCacheBytes, ctrs),
		Counters: ctrs,
	}
}

// decideEntry is one memoized decision. The delta decomposition depends
// only on the view and query shapes, so it survives forever; the plan costs
// are valid only at the catalog layout version that priced them.
type decideEntry struct {
	delta       *shape.Shape // nil: the query IS the view
	plus, minus *shape.Shape
	deltaCard   int64

	costsValid   bool
	layout       uint64
	viewCost     float64
	completeCost float64
}

type pairMemoKey struct {
	epoch uint64
	fp    string
}

func (f *FastPath) workers() int {
	if f == nil {
		return 1
	}
	if f.JoinWorkers > 0 {
		return f.JoinWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// lookupDecide returns the memoized entry for a fingerprint, or nil.
func (f *FastPath) lookupDecide(fp string) *decideEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.decide[fp]
}

// storeDecide inserts an entry, evicting the oldest past the cap. A racing
// insert of the same fingerprint keeps the first entry (both are correct).
func (f *FastPath) storeDecide(fp string, e *decideEntry) *decideEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	if prev, ok := f.decide[fp]; ok {
		return prev
	}
	if f.decide == nil {
		f.decide = make(map[string]*decideEntry)
	}
	f.decide[fp] = e
	f.decideOrder = append(f.decideOrder, fp)
	for len(f.decideOrder) > maxDecideEntries {
		delete(f.decide, f.decideOrder[0])
		f.decideOrder = f.decideOrder[1:]
	}
	return e
}

// costs returns the memoized plan costs if they were priced at the given
// layout version.
func (f *FastPath) costs(e *decideEntry, layout uint64) (viewCost, completeCost float64, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !e.costsValid || e.layout != layout {
		return 0, 0, false
	}
	return e.viewCost, e.completeCost, true
}

// setCosts records plan costs priced at the given layout version.
func (f *FastPath) setCosts(e *decideEntry, layout uint64, viewCost, completeCost float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.costsValid = true
	e.layout = layout
	e.viewCost = viewCost
	e.completeCost = completeCost
}

// lookupPairs returns the memoized chunk-pair list of a join shape at an
// epoch. The returned slice is shared and read-only.
func (f *FastPath) lookupPairs(epoch uint64, fp string) ([][2]array.ChunkKey, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ps, ok := f.pairs[pairMemoKey{epoch, fp}]
	return ps, ok
}

// storePairs records a chunk-pair list and retires entries more than one
// epoch behind it.
func (f *FastPath) storePairs(epoch uint64, fp string, ps [][2]array.ChunkKey) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pairs == nil {
		f.pairs = make(map[pairMemoKey][][2]array.ChunkKey)
	}
	f.pairs[pairMemoKey{epoch, fp}] = ps
	for k := range f.pairs {
		if k.epoch+1 < epoch {
			delete(f.pairs, k)
		}
	}
}

// countMemo bumps the memo hit/miss counters.
func (f *FastPath) countMemo(hit bool) {
	if f == nil || f.Counters == nil {
		return
	}
	if hit {
		f.Counters.MemoHits.Add(1)
	} else {
		f.Counters.MemoMisses.Add(1)
	}
}
