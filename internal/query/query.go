// Package query integrates materialized array views into similarity join
// queries (Section 5 of the paper). Given a query whose shape differs from
// the view's, it either
//
//   - answers differentially: evaluate the similarity join over the Δ shape
//     (the positional symmetric difference of the view and query shapes)
//     and merge it — signed — with the view, or
//   - computes the complete similarity join from the base array,
//
// choosing by the analytical cost model of Eq. 3: both alternatives are
// planned with the same greedy placement used for view maintenance and the
// cheaper plan wins. The relative size of Δ versus the query shape is the
// dominant factor, as in the paper's Figure 6.
package query

import (
	"context"
	"fmt"
	"sort"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

// Mode selects how Answer picks its evaluation path.
type Mode int

const (
	// Auto lets the cost model decide.
	Auto Mode = iota
	// ForceComplete always computes the full similarity join.
	ForceComplete
	// ForceView always answers from the view via the Δ shape.
	ForceView
)

// Choice records the cost model's verdict for one query.
type Choice struct {
	// UseView is true when the differential path is (or was forced) chosen.
	UseView bool
	// ViewCost and CompleteCost are the Eq. 3 plan costs in seconds.
	ViewCost, CompleteCost float64
	// DeltaCard and QueryCard are |Δ| and |query shape|; their ratio is the
	// paper's rule-of-thumb predictor.
	DeltaCard, QueryCard int64
	// Delta is the positional symmetric difference of the view and query
	// shapes, computed once per decision and carried here so the answer
	// paths never re-derive it. Nil means the query shape IS the view shape.
	Delta *shape.Shape
	// plus and minus are Delta's signed halves (see splitDelta).
	plus, minus *shape.Shape
}

// signOf returns the signed-evaluation weight of a Δ offset: +1 for offsets
// the query adds, −1 for offsets only the view has.
func (ch *Choice) signOf(off []int64) float64 {
	if ch.plus != nil && ch.plus.Contains(off) {
		return 1
	}
	if ch.minus != nil && ch.minus.Contains(off) {
		return -1
	}
	return 0
}

// Result is an answered query.
type Result struct {
	// Array holds the aggregate state tuples of the answer (see
	// Definition.Output to render user-facing values).
	Array  *array.Array
	Choice Choice
	// Ledger is the executed plan's simulated cost.
	Ledger *cluster.Ledger
}

// Engine answers shape-based similarity join aggregate queries over a base
// array that carries a materialized self-join view.
type Engine struct {
	Cluster *cluster.Cluster
	// Def is the materialized view's definition; queries reuse its
	// mapping, group-by, and aggregates but substitute their own shape.
	Def    *view.Definition
	Params maintain.Params
	// Fresh, when non-nil, runs before each answer so lazily-maintained
	// state can be materialized first (the adaptive path's pending-delta
	// log). The hook commits through the normal maintenance path, so
	// snapshot readers are unaffected; an error fails the query rather
	// than silently answering stale.
	Fresh func(context.Context) error
	// Fast, when non-nil, enables the serving accelerators: the epoch-keyed
	// assembled-view cache, the shape-keyed decision memo, and the parallel
	// snapshot join. Nil keeps every answer on the cold path.
	Fast *FastPath
}

// NewEngine validates and returns an engine.
func NewEngine(cl *cluster.Cluster, def *view.Definition, params maintain.Params) (*Engine, error) {
	if !def.SelfJoin() {
		return nil, fmt.Errorf("query: engine requires a self-join view, got %s", def.Name)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Engine{Cluster: cl, Def: def, Params: params}, nil
}

// Decide prices both evaluation paths for the query shape without
// executing either.
func (e *Engine) Decide(queryShape *shape.Shape) (Choice, error) {
	return e.DecideCtx(context.Background(), queryShape)
}

// DecideCtx is Decide with cancellation: a server deadline expiring between
// planning steps aborts the decision.
func (e *Engine) DecideCtx(ctx context.Context, queryShape *shape.Shape) (Choice, error) {
	return e.decideForMode(ctx, queryShape, Auto)
}

// Answer evaluates the query, deciding the path per mode.
func (e *Engine) Answer(queryShape *shape.Shape, mode Mode) (*Result, error) {
	return e.AnswerCtx(context.Background(), queryShape, mode)
}

// AnswerCtx is Answer with cancellation: the context threads through plan
// selection and the per-node join fan-out, so an expired server deadline
// stops scheduling further chunk-pair tasks instead of running the query to
// completion for nobody.
func (e *Engine) AnswerCtx(ctx context.Context, queryShape *shape.Shape, mode Mode) (*Result, error) {
	if e.Fresh != nil {
		if err := e.Fresh(ctx); err != nil {
			return nil, fmt.Errorf("query: materializing pending deltas: %w", err)
		}
	}
	ch, err := e.decideForMode(ctx, queryShape, mode)
	if err != nil {
		return nil, err
	}
	if ch.UseView {
		return e.answerWithView(ctx, queryShape, ch)
	}
	return e.answerComplete(ctx, queryShape, ch)
}

// decideForMode derives the Δ decomposition and, under Auto, prices both
// paths; forced modes skip planning entirely. With a FastPath attached, the
// decomposition is memoized per query-shape fingerprint and the plan costs
// per catalog layout version, so a repeated shape over an unchanged layout
// runs no placement solves at all.
func (e *Engine) decideForMode(ctx context.Context, queryShape *shape.Shape, mode Mode) (Choice, error) {
	ent, err := e.deltaEntry(queryShape)
	if err != nil {
		return Choice{}, err
	}
	ch := Choice{
		QueryCard: queryShape.Card(),
		DeltaCard: ent.deltaCard,
		Delta:     ent.delta,
		plus:      ent.plus,
		minus:     ent.minus,
	}
	if ent.delta == nil {
		// The query IS the view; the differential path is free.
		ch.UseView = true
		return ch, nil
	}
	if mode != Auto {
		ch.UseView = mode == ForceView
		return ch, nil
	}
	f := e.Fast
	layout := e.Cluster.Catalog().LayoutVersion()
	if f != nil {
		if viewCost, completeCost, ok := f.costs(ent, layout); ok {
			if f.Counters != nil {
				f.Counters.SolveSkips.Add(solvesPerDecision)
			}
			ch.ViewCost = viewCost
			ch.CompleteCost = completeCost
			ch.UseView = viewCost <= completeCost
			return ch, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return Choice{}, err
	}
	viewCost, _, err := e.planViewPath(ent.delta)
	if err != nil {
		return Choice{}, err
	}
	if err := ctx.Err(); err != nil {
		return Choice{}, err
	}
	completeCost, _, err := e.planPath(queryShape, pathComplete)
	if err != nil {
		return Choice{}, err
	}
	if f != nil {
		f.setCosts(ent, layout, viewCost, completeCost)
	}
	ch.ViewCost = viewCost
	ch.CompleteCost = completeCost
	ch.UseView = viewCost <= completeCost
	return ch, nil
}

// deltaEntry computes (or recalls) the layout-independent half of a
// decision: the Δ shape and its signed split. The query shape is
// caller-supplied, so an arity mismatch is a bad query, not a broken
// invariant — it surfaces as an error.
func (e *Engine) deltaEntry(queryShape *shape.Shape) (*decideEntry, error) {
	f := e.Fast
	fp := ""
	if f != nil {
		var err error
		if fp, err = queryShape.Fingerprint(); err != nil {
			// Not memoizable (no buildable spec); fall through uncached.
			fp = ""
		} else if ent := f.lookupDecide(fp); ent != nil {
			f.countMemo(true)
			return ent, nil
		}
	}
	delta, err := shape.DeltaChecked(e.Def.Pred.Shape, queryShape)
	if err != nil {
		return nil, err
	}
	ent := &decideEntry{delta: delta}
	if delta != nil {
		ent.deltaCard = delta.Card()
		if ent.plus, ent.minus, err = splitDelta(queryShape, delta); err != nil {
			return nil, err
		}
	}
	if f != nil && fp != "" {
		f.countMemo(false)
		ent = f.storeDecide(fp, ent)
	}
	return ent, nil
}

// answerComplete runs the full similarity join over the base array.
func (e *Engine) answerComplete(ctx context.Context, queryShape *shape.Shape, ch Choice) (*Result, error) {
	_, plan, err := e.planPath(queryShape, pathComplete)
	if err != nil {
		return nil, err
	}
	pred := simjoin.NewPred(queryShape, e.Def.Pred.Mapping)
	out, ledger, err := e.execute(ctx, plan, pred, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Array: out, Choice: ch, Ledger: ledger}, nil
}

// answerWithView evaluates the Δ-shape join and merges it, signed, with the
// view content.
func (e *Engine) answerWithView(ctx context.Context, queryShape *shape.Shape, ch Choice) (*Result, error) {
	vw, err := e.Cluster.Gather(e.Def.Name)
	if err != nil {
		return nil, err
	}
	// Chunk-granularity copy: the gathered chunks may alias store copies and
	// the signed merge below mutates state tuples in place, so the result
	// array needs its own chunks — but cloning them wholesale beats the old
	// per-cell Set loop, which paid a point-to-chunk lookup per view cell.
	out := array.New(e.Def.Schema())
	vw.EachChunk(func(c *array.Chunk) bool {
		err = out.MergeChunk(c)
		return err == nil
	})
	if err != nil {
		return nil, err
	}
	if ch.Delta == nil {
		return &Result{Array: out, Choice: ch, Ledger: e.Cluster.NewLedger()}, nil
	}
	_, plan, err := e.planViewPath(ch.Delta)
	if err != nil {
		return nil, err
	}
	// Signed evaluation: offsets the query adds contribute +1, offsets only
	// the view has contribute −1.
	pred := simjoin.NewPred(ch.Delta, e.Def.Pred.Mapping)
	diff, ledger, err := e.execute(ctx, plan, pred, ch.signOf)
	if err != nil {
		return nil, err
	}
	if err := view.MergeDelta(e.Def, out, diff); err != nil {
		return nil, err
	}
	return &Result{Array: out, Choice: ch, Ledger: ledger}, nil
}

// splitDelta partitions the Δ shape into its signed halves: offsets in the
// query shape add, the rest (view-only offsets) subtract. A Δ offset that
// fails to rebuild as a shape is a real error — swallowing it would make
// signOf silently treat those offsets as 0 and corrupt the answer.
func splitDelta(queryShape, delta *shape.Shape) (plus, minus *shape.Shape, err error) {
	var plusOffs, minusOffs [][]int64
	for _, off := range delta.Offsets() {
		if queryShape.Contains(off) {
			plusOffs = append(plusOffs, off)
		} else {
			minusOffs = append(minusOffs, off)
		}
	}
	if len(plusOffs) > 0 {
		if plus, err = shape.FromOffsets("delta+", plusOffs); err != nil {
			return nil, nil, fmt.Errorf("query: building signed delta half: %w", err)
		}
	}
	if len(minusOffs) > 0 {
		if minus, err = shape.FromOffsets("delta-", minusOffs); err != nil {
			return nil, nil, fmt.Errorf("query: building signed delta half: %w", err)
		}
	}
	return plus, minus, nil
}

// pathKind selects how a query path assembles its result.
type pathKind int

const (
	// pathComplete computes the full join into a fresh result array.
	pathComplete pathKind = iota
	// pathViewFresh evaluates the Δ join into a fresh result array and
	// ships the view's content to it — the Eq. 3 "interaction with the
	// view" term.
	pathViewFresh
	// pathViewInPlace evaluates the Δ join and merges it at the view
	// chunks' current homes; the view itself never moves.
	pathViewInPlace
)

// planViewPath prices both differential variants — merge at the view's
// homes versus assemble a fresh result and ship the view to it — and
// returns the cheaper, as a plan optimizer would.
func (e *Engine) planViewPath(delta *shape.Shape) (float64, *queryPlan, error) {
	inPlaceCost, inPlace, err := e.planPath(delta, pathViewInPlace)
	if err != nil {
		return 0, nil, err
	}
	freshCost, fresh, err := e.planPath(delta, pathViewFresh)
	if err != nil {
		return 0, nil, err
	}
	if inPlaceCost <= freshCost {
		return inPlaceCost, inPlace, nil
	}
	return freshCost, fresh, nil
}

// planPath builds the full-join unit set for a shape and prices it with
// the greedy maintenance planner under the given result-assembly kind.
func (e *Engine) planPath(sh *shape.Shape, kind pathKind) (float64, *queryPlan, error) {
	pred := simjoin.NewPred(sh, e.Def.Pred.Mapping)
	units := e.fullJoinUnits(pred)
	viewName := e.Def.Name + "#result"
	if kind == pathViewInPlace {
		viewName = e.Def.Name
	}
	ctx, err := maintain.NewContext(e.Cluster, e.Def, units,
		e.Def.Alpha.Name, e.Def.Beta.Name,
		e.Def.Alpha.Name+"#noq", e.Def.Beta.Name+"#noq",
		viewName, nil, e.Params)
	if err != nil {
		return 0, nil, err
	}
	// Under a query, the work AND data volume referenced per chunk pair
	// scale with the shape's offset count: a pair probed with a 4-offset Δ
	// does under half the work, emits under half the matches, and touches
	// under half the cells of the same pair under a 9-offset query shape.
	// The model's constants are calibrated for the view's shape, so the
	// whole model scales by relative cardinality — the paper's
	// per-workload "empirical calibration", under which the Eq. 3 decision
	// reduces to the |Δ|/|query| ratio rule the paper reports.
	factor := float64(sh.Card()) / float64(e.Def.Pred.Shape.Card())
	ctx.Model.Tcpu *= factor
	ctx.Model.Tntwk *= factor
	// Price the path under both the greedy join planner and the static
	// join-at-home baseline, keeping the cheaper — the greedy's
	// transfer-versus-work trade can be mispriced when the scaled join
	// work is small relative to chunk movement.
	var best *queryPlan
	for _, planner := range []maintain.Planner{maintain.Differential{}, maintain.Baseline{}} {
		p, err := planner.Plan(ctx)
		if err != nil {
			return 0, nil, err
		}
		ledger := p.Charge(ctx)
		if kind == pathViewFresh {
			// Result chunk keys coincide with view chunk keys (same
			// schema): each result chunk needs the view's content shipped
			// in.
			cat := e.Cluster.Catalog()
			for v, home := range p.ViewHome {
				if vh, ok := cat.Home(e.Def.Name, v); ok {
					ledger.ChargeTransferTo(vh, home, cat.ChunkSize(e.Def.Name, v))
				}
			}
		}
		if best == nil || ledger.Cost() < best.ledger.Cost() {
			best = &queryPlan{ctx: ctx, plan: p, units: units, ledger: ledger}
		}
	}
	return best.ledger.Cost(), best, nil
}

type queryPlan struct {
	ctx    *maintain.Context
	plan   *maintain.Plan
	units  []view.Unit
	ledger *cluster.Ledger
}

// fullJoinUnits enumerates every ordered occupied chunk pair of the base
// array that can match under the predicate, with the affected result chunks.
func (e *Engine) fullJoinUnits(pred simjoin.Pred) []view.Unit {
	cat := e.Cluster.Catalog()
	baseName := e.Def.Alpha.Name
	schema := cat.Schema(baseName)
	vs := e.Def.Schema()
	keys := cat.Keys(baseName)
	var units []view.Unit
	for _, pk := range keys {
		pr := schema.ChunkRegion(pk.Coord())
		reach := pred.ReachRegion(pr)
		for _, cc := range schema.ChunksOverlapping(reach) {
			qk := cc.Key()
			if _, ok := cat.Home(baseName, qk); !ok {
				continue
			}
			qr := schema.ChunkRegion(qk.Coord())
			if !pred.PairChunks(pr, qr) {
				continue
			}
			src, ok := pr.Intersect(pred.SourceRegion(qr))
			if !ok {
				continue
			}
			proj := e.Def.GroupRegion(src)
			seen := make(map[array.ChunkKey]bool)
			var views []array.ChunkKey
			for _, vc := range vs.ChunksOverlapping(proj) {
				k := vc.Key()
				if !seen[k] {
					seen[k] = true
					views = append(views, k)
				}
			}
			if len(views) == 0 {
				continue
			}
			sort.Slice(views, func(i, j int) bool { return views[i] < views[j] })
			units = append(units, view.Unit{
				P:     view.ChunkRef{Array: baseName, Key: pk},
				Q:     view.ChunkRef{Array: baseName, Key: qk},
				Views: views,
			})
		}
	}
	return units
}

// execute runs the planned joins on the cluster and returns the gathered
// aggregate result. signOf scales each match's contribution by the sign of
// its offset (nil means always +1). Transfers are applied physically and
// reverted afterwards (queries must not disturb the layout). Cancelling the
// context stops the transfer loop and the per-node join fan-out.
func (e *Engine) execute(ctx context.Context, qp *queryPlan, pred simjoin.Pred, signOf func(off []int64) float64) (*array.Array, *cluster.Ledger, error) {
	cl := e.Cluster
	def := e.Def
	vs := def.Schema()
	ledger := qp.ledger

	for _, t := range qp.plan.Transfers {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if err := cl.Transfer(nil, t.Ref.Array, t.Ref.Key, t.From, t.To); err != nil {
			return nil, nil, err
		}
	}
	resultName := qp.ctx.ViewName + "#tmp"
	stateSpec := def.StateMergeSpec()
	tasks := make(map[int][]cluster.Task)
	for i := range qp.units {
		u := qp.units[i]
		site := qp.plan.JoinSite[i]
		tasks[site] = append(tasks[site], func() error {
			cp, err := cl.GetAt(site, u.P.Array, u.P.Key)
			if err != nil {
				return err
			}
			cq, err := cl.GetAt(site, u.Q.Array, u.Q.Key)
			if err != nil {
				return err
			}
			partials := make(map[array.ChunkKey]*array.Chunk)
			pred.JoinChunkPair(cp, cq, func(a, b array.Point, ta, tb array.Tuple) bool {
				if !def.AlphaMatch(ta) || !def.BetaMatch(tb) {
					return true
				}
				sign := 1.0
				if signOf != nil {
					ma := pred.Mapping.Map(a)
					o := make([]int64, len(b))
					for d := range b {
						o[d] = b[d] - ma[d]
					}
					sign = signOf(o)
					if sign == 0 {
						return true
					}
				}
				g := def.GroupPoint(a)
				key := vs.ChunkCoordOf(g).Key()
				part, ok := partials[key]
				if !ok {
					part = array.NewChunk(vs, key.Coord())
					partials[key] = part
				}
				contrib := def.Contribution(tb)
				if sign != 1 {
					for ci := range contrib {
						contrib[ci] *= sign
					}
				}
				if cur, found := part.Get(g); found {
					def.AddState(cur, contrib)
					return part.Set(g, cur) == nil
				}
				return part.Set(g, contrib) == nil
			})
			for key, part := range partials {
				home, ok := qp.plan.ViewHome[key]
				if !ok {
					return fmt.Errorf("query: partial for unplanned result chunk %v", key.Coord())
				}
				if err := cl.MergeAt(home, resultName, part, stateSpec); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := cl.RunPerNodeCtx(ctx, tasks); err != nil {
		return nil, nil, err
	}

	// Gather the result and clean up scratch state.
	out := array.New(vs)
	for node := 0; node < cl.NumNodes(); node++ {
		keys, err := cl.KeysAt(node, resultName)
		if err != nil {
			return nil, nil, err
		}
		for _, key := range keys {
			ch, err := cl.GetAt(node, resultName, key)
			if err != nil {
				return nil, nil, err
			}
			if err := out.MergeChunk(ch); err != nil {
				return nil, nil, err
			}
		}
		if _, err := cl.DropArrayAt(node, resultName); err != nil {
			return nil, nil, err
		}
	}
	for _, t := range qp.plan.Transfers {
		if home, ok := cl.Catalog().Home(t.Ref.Array, t.Ref.Key); ok && t.To != home {
			if _, err := cl.DeleteAt(t.To, t.Ref.Array, t.Ref.Key); err != nil {
				return nil, nil, err
			}
		}
	}
	cl.Catalog().ClearReplicas(e.Def.Alpha.Name)
	return out, ledger, nil
}
