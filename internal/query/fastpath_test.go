package query

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/shape"
)

// answerBytes canonically encodes an answer array so equivalence checks are
// byte-exact, not merely value-equal.
func answerBytes(a *array.Array) string {
	keys := a.ChunkKeys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []byte
	for _, k := range keys {
		c := a.ChunkByKey(k)
		if c == nil || c.NumCells() == 0 {
			continue
		}
		out = append(out, array.EncodeChunk(c)...)
	}
	return string(out)
}

// fastEngine clones eng with the full fast path attached: view cache wired
// to epoch publication, memo, and a 4-wide join pool.
func fastEngine(eng *Engine, ctrs *obs.FastPathCounters) *Engine {
	f := NewFastPath(0, ctrs)
	f.JoinWorkers = 4
	fe := *eng
	fe.Fast = f
	eng.Cluster.Epochs().OnPublish(f.Views.InvalidateBefore)
	return &fe
}

// commitBaseChange simulates one maintenance commit against the snapshot
// manager: retain the pre-image of a base chunk, overwrite it, update the
// catalog, publish a fresh epoch.
func commitBaseChange(t testing.TB, cl *cluster.Cluster, name string, round int) {
	t.Helper()
	keys := cl.Catalog().Keys(name)
	key := keys[round%len(keys)]
	home, ok := cl.Catalog().Home(name, key)
	if !ok {
		t.Fatalf("chunk %v has no home", key)
	}
	prev, err := cl.GetAt(home, name, key)
	if err != nil {
		t.Fatal(err)
	}
	cl.Epochs().Retain(name, key, prev)
	next := prev.Clone()
	r := next.Region()
	tup := make(array.Tuple, next.NumAttrs())
	for i := range tup {
		tup[i] = float64(round + 2)
	}
	if err := next.Set(r.Lo, tup); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutAt(home, name, next); err != nil {
		t.Fatal(err)
	}
	if err := cl.Catalog().SetChunk(name, key, home, next.SizeBytes(), next.NumCells()); err != nil {
		t.Fatal(err)
	}
	cl.Epochs().Publish()
}

// TestFastPathByteIdenticalAcrossEpochsAndShapes drives the cached and
// uncached serving paths over the same snapshots — repeated shapes, several
// epochs, all three modes — and requires byte-identical answers plus
// nonzero cache/memo traffic.
func TestFastPathByteIdenticalAcrossEpochsAndShapes(t *testing.T) {
	cold, _ := setup(t, 7, shape.L1(2, 1))
	cl := cold.Cluster
	cl.Epochs().Enable()
	ctrs := &obs.FastPathCounters{}
	fast := fastEngine(cold, ctrs)

	shapes := []*shape.Shape{
		shape.L1(2, 1), // identity: the query IS the view
		shape.Linf(2, 1),
		shape.L1(2, 2),
		shape.L2(2, 2),
	}
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		snap, err := cl.Epochs().Acquire()
		if err != nil {
			t.Fatal(err)
		}
		for si, qs := range shapes {
			for _, mode := range []Mode{Auto, ForceView, ForceComplete} {
				want, err := cold.AnswerSnapshot(ctx, snap, nil, qs, mode)
				if err != nil {
					t.Fatal(err)
				}
				// Twice: the second answer must hit the warm caches.
				for rep := 0; rep < 2; rep++ {
					got, err := fast.AnswerSnapshot(ctx, snap, nil, qs, mode)
					if err != nil {
						t.Fatal(err)
					}
					if answerBytes(got.Array) != answerBytes(want.Array) {
						t.Fatalf("round %d shape %d mode %v rep %d: fast path diverges from cold path",
							round, si, mode, rep)
					}
					if got.Choice.UseView != want.Choice.UseView {
						t.Fatalf("round %d shape %d mode %v: decision diverges", round, si, mode)
					}
				}
			}
		}
		snap.Release()
		commitBaseChange(t, cl, "A", round)
	}
	s := ctrs.Snapshot()
	if s.ViewHits == 0 || s.MemoHits == 0 || s.SolveSkips == 0 {
		t.Fatalf("fast path never engaged: %+v", s)
	}
	if s.ViewInvalidations == 0 {
		t.Fatalf("epoch publishes never invalidated cached views: %+v", s)
	}
}

// TestFastPathNeverServesStaleEpoch commits a view-content change and
// checks the cached path answers the new epoch with the new content — the
// epoch-keyed cache must not leak epoch-N data into epoch-N+1 answers.
func TestFastPathNeverServesStaleEpoch(t *testing.T) {
	cold, _ := setup(t, 13, shape.L1(2, 1))
	cl := cold.Cluster
	cl.Epochs().Enable()
	ctrs := &obs.FastPathCounters{}
	fast := fastEngine(cold, ctrs)
	ctx := context.Background()
	viewShape := shape.L1(2, 1)

	snap1, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	res1, err := fast.AnswerSnapshot(ctx, snap1, nil, viewShape, Auto)
	if err != nil {
		t.Fatal(err)
	}
	old := answerBytes(res1.Array)

	// Commit: overwrite one chunk of the view itself and publish.
	commitBaseChange(t, cl, "V", 0)

	snap2, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Release()
	got, err := fast.AnswerSnapshot(ctx, snap2, nil, viewShape, Auto)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.AnswerSnapshot(ctx, snap2, nil, viewShape, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if answerBytes(got.Array) != answerBytes(want.Array) {
		t.Fatal("epoch 2 cached answer diverges from cold gather")
	}
	if answerBytes(got.Array) == old {
		t.Fatal("epoch 2 answer served epoch 1 view content")
	}
	// The still-pinned epoch-1 snapshot keeps answering epoch-1 content.
	res1b, err := fast.AnswerSnapshot(ctx, snap1, nil, viewShape, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if answerBytes(res1b.Array) != old {
		t.Fatal("pinned epoch 1 snapshot changed its answer after the commit")
	}
	snap1.Release()
}

// TestFastPathConcurrentAnswersUnderCommits hammers the cached path from
// many goroutines while commits publish fresh epochs, comparing every
// answer against the cold path on the same snapshot. Run under -race this
// exercises the shared warmed view, the COW overlays, the memo, and the
// parallel join together.
func TestFastPathConcurrentAnswersUnderCommits(t *testing.T) {
	cold, _ := setup(t, 23, shape.L1(2, 1))
	cl := cold.Cluster
	cl.Epochs().Enable()
	ctrs := &obs.FastPathCounters{}
	fast := fastEngine(cold, ctrs)
	ctx := context.Background()
	shapes := []*shape.Shape{shape.L1(2, 1), shape.Linf(2, 1), shape.L1(2, 2)}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := cl.Epochs().Acquire()
				if err != nil {
					errs <- err
					return
				}
				qs := shapes[(g+i)%len(shapes)]
				got, err := fast.AnswerSnapshot(ctx, snap, nil, qs, ForceView)
				if err != nil {
					snap.Release()
					errs <- fmt.Errorf("fast: %w", err)
					return
				}
				want, err := cold.AnswerSnapshot(ctx, snap, nil, qs, ForceView)
				if err != nil {
					snap.Release()
					errs <- fmt.Errorf("cold: %w", err)
					return
				}
				if answerBytes(got.Array) != answerBytes(want.Array) {
					snap.Release()
					errs <- fmt.Errorf("goroutine %d iter %d: fast/cold divergence at epoch %d", g, i, snap.Epoch())
					return
				}
				snap.Release()
			}
		}(g)
	}
	for round := 0; round < 5; round++ {
		commitBaseChange(t, cl, "A", round)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
