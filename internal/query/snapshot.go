package query

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

// AnswerSnapshot evaluates the query against a pinned snapshot instead of
// the live cluster. This is the serving path: it is strictly read-only — no
// transfers, no scratch arrays, no catalog writes — so any number of these
// can run concurrently with each other and with maintenance commits. The
// view is gathered at the snapshot's epoch and the Δ-shape (or complete)
// similarity join is evaluated locally at the caller over snapshot base
// chunk reads, every one of which resolves through the epoch's retained
// versions. The optional read cache absorbs repeated chunk fetches across
// queries by content hash.
//
// With Engine.Fast attached, three accelerators engage: the assembled view
// comes from the epoch-keyed view cache (shared read-only; this answer's
// signed merge lands on a copy-on-write overlay), the Δ decomposition and
// plan costs come from the shape memo, and chunk-pair joins fan out across
// a worker pool. All three are exact: the result is byte-identical to the
// cold path's.
//
// The cost-model decision under Auto still prices plans against the live
// catalog — pricing tracks the current layout, while correctness is pinned
// to the snapshot.
func (e *Engine) AnswerSnapshot(ctx context.Context, snap *cluster.Snapshot, rc *cluster.ReadCache, queryShape *shape.Shape, mode Mode) (*Result, error) {
	ch, err := e.decideForMode(ctx, queryShape, mode)
	if err != nil {
		return nil, err
	}
	if !ch.UseView {
		pred := simjoin.NewPred(queryShape, e.Def.Pred.Mapping)
		out, err := e.snapshotJoin(ctx, snap, rc, pred, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Array: out, Choice: ch, Ledger: e.Cluster.NewLedger()}, nil
	}

	out, release, err := e.snapshotView(snap, rc)
	if err != nil {
		return nil, err
	}
	defer release()
	if ch.Delta == nil {
		// The query IS the view: the assembled view is the whole answer.
		return &Result{Array: out, Choice: ch, Ledger: e.Cluster.NewLedger()}, nil
	}
	pred := simjoin.NewPred(ch.Delta, e.Def.Pred.Mapping)
	diff, err := e.snapshotJoin(ctx, snap, rc, pred, ch.signOf)
	if err != nil {
		return nil, err
	}
	// MergeDelta mutates matched state tuples in place through Get, which
	// on a shared cached view would write through to the cache. Owning the
	// overlay's diff-touched chunks first keeps the base immutable.
	diff.EachChunk(func(c *array.Chunk) bool {
		out.EnsureOwned(c.Key())
		return true
	})
	if err := view.MergeDelta(e.Def, out, diff); err != nil {
		return nil, err
	}
	return &Result{Array: out, Choice: ch, Ledger: e.Cluster.NewLedger()}, nil
}

// snapshotView returns the assembled view at the snapshot's epoch. Through
// the view cache it is a shallow copy-on-write overlay of the shared warmed
// base (chunks clone lazily on first write); without a cache the caller
// owns a fresh gather outright.
func (e *Engine) snapshotView(snap *cluster.Snapshot, rc *cluster.ReadCache) (*array.Array, func(), error) {
	if e.Fast != nil && e.Fast.Views != nil {
		base, release, err := e.Fast.Views.Acquire(e.Def.Name, snap, rc)
		if err != nil {
			return nil, nil, err
		}
		return base.ShallowClone(), release, nil
	}
	arr, err := snap.GatherCached(e.Def.Name, rc)
	if err != nil {
		return nil, nil, err
	}
	return arr, func() {}, nil
}

// snapshotJoin runs the similarity join over the snapshot's base chunks,
// accumulating aggregate state into a local result array. The chunk-pair
// enumeration mirrors fullJoinUnits, but against the snapshot's chunk map
// and without any placement concern: every pair evaluates here, at the
// caller.
//
// Each pair is evaluated into its own partial and the partials fold into
// the result in ascending pair order — on one goroutine or many, the same
// additions happen in the same order, so the parallel kernel is bitwise
// identical to the serial one.
func (e *Engine) snapshotJoin(ctx context.Context, snap *cluster.Snapshot, rc *cluster.ReadCache, pred simjoin.Pred, signOf func(off []int64) float64) (*array.Array, error) {
	def := e.Def
	baseName := def.Alpha.Name
	schema := snap.Schema(baseName)
	if schema == nil {
		return nil, fmt.Errorf("query: base array %q not in snapshot %d", baseName, snap.Epoch())
	}
	vs := def.Schema()
	out := array.New(vs)

	pairs := e.snapshotPairs(snap, pred)
	if len(pairs) == 0 {
		return out, nil
	}

	// Fetch each distinct chunk once, up front. The fetch order is the
	// first-use order of the serial loop, so the cold path's read pattern
	// (and read-cache behavior) is unchanged.
	chunks := make(map[array.ChunkKey]*array.Chunk)
	for _, pr := range pairs {
		for _, key := range pr {
			if _, ok := chunks[key]; ok {
				continue
			}
			ch, err := snap.CachedChunk(baseName, key, rc)
			if err != nil {
				return nil, err
			}
			chunks[key] = ch
		}
	}

	workers := e.Fast.workers()
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for _, pr := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			part, err := pairPartial(def, vs, pred, chunks[pr[0]], chunks[pr[1]], signOf)
			if err != nil {
				return nil, err
			}
			if err := mergePartial(def, out, part); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// Parallel kernel. Shared chunks must serve concurrent readers, so
	// every lazy per-chunk cache is built before fan-out.
	for _, ch := range chunks {
		ch.Warm()
	}
	type pairResult struct {
		idx  int
		part map[array.ChunkKey]*array.Chunk
		err  error
	}
	var next atomic.Int64
	results := make(chan pairResult, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				if err := ctx.Err(); err != nil {
					// Still emit one result per claimed index so the
					// merger's receive count stays exact.
					results <- pairResult{idx: i, err: err}
					continue
				}
				pr := pairs[i]
				part, err := pairPartial(def, vs, pred, chunks[pr[0]], chunks[pr[1]], signOf)
				results <- pairResult{idx: i, part: part, err: err}
			}
		}()
	}
	// Merge in ascending pair order through a reorder buffer: out-of-order
	// arrivals park until their turn.
	parked := make(map[int]map[array.ChunkKey]*array.Chunk, workers)
	var firstErr error
	nextMerge := 0
	for received := 0; received < len(pairs); received++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		if firstErr != nil {
			continue
		}
		parked[r.idx] = r.part
		for {
			part, ok := parked[nextMerge]
			if !ok {
				break
			}
			delete(parked, nextMerge)
			nextMerge++
			if err := mergePartial(def, out, part); err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// snapshotPairs enumerates the ordered chunk pairs of the base array that
// can match under the predicate, in deterministic (sorted-key) order. With
// a FastPath the list memoizes per (epoch, join-shape fingerprint): the
// epoch freezes the occupied chunk set, so a hit is exact.
func (e *Engine) snapshotPairs(snap *cluster.Snapshot, pred simjoin.Pred) [][2]array.ChunkKey {
	baseName := e.Def.Alpha.Name
	schema := snap.Schema(baseName)
	f := e.Fast
	fp := ""
	if f != nil {
		if sfp, err := pred.Shape.Fingerprint(); err == nil {
			fp = sfp
			if pairs, ok := f.lookupPairs(snap.Epoch(), fp); ok {
				f.countMemo(true)
				return pairs
			}
		}
	}
	var pairs [][2]array.ChunkKey
	for _, pk := range snap.Keys(baseName) {
		pr := schema.ChunkRegion(pk.Coord())
		reach := pred.ReachRegion(pr)
		for _, cc := range schema.ChunksOverlapping(reach) {
			qk := cc.Key()
			if _, _, _, ok := snap.ChunkMeta(baseName, qk); !ok {
				continue
			}
			qr := schema.ChunkRegion(qk.Coord())
			if !pred.PairChunks(pr, qr) {
				continue
			}
			pairs = append(pairs, [2]array.ChunkKey{pk, qk})
		}
	}
	if f != nil && fp != "" {
		f.countMemo(false)
		f.storePairs(snap.Epoch(), fp, pairs)
	}
	return pairs
}

// pairPartial evaluates one chunk pair of the similarity join into a
// private set of partial result chunks. It never touches shared state, so
// any number of pairs may evaluate concurrently over warmed chunks.
func pairPartial(def *view.Definition, vs *array.Schema, pred simjoin.Pred, cp, cq *array.Chunk, signOf func(off []int64) float64) (map[array.ChunkKey]*array.Chunk, error) {
	partials := make(map[array.ChunkKey]*array.Chunk)
	var joinErr error
	pred.JoinChunkPair(cp, cq, func(a, b array.Point, ta, tb array.Tuple) bool {
		if !def.AlphaMatch(ta) || !def.BetaMatch(tb) {
			return true
		}
		sign := 1.0
		if signOf != nil {
			ma := pred.Mapping.Map(a)
			o := make([]int64, len(b))
			for d := range b {
				o[d] = b[d] - ma[d]
			}
			sign = signOf(o)
			if sign == 0 {
				return true
			}
		}
		g := def.GroupPoint(a)
		key := vs.ChunkCoordOf(g).Key()
		part, ok := partials[key]
		if !ok {
			part = array.NewChunk(vs, key.Coord())
			partials[key] = part
		}
		contrib := def.Contribution(tb)
		if sign != 1 {
			for ci := range contrib {
				contrib[ci] *= sign
			}
		}
		if cur, found := part.Get(g); found {
			def.AddState(cur, contrib)
			joinErr = part.Set(g, cur)
		} else {
			joinErr = part.Set(g, contrib)
		}
		return joinErr == nil
	})
	if joinErr != nil {
		return nil, joinErr
	}
	return partials, nil
}

// mergePartial folds one pair's partial chunks into the result array.
// Cells are independent, so only the per-pair fold order (the caller's
// ascending pair order) affects floating-point results.
func mergePartial(def *view.Definition, out *array.Array, partials map[array.ChunkKey]*array.Chunk) error {
	var err error
	for _, part := range partials {
		part.Each(func(g array.Point, st array.Tuple) bool {
			if cur, found := out.Get(g); found {
				def.AddState(cur, st)
				err = out.Set(g, cur)
			} else {
				err = out.Set(g, st)
			}
			return err == nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
