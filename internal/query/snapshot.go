package query

import (
	"context"
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

// AnswerSnapshot evaluates the query against a pinned snapshot instead of
// the live cluster. This is the serving path: it is strictly read-only — no
// transfers, no scratch arrays, no catalog writes — so any number of these
// can run concurrently with each other and with maintenance commits. The
// view is gathered at the snapshot's epoch and the Δ-shape (or complete)
// similarity join is evaluated locally at the caller over snapshot base
// chunk reads, every one of which resolves through the epoch's retained
// versions. The optional read cache absorbs repeated chunk fetches across
// queries by content hash.
//
// The cost-model decision under Auto still prices plans against the live
// catalog — pricing tracks the current layout, while correctness is pinned
// to the snapshot.
func (e *Engine) AnswerSnapshot(ctx context.Context, snap *cluster.Snapshot, rc *cluster.ReadCache, queryShape *shape.Shape, mode Mode) (*Result, error) {
	ch, err := e.decideForMode(ctx, queryShape, mode)
	if err != nil {
		return nil, err
	}
	if !ch.UseView {
		pred := simjoin.NewPred(queryShape, e.Def.Pred.Mapping)
		out, err := e.snapshotJoin(ctx, snap, rc, pred, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Array: out, Choice: ch, Ledger: e.Cluster.NewLedger()}, nil
	}

	out, err := snap.GatherCached(e.Def.Name, rc)
	if err != nil {
		return nil, err
	}
	delta, err := shape.DeltaChecked(e.Def.Pred.Shape, queryShape)
	if err != nil {
		return nil, err
	}
	if delta == nil {
		// The query IS the view: the snapshot gather is the whole answer.
		return &Result{Array: out, Choice: ch, Ledger: e.Cluster.NewLedger()}, nil
	}
	plus, minus := splitDelta(queryShape, delta)
	pred := simjoin.NewPred(delta, e.Def.Pred.Mapping)
	signOf := func(off []int64) float64 {
		if plus != nil && plus.Contains(off) {
			return 1
		}
		if minus != nil && minus.Contains(off) {
			return -1
		}
		return 0
	}
	diff, err := e.snapshotJoin(ctx, snap, rc, pred, signOf)
	if err != nil {
		return nil, err
	}
	if err := view.MergeDelta(e.Def, out, diff); err != nil {
		return nil, err
	}
	return &Result{Array: out, Choice: ch, Ledger: e.Cluster.NewLedger()}, nil
}

// snapshotJoin runs the similarity join over the snapshot's base chunks,
// accumulating aggregate state into a local result array. The chunk-pair
// enumeration mirrors fullJoinUnits, but against the snapshot's chunk map
// and without any placement concern: every pair evaluates here, at the
// caller. Chunks are fetched once and memoized for the query's duration.
func (e *Engine) snapshotJoin(ctx context.Context, snap *cluster.Snapshot, rc *cluster.ReadCache, pred simjoin.Pred, signOf func(off []int64) float64) (*array.Array, error) {
	def := e.Def
	baseName := def.Alpha.Name
	schema := snap.Schema(baseName)
	if schema == nil {
		return nil, fmt.Errorf("query: base array %q not in snapshot %d", baseName, snap.Epoch())
	}
	vs := def.Schema()
	out := array.New(vs)

	chunks := make(map[array.ChunkKey]*array.Chunk)
	fetch := func(key array.ChunkKey) (*array.Chunk, error) {
		if ch, ok := chunks[key]; ok {
			return ch, nil
		}
		ch, err := snap.CachedChunk(baseName, key, rc)
		if err != nil {
			return nil, err
		}
		chunks[key] = ch
		return ch, nil
	}

	var joinErr error
	for _, pk := range snap.Keys(baseName) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pr := schema.ChunkRegion(pk.Coord())
		reach := pred.ReachRegion(pr)
		for _, cc := range schema.ChunksOverlapping(reach) {
			qk := cc.Key()
			if _, _, _, ok := snap.ChunkMeta(baseName, qk); !ok {
				continue
			}
			qr := schema.ChunkRegion(qk.Coord())
			if !pred.PairChunks(pr, qr) {
				continue
			}
			cp, err := fetch(pk)
			if err != nil {
				return nil, err
			}
			cq, err := fetch(qk)
			if err != nil {
				return nil, err
			}
			pred.JoinChunkPair(cp, cq, func(a, b array.Point, ta, tb array.Tuple) bool {
				if !def.AlphaMatch(ta) || !def.BetaMatch(tb) {
					return true
				}
				sign := 1.0
				if signOf != nil {
					ma := pred.Mapping.Map(a)
					o := make([]int64, len(b))
					for d := range b {
						o[d] = b[d] - ma[d]
					}
					sign = signOf(o)
					if sign == 0 {
						return true
					}
				}
				g := def.GroupPoint(a)
				contrib := def.Contribution(tb)
				if sign != 1 {
					for ci := range contrib {
						contrib[ci] *= sign
					}
				}
				if cur, found := out.Get(g); found {
					def.AddState(cur, contrib)
					joinErr = out.Set(g, cur)
				} else {
					joinErr = out.Set(g, contrib)
				}
				return joinErr == nil
			})
			if joinErr != nil {
				return nil, joinErr
			}
		}
	}
	return out, nil
}
