package shape

import "testing"

func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	orig := L1(3, 2)
	fp1, err := orig.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := orig.Spec()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := rebuilt.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("rebuilt shape fingerprints differ: %q vs %q", fp1, fp2)
	}
}

func TestFingerprintDistinguishesShapes(t *testing.T) {
	shapes := []*Shape{L1(2, 1), L2(2, 1), Linf(2, 1), L1(2, 2), L1(3, 1)}
	seen := make(map[string]string)
	for _, s := range shapes {
		fp, err := s.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("collision: %s and %s both fingerprint to %q", prev, s.Name(), fp)
		}
		seen[fp] = s.Name()
	}
}

func TestFingerprintOffsetsOrderInsensitive(t *testing.T) {
	a, err := FromOffsets("a", [][]int64{{0, 0}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromOffsets("b-different-name", [][]int64{{0, 1}, {0, 0}, {1, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	fpA, _ := a.Fingerprint()
	fpB, _ := b.Fingerprint()
	if fpA != fpB {
		t.Fatalf("same offset set fingerprints differ: %q vs %q", fpA, fpB)
	}
}

func TestFingerprintEmbed(t *testing.T) {
	e1, err := Embed(L1(2, 1), 3, []int{1, 2}, map[int][2]int64{0: {-5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Embed(L1(2, 1), 3, []int{1, 2}, map[int][2]int64{0: {-6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := e1.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := e2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatalf("different windows fingerprint identically: %q", fp1)
	}
}
