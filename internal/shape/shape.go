// Package shape implements the shape arrays used by array similarity join
// (Section 2.2 of the paper): finite sets of integer offsets applied around
// each cell. A shape is represented by a bounding box of offsets plus a
// membership predicate, which keeps very elongated shapes (e.g., "similar at
// any time within a window") cheap while still supporting exact enumeration
// for Δ-shape computation (Section 5).
package shape

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Shape is a finite set of d-dimensional integer offsets. The zero offset
// may or may not be a member; the paper's L1(1) "5-cell cross" includes it.
// Shapes are immutable after construction, except for the cardinality cache,
// which is atomic so one shape can serve concurrent readers (the serving
// path prices queries against the same shape the maintenance loop plans
// with).
type Shape struct {
	name string
	lo   []int64
	hi   []int64
	pred func(off []int64) bool
	card atomic.Int64 // lazily computed cardinality; -1 until known
	spec *Spec        // structural provenance when built by a named constructor
}

// New builds a shape from an offset bounding box [lo, hi] (inclusive,
// component-wise) and a membership predicate evaluated only inside the box.
func New(name string, lo, hi []int64, pred func(off []int64) bool) (*Shape, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, fmt.Errorf("shape: bad box arity %d/%d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return nil, fmt.Errorf("shape: empty box on dim %d: [%d, %d]", i, lo[i], hi[i])
		}
	}
	s := &Shape{name: name, lo: cloneI64(lo), hi: cloneI64(hi), pred: pred}
	s.card.Store(-1)
	return s, nil
}

// MustNew is New that panics on error; for statically-known shapes.
func MustNew(name string, lo, hi []int64, pred func(off []int64) bool) *Shape {
	s, err := New(name, lo, hi, pred)
	if err != nil {
		panic(err)
	}
	return s
}

// L1 returns the L1-norm ball of radius r in dims dimensions, center
// included: {off : Σ|off_i| <= r}. L1(2, 1) is the paper's 5-cell cross.
func L1(dims int, r int64) *Shape {
	lo, hi := cube(dims, r)
	s := MustNew(fmt.Sprintf("L1(%d)", r), lo, hi, func(off []int64) bool {
		sum := int64(0)
		for _, v := range off {
			sum += absI64(v)
		}
		return sum <= r
	})
	s.spec = &Spec{Kind: SpecL1, Dims: dims, Radius: r}
	return s
}

// Linf returns the L∞-norm ball of radius r: the full (2r+1)^dims cube.
func Linf(dims int, r int64) *Shape {
	lo, hi := cube(dims, r)
	s := MustNew(fmt.Sprintf("Linf(%d)", r), lo, hi, func(off []int64) bool {
		return true // box membership is exactly the L∞ ball
	})
	s.spec = &Spec{Kind: SpecLinf, Dims: dims, Radius: r}
	return s
}

// L2 returns the Euclidean-norm ball of radius r: {off : Σ off_i² <= r²}.
func L2(dims int, r int64) *Shape {
	lo, hi := cube(dims, r)
	r2 := r * r
	s := MustNew(fmt.Sprintf("L2(%d)", r), lo, hi, func(off []int64) bool {
		sum := int64(0)
		for _, v := range off {
			sum += v * v
		}
		return sum <= r2
	})
	s.spec = &Spec{Kind: SpecL2, Dims: dims, Radius: r}
	return s
}

// FromOffsets builds a shape from an explicit offset list. Offsets are
// copied; duplicates are tolerated but counted once.
func FromOffsets(name string, offs [][]int64) (*Shape, error) {
	if len(offs) == 0 {
		return nil, fmt.Errorf("shape: %s has no offsets", name)
	}
	d := len(offs[0])
	set := make(map[string]bool, len(offs))
	lo := cloneI64(offs[0])
	hi := cloneI64(offs[0])
	for _, off := range offs {
		if len(off) != d {
			return nil, fmt.Errorf("shape: %s mixes offset arities", name)
		}
		set[offKey(off)] = true
		for i, v := range off {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	s, err := New(name, lo, hi, func(off []int64) bool { return set[offKey(off)] })
	if err != nil {
		return nil, err
	}
	s.card.Store(int64(len(set)))
	s.spec = &Spec{Kind: SpecOffsets, Name: name, Offsets: cloneOffsets(offs)}
	return s, nil
}

// Embed lifts a low-dimensional shape into ndims dimensions: the inner
// shape's offsets apply to the listed dims (in order) while every remaining
// dimension k is constrained only by window[k] (an inclusive offset range).
// Windows for the dims occupied by the inner shape are ignored.
//
// Example: the paper's PTF-5 view shape — L1(1) on (ra, dec) across the
// previous 200 time steps — is
//
//	Embed(L1(2, 1), 3, []int{1, 2}, map[int][2]int64{0: {-200, 0}})
func Embed(inner *Shape, ndims int, dims []int, window map[int][2]int64) (*Shape, error) {
	if len(dims) != len(inner.lo) {
		return nil, fmt.Errorf("shape: Embed got %d dims for a %d-dim shape", len(dims), len(inner.lo))
	}
	occupied := make(map[int]bool, len(dims))
	lo := make([]int64, ndims)
	hi := make([]int64, ndims)
	for i, d := range dims {
		if d < 0 || d >= ndims {
			return nil, fmt.Errorf("shape: Embed dim %d out of range [0, %d)", d, ndims)
		}
		if occupied[d] {
			return nil, fmt.Errorf("shape: Embed dim %d used twice", d)
		}
		occupied[d] = true
		lo[d] = inner.lo[i]
		hi[d] = inner.hi[i]
	}
	for k := 0; k < ndims; k++ {
		if occupied[k] {
			continue
		}
		w, ok := window[k]
		if !ok {
			return nil, fmt.Errorf("shape: Embed missing window for dim %d", k)
		}
		if w[0] > w[1] {
			return nil, fmt.Errorf("shape: Embed empty window for dim %d", k)
		}
		lo[k] = w[0]
		hi[k] = w[1]
	}
	dimsCopy := append([]int(nil), dims...)
	name := inner.name
	if len(window) > 0 {
		name = fmt.Sprintf("%s@%ddim", inner.name, ndims)
	}
	// The predicate allocates its scratch buffer per call so that shapes are
	// safe for concurrent use by join workers.
	s, err := New(name, lo, hi, func(off []int64) bool {
		innerOff := make([]int64, len(dimsCopy))
		for i, d := range dimsCopy {
			innerOff[i] = off[d]
		}
		return inner.pred(innerOff)
	})
	if err != nil {
		return nil, err
	}
	if inner.spec != nil {
		wcopy := make(map[int][2]int64, len(window))
		for k, v := range window {
			wcopy[k] = v
		}
		s.spec = &Spec{
			Kind:      SpecEmbed,
			Dims:      ndims,
			Inner:     inner.spec,
			EmbedDims: append([]int(nil), dims...),
			Window:    wcopy,
		}
	}
	return s, nil
}

// Name returns the display name of the shape.
func (s *Shape) Name() string { return s.name }

// NumDims returns the offset dimensionality.
func (s *Shape) NumDims() int { return len(s.lo) }

// Box returns copies of the inclusive offset bounds.
func (s *Shape) Box() (lo, hi []int64) { return cloneI64(s.lo), cloneI64(s.hi) }

// BoxInto copies the inclusive offset bounds into caller-provided buffers
// (each of length NumDims), avoiding Box's per-call clones in hot loops.
func (s *Shape) BoxInto(lo, hi []int64) {
	copy(lo, s.lo)
	copy(hi, s.hi)
}

// Contains reports whether off is a member of the shape.
func (s *Shape) Contains(off []int64) bool {
	if len(off) != len(s.lo) {
		return false
	}
	for i, v := range off {
		if v < s.lo[i] || v > s.hi[i] {
			return false
		}
	}
	return s.pred(off)
}

// Card returns the number of offsets in the shape, enumerating the bounding
// box on first call and caching the result. Beware of shapes with enormous
// boxes; Card is O(box volume).
func (s *Shape) Card() int64 {
	if c := s.card.Load(); c >= 0 {
		return c
	}
	n := int64(0)
	s.eachBox(func(off []int64) {
		if s.pred(off) {
			n++
		}
	})
	// Concurrent first calls compute the same value; the store is idempotent.
	s.card.Store(n)
	return n
}

// BoxVolume returns the number of offset slots in the bounding box.
func (s *Shape) BoxVolume() int64 {
	n := int64(1)
	for i := range s.lo {
		n *= s.hi[i] - s.lo[i] + 1
	}
	return n
}

// Offsets enumerates the member offsets in row-major order.
func (s *Shape) Offsets() [][]int64 {
	out := make([][]int64, 0, maxI64(s.card.Load(), 0))
	s.eachBox(func(off []int64) {
		if s.pred(off) {
			out = append(out, cloneI64(off))
		}
	})
	return out
}

// Reflect returns the shape with every offset negated: x is in shape σ
// centered on y exactly when y is in Reflect(σ) centered on x. Needed when
// finding which existing cells see a newly inserted cell.
func (s *Shape) Reflect() *Shape {
	d := len(s.lo)
	lo := make([]int64, d)
	hi := make([]int64, d)
	for i := 0; i < d; i++ {
		lo[i] = -s.hi[i]
		hi[i] = -s.lo[i]
	}
	orig := s
	out := MustNew("-"+s.name, lo, hi, func(off []int64) bool {
		neg := make([]int64, len(off))
		for i, v := range off {
			neg[i] = -v
		}
		return orig.pred(neg)
	})
	out.card.Store(s.card.Load())
	return out
}

// Symmetric reports whether the shape equals its reflection (off in σ iff
// -off in σ). All Lp balls are symmetric.
func (s *Shape) Symmetric() bool {
	r := s.Reflect()
	if !equalI64(s.lo, r.lo) || !equalI64(s.hi, r.hi) {
		return false
	}
	sym := true
	s.eachBox(func(off []int64) {
		if s.pred(off) != r.Contains(off) {
			sym = false
		}
	})
	return sym
}

// Delta returns the positional symmetric set difference between view and
// query shapes: (view \ query) ∪ (query \ view). This is the Δ shape of
// Section 5 used for differential query answering. The shapes must have the
// same dimensionality — violating that is a programming error and panics.
// Boundary code handling caller-supplied shapes should use DeltaChecked.
// The result is nil when the shapes are identical.
func Delta(view, query *Shape) *Shape {
	out, err := DeltaChecked(view, query)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// DeltaChecked is Delta with the arity invariant surfaced as an error
// instead of a panic, for boundaries where the query shape comes from the
// user rather than from the view definition.
func DeltaChecked(view, query *Shape) (*Shape, error) {
	d := len(view.lo)
	if len(query.lo) != d {
		return nil, fmt.Errorf("shape: Delta arity mismatch %d vs %d", d, len(query.lo))
	}
	var offs [][]int64
	lo := make([]int64, d)
	hi := make([]int64, d)
	for i := 0; i < d; i++ {
		lo[i] = minI64(view.lo[i], query.lo[i])
		hi[i] = maxI64(view.hi[i], query.hi[i])
	}
	union := &Shape{lo: lo, hi: hi, pred: func([]int64) bool { return true }}
	union.eachBox(func(off []int64) {
		if view.Contains(off) != query.Contains(off) {
			offs = append(offs, cloneI64(off))
		}
	})
	if len(offs) == 0 {
		return nil, nil
	}
	out, err := FromOffsets(fmt.Sprintf("delta(%s,%s)", view.name, query.name), offs)
	if err != nil {
		panic(err) // unreachable: offs is non-empty and uniform
	}
	return out, nil
}

// Equal reports whether two shapes contain exactly the same offsets.
func (s *Shape) Equal(t *Shape) bool {
	return Delta(s, t) == nil
}

// String renders the shape name and cardinality when cheaply available.
func (s *Shape) String() string {
	if c := s.card.Load(); c >= 0 {
		return fmt.Sprintf("%s[%d offsets]", s.name, c)
	}
	return s.name
}

// eachBox visits every offset slot in the bounding box in row-major order,
// reusing one buffer.
func (s *Shape) eachBox(fn func(off []int64)) {
	d := len(s.lo)
	cur := cloneI64(s.lo)
	for {
		fn(cur)
		i := d - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] <= s.hi[i] {
				break
			}
			cur[i] = s.lo[i]
		}
		if i < 0 {
			return
		}
	}
}

func cube(dims int, r int64) (lo, hi []int64) {
	lo = make([]int64, dims)
	hi = make([]int64, dims)
	for i := range lo {
		lo[i] = -r
		hi[i] = r
	}
	return lo, hi
}

func offKey(off []int64) string {
	var b strings.Builder
	for i, v := range off {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// SortOffsets orders offsets lexicographically in place; used by tests and
// deterministic serialization.
func SortOffsets(offs [][]int64) {
	sort.Slice(offs, func(i, j int) bool {
		a, b := offs[i], offs[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func cloneI64(v []int64) []int64 {
	out := make([]int64, len(v))
	copy(out, v)
	return out
}

func equalI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
