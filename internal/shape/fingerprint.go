package shape

import (
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a canonical structural identity string for the shape:
// two shapes with the same fingerprint contain exactly the same offsets.
// The fingerprint is derived from the shape's constructive Spec — display
// names are excluded, offset lists are sorted, and Embed windows are
// serialized in dimension order — so the same query shape arriving twice
// (rebuilt from the wire each time) keys to one memo entry. Shapes without
// a buildable Spec (no provenance, oversized box) return an error; callers
// should treat that as "not memoizable" rather than a failed query.
func (s *Shape) Fingerprint() (string, error) {
	sp, err := s.Spec()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := fingerprintSpec(&b, sp); err != nil {
		return "", err
	}
	return b.String(), nil
}

func fingerprintSpec(b *strings.Builder, sp *Spec) error {
	switch sp.Kind {
	case SpecL1:
		fmt.Fprintf(b, "l1:%d:%d", sp.Dims, sp.Radius)
	case SpecL2:
		fmt.Fprintf(b, "l2:%d:%d", sp.Dims, sp.Radius)
	case SpecLinf:
		fmt.Fprintf(b, "linf:%d:%d", sp.Dims, sp.Radius)
	case SpecOffsets:
		offs := cloneOffsets(sp.Offsets)
		SortOffsets(offs)
		b.WriteString("offs:")
		for i, off := range offs {
			// Duplicates are tolerated by FromOffsets but counted once;
			// collapse them here so the identity is truly structural.
			if i > 0 && equalI64(off, offs[i-1]) {
				continue
			}
			if i > 0 {
				b.WriteByte(';')
			}
			for j, v := range off {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(b, "%d", v)
			}
		}
	case SpecEmbed:
		fmt.Fprintf(b, "embed:%d:%v:", sp.Dims, sp.EmbedDims)
		dims := make([]int, 0, len(sp.Window))
		for d := range sp.Window {
			dims = append(dims, d)
		}
		sort.Ints(dims)
		for _, d := range dims {
			w := sp.Window[d]
			fmt.Fprintf(b, "w%d=[%d,%d];", d, w[0], w[1])
		}
		b.WriteByte('(')
		if err := fingerprintSpec(b, sp.Inner); err != nil {
			return err
		}
		b.WriteByte(')')
	default:
		return fmt.Errorf("shape: unknown spec kind %d", int(sp.Kind))
	}
	return nil
}
