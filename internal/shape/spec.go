package shape

import "fmt"

// SpecKind names the constructor a Spec describes.
type SpecKind int

// Spec kinds.
const (
	SpecL1 SpecKind = iota
	SpecL2
	SpecLinf
	SpecOffsets
	SpecEmbed
)

// maxSpecOffsets caps the offset enumeration used when converting a shape
// without recorded provenance into a Spec. Shapes bigger than this (e.g.
// long window embeds) must come from a named constructor to be shippable.
const maxSpecOffsets = 1 << 16

// Spec is a serializable structural description of a shape — the
// constructor call that produced it, as plain data. Specs are what travel
// between processes: a shape's membership predicate is a function value and
// cannot cross the wire, but its Spec can be rebuilt into an identical
// shape on the far side.
type Spec struct {
	Kind    SpecKind
	Dims    int   // L1/L2/Linf/Embed: dimensionality
	Radius  int64 // L1/L2/Linf: ball radius
	Name    string
	Offsets [][]int64 // SpecOffsets: explicit member list

	// SpecEmbed fields.
	Inner     *Spec
	EmbedDims []int
	Window    map[int][2]int64
}

// Build reconstructs the shape the spec describes.
func (sp *Spec) Build() (*Shape, error) {
	if sp == nil {
		return nil, fmt.Errorf("shape: nil spec")
	}
	switch sp.Kind {
	case SpecL1:
		return L1(sp.Dims, sp.Radius), nil
	case SpecL2:
		return L2(sp.Dims, sp.Radius), nil
	case SpecLinf:
		return Linf(sp.Dims, sp.Radius), nil
	case SpecOffsets:
		return FromOffsets(sp.Name, sp.Offsets)
	case SpecEmbed:
		inner, err := sp.Inner.Build()
		if err != nil {
			return nil, err
		}
		return Embed(inner, sp.Dims, sp.EmbedDims, sp.Window)
	default:
		return nil, fmt.Errorf("shape: unknown spec kind %d", int(sp.Kind))
	}
}

// Spec returns a serializable description of the shape. Shapes built by the
// named constructors (L1, L2, Linf, FromOffsets, Embed) carry their
// provenance; for other shapes the member offsets are enumerated, which
// fails when the bounding box exceeds maxSpecOffsets slots.
func (s *Shape) Spec() (*Spec, error) {
	if s.spec != nil {
		return s.spec, nil
	}
	if v := s.BoxVolume(); v > maxSpecOffsets {
		return nil, fmt.Errorf("shape: %s has no recorded provenance and its box (%d slots) is too large to enumerate", s.name, v)
	}
	offs := s.Offsets()
	if len(offs) == 0 {
		return nil, fmt.Errorf("shape: %s is empty", s.name)
	}
	return &Spec{Kind: SpecOffsets, Name: s.name, Offsets: offs}, nil
}

func cloneOffsets(offs [][]int64) [][]int64 {
	out := make([][]int64, len(offs))
	for i, o := range offs {
		out[i] = cloneI64(o)
	}
	return out
}
