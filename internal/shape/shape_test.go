package shape

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestL1CrossIsFiveCells(t *testing.T) {
	// The paper's L1(1) shape: "a 5-cell cross centered on each cell".
	s := L1(2, 1)
	if got := s.Card(); got != 5 {
		t.Errorf("L1(2,1).Card() = %d, want 5", got)
	}
	for _, off := range [][]int64{{0, 0}, {0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
		if !s.Contains(off) {
			t.Errorf("L1(2,1) must contain %v", off)
		}
	}
	if s.Contains([]int64{1, 1}) {
		t.Error("L1(2,1) must not contain the diagonal")
	}
}

func TestNormBallCardinalities(t *testing.T) {
	cases := []struct {
		s    *Shape
		want int64
	}{
		{Linf(2, 1), 9},
		{Linf(2, 2), 25}, // the paper's PTF-25 cross-section
		{L1(2, 2), 13},
		{L1(2, 3), 25},
		{L2(2, 2), 13},
		{L1(3, 1), 7},
		{Linf(1, 4), 9},
	}
	for _, tc := range cases {
		if got := tc.s.Card(); got != tc.want {
			t.Errorf("%s.Card() = %d, want %d", tc.s.Name(), got, tc.want)
		}
	}
}

func TestPaperFigure4DeltaShapes(t *testing.T) {
	// Section 6.4 / Figure 4b: Δ(L∞(1) ← L1(1)) has ratio 4/9 relative to
	// the query shape and Δ(L∞(1) ← L∞(2)) has ratio 16/9.
	q := Linf(2, 1) // query shape, 9 cells

	d1 := Delta(L1(2, 1), q)
	if d1 == nil || d1.Card() != 4 {
		t.Fatalf("Delta(L1(1), Linf(1)).Card() = %v, want 4", d1)
	}
	if ratio := float64(d1.Card()) / float64(q.Card()); ratio >= 1 {
		t.Errorf("ratio %v must favour the view (<1)", ratio)
	}

	d2 := Delta(Linf(2, 2), q)
	if d2 == nil || d2.Card() != 16 {
		t.Fatalf("Delta(Linf(2), Linf(1)).Card() = %v, want 16", d2)
	}
	if ratio := float64(d2.Card()) / float64(q.Card()); ratio <= 1 {
		t.Errorf("ratio %v must favour the complete join (>1)", ratio)
	}
}

func TestDeltaIdenticalShapesIsNil(t *testing.T) {
	if d := Delta(L1(2, 2), L1(2, 2)); d != nil {
		t.Errorf("Delta of identical shapes = %v, want nil", d)
	}
	if !L1(2, 2).Equal(L1(2, 2)) {
		t.Error("identical shapes must be Equal")
	}
	if L1(2, 2).Equal(Linf(2, 2)) {
		t.Error("different shapes must not be Equal")
	}
}

func TestDeltaSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Shape {
			switch rng.Intn(3) {
			case 0:
				return L1(2, 1+int64(rng.Intn(3)))
			case 1:
				return Linf(2, 1+int64(rng.Intn(3)))
			default:
				return L2(2, 1+int64(rng.Intn(3)))
			}
		}
		a, b := mk(), mk()
		da, db := Delta(a, b), Delta(b, a)
		if (da == nil) != (db == nil) {
			return false
		}
		if da == nil {
			return true
		}
		return da.Equal(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeltaCardinalityIdentity(t *testing.T) {
	// |Δ| = |a| + |b| - 2|a∩b|; verify via direct enumeration.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := L1(2, 1+int64(rng.Intn(3)))
		b := Linf(2, 1+int64(rng.Intn(3)))
		inter := int64(0)
		for _, off := range a.Offsets() {
			if b.Contains(off) {
				inter++
			}
		}
		d := Delta(a, b)
		var dc int64
		if d != nil {
			dc = d.Card()
		}
		return dc == a.Card()+b.Card()-2*inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmbedPTF5(t *testing.T) {
	// The paper's PTF-5 shape: L1(1) on (ra, dec) across the previous 200
	// time steps. Dim order: [time, ra, dec].
	s, err := Embed(L1(2, 1), 3, []int{1, 2}, map[int][2]int64{0: {-200, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDims() != 3 {
		t.Fatalf("NumDims = %d, want 3", s.NumDims())
	}
	lo, hi := s.Box()
	if lo[0] != -200 || hi[0] != 0 || lo[1] != -1 || hi[1] != 1 {
		t.Errorf("Box = %v..%v", lo, hi)
	}
	if !s.Contains([]int64{-137, 0, 1}) {
		t.Error("offset inside window and cross must be a member")
	}
	if s.Contains([]int64{5, 0, 0}) {
		t.Error("future time offset must not be a member")
	}
	if s.Contains([]int64{-1, 1, 1}) {
		t.Error("diagonal (ra,dec) offset must not be a member")
	}
	if got := s.Card(); got != 5*201 {
		t.Errorf("Card = %d, want %d", got, 5*201)
	}
}

func TestEmbedErrors(t *testing.T) {
	inner := L1(2, 1)
	if _, err := Embed(inner, 3, []int{1}, nil); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := Embed(inner, 3, []int{1, 5}, nil); err == nil {
		t.Error("out-of-range dim must fail")
	}
	if _, err := Embed(inner, 3, []int{1, 1}, nil); err == nil {
		t.Error("duplicate dim must fail")
	}
	if _, err := Embed(inner, 3, []int{1, 2}, nil); err == nil {
		t.Error("missing window must fail")
	}
	if _, err := Embed(inner, 3, []int{1, 2}, map[int][2]int64{0: {1, -1}}); err == nil {
		t.Error("empty window must fail")
	}
}

func TestReflectAndSymmetry(t *testing.T) {
	// An asymmetric shape: only offset (1, 0).
	s, err := FromOffsets("fwd", [][]int64{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Reflect()
	if !r.Contains([]int64{-1, 0}) || r.Contains([]int64{1, 0}) {
		t.Error("Reflect must negate offsets")
	}
	if s.Symmetric() {
		t.Error("fwd shape is not symmetric")
	}
	for _, ball := range []*Shape{L1(2, 2), Linf(2, 1), L2(3, 2)} {
		if !ball.Symmetric() {
			t.Errorf("%s must be symmetric", ball.Name())
		}
	}
	// Time-windowed shapes are NOT symmetric — the maintenance logic relies
	// on detecting this.
	ptf5, _ := Embed(L1(2, 1), 3, []int{1, 2}, map[int][2]int64{0: {-200, 0}})
	if ptf5.Symmetric() {
		t.Error("past-window shape must not be symmetric")
	}
}

func TestFromOffsetsDedup(t *testing.T) {
	s, err := FromOffsets("d", [][]int64{{0, 0}, {0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Card() != 2 {
		t.Errorf("Card = %d, want 2 after dedup", s.Card())
	}
	if _, err := FromOffsets("bad", [][]int64{{0, 0}, {1}}); err == nil {
		t.Error("mixed arity must fail")
	}
	if _, err := FromOffsets("empty", nil); err == nil {
		t.Error("empty offsets must fail")
	}
}

func TestOffsetsEnumerationMatchesContains(t *testing.T) {
	s := L2(2, 3)
	offs := s.Offsets()
	if int64(len(offs)) != s.Card() {
		t.Fatalf("Offsets() returned %d, Card()=%d", len(offs), s.Card())
	}
	for _, off := range offs {
		if !s.Contains(off) {
			t.Errorf("enumerated offset %v fails Contains", off)
		}
	}
	SortOffsets(offs)
	for i := 1; i < len(offs); i++ {
		a, b := offs[i-1], offs[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatal("SortOffsets must order lexicographically")
		}
	}
}

func TestBoxVolume(t *testing.T) {
	if got := Linf(2, 2).BoxVolume(); got != 25 {
		t.Errorf("BoxVolume = %d, want 25", got)
	}
	if got := L1(2, 2).BoxVolume(); got != 25 {
		t.Errorf("L1 box volume = %d, want 25", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", []int64{0}, []int64{0, 1}, nil); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := New("x", nil, nil, nil); err == nil {
		t.Error("zero dims must fail")
	}
	if _, err := New("x", []int64{1}, []int64{0}, nil); err == nil {
		t.Error("inverted box must fail")
	}
}

func TestContainsArityMismatch(t *testing.T) {
	if L1(2, 1).Contains([]int64{0}) {
		t.Error("short offset must not be contained")
	}
}
