package serve

import (
	"encoding/json"
	"net"
	"net/http"
)

// MetricsHandler returns an expvar-style HTTP handler exposing the serving
// daemon's health counters — epochs, snapshot retention, read cache,
// admission, and the adaptive-maintenance gauges — as one JSON document.
// Every path answers the same snapshot so curl needs no exact route.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding a freshly built snapshot can only fail on a broken
		// connection; nothing to do about that here.
		_ = enc.Encode(s.Stats())
	})
}

// MetricsServer is a running metrics listener; Close stops it.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address.
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close stops the listener.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// StartMetrics serves the daemon's metrics handler on addr (":0" picks a
// free port) in the background. This is the /debug/vars-like endpoint the
// ivmserve daemon exposes with -metrics, mirroring ivmnode's.
func StartMetrics(addr string, s *Server) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.MetricsHandler()}
	go func() {
		// Serve exits with ErrServerClosed on Close; other errors mean the
		// listener died, which the owner notices through failed scrapes.
		_ = srv.Serve(ln)
	}()
	return &MetricsServer{ln: ln, srv: srv}, nil
}
