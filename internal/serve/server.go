package serve

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/transport"
)

// Config tunes a Server. The zero value gets sane defaults.
type Config struct {
	// MaxConcurrent caps queries executing at once (default 8).
	MaxConcurrent int
	// QueueDepth caps queries waiting for a slot beyond MaxConcurrent
	// (default 2*MaxConcurrent). Anything past the queue is rejected with
	// an OverloadError.
	QueueDepth int
	// QueryTimeout bounds one query end to end — queue wait plus
	// evaluation (default 30 seconds; negative disables).
	QueryTimeout time.Duration
	// CacheBytes caps the hot-chunk read cache (default
	// cluster.DefaultReadCacheBytes; negative disables the cache).
	CacheBytes int64
	// IdleTimeout and WriteTimeout mirror transport.ServerConfig: a
	// connection silent for IdleTimeout is dropped, and writing one
	// response is bounded by WriteTimeout. Zero means the transport
	// defaults (5 minutes / 30 seconds).
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	// ViewCacheBytes caps the epoch-keyed assembled-view cache (default
	// cluster.DefaultViewCacheBytes; negative disables view caching while
	// keeping the plan memo).
	ViewCacheBytes int64
	// JoinWorkers is the snapshot-join fan-out width (<= 0 means
	// GOMAXPROCS, 1 forces the serial kernel).
	JoinWorkers int
	// DisableFastPath turns off every serving accelerator — view cache,
	// plan memo, and parallel joins — for A/B comparison.
	DisableFastPath bool
}

func (c *Config) maxConcurrent() int {
	if c == nil || c.MaxConcurrent <= 0 {
		return 8
	}
	return c.MaxConcurrent
}

func (c *Config) queueDepth() int {
	if c == nil || c.QueueDepth == 0 {
		return 2 * c.maxConcurrent()
	}
	if c.QueueDepth < 0 {
		return 0
	}
	return c.QueueDepth
}

func (c *Config) queryTimeout() time.Duration {
	switch {
	case c == nil || c.QueryTimeout == 0:
		return 30 * time.Second
	case c.QueryTimeout < 0:
		return 0
	default:
		return c.QueryTimeout
	}
}

func (c *Config) cacheBytes() int64 {
	switch {
	case c == nil || c.CacheBytes == 0:
		return cluster.DefaultReadCacheBytes
	case c.CacheBytes < 0:
		return 0
	default:
		return c.CacheBytes
	}
}

// Stats is the serving daemon's point-in-time health summary: the snapshot
// manager's state, the read cache's counters, and admission totals.
type Stats struct {
	// Epoch is the most recently published epoch.
	Epoch uint64
	// Pins is the number of live snapshot pins; Retained and
	// RetainedBytes size the pre-image versions held for them.
	Pins          int64
	Retained      int64
	RetainedBytes int64
	// CacheHits/CacheMisses/CacheBytes describe the hot-chunk read cache.
	CacheHits   int64
	CacheMisses int64
	CacheBytes  int64
	// Queries counts admitted queries; Rejected counts overload
	// rejections.
	Queries  int64
	Rejected int64
	// Adaptive carries the heavy-light maintenance layer's counters when
	// the daemon maintains adaptively (all zero otherwise).
	Adaptive obs.AdaptiveSnapshot
	// Durable carries the WAL-backed chunk store's counters when the
	// daemon persists its state (all zero for an in-memory daemon).
	Durable obs.DurableSnapshot
	// FastPath carries the query fast path's counters (all zero when the
	// daemon serves cold).
	FastPath obs.FastPathSnapshot
}

// HitRate returns the cache hit fraction, 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// Server answers queries over one maintained view at snapshot isolation.
// Every admitted query pins the current epoch, evaluates against that
// pinned state (through the shared read cache), and releases the pin — so
// maintenance batches commit freely underneath without a reader ever seeing
// staging arrays or a half-applied batch.
//
// The wire surface speaks the transport frame protocol: MsgPing, MsgQuery,
// and MsgSnapshot. Anything else on the connection gets an error frame.
type Server struct {
	eng *query.Engine
	rc  *cluster.ReadCache
	lim *Limiter
	cfg Config

	// fresh, when set, runs after admission and before the snapshot pin:
	// the adaptive maintenance layer materializes pending light-chunk
	// deltas there through the normal commit path, so the epoch this query
	// then pins already includes them. Running before Acquire is what
	// keeps snapshot isolation exact — a materialization is just another
	// commit publishing its own epoch.
	fresh func(context.Context) error
	// adaptive, when set, feeds Stats().Adaptive.
	adaptive *obs.AdaptiveCounters
	// durable, when set, feeds Stats().Durable.
	durable *obs.DurableCounters
	// fpCtrs, when set, feeds Stats().FastPath.
	fpCtrs *obs.FastPathCounters

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer wraps a query engine in an unstarted serving daemon and enables
// snapshot epochs on its cluster (publishing the first epoch from the
// current catalog state) if they are not on already. A nil config uses the
// defaults.
func NewServer(eng *query.Engine, cfg *Config) *Server {
	s := &Server{eng: eng, conns: make(map[net.Conn]struct{})}
	if cfg != nil {
		s.cfg = *cfg
	}
	s.lim = NewLimiter(s.cfg.maxConcurrent(), s.cfg.queueDepth())
	if cap := s.cfg.cacheBytes(); cap > 0 {
		s.rc = cluster.NewReadCache(cap)
	}
	if es := eng.Cluster.Epochs(); !es.Enabled() {
		es.Enable()
	}
	if !s.cfg.DisableFastPath {
		s.fpCtrs = &obs.FastPathCounters{}
		f := query.NewFastPath(s.cfg.ViewCacheBytes, s.fpCtrs)
		if s.cfg.ViewCacheBytes < 0 {
			f.Views = nil
		}
		f.JoinWorkers = s.cfg.JoinWorkers
		// The daemon serves from the fast-path engine; invalidation rides
		// every epoch publish so a cached view can never cross a commit.
		fe := *eng
		fe.Fast = f
		s.eng = &fe
		if f.Views != nil {
			eng.Cluster.Epochs().OnPublish(f.Views.InvalidateBefore)
		}
	}
	return s
}

// Engine returns the wrapped query engine.
func (s *Server) Engine() *query.Engine { return s.eng }

// SetFresh installs the pre-pin freshness hook (see the field docs) and
// the adaptive counters surfaced through Stats. Call before Listen.
func (s *Server) SetFresh(fresh func(context.Context) error, counters *obs.AdaptiveCounters) {
	s.fresh = fresh
	s.adaptive = counters
}

// SetDurable installs the durable store's counters surfaced through Stats.
// Call before Listen.
func (s *Server) SetDurable(counters *obs.DurableCounters) { s.durable = counters }

// ReadCache returns the server's hot-chunk cache (nil when disabled).
func (s *Server) ReadCache() *cluster.ReadCache { return s.rc }

// Stats snapshots the daemon's health counters.
func (s *Server) Stats() Stats {
	es := s.eng.Cluster.Epochs().Stats()
	st := Stats{
		Epoch:         es.Current,
		Pins:          int64(es.Pins),
		Retained:      es.RetainedVers,
		RetainedBytes: es.RetainedBytes,
	}
	if s.rc != nil {
		cs := s.rc.Counters().Snapshot()
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CacheBytes = s.rc.Bytes()
	}
	st.Queries, st.Rejected = s.lim.Counters()
	st.Adaptive = s.adaptive.Snapshot()
	st.Durable = s.durable.Snapshot()
	st.FastPath = s.fpCtrs.Snapshot()
	return st
}

// Answer admits, pins, and evaluates one query locally: the in-process
// serving path, also the body of the wire handler. The returned epoch is
// the snapshot the answer is consistent with.
func (s *Server) Answer(ctx context.Context, queryShape *shape.Shape, mode query.Mode) (*query.Result, uint64, error) {
	if d := s.cfg.queryTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, err := s.lim.Acquire(ctx)
	if err != nil {
		return nil, 0, err
	}
	defer release()
	if s.fresh != nil {
		if err := s.fresh(ctx); err != nil {
			return nil, 0, err
		}
	}
	snap, err := s.eng.Cluster.Epochs().Acquire()
	if err != nil {
		return nil, 0, err
	}
	defer snap.Release()
	res, err := s.eng.AnswerSnapshot(ctx, snap, s.rc, queryShape, mode)
	if err != nil {
		return nil, 0, err
	}
	return res, snap.Epoch(), nil
}

// Listen binds the address ("host:port"; ":0" picks a free port) and starts
// accepting query connections in the background.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("serve: server closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return errors.New("serve: server already listening")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to drain. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	idle, write := s.cfg.IdleTimeout, s.cfg.WriteTimeout
	if idle == 0 {
		idle = 5 * time.Minute
	}
	if write == 0 {
		write = 30 * time.Second
	}
	for {
		if idle > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
				return
			}
		}
		req, rraw, rwire, err := transport.ReadMessageOpt(conn)
		if err != nil {
			return // EOF, deadline, or protocol error: drop the connection
		}
		resp := s.handle(req)
		if write > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(write)); err != nil {
				return
			}
		}
		// Mirror the request's framing, as the node servers do: compressed
		// requests get compressed responses when that shrinks them.
		compressMin := 0
		if rraw > rwire {
			compressMin = 512
		}
		if _, _, err := transport.WriteMessageOpt(conn, resp, compressMin); err != nil {
			return
		}
	}
}

func errMsg(err error) *transport.Message {
	return &transport.Message{Type: transport.MsgErr, Err: err.Error()}
}

// handle executes one request frame.
func (s *Server) handle(req *transport.Message) *transport.Message {
	switch req.Type {
	case transport.MsgPing:
		return &transport.Message{Type: transport.MsgOK}

	case transport.MsgQuery:
		return s.handleQuery(req)

	case transport.MsgSnapshot:
		st := s.Stats()
		return &transport.Message{
			Type:          transport.MsgSnapshotReply,
			Epoch:         st.Epoch,
			Pins:          st.Pins,
			Retained:      st.Retained,
			RetainedBytes: st.RetainedBytes,
			CacheHits:     st.CacheHits,
			CacheMisses:   st.CacheMisses,
			CacheBytes:    st.CacheBytes,
			Queries:       st.Queries,
			Rejected:      st.Rejected,
			HeavyChunks:   st.Adaptive.HeavyChunks,
			LightChunks:   st.Adaptive.LightChunks,
			PendingChunks: st.Adaptive.PendingChunks,
			PendingCells:  st.Adaptive.PendingCells,
			Deferred:      st.Adaptive.Deferred,
			LazyMats:      st.Adaptive.LazyMats,
			Drained:       st.Adaptive.Drained,
			Promotions:    st.Adaptive.Promotions,
			Demotions:     st.Adaptive.Demotions,
			MemoHits:      st.Adaptive.MemoHits,
			MemoMisses:    st.Adaptive.MemoMisses,

			DurCommits:     st.Durable.Commits,
			DurRollbacks:   st.Durable.Rollbacks,
			DurCheckpoints: st.Durable.Checkpoints,
			DurWALBytes:    st.Durable.WALBytes,
			DurSegBytes:    st.Durable.SegBytes,
			DurSyncs:       st.Durable.Syncs,

			FPViewHits:          st.FastPath.ViewHits,
			FPViewMisses:        st.FastPath.ViewMisses,
			FPViewBytes:         st.FastPath.ViewBytes,
			FPViewEvictions:     st.FastPath.ViewEvictions,
			FPViewInvalidations: st.FastPath.ViewInvalidations,
			FPMemoHits:          st.FastPath.MemoHits,
			FPMemoMisses:        st.FastPath.MemoMisses,
			FPSolveSkips:        st.FastPath.SolveSkips,
		}

	default:
		return &transport.Message{Type: transport.MsgErr,
			Err: "serve: unexpected request " + req.Type.String()}
	}
}

func (s *Server) handleQuery(req *transport.Message) *transport.Message {
	sh, err := DecodeShape(req.Spec)
	if err != nil {
		return errMsg(err)
	}
	mode := query.Mode(req.Mode)
	if mode != query.Auto && mode != query.ForceComplete && mode != query.ForceView {
		return &transport.Message{Type: transport.MsgErr,
			Err: "serve: unknown query mode"}
	}
	res, epoch, err := s.Answer(context.Background(), sh, mode)
	if err != nil {
		return errMsg(err)
	}
	resp := &transport.Message{
		Type:  transport.MsgQueryResult,
		Epoch: epoch,
		Flag:  res.Choice.UseView,
	}
	res.Array.EachChunk(func(c *array.Chunk) bool {
		resp.Chunks = append(resp.Chunks, array.EncodeChunk(c))
		return true
	})
	return resp
}

// EncodeShape serializes a query shape's constructive spec for the MsgQuery
// payload.
func EncodeShape(sh *shape.Shape) ([]byte, error) {
	sp, err := sh.Spec()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeShape rebuilds a query shape from a MsgQuery payload.
func DecodeShape(raw []byte) (*shape.Shape, error) {
	var sp shape.Spec
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&sp); err != nil {
		return nil, err
	}
	return sp.Build()
}
