package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/storage"
)

// observation is one reader's record: which epoch it pinned and what it saw
// there. Verification is post-hoc against the writer's per-epoch expected
// states, so readers never block on the writer.
type observation struct {
	epoch uint64
	fp    string
	what  string
}

// freshBatch builds a maintenance batch of cells not yet present in base,
// then folds them into base (the expected post-commit state).
func freshBatch(rng *rand.Rand, base *array.Array, n int) *array.Array {
	delta := array.New(base.Schema())
	for delta.NumCells() < n {
		p := array.Point{rng.Int63n(40), rng.Int63n(40)}
		if _, found := base.Get(p); found {
			continue
		}
		tup := array.Tuple{float64(rng.Intn(5) + 1)}
		_ = delta.Set(p, tup)
		_ = base.Set(p, tup)
	}
	return delta
}

// recordEpoch gathers the view at the just-published epoch and stores its
// fingerprint as that epoch's expected state.
func recordEpoch(t *testing.T, cl *cluster.Cluster, expected map[uint64]string, mu *sync.Mutex) {
	t.Helper()
	snap, err := cl.Epochs().Acquire()
	if err != nil {
		t.Error(err)
		return
	}
	defer snap.Release()
	v, err := snap.Gather("V")
	if err != nil {
		t.Errorf("recording epoch %d: %v", snap.Epoch(), err)
		return
	}
	mu.Lock()
	expected[snap.Epoch()] = fingerprint(v)
	mu.Unlock()
}

// runReaders starts nr goroutines that hammer the serving path until done
// is closed: snapshot gathers of the view, differential answers, and
// complete-join answers, each recorded as (epoch, fingerprint). The
// complete join recomputes the aggregate from the snapshot's base chunks,
// so its fingerprint matching the view gather's is the strongest
// base/view-consistency check available.
func runReaders(t *testing.T, srv *Server, nr int, done <-chan struct{}) (*sync.WaitGroup, func() []observation) {
	t.Helper()
	cl := srv.Engine().Cluster
	viewShape := srv.Engine().Def.Pred.Shape
	var mu sync.Mutex
	var obs []observation
	record := func(o observation) {
		mu.Lock()
		obs = append(obs, o)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for r := 0; r < nr; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch {
				case r == 0: // raw snapshot gather, no engine
					snap, err := cl.Epochs().Acquire()
					if err != nil {
						t.Error(err)
						return
					}
					for _, name := range snap.Names() {
						if strings.Contains(name, "#") {
							t.Errorf("snapshot %d exposes scratch array %q", snap.Epoch(), name)
						}
					}
					v, err := snap.Gather("V")
					if err == nil {
						record(observation{snap.Epoch(), fingerprint(v), "gather"})
					} else {
						t.Errorf("snapshot gather: %v", err)
					}
					snap.Release()
				case r%2 == 1: // differential serving path
					res, epoch, err := srv.Answer(context.Background(), viewShape, query.ForceView)
					if err == nil {
						record(observation{epoch, fingerprint(res.Array), "view"})
					} else if !IsOverload(err) {
						t.Errorf("view answer: %v", err)
					}
				default: // complete join over snapshot base chunks
					res, epoch, err := srv.Answer(context.Background(), viewShape, query.ForceComplete)
					if err == nil {
						record(observation{epoch, fingerprint(res.Array), "complete"})
					} else if !IsOverload(err) {
						t.Errorf("complete answer: %v", err)
					}
				}
			}
		}()
	}
	return &wg, func() []observation {
		mu.Lock()
		defer mu.Unlock()
		return obs
	}
}

// verifyObservations checks every reader observation against the writer's
// expected state for the epoch the reader pinned.
func verifyObservations(t *testing.T, obs []observation, expected map[uint64]string) {
	t.Helper()
	if len(obs) == 0 {
		t.Fatal("readers recorded nothing — the race test is vacuous")
	}
	bad := 0
	for _, o := range obs {
		want, ok := expected[o.epoch]
		if !ok {
			t.Errorf("reader pinned epoch %d which the writer never published", o.epoch)
			bad++
			continue
		}
		if o.fp != want {
			t.Errorf("stale/hybrid read: %s answer at epoch %d diverges from the epoch's committed state", o.what, o.epoch)
			bad++
		}
		if bad > 5 {
			t.Fatalf("too many violations (%d observations total)", len(obs))
		}
	}
}

// TestSnapshotIsolationUnderCommits races serving reads against live
// maintenance commits: every answer must equal the committed state of the
// epoch it pinned — never staging arrays, never a half-applied batch.
func TestSnapshotIsolationUnderCommits(t *testing.T) {
	viewShape := shape.Linf(2, 1)
	eng, base, m := testEngine(t, 21, viewShape)
	srv := NewServer(eng, &Config{MaxConcurrent: 8, QueueDepth: 32})
	cl := eng.Cluster

	expected := make(map[uint64]string)
	var emu sync.Mutex
	recordEpoch(t, cl, expected, &emu) // the initial epoch from Enable

	done := make(chan struct{})
	wg, collect := runReaders(t, srv, 4, done)

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 6; i++ {
		if _, err := m.ApplyBatch(freshBatch(rng, base, 12)); err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
		recordEpoch(t, cl, expected, &emu)
	}
	close(done)
	wg.Wait()

	verifyObservations(t, collect(), expected)
	if st := srv.Stats(); st.Epoch != 7 {
		t.Fatalf("expected 7 published epochs (1 enable + 6 batches), got %d", st.Epoch)
	}
	// With every pin released, retention must drain back to nothing.
	if st := cl.Epochs().Stats(); st.Pins != 0 || st.RetainedVers != 0 {
		t.Fatalf("retention did not drain after pins released: %+v", st)
	}
}

// TestSnapshotIsolationAcrossRollback races serving reads against a batch
// that fails mid-commit and rolls back. Readers must only ever see the
// pre-batch state (the rollback republishes it) — no hybrid state, no
// scratch arrays — and a subsequent successful batch must serve normally.
func TestSnapshotIsolationAcrossRollback(t *testing.T) {
	viewShape := shape.Linf(2, 1)
	stores := make([]*storage.Store, 3)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	ff := cluster.NewFaultFabric(cluster.NewLocalFabric(stores), 13)
	eng, base, m := testEngine(t, 23, viewShape, cluster.WithFabric(ff.AsFabric()))
	srv := NewServer(eng, &Config{MaxConcurrent: 8, QueueDepth: 32})
	cl := eng.Cluster

	expected := make(map[uint64]string)
	var emu sync.Mutex
	recordEpoch(t, cl, expected, &emu)

	done := make(chan struct{})
	wg, collect := runReaders(t, srv, 4, done)

	// A persistent write error on one node is not recoverable by retry or
	// failover: the batch must fail and roll back atomically while the
	// readers race it.
	rng := rand.New(rand.NewSource(99))
	ff.Inject(&cluster.FaultRule{Node: 1, Op: "Put",
		Kind: cluster.FaultError, Err: errors.New("store: disk full")})
	preFP := func() string {
		snap, err := cl.Epochs().Acquire()
		if err != nil {
			t.Fatal(err)
		}
		defer snap.Release()
		v, err := snap.Gather("V")
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(v)
	}()
	failing := freshBatch(rng, base, 12)
	if _, err := m.ApplyBatch(failing); err == nil {
		t.Fatal("expected the injected write error to fail the batch")
	}
	ff.ClearRules()
	recordEpoch(t, cl, expected, &emu)
	emu.Lock()
	postRollback := expected[cl.Epochs().Current()]
	emu.Unlock()
	if postRollback != preFP {
		t.Fatal("rollback epoch does not equal the pre-batch state")
	}

	// The failed batch's cells never landed; put them back on the side of
	// "absent" so the next fresh batch can't collide with ghosts.
	failing.EachCell(func(p array.Point, tup array.Tuple) bool {
		_ = base.Delete(p)
		return true
	})

	if _, err := m.ApplyBatch(freshBatch(rng, base, 12)); err != nil {
		t.Fatalf("post-rollback batch: %v", err)
	}
	recordEpoch(t, cl, expected, &emu)

	close(done)
	wg.Wait()
	verifyObservations(t, collect(), expected)
}
