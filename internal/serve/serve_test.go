package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/transport"
	"github.com/arrayview/arrayview/internal/view"
)

// testEngine builds a 3-node cluster with a random sparse 2-D base array
// and a Linf-shaped count+sum view over it, returning a query engine, the
// base, and a maintainer for applying batches.
func testEngine(t *testing.T, seed int64, viewShape *shape.Shape, opts ...cluster.Option) (*query.Engine, *array.Array, *maintain.Maintainer) {
	t.Helper()
	schema := array.MustSchema("A",
		[]array.Dimension{
			{Name: "x", Start: 0, End: 39, ChunkSize: 5},
			{Name: "y", Start: 0, End: 39, ChunkSize: 5},
		},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	rng := rand.New(rand.NewSource(seed))
	base := array.New(schema)
	for i := 0; i < 150; i++ {
		_ = base.Set(array.Point{rng.Int63n(40), rng.Int63n(40)}, array.Tuple{float64(rng.Intn(5) + 1)})
	}
	opts = append([]cluster.Option{cluster.WithWorkersPerNode(2)}, opts...)
	cl, err := cluster.New(3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def, err := view.NewDefinition("V", schema, schema,
		simjoin.NewPred(viewShape, nil),
		[]string{"x", "y"},
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}, {Kind: view.Sum, Attr: "v", As: "vs"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	eng, err := query.NewEngine(cl, def, maintain.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := maintain.NewMaintainer(cl, def, nil, maintain.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return eng, base, m
}

// reference computes the query aggregate from scratch, locally.
func reference(t *testing.T, eng *query.Engine, base *array.Array, queryShape *shape.Shape) *array.Array {
	t.Helper()
	def, err := view.NewDefinition("ref", eng.Def.Alpha, eng.Def.Beta,
		simjoin.NewPred(queryShape, eng.Def.Pred.Mapping),
		eng.Def.GroupBy, eng.Def.Aggs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := view.Materialize(def, base, base)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// statesEqual compares aggregate state arrays, treating absent cells as
// all-zero state.
func statesEqual(a, b *array.Array) bool {
	ok := true
	check := func(x, y *array.Array) {
		x.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := y.Get(p)
			if !found {
				for _, v := range tup {
					if v != 0 {
						ok = false
						return false
					}
				}
				return true
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
	}
	check(a, b)
	check(b, a)
	return ok
}

// fingerprint renders an array's cells canonically for equality checks
// across goroutines.
func fingerprint(a *array.Array) string {
	var cells []string
	a.EachCell(func(p array.Point, tup array.Tuple) bool {
		cells = append(cells, fmt.Sprintf("%v=%v", p, tup))
		return true
	})
	sort.Strings(cells)
	return fmt.Sprint(cells)
}

// TestServeEndToEnd drives the full wire path: daemon up, client queries
// over TCP at a pinned epoch, stats endpoint, cache warming.
func TestServeEndToEnd(t *testing.T) {
	eng, base, _ := testEngine(t, 11, shape.Linf(2, 2))
	srv := NewServer(eng, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := NewClient(srv.Addr(), eng.Def.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		sh   *shape.Shape
		mode query.Mode
	}{
		{"view-shape-auto", shape.Linf(2, 2), query.Auto},
		{"delta-forced-view", shape.Linf(2, 1), query.ForceView},
		{"forced-complete", shape.L1(2, 3), query.ForceComplete},
	}
	for _, tc := range cases {
		res, err := c.Query(tc.sh, tc.mode)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Epoch == 0 {
			t.Fatalf("%s: answer not pinned to an epoch", tc.name)
		}
		if want := reference(t, eng, base, tc.sh); !statesEqual(res.Array, want) {
			t.Fatalf("%s: remote answer diverges from reference", tc.name)
		}
	}

	// A repeated query must be served warm: either the hot-chunk read cache
	// (cold daemon) or the query fast path (view cache + plan memo) absorbs
	// the repeat without refetching.
	before, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(shape.Linf(2, 2), query.Auto); err != nil {
		t.Fatal(err)
	}
	after, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	warmed := after.CacheHits > before.CacheHits ||
		after.FastPath.MemoHits > before.FastPath.MemoHits ||
		after.FastPath.ViewHits > before.FastPath.ViewHits
	if !warmed {
		t.Fatalf("repeated query warmed no cache: read hits %d -> %d, fast path %+v -> %+v",
			before.CacheHits, after.CacheHits, before.FastPath, after.FastPath)
	}
	if after.FastPath.MemoMisses == 0 && after.FastPath.ViewMisses == 0 {
		t.Fatal("fast path never engaged on a default-config daemon")
	}
	if after.Queries < 4 {
		t.Fatalf("stats report %d admitted queries, want >= 4", after.Queries)
	}
	if after.Epoch == 0 || after.Rejected != 0 {
		t.Fatalf("unexpected stats: %+v", after)
	}
}

// TestServeRejectsGarbage checks the daemon answers protocol misuse with
// error frames instead of dropping state.
func TestServeRejectsGarbage(t *testing.T) {
	eng, _, _ := testEngine(t, 3, shape.Linf(2, 1))
	srv := NewServer(eng, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := transport.NewClient(srv.Addr(), transport.DefaultClientConfig())
	defer tc.Close()

	if _, err := tc.Do(&transport.Message{Type: transport.MsgKeys, Array: "A"}); err == nil {
		t.Fatal("non-serve request type answered without error")
	}
	if _, err := tc.Do(&transport.Message{Type: transport.MsgQuery, Spec: []byte("junk")}); err == nil {
		t.Fatal("garbage query spec answered without error")
	}
	if _, err := tc.Do(&transport.Message{Type: transport.MsgQuery, Mode: 99}); err == nil {
		t.Fatal("unknown query mode answered without error")
	}
	// The daemon must still be healthy afterwards.
	if _, err := tc.Do(&transport.Message{Type: transport.MsgPing}); err != nil {
		t.Fatal(err)
	}
}

// TestLimiterOverload exercises admission control: slots, the bounded
// queue, typed rejection, and queue abandonment on context expiry.
func TestLimiterOverload(t *testing.T) {
	l := NewLimiter(1, 1)
	rel1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second query fits in the queue; give it a context we control.
	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	queuedErr := make(chan error, 1)
	go func() {
		rel, err := l.Acquire(qctx)
		if err == nil {
			rel()
		}
		queuedErr <- err
	}()

	// Wait until the waiter holds the queue token, then overflow it.
	deadline := time.Now().Add(2 * time.Second)
	for len(l.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = l.Acquire(context.Background())
	if err == nil {
		t.Fatal("third concurrent query admitted past the queue bound")
	}
	if !IsOverload(err) {
		t.Fatalf("rejection is not typed as overload: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("rejection is %T, want *OverloadError", err)
	}
	if oe.InFlight != 1 || oe.Queued != 1 {
		t.Fatalf("overload diagnostics = %+v, want 1 in flight, 1 queued", oe)
	}

	// Release the slot: the queued waiter gets in.
	rel1()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued query failed after slot freed: %v", err)
	}

	// A waiter whose deadline expires abandons the queue cleanly.
	rel2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("expired waiter returned %v, want DeadlineExceeded", err)
	}
	rel2()
	if len(l.queue) != 0 {
		t.Fatal("expired waiter leaked a queue token")
	}

	queries, rejected := l.Counters()
	if queries != 3 || rejected != 1 {
		t.Fatalf("counters = (%d queries, %d rejected), want (3, 1)", queries, rejected)
	}

	// The remote form of the rejection is still recognizably an overload.
	if !IsOverload(&transport.RemoteError{Msg: (&OverloadError{}).Error()}) {
		t.Fatal("remote overload error not recognized")
	}
}

// TestLimiterCancelledContext is the regression test for the admission
// fast path: a query whose context is already cancelled (or past its
// deadline) must be turned away before it can claim a slot, even when one
// is free.
func TestLimiterCancelledContext(t *testing.T) {
	l := NewLimiter(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Acquire(ctx); err != context.Canceled {
		t.Fatalf("cancelled query admitted with a free slot: err=%v, want context.Canceled", err)
	}
	if len(l.slots) != 0 {
		t.Fatal("cancelled query consumed an execution slot")
	}

	expired, ecancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer ecancel()
	if _, err := l.Acquire(expired); err != context.DeadlineExceeded {
		t.Fatalf("expired query admitted: err=%v, want DeadlineExceeded", err)
	}

	// A live query is unaffected, and the dead ones left no tokens behind.
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("live query rejected after cancelled ones: %v", err)
	}
	rel()
	queries, rejected := l.Counters()
	if queries != 1 || rejected != 0 {
		t.Fatalf("counters = (%d queries, %d rejected), want (1, 0)", queries, rejected)
	}
}

// TestReadErrorTyped checks that exhausted replica failover surfaces the
// typed ReadError — never partial data — through Gather.
func TestReadErrorTyped(t *testing.T) {
	eng, _, _ := testEngine(t, 5, shape.Linf(2, 1))
	cl := eng.Cluster
	// Drop one base chunk from its home behind the catalog's back.
	keys := cl.Catalog().Keys("A")
	if len(keys) == 0 {
		t.Fatal("no base chunks")
	}
	home, _ := cl.Catalog().Home("A", keys[0])
	if _, err := cl.DeleteAt(home, "A", keys[0]); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Gather("A")
	if err == nil {
		t.Fatal("gather of a partially unreadable array succeeded")
	}
	var re *cluster.ReadError
	if !errors.As(err, &re) {
		t.Fatalf("gather error is %T (%v), want *cluster.ReadError", err, err)
	}
	if re.Array != "A" || re.Key != keys[0] || len(re.Tried) == 0 {
		t.Fatalf("read error lacks failure detail: %+v", re)
	}
}
