// Package serve is the query-serving subsystem: a daemon that answers
// shape-based similarity-join queries over a maintained view at a pinned
// snapshot epoch, with content-addressed read caching and bounded admission,
// while maintenance batches commit underneath it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/transport"
)

// overloadMsg prefixes every overload rejection so the condition survives a
// trip through the wire protocol's string-typed error frames.
const overloadMsg = "serve: overloaded"

// OverloadError is the typed rejection returned when admission control has
// no execution slot free and the wait queue is full. Clients should treat it
// as retryable after backoff; it never indicates a broken query.
type OverloadError struct {
	// InFlight is the number of queries executing when the rejection
	// happened; Queued is the number already waiting for a slot.
	InFlight, Queued int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("%s: %d queries in flight, %d queued", overloadMsg, e.InFlight, e.Queued)
}

// IsOverload reports whether err is an admission-control rejection, either
// the local typed form or the remote form reconstructed from an error frame.
func IsOverload(err error) bool {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Msg, overloadMsg)
}

// Limiter is the server's admission controller: at most maxConcurrent
// queries execute at once, at most queueDepth more wait for a slot, and
// anything beyond that is rejected immediately with an OverloadError rather
// than queued without bound. A waiting query abandons the queue when its
// context expires, so a slow backlog cannot hold dead work.
type Limiter struct {
	slots chan struct{} // execution slots; len == queries in flight
	queue chan struct{} // wait-queue tokens; len == queries waiting

	inflight obs.Counter // current executing (for rejection diagnostics)
	queries  obs.Counter // cumulative admissions
	rejected obs.Counter // cumulative overload rejections
}

// NewLimiter builds a limiter admitting maxConcurrent concurrent queries
// with a wait queue of queueDepth. Non-positive values fall back to 1 slot
// and an empty queue.
func NewLimiter(maxConcurrent, queueDepth int) *Limiter {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Limiter{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, queueDepth),
	}
}

// Acquire admits one query, blocking in the wait queue if every slot is
// busy. It returns a release function that must be called exactly once when
// the query finishes. A full queue returns *OverloadError without blocking;
// a context expiry while queued returns ctx.Err().
func (l *Limiter) Acquire(ctx context.Context) (func(), error) {
	// A query whose context is already cancelled or expired must not be
	// admitted: the fast-path select below never consults ctx, so without
	// this check a dead query could grab the last free slot ahead of live
	// ones.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case l.slots <- struct{}{}:
		return l.admitted(), nil
	default:
	}
	// Every slot is busy: take a queue token or reject. The token channel
	// makes the queue bound exact under arbitrary contention.
	select {
	case l.queue <- struct{}{}:
	default:
		// Capture the queue depth at the moment of rejection: by the time
		// the error is rendered other waiters may have come or gone.
		queued := len(l.queue)
		l.rejected.Add(1)
		return nil, &OverloadError{InFlight: int(l.inflight.Load()), Queued: queued}
	}
	defer func() { <-l.queue }()
	select {
	case l.slots <- struct{}{}:
		return l.admitted(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *Limiter) admitted() func() {
	l.queries.Add(1)
	l.inflight.Add(1)
	return func() {
		l.inflight.Add(-1)
		<-l.slots
	}
}

// Counters returns the cumulative admission and rejection counts.
func (l *Limiter) Counters() (queries, rejected int64) {
	return l.queries.Load(), l.rejected.Load()
}
