package serve

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/transport"
)

// QueryResult is one answered remote query.
type QueryResult struct {
	// Epoch is the snapshot epoch the answer is consistent with.
	Epoch uint64
	// UseView reports which path the server took (differential via the
	// view, or complete join).
	UseView bool
	// Array holds the aggregate state tuples of the answer, in the view's
	// schema.
	Array *array.Array
}

// Client speaks the serve protocol to one ivmserve daemon. It needs the
// view's schema to reassemble result chunks into an array; get it from the
// same view definition the server was started with.
type Client struct {
	tc     *transport.Client
	schema *array.Schema
}

// NewClient connects to a serving daemon. A nil config uses the transport
// defaults.
func NewClient(addr string, viewSchema *array.Schema, cfg *transport.ClientConfig) (*Client, error) {
	if viewSchema == nil {
		return nil, fmt.Errorf("serve: client needs the view schema")
	}
	c := transport.DefaultClientConfig()
	if cfg != nil {
		c = *cfg
	}
	return &Client{tc: transport.NewClient(addr, c), schema: viewSchema}, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.tc.Do(&transport.Message{Type: transport.MsgPing})
	return err
}

// Query evaluates one shape query on the server at a pinned snapshot epoch.
// An overload rejection comes back as an error for which IsOverload is true.
func (c *Client) Query(queryShape *shape.Shape, mode query.Mode) (*QueryResult, error) {
	spec, err := EncodeShape(queryShape)
	if err != nil {
		return nil, err
	}
	resp, err := c.tc.Do(&transport.Message{
		Type: transport.MsgQuery,
		Mode: uint8(mode),
		Spec: spec,
	})
	if err != nil {
		return nil, err
	}
	if resp.Type != transport.MsgQueryResult {
		return nil, fmt.Errorf("serve: unexpected reply %s", resp.Type)
	}
	out := array.New(c.schema)
	for _, enc := range resp.Chunks {
		ch, err := array.DecodeChunk(enc)
		if err != nil {
			return nil, err
		}
		out.PutChunk(ch)
	}
	return &QueryResult{Epoch: resp.Epoch, UseView: resp.Flag, Array: out}, nil
}

// Stats fetches the daemon's health summary.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.tc.Do(&transport.Message{Type: transport.MsgSnapshot})
	if err != nil {
		return Stats{}, err
	}
	if resp.Type != transport.MsgSnapshotReply {
		return Stats{}, fmt.Errorf("serve: unexpected reply %s", resp.Type)
	}
	return Stats{
		Epoch:         resp.Epoch,
		Pins:          resp.Pins,
		Retained:      resp.Retained,
		RetainedBytes: resp.RetainedBytes,
		CacheHits:     resp.CacheHits,
		CacheMisses:   resp.CacheMisses,
		CacheBytes:    resp.CacheBytes,
		Queries:       resp.Queries,
		Rejected:      resp.Rejected,
		Adaptive: obs.AdaptiveSnapshot{
			HeavyChunks:   resp.HeavyChunks,
			LightChunks:   resp.LightChunks,
			PendingChunks: resp.PendingChunks,
			PendingCells:  resp.PendingCells,
			Deferred:      resp.Deferred,
			LazyMats:      resp.LazyMats,
			Drained:       resp.Drained,
			Promotions:    resp.Promotions,
			Demotions:     resp.Demotions,
			MemoHits:      resp.MemoHits,
			MemoMisses:    resp.MemoMisses,
		},
		Durable: obs.DurableSnapshot{
			Commits:     resp.DurCommits,
			Rollbacks:   resp.DurRollbacks,
			Checkpoints: resp.DurCheckpoints,
			WALBytes:    resp.DurWALBytes,
			SegBytes:    resp.DurSegBytes,
			Syncs:       resp.DurSyncs,
		},
		FastPath: obs.FastPathSnapshot{
			ViewHits:          resp.FPViewHits,
			ViewMisses:        resp.FPViewMisses,
			ViewBytes:         resp.FPViewBytes,
			ViewEvictions:     resp.FPViewEvictions,
			ViewInvalidations: resp.FPViewInvalidations,
			MemoHits:          resp.FPMemoHits,
			MemoMisses:        resp.FPMemoMisses,
			SolveSkips:        resp.FPSolveSkips,
		},
	}, nil
}

// Close releases the client's connections.
func (c *Client) Close() error { return c.tc.Close() }
