package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
)

// registerForUnits loads base and delta arrays into a fresh catalog under
// the given names.
func registerForUnits(t *testing.T, arrays map[string]*array.Array) *cluster.Catalog {
	t.Helper()
	cat := cluster.NewCatalog()
	for name, a := range arrays {
		s := *a.Schema()
		s.Name = name
		if err := cat.Register(&s); err != nil {
			t.Fatal(err)
		}
		a.EachChunk(func(c *array.Chunk) bool {
			cat.SetChunk(name, c.Key(), 0, c.SizeBytes(), c.NumCells())
			return true
		})
	}
	return cat
}

// executeUnits evaluates the units against in-memory arrays (keyed by
// catalog namespace) and returns the resulting differential view, checking
// along the way that every contribution lands inside one of the unit's
// declared view chunks.
func executeUnits(t *testing.T, def *Definition, units []Unit, arrays map[string]*array.Array) *array.Array {
	t.Helper()
	dv := array.New(def.Schema())
	vs := def.Schema()
	for _, u := range units {
		cp := arrays[u.P.Array].ChunkByKey(u.P.Key)
		cq := arrays[u.Q.Array].ChunkByKey(u.Q.Key)
		if cp == nil || cq == nil {
			t.Fatalf("unit %v/%v references missing chunk", u.P, u.Q)
		}
		declared := make(map[array.ChunkKey]bool, len(u.Views))
		for _, v := range u.Views {
			declared[v] = true
		}
		apply := func(a array.Point, tb array.Tuple) {
			g := def.GroupPoint(a)
			if !declared[vs.ChunkCoordOf(g).Key()] {
				t.Fatalf("contribution at %v (view chunk %v) outside declared views of unit %v⋈%v",
					g, vs.ChunkCoordOf(g), u.P, u.Q)
			}
			contrib := def.Contribution(tb)
			if cur, ok := dv.Get(g); ok {
				def.AddState(cur, contrib)
				_ = dv.Set(g, cur)
			} else {
				_ = dv.Set(g, contrib)
			}
		}
		def.Pred.JoinChunkPair(cp, cq, func(a, _ array.Point, _, tb array.Tuple) bool {
			apply(a, tb)
			return true
		})
		if u.BothDirections {
			def.Pred.JoinChunkPair(cq, cp, func(a, _ array.Point, _, tb array.Tuple) bool {
				apply(a, tb)
				return true
			})
		}
	}
	return dv
}

func equalStateArrays(a, b *array.Array) bool {
	ok := true
	a.EachCell(func(p array.Point, tup array.Tuple) bool {
		got, found := b.Get(p)
		if !found {
			for _, v := range tup {
				if v != 0 {
					ok = false
					return false
				}
			}
			return true
		}
		for i := range tup {
			if got[i] != tup[i] {
				ok = false
				return false
			}
		}
		return true
	})
	if !ok {
		return false
	}
	b.EachCell(func(p array.Point, tup array.Tuple) bool {
		if _, found := a.Get(p); !found {
			for _, v := range tup {
				if v != 0 {
					ok = false
					return false
				}
			}
		}
		return true
	})
	return ok
}

func TestUnitsReproduceFigure1Delta(t *testing.T) {
	def := fig1View(t)
	base := fig1Array()
	delta := fig1Delta()
	cat := registerForUnits(t, map[string]*array.Array{"A": base, "AΔ": delta})
	gen := &UnitGen{Catalog: cat, Def: def,
		BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: "AΔ", DeltaBeta: "AΔ"}
	units, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no units generated")
	}
	got := executeUnits(t, def, units, map[string]*array.Array{"A": base, "AΔ": delta})
	want, err := DeltaSelfInsert(def, base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStateArrays(got, want) {
		t.Fatal("unit execution diverges from reference ΔV")
	}
	// The paper's chunk-7 example: delta chunk (0,2) joins base chunks 2
	// ((0,1)) and the delta chunk 8 ((2,2))... verify the (0,2) delta chunk
	// appears in some unit.
	found := false
	for _, u := range units {
		if u.P.Key == (array.ChunkCoord{0, 2}).Key() || u.Q.Key == (array.ChunkCoord{0, 2}).Key() {
			found = true
		}
	}
	if !found {
		t.Error("delta chunk (0,2) missing from units")
	}
}

func TestUnitsSelfJoinProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := fig1Schema()
		base := randArray(rng, 10)
		delta := array.New(s)
		for i := 0; i < 7; i++ {
			p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
			if _, ok := base.Get(p); ok {
				continue
			}
			_ = delta.Set(p, array.Tuple{1, float64(rng.Intn(5))})
		}
		var sh *shape.Shape
		switch rng.Intn(3) {
		case 0:
			sh = shape.L1(2, 1+rng.Int63n(2))
		case 1:
			sh = shape.Linf(2, 2)
		default: // asymmetric window
			var err error
			sh, err = shape.Embed(shape.Linf(1, 1), 2, []int{1}, map[int][2]int64{0: {-3, 0}})
			if err != nil {
				return false
			}
		}
		def, err := NewDefinition("V", s, s, simjoin.NewPred(sh, nil),
			[]string{"i", "j"}, []Aggregate{{Kind: Count, As: "c"}}, nil)
		if err != nil {
			return false
		}
		cat := registerForUnits(t, map[string]*array.Array{"A": base, "AΔ": delta})
		gen := &UnitGen{Catalog: cat, Def: def,
			BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: "AΔ", DeltaBeta: "AΔ"}
		units, err := gen.Generate()
		if err != nil {
			return false
		}
		got := executeUnits(t, def, units, map[string]*array.Array{"A": base, "AΔ": delta})
		want, err := DeltaSelfInsert(def, base, delta)
		if err != nil {
			return false
		}
		return equalStateArrays(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnitsTwoArrayProperty(t *testing.T) {
	sa := array.MustSchema("X",
		[]array.Dimension{{Name: "i", Start: 1, End: 16, ChunkSize: 4}},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	sb := array.MustSchema("Y",
		[]array.Dimension{{Name: "i", Start: 1, End: 16, ChunkSize: 3}},
		[]array.Attribute{{Name: "w", Type: array.Float64}})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(s *array.Schema, n int) *array.Array {
			a := array.New(s)
			for i := 0; i < n; i++ {
				_ = a.Set(array.Point{1 + rng.Int63n(16)}, array.Tuple{float64(rng.Intn(5) + 1)})
			}
			return a
		}
		alpha, beta := mk(sa, 6), mk(sb, 6)
		dA, dB := array.New(sa), array.New(sb)
		for i := 0; i < 4; i++ {
			p := array.Point{1 + rng.Int63n(16)}
			if _, ok := alpha.Get(p); !ok {
				_ = dA.Set(p, array.Tuple{1})
			}
			q := array.Point{1 + rng.Int63n(16)}
			if _, ok := beta.Get(q); !ok {
				_ = dB.Set(q, array.Tuple{2})
			}
		}
		def, err := NewDefinition("V", sa, sb,
			simjoin.NewPred(shape.Linf(1, 2), nil),
			[]string{"i"}, []Aggregate{{Kind: Count, As: "c"}, {Kind: Sum, Attr: "w", As: "ws"}}, nil)
		if err != nil {
			return false
		}
		arrays := map[string]*array.Array{"X": alpha, "Y": beta, "XΔ": dA, "YΔ": dB}
		cat := registerForUnits(t, arrays)
		gen := &UnitGen{Catalog: cat, Def: def,
			BaseAlpha: "X", BaseBeta: "Y", DeltaAlpha: "XΔ", DeltaBeta: "YΔ"}
		units, err := gen.Generate()
		if err != nil {
			return false
		}
		got := executeUnits(t, def, units, arrays)
		want, err := DeltaInsert(def, alpha, beta, dA, dB)
		if err != nil {
			return false
		}
		return equalStateArrays(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTriplesFlattening(t *testing.T) {
	u := Unit{
		P:     ChunkRef{Array: "A", Key: array.ChunkCoord{0}.Key()},
		Q:     ChunkRef{Array: "B", Key: array.ChunkCoord{1}.Key()},
		Views: []array.ChunkKey{array.ChunkCoord{0}.Key(), array.ChunkCoord{1}.Key()},
	}
	ts := Triples([]Unit{u})
	if len(ts) != 2 {
		t.Fatalf("Triples = %d, want 2", len(ts))
	}
	if ts[0].P.Array != "A" || ts[1].V != u.Views[1] {
		t.Error("triples must preserve pair and view identity")
	}
}

func TestUnitsIrrelevantUpdate(t *testing.T) {
	// A delta far away from all base data with no view overlap of its own
	// still generates its delta-self unit (its own counts), but no
	// delta×base units — the paper's "irrelevant update" case prunes the
	// base joins.
	def := fig1View(t)
	base := array.New(fig1Schema())
	_ = base.Set(array.Point{1, 1}, array.Tuple{1, 1})
	delta := array.New(fig1Schema())
	_ = delta.Set(array.Point{6, 8}, array.Tuple{1, 1})
	cat := registerForUnits(t, map[string]*array.Array{"A": base, "AΔ": delta})
	gen := &UnitGen{Catalog: cat, Def: def,
		BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: "AΔ", DeltaBeta: "AΔ"}
	units, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		if u.P.Array == "AΔ" && u.Q.Array == "A" {
			t.Errorf("irrelevant update generated base unit %v⋈%v", u.P, u.Q)
		}
	}
}

// TestUnitsPendingBaseKeys: chunk keys listed as pending participate as
// base-side candidates even though the catalog has no entry for them yet —
// the streaming pipeline's units must cover base chunks a predecessor
// micro-batch is about to create.
func TestUnitsPendingBaseKeys(t *testing.T) {
	def := fig1View(t)
	base := array.New(fig1Schema())
	_ = base.Set(array.Point{1, 1}, array.Tuple{1, 1})
	delta := array.New(fig1Schema())
	_ = delta.Set(array.Point{3, 3}, array.Tuple{1, 1}) // chunk (1,1)
	cat := registerForUnits(t, map[string]*array.Array{"A": base, "AΔ": delta})

	// The neighbouring chunk (1,2) holds no catalog entry. Without pending
	// registration it must not appear; with it, it must.
	pendingKey := (array.ChunkCoord{1, 2}).Key()
	gen := &UnitGen{Catalog: cat, Def: def,
		BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: "AΔ", DeltaBeta: "AΔ"}
	units, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		if u.Q.Array == "A" && u.Q.Key == pendingKey {
			t.Fatalf("absent chunk generated unit %v⋈%v without pending registration", u.P, u.Q)
		}
	}

	gen.PendingAlpha = []array.ChunkKey{pendingKey}
	units, err = gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range units {
		if u.Q.Array == "A" && u.Q.Key == pendingKey {
			found = true
		}
	}
	if !found {
		t.Fatal("pending base chunk generated no unit")
	}
}

// TestUnitsDirtyBaseFullRegion: marking a base chunk dirty disables its
// (stale) bounding box under cell pruning, restoring the conservative
// full-region pairing.
func TestUnitsDirtyBaseFullRegion(t *testing.T) {
	def := fig1View(t)
	base := array.New(fig1Schema())
	// Base chunk (0,0) with a single cell at (1,1): its tight bbox is far
	// (L1 > 1) from the delta cell at (2,4) in chunk (0,1), but the full
	// chunk regions [1..2]x[1..2] and [1..2]x[3..4] are L1-adjacent.
	_ = base.Set(array.Point{1, 1}, array.Tuple{1, 1})
	delta := array.New(fig1Schema())
	_ = delta.Set(array.Point{2, 4}, array.Tuple{1, 1})
	cat := registerForUnits(t, map[string]*array.Array{"A": base, "AΔ": delta})
	baseKey := (array.ChunkCoord{0, 0}).Key()
	if bb, ok := base.ChunkByKey(baseKey).BoundingBox(); ok {
		if err := cat.SetChunkBBox("A", baseKey, bb); err != nil {
			t.Fatal(err)
		}
	}

	gen := &UnitGen{Catalog: cat, Def: def,
		BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: "AΔ", DeltaBeta: "AΔ",
		CellPruning: true}
	units, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		if u.Q.Array == "A" && u.Q.Key == baseKey {
			t.Fatalf("bbox-pruned pair %v⋈%v generated; pruning not effective, test premise broken", u.P, u.Q)
		}
	}

	gen.DirtyBase = func(name string, key array.ChunkKey) bool {
		return name == "A" && key == baseKey
	}
	units, err = gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range units {
		if u.Q.Array == "A" && u.Q.Key == baseKey {
			found = true
		}
	}
	if !found {
		t.Fatal("dirty base chunk still pruned by its stale bbox")
	}
}

func TestUnitGenMissingBase(t *testing.T) {
	def := fig1View(t)
	cat := cluster.NewCatalog()
	gen := &UnitGen{Catalog: cat, Def: def, BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: "AΔ", DeltaBeta: "AΔ"}
	if _, err := gen.Generate(); err == nil {
		t.Error("missing base array must fail")
	}
}

func TestUnitsSortedDeterministic(t *testing.T) {
	def := fig1View(t)
	base := fig1Array()
	delta := fig1Delta()
	cat := registerForUnits(t, map[string]*array.Array{"A": base, "AΔ": delta})
	gen := &UnitGen{Catalog: cat, Def: def,
		BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: "AΔ", DeltaBeta: "AΔ"}
	u1, _ := gen.Generate()
	u2, _ := gen.Generate()
	if len(u1) != len(u2) {
		t.Fatal("unit generation must be deterministic")
	}
	for i := range u1 {
		if u1[i].P != u2[i].P || u1[i].Q != u2[i].Q {
			t.Fatal("unit order must be deterministic")
		}
	}
}

// TestUnitsCellPruningCorrectAndTighter: cell-granularity pruning must
// produce a unit set that still reproduces the exact ΔV, while never
// generating more units than chunk granularity.
func TestUnitsCellPruningCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := fig1Schema()
		base := randArray(rng, 10)
		delta := array.New(s)
		for i := 0; i < 6; i++ {
			p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
			if _, ok := base.Get(p); ok {
				continue
			}
			_ = delta.Set(p, array.Tuple{1, 1})
		}
		def, err := NewDefinition("V", s, s,
			simjoin.NewPred(shape.L1(2, 1), nil),
			[]string{"i", "j"}, []Aggregate{{Kind: Count, As: "c"}}, nil)
		if err != nil {
			return false
		}
		cat := registerForUnits(t, map[string]*array.Array{"A": base, "AΔ": delta})
		// Record bounding boxes, as the cluster loaders do.
		for name, a := range map[string]*array.Array{"A": base, "AΔ": delta} {
			a.EachChunk(func(c *array.Chunk) bool {
				if bb, ok := c.BoundingBox(); ok {
					cat.SetChunkBBox(name, c.Key(), bb)
				}
				return true
			})
		}
		gen := &UnitGen{Catalog: cat, Def: def,
			BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: "AΔ", DeltaBeta: "AΔ"}
		coarse, err := gen.Generate()
		if err != nil {
			return false
		}
		gen.CellPruning = true
		pruned, err := gen.Generate()
		if err != nil {
			return false
		}
		if len(pruned) > len(coarse) {
			return false
		}
		got := executeUnits(t, def, pruned, map[string]*array.Array{"A": base, "AΔ": delta})
		want, err := DeltaSelfInsert(def, base, delta)
		if err != nil {
			return false
		}
		return equalStateArrays(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
