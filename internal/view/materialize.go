package view

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
)

// Materialize evaluates the view eagerly over in-memory input arrays and
// returns the materialized result (state tuples, see Definition.Output).
// It is the single-node reference evaluator: the distributed maintenance
// path is validated against it.
func Materialize(d *Definition, alpha, beta *array.Array) (*array.Array, error) {
	out := array.New(d.schema)
	if err := accumulateJoin(d, alpha, beta, out); err != nil {
		return nil, err
	}
	return out, nil
}

// accumulateJoin folds the aggregate contributions of every matched pair of
// alpha ⋈ beta into acc.
func accumulateJoin(d *Definition, alpha, beta *array.Array, acc *array.Array) error {
	return accumulateJoinSigned(d, alpha, beta, acc, 1)
}

// accumulateJoinSigned folds sign-scaled contributions (sign = -1 retracts,
// as under deletions).
func accumulateJoinSigned(d *Definition, alpha, beta *array.Array, acc *array.Array, sign float64) error {
	var err error
	eachJoinPair(d, alpha, beta, func(a array.Point, tb array.Tuple) bool {
		g := d.GroupPoint(a)
		contrib := d.Contribution(tb)
		if sign != 1 {
			for i := range contrib {
				contrib[i] *= sign
			}
		}
		if cur, ok := acc.Get(g); ok {
			d.AddState(cur, contrib)
			err = acc.Set(g, cur)
		} else {
			err = acc.Set(g, contrib)
		}
		return err == nil
	})
	return err
}

// eachJoinPair enumerates matched pairs (a ∈ α, b ∈ β) passing the view's
// attribute filters, calling fn with the α coordinate and β tuple of each.
func eachJoinPair(d *Definition, alpha, beta *array.Array, fn func(a array.Point, tb array.Tuple) bool) {
	stop := false
	alpha.EachChunk(func(ca *array.Chunk) bool {
		reach := d.Pred.ReachRegion(ca.Region())
		for _, cc := range beta.Schema().ChunksOverlapping(reach) {
			cb := beta.Chunk(cc)
			if cb == nil {
				continue
			}
			d.Pred.JoinChunkPair(ca, cb, func(a, _ array.Point, ta, tb array.Tuple) bool {
				if !d.AlphaMatch(ta) || !d.BetaMatch(tb) {
					return true
				}
				if !fn(a, tb) {
					stop = true
				}
				return !stop
			})
			if stop {
				break
			}
		}
		return !stop
	})
}

// DisjointInsert verifies that delta contains no cell already present in
// base: the precondition for additive delta maintenance of insertions.
func DisjointInsert(base, delta *array.Array) error {
	var err error
	delta.EachCell(func(p array.Point, _ array.Tuple) bool {
		if _, ok := base.Get(p); ok {
			err = fmt.Errorf("view: delta cell %v already present in %s", p, base.Schema().Name)
			return false
		}
		return true
	})
	return err
}

// SubsetOf verifies that every cell of del exists in base: the
// precondition for delta maintenance of deletions.
func SubsetOf(base, del *array.Array) error {
	var err error
	del.EachCell(func(p array.Point, _ array.Tuple) bool {
		if _, ok := base.Get(p); !ok {
			err = fmt.Errorf("view: deletion of absent cell %v from %s", p, base.Schema().Name)
			return false
		}
		return true
	})
	return err
}

// DeltaSelfDelete computes the differential view ΔV for deleting the cells
// of del from the base array of a self-join view:
//
//	ΔV = −agg(D ⋈ A) − agg(A ⋈ D) + agg(D ⋈ D)
//
// where A is the pre-deletion content (D ⊆ A). Merging ΔV into V yields
// exactly the view over A \ D for additive aggregates. Non-additive
// aggregates (MIN/MAX) cannot be maintained under deletions.
func DeltaSelfDelete(d *Definition, base, del *array.Array) (*array.Array, error) {
	if !d.SelfJoin() {
		return nil, fmt.Errorf("view: %s is not a self join", d.Name)
	}
	if !d.Retractable() {
		return nil, fmt.Errorf("view: %s has non-retractable aggregates (MIN/MAX)", d.Name)
	}
	out := array.New(d.schema)
	if err := accumulateJoinSigned(d, del, base, out, -1); err != nil { // −(D ⋈ A)
		return nil, err
	}
	if err := accumulateJoinSigned(d, base, del, out, -1); err != nil { // −(A ⋈ D)
		return nil, err
	}
	if err := accumulateJoinSigned(d, del, del, out, +1); err != nil { // +(D ⋈ D)
		return nil, err
	}
	return out, nil
}

// DeltaSelfInsert computes the differential view ΔV for a batch of
// insertions delta into the base array of a self-join view:
//
//	ΔV = agg(Δ ⋈ A) + agg(A ⋈ Δ) + agg(Δ ⋈ Δ)
//
// where A is the pre-update content. Merging ΔV into V with MergeDelta
// yields exactly the view over A + Δ (additive aggregates, disjoint
// insertions).
func DeltaSelfInsert(d *Definition, base, delta *array.Array) (*array.Array, error) {
	if !d.SelfJoin() {
		return nil, fmt.Errorf("view: %s is not a self join", d.Name)
	}
	out := array.New(d.schema)
	if err := accumulateJoin(d, delta, base, out); err != nil { // Δ ⋈ A
		return nil, err
	}
	if err := accumulateJoin(d, base, delta, out); err != nil { // A ⋈ Δ
		return nil, err
	}
	if err := accumulateJoin(d, delta, delta, out); err != nil { // Δ ⋈ Δ
		return nil, err
	}
	return out, nil
}

// DeltaInsert computes ΔV for a two-array view under insertions dAlpha and
// dBeta (either may be empty):
//
//	ΔV = agg(Δα ⋈ β) + agg(α ⋈ Δβ) + agg(Δα ⋈ Δβ)
func DeltaInsert(d *Definition, alpha, beta, dAlpha, dBeta *array.Array) (*array.Array, error) {
	out := array.New(d.schema)
	if dAlpha != nil {
		if err := accumulateJoin(d, dAlpha, beta, out); err != nil {
			return nil, err
		}
	}
	if dBeta != nil {
		if err := accumulateJoin(d, alpha, dBeta, out); err != nil {
			return nil, err
		}
	}
	if dAlpha != nil && dBeta != nil {
		if err := accumulateJoin(d, dAlpha, dBeta, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MergeDelta folds differential view dv into v additively:
// V ← V + ΔV. Cells absent from v are created.
func MergeDelta(d *Definition, v, dv *array.Array) error {
	var err error
	dv.EachCell(func(p array.Point, t array.Tuple) bool {
		if cur, ok := v.Get(p); ok {
			d.AddState(cur, t)
			err = v.Set(p, cur)
		} else {
			err = v.Set(p, t)
		}
		return err == nil
	})
	return err
}

// MergeStateChunks is the chunk-level additive merge used by node stores:
// src's state tuples are added into dst. It is the compiled form of
// StateMergeSpec, so local and remote merges share one implementation.
func MergeStateChunks(d *Definition) func(dst, src *array.Chunk) error {
	fn, err := d.StateMergeSpec().Func()
	if err != nil {
		return func(*array.Chunk, *array.Chunk) error { return err }
	}
	return fn
}
