package view

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
)

func fig1Schema() *array.Schema {
	return array.MustSchema("A",
		[]array.Dimension{
			{Name: "i", Start: 1, End: 6, ChunkSize: 2},
			{Name: "j", Start: 1, End: 8, ChunkSize: 2},
		},
		[]array.Attribute{{Name: "r", Type: array.Int64}, {Name: "s", Type: array.Int64}},
	)
}

func fig1Array() *array.Array {
	a := array.New(fig1Schema())
	for _, c := range []struct {
		p array.Point
		t array.Tuple
	}{
		{array.Point{1, 2}, array.Tuple{2, 5}},
		{array.Point{1, 3}, array.Tuple{6, 3}},
		{array.Point{3, 4}, array.Tuple{2, 9}},
		{array.Point{4, 1}, array.Tuple{2, 1}},
		{array.Point{5, 7}, array.Tuple{4, 8}},
		{array.Point{6, 5}, array.Tuple{4, 3}},
	} {
		if err := a.Set(c.p, c.t); err != nil {
			panic(err)
		}
	}
	return a
}

// fig1Delta returns the 7 insertions of Figure 1 (b).
func fig1Delta() *array.Array {
	d := array.New(fig1Schema())
	for _, p := range []array.Point{{1, 5}, {2, 1}, {2, 3}, {4, 2}, {4, 4}, {5, 4}, {5, 6}} {
		if err := d.Set(p, array.Tuple{1, 1}); err != nil {
			panic(err)
		}
	}
	return d
}

// fig1View is the paper's Example 1 view: COUNT(*) over the L1(1)
// similarity self-join, grouped by (i, j).
func fig1View(t *testing.T) *Definition {
	t.Helper()
	s := fig1Schema()
	d, err := NewDefinition("V", s, s,
		simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"i", "j"},
		[]Aggregate{{Kind: Count, As: "cnt"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPaperExample1InitialView(t *testing.T) {
	def := fig1View(t)
	a := fig1Array()
	v, err := Materialize(def, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.NumCells(); got != 6 {
		t.Fatalf("|V| = %d, want 6", got)
	}
	// "there are only two cells with value 2 — V[1,2], V[1,3]".
	wantCounts := map[string]float64{
		"[1, 2]": 2, "[1, 3]": 2, "[3, 4]": 1, "[4, 1]": 1, "[5, 7]": 1, "[6, 5]": 1,
	}
	v.EachCell(func(p array.Point, tup array.Tuple) bool {
		if want, ok := wantCounts[p.String()]; !ok || tup[0] != want {
			t.Errorf("V%v = %v, want %v", p, tup[0], want)
		}
		return true
	})
	// The view inherits A's chunking: V's occupied chunks mirror A's.
	if got := v.NumChunks(); got != 6 {
		t.Errorf("view chunks = %d, want 6", got)
	}
}

func TestPaperFigure1Maintenance(t *testing.T) {
	def := fig1View(t)
	a := fig1Array()
	delta := fig1Delta()
	if err := DisjointInsert(a, delta); err != nil {
		t.Fatal(err)
	}
	vOld, err := Materialize(def, a, a)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := DeltaSelfInsert(def, a, delta)
	if err != nil {
		t.Fatal(err)
	}
	vNew := vOld.Clone()
	if err := MergeDelta(def, vNew, dv); err != nil {
		t.Fatal(err)
	}
	// Incremental result equals recomputation over A + Δ.
	merged := a.Clone()
	delta.EachCell(func(p array.Point, tup array.Tuple) bool {
		_ = merged.Set(p, tup)
		return true
	})
	vFull, err := Materialize(def, merged, merged)
	if err != nil {
		t.Fatal(err)
	}
	if !vNew.Equal(vFull) {
		t.Fatal("incremental maintenance diverges from recomputation")
	}
	// "The number of cells in view V that are impacted by the insertions is
	// 11" (7 new + 4 changed).
	changed := 0
	vNew.EachCell(func(p array.Point, tup array.Tuple) bool {
		old, ok := vOld.Get(p)
		if !ok || old[0] != tup[0] {
			changed++
		}
		return true
	})
	if changed != 11 {
		t.Errorf("impacted view cells = %d, want 11", changed)
	}
	// "These cells cover all the chunks in the view" — 8 chunks after the
	// two new chunks appear.
	if got := vNew.NumChunks(); got != 8 {
		t.Errorf("view chunks after update = %d, want 8", got)
	}
	if got := dv.NumChunks(); got != 8 {
		t.Errorf("ΔV touches %d chunks, want 8 (the entire view)", got)
	}
	// Spot values: V[1,3] gains neighbor (2,3): 2 → 3.
	if tup, _ := vNew.Get(array.Point{1, 3}); tup[0] != 3 {
		t.Errorf("V[1,3] = %v, want 3", tup[0])
	}
	// V[1,2] is NOT affected (no new cell within L1(1)).
	if tup, _ := vNew.Get(array.Point{1, 2}); tup[0] != 2 {
		t.Errorf("V[1,2] = %v, want 2", tup[0])
	}
}

// randArray builds a sparse random array over the Figure 1 schema.
func randArray(rng *rand.Rand, n int) *array.Array {
	a := array.New(fig1Schema())
	for i := 0; i < n; i++ {
		p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
		_ = a.Set(p, array.Tuple{float64(rng.Intn(9) + 1), float64(rng.Intn(9) + 1)})
	}
	return a
}

// TestDeltaEqualsRecomputeProperty is the core correctness invariant:
// for random bases, deltas, shapes, and aggregates,
// V(A) + ΔV(A, Δ) == V(A + Δ).
func TestDeltaEqualsRecomputeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := fig1Schema()
		base := randArray(rng, 8)
		delta := array.New(s)
		for i := 0; i < 6; i++ {
			p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
			if _, ok := base.Get(p); ok {
				continue // keep the insert-only precondition
			}
			_ = delta.Set(p, array.Tuple{float64(rng.Intn(9) + 1), float64(rng.Intn(9) + 1)})
		}
		var sh *shape.Shape
		switch rng.Intn(3) {
		case 0:
			sh = shape.L1(2, 1+rng.Int63n(2))
		case 1:
			sh = shape.Linf(2, 1+rng.Int63n(2))
		default: // asymmetric: past window on i
			var err error
			sh, err = shape.Embed(shape.Linf(1, 1), 2, []int{1}, map[int][2]int64{0: {-2, 0}})
			if err != nil {
				return false
			}
		}
		aggs := []Aggregate{{Kind: Count, As: "cnt"}}
		if rng.Intn(2) == 0 {
			aggs = append(aggs,
				Aggregate{Kind: Sum, Attr: "r", As: "rsum"},
				Aggregate{Kind: Avg, Attr: "s", As: "savg"})
		}
		def, err := NewDefinition("V", s, s, simjoin.NewPred(sh, nil), []string{"i", "j"}, aggs, nil)
		if err != nil {
			return false
		}
		vOld, err := Materialize(def, base, base)
		if err != nil {
			return false
		}
		dv, err := DeltaSelfInsert(def, base, delta)
		if err != nil {
			return false
		}
		if err := MergeDelta(def, vOld, dv); err != nil {
			return false
		}
		merged := base.Clone()
		delta.EachCell(func(p array.Point, tup array.Tuple) bool {
			_ = merged.Set(p, tup)
			return true
		})
		vFull, err := Materialize(def, merged, merged)
		if err != nil {
			return false
		}
		// State tuples may contain zero-valued groups in vOld that vFull
		// lacks (e.g., count incremented from nothing); normalize by
		// comparing rendered cells of vFull against vOld and checking no
		// extra non-zero cells.
		ok := true
		vFull.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := vOld.Get(p)
			if !found || len(got) != len(tup) {
				ok = false
				return false
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
		if !ok {
			return false
		}
		vOld.EachCell(func(p array.Point, tup array.Tuple) bool {
			if _, found := vFull.Get(p); !found {
				for _, v := range tup {
					if v != 0 {
						ok = false
						return false
					}
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTwoArrayDeltaEqualsRecompute(t *testing.T) {
	sa := array.MustSchema("X",
		[]array.Dimension{{Name: "i", Start: 1, End: 12, ChunkSize: 3}},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	sb := array.MustSchema("Y",
		[]array.Dimension{{Name: "i", Start: 1, End: 12, ChunkSize: 4}},
		[]array.Attribute{{Name: "w", Type: array.Float64}})
	def, err := NewDefinition("V", sa, sb,
		simjoin.NewPred(shape.Linf(1, 1), nil),
		[]string{"i"},
		[]Aggregate{{Kind: Count, As: "cnt"}, {Kind: Sum, Attr: "w", As: "wsum"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(s *array.Schema, n int) *array.Array {
			a := array.New(s)
			for i := 0; i < n; i++ {
				_ = a.Set(array.Point{1 + rng.Int63n(12)}, array.Tuple{float64(rng.Intn(5) + 1)})
			}
			return a
		}
		alpha, beta := mk(sa, 5), mk(sb, 5)
		dA, dB := array.New(sa), array.New(sb)
		for i := 0; i < 4; i++ {
			p := array.Point{1 + rng.Int63n(12)}
			if _, ok := alpha.Get(p); !ok {
				_ = dA.Set(p, array.Tuple{float64(rng.Intn(5) + 1)})
			}
			q := array.Point{1 + rng.Int63n(12)}
			if _, ok := beta.Get(q); !ok {
				_ = dB.Set(q, array.Tuple{float64(rng.Intn(5) + 1)})
			}
		}
		v, err := Materialize(def, alpha, beta)
		if err != nil {
			return false
		}
		dv, err := DeltaInsert(def, alpha, beta, dA, dB)
		if err != nil {
			return false
		}
		if err := MergeDelta(def, v, dv); err != nil {
			return false
		}
		a2, b2 := alpha.Clone(), beta.Clone()
		dA.EachCell(func(p array.Point, tup array.Tuple) bool { _ = a2.Set(p, tup); return true })
		dB.EachCell(func(p array.Point, tup array.Tuple) bool { _ = b2.Set(p, tup); return true })
		vFull, err := Materialize(def, a2, b2)
		if err != nil {
			return false
		}
		ok := true
		vFull.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := v.Get(p)
			if !found {
				ok = false
				return false
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDisjointInsertDetectsCollision(t *testing.T) {
	a := fig1Array()
	d := array.New(fig1Schema())
	_ = d.Set(array.Point{1, 2}, array.Tuple{0, 0})
	if err := DisjointInsert(a, d); err == nil {
		t.Error("collision must be detected")
	}
}

func TestDefinitionValidation(t *testing.T) {
	s := fig1Schema()
	pred := simjoin.NewPred(shape.L1(2, 1), nil)
	cases := []struct {
		name    string
		mutate  func() (*Definition, error)
		wantErr string
	}{
		{"empty name", func() (*Definition, error) {
			return NewDefinition("", s, s, pred, []string{"i"}, []Aggregate{{Kind: Count, As: "c"}}, nil)
		}, "empty view name"},
		{"no groupby", func() (*Definition, error) {
			return NewDefinition("V", s, s, pred, nil, []Aggregate{{Kind: Count, As: "c"}}, nil)
		}, "GROUP BY"},
		{"bad groupby", func() (*Definition, error) {
			return NewDefinition("V", s, s, pred, []string{"zz"}, []Aggregate{{Kind: Count, As: "c"}}, nil)
		}, "not in"},
		{"no aggs", func() (*Definition, error) {
			return NewDefinition("V", s, s, pred, []string{"i"}, nil, nil)
		}, "no aggregates"},
		{"bad attr", func() (*Definition, error) {
			return NewDefinition("V", s, s, pred, []string{"i"}, []Aggregate{{Kind: Sum, Attr: "zz", As: "x"}}, nil)
		}, "not in"},
		{"empty as", func() (*Definition, error) {
			return NewDefinition("V", s, s, pred, []string{"i"}, []Aggregate{{Kind: Count}}, nil)
		}, "empty output name"},
		{"shape arity", func() (*Definition, error) {
			return NewDefinition("V", s, s, simjoin.NewPred(shape.L1(3, 1), nil), []string{"i"}, []Aggregate{{Kind: Count, As: "c"}}, nil)
		}, "dims"},
		{"bad chunking len", func() (*Definition, error) {
			return NewDefinition("V", s, s, pred, []string{"i"}, []Aggregate{{Kind: Count, As: "c"}}, []int64{2, 2})
		}, "chunking"},
		{"bad chunking val", func() (*Definition, error) {
			return NewDefinition("V", s, s, pred, []string{"i"}, []Aggregate{{Kind: Count, As: "c"}}, []int64{0})
		}, "chunk size"},
	}
	for _, tc := range cases {
		_, err := tc.mutate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestDefinitionSchemaAndChunking(t *testing.T) {
	s := fig1Schema()
	pred := simjoin.NewPred(shape.L1(2, 1), nil)
	def, err := NewDefinition("V", s, s, pred, []string{"j"},
		[]Aggregate{{Kind: Count, As: "cnt"}, {Kind: Avg, Attr: "r", As: "ravg"}}, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	vs := def.Schema()
	if vs.NumDims() != 1 || vs.Dims[0].Name != "j" || vs.Dims[0].ChunkSize != 4 {
		t.Errorf("view schema dims = %v", vs.Dims)
	}
	// cnt + avg(sum,cnt) = 3 physical attributes.
	if vs.NumAttrs() != 3 || def.StateWidth() != 3 {
		t.Errorf("state width = %d attrs = %d, want 3", def.StateWidth(), vs.NumAttrs())
	}
	out := def.Output(array.Tuple{5, 10, 4})
	if out[0] != 5 || out[1] != 2.5 {
		t.Errorf("Output = %v, want [5 2.5]", out)
	}
	if got := def.Output(array.Tuple{0, 0, 0}); got[1] != 0 {
		t.Errorf("AVG of empty group = %v, want 0", got[1])
	}
	if !strings.Contains(def.String(), "SIMILARITY JOIN") {
		t.Error("String() should render AQL-like text")
	}
}

func TestGroupProjection(t *testing.T) {
	s := array.MustSchema("C",
		[]array.Dimension{
			{Name: "t", Start: 0, End: 9, ChunkSize: 5},
			{Name: "x", Start: 0, End: 9, ChunkSize: 5},
			{Name: "y", Start: 0, End: 9, ChunkSize: 5},
		},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	def, err := NewDefinition("V", s, s, simjoin.NewPred(shape.L1(3, 1), nil),
		[]string{"x", "y"}, []Aggregate{{Kind: Count, As: "c"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := def.GroupPoint(array.Point{7, 3, 5}); !got.Equal(array.Point{3, 5}) {
		t.Errorf("GroupPoint = %v", got)
	}
	r := def.GroupRegion(array.NewRegion(array.Point{0, 1, 2}, array.Point{5, 6, 7}))
	if !r.Lo.Equal(array.Point{1, 2}) || !r.Hi.Equal(array.Point{6, 7}) {
		t.Errorf("GroupRegion = %v", r)
	}
}
