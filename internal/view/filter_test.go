package view

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
)

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		x, y float64
		want bool
	}{
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Eq, 2, 2, true}, {Eq, 1, 2, false},
		{Ne, 1, 2, true}, {Ne, 2, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.eval(c.x, c.y); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.x, c.op, c.y, got, c.want)
		}
	}
	for _, op := range []CmpOp{Lt, Le, Eq, Ne, Ge, Gt} {
		if op.String() == "" || strings.HasPrefix(op.String(), "CmpOp") {
			t.Errorf("missing name for op %d", op)
		}
	}
}

func TestSetFiltersValidation(t *testing.T) {
	def := fig1View(t)
	if err := def.SetFilters([]Condition{{Attr: "zz", Op: Lt, Value: 1}}, nil); err == nil {
		t.Error("unknown α attribute must fail")
	}
	if err := def.SetFilters(nil, []Condition{{Attr: "zz", Op: Lt, Value: 1}}); err == nil {
		t.Error("unknown β attribute must fail")
	}
	if def.Filtered() {
		t.Error("failed SetFilters must leave the view unfiltered")
	}
	if err := def.SetFilters([]Condition{{Attr: "r", Op: Ge, Value: 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if !def.Filtered() {
		t.Error("Filtered must report attached filters")
	}
}

// bruteFiltered computes the filtered view by scanning all cell pairs.
func bruteFiltered(t *testing.T, d *Definition, a *array.Array) *array.Array {
	t.Helper()
	out := array.New(d.Schema())
	a.EachCell(func(pa array.Point, ta array.Tuple) bool {
		if !d.AlphaMatch(ta) {
			return true
		}
		paC := pa.Clone()
		taC := ta.Clone()
		_ = taC
		a.EachCell(func(pb array.Point, tb array.Tuple) bool {
			if !d.Pred.Matches(paC, pb) || !d.BetaMatch(tb) {
				return true
			}
			g := d.GroupPoint(paC)
			contrib := d.Contribution(tb)
			if cur, ok := out.Get(g); ok {
				d.AddState(cur, contrib)
				_ = out.Set(g, cur)
			} else {
				_ = out.Set(g, contrib)
			}
			return true
		})
		return true
	})
	return out
}

func TestFilteredMaterializeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := fig1Schema()
		base := randArray(rng, 14)
		def, err := NewDefinition("V", s, s,
			simjoin.NewPred(shape.Linf(2, 1), nil),
			[]string{"i", "j"},
			[]Aggregate{{Kind: Count, As: "c"}, {Kind: Sum, Attr: "s", As: "ss"}}, nil)
		if err != nil {
			return false
		}
		if err := def.SetFilters(
			[]Condition{{Attr: "r", Op: Ge, Value: float64(rng.Intn(6))}},
			[]Condition{{Attr: "s", Op: Lt, Value: float64(rng.Intn(8) + 2)}},
		); err != nil {
			return false
		}
		got, err := Materialize(def, base, base)
		if err != nil {
			return false
		}
		want := bruteFiltered(t, def, base)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFilteredDeltaEqualsRecompute: filters compose with incremental
// maintenance.
func TestFilteredDeltaEqualsRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := fig1Schema()
		base := randArray(rng, 10)
		delta := array.New(s)
		for i := 0; i < 5; i++ {
			p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
			if _, ok := base.Get(p); ok {
				continue
			}
			_ = delta.Set(p, array.Tuple{float64(rng.Intn(9) + 1), float64(rng.Intn(9) + 1)})
		}
		def, err := NewDefinition("V", s, s,
			simjoin.NewPred(shape.L1(2, 1), nil),
			[]string{"i", "j"}, []Aggregate{{Kind: Count, As: "c"}}, nil)
		if err != nil {
			return false
		}
		if err := def.SetFilters(nil, []Condition{{Attr: "r", Op: Le, Value: 5}}); err != nil {
			return false
		}
		v, err := Materialize(def, base, base)
		if err != nil {
			return false
		}
		dv, err := DeltaSelfInsert(def, base, delta)
		if err != nil {
			return false
		}
		if err := MergeDelta(def, v, dv); err != nil {
			return false
		}
		merged := base.Clone()
		delta.EachCell(func(p array.Point, tup array.Tuple) bool { _ = merged.Set(p, tup); return true })
		vFull, err := Materialize(def, merged, merged)
		if err != nil {
			return false
		}
		ok := true
		vFull.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := v.Get(p)
			if !found || got[0] != tup[0] {
				ok = false
				return false
			}
			return true
		})
		v.EachCell(func(p array.Point, tup array.Tuple) bool {
			if _, found := vFull.Get(p); !found && tup[0] != 0 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFilterString(t *testing.T) {
	f, err := compileFilter([]Condition{{Attr: "r", Op: Lt, Value: 3}, {Attr: "s", Op: Ge, Value: 1}}, fig1Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.String(); got != "r < 3 AND s >= 1" {
		t.Errorf("String = %q", got)
	}
	var nilF *filter
	if nilF.String() != "" || !nilF.match(array.Tuple{1}) {
		t.Error("nil filter must be empty and match everything")
	}
}
