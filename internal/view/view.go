// Package view implements materialized array views (Section 3 of the
// paper): views defined by an array similarity join followed by a group-by
// aggregation, materialized eagerly as arrays, with incremental delta
// semantics under batch insertions.
//
// The paper's Definition 1 allows a chain of similarity joins followed by
// unary operators; maintenance of longer chains is recursive over the
// two-array case (Section 3, "Recursive maintenance"), so — like the paper
// — this package implements the fundamental two-array (and self-join) case.
package view

import (
	"errors"
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/simjoin"
)

// AggKind enumerates the incrementally-maintainable SQL aggregates the
// paper supports (commutative, associative, additive state).
type AggKind int

const (
	// Count is COUNT(*) over the matched pairs of each group.
	Count AggKind = iota
	// Sum is SUM(attr) of a β-side attribute over the matched pairs.
	Sum
	// Avg is AVG(attr); its state is a (sum, count) pair and the exposed
	// value is their ratio.
	Avg
	// Min is MIN(attr). Maintainable under insertions only (not
	// retractable under deletions).
	Min
	// Max is MAX(attr). Maintainable under insertions only.
	Max
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Aggregate is one aggregation in the view's SELECT list. Attr names a
// β-side attribute (ignored for Count). As names the output attribute.
type Aggregate struct {
	Kind AggKind
	Attr string
	As   string
}

// stateWidth returns how many physical attributes the aggregate's additive
// state occupies in the materialized view.
func (a Aggregate) stateWidth() int {
	if a.Kind == Avg {
		return 2
	}
	return 1
}

// Definition describes one materialized array view:
//
//	CREATE ARRAY VIEW <Name> AS
//	SELECT <Aggs> FROM <Alpha> SIMILARITY JOIN <Beta>
//	ON <Pred.Mapping> WITH SHAPE <Pred.Shape>
//	GROUP BY <GroupBy...>
//
// GroupBy lists α dimensions; the view's dimensions are those, in α order.
type Definition struct {
	Name    string
	Alpha   *array.Schema
	Beta    *array.Schema
	Pred    simjoin.Pred
	GroupBy []string
	Aggs    []Aggregate
	// Chunking optionally overrides the view's per-dimension chunk sizes;
	// when nil the view inherits the chunking of the group-by dimensions of
	// α, as in the paper's Example 2.
	Chunking []int64

	groupDims []int          // α dim positions of GroupBy
	attrIdx   map[string]int // β attribute positions
	schema    *array.Schema

	filterAlpha, filterBeta *filter // optional WHERE conjunctions
}

// NewDefinition validates the definition and derives the view schema.
// Alpha and Beta may be the same schema (self join).
func NewDefinition(name string, alpha, beta *array.Schema, pred simjoin.Pred, groupBy []string, aggs []Aggregate, chunking []int64) (*Definition, error) {
	d := &Definition{
		Name: name, Alpha: alpha, Beta: beta, Pred: pred,
		GroupBy: groupBy, Aggs: aggs, Chunking: chunking,
	}
	if err := d.compile(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Definition) compile() error {
	if d.Name == "" {
		return errors.New("view: empty view name")
	}
	if d.Alpha == nil || d.Beta == nil {
		return errors.New("view: missing input schema")
	}
	if d.Pred.Shape == nil {
		return errors.New("view: missing join shape")
	}
	if d.Pred.Mapping == nil {
		d.Pred.Mapping = simjoin.Identity{}
	}
	if d.Pred.Shape.NumDims() != d.Beta.NumDims() {
		return fmt.Errorf("view: shape has %d dims, β has %d", d.Pred.Shape.NumDims(), d.Beta.NumDims())
	}
	if len(d.GroupBy) == 0 {
		return errors.New("view: empty GROUP BY")
	}
	if len(d.Aggs) == 0 {
		return errors.New("view: no aggregates")
	}
	d.groupDims = make([]int, len(d.GroupBy))
	for i, g := range d.GroupBy {
		idx := d.Alpha.DimIndex(g)
		if idx < 0 {
			return fmt.Errorf("view: GROUP BY dimension %q not in %s", g, d.Alpha.Name)
		}
		d.groupDims[i] = idx
	}
	d.attrIdx = make(map[string]int)
	var dims []array.Dimension
	for i, gd := range d.groupDims {
		dim := d.Alpha.Dims[gd]
		if d.Chunking != nil {
			if len(d.Chunking) != len(d.groupDims) {
				return fmt.Errorf("view: chunking has %d entries, want %d", len(d.Chunking), len(d.groupDims))
			}
			if d.Chunking[i] <= 0 {
				return fmt.Errorf("view: non-positive chunk size %d", d.Chunking[i])
			}
			dim.ChunkSize = d.Chunking[i]
		}
		dims = append(dims, dim)
	}
	var attrs []array.Attribute
	for _, a := range d.Aggs {
		if a.As == "" {
			return errors.New("view: aggregate with empty output name")
		}
		switch a.Kind {
		case Count:
			attrs = append(attrs, array.Attribute{Name: a.As, Type: array.Int64})
		case Sum, Min, Max:
			attrs = append(attrs, array.Attribute{Name: a.As, Type: array.Float64})
		case Avg:
			attrs = append(attrs,
				array.Attribute{Name: a.As + "_sum", Type: array.Float64},
				array.Attribute{Name: a.As + "_cnt", Type: array.Int64})
		default:
			return fmt.Errorf("view: unknown aggregate kind %v", a.Kind)
		}
		if a.Kind != Count {
			idx := d.Beta.AttrIndex(a.Attr)
			if idx < 0 {
				return fmt.Errorf("view: aggregate attribute %q not in %s", a.Attr, d.Beta.Name)
			}
			d.attrIdx[a.Attr] = idx
		}
	}
	schema, err := array.NewSchema(d.Name, dims, attrs)
	if err != nil {
		return err
	}
	d.schema = schema
	return nil
}

// Schema returns the derived schema of the materialized view.
func (d *Definition) Schema() *array.Schema { return d.schema }

// SelfJoin reports whether the view joins an array with itself.
func (d *Definition) SelfJoin() bool { return d.Alpha.Name == d.Beta.Name }

// StateWidth returns the number of physical attributes in the view's
// additive state tuples.
func (d *Definition) StateWidth() int {
	w := 0
	for _, a := range d.Aggs {
		w += a.stateWidth()
	}
	return w
}

// GroupPoint projects an α cell coordinate onto the view's dimensions.
func (d *Definition) GroupPoint(a array.Point) array.Point {
	out := make(array.Point, len(d.groupDims))
	for i, gd := range d.groupDims {
		out[i] = a[gd]
	}
	return out
}

// GroupRegion projects an α region onto the view's dimensions.
func (d *Definition) GroupRegion(r array.Region) array.Region {
	return r.Project(d.groupDims)
}

// Contribution returns the additive state contribution of one matched pair
// (Υ, Ψ) with β-side tuple tb.
func (d *Definition) Contribution(tb array.Tuple) array.Tuple {
	out := make(array.Tuple, 0, d.StateWidth())
	for _, a := range d.Aggs {
		switch a.Kind {
		case Count:
			out = append(out, 1)
		case Sum, Min, Max:
			out = append(out, tb[d.attrIdx[a.Attr]])
		case Avg:
			out = append(out, tb[d.attrIdx[a.Attr]], 1)
		}
	}
	return out
}

// AddState combines contribution src into dst in place (dst and src have
// StateWidth entries): additive aggregates sum, MIN/MAX take the extremum.
func (d *Definition) AddState(dst, src array.Tuple) {
	i := 0
	for _, a := range d.Aggs {
		switch a.Kind {
		case Count, Sum:
			dst[i] += src[i]
			i++
		case Avg:
			dst[i] += src[i]
			dst[i+1] += src[i+1]
			i += 2
		case Min:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
			i++
		case Max:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
			i++
		}
	}
}

// Retractable reports whether every aggregate supports retraction
// (deletions): MIN and MAX do not.
func (d *Definition) Retractable() bool {
	for _, a := range d.Aggs {
		if a.Kind == Min || a.Kind == Max {
			return false
		}
	}
	return true
}

// Output renders the user-visible aggregate values from a state tuple, in
// aggregate order. AVG of an empty group renders as 0.
func (d *Definition) Output(state array.Tuple) []float64 {
	out := make([]float64, 0, len(d.Aggs))
	i := 0
	for _, a := range d.Aggs {
		switch a.Kind {
		case Count, Sum, Min, Max:
			out = append(out, state[i])
			i++
		case Avg:
			sum, cnt := state[i], state[i+1]
			if cnt == 0 {
				out = append(out, 0)
			} else {
				out = append(out, sum/cnt)
			}
			i += 2
		}
	}
	return out
}

// String renders the definition in AQL-like syntax.
func (d *Definition) String() string {
	agg := ""
	for i, a := range d.Aggs {
		if i > 0 {
			agg += ", "
		}
		if a.Kind == Count {
			agg += fmt.Sprintf("COUNT(*) AS %s", a.As)
		} else {
			agg += fmt.Sprintf("%s(%s) AS %s", a.Kind, a.Attr, a.As)
		}
	}
	gb := ""
	for i, g := range d.GroupBy {
		if i > 0 {
			gb += ", "
		}
		gb += g
	}
	return fmt.Sprintf(
		"CREATE ARRAY VIEW %s AS SELECT %s FROM %s SIMILARITY JOIN %s ON %s WITH SHAPE %s GROUP BY %s",
		d.Name, agg, d.Alpha.Name, d.Beta.Name, d.Pred.Mapping.Name(), d.Pred.Shape.Name(), gb)
}
