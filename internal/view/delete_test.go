package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
)

// TestDeleteEqualsRecomputeProperty: V(A) + ΔV_delete(A, D) == V(A \ D)
// for random bases, deletions, and shapes.
func TestDeleteEqualsRecomputeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := fig1Schema()
		base := randArray(rng, 14)
		// Pick a random subset of existing cells to delete.
		del := array.New(s)
		base.EachCell(func(p array.Point, tup array.Tuple) bool {
			if rng.Intn(3) == 0 {
				_ = del.Set(p, tup)
			}
			return true
		})
		var sh *shape.Shape
		switch rng.Intn(3) {
		case 0:
			sh = shape.L1(2, 1+rng.Int63n(2))
		case 1:
			sh = shape.Linf(2, 1+rng.Int63n(2))
		default:
			var err error
			sh, err = shape.Embed(shape.Linf(1, 1), 2, []int{1}, map[int][2]int64{0: {-2, 0}})
			if err != nil {
				return false
			}
		}
		def, err := NewDefinition("V", s, s, simjoin.NewPred(sh, nil),
			[]string{"i", "j"},
			[]Aggregate{{Kind: Count, As: "c"}, {Kind: Sum, Attr: "r", As: "rs"}, {Kind: Avg, Attr: "s", As: "sa"}}, nil)
		if err != nil {
			return false
		}
		v, err := Materialize(def, base, base)
		if err != nil {
			return false
		}
		dv, err := DeltaSelfDelete(def, base, del)
		if err != nil {
			return false
		}
		if err := MergeDelta(def, v, dv); err != nil {
			return false
		}
		remaining := base.Clone()
		del.EachCell(func(p array.Point, _ array.Tuple) bool {
			remaining.Delete(p)
			return true
		})
		vFull, err := Materialize(def, remaining, remaining)
		if err != nil {
			return false
		}
		// v may retain zero-state cells where everything was retracted.
		ok := true
		vFull.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := v.Get(p)
			if !found {
				ok = false
				return false
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
		if !ok {
			return false
		}
		v.EachCell(func(p array.Point, tup array.Tuple) bool {
			if _, found := vFull.Get(p); !found {
				for _, x := range tup {
					if x != 0 {
						ok = false
						return false
					}
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeleteValidation(t *testing.T) {
	s := fig1Schema()
	base := fig1Array()
	del := array.New(s)
	_ = del.Set(array.Point{1, 1}, array.Tuple{0, 0}) // not in base
	if err := SubsetOf(base, del); err == nil {
		t.Error("deleting an absent cell must fail SubsetOf")
	}
	del2 := array.New(s)
	_ = del2.Set(array.Point{1, 2}, array.Tuple{2, 5})
	if err := SubsetOf(base, del2); err != nil {
		t.Errorf("deleting an existing cell must pass: %v", err)
	}

	// Non-retractable aggregates refuse deletion deltas.
	def, err := NewDefinition("V", s, s, simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"i", "j"}, []Aggregate{{Kind: Max, Attr: "r", As: "m"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaSelfDelete(def, base, del2); err == nil {
		t.Error("MIN/MAX views must reject deletions")
	}
	// Two-array views are out of scope for DeltaSelfDelete.
	other := *s
	other.Name = "B"
	def2, err := NewDefinition("V2", s, &other, simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"i", "j"}, []Aggregate{{Kind: Count, As: "c"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaSelfDelete(def2, base, del2); err == nil {
		t.Error("two-array views must reject DeltaSelfDelete")
	}
}

func TestMinMaxAggregates(t *testing.T) {
	s := fig1Schema()
	def, err := NewDefinition("V", s, s, simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"i", "j"},
		[]Aggregate{
			{Kind: Min, Attr: "r", As: "rmin"},
			{Kind: Max, Attr: "r", As: "rmax"},
			{Kind: Count, As: "c"},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if def.Retractable() {
		t.Error("MIN/MAX views must not be retractable")
	}
	a := fig1Array()
	v, err := Materialize(def, a, a)
	if err != nil {
		t.Fatal(err)
	}
	// Cell [1,2] (r=2) has neighbor [1,3] (r=6) plus itself: min 2, max 6.
	tup, ok := v.Get(array.Point{1, 2})
	if !ok {
		t.Fatal("V[1,2] missing")
	}
	out := def.Output(tup)
	if out[0] != 2 || out[1] != 6 || out[2] != 2 {
		t.Errorf("V[1,2] = %v, want [2 6 2]", out)
	}
	// Isolated cell [4,1] (r=2): min = max = 2.
	tup, _ = v.Get(array.Point{4, 1})
	out = def.Output(tup)
	if out[0] != 2 || out[1] != 2 {
		t.Errorf("V[4,1] = %v, want min=max=2", out)
	}
}

// TestMinMaxInsertMaintenance: incremental insert maintenance stays exact
// for MIN/MAX because merging takes extrema.
func TestMinMaxInsertMaintenance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := fig1Schema()
		base := randArray(rng, 8)
		delta := array.New(s)
		for i := 0; i < 6; i++ {
			p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
			if _, ok := base.Get(p); ok {
				continue
			}
			_ = delta.Set(p, array.Tuple{float64(rng.Intn(20)), float64(rng.Intn(20))})
		}
		def, err := NewDefinition("V", s, s, simjoin.NewPred(shape.L1(2, 1), nil),
			[]string{"i", "j"},
			[]Aggregate{{Kind: Min, Attr: "r", As: "mn"}, {Kind: Max, Attr: "s", As: "mx"}}, nil)
		if err != nil {
			return false
		}
		v, err := Materialize(def, base, base)
		if err != nil {
			return false
		}
		dv, err := DeltaSelfInsert(def, base, delta)
		if err != nil {
			return false
		}
		if err := MergeDelta(def, v, dv); err != nil {
			return false
		}
		merged := base.Clone()
		delta.EachCell(func(p array.Point, tup array.Tuple) bool { _ = merged.Set(p, tup); return true })
		vFull, err := Materialize(def, merged, merged)
		if err != nil {
			return false
		}
		ok := true
		vFull.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := v.Get(p)
			if !found {
				ok = false
				return false
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
