package view

import (
	"fmt"
	"sort"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
)

// ChunkRef identifies one chunk of a named array in the catalog — either
// the base array or the staged delta namespace of the current batch.
type ChunkRef struct {
	Array string
	Key   array.ChunkKey
}

// String renders the reference for diagnostics.
func (r ChunkRef) String() string { return fmt.Sprintf("%s%v", r.Array, r.Key.Coord()) }

// Less orders references by array name then key.
func (r ChunkRef) Less(o ChunkRef) bool {
	if r.Array != o.Array {
		return r.Array < o.Array
	}
	return r.Key < o.Key
}

// Unit is one chunk-pair join of the differential view computation together
// with the view chunks its result merges into. It corresponds to the
// paper's update triples (p, q, v) grouped by pair: one Unit with n Views
// stands for n triples.
type Unit struct {
	// P is the α-side chunk; for mixed base/delta pairs it is the delta
	// side.
	P ChunkRef
	// Q is the β-side chunk.
	Q ChunkRef
	// Views lists the affected view chunk keys, sorted.
	Views []array.ChunkKey
	// BothDirections marks self-join pairs that must be evaluated in both
	// orientations (a∈P matching b∈Q and a∈Q matching b∈P). Same-chunk self
	// pairs and two-array units are single-direction.
	BothDirections bool
}

// Triple is the flattened (p, q, v) form used by the maintenance
// optimization (Table 1).
type Triple struct {
	P, Q ChunkRef
	V    array.ChunkKey
}

// Triples flattens units into the paper's triple representation.
func Triples(units []Unit) []Triple {
	var out []Triple
	for _, u := range units {
		for _, v := range u.Views {
			out = append(out, Triple{P: u.P, Q: u.Q, V: v})
		}
	}
	return out
}

// UnitGen generates the update units of one batch from catalog metadata
// only — the preprocessing step the paper performs at the coordinator.
type UnitGen struct {
	Catalog *cluster.Catalog
	Def     *Definition
	// Base and Delta name the catalog namespaces of the base array and the
	// staged batch for each join side. For self-join views the α and β
	// entries coincide.
	BaseAlpha, BaseBeta   string
	DeltaAlpha, DeltaBeta string
	// CellPruning uses each chunk's cached cell bounding box instead of its
	// full region when identifying join pairs and affected view chunks —
	// the paper's cell-granularity alternative, which prunes unnecessary
	// pairs at the price of richer metadata.
	CellPruning bool

	// PendingAlpha and PendingBeta list base-side chunk keys that do not
	// exist in the catalog yet but will before this batch's joins run: a
	// pipelined caller generates units while predecessor micro-batches are
	// still in flight, and those predecessors' commits create the chunks.
	// Pending chunks participate as candidates with their full chunk region
	// (no bbox exists yet — conservative, never misses a pair).
	PendingAlpha, PendingBeta []array.ChunkKey

	// DirtyBase, when non-nil, reports base chunks whose content an
	// in-flight predecessor batch will change before this batch joins. Under
	// CellPruning their cached bounding box is stale, so pruning falls back
	// to the full chunk region for them — again conservative: extra units
	// join harmlessly empty regions, missing units would corrupt the view.
	DirtyBase func(arrayName string, key array.ChunkKey) bool
}

// pendingFor returns the pending key set registered for arrayName.
func (g *UnitGen) pendingFor(arrayName string) map[array.ChunkKey]bool {
	set := make(map[array.ChunkKey]bool)
	if arrayName == g.BaseAlpha {
		for _, k := range g.PendingAlpha {
			set[k] = true
		}
	}
	if arrayName == g.BaseBeta {
		for _, k := range g.PendingBeta {
			set[k] = true
		}
	}
	return set
}

// regionFor returns the chunk's effective region: the tight cell bounding
// box under cell pruning (when recorded and not dirty), the full chunk
// region otherwise.
func (g *UnitGen) regionFor(schema *array.Schema, arrayName string, key array.ChunkKey) array.Region {
	if g.CellPruning && !(g.DirtyBase != nil && g.DirtyBase(arrayName, key)) {
		if bb, ok := g.Catalog.ChunkBBox(arrayName, key); ok {
			return bb
		}
	}
	return schema.ChunkRegion(key.Coord())
}

// Generate enumerates the units. For a self-join view the unit set is
// {(p, q) : p ∈ Δ, q ∈ base, either orientation joins} ∪
// {(p, q) : p ≤ q ∈ Δ}; for a two-array view it is the three differential
// terms Δα⋈β, α⋈Δβ, Δα⋈Δβ.
func (g *UnitGen) Generate() ([]Unit, error) {
	if g.Def.SelfJoin() {
		return g.generateSelf()
	}
	return g.generateTwoArray()
}

func (g *UnitGen) generateSelf() ([]Unit, error) {
	base, delta := g.BaseAlpha, g.DeltaAlpha
	schema := g.Catalog.Schema(base)
	if schema == nil {
		return nil, fmt.Errorf("view: base array %q not in catalog", base)
	}
	deltaKeys := g.Catalog.Keys(delta)
	var units []Unit
	// Delta × base pairs.
	for _, pk := range deltaKeys {
		p := ChunkRef{Array: delta, Key: pk}
		for _, qk := range g.candidates(schema, base, pk) {
			q := ChunkRef{Array: base, Key: qk}
			u, ok := g.buildUnit(schema, p, q, true)
			if ok {
				units = append(units, u)
			}
		}
	}
	// Delta × delta pairs, p ≤ q.
	for i, pk := range deltaKeys {
		p := ChunkRef{Array: delta, Key: pk}
		cand := make(map[array.ChunkKey]bool)
		for _, qk := range g.candidates(schema, delta, pk) {
			cand[qk] = true
		}
		for j := i; j < len(deltaKeys); j++ {
			qk := deltaKeys[j]
			if !cand[qk] {
				continue
			}
			q := ChunkRef{Array: delta, Key: qk}
			u, ok := g.buildUnit(schema, p, q, pk != qk)
			if ok {
				units = append(units, u)
			}
		}
	}
	sortUnits(units)
	return units, nil
}

func (g *UnitGen) generateTwoArray() ([]Unit, error) {
	sa := g.Catalog.Schema(g.BaseAlpha)
	sb := g.Catalog.Schema(g.BaseBeta)
	if sa == nil || sb == nil {
		return nil, fmt.Errorf("view: base arrays %q/%q not in catalog", g.BaseAlpha, g.BaseBeta)
	}
	var units []Unit
	add := func(pArr string, pk array.ChunkKey, qArr string, qk array.ChunkKey) {
		u, ok := g.buildDirectedUnit(sa, sb, ChunkRef{Array: pArr, Key: pk}, ChunkRef{Array: qArr, Key: qk})
		if ok {
			units = append(units, u)
		}
	}
	dAlphaKeys := g.Catalog.Keys(g.DeltaAlpha)
	dBetaKeys := g.Catalog.Keys(g.DeltaBeta)
	// Δα ⋈ β.
	for _, pk := range dAlphaKeys {
		for _, qk := range g.reachCandidates(sa, sb, g.BaseBeta, pk) {
			add(g.DeltaAlpha, pk, g.BaseBeta, qk)
		}
	}
	// α ⋈ Δβ (α excludes Δα: the paper's double-counting rule).
	for _, qk := range dBetaKeys {
		for _, pk := range g.sourceCandidates(sa, sb, g.BaseAlpha, qk) {
			add(g.BaseAlpha, pk, g.DeltaBeta, qk)
		}
	}
	// Δα ⋈ Δβ.
	for _, pk := range dAlphaKeys {
		for _, qk := range g.reachCandidates(sa, sb, g.DeltaBeta, pk) {
			add(g.DeltaAlpha, pk, g.DeltaBeta, qk)
		}
	}
	sortUnits(units)
	return units, nil
}

// candidates returns the chunk keys of arrayName whose region could join
// the chunk pk (of the same schema) in either orientation.
func (g *UnitGen) candidates(schema *array.Schema, arrayName string, pk array.ChunkKey) []array.ChunkKey {
	pr := g.regionFor(schema, g.DeltaAlpha, pk)
	pending := g.pendingFor(arrayName)
	seen := make(map[array.ChunkKey]bool)
	var out []array.ChunkKey
	consider := func(region array.Region) {
		for _, cc := range schema.ChunksOverlapping(region) {
			k := cc.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if _, ok := g.Catalog.Home(arrayName, k); ok || pending[k] {
				out = append(out, k)
			}
		}
	}
	consider(g.Def.Pred.ReachRegion(pr))  // p as α: q must hold reachable cells
	consider(g.Def.Pred.SourceRegion(pr)) // q as α: q must hold cells reaching p
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reachCandidates returns β-side chunks of arrayName reachable from α chunk pk.
func (g *UnitGen) reachCandidates(sa, sb *array.Schema, arrayName string, pk array.ChunkKey) []array.ChunkKey {
	pr := g.regionFor(sa, g.DeltaAlpha, pk)
	pending := g.pendingFor(arrayName)
	var out []array.ChunkKey
	for _, cc := range sb.ChunksOverlapping(g.Def.Pred.ReachRegion(pr)) {
		k := cc.Key()
		if _, ok := g.Catalog.Home(arrayName, k); ok || pending[k] {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sourceCandidates returns α-side chunks of arrayName that can reach β chunk qk.
func (g *UnitGen) sourceCandidates(sa, sb *array.Schema, arrayName string, qk array.ChunkKey) []array.ChunkKey {
	qr := g.regionFor(sb, g.DeltaBeta, qk)
	pending := g.pendingFor(arrayName)
	var out []array.ChunkKey
	for _, cc := range sa.ChunksOverlapping(g.Def.Pred.SourceRegion(qr)) {
		k := cc.Key()
		if _, ok := g.Catalog.Home(arrayName, k); ok || pending[k] {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildUnit assembles a self-join unit: view chunks are those overlapping
// the group projection of either orientation's contributing α cells.
func (g *UnitGen) buildUnit(schema *array.Schema, p, q ChunkRef, both bool) (Unit, bool) {
	pr := g.regionFor(schema, p.Array, p.Key)
	qr := g.regionFor(schema, q.Array, q.Key)
	views := make(map[array.ChunkKey]bool)
	// Orientation a ∈ p, b ∈ q: contributing a's lie in p ∩ Source(q).
	if g.Def.Pred.PairChunks(pr, qr) {
		if src, ok := pr.Intersect(g.Def.Pred.SourceRegion(qr)); ok {
			g.addViewChunks(views, src)
		}
	}
	// Orientation a ∈ q, b ∈ p.
	if g.Def.Pred.PairChunks(qr, pr) {
		if src, ok := qr.Intersect(g.Def.Pred.SourceRegion(pr)); ok {
			g.addViewChunks(views, src)
		}
	}
	if len(views) == 0 {
		return Unit{}, false
	}
	return Unit{P: p, Q: q, Views: sortedViewKeys(views), BothDirections: both}, true
}

// buildDirectedUnit assembles a two-array unit evaluated only as α=P, β=Q.
func (g *UnitGen) buildDirectedUnit(sa, sb *array.Schema, p, q ChunkRef) (Unit, bool) {
	pr := g.regionFor(sa, p.Array, p.Key)
	qr := g.regionFor(sb, q.Array, q.Key)
	if !g.Def.Pred.PairChunks(pr, qr) {
		return Unit{}, false
	}
	views := make(map[array.ChunkKey]bool)
	if src, ok := pr.Intersect(g.Def.Pred.SourceRegion(qr)); ok {
		g.addViewChunks(views, src)
	}
	if len(views) == 0 {
		return Unit{}, false
	}
	return Unit{P: p, Q: q, Views: sortedViewKeys(views)}, true
}

func (g *UnitGen) addViewChunks(views map[array.ChunkKey]bool, alphaRegion array.Region) {
	proj := g.Def.GroupRegion(alphaRegion)
	for _, cc := range g.Def.Schema().ChunksOverlapping(proj) {
		views[cc.Key()] = true
	}
}

func sortedViewKeys(m map[array.ChunkKey]bool) []array.ChunkKey {
	out := make([]array.ChunkKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortUnits(units []Unit) {
	sort.Slice(units, func(i, j int) bool {
		if units[i].P != units[j].P {
			return units[i].P.Less(units[j].P)
		}
		return units[i].Q.Less(units[j].Q)
	})
}
