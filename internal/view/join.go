package view

import (
	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
)

// StateMergeSpec lowers the view's aggregate list to the declarative merge
// spec a fabric can apply without function values: one state op per
// physical slot of the view's state tuples. It is the wire form of
// MergeStateChunks.
func (d *Definition) StateMergeSpec() cluster.MergeSpec {
	ops := make([]uint8, 0, d.StateWidth())
	for _, a := range d.Aggs {
		switch a.Kind {
		case Count, Sum:
			ops = append(ops, cluster.StateAdd)
		case Avg:
			ops = append(ops, cluster.StateAdd, cluster.StateAdd)
		case Min:
			ops = append(ops, cluster.StateMin)
		case Max:
			ops = append(ops, cluster.StateMax)
		}
	}
	return cluster.MergeSpec{Kind: cluster.MergeState, Ops: ops}
}

// JoinPartials evaluates one chunk-pair join of the differential view
// computation and accumulates the per-view-chunk partial state chunks: the
// node-local unit of work of the paper's maintenance phase. cp is the α
// side; both evaluates the reverse orientation as well (self-join pairs);
// sign scales contributions (−1 retracts mixed pairs of a deletion batch).
func JoinPartials(d *Definition, cp, cq *array.Chunk, both bool, sign float64) (map[array.ChunkKey]*array.Chunk, error) {
	vs := d.Schema()
	partials := make(map[array.ChunkKey]*array.Chunk)
	var err error
	accumulate := func(a array.Point, tb array.Tuple) bool {
		g := d.GroupPoint(a)
		key := vs.ChunkCoordOf(g).Key()
		part, ok := partials[key]
		if !ok {
			part = array.NewChunk(vs, key.Coord())
			partials[key] = part
		}
		contrib := d.Contribution(tb)
		if sign != 1 {
			for ci := range contrib {
				contrib[ci] *= sign
			}
		}
		if cur, found := part.Get(g); found {
			d.AddState(cur, contrib)
			err = part.Set(g, cur)
		} else {
			err = part.Set(g, contrib)
		}
		return err == nil
	}
	d.Pred.JoinChunkPair(cp, cq, func(a, _ array.Point, ta, tb array.Tuple) bool {
		if !d.AlphaMatch(ta) || !d.BetaMatch(tb) {
			return true
		}
		return accumulate(a, tb)
	})
	if err == nil && both {
		d.Pred.JoinChunkPair(cq, cp, func(a, _ array.Point, ta, tb array.Tuple) bool {
			if !d.AlphaMatch(ta) || !d.BetaMatch(tb) {
				return true
			}
			return accumulate(a, tb)
		})
	}
	if err != nil {
		return nil, err
	}
	return partials, nil
}
