package view

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/simjoin"
)

// ChainDefinition is the full Definition 1 of the paper: an array view over
// a chain of similarity joins among n input arrays followed by a group-by
// aggregation,
//
//	V = ⊕( α1 ⋈[M1,σ1] α2 ⋈[M2,σ2] ... ⋈[M(n-1),σ(n-1)] αn )
//
// A chain match is a cell tuple (a1, ..., an) with a(i+1) inside shape σi
// centered on Mi(ai) for every link. The view groups by dimensions of α1
// and aggregates attributes of αn.
//
// Maintenance under updates to a single input is the paper's recursive
// case: it costs n−1 joins with the base arrays (Section 3, "Recursive
// maintenance"), realized here as one suffix-weight pass below the update
// position and one backward pass above it. Updates to an array appearing
// at several positions are applied one position at a time, refreshing the
// input in between — the sequence is exact because each step sees the
// previous step's insertions as base data.
type ChainDefinition struct {
	Name string
	// Inputs are the n (≥ 2) input schemas, in chain order.
	Inputs []*array.Schema
	// Preds are the n−1 link predicates; Preds[i] relates Inputs[i] cells
	// to Inputs[i+1] cells.
	Preds []simjoin.Pred
	// GroupBy lists dimensions of Inputs[0].
	GroupBy []string
	// Aggs aggregate attributes of the last input.
	Aggs []Aggregate

	groupDims []int
	attrIdx   map[string]int
	schema    *array.Schema
	stateDef  *Definition // reuses the two-array state machinery
}

// NewChain validates a chain definition and derives its view schema.
func NewChain(name string, inputs []*array.Schema, preds []simjoin.Pred, groupBy []string, aggs []Aggregate) (*ChainDefinition, error) {
	c := &ChainDefinition{Name: name, Inputs: inputs, Preds: preds, GroupBy: groupBy, Aggs: aggs}
	if len(inputs) < 2 {
		return nil, fmt.Errorf("view: chain %q needs at least 2 inputs, got %d", name, len(inputs))
	}
	if len(preds) != len(inputs)-1 {
		return nil, fmt.Errorf("view: chain %q has %d inputs but %d predicates", name, len(inputs), len(preds))
	}
	for i := range preds {
		if preds[i].Shape == nil {
			return nil, fmt.Errorf("view: chain %q link %d has no shape", name, i)
		}
		if preds[i].Mapping == nil {
			c.Preds[i].Mapping = simjoin.Identity{}
		}
		if preds[i].Shape.NumDims() != inputs[i+1].NumDims() {
			return nil, fmt.Errorf("view: chain %q link %d shape has %d dims, input has %d",
				name, i, preds[i].Shape.NumDims(), inputs[i+1].NumDims())
		}
	}
	// Reuse the two-array Definition to derive the schema and the state
	// machinery: group-by against the first input, aggregates against the
	// last.
	d, err := NewDefinition(name, inputs[0], inputs[len(inputs)-1],
		simjoin.NewPred(preds[len(preds)-1].Shape, preds[len(preds)-1].Mapping),
		groupBy, aggs, nil)
	if err != nil {
		return nil, err
	}
	c.stateDef = d
	c.schema = d.Schema()
	c.groupDims = d.groupDims
	c.attrIdx = d.attrIdx
	return c, nil
}

// Schema returns the derived view schema.
func (c *ChainDefinition) Schema() *array.Schema { return c.schema }

// NumInputs returns n.
func (c *ChainDefinition) NumInputs() int { return len(c.Inputs) }

// stateSchema builds a scratch schema with the dims of input i and one
// attribute per state slot, used for weight arrays.
func (c *ChainDefinition) stateSchema(i int) *array.Schema {
	attrs := make([]array.Attribute, c.stateDef.StateWidth())
	for j := range attrs {
		attrs[j] = array.Attribute{Name: fmt.Sprintf("w%d", j), Type: array.Float64}
	}
	dims := append([]array.Dimension(nil), c.Inputs[i].Dims...)
	return array.MustSchema(fmt.Sprintf("%s#w%d", c.Name, i), dims, attrs)
}

// contributionWeights turns the cells of the last input (or a delta of it)
// into a weight array of aggregate contributions.
func (c *ChainDefinition) contributionWeights(last *array.Array) (*array.Array, error) {
	out := array.New(c.stateSchema(len(c.Inputs) - 1))
	var err error
	last.EachCell(func(p array.Point, t array.Tuple) bool {
		err = out.Set(p, c.stateDef.Contribution(t))
		return err == nil
	})
	return out, err
}

// pullWeights joins source (cells of input i, full or delta) against the
// next level's weight array and returns the combined weights at level i:
// w(a) = ⊕ over matched b of w(b).
func (c *ChainDefinition) pullWeights(i int, source, next *array.Array) (*array.Array, error) {
	out := array.New(c.stateSchema(i))
	var err error
	simjoin.JoinArrays(source, next, c.Preds[i], func(a, _ array.Point, _, wb array.Tuple) bool {
		if cur, ok := out.Get(a); ok {
			c.stateDef.AddState(cur, wb)
			err = out.Set(a, cur)
		} else {
			err = out.Set(a, wb.Clone())
		}
		return err == nil
	})
	return out, err
}

// groupWeights folds a level-0 weight array into view cells.
func (c *ChainDefinition) groupWeights(w0 *array.Array) (*array.Array, error) {
	out := array.New(c.schema)
	var err error
	w0.EachCell(func(p array.Point, t array.Tuple) bool {
		g := c.stateDef.GroupPoint(p)
		if cur, ok := out.Get(g); ok {
			c.stateDef.AddState(cur, t)
			err = out.Set(g, cur)
		} else {
			err = out.Set(g, t.Clone())
		}
		return err == nil
	})
	return out, err
}

// Materialize evaluates the chain view over the inputs.
func (c *ChainDefinition) Materialize(inputs []*array.Array) (*array.Array, error) {
	if err := c.checkInputs(inputs); err != nil {
		return nil, err
	}
	w, err := c.contributionWeights(inputs[len(inputs)-1])
	if err != nil {
		return nil, err
	}
	for i := len(c.Inputs) - 2; i >= 0; i-- {
		if w, err = c.pullWeights(i, inputs[i], w); err != nil {
			return nil, err
		}
	}
	return c.groupWeights(w)
}

// DeltaInsert computes the differential view for inserting delta into the
// input at position k, with every other input unchanged. Since only one
// position changes, the new chains are exactly those passing through a
// delta cell at position k — there are no cross terms. Merge the result
// into the materialized view with MergeDelta (using the chain's
// StateDefinition).
func (c *ChainDefinition) DeltaInsert(inputs []*array.Array, k int, delta *array.Array) (*array.Array, error) {
	if err := c.checkInputs(inputs); err != nil {
		return nil, err
	}
	if k < 0 || k >= len(c.Inputs) {
		return nil, fmt.Errorf("view: chain %q has no position %d", c.Name, k)
	}

	// Suffix pass: weights of chain completions from the delta cells at
	// position k through the unchanged tail.
	var w *array.Array
	var err error
	if k == len(c.Inputs)-1 {
		if w, err = c.contributionWeights(delta); err != nil {
			return nil, err
		}
	} else {
		if w, err = c.contributionWeights(inputs[len(inputs)-1]); err != nil {
			return nil, err
		}
		for i := len(c.Inputs) - 2; i > k; i-- {
			if w, err = c.pullWeights(i, inputs[i], w); err != nil {
				return nil, err
			}
		}
		if w, err = c.pullWeights(k, delta, w); err != nil {
			return nil, err
		}
	}
	// Backward pass: propagate the delta-rooted weights up through the
	// unchanged prefix (these are the paper's n−1 joins with base arrays).
	for i := k - 1; i >= 0; i-- {
		if w, err = c.pullWeights(i, inputs[i], w); err != nil {
			return nil, err
		}
	}
	return c.groupWeights(w)
}

// StateDefinition exposes the underlying two-array definition whose state
// layout, AddState, Output, and MergeDelta apply to chain views as well.
func (c *ChainDefinition) StateDefinition() *Definition { return c.stateDef }

func (c *ChainDefinition) checkInputs(inputs []*array.Array) error {
	if len(inputs) != len(c.Inputs) {
		return fmt.Errorf("view: chain %q got %d inputs, want %d", c.Name, len(inputs), len(c.Inputs))
	}
	for i, a := range inputs {
		if a.Schema().NumDims() != c.Inputs[i].NumDims() {
			return fmt.Errorf("view: chain %q input %d has %d dims, want %d",
				c.Name, i, a.Schema().NumDims(), c.Inputs[i].NumDims())
		}
	}
	return nil
}
