package view

import (
	"fmt"
	"strings"

	"github.com/arrayview/arrayview/internal/array"
)

// CmpOp is a comparison operator of an attribute filter.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota // <
	Le              // <=
	Eq              // ==
	Ne              // !=
	Ge              // >=
	Gt              // >
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "!="
	case Ge:
		return ">="
	case Gt:
		return ">"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// eval applies the operator.
func (o CmpOp) eval(x, y float64) bool {
	switch o {
	case Lt:
		return x < y
	case Le:
		return x <= y
	case Eq:
		return x == y
	case Ne:
		return x != y
	case Ge:
		return x >= y
	default:
		return x > y
	}
}

// Condition is one declarative attribute predicate, e.g. {"mag", Lt, 19}.
// Conditions are declarative (no function values) so definitions stay
// comparable and serializable.
type Condition struct {
	Attr  string
	Op    CmpOp
	Value float64
}

// String renders the condition.
func (c Condition) String() string { return fmt.Sprintf("%s %s %v", c.Attr, c.Op, c.Value) }

// filter is a compiled conjunction of conditions against one schema.
type filter struct {
	conds []Condition
	idx   []int
}

func compileFilter(conds []Condition, s *array.Schema) (*filter, error) {
	if len(conds) == 0 {
		return nil, nil
	}
	f := &filter{conds: conds, idx: make([]int, len(conds))}
	for i, c := range conds {
		idx := s.AttrIndex(c.Attr)
		if idx < 0 {
			return nil, fmt.Errorf("view: filter attribute %q not in %s", c.Attr, s.Name)
		}
		f.idx[i] = idx
	}
	return f, nil
}

// match evaluates the conjunction on a tuple; a nil filter matches all.
func (f *filter) match(t array.Tuple) bool {
	if f == nil {
		return true
	}
	for i, c := range f.conds {
		if !c.Op.eval(t[f.idx[i]], c.Value) {
			return false
		}
	}
	return true
}

func (f *filter) String() string {
	if f == nil {
		return ""
	}
	parts := make([]string, len(f.conds))
	for i, c := range f.conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// SetFilters attaches conjunctive WHERE predicates to the view's two
// sides: alpha conditions test α-side cell attributes, beta conditions the
// β side. Cells failing their side's filter do not participate in the
// join — the "filtering" unary operator of the paper's view class. Filters
// apply uniformly to materialization, delta maintenance, and queries.
func (d *Definition) SetFilters(alpha, beta []Condition) error {
	fa, err := compileFilter(alpha, d.Alpha)
	if err != nil {
		return err
	}
	fb, err := compileFilter(beta, d.Beta)
	if err != nil {
		return err
	}
	d.filterAlpha = fa
	d.filterBeta = fb
	return nil
}

// AlphaMatch reports whether an α-side tuple passes the view's α filter.
func (d *Definition) AlphaMatch(t array.Tuple) bool { return d.filterAlpha.match(t) }

// BetaMatch reports whether a β-side tuple passes the view's β filter.
func (d *Definition) BetaMatch(t array.Tuple) bool { return d.filterBeta.match(t) }

// Filtered reports whether the view carries any attribute filters.
func (d *Definition) Filtered() bool { return d.filterAlpha != nil || d.filterBeta != nil }

// Filters returns the declarative filter conditions of each side (nil for
// an unfiltered side). Conditions are plain data, so a definition can be
// shipped to a remote node and recompiled there.
func (d *Definition) Filters() (alpha, beta []Condition) {
	if d.filterAlpha != nil {
		alpha = d.filterAlpha.conds
	}
	if d.filterBeta != nil {
		beta = d.filterBeta.conds
	}
	return
}
