package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
)

func chainSchema(name string) *array.Schema {
	return array.MustSchema(name,
		[]array.Dimension{{Name: "x", Start: 0, End: 19, ChunkSize: 5}},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
}

func randChainArray(rng *rand.Rand, s *array.Schema, n int) *array.Array {
	a := array.New(s)
	for i := 0; i < n; i++ {
		_ = a.Set(array.Point{rng.Int63n(20)}, array.Tuple{float64(rng.Intn(9) + 1)})
	}
	return a
}

// bruteChain enumerates every chain match by nested scans and aggregates
// with the chain's state machinery.
func bruteChain(t *testing.T, c *ChainDefinition, inputs []*array.Array) *array.Array {
	t.Helper()
	out := array.New(c.Schema())
	sd := c.StateDefinition()
	var rec func(level int, first array.Point, cur array.Point)
	rec = func(level int, first array.Point, cur array.Point) {
		if level == len(inputs)-1 {
			tup, _ := inputs[level].Get(cur)
			g := sd.GroupPoint(first)
			contrib := sd.Contribution(tup)
			if prev, ok := out.Get(g); ok {
				sd.AddState(prev, contrib)
				_ = out.Set(g, prev)
			} else {
				_ = out.Set(g, contrib)
			}
			return
		}
		inputs[level+1].EachCell(func(b array.Point, _ array.Tuple) bool {
			if c.Preds[level].Matches(cur, b) {
				rec(level+1, first, b)
			}
			return true
		})
	}
	inputs[0].EachCell(func(a array.Point, _ array.Tuple) bool {
		rec(0, a.Clone(), a.Clone())
		return true
	})
	return out
}

func mkChain(t *testing.T, n int, aggs []Aggregate) *ChainDefinition {
	t.Helper()
	schemas := make([]*array.Schema, n)
	preds := make([]simjoin.Pred, n-1)
	for i := range schemas {
		schemas[i] = chainSchema(string(rune('A' + i)))
	}
	for i := range preds {
		preds[i] = simjoin.NewPred(shape.Linf(1, 1+int64(i%2)), nil)
	}
	c, err := NewChain("C", schemas, preds, []string{"x"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainMaterializeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // 2..4 inputs
		c := mkChain(t, n, []Aggregate{
			{Kind: Count, As: "c"},
			{Kind: Sum, Attr: "v", As: "vs"},
			{Kind: Max, Attr: "v", As: "vm"},
		})
		inputs := make([]*array.Array, n)
		for i := range inputs {
			inputs[i] = randChainArray(rng, c.Inputs[i], 6)
		}
		got, err := c.Materialize(inputs)
		if err != nil {
			return false
		}
		want := bruteChain(t, c, inputs)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestChainDeltaInsertEqualsRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c := mkChain(t, n, []Aggregate{
			{Kind: Count, As: "c"},
			{Kind: Avg, Attr: "v", As: "va"},
		})
		inputs := make([]*array.Array, n)
		for i := range inputs {
			inputs[i] = randChainArray(rng, c.Inputs[i], 6)
		}
		k := rng.Intn(n)
		delta := array.New(c.Inputs[k])
		for i := 0; i < 4; i++ {
			p := array.Point{rng.Int63n(20)}
			if _, ok := inputs[k].Get(p); !ok {
				_ = delta.Set(p, array.Tuple{float64(rng.Intn(9) + 1)})
			}
		}
		v, err := c.Materialize(inputs)
		if err != nil {
			return false
		}
		dv, err := c.DeltaInsert(inputs, k, delta)
		if err != nil {
			return false
		}
		if err := MergeDelta(c.StateDefinition(), v, dv); err != nil {
			return false
		}
		merged := make([]*array.Array, n)
		copy(merged, inputs)
		merged[k] = inputs[k].Clone()
		delta.EachCell(func(p array.Point, tup array.Tuple) bool {
			_ = merged[k].Set(p, tup)
			return true
		})
		want, err := c.Materialize(merged)
		if err != nil {
			return false
		}
		ok := true
		want.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := v.Get(p)
			if !found {
				ok = false
				return false
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestChainMultiPositionUpdate: an array used at two positions is updated
// by applying DeltaInsert per position, refreshing the input in between —
// the sequence must be exact.
func TestChainMultiPositionUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := chainSchema("A")
	c, err := NewChain("C", []*array.Schema{s, s, s},
		[]simjoin.Pred{
			simjoin.NewPred(shape.Linf(1, 1), nil),
			simjoin.NewPred(shape.Linf(1, 2), nil),
		},
		[]string{"x"}, []Aggregate{{Kind: Count, As: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	base := randChainArray(rng, s, 8)
	delta := array.New(s)
	for i := 0; i < 3; i++ {
		p := array.Point{rng.Int63n(20)}
		if _, ok := base.Get(p); !ok {
			_ = delta.Set(p, array.Tuple{1})
		}
	}
	// The same logical array sits at positions 0 and 2 (self-chain);
	// position 1 holds an independent copy for variety.
	mid := randChainArray(rng, s, 8)
	inputs := []*array.Array{base, mid, base}
	v, err := c.Materialize(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Update position 0 first, refresh, then position 2.
	cur := []*array.Array{base, mid, base}
	for _, k := range []int{0, 2} {
		dv, err := c.DeltaInsert(cur, k, delta)
		if err != nil {
			t.Fatal(err)
		}
		if err := MergeDelta(c.StateDefinition(), v, dv); err != nil {
			t.Fatal(err)
		}
		// Refresh only the position just maintained: the next step must see
		// this step's insertions as base data at this position while the
		// other occurrence still holds the old content.
		next := cur[k].Clone()
		delta.EachCell(func(p array.Point, tup array.Tuple) bool { _ = next.Set(p, tup); return true })
		cur[k] = next
	}
	// After both steps, positions 0 and 2 hold base+Δ.
	mergedBase := base.Clone()
	delta.EachCell(func(p array.Point, tup array.Tuple) bool { _ = mergedBase.Set(p, tup); return true })
	want, err := c.Materialize([]*array.Array{mergedBase, mid, mergedBase})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(want) {
		t.Fatal("sequential per-position maintenance diverges from recomputation")
	}
}

func TestChainValidation(t *testing.T) {
	s := chainSchema("A")
	pred := simjoin.NewPred(shape.Linf(1, 1), nil)
	if _, err := NewChain("C", []*array.Schema{s}, nil, []string{"x"}, []Aggregate{{Kind: Count, As: "c"}}); err == nil {
		t.Error("single-input chain must fail")
	}
	if _, err := NewChain("C", []*array.Schema{s, s}, nil, []string{"x"}, []Aggregate{{Kind: Count, As: "c"}}); err == nil {
		t.Error("predicate arity mismatch must fail")
	}
	if _, err := NewChain("C", []*array.Schema{s, s}, []simjoin.Pred{{}}, []string{"x"}, []Aggregate{{Kind: Count, As: "c"}}); err == nil {
		t.Error("missing shape must fail")
	}
	if _, err := NewChain("C", []*array.Schema{s, s}, []simjoin.Pred{simjoin.NewPred(shape.Linf(2, 1), nil)}, []string{"x"}, []Aggregate{{Kind: Count, As: "c"}}); err == nil {
		t.Error("shape arity mismatch must fail")
	}
	c, err := NewChain("C", []*array.Schema{s, s}, []simjoin.Pred{pred}, []string{"x"}, []Aggregate{{Kind: Count, As: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Materialize([]*array.Array{array.New(s)}); err == nil {
		t.Error("input arity mismatch must fail")
	}
	if _, err := c.DeltaInsert([]*array.Array{array.New(s), array.New(s)}, 7, array.New(s)); err == nil {
		t.Error("bad position must fail")
	}
	if c.NumInputs() != 2 {
		t.Error("NumInputs")
	}
}
