package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/stream"
	"github.com/arrayview/arrayview/internal/workload"
)

// StreamRung compares batch-at-a-time maintenance against the pipelined
// streaming graph on one base-size rung of the PTF trickle ladder: same
// generated data, same planner, same placements — the only variable is the
// execution engine.
type StreamRung struct {
	// BaseMultiplier scales the history (base nights) the trickle lands on;
	// BaseCells is the resulting base size.
	BaseMultiplier int `json:"base_multiplier"`
	BaseCells      int `json:"base_cells"`
	// Batches micro-batches of DeltaCells total inserted cells.
	Batches    int `json:"batches"`
	DeltaCells int `json:"delta_cells"`

	// End-to-end wall-clock seconds for the whole trickle, per engine.
	BatchSeconds  float64 `json:"batch_seconds"`
	StreamSeconds float64 `json:"stream_seconds"`
	// Per-micro-batch milliseconds (the paper's |Δ|-proportionality claim:
	// this should stay flat as BaseMultiplier grows).
	BatchPerBatchMillis  float64 `json:"batch_per_batch_millis"`
	StreamPerBatchMillis float64 `json:"stream_per_batch_millis"`
	// StreamRawPerBatchMillis is the streamed per-batch cost with no audit
	// attached — pure engine cost, isolated from the auditors' full-view
	// reads (which scale with view size and would mask |Δ|-proportionality
	// on the audited wall-clock numbers above).
	StreamRawPerBatchMillis float64 `json:"stream_raw_per_batch_millis"`
	// Throughput in micro-batches per second, and the streamed speedup.
	BatchPerSec  float64 `json:"batch_per_sec"`
	StreamPerSec float64 `json:"stream_per_sec"`
	Speedup      float64 `json:"speedup"`

	// Router amortization: full placement solves vs cached reuses.
	Solves int64 `json:"solves"`
	Reuses int64 `json:"reuses"`
	// Retries counts isolated re-executions after pipelined failures.
	Retries int64 `json:"retries"`

	// Epochs published while streaming; Observations is how many reads the
	// concurrent snapshot auditors completed, Violations how many saw a
	// state other than the committed state of their pinned epoch. Both legs
	// run under the identical audit harness; every violation count must be
	// zero.
	Epochs            uint64 `json:"epochs"`
	Observations      int    `json:"observations"`
	Violations        int    `json:"violations"`
	BatchObservations int    `json:"batch_observations"`
	BatchViolations   int    `json:"batch_violations"`
	// StatesMatch reports whether base and view are cell-for-cell identical
	// across the two engines after the trickle.
	StatesMatch bool `json:"states_match"`

	// Stages is the pipeline's per-stage depth/throughput/stall snapshot.
	Stages []obs.StageSnapshot `json:"stages"`
}

// StreamDeltaPoint is one |Δ|-scaling measurement: per-micro-batch latency
// through the pipeline as a function of batch size, at fixed base size.
type StreamDeltaPoint struct {
	DeltaCells     int     `json:"delta_cells"`
	PerBatchMillis float64 `json:"per_batch_millis"`
}

// StreamResult is the streaming experiment: the batch-vs-streamed ladder
// over base sizes plus the per-|Δ| latency curve.
type StreamResult struct {
	Spec     Spec `json:"spec"`
	Trickle  int  `json:"trickle"`
	PerBatch int  `json:"per_batch"`

	Rungs       []*StreamRung       `json:"rungs"`
	DeltaLadder []*StreamDeltaPoint `json:"delta_ladder"`
}

// Stream runs the streaming experiment on a PTF trickle: many small
// micro-batches (each one night of detections) maintained batch-at-a-time
// and then through the pipelined operator graph, per base-size rung, with
// concurrent snapshot auditors verifying serve-path consistency while the
// stream is live.
func Stream(w io.Writer, spec Spec, multipliers []int, trickle, perBatch int, ladder []int) (*StreamResult, error) {
	if spec.Dataset == GEO {
		return nil, fmt.Errorf("bench: stream experiment needs a PTF (self-join) dataset")
	}
	if len(multipliers) == 0 {
		multipliers = []int{1, 2, 4}
	}
	if trickle <= 0 {
		trickle = 12
	}
	if perBatch <= 0 {
		perBatch = 150
	}
	out := &StreamResult{Spec: spec, Trickle: trickle, PerBatch: perBatch}
	for _, m := range multipliers {
		r, err := streamRung(spec, m, trickle, perBatch)
		if err != nil {
			return nil, fmt.Errorf("bench: stream rung x%d: %w", m, err)
		}
		out.Rungs = append(out.Rungs, r)
	}
	for _, size := range ladder {
		p, err := streamDeltaPoint(spec, size)
		if err != nil {
			return nil, fmt.Errorf("bench: stream |Δ|=%d: %w", size, err)
		}
		out.DeltaLadder = append(out.DeltaLadder, p)
	}
	out.WriteTable(w)
	return out, nil
}

// WriteTable renders the human-readable streaming report.
func (r *StreamResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Streaming vs batch-at-a-time — %s / %s, %d micro-batches x %d detections\n",
		r.Spec.Dataset, r.Spec.Mode, r.Trickle, r.PerBatch)
	for _, g := range r.Rungs {
		fmt.Fprintf(w, "  base x%-2d %8d cells  batch %6.2fs (%6.1fms/b)  stream %6.2fs (%6.1fms/b, raw %5.1fms/b)  speedup %4.2fx  solves %d reuses %d  epochs %d  audit batch %d/%d stream %d/%d viol  match %v\n",
			g.BaseMultiplier, g.BaseCells, g.BatchSeconds, g.BatchPerBatchMillis,
			g.StreamSeconds, g.StreamPerBatchMillis, g.StreamRawPerBatchMillis, g.Speedup,
			g.Solves, g.Reuses, g.Epochs,
			g.BatchObservations, g.BatchViolations, g.Observations, g.Violations, g.StatesMatch)
	}
	if len(r.DeltaLadder) > 0 {
		fmt.Fprintf(w, "  per-batch latency vs |Δ|:")
		for _, p := range r.DeltaLadder {
			fmt.Fprintf(w, "  %d→%.1fms", p.DeltaCells, p.PerBatchMillis)
		}
		fmt.Fprintln(w)
	}
}

// stateDigest reduces an array's cells to an order-independent 64-bit
// digest: per-cell FNV hashes combined with wrap-around addition. The
// snapshot auditors digest every read, so unlike serveFingerprint this must
// be cheap enough not to perturb the pipeline being measured.
func stateDigest(a *array.Array) uint64 {
	var acc uint64
	var buf [8]byte
	a.EachCell(func(p array.Point, tup array.Tuple) bool {
		h := fnv.New64a()
		for _, c := range p {
			binary.LittleEndian.PutUint64(buf[:], uint64(c))
			h.Write(buf[:])
		}
		for _, v := range tup {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		acc += h.Sum64()
		return true
	})
	return acc
}

// trickleData generates the rung's dataset: base history scaled by the
// multiplier, then `trickle` nightly micro-batches of `perBatch` draws.
func trickleData(spec Spec, multiplier, trickle, perBatch int) (*workload.Dataset, error) {
	c := spec.PTF
	c.BaseNights *= multiplier
	counts := make([]int, trickle)
	for i := range counts {
		counts[i] = perBatch
	}
	return workload.GeneratePTFSizes(c, counts)
}

// loadRung builds a fresh cluster with the rung's base and view.
func loadRung(spec Spec, data *workload.Dataset) (*cluster.Cluster, *maintain.Params, error) {
	cl, err := spec.Cluster()
	if err != nil {
		return nil, nil, err
	}
	if err := cl.LoadArray(data.Base, spec.Placement()); err != nil {
		return nil, nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, nil, err
	}
	if err := maintain.BuildView(cl, def, spec.Placement()); err != nil {
		return nil, nil, err
	}
	params := spec.Params
	return cl, &params, nil
}

// digestObs is one auditor read: the pinned epoch and the view digest it
// gathered.
type digestObs struct {
	epoch  uint64
	digest uint64
}

// snapshotAudit is the serve-path consistency harness: epoch publication
// plus concurrent snapshot auditors, attached identically to both engines
// so the ladder compares execution models, not instrumentation.
//
// The publish hook runs on the committer's goroutine, serialized with
// commits: it pins the snapshot synchronously (cheap — that fixes which
// state epoch N denotes) and digests it on a background goroutine, keeping
// the expensive gather off the engine's critical path. Each auditor reads
// once per published epoch it notices, not on a timer: the audit's job is
// epoch coverage, and unbounded read loops would contend with the engine
// being measured (every read is a full-view gather — pure added work on a
// small machine — and the read count would grow with how long the engine
// takes, a feedback loop that distorts the ladder).
type snapshotAudit struct {
	cl       *cluster.Cluster
	viewName string

	emu      sync.Mutex
	expected map[uint64]uint64
	hookWG   sync.WaitGroup

	stop chan struct{}
	wg   sync.WaitGroup
	obs  [][]digestObs
}

// attachAudit enables epochs on the cluster, registers the expected-state
// hook, and starts the auditors. Call finish after the engine drains.
func attachAudit(cl *cluster.Cluster, viewName string, auditors int) *snapshotAudit {
	a := &snapshotAudit{
		cl:       cl,
		viewName: viewName,
		expected: make(map[uint64]uint64),
		stop:     make(chan struct{}),
		obs:      make([][]digestObs, auditors),
	}
	cl.Epochs().OnPublish(func(epoch uint64) {
		snap, err := cl.Epochs().Acquire()
		if err != nil {
			return
		}
		a.hookWG.Add(1)
		go func() {
			defer a.hookWG.Done()
			defer snap.Release()
			v, err := snap.Gather(viewName)
			if err != nil {
				return
			}
			a.emu.Lock()
			a.expected[snap.Epoch()] = stateDigest(v)
			a.emu.Unlock()
		}()
	})
	cl.Epochs().Enable()
	for i := 0; i < auditors; i++ {
		i := i
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			var last uint64
			for {
				select {
				case <-a.stop:
					return
				default:
				}
				cur := cl.Epochs().Current()
				if cur == last {
					time.Sleep(500 * time.Microsecond)
					continue
				}
				last = cur
				snap, err := cl.Epochs().Acquire()
				if err != nil {
					continue
				}
				v, err := snap.Gather(viewName)
				if err == nil {
					a.obs[i] = append(a.obs[i], digestObs{snap.Epoch(), stateDigest(v)})
				}
				snap.Release()
			}
		}()
	}
	return a
}

// finish stops the auditors, waits for the hook digests, and scores every
// observation against the committed state of its pinned epoch.
func (a *snapshotAudit) finish() (observations, violations int) {
	close(a.stop)
	a.wg.Wait()
	a.hookWG.Wait()
	for _, list := range a.obs {
		for _, o := range list {
			observations++
			a.emu.Lock()
			want, ok := a.expected[o.epoch]
			a.emu.Unlock()
			if !ok || o.digest != want {
				violations++
			}
		}
	}
	return observations, violations
}

func streamRung(spec Spec, multiplier, trickle, perBatch int) (*StreamRung, error) {
	data, err := trickleData(spec, multiplier, trickle, perBatch)
	if err != nil {
		return nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, err
	}
	deltaCells := 0
	for _, b := range data.Batches {
		deltaCells += b.NumCells()
	}
	rung := &StreamRung{
		BaseMultiplier: multiplier,
		BaseCells:      data.Base.NumCells(),
		Batches:        len(data.Batches),
		DeltaCells:     deltaCells,
	}
	const auditors = 2
	// Each leg is repeated on a fresh cluster and scored by its fastest
	// repetition: wall-clock noise on a shared machine is additive, so the
	// min is the cleanest estimate of an engine's true cost. Audit
	// observations and violations accumulate across repetitions.
	const reps = 3

	// Batch-at-a-time leg: the maintainer re-plans and executes each
	// micro-batch to completion before admitting the next, under the same
	// epoch publication and audit load as the streaming leg.
	var batchCl *cluster.Cluster
	for rep := 0; rep < reps; rep++ {
		cl, params, err := loadRung(spec, data)
		if err != nil {
			return nil, err
		}
		m, err := maintain.NewMaintainer(cl, def, nil, *params)
		if err != nil {
			return nil, err
		}
		m.SetPlacements(spec.Placement(), spec.Placement())
		audit := attachAudit(cl, def.Name, auditors)
		t0 := time.Now()
		for i, b := range data.Batches {
			if _, err := m.ApplyBatch(b); err != nil {
				return nil, fmt.Errorf("batch leg %d: %w", i, err)
			}
		}
		sec := time.Since(t0).Seconds()
		if rep == 0 || sec < rung.BatchSeconds {
			rung.BatchSeconds = sec
		}
		o, v := audit.finish()
		rung.BatchObservations += o
		rung.BatchViolations += v
		batchCl = cl
	}

	// Streaming leg: same data through the pipelined graph.
	var streamCl *cluster.Cluster
	for rep := 0; rep < reps; rep++ {
		cl, params, err := loadRung(spec, data)
		if err != nil {
			return nil, err
		}
		audit := attachAudit(cl, def.Name, auditors)
		g, err := stream.NewGraph(stream.Config{
			Cluster:        cl,
			Def:            def,
			Params:         *params,
			ArrayPlacement: spec.Placement(),
			ViewPlacement:  spec.Placement(),
		})
		if err != nil {
			return nil, err
		}

		t1 := time.Now()
		tickets := make([]*stream.Ticket, 0, len(data.Batches))
		for i, b := range data.Batches {
			tk, err := g.Submit(b)
			if err != nil {
				return nil, fmt.Errorf("stream leg submit %d: %w", i, err)
			}
			tickets = append(tickets, tk)
		}
		g.Drain()
		sec := time.Since(t1).Seconds()
		if rep == 0 || sec < rung.StreamSeconds {
			rung.StreamSeconds = sec
		}
		o, v := audit.finish()
		rung.Observations += o
		rung.Violations += v

		rung.Retries, rung.Epochs = 0, 0
		for i, tk := range tickets {
			res := tk.Wait()
			if res.Err != nil {
				return nil, fmt.Errorf("stream leg batch %d: %w", i, res.Err)
			}
			rung.Retries += int64(res.Retries)
			rung.Epochs = res.Epoch
		}
		streamCl = cl
		st := g.Stats()
		rung.Solves, rung.Reuses = st.Router.Solves, st.Router.Reuses
		rung.Stages = st.Stages
	}

	// Raw streamed pass, no audit: the engine's own per-batch cost. This is
	// the number the |Δ|-proportionality claim is judged on — it must stay
	// flat as the base multiplier grows, while the audited walls above also
	// carry the auditors' view-size-dependent read load.
	for rep := 0; rep < 2; rep++ {
		cl, params, err := loadRung(spec, data)
		if err != nil {
			return nil, err
		}
		g, err := stream.NewGraph(stream.Config{
			Cluster:        cl,
			Def:            def,
			Params:         *params,
			ArrayPlacement: spec.Placement(),
			ViewPlacement:  spec.Placement(),
		})
		if err != nil {
			return nil, err
		}
		t2 := time.Now()
		for i, b := range data.Batches {
			if _, err := g.Submit(b); err != nil {
				return nil, fmt.Errorf("raw stream leg submit %d: %w", i, err)
			}
		}
		g.Drain()
		ms := time.Since(t2).Seconds() * 1000 / float64(len(data.Batches))
		if rep == 0 || ms < rung.StreamRawPerBatchMillis {
			rung.StreamRawPerBatchMillis = ms
		}
	}

	// Cross-engine equivalence: both clusters must hold identical base and
	// view states.
	rung.StatesMatch, err = sameState(batchCl, streamCl, data.Schema.Name, def.Name)
	if err != nil {
		return nil, err
	}

	n := float64(len(data.Batches))
	rung.BatchPerBatchMillis = rung.BatchSeconds * 1000 / n
	rung.StreamPerBatchMillis = rung.StreamSeconds * 1000 / n
	if rung.BatchSeconds > 0 {
		rung.BatchPerSec = n / rung.BatchSeconds
	}
	if rung.StreamSeconds > 0 {
		rung.StreamPerSec = n / rung.StreamSeconds
		rung.Speedup = rung.BatchSeconds / rung.StreamSeconds
	}
	return rung, nil
}

// sameState compares the named arrays across two clusters by canonical
// fingerprint.
func sameState(a, b *cluster.Cluster, names ...string) (bool, error) {
	for _, name := range names {
		av, err := a.Gather(name)
		if err != nil {
			return false, err
		}
		bv, err := b.Gather(name)
		if err != nil {
			return false, err
		}
		if serveFingerprint(av) != serveFingerprint(bv) {
			return false, nil
		}
	}
	return true, nil
}

// streamDeltaPoint measures per-micro-batch pipeline latency at one batch
// size: batches are submitted one at a time (pipeline depth 1), so the
// submit-to-commit round trip is the per-batch cost.
func streamDeltaPoint(spec Spec, size int) (*StreamDeltaPoint, error) {
	const probes = 3
	c := spec.PTF
	counts := make([]int, probes)
	for i := range counts {
		counts[i] = size
	}
	data, err := workload.GeneratePTFSizes(c, counts)
	if err != nil {
		return nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, err
	}
	cl, params, err := loadRung(spec, data)
	if err != nil {
		return nil, err
	}
	g, err := stream.NewGraph(stream.Config{
		Cluster:        cl,
		Def:            def,
		Params:         *params,
		ArrayPlacement: spec.Placement(),
		ViewPlacement:  spec.Placement(),
	})
	if err != nil {
		return nil, err
	}
	defer g.Drain()
	cells, total := 0, time.Duration(0)
	for i, b := range data.Batches {
		cells += b.NumCells()
		t0 := time.Now()
		tk, err := g.Submit(b)
		if err != nil {
			return nil, err
		}
		if res := tk.Wait(); res.Err != nil {
			return nil, fmt.Errorf("|Δ| probe %d: %w", i, res.Err)
		}
		total += time.Since(t0)
	}
	return &StreamDeltaPoint{
		DeltaCells:     cells / probes,
		PerBatchMillis: float64(total) / float64(time.Millisecond) / probes,
	}, nil
}
