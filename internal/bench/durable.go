package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/wal"
	"github.com/arrayview/arrayview/internal/workload"
)

// DurableOverhead compares the wall-clock of the full batch sequence with
// and without the WAL-backed store attached: the price of journaling,
// fsync barriers, and checkpoint compaction on the maintenance path.
type DurableOverhead struct {
	Batches   int
	MemMillis float64
	DurMillis float64
	Ratio     float64
}

// DurableRung is one rung of the recovery ladder: commit k batches, crash,
// and measure how long Open + Install takes and whether the recovered
// state equals a clean replay of exactly those k batches.
type DurableRung struct {
	Batches       int
	WALBytes      int64
	SegBytes      int64
	ResidentBytes int64
	RecoverMillis float64
	StatesMatch   bool
}

// DurableCompaction is one row of the checkpoint-compaction comparison:
// the same batch sequence under a different CompactBytes threshold.
type DurableCompaction struct {
	CompactBytes  int64
	Checkpoints   int64
	ResidentBytes int64
	RecoverMillis float64
	StatesMatch   bool
}

// DurableFaultCase is one injected-fault run of the recovery matrix.
type DurableFaultCase struct {
	Class string
	Op    int64
	// Acked is the consecutive prefix of batches whose commits were
	// acknowledged before the first error.
	Acked     int
	Recovered bool
	// MatchedAt is the clean-replay prefix length the recovered state
	// equalled, or -1 if it matched none — a hybrid.
	MatchedAt int
	Violation bool
}

// DurableFaults aggregates the fault matrix.
type DurableFaults struct {
	Cases      int
	Recovered  int
	Violations int
	Detail     []DurableFaultCase
}

// DurableResult is the durable-store experiment: ingest overhead, the
// recovery ladder, checkpoint compaction, and the crash/fault matrix.
type DurableResult struct {
	Dataset  Dataset
	Mode     workload.BatchMode
	Nodes    int
	Batches  int
	Overhead DurableOverhead
	Ladder   []DurableRung
	Compact  []DurableCompaction
	Fault    DurableFaults
}

// Durable measures the WAL-backed chunk store: journaling overhead against
// the in-memory baseline, recovery time as a function of committed WAL
// length, the effect of checkpoint compaction, and a seeded fault matrix
// (kill -9, failed fsync, torn write) whose every recovery must land on a
// clean replay of some acknowledged-or-later batch prefix — never a
// hybrid. Everything runs on the in-memory FaultFS, so the experiment is
// deterministic and filesystem-speed rather than disk-speed.
func Durable(w io.Writer, spec Spec) (*DurableResult, error) {
	const strategy = "reassign"
	planner, ok := maintain.Strategies()[strategy]
	if !ok {
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
	data, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	n := len(data.Batches)
	res := &DurableResult{Dataset: spec.Dataset, Mode: spec.Mode, Nodes: spec.Nodes, Batches: n}
	fmt.Fprintf(w, "Durable: %s/%s, %d nodes, %d batches, strategy %s\n",
		spec.Dataset, spec.Mode, spec.Nodes, n, strategy)

	// Clean-replay oracles for every batch prefix, shared by the ladder and
	// the fault matrix.
	oracles := make([]durableOracle, n+1)
	for k := 0; k <= n; k++ {
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		base, vw, err := replayClean(spec, planner, idx)
		if err != nil {
			return nil, fmt.Errorf("bench: durable oracle prefix %d: %w", k, err)
		}
		oracles[k] = durableOracle{base: base, view: vw}
	}

	if err := durableOverhead(w, spec, planner, res); err != nil {
		return nil, err
	}
	if err := durableLadder(w, spec, planner, oracles, res); err != nil {
		return nil, err
	}
	if err := durableCompaction(w, spec, planner, oracles, res); err != nil {
		return nil, err
	}
	if err := durableFaults(w, spec, planner, oracles, res); err != nil {
		return nil, err
	}
	return res, nil
}

type durableOracle struct{ base, view *array.Array }

// durableSetup builds a fresh loaded cluster and maintainer — the same
// prelude as replayClean, so durable runs and oracles are comparable.
func durableSetup(spec Spec, planner maintain.Planner, data *workload.Dataset) (*cluster.Cluster, *maintain.Maintainer, error) {
	cl, err := spec.Cluster()
	if err != nil {
		return nil, nil, err
	}
	if err := cl.LoadArray(data.Base, spec.Placement()); err != nil {
		return nil, nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, nil, err
	}
	if err := maintain.BuildView(cl, def, spec.Placement()); err != nil {
		return nil, nil, err
	}
	m, err := maintain.NewMaintainer(cl, def, planner, spec.Params)
	if err != nil {
		return nil, nil, err
	}
	m.SetPlacements(spec.Placement(), spec.Placement())
	return cl, m, nil
}

// durableGather reads the final base and view of a cluster.
func durableGather(cl *cluster.Cluster, spec Spec, data *workload.Dataset) (*array.Array, *array.Array, error) {
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, nil, err
	}
	base, err := cl.Gather(def.Alpha.Name)
	if err != nil {
		return nil, nil, err
	}
	vw, err := cl.Gather(def.Name)
	if err != nil {
		return nil, nil, err
	}
	return base, vw, nil
}

func durableOverhead(w io.Writer, spec Spec, planner maintain.Planner, res *DurableResult) error {
	data, err := spec.Generate()
	if err != nil {
		return err
	}
	// In-memory baseline.
	_, m, err := durableSetup(spec, planner, data)
	if err != nil {
		return err
	}
	start := time.Now()
	for i, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			return fmt.Errorf("bench: durable baseline batch %d: %w", i, err)
		}
	}
	memMs := time.Since(start).Seconds() * 1000

	// Same sequence with the durable store attached.
	cl, m, err := durableSetup(spec, planner, data)
	if err != nil {
		return err
	}
	d, _, err := wal.Open(wal.NewMemFS(), spec.Nodes, wal.Options{})
	if err != nil {
		return err
	}
	if err := d.Attach(cl); err != nil {
		return err
	}
	start = time.Now()
	for i, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			return fmt.Errorf("bench: durable journaled batch %d: %w", i, err)
		}
	}
	durMs := time.Since(start).Seconds() * 1000
	if err := d.Close(); err != nil {
		return err
	}
	res.Overhead = DurableOverhead{Batches: len(data.Batches), MemMillis: memMs, DurMillis: durMs}
	if memMs > 0 {
		res.Overhead.Ratio = durMs / memMs
	}
	fmt.Fprintf(w, "overhead: in-memory %.1f ms, durable %.1f ms, ratio %.2fx\n",
		memMs, durMs, res.Overhead.Ratio)
	return nil
}

// durableCommit runs k batches on a fresh cluster with a durable store on
// the given FS and returns the store for counter inspection (left open —
// a crash is the point).
func durableCommit(spec Spec, planner maintain.Planner, fs wal.FS, opts wal.Options, k int) (*wal.Durable, error) {
	data, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	cl, m, err := durableSetup(spec, planner, data)
	if err != nil {
		return nil, err
	}
	d, _, err := wal.Open(fs, spec.Nodes, opts)
	if err != nil {
		return nil, err
	}
	if err := d.Attach(cl); err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		if _, err := m.ApplyBatch(data.Batches[i]); err != nil {
			return nil, fmt.Errorf("batch %d: %w", i, err)
		}
	}
	return d, nil
}

// durableRecover crashes the FS, reopens it, installs the recovered state
// into a fresh cluster, and returns that cluster with the elapsed
// recovery time. A nil cluster with nil error means nothing was durable.
func durableRecover(spec Spec, fs *wal.FaultFS) (*cluster.Cluster, *wal.Recovered, float64, error) {
	if fs.Crashed() {
		fs.Restart()
	} else {
		fs.Crash()
	}
	start := time.Now()
	d, rec, err := wal.Open(fs, spec.Nodes, wal.Options{})
	if err != nil {
		return nil, nil, 0, err
	}
	defer d.Close()
	if rec == nil {
		return nil, nil, time.Since(start).Seconds() * 1000, nil
	}
	cl, err := spec.Cluster()
	if err != nil {
		return nil, nil, 0, err
	}
	if err := rec.Install(cl); err != nil {
		return nil, nil, 0, err
	}
	return cl, rec, time.Since(start).Seconds() * 1000, nil
}

func durableLadder(w io.Writer, spec Spec, planner maintain.Planner, oracles []durableOracle, res *DurableResult) error {
	data, err := spec.Generate()
	if err != nil {
		return err
	}
	n := len(data.Batches)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %6s\n",
		"batches", "wal(B)", "seg(B)", "resident(B)", "recover(ms)", "state")
	for k := 1; k <= n; k++ {
		fs := wal.NewMemFS()
		d, err := durableCommit(spec, planner, fs, wal.Options{}, k)
		if err != nil {
			return fmt.Errorf("bench: durable ladder rung %d: %w", k, err)
		}
		snap := d.Counters().Snapshot()
		rung := DurableRung{
			Batches:       k,
			WALBytes:      snap.WALBytes,
			SegBytes:      snap.SegBytes,
			ResidentBytes: fs.TotalBytes(),
		}
		cl, rec, ms, err := durableRecover(spec, fs)
		if err != nil {
			return fmt.Errorf("bench: durable ladder recover %d: %w", k, err)
		}
		rung.RecoverMillis = ms
		if cl != nil && rec != nil && int(rec.Seq) == k {
			base, vw, err := durableGather(cl, spec, data)
			if err != nil {
				return err
			}
			rung.StatesMatch = arraysEqual(base, oracles[k].base) && arraysEqual(vw, oracles[k].view)
		}
		res.Ladder = append(res.Ladder, rung)
		okStr := "ok"
		if !rung.StatesMatch {
			okStr = "FAIL"
		}
		fmt.Fprintf(w, "%-8d %12d %12d %12d %12.2f %6s\n",
			rung.Batches, rung.WALBytes, rung.SegBytes, rung.ResidentBytes, rung.RecoverMillis, okStr)
	}
	return nil
}

func durableCompaction(w io.Writer, spec Spec, planner maintain.Planner, oracles []durableOracle, res *DurableResult) error {
	data, err := spec.Generate()
	if err != nil {
		return err
	}
	n := len(data.Batches)
	fmt.Fprintf(w, "%-14s %12s %12s %12s %6s\n",
		"compact(B)", "checkpoints", "resident(B)", "recover(ms)", "state")
	for _, threshold := range []int64{1, 1 << 40} {
		fs := wal.NewMemFS()
		d, err := durableCommit(spec, planner, fs, wal.Options{CompactBytes: threshold}, n)
		if err != nil {
			return fmt.Errorf("bench: durable compaction threshold %d: %w", threshold, err)
		}
		snap := d.Counters().Snapshot()
		row := DurableCompaction{
			CompactBytes:  threshold,
			Checkpoints:   snap.Checkpoints,
			ResidentBytes: fs.TotalBytes(),
		}
		cl, rec, ms, err := durableRecover(spec, fs)
		if err != nil {
			return fmt.Errorf("bench: durable compaction recover: %w", err)
		}
		row.RecoverMillis = ms
		if cl != nil && rec != nil && int(rec.Seq) == n {
			base, vw, err := durableGather(cl, spec, data)
			if err != nil {
				return err
			}
			row.StatesMatch = arraysEqual(base, oracles[n].base) && arraysEqual(vw, oracles[n].view)
		}
		res.Compact = append(res.Compact, row)
		okStr := "ok"
		if !row.StatesMatch {
			okStr = "FAIL"
		}
		fmt.Fprintf(w, "%-14d %12d %12d %12.2f %6s\n",
			row.CompactBytes, row.Checkpoints, row.ResidentBytes, row.RecoverMillis, okStr)
	}
	return nil
}

func durableFaults(w io.Writer, spec Spec, planner maintain.Planner, oracles []durableOracle, res *DurableResult) error {
	data, err := spec.Generate()
	if err != nil {
		return err
	}
	n := len(data.Batches)

	// Fault-free probe: measure the total write/sync op count so fault ops
	// can be sampled across the whole run, recovery checkpoint included.
	probe := wal.NewMemFS()
	if _, err := durableCommit(spec, planner, probe, wal.Options{}, n); err != nil {
		return fmt.Errorf("bench: durable fault probe: %w", err)
	}
	opsTotal := probe.Ops()

	type faultCase struct {
		class string
		plan  wal.FaultPlan
	}
	var cases []faultCase
	const crashSamples = 6
	for i := 0; i < crashSamples; i++ {
		op := 1 + opsTotal*int64(i)/crashSamples
		cases = append(cases, faultCase{"crash", wal.FaultPlan{Seed: 9000 + int64(i), CrashAtOp: op}})
	}
	for i := 0; i < 3; i++ {
		op := 1 + opsTotal*int64(2*i+1)/6
		cases = append(cases, faultCase{"failsync", wal.FaultPlan{Seed: 9100 + int64(i), FailSyncAtOp: op}})
		cases = append(cases, faultCase{"shortwrite", wal.FaultPlan{Seed: 9200 + int64(i), ShortWriteAtOp: op}})
	}

	fmt.Fprintf(w, "%-12s %8s %6s %10s %10s\n", "fault", "op", "acked", "recovered", "matched@")
	for _, fc := range cases {
		op := fc.plan.CrashAtOp + fc.plan.FailSyncAtOp + fc.plan.ShortWriteAtOp
		detail := DurableFaultCase{Class: fc.class, Op: op, MatchedAt: -1}
		fs := wal.NewFaultFS(fc.plan)

		// The faulty run: count the consecutive prefix of acknowledged
		// batches; errors past the fault are expected, not fatal.
		acked := func() int {
			cl, m, err := durableSetup(spec, planner, data)
			if err != nil {
				return 0
			}
			d, _, err := wal.Open(fs, spec.Nodes, wal.Options{})
			if err != nil {
				return 0
			}
			if err := d.Attach(cl); err != nil {
				return 0
			}
			for i, b := range data.Batches {
				if _, err := m.ApplyBatch(b); err != nil {
					return i
				}
			}
			return n
		}()
		detail.Acked = acked

		cl, _, _, err := durableRecover(spec, fs)
		switch {
		case err != nil:
			// Recovery itself failed: counted as unrecovered, gate trips.
		case cl == nil:
			// Nothing durable: legal only if nothing was acknowledged —
			// a restart would rebuild from the source, i.e. prefix 0.
			detail.Recovered = true
			if acked == 0 {
				detail.MatchedAt = 0
			} else {
				detail.Violation = true
			}
		default:
			detail.Recovered = true
			base, vw, err := durableGather(cl, spec, data)
			if err != nil {
				return err
			}
			// The recovery contract: the surviving state equals a clean
			// replay of the first k batches for some k >= every
			// acknowledged batch (unacknowledged-but-durable is legal;
			// a hybrid matches no prefix).
			for k := acked; k <= n; k++ {
				if arraysEqual(base, oracles[k].base) && arraysEqual(vw, oracles[k].view) {
					detail.MatchedAt = k
					break
				}
			}
			if detail.MatchedAt < 0 {
				detail.Violation = true
			}
		}

		res.Fault.Cases++
		if detail.Recovered {
			res.Fault.Recovered++
		}
		if detail.Violation {
			res.Fault.Violations++
		}
		res.Fault.Detail = append(res.Fault.Detail, detail)
		fmt.Fprintf(w, "%-12s %8d %6d %10t %10d\n",
			detail.Class, detail.Op, detail.Acked, detail.Recovered, detail.MatchedAt)
	}
	fmt.Fprintf(w, "fault matrix: %d cases, %d recovered, %d violations\n",
		res.Fault.Cases, res.Fault.Recovered, res.Fault.Violations)
	return nil
}
