package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/stream"
	"github.com/arrayview/arrayview/internal/transport"
	"github.com/arrayview/arrayview/internal/workload"
)

// SkewRung compares all-eager maintenance against the heavy-light adaptive
// maintainer on one pointing distribution of the skew ladder: same data,
// same planner and placements — the only variable is the maintenance
// policy. Correlated and periodic pointings reward the eager path's
// content-addressed join memo (replayed batches re-derive identical join
// state); the skewed pointing rewards deferral of the cold scatter tail;
// the uniform pointing is the no-free-lunch control where the adaptive
// layer must not lose.
type SkewRung struct {
	Mode       string `json:"mode"`
	Fabric     string `json:"fabric"`
	Batches    int    `json:"batches"`
	DeltaCells int    `json:"delta_cells"`

	// Maintenance wall-clock (min over repetitions). The adaptive number
	// includes the final drain of the pending log, so deferred work is
	// charged to the policy that deferred it.
	EagerSeconds    float64 `json:"eager_seconds"`
	AdaptiveSeconds float64 `json:"adaptive_seconds"`
	DrainSeconds    float64 `json:"drain_seconds"`

	EagerPerBatchMillis    float64 `json:"eager_per_batch_millis"`
	AdaptivePerBatchMillis float64 `json:"adaptive_per_batch_millis"`
	// Reduction is 1 - adaptive/eager on the per-batch cost (negative when
	// the adaptive layer loses).
	Reduction float64 `json:"reduction"`

	// Query latency percentiles over bursts issued between batches. The
	// adaptive leg's queries run with the materialize-on-read hook, so its
	// percentiles carry the lazy path's freshness overhead.
	EagerQueryP50Millis float64 `json:"eager_query_p50_millis"`
	EagerQueryP99Millis float64 `json:"eager_query_p99_millis"`
	LazyQueryP50Millis  float64 `json:"lazy_query_p50_millis"`
	LazyQueryP99Millis  float64 `json:"lazy_query_p99_millis"`

	// Adaptive-layer behaviour (from the audited repetition).
	HeavyClasses int                  `json:"heavy_classes"`
	SeenClasses  int                  `json:"seen_classes"`
	Promotions   int64                `json:"promotions"`
	Demotions    int64                `json:"demotions"`
	Pending      cluster.PendingStats `json:"pending"`
	MemoHits     int64                `json:"memo_hits"`
	MemoMisses   int64                `json:"memo_misses"`
	PlanReuses   int64                `json:"plan_reuses"`
	PlanSolves   int64                `json:"plan_solves"`

	// Snapshot-isolation audit (both legs, identical harness) and the
	// cross-policy equivalence check: after the adaptive leg drains, base
	// and view must be cell-for-cell identical to the all-eager leg.
	EagerObservations int  `json:"eager_observations"`
	EagerViolations   int  `json:"eager_violations"`
	Observations      int  `json:"observations"`
	Violations        int  `json:"violations"`
	StatesMatch       bool `json:"states_match"`
}

// SkewStreamRung runs the skewed trickle through the pipelined streaming
// graph with the adaptive classifier attached: the graph maintains every
// chunk eagerly but feeds the classifier, shares the join memo, and weights
// hot-footprint touches in the router's drift signal.
type SkewStreamRung struct {
	Batches        int     `json:"batches"`
	StreamSeconds  float64 `json:"stream_seconds"`
	PerBatchMillis float64 `json:"per_batch_millis"`
	Solves         int64   `json:"solves"`
	Reuses         int64   `json:"reuses"`
	HeavyClasses   int     `json:"heavy_classes"`
	MemoHits       int64   `json:"memo_hits"`
	MemoMisses     int64   `json:"memo_misses"`
	StatesMatch    bool    `json:"states_match"`
}

// SkewResult is the full skew-ladder experiment.
type SkewResult struct {
	Spec    Spec    `json:"spec"`
	HotFrac float64 `json:"hot_frac"`

	Rungs  []*SkewRung     `json:"rungs"`
	TCP    *SkewRung       `json:"tcp"`
	Stream *SkewStreamRung `json:"stream"`
}

// skewLadderModes is the pointing-distribution ladder, least to most
// skewed: uniform scatter, correlated replay, periodic revisits, and the
// hot-footprint-plus-cold-tail workload.
var skewLadderModes = []string{"uniform", "correlated", "periodic", "skewed"}

// Skew runs the heavy-light adaptive maintenance experiment: the pointing
// ladder on the in-process fabric, one TCP-loopback rung, and one streamed
// rung. Needs a PTF (self-join) dataset.
func Skew(w io.Writer, spec Spec, hotFrac float64) (*SkewResult, error) {
	if spec.Dataset == GEO {
		return nil, fmt.Errorf("bench: skew experiment needs a PTF (self-join) dataset")
	}
	if hotFrac <= 0 || hotFrac >= 1 {
		hotFrac = 0.8
	}
	out := &SkewResult{Spec: spec, HotFrac: hotFrac}
	for _, mode := range skewLadderModes {
		r, err := skewRung(spec, mode, hotFrac, false)
		if err != nil {
			return nil, fmt.Errorf("bench: skew rung %s: %w", mode, err)
		}
		out.Rungs = append(out.Rungs, r)
	}
	tcp, err := skewRung(spec, "skewed", hotFrac, true)
	if err != nil {
		return nil, fmt.Errorf("bench: skew tcp rung: %w", err)
	}
	out.TCP = tcp
	sr, err := skewStreamRung(spec, hotFrac)
	if err != nil {
		return nil, fmt.Errorf("bench: skew stream rung: %w", err)
	}
	out.Stream = sr
	out.WriteTable(w)
	return out, nil
}

// WriteTable renders the human-readable skew report.
func (r *SkewResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Heavy-light adaptive maintenance — %s, hot fraction %.2f\n", r.Spec.Dataset, r.HotFrac)
	rows := append(append([]*SkewRung{}, r.Rungs...), r.TCP)
	for _, g := range rows {
		if g == nil {
			continue
		}
		fmt.Fprintf(w, "  %-10s %-5s eager %6.1fms/b  adaptive %6.1fms/b (drain %5.2fs)  reduction %5.1f%%  q p50/p99 %5.2f/%5.2fms lazy %5.2f/%5.2fms  heavy %d/%d  memo %d/%d  plans %d/%d  defer %d  audit %d/%d+%d/%d viol  match %v\n",
			g.Mode, g.Fabric, g.EagerPerBatchMillis, g.AdaptivePerBatchMillis, g.DrainSeconds,
			100*g.Reduction,
			g.EagerQueryP50Millis, g.EagerQueryP99Millis, g.LazyQueryP50Millis, g.LazyQueryP99Millis,
			g.HeavyClasses, g.SeenClasses, g.MemoHits, g.MemoMisses, g.PlanReuses, g.PlanSolves, g.Pending.Appended,
			g.EagerObservations, g.EagerViolations, g.Observations, g.Violations, g.StatesMatch)
	}
	if s := r.Stream; s != nil {
		fmt.Fprintf(w, "  streamed   %6.1fms/b  solves %d reuses %d  heavy %d  memo %d/%d  match %v\n",
			s.PerBatchMillis, s.Solves, s.Reuses, s.HeavyClasses, s.MemoHits, s.MemoMisses, s.StatesMatch)
	}
}

// skewData generates one rung's dataset: the existing PTF batch modes for
// uniform/correlated/periodic pointings, the hot-footprint generator for
// the skewed rung.
func skewData(spec Spec, mode string, hotFrac float64) (*workload.Dataset, error) {
	switch mode {
	case "uniform":
		return workload.GeneratePTF(spec.PTF, workload.Random)
	case "correlated":
		return workload.GeneratePTF(spec.PTF, workload.Correlated)
	case "periodic":
		return workload.GeneratePTF(spec.PTF, workload.Periodic)
	case "skewed":
		return workload.GeneratePTFSkewed(spec.PTF, hotFrac)
	}
	return nil, fmt.Errorf("bench: unknown skew mode %q", mode)
}

// skewAdaptiveConfig is the ladder's adaptive tuning. The classifier
// projects out the time dimension: PTF batches land in fresh (or replayed)
// time slabs, so the persistent identity of a chunk is its sky pointing.
func skewAdaptiveConfig(counters *obs.AdaptiveCounters) maintain.AdaptiveConfig {
	cfg := maintain.DefaultAdaptiveConfig()
	cfg.Project = maintain.DropDims(0)
	// Promote any class touched in the current batch and at least once more
	// anywhere in the window (minimum revisit score 1 + decay^4 ≈ 1.06):
	// periodic pointings revisit a slab every few batches, and a threshold
	// that demands consecutive touches would misread them as cold.
	cfg.HeavyThreshold = 1.05
	cfg.MaxPendingBatches = 6
	// At default scale a batch carries several thousand memoable units; the
	// default memo cap would thrash (every entry evicted before its replay
	// arrives).
	cfg.MemoCap = 32768
	cfg.Counters = counters
	return cfg
}

// newSkewCluster builds the rung's cluster over the chosen fabric.
func newSkewCluster(spec Spec, tcp bool) (*cluster.Cluster, func(), error) {
	if !tcp {
		cl, err := spec.Cluster()
		return cl, func() {}, err
	}
	lc, err := transport.StartLoopback(spec.Nodes, nil)
	if err != nil {
		return nil, nil, err
	}
	fab, err := lc.Fabric(transport.DefaultClientConfig())
	if err != nil {
		lc.Close()
		return nil, nil, err
	}
	cl, err := cluster.New(spec.Nodes,
		cluster.WithWorkersPerNode(spec.Workers), cluster.WithFabric(fab))
	if err != nil {
		fab.Close()
		lc.Close()
		return nil, nil, err
	}
	return cl, func() { fab.Close(); lc.Close() }, nil
}

// loadSkewRung stands the rung's base and view up on a fresh cluster.
func loadSkewRung(spec Spec, data *workload.Dataset, tcp bool) (*cluster.Cluster, func(), error) {
	cl, closeFn, err := newSkewCluster(spec, tcp)
	if err != nil {
		return nil, nil, err
	}
	if err := cl.LoadArray(data.Base, spec.Placement()); err != nil {
		closeFn()
		return nil, nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		closeFn()
		return nil, nil, err
	}
	if err := maintain.BuildView(cl, def, spec.Placement()); err != nil {
		closeFn()
		return nil, nil, err
	}
	return cl, closeFn, nil
}

// pctMillis returns the p-th percentile of the sorted latency slice in
// milliseconds.
func pctMillis(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	i := int(p * float64(len(lats)-1))
	return float64(lats[i]) / float64(time.Millisecond)
}

// skewQuerySchedule issues a burst of queries every few batches — often
// enough to sample the lazy path's materialize-on-read spike, rarely
// enough to leave the deferral benefit intact between touches.
const (
	skewQueryEvery = 4
	skewQueryBurst = 6
)

func skewRung(spec Spec, mode string, hotFrac float64, tcp bool) (*SkewRung, error) {
	data, err := skewData(spec, mode, hotFrac)
	if err != nil {
		return nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, err
	}
	deltaCells := 0
	for _, b := range data.Batches {
		deltaCells += b.NumCells()
	}
	rung := &SkewRung{
		Mode:       mode,
		Fabric:     fabricLabel(tcp),
		Batches:    len(data.Batches),
		DeltaCells: deltaCells,
	}
	// Timing repetitions run unaudited and unqueried (pure maintenance
	// cost, min over reps); one audited repetition per leg carries the
	// snapshot auditors and the query bursts and supplies the end states
	// for the equivalence check. TCP rungs skip the audit reps to keep the
	// daemon churn bounded.
	reps := 2
	auditors := 2
	if tcp {
		reps, auditors = 1, 0
	}

	// All-eager timing leg.
	for rep := 0; rep < reps; rep++ {
		cl, closeFn, err := loadSkewRung(spec, data, tcp)
		if err != nil {
			return nil, err
		}
		m, err := maintain.NewMaintainer(cl, def, nil, spec.Params)
		if err != nil {
			closeFn()
			return nil, err
		}
		m.SetPlacements(spec.Placement(), spec.Placement())
		t0 := time.Now()
		for i, b := range data.Batches {
			if _, err := m.ApplyBatch(b); err != nil {
				closeFn()
				return nil, fmt.Errorf("eager leg batch %d: %w", i, err)
			}
		}
		sec := time.Since(t0).Seconds()
		if rep == 0 || sec < rung.EagerSeconds {
			rung.EagerSeconds = sec
		}
		closeFn()
	}

	// Adaptive timing leg. The final drain is timed separately and charged
	// to the adaptive total.
	for rep := 0; rep < reps; rep++ {
		cl, closeFn, err := loadSkewRung(spec, data, tcp)
		if err != nil {
			return nil, err
		}
		am, err := maintain.NewAdaptiveMaintainer(cl, def, nil, spec.Params, skewAdaptiveConfig(nil))
		if err != nil {
			closeFn()
			return nil, err
		}
		am.Inner().SetPlacements(spec.Placement(), spec.Placement())
		t0 := time.Now()
		for i, b := range data.Batches {
			if _, err := am.ApplyBatch(b); err != nil {
				closeFn()
				return nil, fmt.Errorf("adaptive leg batch %d: %w", i, err)
			}
		}
		batchSec := time.Since(t0).Seconds()
		t1 := time.Now()
		if _, err := am.Drain(); err != nil {
			closeFn()
			return nil, fmt.Errorf("adaptive leg drain: %w", err)
		}
		drainSec := time.Since(t1).Seconds()
		if rep == 0 || batchSec+drainSec < rung.AdaptiveSeconds+rung.DrainSeconds {
			rung.AdaptiveSeconds, rung.DrainSeconds = batchSec, drainSec
		}
		closeFn()
	}

	// Audited + queried repetitions: one per leg, not timed, supplying the
	// equivalence fingerprints, the isolation audit, the query percentiles,
	// and the adaptive-layer counters.
	eagerCl, closeEager, err := loadSkewRung(spec, data, tcp)
	if err != nil {
		return nil, err
	}
	defer closeEager()
	{
		m, err := maintain.NewMaintainer(eagerCl, def, nil, spec.Params)
		if err != nil {
			return nil, err
		}
		m.SetPlacements(spec.Placement(), spec.Placement())
		eng, err := query.NewEngine(eagerCl, def, spec.Params)
		if err != nil {
			return nil, err
		}
		var audit *snapshotAudit
		if auditors > 0 {
			audit = attachAudit(eagerCl, def.Name, auditors)
		}
		var lats []time.Duration
		for i, b := range data.Batches {
			if _, err := m.ApplyBatch(b); err != nil {
				return nil, fmt.Errorf("eager audit leg batch %d: %w", i, err)
			}
			if (i+1)%skewQueryEvery == 0 {
				for q := 0; q < skewQueryBurst; q++ {
					t0 := time.Now()
					if _, err := eng.Answer(def.Pred.Shape, query.ForceView); err != nil {
						return nil, fmt.Errorf("eager query at batch %d: %w", i, err)
					}
					lats = append(lats, time.Since(t0))
				}
			}
		}
		if audit != nil {
			rung.EagerObservations, rung.EagerViolations = audit.finish()
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rung.EagerQueryP50Millis = pctMillis(lats, 0.50)
		rung.EagerQueryP99Millis = pctMillis(lats, 0.99)
	}

	adCl, closeAd, err := loadSkewRung(spec, data, tcp)
	if err != nil {
		return nil, err
	}
	defer closeAd()
	{
		counters := &obs.AdaptiveCounters{}
		am, err := maintain.NewAdaptiveMaintainer(adCl, def, nil, spec.Params, skewAdaptiveConfig(counters))
		if err != nil {
			return nil, err
		}
		am.Inner().SetPlacements(spec.Placement(), spec.Placement())
		eng, err := query.NewEngine(adCl, def, spec.Params)
		if err != nil {
			return nil, err
		}
		eng.Fresh = am.EnsureFresh
		var audit *snapshotAudit
		if auditors > 0 {
			audit = attachAudit(adCl, def.Name, auditors)
		}
		var lats []time.Duration
		for i, b := range data.Batches {
			if _, err := am.ApplyBatch(b); err != nil {
				return nil, fmt.Errorf("adaptive audit leg batch %d: %w", i, err)
			}
			if (i+1)%skewQueryEvery == 0 {
				for q := 0; q < skewQueryBurst; q++ {
					t0 := time.Now()
					if _, err := eng.AnswerCtx(context.Background(), def.Pred.Shape, query.ForceView); err != nil {
						return nil, fmt.Errorf("lazy query at batch %d: %w", i, err)
					}
					lats = append(lats, time.Since(t0))
				}
			}
		}
		if _, err := am.Drain(); err != nil {
			return nil, fmt.Errorf("adaptive audit leg drain: %w", err)
		}
		if audit != nil {
			rung.Observations, rung.Violations = audit.finish()
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rung.LazyQueryP50Millis = pctMillis(lats, 0.50)
		rung.LazyQueryP99Millis = pctMillis(lats, 0.99)
		st := am.Stats()
		rung.HeavyClasses, rung.SeenClasses = st.HeavyClasses, st.SeenClasses
		rung.Promotions, rung.Demotions = st.Promotions, st.Demotions
		rung.Pending = st.Pending
		rung.MemoHits, rung.MemoMisses = st.Memo.Hits, st.Memo.Misses
		rung.PlanReuses, rung.PlanSolves = st.Plans.Hits, st.Plans.Misses
	}

	rung.StatesMatch, err = sameState(eagerCl, adCl, data.Schema.Name, def.Name)
	if err != nil {
		return nil, err
	}

	n := float64(len(data.Batches))
	rung.EagerPerBatchMillis = rung.EagerSeconds * 1000 / n
	rung.AdaptivePerBatchMillis = (rung.AdaptiveSeconds + rung.DrainSeconds) * 1000 / n
	if rung.EagerSeconds > 0 {
		rung.Reduction = 1 - rung.AdaptivePerBatchMillis/rung.EagerPerBatchMillis
	}
	return rung, nil
}

// skewStreamRung pushes the skewed trickle through the pipelined graph with
// the classifier attached, and checks the end state against a plain eager
// pass over the same data.
func skewStreamRung(spec Spec, hotFrac float64) (*SkewStreamRung, error) {
	data, err := workload.GeneratePTFSkewed(spec.PTF, hotFrac)
	if err != nil {
		return nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, err
	}
	out := &SkewStreamRung{Batches: len(data.Batches)}

	// Reference: plain eager batch-at-a-time.
	refCl, refParams, err := loadRung(spec, data)
	if err != nil {
		return nil, err
	}
	m, err := maintain.NewMaintainer(refCl, def, nil, *refParams)
	if err != nil {
		return nil, err
	}
	m.SetPlacements(spec.Placement(), spec.Placement())
	for i, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			return nil, fmt.Errorf("stream reference batch %d: %w", i, err)
		}
	}

	// Streamed leg with the adaptive classifier attached.
	cl, params, err := loadRung(spec, data)
	if err != nil {
		return nil, err
	}
	am, err := maintain.NewAdaptiveMaintainer(cl, def, nil, *params, skewAdaptiveConfig(nil))
	if err != nil {
		return nil, err
	}
	g, err := stream.NewGraph(stream.Config{
		Cluster:        cl,
		Def:            def,
		Params:         *params,
		ArrayPlacement: spec.Placement(),
		ViewPlacement:  spec.Placement(),
		Adaptive:       am,
	})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	for i, b := range data.Batches {
		tk, err := g.Submit(b)
		if err != nil {
			return nil, fmt.Errorf("stream submit %d: %w", i, err)
		}
		if res := tk.Wait(); res.Err != nil {
			return nil, fmt.Errorf("stream batch %d: %w", i, res.Err)
		}
	}
	g.Drain()
	out.StreamSeconds = time.Since(t0).Seconds()
	out.PerBatchMillis = out.StreamSeconds * 1000 / float64(len(data.Batches))
	st := g.Stats()
	out.Solves, out.Reuses = st.Router.Solves, st.Router.Reuses
	ast := am.Stats()
	out.HeavyClasses = ast.HeavyClasses
	out.MemoHits, out.MemoMisses = ast.Memo.Hits, ast.Memo.Misses
	out.StatesMatch, err = sameState(refCl, cl, data.Schema.Name, def.Name)
	if err != nil {
		return nil, err
	}
	return out, nil
}
