package bench

import (
	"fmt"
	"io"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/storage"
	"github.com/arrayview/arrayview/internal/transport"
	"github.com/arrayview/arrayview/internal/workload"
)

// WireVariantResult is one shipping configuration's traffic over the full
// maintenance sequence.
type WireVariantResult struct {
	// Variant names the configuration: "naive" (no wire protocol),
	// "dedup" (content-addressed offers and pipelined batches, delta
	// patches refused), "delta" (the full wire layer), "tcp" (loopback
	// daemons, uncompressed), "tcp-compress" (loopback daemons with
	// per-frame deflate).
	Variant string
	// Baseline is the variant this one's Saved is computed against:
	// "naive" for the in-process variants, "tcp" for "tcp-compress". The
	// two families are not comparable to each other — local byte counters
	// are chunk payload sizes, TCP counters are raw socket bytes.
	Baseline string
	// Bytes is the sequence's total data-plane traffic, summed over nodes
	// and both directions.
	Bytes int64
	// Saved is the fractional byte reduction against Baseline (0 for the
	// baselines themselves).
	Saved float64
	// TransferBytes is the traffic of the per-batch replication step alone
	// — the Phase-1-style repeated chunk ships the wire layer targets.
	// Join reads and staging merges, identical across variants, are
	// excluded here, so this is where the dedup and delta savings show
	// undiluted.
	TransferBytes int64
	// SavedTransfers is the fractional TransferBytes reduction against
	// Baseline.
	SavedTransfers float64

	DedupHits          int64
	BytesSavedDedup    int64
	DeltaShips         int64
	BytesSavedDelta    int64
	BytesSavedCompress int64
	RoundTripsSaved    int64
}

// WireRepeatProbe checks the repeat-ship contract: re-transferring chunks
// whose content the destination has already seen (its resident copy was
// evicted, not changed) must move only the offer handshake — zero payload
// bytes — with every chunk adopted from the destination's content cache.
type WireRepeatProbe struct {
	Chunks     int
	BytesMoved int64
	DedupHits  int64
	// HandshakeOnly is true when no payload byte moved and every probed
	// chunk was a dedup hit.
	HandshakeOnly bool
}

// WireResult is the wire-efficiency experiment for one (dataset, mode)
// panel: the same seeded maintenance sequence shipped under each variant,
// plus the repeat-ship probe run on the full-featured in-process cluster.
type WireResult struct {
	Dataset  Dataset
	Mode     workload.BatchMode
	Strategy string
	Variants []WireVariantResult
	Repeat   WireRepeatProbe
}

// Wire runs the wire-efficiency experiment on one panel: the identical
// seeded batch sequence — with the chaos suite's per-batch re-replication,
// the workload where repeated ships dominate — executed under each
// shipping variant, reporting bytes on the wire and the savings
// attribution for each. The in-process variants compare payload bytes;
// the loopback-TCP pair compares raw socket bytes with and without
// per-frame compression.
func Wire(w io.Writer, spec Spec) (*WireResult, error) {
	const strategy = "reassign"
	res := &WireResult{Dataset: spec.Dataset, Mode: spec.Mode, Strategy: strategy}

	fmt.Fprintf(w, "Wire shipping: %s/%s, %d nodes, strategy %s\n", spec.Dataset, spec.Mode, spec.Nodes, strategy)

	// In-process variants over identical data.
	naive, _, _, err := runWireVariant(spec, strategy, wireNaive)
	if err != nil {
		return nil, fmt.Errorf("bench: wire naive: %w", err)
	}
	dedup, _, _, err := runWireVariant(spec, strategy, wireDedup)
	if err != nil {
		return nil, fmt.Errorf("bench: wire dedup: %w", err)
	}
	delta, deltaCl, baseName, err := runWireVariant(spec, strategy, wireDelta)
	if err != nil {
		return nil, fmt.Errorf("bench: wire delta: %w", err)
	}
	naive.Variant, naive.Baseline = "naive", "naive"
	dedup.Variant, dedup.Baseline = "dedup", "naive"
	delta.Variant, delta.Baseline = "delta", "naive"
	saveVs(&dedup, naive)
	saveVs(&delta, naive)
	res.Variants = append(res.Variants, naive, dedup, delta)

	// Loopback-TCP pair: identical wire layer, compression off vs on.
	tcpPlain, err := runWireTCP(spec, strategy, false)
	if err != nil {
		return nil, fmt.Errorf("bench: wire tcp: %w", err)
	}
	tcpComp, err := runWireTCP(spec, strategy, true)
	if err != nil {
		return nil, fmt.Errorf("bench: wire tcp-compress: %w", err)
	}
	tcpPlain.Variant, tcpPlain.Baseline = "tcp", "tcp"
	tcpComp.Variant, tcpComp.Baseline = "tcp-compress", "tcp"
	saveVs(&tcpComp, tcpPlain)
	res.Variants = append(res.Variants, tcpPlain, tcpComp)

	// Repeat-ship probe on the full-featured in-process cluster.
	res.Repeat = repeatShipProbe(deltaCl, baseName)

	for _, v := range res.Variants {
		fmt.Fprintf(w, "  %-14s %12dB (saved %5.1f%%)  transfers %10dB (saved %5.1f%%) vs %-6s dedup=%d(%dB) delta=%d(%dB) compress=%dB rt-saved=%d\n",
			v.Variant, v.Bytes, v.Saved*100, v.TransferBytes, v.SavedTransfers*100, v.Baseline,
			v.DedupHits, v.BytesSavedDedup, v.DeltaShips, v.BytesSavedDelta,
			v.BytesSavedCompress, v.RoundTripsSaved)
	}
	probeState := "handshake-only"
	if !res.Repeat.HandshakeOnly {
		probeState = "FAIL (payload moved)"
	}
	fmt.Fprintf(w, "  repeat-ship probe: %d chunks, %dB moved, %d dedup hits — %s\n",
		res.Repeat.Chunks, res.Repeat.BytesMoved, res.Repeat.DedupHits, probeState)
	return res, nil
}

// wireVariant selects the fabric a variant runs on.
type wireVariant int

const (
	wireNaive wireVariant = iota // wire protocol stripped: every ship is a full body
	wireDedup                    // offers and pipelined batches, delta patches refused
	wireDelta                    // the full wire layer
)

// plainFabric strips every optional capability from the inner fabric, so
// type assertions for WireFabric (and JoinFabric) fail and the cluster
// ships everything the pre-wire way.
type plainFabric struct {
	cluster.Fabric
}

// dedupOnlyFabric passes the wire protocol through except for Patch, which
// always refuses: callers fall back to full puts, isolating dedup and
// batching from delta shipping.
type dedupOnlyFabric struct {
	*cluster.LocalFabric
}

// Patch implements cluster.WireFabric by refusing every delta.
func (f dedupOnlyFabric) Patch(node int, arrayName string, key array.ChunkKey, baseHash uint64, delta []byte, fullSize int64) (bool, error) {
	return false, nil
}

var _ cluster.WireFabric = dedupOnlyFabric{}

// runWireVariant drives the spec's sequence through maintenance on an
// in-process fabric dressed per the variant, returning the summed traffic,
// the live cluster, and the base array's name (for the repeat-ship probe).
func runWireVariant(spec Spec, strategy string, v wireVariant) (WireVariantResult, *cluster.Cluster, string, error) {
	stores := make([]*storage.Store, spec.Nodes)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	lf := cluster.NewLocalFabric(stores)
	var fab cluster.Fabric
	switch v {
	case wireNaive:
		fab = plainFabric{lf}
	case wireDedup:
		fab = dedupOnlyFabric{lf}
	default:
		fab = lf
	}
	cl, err := cluster.New(spec.Nodes, cluster.WithWorkersPerNode(spec.Workers), cluster.WithFabric(fab))
	if err != nil {
		return WireVariantResult{}, nil, "", err
	}
	baseName, transferBytes, err := runWireSequence(spec, strategy, cl)
	if err != nil {
		return WireVariantResult{}, nil, "", err
	}
	out, err := sumWire(cl)
	out.TransferBytes = transferBytes
	return out, cl, baseName, err
}

// runWireTCP drives the sequence over loopback node daemons, with or
// without per-frame compression.
func runWireTCP(spec Spec, strategy string, compress bool) (WireVariantResult, error) {
	lc, err := transport.StartLoopback(spec.Nodes, nil)
	if err != nil {
		return WireVariantResult{}, err
	}
	defer lc.Close()
	cfg := transport.DefaultClientConfig()
	cfg.Compress = compress
	fab, err := lc.Fabric(cfg)
	if err != nil {
		return WireVariantResult{}, err
	}
	defer fab.Close()
	cl, err := cluster.New(spec.Nodes, cluster.WithWorkersPerNode(spec.Workers), cluster.WithFabric(fab))
	if err != nil {
		return WireVariantResult{}, err
	}
	_, transferBytes, err := runWireSequence(spec, strategy, cl)
	if err != nil {
		return WireVariantResult{}, err
	}
	out, err := sumWire(cl)
	out.TransferBytes = transferBytes
	return out, err
}

// runWireSequence is the shared workload: load, build the view, then per
// batch re-replicate base and view (as the chaos harness does — cleanup
// scrubs scratch replicas, so every batch re-ships them) and maintain.
// Returns the base array's name and the bytes moved by the replication
// steps alone, measured by snapshotting the fabric counters around them.
func runWireSequence(spec Spec, strategy string, cl *cluster.Cluster) (string, int64, error) {
	planner, ok := maintain.Strategies()[strategy]
	if !ok {
		return "", 0, fmt.Errorf("unknown strategy %q", strategy)
	}
	data, err := spec.Generate()
	if err != nil {
		return "", 0, err
	}
	if err := cl.LoadArray(data.Base, spec.Placement()); err != nil {
		return "", 0, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return "", 0, err
	}
	if err := maintain.BuildView(cl, def, spec.Placement()); err != nil {
		return "", 0, err
	}
	m, err := maintain.NewMaintainer(cl, def, planner, spec.Params)
	if err != nil {
		return "", 0, err
	}
	m.SetPlacements(spec.Placement(), spec.Placement())
	var transferBytes int64
	for i, batch := range data.Batches {
		before, err := sumWire(cl)
		if err != nil {
			return "", 0, err
		}
		replicateOnce(cl, def.Alpha.Name)
		replicateOnce(cl, def.Name)
		after, err := sumWire(cl)
		if err != nil {
			return "", 0, err
		}
		transferBytes += after.Bytes - before.Bytes
		if _, err := m.ApplyBatch(batch); err != nil {
			return "", 0, fmt.Errorf("batch %d: %w", i, err)
		}
	}
	return def.Alpha.Name, transferBytes, nil
}

// sumWire totals the per-node fabric counters into one variant row.
func sumWire(cl *cluster.Cluster) (WireVariantResult, error) {
	var out WireVariantResult
	for node := 0; node < cl.NumNodes(); node++ {
		st, err := cl.Fabric().Stats(node)
		if err != nil {
			return out, err
		}
		out.Bytes += st.Net.BytesIn + st.Net.BytesOut
		out.DedupHits += st.Net.DedupHits
		out.BytesSavedDedup += st.Net.BytesSavedDedup
		out.DeltaShips += st.Net.DeltaShips
		out.BytesSavedDelta += st.Net.BytesSavedDelta
		out.BytesSavedCompress += st.Net.BytesSavedCompress
		out.RoundTripsSaved += st.Net.RoundTripsSaved
	}
	return out, nil
}

// saveVs fills a variant's fractional savings against the baseline's byte
// counts.
func saveVs(v *WireVariantResult, baseline WireVariantResult) {
	if baseline.Bytes > 0 {
		v.Saved = 1 - float64(v.Bytes)/float64(baseline.Bytes)
	}
	if baseline.TransferBytes > 0 {
		v.SavedTransfers = 1 - float64(v.TransferBytes)/float64(baseline.TransferBytes)
	}
}

// repeatShipProbe exercises the repeat-ship contract on a cluster that has
// finished its sequence: every base chunk is replicated out, the replica
// is evicted at the destination (sidelining its encoding in the content
// cache), and the same transfer runs again. The second round must move
// only hash handshakes: zero payload bytes, one dedup hit per chunk.
func repeatShipProbe(cl *cluster.Cluster, name string) WireRepeatProbe {
	var probe WireRepeatProbe
	if cl == nil || name == "" {
		return probe
	}
	n := cl.NumNodes()
	if n < 2 {
		return probe
	}
	cat := cl.Catalog()
	type shipped struct {
		key  array.ChunkKey
		home int
		dst  int
	}
	var ships []shipped
	for _, key := range cat.Keys(name) {
		home, ok := cat.Home(name, key)
		if !ok || home < 0 {
			continue
		}
		dst := (home + 1) % n
		// First round: make the replica resident, and make sure the
		// content hash is known (a transfer that finds the chunk already
		// resident records nothing, so refresh it from current content).
		if err := cl.Transfer(nil, name, key, home, dst); err != nil {
			continue
		}
		if _, _, known := cat.ChunkHash(name, key); !known {
			ch, _, err := cl.ReadReplica(name, key, home)
			if err != nil {
				continue
			}
			_ = cat.SetChunkHash(name, key, ch.ContentHash(), ch.EncodedSize())
		}
		ships = append(ships, shipped{key, home, dst})
	}
	// Evict the destination copies; Store.Delete sidelines the encoding in
	// the content cache, which is exactly what the second round should hit.
	for _, s := range ships {
		_, _ = cl.DeleteAt(s.dst, name, s.key)
	}
	before, _ := sumWire(cl)
	for _, s := range ships {
		_ = cl.Transfer(nil, name, s.key, s.home, s.dst)
	}
	after, _ := sumWire(cl)
	probe.Chunks = len(ships)
	probe.BytesMoved = after.Bytes - before.Bytes
	probe.DedupHits = after.DedupHits - before.DedupHits
	probe.HandshakeOnly = len(ships) > 0 && probe.BytesMoved == 0 && probe.DedupHits >= int64(len(ships))
	return probe
}
