// Package bench is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (Section 6 and Appendix C) on the
// simulated cluster, printing the same rows/series the paper reports.
// Reported maintenance times are the deterministic plan costs under the
// calibrated cost model (see DESIGN.md), so strategy comparisons carry the
// paper's shape.
package bench

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/view"
	"github.com/arrayview/arrayview/internal/workload"
)

// Dataset names the three evaluation configurations of Section 6.1.
type Dataset string

const (
	// PTF5 is the production "association table": L1(1) on (ra, dec) over
	// the previous 200 time steps.
	PTF5 Dataset = "PTF-5"
	// PTF25 stresses scalability: L∞(2) on (ra, dec), any time.
	PTF25 Dataset = "PTF-25"
	// GEO is the LinkedGeoData configuration: L∞(1) on (long, lat).
	GEO Dataset = "GEO"
)

// Datasets returns the canonical evaluation order.
func Datasets() []Dataset { return []Dataset{PTF5, PTF25, GEO} }

// ParseDataset parses a dataset name.
func ParseDataset(s string) (Dataset, error) {
	switch Dataset(s) {
	case PTF5, PTF25, GEO:
		return Dataset(s), nil
	}
	return "", fmt.Errorf("bench: unknown dataset %q (want PTF-5, PTF-25, or GEO)", s)
}

// Spec fully describes one experiment run: the dataset, batch mode,
// cluster size, and optimization parameters.
type Spec struct {
	Dataset Dataset
	Mode    workload.BatchMode
	// Nodes is the worker count; the paper uses 8 workers + coordinator.
	Nodes   int
	Workers int

	PTF workload.PTFConfig
	GEO workload.GEOConfig

	// HashLayout switches the static chunk assignment from the
	// space-partitioned default to hash scattering — the other static
	// strategy whose pathology the paper discusses. Figure 10c uses it to
	// isolate the update-sharing effect from band imbalance.
	HashLayout bool
	// PTF5Window is the PTF-5 similarity time window (the paper's 200
	// days, scaled to simulation time steps).
	PTF5Window int64

	Params maintain.Params
}

// DefaultSpec returns the paper-shaped configuration: 8 workers, 10
// batches, batches of a few hundred chunks.
func DefaultSpec(ds Dataset, mode workload.BatchMode) Spec {
	ptf := workload.DefaultPTFConfig()
	ptf.Sigma = 150
	ptf.NumFields = 15
	ptf.FieldsPerNight = 5
	return Spec{
		Dataset:    ds,
		Mode:       mode,
		Nodes:      8,
		Workers:    2,
		PTF:        ptf,
		GEO:        workload.DefaultGEOConfig(),
		PTF5Window: 2 * ptf.NightLen,
		Params:     maintain.DefaultParams(),
	}
}

// SmallSpec returns a fast configuration for tests: 4 workers, 5 batches,
// small domains.
func SmallSpec(ds Dataset, mode workload.BatchMode) Spec {
	s := DefaultSpec(ds, mode)
	s.Nodes = 4
	s.PTF.RaRange = 2000
	s.PTF.DecRange = 1000
	s.PTF.BaseNights = 2
	s.PTF.NumBatches = 5
	s.PTF.DetectionsPerNight = 250
	s.PTF.Sigma = 60
	s.PTF.NumFields = 6
	s.PTF.FieldsPerNight = 2
	s.GEO.LongRange = 2000
	s.GEO.LatRange = 1000
	s.GEO.NumPOI = 800
	s.GEO.NumClusters = 9
	s.GEO.NumBatches = 5
	s.GEO.BatchFraction = 0.02
	return s
}

// Generate builds the dataset of the spec.
func (s Spec) Generate() (*workload.Dataset, error) {
	switch s.Dataset {
	case PTF5, PTF25:
		return workload.GeneratePTF(s.PTF, s.Mode)
	case GEO:
		return workload.GenerateGEO(s.GEO, s.Mode)
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", s.Dataset)
}

// ViewFor builds the view definition for the generated dataset.
func (s Spec) ViewFor(d *workload.Dataset) (*view.Definition, error) {
	switch s.Dataset {
	case PTF5:
		return workload.PTF5View(d.Schema, s.PTF5Window)
	case PTF25:
		return workload.PTF25View(d.Schema)
	case GEO:
		return workload.GEOView(d.Schema)
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", s.Dataset)
}

// Cluster builds a fresh cluster per the spec.
func (s Spec) Cluster() (*cluster.Cluster, error) {
	return cluster.New(s.Nodes, cluster.WithWorkersPerNode(s.Workers))
}

// Placement returns the static chunk-assignment strategy of the spec's
// dataset: space-partitioned bands over the first spatial dimension, the
// array-database default whose maintenance pathologies the paper studies.
func (s Spec) Placement() cluster.Placement {
	if s.HashLayout {
		return cluster.HashPlacement{}
	}
	switch s.Dataset {
	case PTF5, PTF25:
		return cluster.RangePlacement{Dim: 1, NumChunks: (s.PTF.RaRange + 99) / 100}
	default:
		return cluster.RangePlacement{Dim: 0, NumChunks: (s.GEO.LongRange + 99) / 100}
	}
}
