package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/serve"
	"github.com/arrayview/arrayview/internal/transport"
)

// ServeFabricResult measures query serving over one fabric: sustained QPS
// and tail latency of snapshot-isolated queries racing live maintenance,
// with the consistency audit (answers checked against the committed state
// of the epoch they pinned) and cache/admission counters.
type ServeFabricResult struct {
	Fabric string
	// Queries answered, batches committed, and epochs published during the
	// measurement window.
	Queries int
	Batches int
	Epochs  uint64
	// Wall-clock window and throughput.
	Seconds float64
	QPS     float64
	// Latency percentiles over all answered queries, milliseconds.
	P50Millis float64
	P99Millis float64
	// Hot-chunk read cache behaviour on the serving daemon.
	CacheHitRate float64
	CacheHits    int64
	CacheMisses  int64
	// Overloads counts admission rejections; QueryErrors counts queries
	// that failed outright (any nonzero value is a red flag).
	Overloads   int64
	QueryErrors int
	// Violations counts answers that did not equal the committed state of
	// the epoch they were pinned to — the snapshot-isolation audit. Must
	// be zero.
	Violations int
}

// ServeResult is the serve experiment across both fabrics.
type ServeResult struct {
	Spec    Spec
	Workers int
	Fabrics []*ServeFabricResult
}

// serveObservation is one client-side answer: the epoch it was pinned to
// and the canonical rendering of its cells. Verified post-hoc against the
// per-epoch expected states so clients never synchronize with the writer.
type serveObservation struct {
	epoch uint64
	fp    string
}

// serveFingerprint renders an array's cells canonically.
func serveFingerprint(a *array.Array) string {
	var cells []string
	a.EachCell(func(p array.Point, tup array.Tuple) bool {
		cells = append(cells, fmt.Sprintf("%v=%v", p, tup))
		return true
	})
	sort.Strings(cells)
	return fmt.Sprint(cells)
}

// Serve measures snapshot-isolated query serving under live maintenance on
// both fabrics: an ivmserve daemon fronts the cluster over real TCP while
// workers query the view shape continuously and every maintenance batch of
// the dataset commits underneath them. Each answer is audited against the
// committed state of the epoch it pinned.
func Serve(w io.Writer, spec Spec, workers int) (*ServeResult, error) {
	if workers <= 0 {
		workers = 4
	}
	out := &ServeResult{Spec: spec, Workers: workers}
	for _, tcp := range []bool{false, true} {
		r, err := serveOnFabric(spec, workers, tcp)
		if err != nil {
			return nil, fmt.Errorf("bench: serve on %s: %w", fabricLabel(tcp), err)
		}
		out.Fabrics = append(out.Fabrics, r)
	}
	out.WriteTable(w)
	return out, nil
}

func fabricLabel(tcp bool) string {
	if tcp {
		return "tcp"
	}
	return "local"
}

// WriteTable renders the human-readable serve report.
func (r *ServeResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Serving under maintenance — %s / %s, %d query workers\n",
		r.Spec.Dataset, r.Spec.Mode, r.Workers)
	for _, f := range r.Fabrics {
		fmt.Fprintf(w, "  %-5s  %6.0f qps  p50 %6.2fms  p99 %6.2fms  cache %.2f  batches %d  epochs %d  overloads %d  violations %d\n",
			f.Fabric, f.QPS, f.P50Millis, f.P99Millis, f.CacheHitRate,
			f.Batches, f.Epochs, f.Overloads, f.Violations)
	}
}

func serveOnFabric(spec Spec, workers int, tcp bool) (*ServeFabricResult, error) {
	data, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	var cl *cluster.Cluster
	if tcp {
		lc, err := transport.StartLoopback(spec.Nodes, nil)
		if err != nil {
			return nil, err
		}
		defer lc.Close()
		fab, err := lc.Fabric(transport.DefaultClientConfig())
		if err != nil {
			return nil, err
		}
		defer fab.Close()
		cl, err = cluster.New(spec.Nodes,
			cluster.WithWorkersPerNode(spec.Workers), cluster.WithFabric(fab))
		if err != nil {
			return nil, err
		}
	} else {
		cl, err = spec.Cluster()
		if err != nil {
			return nil, err
		}
	}
	if err := cl.LoadArray(data.Base, &cluster.RoundRobin{}); err != nil {
		return nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, err
	}
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		return nil, err
	}
	m, err := maintain.NewMaintainer(cl, def, nil, spec.Params)
	if err != nil {
		return nil, err
	}
	eng, err := query.NewEngine(cl, def, spec.Params)
	if err != nil {
		return nil, err
	}

	// The serving front-end is always real TCP, whatever the data-plane
	// fabric: clients measure the daemon the way a deployment would.
	srv := serve.NewServer(eng, &serve.Config{MaxConcurrent: workers * 2, QueueDepth: workers * 4})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer srv.Close()

	// expected holds, per published epoch, the committed view state the
	// snapshot audit compares answers against.
	expected := make(map[uint64]string)
	var emu sync.Mutex
	record := func() error {
		snap, err := cl.Epochs().Acquire()
		if err != nil {
			return err
		}
		defer snap.Release()
		v, err := snap.Gather(def.Name)
		if err != nil {
			return err
		}
		emu.Lock()
		expected[snap.Epoch()] = serveFingerprint(v)
		emu.Unlock()
		return nil
	}
	if err := record(); err != nil {
		return nil, err
	}

	viewShape := def.Pred.Shape
	done := make(chan struct{})
	type workerOut struct {
		obs       []serveObservation
		latencies []time.Duration
		errs      int
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := serve.NewClient(srv.Addr(), def.Schema(), nil)
			if err != nil {
				outs[i].errs++
				return
			}
			defer c.Close()
			for {
				select {
				case <-done:
					return
				default:
				}
				t0 := time.Now()
				res, err := c.Query(viewShape, query.Auto)
				if err != nil {
					if !serve.IsOverload(err) {
						outs[i].errs++
					}
					continue
				}
				outs[i].latencies = append(outs[i].latencies, time.Since(t0))
				outs[i].obs = append(outs[i].obs, serveObservation{res.Epoch, serveFingerprint(res.Array)})
			}
		}()
	}

	start := time.Now()
	batches := 0
	for _, b := range data.Batches {
		if _, err := m.ApplyBatch(b); err != nil {
			close(done)
			wg.Wait()
			return nil, err
		}
		batches++
		if err := record(); err != nil {
			close(done)
			wg.Wait()
			return nil, err
		}
	}
	elapsed := time.Since(start)
	close(done)
	wg.Wait()

	var obs []serveObservation
	var lats []time.Duration
	errs := 0
	for _, o := range outs {
		obs = append(obs, o.obs...)
		lats = append(lats, o.latencies...)
		errs += o.errs
	}
	violations := 0
	for _, o := range obs {
		if want, ok := expected[o.epoch]; !ok || o.fp != want {
			violations++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	st := srv.Stats()
	return &ServeFabricResult{
		Fabric:       fabricLabel(tcp),
		Queries:      len(lats),
		Batches:      batches,
		Epochs:       st.Epoch,
		Seconds:      elapsed.Seconds(),
		QPS:          float64(len(lats)) / elapsed.Seconds(),
		P50Millis:    pct(0.50),
		P99Millis:    pct(0.99),
		CacheHitRate: st.HitRate(),
		CacheHits:    st.CacheHits,
		CacheMisses:  st.CacheMisses,
		Overloads:    st.Rejected,
		QueryErrors:  errs,
		Violations:   violations,
	}, nil
}
