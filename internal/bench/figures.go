package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/workload"
)

// Fig3Result is one panel of Figure 3: per-batch maintenance time for the
// three strategies on one dataset and batch mode.
type Fig3Result struct {
	Spec    Spec
	Results map[string]*SeqResult
}

// Fig3 runs one Figure 3 panel and prints the per-batch series.
func Fig3(w io.Writer, spec Spec) (*Fig3Result, error) {
	results, err := RunAllStrategies(spec)
	if err != nil {
		return nil, err
	}
	out := &Fig3Result{Spec: spec, Results: results}
	fmt.Fprintf(w, "Figure 3 — view maintenance time per update batch: %s / %s\n", spec.Dataset, spec.Mode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "batch\tbaseline (s)\tdifferential (s)\treassign (s)\tunits\n")
	n := len(results["baseline"].Batches)
	for i := 0; i < n; i++ {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\t%d\n", i+1,
			results["baseline"].Batches[i].Maintenance,
			results["differential"].Batches[i].Maintenance,
			results["reassign"].Batches[i].Maintenance,
			results["baseline"].Batches[i].Units)
	}
	tw.Flush()
	return out, nil
}

// Fig5 prints the average optimization time per batch (Figure 5). The
// baseline's optimization time is triple generation alone; differential
// adds Algorithm 1; reassign adds Algorithms 2 and 3.
func Fig5(w io.Writer, spec Spec) (*Fig3Result, error) {
	results, err := RunAllStrategies(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Figure 5 — average optimization time per batch: %s / %s\n", spec.Dataset, spec.Mode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "strategy\toptimization (s)\ttriple gen (s)\n")
	for _, name := range maintain.StrategyNames() {
		r := results[name]
		opt := r.AvgOptimization()
		if name == "baseline" {
			opt = r.AvgTripleGen() // the baseline only generates triples
		}
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\n", name, opt, r.AvgTripleGen())
	}
	tw.Flush()
	return &Fig3Result{Spec: spec, Results: results}, nil
}

// Fig9 prints the overall time (optimization + maintenance) across the
// batch sequence (Appendix C.1).
func Fig9(w io.Writer, spec Spec) (*Fig3Result, error) {
	results, err := RunAllStrategies(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Figure 9 — overall time (optimization + maintenance): %s / %s\n", spec.Dataset, spec.Mode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "strategy\ttotal (s)\tmaintenance (s)\toptimization (s)\n")
	for _, name := range maintain.StrategyNames() {
		r := results[name]
		opt := r.TotalOptimization()
		if name == "baseline" {
			opt = r.AvgTripleGen() * float64(len(r.Batches))
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.6f\n", name, r.TotalMaintenance()+opt, r.TotalMaintenance(), opt)
	}
	tw.Flush()
	return &Fig3Result{Spec: spec, Results: results}, nil
}

// Fig6Row is one bar pair of Figure 6: a query shape answered from a view
// with a different shape.
type Fig6Row struct {
	Name            string
	CompleteSeconds float64
	ViewSeconds     float64
	DeltaCard       int64
	QueryCard       int64
	ChoseView       bool
}

// Fig6Pairs returns the paper's four (query ← view) shape pairs, as 2-D
// cross-sections that get embedded over the time window.
func Fig6Pairs() []struct {
	Name        string
	Query, View *shape.Shape
} {
	return []struct {
		Name        string
		Query, View *shape.Shape
	}{
		{"L1(3)<-Linf(2)", shape.L1(2, 3), shape.Linf(2, 2)},
		{"L2(2)<-Linf(2)", shape.L2(2, 2), shape.Linf(2, 2)},
		{"Linf(1)<-L1(1)", shape.Linf(2, 1), shape.L1(2, 1)},
		{"Linf(1)<-Linf(2)", shape.Linf(2, 1), shape.Linf(2, 2)},
	}
}

// Fig6 reproduces the query-integration experiment: for each shape pair,
// answer the query from scratch and from the view, reporting both
// execution costs. The view wins exactly when |Δ|/|query| < 1.
func Fig6(w io.Writer, spec Spec) ([]Fig6Row, error) {
	if spec.Dataset == GEO {
		return nil, fmt.Errorf("bench: Figure 6 runs on the PTF dataset")
	}
	var rows []Fig6Row
	for _, pair := range Fig6Pairs() {
		data, err := workload.GeneratePTF(spec.PTF, spec.Mode)
		if err != nil {
			return nil, err
		}
		window := map[int][2]int64{0: {-spec.PTF5Window, 0}}
		viewShape, err := shape.Embed(pair.View, 3, []int{1, 2}, window)
		if err != nil {
			return nil, err
		}
		queryShape, err := shape.Embed(pair.Query, 3, []int{1, 2}, window)
		if err != nil {
			return nil, err
		}
		cl, err := spec.Cluster()
		if err != nil {
			return nil, err
		}
		if err := cl.LoadArray(data.Base, spec.Placement()); err != nil {
			return nil, err
		}
		def, err := workload.CountView("V", data.Schema, viewShape)
		if err != nil {
			return nil, err
		}
		if err := maintain.BuildView(cl, def, spec.Placement()); err != nil {
			return nil, err
		}
		eng, err := query.NewEngine(cl, def, spec.Params)
		if err != nil {
			return nil, err
		}
		complete, err := eng.Answer(queryShape, query.ForceComplete)
		if err != nil {
			return nil, err
		}
		withView, err := eng.Answer(queryShape, query.ForceView)
		if err != nil {
			return nil, err
		}
		choice, err := eng.Decide(queryShape)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{
			Name:            pair.Name,
			CompleteSeconds: complete.Ledger.Cost(),
			ViewSeconds:     withView.Ledger.Cost(),
			DeltaCard:       choice.DeltaCard,
			QueryCard:       choice.QueryCard,
			ChoseView:       choice.UseView,
		})
	}
	fmt.Fprintf(w, "Figure 6 — differential query vs. complete similarity join (PTF)\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query<-view\tcomplete (s)\tview (s)\t|Δ|/|query|\tcost model picks\n")
	for _, r := range rows {
		pick := "complete"
		if r.ChoseView {
			pick = "view"
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%d/%d\t%s\n",
			r.Name, r.CompleteSeconds, r.ViewSeconds, r.DeltaCard, r.QueryCard, pick)
	}
	tw.Flush()
	return rows, nil
}

// Fig10aRow is one point of the batch-size sensitivity sweep.
type Fig10aRow struct {
	Detections  int
	DeltaChunks int
	Maintenance map[string]float64
}

// Fig10a reproduces Appendix C.2: batches with exponentially increasing
// size fed in order; per-batch maintenance time per strategy.
func Fig10a(w io.Writer, spec Spec, sizes []int) ([]Fig10aRow, error) {
	if len(sizes) == 0 {
		sizes = []int{50, 100, 200, 400, 800, 1600}
	}
	rows := make([]Fig10aRow, len(sizes))
	for i, s := range sizes {
		rows[i] = Fig10aRow{Detections: s, Maintenance: make(map[string]float64)}
	}
	for _, name := range maintain.StrategyNames() {
		data, err := workload.GeneratePTFSizes(spec.PTF, sizes)
		if err != nil {
			return nil, err
		}
		res, err := runBatches(spec, maintain.Strategies()[name], data)
		if err != nil {
			return nil, err
		}
		for i, b := range res.Batches {
			rows[i].Maintenance[name] = b.Maintenance
			rows[i].DeltaChunks = data.Batches[i].NumChunks()
		}
	}
	fmt.Fprintf(w, "Figure 10a — sensitivity to batch size (%s, real updates)\n", spec.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "detections\tchunks\tbaseline (s)\tdifferential (s)\treassign (s)\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.4f\t%.4f\t%.4f\n", r.Detections, r.DeltaChunks,
			r.Maintenance["baseline"], r.Maintenance["differential"], r.Maintenance["reassign"])
	}
	tw.Flush()
	return rows, nil
}

// Fig10bRow is one point of the batch-count sensitivity sweep.
type Fig10bRow struct {
	NumBatches  int
	Maintenance map[string]float64
}

// Fig10b reproduces Appendix C.3: a fixed update workload divided into a
// varying number of batches; total maintenance time per strategy.
func Fig10b(w io.Writer, spec Spec, totalDetections int, counts []int) ([]Fig10bRow, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 5, 10, 20}
	}
	var rows []Fig10bRow
	for _, k := range counts {
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = totalDetections / k
		}
		row := Fig10bRow{NumBatches: k, Maintenance: make(map[string]float64)}
		for _, name := range maintain.StrategyNames() {
			data, err := workload.GeneratePTFSizes(spec.PTF, sizes)
			if err != nil {
				return nil, err
			}
			res, err := runBatches(spec, maintain.Strategies()[name], data)
			if err != nil {
				return nil, err
			}
			row.Maintenance[name] = res.TotalMaintenance()
		}
		rows = append(rows, row)
	}
	fmt.Fprintf(w, "Figure 10b — sensitivity to number of batches (%s, %d detections total)\n", spec.Dataset, totalDetections)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "#batches\tbaseline (s)\tdifferential (s)\treassign (s)\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", r.NumBatches,
			r.Maintenance["baseline"], r.Maintenance["differential"], r.Maintenance["reassign"])
	}
	tw.Flush()
	return rows, nil
}

// Fig10cRow is one point of the update-spread sensitivity sweep.
type Fig10cRow struct {
	Spread      float64
	Maintenance map[string]float64
}

// Fig10c reproduces Appendix C.4: the spatial spread of updates varies
// while batch count and size stay fixed; total maintenance time per
// strategy. Larger spread means less sharing and longer maintenance.
func Fig10c(w io.Writer, spec Spec, spreads []float64) ([]Fig10cRow, error) {
	if len(spreads) == 0 {
		spreads = []float64{0.1, 0.2, 0.8}
	}
	// As in the paper, the number of sampled chunks per batch is fixed
	// while their spatial dispersion varies. The hash layout isolates the
	// sharing effect: wider spread means fewer deltas per base chunk, so
	// less shared computation and communication; under the
	// space-partitioned layout the trend inverts because a narrow spread
	// concentrates the whole batch on one band's node.
	spec.HashLayout = true
	spec.PTF.BaseNights = 4 // four slabs of dense background catalog
	numChunks := spec.PTF.DetectionsPerNight / 5
	if numChunks < 20 {
		numChunks = 20
	}
	var rows []Fig10cRow
	for _, sp := range spreads {
		row := Fig10cRow{Spread: sp, Maintenance: make(map[string]float64)}
		for _, name := range maintain.StrategyNames() {
			data, err := workload.GeneratePTFSpread(spec.PTF, numChunks, 5, sp)
			if err != nil {
				return nil, err
			}
			res, err := runBatches(spec, maintain.Strategies()[name], data)
			if err != nil {
				return nil, err
			}
			row.Maintenance[name] = res.TotalMaintenance()
		}
		rows = append(rows, row)
	}
	fmt.Fprintf(w, "Figure 10c — sensitivity to update spread (%s)\n", spec.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "spread\tbaseline (s)\tdifferential (s)\treassign (s)\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.4f\t%.4f\n", r.Spread,
			r.Maintenance["baseline"], r.Maintenance["differential"], r.Maintenance["reassign"])
	}
	tw.Flush()
	return rows, nil
}

// ScalingRow is one point of the cluster-size scaling experiment — the
// paper's future-work direction ("in the case of a large cluster with
// thousands of nodes N, solutions to accelerate this algorithm include the
// parallel processing of the inner loop over the nodes").
type ScalingRow struct {
	Nodes        int
	Maintenance  map[string]float64
	Optimization map[string]float64
}

// Scaling sweeps the worker count for a fixed workload, reporting total
// maintenance (simulated) and average optimization time (measured) per
// strategy. Parallel candidate evaluation kicks in automatically on 16+
// nodes.
func Scaling(w io.Writer, spec Spec, nodeCounts []int) ([]ScalingRow, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{2, 4, 8, 16, 32}
	}
	var rows []ScalingRow
	for _, n := range nodeCounts {
		s := spec
		s.Nodes = n
		s.Params.ParallelCandidates = true
		row := ScalingRow{
			Nodes:        n,
			Maintenance:  make(map[string]float64),
			Optimization: make(map[string]float64),
		}
		for _, name := range maintain.StrategyNames() {
			res, err := RunSequence(s, name)
			if err != nil {
				return nil, err
			}
			row.Maintenance[name] = res.TotalMaintenance()
			row.Optimization[name] = res.AvgOptimization()
		}
		rows = append(rows, row)
	}
	fmt.Fprintf(w, "Scaling — cluster size sweep: %s / %s\n", spec.Dataset, spec.Mode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "nodes\tbaseline (s)\tdifferential (s)\treassign (s)\treassign opt (s)\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\t%.4f\n", r.Nodes,
			r.Maintenance["baseline"], r.Maintenance["differential"],
			r.Maintenance["reassign"], r.Optimization["reassign"])
	}
	tw.Flush()
	return rows, nil
}
