package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/query"
	"github.com/arrayview/arrayview/internal/serve"
	"github.com/arrayview/arrayview/internal/shape"
)

// ServeMixLeg is one pass of the repeated-shape query mix: the same
// deterministic schedule of repeated and cold query shapes, answered by a
// daemon with the query fast path either disabled (the uncached baseline)
// or enabled.
type ServeMixLeg struct {
	Label   string
	Queries int
	Batches int
	Seconds float64
	QPS     float64
	// Latency percentiles over all queries, then split by class:
	// repeated shapes recur every round, cold shapes never repeat within
	// the memo's horizon.
	P50Millis         float64
	P99Millis         float64
	RepeatedP50Millis float64
	RepeatedP99Millis float64
	ColdP50Millis     float64
	ColdP99Millis     float64
	// Overloads counts admission rejections; QueryErrors counts queries
	// that failed outright.
	Overloads   int64
	QueryErrors int
	// Violations counts per-epoch oracle divergences: the serving engine's
	// answer compared against a fast-path-free engine on the same pinned
	// snapshot. Must be zero.
	Violations int
	// Fast-path counters from the daemon (all zero on the uncached leg).
	ViewHits   int64
	ViewMisses int64
	MemoHits   int64
	MemoMisses int64
	SolveSkips int64
}

// ServeMixResult compares the repeated-shape mix with the fast path off
// and on, over identical seeded data and an identical query schedule.
type ServeMixResult struct {
	Spec     Spec
	Workers  int
	PerRound int
	Uncached *ServeMixLeg
	Cached   *ServeMixLeg
	// SpeedupQPS is Cached.QPS / Uncached.QPS; P99ReductionPct is the
	// relative p99 improvement of the cached leg, in percent.
	SpeedupQPS      float64
	P99ReductionPct float64
	// RepeatedSpeedupP50 is the median repeated-shape latency ratio
	// (uncached / cached): the direct payoff of the view cache and memo.
	RepeatedSpeedupP50 float64
}

// ServeMix measures the query fast path end to end: two sequential legs on
// identically seeded clusters run the same mixed schedule — four out of
// five queries repeat hot shapes (the view shape and two Lp balls,
// recurring every round: the multi-tenant dashboard case), one in five is
// a cold shape whose offset set cycles past the memo capacity, so every
// one plans from scratch — while maintenance batches commit between
// rounds.
// The first leg serves cold (DisableFastPath), the second with the view
// cache, plan memo, and parallel joins engaged. Every round also audits
// the serving engine against a fast-path-free oracle on one shared pinned
// snapshot.
func ServeMix(w io.Writer, spec Spec, workers, perRound int) (*ServeMixResult, error) {
	if workers <= 0 {
		workers = 4
	}
	if perRound <= 0 {
		perRound = 40
	}
	out := &ServeMixResult{Spec: spec, Workers: workers, PerRound: perRound}
	var err error
	if out.Uncached, err = serveMixLeg(spec, workers, perRound, false); err != nil {
		return nil, fmt.Errorf("bench: serve mix uncached: %w", err)
	}
	if out.Cached, err = serveMixLeg(spec, workers, perRound, true); err != nil {
		return nil, fmt.Errorf("bench: serve mix cached: %w", err)
	}
	if out.Uncached.QPS > 0 {
		out.SpeedupQPS = out.Cached.QPS / out.Uncached.QPS
	}
	if out.Uncached.P99Millis > 0 {
		out.P99ReductionPct = 100 * (1 - out.Cached.P99Millis/out.Uncached.P99Millis)
	}
	if out.Cached.RepeatedP50Millis > 0 {
		out.RepeatedSpeedupP50 = out.Uncached.RepeatedP50Millis / out.Cached.RepeatedP50Millis
	}
	out.WriteTable(w)
	return out, nil
}

// WriteTable renders the human-readable mix report.
func (r *ServeMixResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Repeated-shape mix — %s / %s, %d workers x %d queries/round\n",
		r.Spec.Dataset, r.Spec.Mode, r.Workers, r.PerRound)
	for _, l := range []*ServeMixLeg{r.Uncached, r.Cached} {
		fmt.Fprintf(w, "  %-8s  %6.0f qps  p50 %6.2fms  p99 %6.2fms  repeated-p50 %6.2fms  cold-p50 %6.2fms  violations %d\n",
			l.Label, l.QPS, l.P50Millis, l.P99Millis,
			l.RepeatedP50Millis, l.ColdP50Millis, l.Violations)
	}
	fmt.Fprintf(w, "  fast path: %.2fx qps, p99 -%.0f%%, repeated-p50 %.2fx (view %d/%d, memo %d/%d, solves skipped %d)\n",
		r.SpeedupQPS, r.P99ReductionPct, r.RepeatedSpeedupP50,
		r.Cached.ViewHits, r.Cached.ViewMisses,
		r.Cached.MemoHits, r.Cached.MemoMisses, r.Cached.SolveSkips)
}

// mixRepeatedShapes are the recurring query shapes: the view shape itself
// (the identity fast case) plus two Lp balls that exercise the Δ paths.
func mixRepeatedShapes(viewShape *shape.Shape) []*shape.Shape {
	d := viewShape.NumDims()
	return []*shape.Shape{viewShape, shape.Linf(d, 1), shape.L1(d, 2)}
}

// mixColdShape builds the c-th cold query shape: a unit cross plus two
// extra symmetric offset pairs, each drawn from a 5x5 grid, so consecutive
// indices cycle through 625 distinct offset sets — past the decision
// memo's FIFO capacity, keeping every cold query a memo miss — while every
// offset stays within radius 5, so cold joins cost about as much as the
// repeated Lp balls rather than dominating the tail.
func mixColdShape(dims int, c int) (*shape.Shape, error) {
	offs := [][]int64{make([]int64, dims)}
	for d := 0; d < dims; d++ {
		for _, s := range []int64{1, -1} {
			o := make([]int64, dims)
			o[d] = s
			offs = append(offs, o)
		}
	}
	addPair := func(dx, dy int64) {
		ex := make([]int64, dims)
		ex[0] = dx
		if dims > 1 {
			ex[1] = dy
		}
		neg := make([]int64, dims)
		for d := range ex {
			neg[d] = -ex[d]
		}
		offs = append(offs, ex, neg)
	}
	addPair(int64(1+c%5), int64(1+(c/5)%5))
	addPair(int64(1+(c/25)%5), -int64(1+(c/125)%5))
	return shape.FromOffsets(fmt.Sprintf("cold-%d", c), offs)
}

func serveMixLeg(spec Spec, workers, perRound int, fast bool) (*ServeMixLeg, error) {
	data, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	cl, err := spec.Cluster()
	if err != nil {
		return nil, err
	}
	if err := cl.LoadArray(data.Base, &cluster.RoundRobin{}); err != nil {
		return nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, err
	}
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		return nil, err
	}
	m, err := maintain.NewMaintainer(cl, def, nil, spec.Params)
	if err != nil {
		return nil, err
	}
	eng, err := query.NewEngine(cl, def, spec.Params)
	if err != nil {
		return nil, err
	}
	// The oracle never gets a fast path: every audit answer is recomputed
	// from scratch on the shared pinned snapshot.
	oracle, err := query.NewEngine(cl, def, spec.Params)
	if err != nil {
		return nil, err
	}

	label := "uncached"
	if fast {
		label = "cached"
	}
	srv := serve.NewServer(eng, &serve.Config{
		MaxConcurrent:   workers * 2,
		QueueDepth:      workers * 4,
		DisableFastPath: !fast,
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer srv.Close()
	serving := srv.Engine()

	repeated := mixRepeatedShapes(def.Pred.Shape)
	dims := def.Pred.Shape.NumDims()

	type obs struct {
		cold bool
		lat  time.Duration
	}
	outs := make([][]obs, workers)
	errCounts := make([]int, workers)
	clients := make([]*serve.Client, workers)
	for i := range clients {
		c, err := serve.NewClient(srv.Addr(), def.Schema(), nil)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		clients[i] = c
	}

	// Deterministic schedule: each round every worker alternates repeated
	// and cold shapes; cold indices come from a disjoint per-worker stride
	// so the two legs see the identical shape sequence.
	runRound := func(round int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		t0 := time.Now()
		for i := 0; i < workers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := 0; q < perRound; q++ {
					var qs *shape.Shape
					cold := q%5 == 4
					if cold {
						c := (round*workers+i)*perRound + q
						var err error
						if qs, err = mixColdShape(dims, c); err != nil {
							errs[i] = err
							return
						}
					} else {
						qs = repeated[(q/5*4+q%5+i)%len(repeated)]
					}
					t := time.Now()
					if _, err := clients[i].Query(qs, query.Auto); err != nil {
						if !serve.IsOverload(err) {
							errCounts[i]++
						}
						continue
					}
					outs[i] = append(outs[i], obs{cold: cold, lat: time.Since(t)})
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}

	// audit compares the serving engine (fast path and all) against the
	// oracle on one shared pinned snapshot: byte-for-byte cell equality.
	violations := 0
	audit := func(round int) error {
		snap, err := cl.Epochs().Acquire()
		if err != nil {
			return err
		}
		defer snap.Release()
		probes := append([]*shape.Shape{}, repeated...)
		if cs, err := mixColdShape(dims, round); err == nil {
			probes = append(probes, cs)
		}
		ctx := context.Background()
		for _, qs := range probes {
			got, err := serving.AnswerSnapshot(ctx, snap, srv.ReadCache(), qs, query.Auto)
			if err != nil {
				return err
			}
			want, err := oracle.AnswerSnapshot(ctx, snap, nil, qs, query.Auto)
			if err != nil {
				return err
			}
			if serveFingerprint(got.Array) != serveFingerprint(want.Array) {
				violations++
			}
		}
		return nil
	}

	var elapsed time.Duration
	batches := 0
	for round := 0; ; round++ {
		d, err := runRound(round)
		if err != nil {
			return nil, err
		}
		elapsed += d
		if err := audit(round); err != nil {
			return nil, err
		}
		if round >= len(data.Batches) {
			break
		}
		if _, err := m.ApplyBatch(data.Batches[round]); err != nil {
			return nil, err
		}
		batches++
	}

	var all, rep, cold []time.Duration
	errsTotal := 0
	for i := range outs {
		errsTotal += errCounts[i]
		for _, o := range outs[i] {
			all = append(all, o.lat)
			if o.cold {
				cold = append(cold, o.lat)
			} else {
				rep = append(rep, o.lat)
			}
		}
	}
	pct := func(ls []time.Duration, p float64) float64 {
		if len(ls) == 0 {
			return 0
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		return float64(ls[int(p*float64(len(ls)-1))]) / float64(time.Millisecond)
	}
	st := srv.Stats()
	leg := &ServeMixLeg{
		Label:             label,
		Queries:           len(all),
		Batches:           batches,
		Seconds:           elapsed.Seconds(),
		P50Millis:         pct(all, 0.50),
		P99Millis:         pct(all, 0.99),
		RepeatedP50Millis: pct(rep, 0.50),
		RepeatedP99Millis: pct(rep, 0.99),
		ColdP50Millis:     pct(cold, 0.50),
		ColdP99Millis:     pct(cold, 0.99),
		Overloads:         st.Rejected,
		QueryErrors:       errsTotal,
		Violations:        violations,
		ViewHits:          st.FastPath.ViewHits,
		ViewMisses:        st.FastPath.ViewMisses,
		MemoHits:          st.FastPath.MemoHits,
		MemoMisses:        st.FastPath.MemoMisses,
		SolveSkips:        st.FastPath.SolveSkips,
	}
	if leg.Seconds > 0 {
		leg.QPS = float64(leg.Queries) / leg.Seconds
	}
	return leg, nil
}
