package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/storage"
	"github.com/arrayview/arrayview/internal/workload"
)

// ChaosClassResult aggregates one fault class's run of the batch sequence.
type ChaosClassResult struct {
	Class          string
	Batches        int
	Completed      int
	Failed         int
	CompletionRate float64
	// WallSeconds is the measured wall-clock of the maintenance loop;
	// Overhead is WallSeconds relative to the fault-free class — the price
	// of retries, replica reads, and re-planned work under that fault.
	WallSeconds float64
	Overhead    float64
	Faults      cluster.FaultCounts
	// FinalStateOK reports whether the end-of-sequence base and view equal
	// a fault-free replay of exactly the batches that committed — a failed
	// batch that left a hybrid behind, or a committed batch that lost
	// writes, shows up here.
	FinalStateOK bool
}

// ChaosResult is the chaos experiment: the same seeded batch sequence run
// once per injected fault class.
type ChaosResult struct {
	Dataset  Dataset
	Mode     workload.BatchMode
	Strategy string
	Classes  []ChaosClassResult
}

// chaosClass describes one fault class of the experiment matrix.
type chaosClass struct {
	name   string
	inject func(ff *cluster.FaultFabric)
	// blackoutBatch, when >= 0, blacks node 0 out for that batch (0-based)
	// and restores it afterwards.
	blackoutBatch int
}

// Chaos runs the spec's batch sequence once per fault class on a
// fault-injecting fabric and reports completion rate and failover overhead
// per class. Every run sees identical data (same seed); faults are seeded
// too, so the whole experiment is reproducible.
func Chaos(w io.Writer, spec Spec) (*ChaosResult, error) {
	const strategy = "reassign"
	classes := []chaosClass{
		{name: "fault-free", blackoutBatch: -1},
		{name: "latency", blackoutBatch: -1, inject: func(ff *cluster.FaultFabric) {
			ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: cluster.AnyOp,
				Kind: cluster.FaultLatency, Latency: 200 * time.Microsecond, P: 0.2})
		}},
		{name: "ack-loss", blackoutBatch: -1, inject: func(ff *cluster.FaultFabric) {
			ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: "Put",
				Kind: cluster.FaultDropAfterWrite, P: 0.05})
		}},
		{name: "node-errors", blackoutBatch: -1, inject: func(ff *cluster.FaultFabric) {
			// A bursty episode of failed reads on one node, then recovery.
			ff.Inject(&cluster.FaultRule{Node: 0, Op: "Get",
				Kind: cluster.FaultError, P: 0.5, Count: 40})
		}},
		{name: "blackout", blackoutBatch: 1},
	}

	res := &ChaosResult{Dataset: spec.Dataset, Mode: spec.Mode, Strategy: strategy}
	fmt.Fprintf(w, "Chaos: %s/%s, %d nodes, strategy %s\n", spec.Dataset, spec.Mode, spec.Nodes, strategy)
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %8s %6s\n",
		"class", "batches", "completed", "rate", "wall(s)", "overhead", "state")
	var baseWall float64
	for _, cc := range classes {
		r, err := runChaosClass(spec, strategy, cc)
		if err != nil {
			return nil, fmt.Errorf("bench: chaos class %s: %w", cc.name, err)
		}
		if cc.name == "fault-free" {
			baseWall = r.WallSeconds
		}
		if baseWall > 0 {
			r.Overhead = r.WallSeconds / baseWall
		}
		res.Classes = append(res.Classes, *r)
		okStr := "ok"
		if !r.FinalStateOK {
			okStr = "FAIL"
		}
		fmt.Fprintf(w, "%-12s %8d %10d %9.0f%% %10.3f %7.2fx %6s\n",
			r.Class, r.Batches, r.Completed, r.CompletionRate*100, r.WallSeconds, r.Overhead, okStr)
	}
	return res, nil
}

// runChaosClass runs the full batch sequence under one fault class.
func runChaosClass(spec Spec, strategy string, cc chaosClass) (*ChaosClassResult, error) {
	planner, ok := maintain.Strategies()[strategy]
	if !ok {
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
	data, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	stores := make([]*storage.Store, spec.Nodes)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	ff := cluster.NewFaultFabric(cluster.NewLocalFabric(stores), 1)
	cl, err := cluster.New(spec.Nodes, cluster.WithWorkersPerNode(spec.Workers), cluster.WithFabric(ff.AsFabric()))
	if err != nil {
		return nil, err
	}
	if err := cl.LoadArray(data.Base, spec.Placement()); err != nil {
		return nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, err
	}
	if err := maintain.BuildView(cl, def, spec.Placement()); err != nil {
		return nil, err
	}
	m, err := maintain.NewMaintainer(cl, def, planner, spec.Params)
	if err != nil {
		return nil, err
	}
	m.SetPlacements(spec.Placement(), spec.Placement())

	if cc.inject != nil {
		cc.inject(ff)
	}
	r := &ChaosClassResult{Class: cc.name, Batches: len(data.Batches)}
	var committed []int
	start := time.Now()
	for i, batch := range data.Batches {
		// Re-replicate before every batch: cleanup scrubs the scratch
		// replicas, and failover needs somewhere to go.
		replicateOnce(cl, def.Alpha.Name)
		replicateOnce(cl, def.Name)
		if cc.blackoutBatch == i {
			ff.Blackout(0)
		}
		_, err := m.ApplyBatch(batch)
		if cc.blackoutBatch == i {
			ff.Restore(0)
		}
		if err != nil {
			r.Failed++
			continue
		}
		r.Completed++
		committed = append(committed, i)
	}
	r.WallSeconds = time.Since(start).Seconds()
	if r.Batches > 0 {
		r.CompletionRate = float64(r.Completed) / float64(r.Batches)
	}
	r.Faults = ff.FaultCounts()

	// The chaos contract: the surviving state must equal a fault-free
	// replay of exactly the batches that committed — failed batches rolled
	// back completely, committed ones lost nothing.
	ff.ClearRules()
	base, err := cl.Gather(def.Alpha.Name)
	if err != nil {
		return nil, err
	}
	got, err := cl.Gather(def.Name)
	if err != nil {
		return nil, err
	}
	wantBase, wantView, err := replayClean(spec, planner, committed)
	if err != nil {
		return nil, err
	}
	r.FinalStateOK = arraysEqual(base, wantBase) && arraysEqual(got, wantView)
	return r, nil
}

// replayClean applies the given batches (by index, same seeded data) on a
// fresh fault-free cluster and returns the final base and view.
func replayClean(spec Spec, planner maintain.Planner, batches []int) (*array.Array, *array.Array, error) {
	data, err := spec.Generate()
	if err != nil {
		return nil, nil, err
	}
	cl, err := spec.Cluster()
	if err != nil {
		return nil, nil, err
	}
	if err := cl.LoadArray(data.Base, spec.Placement()); err != nil {
		return nil, nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, nil, err
	}
	if err := maintain.BuildView(cl, def, spec.Placement()); err != nil {
		return nil, nil, err
	}
	m, err := maintain.NewMaintainer(cl, def, planner, spec.Params)
	if err != nil {
		return nil, nil, err
	}
	m.SetPlacements(spec.Placement(), spec.Placement())
	for _, i := range batches {
		if _, err := m.ApplyBatch(data.Batches[i]); err != nil {
			return nil, nil, fmt.Errorf("clean replay of batch %d: %w", i, err)
		}
	}
	base, err := cl.Gather(def.Alpha.Name)
	if err != nil {
		return nil, nil, err
	}
	vw, err := cl.Gather(def.Name)
	if err != nil {
		return nil, nil, err
	}
	return base, vw, nil
}

// replicateOnce best-effort ships one replica of each chunk of the array
// to the next node over; errors are ignored (a dead node just means no
// replica lands there this round).
func replicateOnce(cl *cluster.Cluster, name string) {
	cat := cl.Catalog()
	n := cl.NumNodes()
	if n < 2 {
		return
	}
	for _, key := range cat.Keys(name) {
		home, ok := cat.Home(name, key)
		if !ok {
			continue
		}
		_ = cl.Transfer(nil, name, key, home, (home+1)%n)
	}
}

// arraysEqual compares two aggregate states cell-wise, treating a missing
// cell as an all-zero tuple.
func arraysEqual(a, b *array.Array) bool {
	ok := true
	check := func(x, y *array.Array) {
		x.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := y.Get(p)
			if !found {
				for _, v := range tup {
					if v != 0 {
						ok = false
						return false
					}
				}
				return true
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
	}
	check(a, b)
	check(b, a)
	return ok
}
