package bench

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/workload"
)

// BatchResult is the outcome of maintaining one batch.
type BatchResult struct {
	Batch        int
	Maintenance  float64 // simulated seconds (Eq. 1 plan cost)
	Optimization float64 // measured seconds (triple gen + planning)
	TripleGen    float64 // measured seconds (triple gen only)
	Exec         float64 // measured seconds (plan execution on the fabric)
	Units        int
	Triples      int
	Transfers    int
	// Phases breaks Exec down by pipeline phase (transfer, view-move,
	// join, merge, catalog-refresh, ingest, cleanup); NodeTasks is the
	// per-node join-task busy time. Both come from the batch's obs.Trace.
	Phases    []obs.PhaseTiming
	NodeTasks []obs.NodeTiming
}

// SeqResult is a full batch sequence under one strategy.
type SeqResult struct {
	Spec     Spec
	Strategy string
	Batches  []BatchResult
	// Fabric is the end-of-sequence per-node fabric snapshot: storage
	// footprint plus cumulative data-plane counters (bytes, frames,
	// retries on a network fabric; operation/payload counts locally).
	Fabric []cluster.FabricStats
}

// TotalMaintenance sums the per-batch maintenance times.
func (r *SeqResult) TotalMaintenance() float64 {
	t := 0.0
	for _, b := range r.Batches {
		t += b.Maintenance
	}
	return t
}

// TotalOptimization sums the per-batch optimization times.
func (r *SeqResult) TotalOptimization() float64 {
	t := 0.0
	for _, b := range r.Batches {
		t += b.Optimization
	}
	return t
}

// AvgOptimization is the Figure 5 quantity.
func (r *SeqResult) AvgOptimization() float64 {
	if len(r.Batches) == 0 {
		return 0
	}
	return r.TotalOptimization() / float64(len(r.Batches))
}

// AvgTripleGen averages the triple-generation share (the "baseline"
// optimization time of Figure 5).
func (r *SeqResult) AvgTripleGen() float64 {
	if len(r.Batches) == 0 {
		return 0
	}
	t := 0.0
	for _, b := range r.Batches {
		t += b.TripleGen
	}
	return t / float64(len(r.Batches))
}

// RunSequence generates the spec's dataset fresh (seeded, so identical
// across strategies), loads base and view, and applies every batch with
// the named strategy.
func RunSequence(spec Spec, strategy string) (*SeqResult, error) {
	planner, ok := maintain.Strategies()[strategy]
	if !ok {
		return nil, fmt.Errorf("bench: unknown strategy %q", strategy)
	}
	data, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	return runBatches(spec, planner, data)
}

// runBatches drives a pre-generated dataset through maintenance on the
// spec's default (in-process) cluster.
func runBatches(spec Spec, planner maintain.Planner, data *workload.Dataset) (*SeqResult, error) {
	cl, err := spec.Cluster()
	if err != nil {
		return nil, err
	}
	return runBatchesOn(cl, spec, planner, data)
}

// runBatchesOn drives a pre-generated dataset through maintenance on an
// already-built cluster, whatever fabric it runs on.
func runBatchesOn(cl *cluster.Cluster, spec Spec, planner maintain.Planner, data *workload.Dataset) (*SeqResult, error) {
	if err := cl.LoadArray(data.Base, spec.Placement()); err != nil {
		return nil, err
	}
	def, err := spec.ViewFor(data)
	if err != nil {
		return nil, err
	}
	if err := maintain.BuildView(cl, def, spec.Placement()); err != nil {
		return nil, err
	}
	m, err := maintain.NewMaintainer(cl, def, planner, spec.Params)
	if err != nil {
		return nil, err
	}
	m.SetPlacements(spec.Placement(), spec.Placement())
	res := &SeqResult{Spec: spec, Strategy: planner.Name()}
	for i, batch := range data.Batches {
		rep, err := m.ApplyBatch(batch)
		if err != nil {
			return nil, fmt.Errorf("bench: %s batch %d: %w", planner.Name(), i, err)
		}
		res.Batches = append(res.Batches, BatchResult{
			Batch:        i + 1,
			Maintenance:  rep.MaintenanceSeconds,
			Optimization: rep.OptimizationSeconds,
			TripleGen:    rep.TripleGenSeconds,
			Exec:         rep.ExecSeconds,
			Units:        rep.NumUnits,
			Triples:      rep.NumTriples,
			Transfers:    rep.NumTransfers,
			Phases:       rep.Trace.Phases(),
			NodeTasks:    rep.Trace.Nodes(),
		})
	}
	for node := 0; node < cl.NumNodes(); node++ {
		st, err := cl.Fabric().Stats(node)
		if err != nil {
			return nil, fmt.Errorf("bench: fabric stats for node %d: %w", node, err)
		}
		res.Fabric = append(res.Fabric, st)
	}
	return res, nil
}

// RunAllStrategies runs the spec once per built-in strategy over identical
// data.
func RunAllStrategies(spec Spec) (map[string]*SeqResult, error) {
	out := make(map[string]*SeqResult)
	for _, name := range maintain.StrategyNames() {
		r, err := RunSequence(spec, name)
		if err != nil {
			return nil, err
		}
		out[name] = r
	}
	return out, nil
}
