package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// AblationRow is one configuration of a design-choice ablation.
type AblationRow struct {
	Config           string
	TotalMaintenance float64
}

// AblationPairOrder compares Algorithm 1's randomized pair order against a
// deterministic largest-pair-first order (DESIGN.md §5).
func AblationPairOrder(w io.Writer, spec Spec) ([]AblationRow, error) {
	var rows []AblationRow
	for _, sorted := range []bool{false, true} {
		s := spec
		s.Params.SortedPairOrder = sorted
		res, err := RunSequence(s, "reassign")
		if err != nil {
			return nil, err
		}
		name := "random order"
		if sorted {
			name = "largest-first order"
		}
		rows = append(rows, AblationRow{Config: name, TotalMaintenance: res.TotalMaintenance()})
	}
	printAblation(w, "pair iteration order (Algorithm 1)", spec, rows)
	return rows, nil
}

// AblationWindow varies the history window length of array reassignment.
func AblationWindow(w io.Writer, spec Spec, windows []int) ([]AblationRow, error) {
	if len(windows) == 0 {
		windows = []int{0, 1, 5, 10}
	}
	var rows []AblationRow
	for _, win := range windows {
		s := spec
		s.Params.Window = win
		res, err := RunSequence(s, "reassign")
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:           fmt.Sprintf("window=%d", win),
			TotalMaintenance: res.TotalMaintenance(),
		})
	}
	printAblation(w, "history window length (Algorithm 3)", spec, rows)
	return rows, nil
}

// AblationCPUQuota varies Algorithm 3's per-node CPU quota factor.
func AblationCPUQuota(w io.Writer, spec Spec, factors []float64) ([]AblationRow, error) {
	if len(factors) == 0 {
		factors = []float64{0, 0.5, 1, 4}
	}
	var rows []AblationRow
	for _, f := range factors {
		s := spec
		s.Params.CPUThresholdFactor = f
		res, err := RunSequence(s, "reassign")
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:           fmt.Sprintf("cpu_thr x%.1f", f),
			TotalMaintenance: res.TotalMaintenance(),
		})
	}
	printAblation(w, "CPU quota factor (Algorithm 3)", spec, rows)
	return rows, nil
}

// AblationLambda varies the current-vs-history weight λ of Eq. 1.
func AblationLambda(w io.Writer, spec Spec, lambdas []float64) ([]AblationRow, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	var rows []AblationRow
	for _, l := range lambdas {
		s := spec
		s.Params.Lambda = l
		res, err := RunSequence(s, "reassign")
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:           fmt.Sprintf("lambda=%.2f", l),
			TotalMaintenance: res.TotalMaintenance(),
		})
	}
	printAblation(w, "current-vs-history weight λ", spec, rows)
	return rows, nil
}

func printAblation(w io.Writer, what string, spec Spec, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation — %s: %s / %s\n", what, spec.Dataset, spec.Mode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "config\ttotal maintenance (s)\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\n", r.Config, r.TotalMaintenance)
	}
	tw.Flush()
}

// AblationCellPruning compares chunk-granularity triple generation against
// the cell-granularity (bounding-box) alternative the paper discusses:
// pruning drops join pairs that cannot match, at the price of richer
// metadata.
func AblationCellPruning(w io.Writer, spec Spec) ([]AblationRow, error) {
	var rows []AblationRow
	for _, pruning := range []bool{false, true} {
		s := spec
		s.Params.CellPruning = pruning
		res, err := RunSequence(s, "reassign")
		if err != nil {
			return nil, err
		}
		name := "chunk granularity"
		if pruning {
			name = "cell granularity (bbox pruning)"
		}
		units := 0
		for _, b := range res.Batches {
			units += b.Units
		}
		rows = append(rows, AblationRow{
			Config:           fmt.Sprintf("%s, %d units", name, units),
			TotalMaintenance: res.TotalMaintenance(),
		})
	}
	printAblation(w, "triple granularity", spec, rows)
	return rows, nil
}
