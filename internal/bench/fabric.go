package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/transport"
	"github.com/arrayview/arrayview/internal/workload"
)

// FabricValidationResult holds, for each strategy, the per-batch
// ledger-predicted maintenance cost next to the measured wall-clock of
// executing the same plan on the chosen fabric, the per-phase breakdown of
// that wall-clock, and the per-node fabric counters accumulated over the
// sequence. The predicted numbers are deterministic (they come from the
// cost model, not the clock) and are identical across fabrics; the
// measured numbers are what the machine actually did.
type FabricValidationResult struct {
	Spec    Spec
	TCP     bool
	Results map[string]*SeqResult
}

// FabricValidation runs the three strategies over identical data and
// reports measured wall-clock execution time per batch alongside the
// ledger-predicted cost. With tcp=false the plans execute on the default
// in-process fabric; with tcp=true each strategy gets a fresh set of
// loopback node daemons and every chunk crosses real sockets.
func FabricValidation(w io.Writer, spec Spec, tcp bool) (*FabricValidationResult, error) {
	out := &FabricValidationResult{Spec: spec, TCP: tcp, Results: make(map[string]*SeqResult)}
	for _, name := range maintain.StrategyNames() {
		planner := maintain.Strategies()[name]
		data, err := spec.Generate() // seeded: identical across strategies
		if err != nil {
			return nil, err
		}
		res, err := runOnFabric(spec, planner, data, tcp)
		if err != nil {
			return nil, fmt.Errorf("bench: fabric validation %s: %w", name, err)
		}
		out.Results[name] = res
	}
	out.WriteTable(w)
	return out, nil
}

// WriteTable renders the human-readable report: the per-batch
// predicted-vs-measured table, a per-strategy phase breakdown, and the
// per-node fabric counters. Strategies may have produced differing batch
// counts (a failed or truncated run); each row indexes only its own
// strategy's batches.
func (r *FabricValidationResult) WriteTable(w io.Writer) {
	fabricName := "local (in-process)"
	if r.TCP {
		fabricName = "tcp (loopback daemons)"
	}
	fmt.Fprintf(w, "Fabric validation — ledger-predicted vs measured execution: %s / %s on %s\n",
		r.Spec.Dataset, r.Spec.Mode, fabricName)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "batch\tstrategy\tpredicted (s)\tmeasured (s)\ttransfers\n")
	names := maintain.StrategyNames()
	n := 0
	for _, name := range names {
		if res := r.Results[name]; res != nil && len(res.Batches) > n {
			n = len(res.Batches)
		}
	}
	for i := 0; i < n; i++ {
		for _, name := range names {
			res := r.Results[name]
			if res == nil || i >= len(res.Batches) {
				continue
			}
			b := res.Batches[i]
			fmt.Fprintf(tw, "%d\t%s\t%.4f\t%.4f\t%d\n", i+1, name, b.Maintenance, b.Exec, b.Transfers)
		}
	}
	tw.Flush()

	for _, name := range names {
		res := r.Results[name]
		if res == nil {
			continue
		}
		if s := phaseSummary(res); s != "" {
			fmt.Fprintf(w, "phases (%s): %s\n", name, s)
		}
	}
	for _, name := range names {
		res := r.Results[name]
		if res == nil || len(res.Fabric) == 0 {
			continue
		}
		fmt.Fprintf(w, "fabric counters (%s):\n", name)
		for node, st := range res.Fabric {
			fmt.Fprintf(w, "  node %d: reqs=%d out=%dB in=%dB frames=%d/%d retries=%d reconnects=%d pool=%d/%d\n",
				node, st.Net.TotalRequests(), st.Net.BytesOut, st.Net.BytesIn,
				st.Net.FramesOut, st.Net.FramesIn, st.Net.Retries, st.Net.Reconnects,
				st.Net.PoolHits, st.Net.PoolMisses)
		}
	}
}

// phaseSummary sums each phase over a sequence's batches and renders the
// totals in pipeline order. Busy seconds are summed (they measure work);
// for phases that ran concurrent spans inside a batch the union wall-clock
// is summed alongside and rendered separately, since adding busy time
// across overlapped spans double-books elapsed time.
func phaseSummary(res *SeqResult) string {
	type agg struct {
		busy, wall float64
		concurrent bool
	}
	totals := make(map[string]*agg)
	var order []string
	for _, b := range res.Batches {
		for _, p := range b.Phases {
			a, ok := totals[p.Name]
			if !ok {
				a = &agg{}
				totals[p.Name] = a
				order = append(order, p.Name)
			}
			a.busy += p.Seconds
			a.wall += p.WallSeconds
			if p.MaxConcurrent > 1 {
				a.concurrent = true
			}
		}
	}
	s := ""
	for i, name := range order {
		if i > 0 {
			s += " · "
		}
		a := totals[name]
		if a.concurrent {
			s += fmt.Sprintf("%s busy %.4fs wall %.4fs", name, a.busy, a.wall)
		} else {
			s += fmt.Sprintf("%s %.4fs", name, a.busy)
		}
	}
	return s
}

// runOnFabric builds a cluster on the requested fabric and drives the
// dataset through maintenance on it.
func runOnFabric(spec Spec, planner maintain.Planner, data *workload.Dataset, tcp bool) (*SeqResult, error) {
	if !tcp {
		return runBatches(spec, planner, data)
	}
	lc, err := transport.StartLoopback(spec.Nodes, nil)
	if err != nil {
		return nil, err
	}
	defer lc.Close()
	fab, err := lc.Fabric(transport.DefaultClientConfig())
	if err != nil {
		return nil, err
	}
	defer fab.Close()
	cl, err := cluster.New(spec.Nodes,
		cluster.WithWorkersPerNode(spec.Workers), cluster.WithFabric(fab))
	if err != nil {
		return nil, err
	}
	return runBatchesOn(cl, spec, planner, data)
}
