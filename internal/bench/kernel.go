package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"text/tabwriter"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
)

// KernelCase is one micro-benchmark row of the kernel experiment: the
// measured cost of a join-kernel or chunk primitive at a given shape and
// density.
type KernelCase struct {
	// Name identifies the primitive and its configuration, e.g.
	// "join/L1r1/dense" or "chunk/each-sorted".
	Name string
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64
	// AllocsPerOp and BytesPerOp are heap allocations per operation.
	AllocsPerOp int64
	BytesPerOp  int64
	// MatchesPerOp is the emitted match count per op for join cases (0 for
	// chunk primitives); it pins down that variants compute the same join.
	MatchesPerOp float64 `json:",omitempty"`
}

// KernelResult is the kernel experiment's typed output: the hot-path
// micro-benchmarks backing the BENCH_kernel.json perf trajectory.
type KernelResult struct {
	// Label distinguishes entries when results from several revisions are
	// recorded side by side.
	Label      string
	GoMaxProcs int
	Cases      []KernelCase
}

// kernelChunks builds two adjacent populated chunks (100×50 cells each)
// mirroring the simjoin package's benchmark fixture.
func kernelChunks(cells int) (*array.Chunk, *array.Chunk) {
	s := array.MustSchema("B",
		[]array.Dimension{
			{Name: "x", Start: 0, End: 199, ChunkSize: 100},
			{Name: "y", Start: 0, End: 49, ChunkSize: 50},
		},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	rng := rand.New(rand.NewSource(1))
	ca := array.NewChunk(s, array.ChunkCoord{0, 0})
	cb := array.NewChunk(s, array.ChunkCoord{1, 0})
	for i := 0; i < cells; i++ {
		_ = ca.Set(array.Point{rng.Int63n(100), rng.Int63n(50)}, array.Tuple{1})
		_ = cb.Set(array.Point{100 + rng.Int63n(100), rng.Int63n(50)}, array.Tuple{2})
	}
	return ca, cb
}

// Kernel runs the join-kernel and chunk micro-benchmarks and returns the
// measured table. One join op is a self-join plus a neighbor join of the
// fixture chunks, matching BenchmarkJoinKernel* in internal/simjoin.
func Kernel(w io.Writer) (*KernelResult, error) {
	res := &KernelResult{Label: "current", GoMaxProcs: runtime.GOMAXPROCS(0)}

	joinCases := []struct {
		name  string
		shape *shape.Shape
		cells int
	}{
		{"join/L1r1/sparse", shape.L1(2, 1), 50},
		{"join/L1r1/dense", shape.L1(2, 1), 1000},
		{"join/Linf2/sparse", shape.Linf(2, 2), 50},
		{"join/Linf2/dense", shape.Linf(2, 2), 1000},
		{"join/L2r3/dense", shape.L2(2, 3), 1000},
	}
	for _, jc := range joinCases {
		ca, cb := kernelChunks(jc.cells)
		pred := simjoin.NewPred(jc.shape, nil)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			matches := 0
			for i := 0; i < b.N; i++ {
				pred.JoinChunkPair(ca, ca, func(_, _ array.Point, _, _ array.Tuple) bool {
					matches++
					return true
				})
				pred.JoinChunkPair(ca, cb, func(_, _ array.Point, _, _ array.Tuple) bool {
					matches++
					return true
				})
			}
			b.ReportMetric(float64(matches)/float64(b.N), "matches/op")
		})
		res.Cases = append(res.Cases, kernelCase(jc.name, r))
	}

	dense, _ := kernelChunks(1000)
	encoded := array.EncodeChunk(dense)
	chunkCases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"chunk/each-sorted", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				dense.EachSorted(func(array.Point, array.Tuple) bool { n++; return true })
			}
		}},
		{"chunk/bounding-box", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := dense.BoundingBox(); !ok {
					b.Fatal("empty bounding box")
				}
			}
		}},
		{"chunk/encode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				array.EncodeChunk(dense)
			}
		}},
		{"chunk/decode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := array.DecodeChunk(encoded); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, cc := range chunkCases {
		res.Cases = append(res.Cases, kernelCase(cc.name, testing.Benchmark(cc.fn)))
	}

	res.WriteTable(w)
	return res, nil
}

func kernelCase(name string, r testing.BenchmarkResult) KernelCase {
	return KernelCase{
		Name:         name,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		MatchesPerOp: r.Extra["matches/op"],
	}
}

// WriteTable renders the human-readable kernel report.
func (r *KernelResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Kernel micro-benchmarks (GOMAXPROCS=%d)\n", r.GoMaxProcs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "case\tns/op\tallocs/op\tB/op\tmatches/op\n")
	for _, c := range r.Cases {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%.0f\n", c.Name, c.NsPerOp, c.AllocsPerOp, c.BytesPerOp, c.MatchesPerOp)
	}
	tw.Flush()
}
