package bench

import (
	"strings"
	"testing"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/workload"
)

// Regression: the table renderer used to take the batch count from the
// first strategy and index every other strategy's Batches with it, which
// panicked whenever a strategy produced a different number of batches
// (e.g. a truncated run). It must render every batch of every strategy
// without panicking.
func TestFabricTableMismatchedBatchCounts(t *testing.T) {
	names := maintain.StrategyNames()
	if len(names) < 2 {
		t.Skip("needs at least two strategies")
	}
	mk := func(n int) *SeqResult {
		res := &SeqResult{Strategy: names[0]}
		for i := 0; i < n; i++ {
			res.Batches = append(res.Batches, BatchResult{
				Batch:       i + 1,
				Maintenance: float64(i) + 0.5,
				Exec:        float64(i) + 0.25,
				Transfers:   i,
				Phases:      []obs.PhaseTiming{{Name: obs.PhaseJoin, Seconds: 0.01, Count: 1}},
			})
		}
		return res
	}
	r := &FabricValidationResult{
		Spec:    Spec{Dataset: "synthetic", Mode: workload.Real},
		Results: map[string]*SeqResult{},
	}
	// First strategy has FEWER batches than the second: the old code took n
	// from the first and never rendered the second's tail. Also leave one
	// strategy missing entirely.
	r.Results[names[0]] = mk(1)
	r.Results[names[1]] = mk(3)

	var sb strings.Builder
	r.WriteTable(&sb) // must not panic
	out := sb.String()
	if !strings.Contains(out, names[1]) {
		t.Fatalf("table missing strategy %s:\n%s", names[1], out)
	}
	// The longer strategy's third batch must appear (row index 3).
	if !strings.Contains(out, "\n3") && !strings.Contains(out, "\n3\t") {
		if !strings.Contains(out, "3  ") {
			t.Fatalf("table missing batch 3 of %s:\n%s", names[1], out)
		}
	}
	if !strings.Contains(out, "phases ("+names[0]+")") {
		t.Fatalf("table missing phase summary:\n%s", out)
	}
}

// The reverse shape: a LATER strategy is shorter than the first. Under the
// old renderer this was the panic case (index out of range).
func TestFabricTableShortLaterStrategy(t *testing.T) {
	names := maintain.StrategyNames()
	if len(names) < 2 {
		t.Skip("needs at least two strategies")
	}
	r := &FabricValidationResult{
		Spec: Spec{Dataset: "synthetic", Mode: workload.Real},
		Results: map[string]*SeqResult{
			names[0]: {Batches: []BatchResult{{Batch: 1}, {Batch: 2}}},
			names[1]: {Batches: []BatchResult{{Batch: 1}}},
		},
	}
	var sb strings.Builder
	r.WriteTable(&sb) // panicked pre-fix
	if !strings.Contains(sb.String(), names[0]) {
		t.Fatalf("table missing strategy %s:\n%s", names[0], sb.String())
	}
}

func TestFabricTableCounters(t *testing.T) {
	names := maintain.StrategyNames()
	r := &FabricValidationResult{
		Spec: Spec{Dataset: "synthetic", Mode: workload.Real},
		Results: map[string]*SeqResult{
			names[0]: {
				Batches: []BatchResult{{Batch: 1}},
				Fabric: []cluster.FabricStats{{
					NumChunks: 2,
					Bytes:     128,
					Net: cluster.NetCounters{
						Requests:  map[string]int64{"Put": 4, "Get": 2},
						BytesOut:  1024,
						BytesIn:   512,
						FramesOut: 6,
						FramesIn:  6,
						Retries:   1,
					},
				}},
			},
		},
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"fabric counters", "reqs=6", "out=1024B", "in=512B", "retries=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
