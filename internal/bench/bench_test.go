package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/arrayview/arrayview/internal/workload"
)

func TestRunSequenceSmallPTF5(t *testing.T) {
	spec := SmallSpec(PTF5, workload.Real)
	res, err := RunSequence(spec, "reassign")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != spec.PTF.NumBatches {
		t.Fatalf("got %d batches, want %d", len(res.Batches), spec.PTF.NumBatches)
	}
	for _, b := range res.Batches {
		if b.Maintenance <= 0 || b.Units == 0 {
			t.Errorf("batch %d: maintenance=%v units=%d", b.Batch, b.Maintenance, b.Units)
		}
	}
	if res.TotalMaintenance() <= 0 || res.AvgOptimization() <= 0 {
		t.Error("aggregates must be positive")
	}
}

func TestRunSequenceUnknownStrategy(t *testing.T) {
	if _, err := RunSequence(SmallSpec(GEO, workload.Random), "nope"); err == nil {
		t.Error("unknown strategy must fail")
	}
}

func TestFig3SmallGEOCorrelated(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig3(&buf, SmallSpec(GEO, workload.Correlated))
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "reassign") {
		t.Errorf("unexpected output:\n%s", out)
	}
	// The headline claim at small scale: reassign's total is at most the
	// baseline's on correlated batches.
	if res.Results["reassign"].TotalMaintenance() > res.Results["baseline"].TotalMaintenance() {
		t.Errorf("correlated GEO: reassign total %v exceeds baseline %v",
			res.Results["reassign"].TotalMaintenance(),
			res.Results["baseline"].TotalMaintenance())
	}
}

func TestFig3SmallPTF25Correlated(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig3(&buf, SmallSpec(PTF25, workload.Correlated))
	if err != nil {
		t.Fatal(err)
	}
	base := res.Results["baseline"].TotalMaintenance()
	re := res.Results["reassign"].TotalMaintenance()
	diff := res.Results["differential"].TotalMaintenance()
	if diff > base {
		t.Errorf("differential %v exceeds baseline %v", diff, base)
	}
	if re > base {
		t.Errorf("reassign %v exceeds baseline %v", re, base)
	}
}

func TestFig5And9(t *testing.T) {
	var buf bytes.Buffer
	spec := SmallSpec(GEO, workload.Random)
	if _, err := Fig5(&buf, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig9(&buf, spec); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "Figure 9") {
		t.Errorf("missing figure headers:\n%s", out)
	}
}

func TestFig6Small(t *testing.T) {
	var buf bytes.Buffer
	spec := SmallSpec(PTF5, workload.Real)
	spec.PTF.BaseNights = 3
	spec.PTF.NumBatches = 1
	rows, err := Fig6(&buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Fig6 rows = %d, want 4", len(rows))
	}
	byName := make(map[string]Fig6Row)
	for _, r := range rows {
		byName[r.Name] = r
		if r.CompleteSeconds <= 0 || r.ViewSeconds <= 0 {
			t.Errorf("%s: non-positive costs", r.Name)
		}
	}
	// The paper's two calibration points: Δ(L∞(1)←L1(1)) = 4/9 → view
	// wins; Δ(L∞(1)←L∞(2)) = 16/9 → complete join wins.
	r1 := byName["Linf(1)<-L1(1)"]
	if r1.DeltaCard*9 != r1.QueryCard*4 {
		t.Errorf("Linf(1)<-L1(1): Δ/query = %d/%d, want ratio 4/9", r1.DeltaCard, r1.QueryCard)
	}
	if !r1.ChoseView {
		t.Error("Linf(1)<-L1(1): cost model must pick the view")
	}
	r2 := byName["Linf(1)<-Linf(2)"]
	if r2.DeltaCard*9 != r2.QueryCard*16 {
		t.Errorf("Linf(1)<-Linf(2): Δ/query = %d/%d, want ratio 16/9", r2.DeltaCard, r2.QueryCard)
	}
	if r2.ChoseView {
		t.Error("Linf(1)<-Linf(2): cost model must pick the complete join")
	}
	if _, err := Fig6(&buf, SmallSpec(GEO, workload.Random)); err == nil {
		t.Error("Fig6 on GEO must be rejected")
	}
}

func TestFig10aSmall(t *testing.T) {
	var buf bytes.Buffer
	spec := SmallSpec(PTF25, workload.Real)
	rows, err := Fig10a(&buf, spec, []int{50, 200, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Markedly larger batches take longer for the baseline.
	if rows[2].Maintenance["baseline"] <= rows[0].Maintenance["baseline"] {
		t.Errorf("baseline not increasing with batch size: %v vs %v",
			rows[0].Maintenance["baseline"], rows[2].Maintenance["baseline"])
	}
	if rows[0].DeltaChunks <= 0 {
		t.Error("delta chunk counts must be recorded")
	}
}

func TestFig10bSmall(t *testing.T) {
	var buf bytes.Buffer
	spec := SmallSpec(PTF5, workload.Real)
	rows, err := Fig10b(&buf, spec, 400, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Maintenance["reassign"] <= 0 {
			t.Errorf("k=%d: non-positive total", r.NumBatches)
		}
	}
}

func TestFig10cSmall(t *testing.T) {
	var buf bytes.Buffer
	spec := SmallSpec(PTF5, workload.Real)
	rows, err := Fig10c(&buf, spec, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestAblationsSmall(t *testing.T) {
	spec := SmallSpec(GEO, workload.Correlated)
	var buf bytes.Buffer
	if rows, err := AblationPairOrder(&buf, spec); err != nil || len(rows) != 2 {
		t.Fatalf("pair order: %v rows=%d", err, len(rows))
	}
	if rows, err := AblationWindow(&buf, spec, []int{0, 3}); err != nil || len(rows) != 2 {
		t.Fatalf("window: %v rows=%d", err, len(rows))
	}
	if rows, err := AblationCPUQuota(&buf, spec, []float64{0, 1}); err != nil || len(rows) != 2 {
		t.Fatalf("quota: %v rows=%d", err, len(rows))
	}
	if rows, err := AblationLambda(&buf, spec, []float64{0, 1}); err != nil || len(rows) != 2 {
		t.Fatalf("lambda: %v rows=%d", err, len(rows))
	}
	if rows, err := AblationCellPruning(&buf, SmallSpec(PTF5, workload.Real)); err != nil || len(rows) != 2 {
		t.Fatalf("cell pruning: %v rows=%d", err, len(rows))
	}
}

func TestScalingSmall(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Scaling(&buf, SmallSpec(PTF5, workload.Real), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More nodes must not increase the optimized maintenance time.
	if rows[1].Maintenance["reassign"] > rows[0].Maintenance["reassign"]*1.1 {
		t.Errorf("reassign did not scale: %v (2 nodes) -> %v (4 nodes)",
			rows[0].Maintenance["reassign"], rows[1].Maintenance["reassign"])
	}
	if !strings.Contains(buf.String(), "Scaling") {
		t.Error("missing header")
	}
}

func TestParseDataset(t *testing.T) {
	for _, d := range Datasets() {
		got, err := ParseDataset(string(d))
		if err != nil || got != d {
			t.Errorf("ParseDataset(%q) = %v, %v", d, got, err)
		}
	}
	if _, err := ParseDataset("nope"); err == nil {
		t.Error("unknown dataset must fail")
	}
}
