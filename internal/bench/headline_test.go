package bench

import (
	"io"
	"testing"

	"github.com/arrayview/arrayview/internal/workload"
)

// TestHeadlineShapesDefaultScale is the regression guard for the paper's
// headline results at the full default scale (skipped under -short):
//
//   - the optimized plans beat the baseline on every batch (Fig. 3);
//   - under correlated batches, reassignment converges: the final batch
//     runs at least 3x faster than the baseline and at least 2x faster
//     than differential (the paper reports 5X and 4X);
//   - the optimization time stays a small fraction of what it saves.
func TestHeadlineShapesDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale regression")
	}
	res, err := Fig3(io.Discard, DefaultSpec(PTF5, workload.Correlated))
	if err != nil {
		t.Fatal(err)
	}
	base := res.Results["baseline"].Batches
	diff := res.Results["differential"].Batches
	re := res.Results["reassign"].Batches
	for i := range base {
		if diff[i].Maintenance > base[i].Maintenance {
			t.Errorf("batch %d: differential %v exceeds baseline %v",
				i+1, diff[i].Maintenance, base[i].Maintenance)
		}
		if re[i].Maintenance > base[i].Maintenance {
			t.Errorf("batch %d: reassign %v exceeds baseline %v",
				i+1, re[i].Maintenance, base[i].Maintenance)
		}
	}
	last := len(base) - 1
	if factor := base[last].Maintenance / re[last].Maintenance; factor < 3 {
		t.Errorf("correlated convergence factor vs baseline = %.2fx, want >= 3x", factor)
	}
	if factor := diff[last].Maintenance / re[last].Maintenance; factor < 2 {
		t.Errorf("correlated convergence factor vs differential = %.2fx, want >= 2x", factor)
	}
	// Reassignment must actually converge: the final batch beats the first
	// repeated batch.
	if re[last].Maintenance >= re[1].Maintenance {
		t.Errorf("no convergence: batch 2 %v -> batch %d %v",
			re[1].Maintenance, last+1, re[last].Maintenance)
	}
}

// TestHeadlineFig6DefaultScale guards the query-integration decisions at
// default scale: the cost model picks the view exactly when |Δ| < |query|.
func TestHeadlineFig6DefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale regression")
	}
	spec := DefaultSpec(PTF5, workload.Real)
	spec.PTF.NumBatches = 1
	rows, err := Fig6(io.Discard, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		ratio := float64(r.DeltaCard) / float64(r.QueryCard)
		if ratio > 0.85 && ratio < 1.15 {
			// Near-tie: the Δ work almost equals the query's and the
			// view-interaction term decides — either choice is defensible
			// (the paper's L2(2)←L∞(2) bar is the same near-tie).
			continue
		}
		wantView := ratio < 1
		if r.ChoseView != wantView {
			t.Errorf("%s: picked view=%v, want %v (Δ=%d query=%d)",
				r.Name, r.ChoseView, wantView, r.DeltaCard, r.QueryCard)
		}
	}
}
