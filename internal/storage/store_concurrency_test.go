package storage

import (
	"sync"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

// addMerge is a cell-wise additive merge used by the concurrency tests.
func addMerge(dst, src *array.Chunk) error {
	var err error
	src.Each(func(p array.Point, tup array.Tuple) bool {
		prev, ok := dst.Get(p)
		next := tup
		if ok {
			next = array.Tuple{prev[0] + tup[0]}
		}
		if e := dst.Set(p, next); e != nil {
			err = e
			return false
		}
		return true
	})
	return err
}

// TestStoreConcurrentOps hammers one Store from many goroutines mixing
// every operation. It asserts nothing beyond internal consistency — its
// job is to let the race detector inspect the locking.
func TestStoreConcurrentOps(t *testing.T) {
	s := testSchema()
	st := NewStore()
	coords := []array.ChunkCoord{{0, 0}, {0, 1}, {1, 2}, {2, 3}}
	arrays := []string{"A", "B"}

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := arrays[(w+r)%len(arrays)]
				cc := coords[(w*7+r)%len(coords)]
				c := array.NewChunk(s, cc)
				p := c.Region().Lo
				if err := c.Set(p, array.Tuple{float64(w*rounds + r)}); err != nil {
					t.Error(err)
					return
				}
				switch (w + r) % 5 {
				case 0:
					st.Put(name, c)
				case 1:
					if err := st.Merge(name, c, addMerge); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if st.Has(name, cc.Key()) {
						// Another worker may delete between Has and Get;
						// a "not resident" error is fine, a decode error
						// is not.
						if got, err := st.Get(name, cc.Key()); err == nil && got.NumCells() == 0 {
							t.Error("resident chunk decoded empty")
							return
						}
					}
				case 3:
					for _, k := range st.Keys(name) {
						_ = st.Has(name, k)
					}
					_ = st.NumChunks()
					_ = st.Bytes()
				case 4:
					st.DropArray(name)
				}
			}
		}()
	}
	wg.Wait()

	// The store must still be coherent: every surviving key decodes and
	// the counters agree with the enumeration.
	total := 0
	for _, name := range arrays {
		for _, k := range st.Keys(name) {
			if _, err := st.Get(name, k); err != nil {
				t.Fatalf("surviving chunk %v of %q does not decode: %v", k, name, err)
			}
			total++
		}
	}
	if st.NumChunks() != total {
		t.Fatalf("NumChunks()=%d but Keys enumerate %d", st.NumChunks(), total)
	}
	if total == 0 && st.Bytes() != 0 {
		t.Fatalf("empty store reports %d bytes", st.Bytes())
	}
}

// TestStoreConcurrentMergeCounts checks the merge path is atomic: N
// goroutines each add 1 to the same cell, and the final value must be
// exactly N — lost updates mean the read-modify-write is not serialized.
func TestStoreConcurrentMergeCounts(t *testing.T) {
	s := testSchema()
	st := NewStore()
	cc := array.ChunkCoord{0, 0}

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := array.NewChunk(s, cc)
			if err := c.Set(array.Point{1, 1}, array.Tuple{1}); err != nil {
				errs <- err
				return
			}
			errs <- st.Merge("A", c, addMerge)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	got, err := st.Get("A", cc.Key())
	if err != nil {
		t.Fatal(err)
	}
	tup, ok := got.Get(array.Point{1, 1})
	if !ok {
		t.Fatal("merged cell missing")
	}
	if tup[0] != n {
		t.Fatalf("concurrent merges lost updates: got %v, want %d", tup[0], n)
	}
}
