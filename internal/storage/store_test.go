package storage

import (
	"fmt"
	"sync"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

func testSchema() *array.Schema {
	return array.MustSchema("A",
		[]array.Dimension{
			{Name: "i", Start: 1, End: 6, ChunkSize: 2},
			{Name: "j", Start: 1, End: 8, ChunkSize: 2},
		},
		[]array.Attribute{{Name: "r", Type: array.Int64}},
	)
}

func mkChunk(t *testing.T, s *array.Schema, cc array.ChunkCoord, cells map[string]float64) *array.Chunk {
	t.Helper()
	c := array.NewChunk(s, cc)
	r := c.Region()
	i := int64(0)
	for name, v := range cells {
		_ = name
		p := array.Point{r.Lo[0] + i%2, r.Lo[1] + i/2%2}
		if err := c.Set(p, array.Tuple{v}); err != nil {
			t.Fatal(err)
		}
		i++
	}
	return c
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := testSchema()
	st := NewStore()
	c := array.NewChunk(s, array.ChunkCoord{0, 0})
	_ = c.Set(array.Point{1, 2}, array.Tuple{42})
	st.Put("A", c)

	if !st.Has("A", c.Key()) {
		t.Fatal("chunk should be resident")
	}
	got, err := st.Get("A", c.Key())
	if err != nil {
		t.Fatal(err)
	}
	tup, ok := got.Get(array.Point{1, 2})
	if !ok || tup[0] != 42 {
		t.Errorf("round trip = %v, %v", tup, ok)
	}
	// Mutating the returned chunk must not affect the store.
	_ = got.Set(array.Point{1, 1}, array.Tuple{7})
	again, _ := st.Get("A", c.Key())
	if _, ok := again.Get(array.Point{1, 1}); ok {
		t.Error("Get must return private copies")
	}
}

func TestStoreMissingChunk(t *testing.T) {
	st := NewStore()
	if _, err := st.Get("A", array.ChunkCoord{0, 0}.Key()); err == nil {
		t.Error("missing chunk must error")
	}
	if st.Has("A", array.ChunkCoord{0, 0}.Key()) {
		t.Error("missing chunk must not be resident")
	}
	if ok, _ := st.Delete("A", array.ChunkCoord{0, 0}.Key()); ok {
		t.Error("deleting missing chunk must report false")
	}
}

func TestStoreArrayNamespaces(t *testing.T) {
	s := testSchema()
	st := NewStore()
	c := array.NewChunk(s, array.ChunkCoord{0, 0})
	_ = c.Set(array.Point{1, 1}, array.Tuple{1})
	st.Put("A", c)
	st.Put("B", c)
	if st.NumChunks() != 2 {
		t.Errorf("NumChunks = %d, want 2", st.NumChunks())
	}
	if n, _ := st.DropArray("A"); n != 1 {
		t.Errorf("DropArray = %d, want 1", n)
	}
	if st.Has("A", c.Key()) || !st.Has("B", c.Key()) {
		t.Error("DropArray must be namespace-scoped")
	}
}

func TestStoreBytesAccounting(t *testing.T) {
	s := testSchema()
	st := NewStore()
	c := array.NewChunk(s, array.ChunkCoord{0, 0})
	_ = c.Set(array.Point{1, 1}, array.Tuple{1})
	st.Put("A", c)
	b1 := st.Bytes()
	if b1 <= 0 {
		t.Fatal("bytes must be positive after Put")
	}
	// Replacing with a bigger chunk grows the accounting.
	_ = c.Set(array.Point{1, 2}, array.Tuple{2})
	st.Put("A", c)
	if st.Bytes() <= b1 {
		t.Error("bytes must grow after bigger replacement")
	}
	st.Delete("A", c.Key())
	if st.Bytes() != 0 {
		t.Errorf("bytes = %d after delete, want 0", st.Bytes())
	}
}

func TestStoreMerge(t *testing.T) {
	s := testSchema()
	st := NewStore()
	sum := func(dst, src *array.Chunk) error {
		var err error
		src.Each(func(p array.Point, tu array.Tuple) bool {
			if old, ok := dst.Get(p); ok {
				err = dst.Set(p, array.Tuple{old[0] + tu[0]})
			} else {
				err = dst.Set(p, tu)
			}
			return err == nil
		})
		return err
	}
	c1 := array.NewChunk(s, array.ChunkCoord{0, 0})
	_ = c1.Set(array.Point{1, 1}, array.Tuple{1})
	if err := st.Merge("V", c1, sum); err != nil {
		t.Fatal(err)
	}
	c2 := array.NewChunk(s, array.ChunkCoord{0, 0})
	_ = c2.Set(array.Point{1, 1}, array.Tuple{2})
	_ = c2.Set(array.Point{2, 2}, array.Tuple{5})
	if err := st.Merge("V", c2, sum); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("V", c1.Key())
	if err != nil {
		t.Fatal(err)
	}
	if tu, _ := got.Get(array.Point{1, 1}); tu[0] != 3 {
		t.Errorf("merged value = %v, want 3", tu)
	}
	if tu, _ := got.Get(array.Point{2, 2}); tu[0] != 5 {
		t.Errorf("new cell = %v, want 5", tu)
	}
}

func TestStoreConcurrentMerge(t *testing.T) {
	s := testSchema()
	st := NewStore()
	sum := func(dst, src *array.Chunk) error {
		var err error
		src.Each(func(p array.Point, tu array.Tuple) bool {
			if old, ok := dst.Get(p); ok {
				err = dst.Set(p, array.Tuple{old[0] + tu[0]})
			} else {
				err = dst.Set(p, tu)
			}
			return err == nil
		})
		return err
	}
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := array.NewChunk(s, array.ChunkCoord{0, 0})
				_ = c.Set(array.Point{1, 1}, array.Tuple{1})
				if err := st.Merge("V", c, sum); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := st.Get("V", array.ChunkCoord{0, 0}.Key())
	if err != nil {
		t.Fatal(err)
	}
	tu, _ := got.Get(array.Point{1, 1})
	if tu[0] != workers*perWorker {
		t.Errorf("concurrent merges lost updates: %v, want %d", tu[0], workers*perWorker)
	}
}

func TestStoreKeysSorted(t *testing.T) {
	s := testSchema()
	st := NewStore()
	for i := int64(2); i >= 0; i-- {
		c := array.NewChunk(s, array.ChunkCoord{i, 0})
		st.Put("A", c)
	}
	keys := st.Keys("A")
	if len(keys) != 3 {
		t.Fatalf("Keys = %d, want 3", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if !(keys[i-1] < keys[i]) {
			t.Fatal("Keys must be sorted")
		}
	}
	if got := st.Keys("missing"); got != nil {
		t.Errorf("Keys of missing array = %v, want nil", got)
	}
}

func TestStoreConcurrentReadWrite(t *testing.T) {
	s := testSchema()
	st := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("A%d", w)
			for i := int64(0); i < 20; i++ {
				c := array.NewChunk(s, array.ChunkCoord{i % 3, i % 4})
				_ = c.Set(c.Region().Lo, array.Tuple{float64(i)})
				st.Put(name, c)
				if _, err := st.Get(name, c.Key()); err != nil {
					t.Error(err)
					return
				}
				st.Keys(name)
				st.Bytes()
			}
		}(w)
	}
	wg.Wait()
}
