package storage

import (
	"container/list"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/obs"
)

// ContentCache is a bounded LRU of chunk encodings keyed by their FNV-1a
// content hash. Content addressing is what makes it safe to share across
// versions and readers: a hash identifies exactly one byte string, so a hit
// can never serve stale data — at worst the entry for the version a reader
// wants has been evicted and the reader falls back to a real read. Two
// consumers use it: each node Store sidelines displaced encodings here to
// back the wire dedup handshake, and the serving layer's ReadCache keeps
// hot snapshot chunks here to absorb repeated queries. It is safe for
// concurrent use.
type ContentCache struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	lru      *list.List // front = most recently used
	idx      map[uint64]*list.Element
	counters obs.CacheCounters
}

type contentEntry struct {
	hash uint64
	buf  []byte
}

// NewContentCache returns an empty cache bounded to capBytes (0 disables
// caching entirely).
func NewContentCache(capBytes int64) *ContentCache {
	return &ContentCache{
		capBytes: capBytes,
		lru:      list.New(),
		idx:      make(map[uint64]*list.Element),
	}
}

// Counters exposes the cache's hit/miss/bytes accounting.
func (c *ContentCache) Counters() *obs.CacheCounters { return &c.counters }

// Insert hashes the encoding and admits it, returning the content hash.
func (c *ContentCache) Insert(buf []byte) uint64 {
	h := array.HashChunkBytes(buf)
	c.InsertHashed(h, buf)
	return h
}

// InsertHashed admits an encoding under a hash the caller already computed.
// The buffer must not be mutated afterwards. Entries past the byte cap are
// evicted least-recently-used first; re-inserting a resident hash only
// refreshes its recency.
func (c *ContentCache) InsertHashed(hash uint64, buf []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capBytes <= 0 || int64(len(buf)) > c.capBytes {
		return
	}
	if el, ok := c.idx[hash]; ok {
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&contentEntry{hash: hash, buf: buf})
	c.idx[hash] = el
	c.bytes += int64(len(buf))
	c.counters.BytesInserted.Add(int64(len(buf)))
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until the cache fits the
// cap. Caller holds c.mu.
func (c *ContentCache) evictLocked() {
	for c.bytes > c.capBytes {
		last := c.lru.Back()
		if last == nil {
			return
		}
		e := last.Value.(*contentEntry)
		c.lru.Remove(last)
		delete(c.idx, e.hash)
		c.bytes -= int64(len(e.buf))
		c.counters.Evictions.Add(1)
	}
}

// Lookup returns the cached encoding for a content hash, verifying the
// expected length when size >= 0 (the cheap insurance against an FNV
// collision), and refreshes its recency. The returned slice is the cache's
// buffer and must be treated as read-only.
func (c *ContentCache) Lookup(hash uint64, size int64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[hash]
	if !ok {
		c.counters.Misses.Add(1)
		return nil, false
	}
	e := el.Value.(*contentEntry)
	if size >= 0 && int64(len(e.buf)) != size {
		c.counters.Misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.counters.Hits.Add(1)
	c.counters.BytesServed.Add(int64(len(e.buf)))
	return e.buf, true
}

// Bytes returns the cache's current footprint.
func (c *ContentCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// SetCap rebounds the cache; shrinking evicts immediately and 0 drops the
// contents.
func (c *ContentCache) SetCap(capBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capBytes = capBytes
	c.evictLocked()
}
