package storage

import (
	"fmt"
	"testing"
)

func TestContentCacheLRUEviction(t *testing.T) {
	c := NewContentCache(30)
	var hashes []uint64
	for i := 0; i < 3; i++ {
		hashes = append(hashes, c.Insert([]byte(fmt.Sprintf("entry-%d---", i)))) // 10B each
	}
	if c.Bytes() != 30 {
		t.Fatalf("Bytes = %d, want 30", c.Bytes())
	}
	// Touch entry 0 so entry 1 is the LRU victim of the next insert.
	if _, ok := c.Lookup(hashes[0], -1); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	c.Insert([]byte("entry-3---"))
	if _, ok := c.Lookup(hashes[1], -1); ok {
		t.Error("entry 1 should have been evicted (least recently used)")
	}
	if _, ok := c.Lookup(hashes[0], -1); !ok {
		t.Error("entry 0 was touched and must survive eviction")
	}
	if c.Counters().Evictions.Load() == 0 {
		t.Error("eviction counter did not advance")
	}
}

func TestContentCacheSizeGuardAndCaps(t *testing.T) {
	c := NewContentCache(64)
	buf := []byte("payload-bytes")
	h := c.Insert(buf)

	// The size check is the collision insurance: a mismatched expectation
	// must read as a miss, not serve wrong bytes.
	if _, ok := c.Lookup(h, int64(len(buf))+1); ok {
		t.Error("lookup with wrong expected size must miss")
	}
	if got, ok := c.Lookup(h, int64(len(buf))); !ok || string(got) != string(buf) {
		t.Errorf("lookup with right size = %q, %v", got, ok)
	}

	// Oversized entries are refused outright; shrinking the cap drains.
	c.InsertHashed(12345, make([]byte, 65))
	if _, ok := c.Lookup(12345, -1); ok {
		t.Error("entry larger than the cap must not be admitted")
	}
	c.SetCap(0)
	if c.Bytes() != 0 {
		t.Errorf("Bytes = %d after SetCap(0), want 0", c.Bytes())
	}
	if _, ok := c.Lookup(h, -1); ok {
		t.Error("entries must be dropped when the cap goes to zero")
	}

	// A zero-cap cache refuses inserts entirely.
	c.Insert(buf)
	if c.Bytes() != 0 {
		t.Error("zero-cap cache admitted an entry")
	}
}
