// Package storage implements the per-node chunk storage manager, modeled
// after ArrayStore (Soroush et al., SIGMOD 2011), which the paper's
// prototype builds on. Chunks are held serialized, keyed by array name and
// chunk coordinate, so every read/write crosses a real
// serialization boundary just as a disk- or network-backed store would.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
)

// Store is one node's chunk storage. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	chunks map[string][]byte // key: arrayName + "\x00" + chunkKey
	bytes  int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{chunks: make(map[string][]byte)}
}

func storeKey(arrayName string, key array.ChunkKey) string {
	return arrayName + "\x00" + string(key)
}

// Put serializes and stores the chunk under the array name, replacing any
// previous version.
func (s *Store) Put(arrayName string, c *array.Chunk) {
	buf := array.EncodeChunk(c)
	k := storeKey(arrayName, c.Key())
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.chunks[k]; ok {
		s.bytes -= int64(len(old))
	}
	s.chunks[k] = buf
	s.bytes += int64(len(buf))
}

// Get fetches and deserializes a chunk. It returns an error if the chunk is
// not resident or fails to decode. The returned chunk is a private copy.
func (s *Store) Get(arrayName string, key array.ChunkKey) (*array.Chunk, error) {
	s.mu.RLock()
	buf, ok := s.chunks[storeKey(arrayName, key)]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: chunk %v of %q not resident", key, arrayName)
	}
	return array.DecodeChunk(buf)
}

// Has reports whether the chunk is resident.
func (s *Store) Has(arrayName string, key array.ChunkKey) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.chunks[storeKey(arrayName, key)]
	return ok
}

// Delete evicts a chunk, reporting whether it was resident.
func (s *Store) Delete(arrayName string, key array.ChunkKey) bool {
	k := storeKey(arrayName, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.chunks[k]
	if !ok {
		return false
	}
	s.bytes -= int64(len(buf))
	delete(s.chunks, k)
	return true
}

// Merge folds src's cells into the resident chunk with the same coordinate,
// creating it if absent. This is the view-merging primitive: worker threads
// apply differential chunks as they arrive.
func (s *Store) Merge(arrayName string, src *array.Chunk, merge func(dst, src *array.Chunk) error) error {
	k := storeKey(arrayName, src.Key())
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.chunks[k]
	if !ok {
		out := array.EncodeChunk(src)
		s.chunks[k] = out
		s.bytes += int64(len(out))
		return nil
	}
	dst, err := array.DecodeChunk(buf)
	if err != nil {
		return err
	}
	if err := merge(dst, src); err != nil {
		return err
	}
	out := array.EncodeChunk(dst)
	s.bytes += int64(len(out)) - int64(len(buf))
	s.chunks[k] = out
	return nil
}

// NumChunks returns the number of resident chunks across all arrays.
func (s *Store) NumChunks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// Bytes returns the total stored bytes.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Keys returns the resident chunk keys for one array, sorted.
func (s *Store) Keys(arrayName string) []array.ChunkKey {
	prefix := arrayName + "\x00"
	s.mu.RLock()
	var out []array.ChunkKey
	for k := range s.chunks {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, array.ChunkKey(k[len(prefix):]))
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DropArray evicts every chunk of the named array and returns how many were
// dropped.
func (s *Store) DropArray(arrayName string) int {
	prefix := arrayName + "\x00"
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, buf := range s.chunks {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			s.bytes -= int64(len(buf))
			delete(s.chunks, k)
			n++
		}
	}
	return n
}
