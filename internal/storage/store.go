// Package storage implements the per-node chunk storage manager, modeled
// after ArrayStore (Soroush et al., SIGMOD 2011), which the paper's
// prototype builds on. Chunks are held serialized, keyed by array name and
// chunk coordinate, so every read/write crosses a real
// serialization boundary just as a disk- or network-backed store would.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
)

// DefaultCacheBytes caps the sideline content cache (see Store). Entries
// are chunk encodings, so the default holds a few thousand chunks.
const DefaultCacheBytes = 64 << 20

// Journal receives every mutation of a Store, in apply order, before the
// mutation takes effect (write-ahead discipline: a mutation whose journal
// append fails is not applied). Calls arrive under the store's lock, so an
// implementation sees them strictly serialized per store. The journal
// decides which namespaces are durable — internal/wal skips scratch ("#")
// arrays, for example.
type Journal interface {
	JournalPut(arrayName string, key array.ChunkKey, enc []byte, hash uint64) error
	JournalDelete(arrayName string, key array.ChunkKey) error
	JournalDropArray(arrayName string) error
}

// DurabilityError wraps a journal/fsync/close failure of the durable layer.
// Mutators surface it instead of applying the mutation, and the maintenance
// commit path propagates it as-is so callers can errors.As for it.
type DurabilityError struct {
	Op  string // the store operation that failed: "put", "delete", "drop-array", "sync", "close"
	Err error
}

func (e *DurabilityError) Error() string {
	return fmt.Sprintf("storage: durability failure during %s: %v", e.Op, e.Err)
}

func (e *DurabilityError) Unwrap() error { return e.Err }

// Store is one node's chunk storage. It is safe for concurrent use.
//
// Besides the resident chunks, the store keeps a bounded LRU "sideline"
// cache of recently evicted chunk encodings keyed by content hash. The
// cache backs the wire-level dedup handshake: when a transfer offers a
// (key, hash) the node has seen before — a replica scrubbed by batch
// cleanup, a chunk displaced by an overwrite — TryAdopt resurrects the
// bytes locally instead of moving them over the network. The cache is
// never readable by (array, key): only an explicit adoption, verified by
// content hash and length, promotes an entry back to residency, so stale
// reads are impossible by construction.
type Store struct {
	mu     sync.RWMutex
	chunks map[string][]byte // key: arrayName + "\x00" + chunkKey
	hashes map[string]uint64 // content hash of the resident encoding
	// byArray indexes resident store keys per array name, so per-array
	// operations (Keys, DropArray) touch only that array's chunks instead
	// of scanning the whole store. Batch cleanup drops several scratch
	// namespaces per node per batch; without the index each drop scanned
	// every resident chunk and cleanup grew with the base size.
	byArray map[string]map[string]bool
	bytes   int64

	cache   *ContentCache // sideline cache of displaced encodings
	journal Journal       // optional write-ahead journal; nil = RAM-only
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		chunks:  make(map[string][]byte),
		hashes:  make(map[string]uint64),
		byArray: make(map[string]map[string]bool),
		cache:   NewContentCache(DefaultCacheBytes),
	}
}

func storeKey(arrayName string, key array.ChunkKey) string {
	return arrayName + "\x00" + string(key)
}

// arrayOf recovers the array name from a store key (names cannot contain
// the NUL separator; chunk key bytes after the first NUL are irrelevant).
func arrayOf(k string) string {
	return k[:strings.IndexByte(k, 0)]
}

// chunkKeyOf recovers the chunk key from a store key.
func chunkKeyOf(k string) array.ChunkKey {
	return array.ChunkKey(k[strings.IndexByte(k, 0)+1:])
}

// SetJournal installs (or clears, with nil) the store's write-ahead
// journal. Install before the store takes traffic: the journal only sees
// mutations made after it is set.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// indexAddLocked records k under its array. Caller holds s.mu.
func (s *Store) indexAddLocked(k string) {
	name := arrayOf(k)
	set, ok := s.byArray[name]
	if !ok {
		set = make(map[string]bool)
		s.byArray[name] = set
	}
	set[k] = true
}

// indexRemoveLocked forgets k. Caller holds s.mu.
func (s *Store) indexRemoveLocked(k string) {
	name := arrayOf(k)
	if set, ok := s.byArray[name]; ok {
		delete(set, k)
		if len(set) == 0 {
			delete(s.byArray, name)
		}
	}
}

// sideline moves a displaced encoding into the content cache. The cache has
// its own lock, so this is safe whether or not the caller holds s.mu.
func (s *Store) sideline(buf []byte) {
	s.cache.Insert(buf)
}

// cacheLookup returns the sidelined encoding for a content hash, verifying
// the expected length, and refreshes its recency.
func (s *Store) cacheLookup(hash uint64, size int64) ([]byte, bool) {
	return s.cache.Lookup(hash, size)
}

// putLocked installs an encoding under k, sidelining any replaced version.
// The mutation is journaled first; if the journal append fails nothing is
// installed. Caller holds s.mu.
func (s *Store) putLocked(k string, buf []byte, hash uint64) error {
	if s.journal != nil {
		if err := s.journal.JournalPut(arrayOf(k), chunkKeyOf(k), buf, hash); err != nil {
			return &DurabilityError{Op: "put", Err: err}
		}
	}
	if old, ok := s.chunks[k]; ok {
		s.bytes -= int64(len(old))
		s.sideline(old)
	}
	s.chunks[k] = buf
	s.hashes[k] = hash
	s.indexAddLocked(k)
	s.bytes += int64(len(buf))
	return nil
}

// Put serializes and stores the chunk under the array name, replacing any
// previous version.
func (s *Store) Put(arrayName string, c *array.Chunk) error {
	buf := array.EncodeChunk(c)
	k := storeKey(arrayName, c.Key())
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(k, buf, array.HashChunkBytes(buf))
}

// PutEncoded stores an already-serialized ACH1 encoding verbatim. The
// transport server uses it to land wire payloads without a decode/encode
// round trip when the bytes are already canonical.
func (s *Store) PutEncoded(arrayName string, key array.ChunkKey, buf []byte) error {
	k := storeKey(arrayName, key)
	h := array.HashChunkBytes(buf)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(k, buf, h)
}

// Hash returns the content hash of the resident encoding of a chunk.
func (s *Store) Hash(arrayName string, key array.ChunkKey) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.hashes[storeKey(arrayName, key)]
	return h, ok
}

// TryAdopt is the receiving half of the dedup handshake: it reports
// whether the node can produce the offered content (identified by hash
// and encoded size) without receiving the body. Residency under the same
// key with the same hash satisfies the offer directly; otherwise a
// matching sideline-cache entry is promoted to residency under the key.
// On success the returned size is the encoded length now resident.
func (s *Store) TryAdopt(arrayName string, key array.ChunkKey, hash uint64, size int64) (int64, bool) {
	k := storeKey(arrayName, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.hashes[k]; ok && h == hash {
		buf := s.chunks[k]
		if size < 0 || int64(len(buf)) == size {
			return int64(len(buf)), true
		}
	}
	if buf, ok := s.cacheLookup(hash, size); ok {
		// An adoption that cannot be journaled is declined rather than
		// failed: the caller falls back to a full ship, whose Put surfaces
		// the durability error.
		if s.putLocked(k, buf, hash) != nil {
			return 0, false
		}
		return int64(len(buf)), true
	}
	return 0, false
}

// Patch applies an ACHΔ delta to the resident chunk, but only when the
// resident content hash matches baseHash — the sender computed the delta
// against exactly that version. A missing chunk or a hash mismatch is not
// an error: applied=false tells the caller to fall back to a full ship.
func (s *Store) Patch(arrayName string, key array.ChunkKey, baseHash uint64, delta []byte) (applied bool, err error) {
	k := storeKey(arrayName, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.chunks[k]
	if !ok || s.hashes[k] != baseHash {
		return false, nil
	}
	c, err := array.DecodeChunk(buf)
	if err != nil {
		return false, err
	}
	if err := array.ApplyDelta(c, delta); err != nil {
		return false, err
	}
	out := array.EncodeChunk(c)
	if err := s.putLocked(k, out, array.HashChunkBytes(out)); err != nil {
		return false, err
	}
	return true, nil
}

// GetEncoded returns the resident canonical encoding of a chunk without
// decoding it. The returned slice is the store's own buffer and must be
// treated as read-only (the store never mutates stored buffers in place).
func (s *Store) GetEncoded(arrayName string, key array.ChunkKey) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf, ok := s.chunks[storeKey(arrayName, key)]
	return buf, ok
}

// Get fetches and deserializes a chunk. It returns an error if the chunk is
// not resident or fails to decode. The returned chunk is a private copy.
func (s *Store) Get(arrayName string, key array.ChunkKey) (*array.Chunk, error) {
	s.mu.RLock()
	buf, ok := s.chunks[storeKey(arrayName, key)]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: chunk %v of %q not resident", key, arrayName)
	}
	return array.DecodeChunk(buf)
}

// Has reports whether the chunk is resident.
func (s *Store) Has(arrayName string, key array.ChunkKey) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.chunks[storeKey(arrayName, key)]
	return ok
}

// Delete evicts a chunk, reporting whether it was resident.
func (s *Store) Delete(arrayName string, key array.ChunkKey) (bool, error) {
	k := storeKey(arrayName, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.chunks[k]
	if !ok {
		return false, nil
	}
	if s.journal != nil {
		if err := s.journal.JournalDelete(arrayName, key); err != nil {
			return false, &DurabilityError{Op: "delete", Err: err}
		}
	}
	s.bytes -= int64(len(buf))
	delete(s.chunks, k)
	delete(s.hashes, k)
	s.indexRemoveLocked(k)
	s.sideline(buf)
	return true, nil
}

// Merge folds src's cells into the resident chunk with the same coordinate,
// creating it if absent. This is the view-merging primitive: worker threads
// apply differential chunks as they arrive.
func (s *Store) Merge(arrayName string, src *array.Chunk, merge func(dst, src *array.Chunk) error) error {
	k := storeKey(arrayName, src.Key())
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.chunks[k]
	if !ok {
		out := array.EncodeChunk(src)
		return s.putLocked(k, out, array.HashChunkBytes(out))
	}
	dst, err := array.DecodeChunk(buf)
	if err != nil {
		return err
	}
	if err := merge(dst, src); err != nil {
		return err
	}
	out := array.EncodeChunk(dst)
	return s.putLocked(k, out, array.HashChunkBytes(out))
}

// NumChunks returns the number of resident chunks across all arrays.
func (s *Store) NumChunks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// Bytes returns the total stored bytes.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Keys returns the resident chunk keys for one array, sorted.
func (s *Store) Keys(arrayName string) []array.ChunkKey {
	prefix := len(arrayName) + 1
	s.mu.RLock()
	var out []array.ChunkKey
	for k := range s.byArray[arrayName] {
		out = append(out, array.ChunkKey(k[prefix:]))
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DropArray evicts every chunk of the named array and returns how many were
// dropped.
func (s *Store) DropArray(arrayName string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil && len(s.byArray[arrayName]) > 0 {
		if err := s.journal.JournalDropArray(arrayName); err != nil {
			return 0, &DurabilityError{Op: "drop-array", Err: err}
		}
	}
	n := 0
	for k := range s.byArray[arrayName] {
		buf := s.chunks[k]
		s.bytes -= int64(len(buf))
		delete(s.chunks, k)
		delete(s.hashes, k)
		s.sideline(buf)
		n++
	}
	delete(s.byArray, arrayName)
	return n, nil
}

// EachEncoded calls fn for every resident chunk in deterministic
// (array, key) order with its canonical encoding and content hash. The
// encoding is the store's own buffer: read-only. The durable layer uses
// this to checkpoint a store's full state.
func (s *Store) EachEncoded(fn func(arrayName string, key array.ChunkKey, enc []byte, hash uint64) error) error {
	s.mu.RLock()
	keys := make([]string, 0, len(s.chunks))
	for k := range s.chunks {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		s.mu.RLock()
		buf, ok := s.chunks[k]
		hash := s.hashes[k]
		s.mu.RUnlock()
		if !ok { // deleted between snapshot and visit
			continue
		}
		if err := fn(arrayOf(k), chunkKeyOf(k), buf, hash); err != nil {
			return err
		}
	}
	return nil
}

// CacheBytes returns the sideline content cache's current footprint.
func (s *Store) CacheBytes() int64 { return s.cache.Bytes() }

// SetCacheCap rebounds the sideline content cache; 0 disables it (and
// drops its contents).
func (s *Store) SetCacheCap(capBytes int64) { s.cache.SetCap(capBytes) }
