package arrayio

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

func testArray(t *testing.T, seed int64) *array.Array {
	t.Helper()
	s := array.MustSchema("T",
		[]array.Dimension{
			{Name: "x", Start: -10, End: 50, ChunkSize: 7},
			{Name: "y", Start: 0, End: 30, ChunkSize: 4},
		},
		[]array.Attribute{
			{Name: "a", Type: array.Float64},
			{Name: "b", Type: array.Int64},
		})
	a := array.New(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 80; i++ {
		p := array.Point{rng.Int63n(61) - 10, rng.Int63n(31)}
		if err := a.Set(p, array.Tuple{rng.NormFloat64(), float64(rng.Intn(100))}); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestRoundTrip(t *testing.T) {
	a := testArray(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a) {
		t.Fatal("round trip changed cells")
	}
	bs, as := back.Schema(), a.Schema()
	if bs.String() != as.String() {
		t.Fatalf("schema round trip: %s vs %s", bs, as)
	}
}

func TestEmptyArrayRoundTrip(t *testing.T) {
	s := array.MustSchema("E",
		[]array.Dimension{{Name: "x", Start: 0, End: 9, ChunkSize: 5}}, nil)
	a := array.New(s)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCells() != 0 || back.Schema().Name != "E" {
		t.Fatal("empty array round trip")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream must fail")
	}
	if _, err := Read(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic must fail")
	}
	// Truncated stream.
	a := testArray(t, 5)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated stream must fail")
	}
}
