// Package arrayio serializes whole arrays — schema plus chunks — to a
// simple self-describing stream format, used by the dataset generation
// tools:
//
//	u32  magic "AAR1"
//	u32  JSON header length, then the header (schema)
//	u32  chunk count
//	per chunk: u32 length, then the chunk in array.EncodeChunk format
package arrayio

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"github.com/arrayview/arrayview/internal/array"
)

const magic = 0x41415231 // "AAR1"

// header is the JSON-encoded schema description.
type header struct {
	Name  string      `json:"name"`
	Dims  []headerDim `json:"dims"`
	Attrs []headerAtt `json:"attrs"`
}

type headerDim struct {
	Name      string `json:"name"`
	Start     int64  `json:"start"`
	End       int64  `json:"end"`
	ChunkSize int64  `json:"chunk"`
}

type headerAtt struct {
	Name string `json:"name"`
	Type int    `json:"type"`
}

// Write serializes the array to w.
func Write(w io.Writer, a *array.Array) error {
	s := a.Schema()
	h := header{Name: s.Name}
	for _, d := range s.Dims {
		h.Dims = append(h.Dims, headerDim{Name: d.Name, Start: d.Start, End: d.End, ChunkSize: d.ChunkSize})
	}
	for _, at := range s.Attrs {
		h.Attrs = append(h.Attrs, headerAtt{Name: at.Name, Type: int(at.Type)})
	}
	hb, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if err := writeU32(w, magic); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(hb))); err != nil {
		return err
	}
	if _, err := w.Write(hb); err != nil {
		return err
	}
	keys := a.ChunkKeys()
	if err := writeU32(w, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		buf := array.EncodeChunk(a.ChunkByKey(k))
		if err := writeU32(w, uint32(len(buf))); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes an array from r.
func Read(r io.Reader) (*array.Array, error) {
	m, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("arrayio: bad magic %#x", m)
	}
	hlen, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if hlen > 1<<20 {
		return nil, fmt.Errorf("arrayio: implausible header length %d", hlen)
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(r, hb); err != nil {
		return nil, err
	}
	var h header
	if err := json.Unmarshal(hb, &h); err != nil {
		return nil, err
	}
	var dims []array.Dimension
	for _, d := range h.Dims {
		dims = append(dims, array.Dimension{Name: d.Name, Start: d.Start, End: d.End, ChunkSize: d.ChunkSize})
	}
	var attrs []array.Attribute
	for _, at := range h.Attrs {
		attrs = append(attrs, array.Attribute{Name: at.Name, Type: array.AttrType(at.Type)})
	}
	schema, err := array.NewSchema(h.Name, dims, attrs)
	if err != nil {
		return nil, err
	}
	out := array.New(schema)
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < n; i++ {
		clen, err := readU32(r)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, clen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		ch, err := array.DecodeChunk(buf)
		if err != nil {
			return nil, err
		}
		out.PutChunk(ch)
	}
	return out, nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(buf[:]), nil
}
