package cluster

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
)

// MergeKind selects the chunk-merge semantics a node applies when folding a
// delta chunk into a resident chunk. Merges are named (not function-valued)
// so they can cross a process or network boundary: a remote node receives
// the kind on the wire and reconstructs the merge locally.
type MergeKind uint8

const (
	// MergeCells inserts src's cells into the resident chunk (base-array
	// ingestion; batches are validated disjoint upstream).
	MergeCells MergeKind = iota
	// MergeErase removes src's cell coordinates from the resident chunk
	// (deletion batches).
	MergeErase
	// MergeState combines aggregate-state tuples slot-by-slot per the
	// spec's state ops (differential view merging).
	MergeState
)

// String names the kind for diagnostics.
func (k MergeKind) String() string {
	switch k {
	case MergeCells:
		return "cells"
	case MergeErase:
		return "erase"
	case MergeState:
		return "state"
	default:
		return fmt.Sprintf("MergeKind(%d)", uint8(k))
	}
}

// State ops: how one physical state slot of a view tuple combines under
// merge. A view's aggregate list lowers to one op per slot (AVG occupies
// two additive slots).
const (
	// StateAdd sums the slots (COUNT, SUM, and both AVG slots).
	StateAdd uint8 = iota
	// StateMin keeps the smaller value (MIN).
	StateMin
	// StateMax keeps the larger value (MAX).
	StateMax
)

// MergeSpec is a declarative, wire-encodable description of a chunk merge.
// Ops is consulted only for MergeState and must list one state op per
// physical attribute of the merged chunks.
type MergeSpec struct {
	Kind MergeKind
	Ops  []uint8
}

// Validate checks the spec is well formed.
func (s MergeSpec) Validate() error {
	switch s.Kind {
	case MergeCells, MergeErase:
		return nil
	case MergeState:
		if len(s.Ops) == 0 {
			return fmt.Errorf("cluster: state merge with no state ops")
		}
		for i, op := range s.Ops {
			if op > StateMax {
				return fmt.Errorf("cluster: unknown state op %d at slot %d", op, i)
			}
		}
		return nil
	default:
		return fmt.Errorf("cluster: unknown merge kind %d", uint8(s.Kind))
	}
}

// Func compiles the spec into the chunk-level merge used by storage.Store.
func (s MergeSpec) Func() (func(dst, src *array.Chunk) error, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case MergeCells:
		// The source is always batch-local here — a chunk decoded from the
		// wire or from the store for this one merge and discarded after —
		// so its tuples move instead of being cloned.
		return func(dst, src *array.Chunk) error { return dst.AbsorbFrom(src) }, nil
	case MergeErase:
		return func(dst, src *array.Chunk) error {
			src.Each(func(pt array.Point, _ array.Tuple) bool {
				dst.Delete(pt)
				return true
			})
			return nil
		}, nil
	default:
		ops := s.Ops
		return func(dst, src *array.Chunk) error {
			var err error
			src.Each(func(p array.Point, t array.Tuple) bool {
				if len(t) != len(ops) {
					err = fmt.Errorf("cluster: state tuple has %d slots, merge spec has %d ops", len(t), len(ops))
					return false
				}
				cur, ok := dst.Get(p)
				if !ok {
					err = dst.Set(p, t)
					return err == nil
				}
				for i, op := range ops {
					switch op {
					case StateAdd:
						cur[i] += t[i]
					case StateMin:
						if t[i] < cur[i] {
							cur[i] = t[i]
						}
					case StateMax:
						if t[i] > cur[i] {
							cur[i] = t[i]
						}
					}
				}
				err = dst.Set(p, cur)
				return err == nil
			})
			return err
		}, nil
	}
}
