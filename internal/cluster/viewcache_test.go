package cluster

import (
	"sync"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/obs"
)

func TestViewCacheHitSharesOneGather(t *testing.T) {
	cl, _ := epochCluster(t)
	ctrs := &obs.FastPathCounters{}
	vc := NewViewCache(0, ctrs)

	snap, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	a1, rel1, err := vc.Acquire("A", snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, rel2, err := vc.Acquire("A", snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("same (view, epoch) should share one assembled array")
	}
	s := ctrs.Snapshot()
	if s.ViewMisses != 1 || s.ViewHits != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", s.ViewHits, s.ViewMisses)
	}
	if s.ViewBytes <= 0 || vc.Bytes() != s.ViewBytes {
		t.Fatalf("byte gauge %d vs cache %d", s.ViewBytes, vc.Bytes())
	}
	rel1()
	rel2()
}

func TestViewCacheSingleflight(t *testing.T) {
	cl, _ := epochCluster(t)
	ctrs := &obs.FastPathCounters{}
	vc := NewViewCache(0, ctrs)
	snap, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	var wg sync.WaitGroup
	arrs := make([]*array.Array, 8)
	for i := range arrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, rel, err := vc.Acquire("A", snap, nil)
			if err != nil {
				t.Error(err)
				return
			}
			a.EachCell(func(p array.Point, tup array.Tuple) bool { return true })
			arrs[i] = a
			rel()
		}(i)
	}
	wg.Wait()
	for _, a := range arrs[1:] {
		if a != arrs[0] {
			t.Fatal("concurrent acquires returned different arrays")
		}
	}
	if s := ctrs.Snapshot(); s.ViewMisses != 1 {
		t.Fatalf("misses = %d, want exactly one builder", s.ViewMisses)
	}
}

func TestViewCacheInvalidationOnPublish(t *testing.T) {
	cl, _ := epochCluster(t)
	ctrs := &obs.FastPathCounters{}
	vc := NewViewCache(0, ctrs)
	cl.Epochs().OnPublish(vc.InvalidateBefore)

	oldSnap, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer oldSnap.Release()
	oldArr, oldRel, err := vc.Acquire("A", oldSnap, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Commit: overwrite one chunk, publish epoch 2. The pinned old entry is
	// marked stale but survives until its release.
	mod := array.New(fig1Schema())
	if err := mod.Set(array.Point{1, 2}, array.Tuple{99, 99}); err != nil {
		t.Fatal(err)
	}
	newCh := mod.ChunkByKey(mod.ChunkKeys()[0])
	overwriteChunk(t, cl, "A", newCh.Key(), newCh)

	// The old view still answers its epoch's content.
	if tup, ok := oldArr.Get(array.Point{1, 2}); ok && tup[0] == 99 {
		t.Fatalf("stale pinned view observed the new commit: %v", tup)
	}

	newSnap, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer newSnap.Release()
	newArr, newRel, err := vc.Acquire("A", newSnap, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer newRel()
	if newArr == oldArr {
		t.Fatal("epoch 2 acquire returned the epoch 1 view")
	}
	if tup, ok := newArr.Get(array.Point{1, 2}); !ok || tup[0] != 99 {
		t.Fatalf("epoch 2 view missing committed write: %v (ok=%v)", tup, ok)
	}

	// Releasing the stale pin reclaims its bytes; only the fresh entry stays.
	before := vc.Bytes()
	oldRel()
	if after := vc.Bytes(); after >= before {
		t.Fatalf("stale entry not reclaimed on release: bytes %d -> %d", before, after)
	}
}

func TestViewCacheEviction(t *testing.T) {
	cl, _ := epochCluster(t)
	ctrs := &obs.FastPathCounters{}
	vc := NewViewCache(1, ctrs) // budget far below one view

	snap, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	_, rel, err := vc.Acquire("A", snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	// The entry was pinned during build, so it survives until a later
	// insert triggers eviction. Publish a new epoch and acquire again.
	cl.Epochs().Publish()
	snap2, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Release()
	_, rel2, err := vc.Acquire("A", snap2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if s := ctrs.Snapshot(); s.ViewEvictions == 0 {
		t.Fatal("over-budget cache never evicted")
	}
}
