package cluster

import (
	"math"
	"testing"
)

func TestLedgerCharges(t *testing.T) {
	m := CostModel{Tntwk: 2, Tcpu: 3}
	l := NewLedger(3, m)
	l.ChargeTransfer(0, 10) // ntwk[0] = 20
	l.ChargeJoin(1, 10)     // cpu[1]  = 30
	if got := l.Ntwk(0); got != 20 {
		t.Errorf("Ntwk(0) = %v, want 20", got)
	}
	if got := l.CPU(1); got != 30 {
		t.Errorf("CPU(1) = %v, want 30", got)
	}
	if got := l.Cost(); got != 30 {
		t.Errorf("Cost = %v, want 30 (max of max-ntwk and max-cpu)", got)
	}
	if got := l.MaxNtwk(); got != 20 {
		t.Errorf("MaxNtwk = %v", got)
	}
	if got := l.MaxCPU(); got != 30 {
		t.Errorf("MaxCPU = %v", got)
	}
}

func TestLedgerCoordinatorTransfersFree(t *testing.T) {
	l := NewLedger(2, CostModel{Tntwk: 1, Tcpu: 1})
	l.ChargeTransfer(Coordinator, 1000)
	if l.Cost() != 0 {
		t.Error("coordinator transfers must not charge worker ledgers")
	}
}

func TestLedgerCostWithMatchesApply(t *testing.T) {
	l := NewLedger(3, CostModel{Tntwk: 1, Tcpu: 1})
	l.ChargeTransfer(0, 5)
	l.ChargeJoin(2, 7)
	extraN := []float64{0, 4, 0}
	extraC := []float64{9, 0, 0}
	want := l.CostWith(extraN, extraC)
	l.Apply(extraN, extraC)
	if got := l.Cost(); got != want {
		t.Errorf("CostWith = %v but Cost after Apply = %v", want, got)
	}
	if want != 9 {
		t.Errorf("objective = %v, want 9", want)
	}
	// Nil extras behave as zero.
	if got := l.CostWith(nil, nil); got != l.Cost() {
		t.Errorf("CostWith(nil,nil) = %v, want %v", got, l.Cost())
	}
}

func TestLedgerAddScaleClone(t *testing.T) {
	a := NewLedger(2, CostModel{Tntwk: 1, Tcpu: 1})
	a.ChargeTransfer(0, 2)
	b := a.Clone()
	b.ChargeJoin(1, 4)
	if a.CPU(1) != 0 {
		t.Error("Clone must be independent")
	}
	a.Add(b)
	if a.Ntwk(0) != 4 || a.CPU(1) != 4 {
		t.Errorf("Add got ntwk=%v cpu=%v", a.Ntwk(0), a.CPU(1))
	}
	a.Scale(0.5)
	if a.Ntwk(0) != 2 || a.CPU(1) != 2 {
		t.Error("Scale must multiply all charges")
	}
}

func TestDefaultCostModelCalibration(t *testing.T) {
	m := DefaultCostModel()
	// 125 MB/s link: one byte should take 8 ns.
	if math.Abs(m.Tntwk-8e-9) > 1e-15 {
		t.Errorf("Tntwk = %v, want 8e-9", m.Tntwk)
	}
	if m.Tcpu <= 0 {
		t.Error("Tcpu must be positive")
	}
}

func TestLedgerString(t *testing.T) {
	l := NewLedger(1, DefaultCostModel())
	if s := l.String(); s == "" {
		t.Error("String must render something")
	}
}
