package cluster

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

// epochCluster loads the Figure 1 array on 3 nodes and enables snapshots.
func epochCluster(t *testing.T) (*Cluster, *array.Array) {
	t.Helper()
	cl, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	a := fig1Array()
	if err := cl.LoadArray(a, &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	cl.Epochs().Enable()
	return cl, a
}

// overwriteChunk simulates what the committer does to one chunk: retain the
// pre-image, overwrite the store copy, update the catalog, and publish.
func overwriteChunk(t *testing.T, cl *Cluster, name string, key array.ChunkKey, ch *array.Chunk) {
	t.Helper()
	home, ok := cl.Catalog().Home(name, key)
	if !ok {
		t.Fatalf("chunk %v has no home", key)
	}
	prev, err := cl.GetAt(home, name, key)
	if err != nil {
		t.Fatal(err)
	}
	cl.Epochs().Retain(name, key, prev)
	if err := cl.PutAt(home, name, ch); err != nil {
		t.Fatal(err)
	}
	if err := cl.Catalog().SetChunk(name, key, home, ch.SizeBytes(), ch.NumCells()); err != nil {
		t.Fatal(err)
	}
	cl.Epochs().Publish()
}

func TestEpochSnapshotSeesRetainedVersion(t *testing.T) {
	cl, a := epochCluster(t)
	es := cl.Epochs()
	if es.Current() != 1 {
		t.Fatalf("Current = %d after Enable, want 1", es.Current())
	}

	old, err := es.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer old.Release()

	// Overwrite one chunk with modified content and publish epoch 2.
	mod := array.New(fig1Schema())
	if err := mod.Set(array.Point{1, 2}, array.Tuple{99, 99}); err != nil {
		t.Fatal(err)
	}
	newCh := mod.ChunkByKey(mod.ChunkKeys()[0])
	key := newCh.Key()
	if a.ChunkByKey(key) == nil {
		t.Fatalf("base array has no chunk %v", key)
	}
	overwriteChunk(t, cl, "A", key, newCh)

	// The pinned snapshot must still see the pre-image.
	got, err := old.Chunk("A", key)
	if err != nil {
		t.Fatal(err)
	}
	if string(array.EncodeChunk(got)) != string(array.EncodeChunk(a.ChunkByKey(key))) {
		t.Error("pinned snapshot observed the overwritten content")
	}

	// A fresh snapshot at epoch 2 sees the new content.
	cur, err := es.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.Epoch() != 2 {
		t.Fatalf("fresh snapshot epoch = %d, want 2", cur.Epoch())
	}
	got2, err := cur.Chunk("A", key)
	if err != nil {
		t.Fatal(err)
	}
	if string(array.EncodeChunk(got2)) != string(array.EncodeChunk(newCh)) {
		t.Error("fresh snapshot did not observe the committed content")
	}
}

func TestEpochReclaimOnRelease(t *testing.T) {
	cl, a := epochCluster(t)
	es := cl.Epochs()
	snap, err := es.Acquire()
	if err != nil {
		t.Fatal(err)
	}

	key := a.ChunkKeys()[1]
	home, _ := cl.Catalog().Home("A", key)
	prev, err := cl.GetAt(home, "A", key)
	if err != nil {
		t.Fatal(err)
	}
	es.Retain("A", key, prev)
	es.Publish()

	if st := es.Stats(); st.Pins != 1 || st.RetainedVers != 1 || st.RetainedBytes <= 0 {
		t.Fatalf("before release: %+v, want 1 pin, 1 retained version", st)
	}
	snap.Release()
	snap.Release() // idempotent
	if st := es.Stats(); st.Pins != 0 || st.RetainedVers != 0 || st.RetainedBytes != 0 {
		t.Fatalf("after release: %+v, want everything reclaimed", st)
	}
}

func TestEpochRetainFirstPreImageWins(t *testing.T) {
	cl, a := epochCluster(t)
	es := cl.Epochs()
	snap, err := es.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// Two retentions of the same chunk within one epoch: the second is
	// intra-batch state no reader can have pinned, so the first sticks.
	mod := array.New(fig1Schema())
	if err := mod.Set(array.Point{1, 2}, array.Tuple{7, 7}); err != nil {
		t.Fatal(err)
	}
	second := mod.ChunkByKey(mod.ChunkKeys()[0])
	key := second.Key()
	first := a.ChunkByKey(key)
	es.Retain("A", key, first)
	es.Retain("A", key, second)
	if st := es.Stats(); st.RetainedVers != 1 {
		t.Fatalf("retained %d versions, want 1", st.RetainedVers)
	}
	if enc, ok := es.lookupRetained("A", key, snap.Epoch()); !ok ||
		string(enc) != string(array.EncodeChunk(first)) {
		t.Error("retained lookup must return the first pre-image of the epoch")
	}
}

func TestEpochScratchNamespacesInvisible(t *testing.T) {
	cl, _ := epochCluster(t)
	// A staged scratch array must never appear in a published epoch.
	sch := array.MustSchema("A#stage",
		[]array.Dimension{{Name: "i", Start: 1, End: 6, ChunkSize: 2}},
		[]array.Attribute{{Name: "r", Type: array.Int64}},
	)
	if err := cl.Catalog().Register(sch); err != nil {
		t.Fatal(err)
	}
	cl.Epochs().Publish()
	snap, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	for _, n := range snap.Names() {
		if n != "A" {
			t.Errorf("snapshot exposes %q; scratch namespaces must be filtered", n)
		}
	}
	if snap.Schema("A#stage") != nil {
		t.Error("snapshot resolves a scratch schema")
	}
}

func TestEpochDisabledIsFree(t *testing.T) {
	cl, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	es := cl.Epochs()
	if es.Enabled() {
		t.Fatal("epochs must start disabled")
	}
	if ep := es.Publish(); ep != 0 {
		t.Fatalf("Publish while disabled = %d, want 0", ep)
	}
	es.Retain("A", array.ChunkKey("k"), nil)
	if _, err := es.Acquire(); err == nil {
		t.Fatal("Acquire must fail while disabled")
	}
	if st := es.Stats(); st.RetainedVers != 0 {
		t.Fatalf("disabled manager retained %d versions", st.RetainedVers)
	}
}
