package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/obs"
)

// ErrNodeDown is the sentinel for a node that is unreachable as a whole —
// blacked out by fault injection or dead on the network — as opposed to an
// application failure (chunk not resident, decode error) reported by a live
// node. Failover paths test for it with IsNodeDown and retry against
// replicas instead of aborting the batch.
var ErrNodeDown = errors.New("cluster: node down")

// IsNodeDown reports whether err means the addressed node is unreachable:
// either it wraps ErrNodeDown (fault injection, daemon shutdown) or it
// carries a network-level error (dial refused, timeout, reset) from a real
// fabric. Application errors from a live node — including transport
// RemoteError — are not node-down.
func IsNodeDown(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNodeDown) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Fault-rule wildcards: AnyNode matches every worker node, AnyOp every
// fabric operation.
const (
	AnyNode = -1
	AnyOp   = "*"
)

// FaultKind selects what an injected fault does to a matched operation.
type FaultKind uint8

const (
	// FaultError fails the operation before it reaches the inner fabric
	// (the node never saw the request).
	FaultError FaultKind = iota
	// FaultLatency delays the operation; it then proceeds normally, so a
	// latency spike composes with context deadlines rather than errors.
	FaultLatency
	// FaultDropAfterWrite lets a mutating operation apply on the inner
	// fabric and then reports failure — the chunk shipped but the ack was
	// lost, the classic ambiguous outcome crash consistency must survive.
	FaultDropAfterWrite
)

// String names the kind for diagnostics and counters.
func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultLatency:
		return "latency"
	case FaultDropAfterWrite:
		return "drop-after-write"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// FaultRule describes one injected fault. Matching is deterministic by
// default: the rule skips its first After matching operations, then fires on
// every match (up to Count total firings, 0 = unlimited). Setting P in (0,1)
// makes firing probabilistic under the fabric's seeded generator — still
// reproducible for a fixed seed and operation order.
type FaultRule struct {
	// Node is the target worker, or AnyNode.
	Node int
	// Op is the fabric operation name ("Put", "Get", "Has", "Delete",
	// "Merge", "Keys", "DropArray", "Stats", "ExecuteJoin", "Offer",
	// "Patch", "GetBatch", "PutBatch"), or AnyOp. The wire-efficiency
	// operations also match their primitive aliases — "Put" gates Offer,
	// Patch, and PutBatch, "Get" gates GetBatch — so a rule that forbids
	// writes on a node cannot be bypassed by the wire path.
	Op string
	// Kind is what the fault does.
	Kind FaultKind
	// After skips the first After matching operations.
	After int
	// Count caps how many times the rule fires (0 = unlimited).
	Count int
	// Latency is the injected delay for FaultLatency.
	Latency time.Duration
	// Err overrides the injected error for FaultError (default: a wrapped
	// ErrNodeDown, so failover treats the node as unreachable).
	Err error
	// P is the firing probability for matched operations; 0 (and 1) mean
	// always fire.
	P float64

	hits  atomic.Int64
	fired atomic.Int64
}

// Fired returns how many times the rule has injected its fault.
func (r *FaultRule) Fired() int64 { return r.fired.Load() }

// FaultCounts is a snapshot of every fault the fabric has injected, by
// class.
type FaultCounts struct {
	Errors      int64
	Latencies   int64
	AcksDropped int64
	Blackouts   int64
}

// Total sums the injected faults across classes.
func (c FaultCounts) Total() int64 {
	return c.Errors + c.Latencies + c.AcksDropped + c.Blackouts
}

// FaultFabric wraps any Fabric and injects deterministic, seedable faults:
// per-node/per-op error returns, latency spikes, drop-after-write (the
// write applies but the ack is lost), and full node blackouts. Every
// injected fault is counted by class. Use AsFabric to build the value a
// cluster should run on: it preserves the inner fabric's join-pushdown
// capability, so a FaultFabric over a plain Fabric does not accidentally
// advertise ExecuteJoin.
type FaultFabric struct {
	inner Fabric
	join  JoinFabric // inner's pushdown capability, when present
	wire  WireFabric // inner's wire-efficiency capability, when present

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*FaultRule
	dark  map[int]bool

	errors      obs.Counter
	latencies   obs.Counter
	acksDropped obs.Counter
	blackouts   obs.Counter
}

// NewFaultFabric wraps inner with a fault injector seeded for reproducible
// probabilistic rules.
func NewFaultFabric(inner Fabric, seed int64) *FaultFabric {
	f := &FaultFabric{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		dark:  make(map[int]bool),
	}
	f.join, _ = inner.(JoinFabric)
	f.wire, _ = inner.(WireFabric)
	return f
}

// AsFabric returns the fabric a cluster should be built on: the FaultFabric
// itself when the inner fabric has no optional capabilities, or a wrapper
// advertising exactly the capabilities the inner fabric has. This keeps the
// `fabric.(JoinFabric)` and `fabric.(WireFabric)` type assertions truthful:
// a FaultFabric over a plain Fabric does not accidentally advertise
// ExecuteJoin or the wire-efficiency protocol.
func (f *FaultFabric) AsFabric() Fabric {
	switch {
	case f.join != nil && f.wire != nil:
		return &faultJoinWireFabric{faultJoinFabric{f}}
	case f.join != nil:
		return &faultJoinFabric{f}
	case f.wire != nil:
		return &faultWireFabric{f}
	default:
		return f
	}
}

// Inject registers a fault rule and returns it (for Fired inspection).
// Rules are evaluated in registration order; the first non-latency match
// decides the operation's fate, while latency rules compose.
func (f *FaultFabric) Inject(r *FaultRule) *FaultRule {
	f.mu.Lock()
	f.rules = append(f.rules, r)
	f.mu.Unlock()
	return r
}

// ClearRules removes every registered rule (blackouts persist).
func (f *FaultFabric) ClearRules() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// Blackout makes every operation against the node fail with ErrNodeDown
// until Restore. The inner fabric is never reached, so no write applies.
func (f *FaultFabric) Blackout(node int) {
	f.mu.Lock()
	f.dark[node] = true
	f.mu.Unlock()
}

// Restore lifts a blackout.
func (f *FaultFabric) Restore(node int) {
	f.mu.Lock()
	delete(f.dark, node)
	f.mu.Unlock()
}

// FaultCounts snapshots the injected-fault counters.
func (f *FaultFabric) FaultCounts() FaultCounts {
	return FaultCounts{
		Errors:      f.errors.Load(),
		Latencies:   f.latencies.Load(),
		AcksDropped: f.acksDropped.Load(),
		Blackouts:   f.blackouts.Load(),
	}
}

// verdict is the decided fate of one operation.
type verdict struct {
	err     error // fail before the inner fabric runs
	dropAck bool  // run the inner op, then report failure
}

// decide evaluates blackout state and rules for one operation. aliases are
// extra op names the operation answers to: the wire-efficiency writes
// (offer adoption, patch, batched put) are puts of chunk content in
// disguise, and the batched read is a get, so rules targeting the
// primitive op gate them too — otherwise a chaos scenario that forbids
// writes on a node would be bypassed by the wire path, silently voiding
// the atomicity guarantees the chaos suite checks.
func (f *FaultFabric) decide(node int, op string, aliases ...string) verdict {
	f.mu.Lock()
	if f.dark[node] {
		f.mu.Unlock()
		f.blackouts.Add(1)
		return verdict{err: fmt.Errorf("cluster: fault: %s on blacked-out node %d: %w", op, node, ErrNodeDown)}
	}
	var sleep time.Duration
	var out verdict
	for _, r := range f.rules {
		if r.Node != AnyNode && r.Node != node {
			continue
		}
		if r.Op != AnyOp && r.Op != op && !opMatches(r.Op, aliases) {
			continue
		}
		if int(r.hits.Add(1)) <= r.After {
			continue
		}
		if r.Count > 0 && r.fired.Load() >= int64(r.Count) {
			continue
		}
		if r.P > 0 && r.P < 1 && f.rng.Float64() >= r.P {
			continue
		}
		r.fired.Add(1)
		if r.Kind == FaultLatency {
			sleep += r.Latency
			continue // latency composes; keep evaluating
		}
		if r.Kind == FaultDropAfterWrite {
			out.dropAck = true
		} else {
			cause := r.Err
			if cause == nil {
				cause = ErrNodeDown
			}
			out.err = fmt.Errorf("cluster: fault: injected %s failure on node %d: %w", op, node, cause)
		}
		break
	}
	f.mu.Unlock()
	if sleep > 0 {
		f.latencies.Add(1)
		time.Sleep(sleep)
	}
	if out.err != nil {
		f.errors.Add(1)
	}
	return out
}

// opMatches reports whether ruleOp names one of the operation's aliases.
func opMatches(ruleOp string, aliases []string) bool {
	for _, a := range aliases {
		if ruleOp == a {
			return true
		}
	}
	return false
}

// ackLost builds the drop-after-write error for a mutating op that applied.
func (f *FaultFabric) ackLost(node int, op string) error {
	f.acksDropped.Add(1)
	return fmt.Errorf("cluster: fault: ack for %s on node %d lost (write applied)", op, node)
}

// Put implements Fabric.
func (f *FaultFabric) Put(node int, arrayName string, ch *array.Chunk) error {
	v := f.decide(node, "Put")
	if v.err != nil {
		return v.err
	}
	err := f.inner.Put(node, arrayName, ch)
	if err == nil && v.dropAck {
		return f.ackLost(node, "Put")
	}
	return err
}

// Get implements Fabric.
func (f *FaultFabric) Get(node int, arrayName string, key array.ChunkKey) (*array.Chunk, error) {
	if v := f.decide(node, "Get"); v.err != nil {
		return nil, v.err
	}
	return f.inner.Get(node, arrayName, key)
}

// Has implements Fabric.
func (f *FaultFabric) Has(node int, arrayName string, key array.ChunkKey) (bool, error) {
	if v := f.decide(node, "Has"); v.err != nil {
		return false, v.err
	}
	return f.inner.Has(node, arrayName, key)
}

// Delete implements Fabric.
func (f *FaultFabric) Delete(node int, arrayName string, key array.ChunkKey) (bool, error) {
	v := f.decide(node, "Delete")
	if v.err != nil {
		return false, v.err
	}
	ok, err := f.inner.Delete(node, arrayName, key)
	if err == nil && v.dropAck {
		return false, f.ackLost(node, "Delete")
	}
	return ok, err
}

// Merge implements Fabric.
func (f *FaultFabric) Merge(node int, arrayName string, src *array.Chunk, spec MergeSpec) error {
	v := f.decide(node, "Merge")
	if v.err != nil {
		return v.err
	}
	err := f.inner.Merge(node, arrayName, src, spec)
	if err == nil && v.dropAck {
		return f.ackLost(node, "Merge")
	}
	return err
}

// Keys implements Fabric.
func (f *FaultFabric) Keys(node int, arrayName string) ([]array.ChunkKey, error) {
	if v := f.decide(node, "Keys"); v.err != nil {
		return nil, v.err
	}
	return f.inner.Keys(node, arrayName)
}

// DropArray implements Fabric.
func (f *FaultFabric) DropArray(node int, arrayName string) (int, error) {
	v := f.decide(node, "DropArray")
	if v.err != nil {
		return 0, v.err
	}
	n, err := f.inner.DropArray(node, arrayName)
	if err == nil && v.dropAck {
		return 0, f.ackLost(node, "DropArray")
	}
	return n, err
}

// Stats implements Fabric.
func (f *FaultFabric) Stats(node int) (FabricStats, error) {
	if v := f.decide(node, "Stats"); v.err != nil {
		return FabricStats{}, v.err
	}
	return f.inner.Stats(node)
}

// NumNodes implements Fabric.
func (f *FaultFabric) NumNodes() int { return f.inner.NumNodes() }

// Close implements Fabric.
func (f *FaultFabric) Close() error { return f.inner.Close() }

// offerBatch, patch, getEncodedBatch, and putEncodedBatch are the
// fault-gated wire operations, promoted to WireFabric methods only by the
// wire-capable wrapper faces below. An offer is a mutating operation (an
// accepted offer adopts content), so a drop-after-write fault on it — like
// on Patch and PutEncodedBatch — lets the inner op apply and then reports
// failure.
func (f *FaultFabric) offerBatch(node int, items []WireItem) ([]bool, error) {
	v := f.decide(node, "Offer", "Put")
	if v.err != nil {
		return nil, v.err
	}
	acc, err := f.wire.OfferBatch(node, items)
	if err == nil && v.dropAck {
		return nil, f.ackLost(node, "Offer")
	}
	return acc, err
}

func (f *FaultFabric) patch(node int, arrayName string, key array.ChunkKey, baseHash uint64, delta []byte, fullSize int64) (bool, error) {
	v := f.decide(node, "Patch", "Put")
	if v.err != nil {
		return false, v.err
	}
	applied, err := f.wire.Patch(node, arrayName, key, baseHash, delta, fullSize)
	if err == nil && v.dropAck {
		return false, f.ackLost(node, "Patch")
	}
	return applied, err
}

func (f *FaultFabric) getEncodedBatch(node int, items []WireItem) ([][]byte, error) {
	if v := f.decide(node, "GetBatch", "Get"); v.err != nil {
		return nil, v.err
	}
	return f.wire.GetEncodedBatch(node, items)
}

func (f *FaultFabric) putEncodedBatch(node int, items []WireItem) error {
	v := f.decide(node, "PutBatch", "Put")
	if v.err != nil {
		return v.err
	}
	err := f.wire.PutEncodedBatch(node, items)
	if err == nil && v.dropAck {
		return f.ackLost(node, "PutBatch")
	}
	return err
}

// faultJoinFabric is the join-capable face of a FaultFabric over a
// JoinFabric inner.
type faultJoinFabric struct {
	*FaultFabric
}

// ExecuteJoin implements JoinFabric. A drop-after-write fault on the join
// discards the computed partials (the response was lost; nothing mutated).
func (f *faultJoinFabric) ExecuteJoin(node int, req JoinRequest) ([]*array.Chunk, error) {
	v := f.decide(node, "ExecuteJoin")
	if v.err != nil {
		return nil, v.err
	}
	parts, err := f.join.ExecuteJoin(node, req)
	if err == nil && v.dropAck {
		return nil, f.ackLost(node, "ExecuteJoin")
	}
	return parts, err
}

// faultWireFabric is the wire-capable face of a FaultFabric over a
// WireFabric inner that lacks join pushdown.
type faultWireFabric struct {
	*FaultFabric
}

func (f *faultWireFabric) OfferBatch(node int, items []WireItem) ([]bool, error) {
	return f.offerBatch(node, items)
}

func (f *faultWireFabric) Patch(node int, arrayName string, key array.ChunkKey, baseHash uint64, delta []byte, fullSize int64) (bool, error) {
	return f.patch(node, arrayName, key, baseHash, delta, fullSize)
}

func (f *faultWireFabric) GetEncodedBatch(node int, items []WireItem) ([][]byte, error) {
	return f.getEncodedBatch(node, items)
}

func (f *faultWireFabric) PutEncodedBatch(node int, items []WireItem) error {
	return f.putEncodedBatch(node, items)
}

// faultJoinWireFabric is the face over an inner fabric with both join
// pushdown and the wire protocol.
type faultJoinWireFabric struct {
	faultJoinFabric
}

func (f *faultJoinWireFabric) OfferBatch(node int, items []WireItem) ([]bool, error) {
	return f.offerBatch(node, items)
}

func (f *faultJoinWireFabric) Patch(node int, arrayName string, key array.ChunkKey, baseHash uint64, delta []byte, fullSize int64) (bool, error) {
	return f.patch(node, arrayName, key, baseHash, delta, fullSize)
}

func (f *faultJoinWireFabric) GetEncodedBatch(node int, items []WireItem) ([][]byte, error) {
	return f.getEncodedBatch(node, items)
}

func (f *faultJoinWireFabric) PutEncodedBatch(node int, items []WireItem) error {
	return f.putEncodedBatch(node, items)
}

var (
	_ WireFabric = (*faultWireFabric)(nil)
	_ WireFabric = (*faultJoinWireFabric)(nil)
	_ JoinFabric = (*faultJoinWireFabric)(nil)
)
