package cluster

import (
	"fmt"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/storage"
)

// Fabric is the data plane of the cluster: every chunk read, write, merge,
// and eviction against a worker node goes through it. Two implementations
// exist: LocalFabric (in-process stores, the default, zero network) and the
// TCP fabric in internal/transport (real byte shipping to node daemons).
// The coordinator's store is always local to the process driving the
// cluster and is not addressed through the fabric.
//
// Node indices are worker IDs in [0, NumNodes()).
type Fabric interface {
	// Put stores a chunk on a node, replacing any previous version.
	Put(node int, arrayName string, ch *array.Chunk) error
	// Get fetches a chunk from a node. The returned chunk is a private
	// copy; the error reports non-residency or decode failure.
	Get(node int, arrayName string, key array.ChunkKey) (*array.Chunk, error)
	// Has reports whether the chunk is resident on the node.
	Has(node int, arrayName string, key array.ChunkKey) (bool, error)
	// Delete evicts a chunk, reporting whether it was resident.
	Delete(node int, arrayName string, key array.ChunkKey) (bool, error)
	// Merge folds src into the node's resident chunk with the same
	// coordinate (creating it if absent) under the spec's semantics. The
	// source chunk is consumed: a cell merge may move its tuples instead
	// of cloning them, so callers must not reuse src afterwards.
	Merge(node int, arrayName string, src *array.Chunk, spec MergeSpec) error
	// Keys lists the node's resident chunk keys for one array, sorted.
	Keys(node int, arrayName string) ([]array.ChunkKey, error)
	// DropArray evicts every chunk of the named array from the node and
	// returns how many were dropped.
	DropArray(node int, arrayName string) (int, error)
	// Stats reports the node's storage footprint.
	Stats(node int) (FabricStats, error)
	// NumNodes returns the worker count the fabric addresses.
	NumNodes() int
	// Close releases fabric resources (connections). The local fabric is a
	// no-op.
	Close() error
}

// FabricStats is one node's storage footprint as reported by the fabric,
// plus the cumulative data-plane counters of the traffic this process has
// driven to the node.
type FabricStats struct {
	NumChunks int
	Bytes     int64
	Net       NetCounters
}

// NetCounters is the cumulative per-node data-plane traffic, from the
// coordinator's point of view (out = coordinator→node). On the LocalFabric
// only Requests and the byte counters are meaningful (chunk payload bytes
// moved by Put/Get/Merge); a network fabric fills in frames, retries,
// reconnects, pool traffic, and remote errors.
type NetCounters struct {
	// Requests counts operations issued to the node, by message type name
	// on a network fabric ("PutChunk", "ExecuteJoin", …) and by operation
	// name locally.
	Requests map[string]int64
	// BytesOut and BytesIn are payload (local) or raw socket (network)
	// bytes moved to and from the node.
	BytesOut int64
	BytesIn  int64
	// FramesOut and FramesIn count protocol frames on a network fabric.
	FramesOut int64
	FramesIn  int64
	// Retries counts re-attempted requests; Reconnects counts dials.
	Retries    int64
	Reconnects int64
	// PoolHits and PoolMisses describe connection reuse.
	PoolHits   int64
	PoolMisses int64
	// RemoteErrors counts application-level failures reported by the node.
	RemoteErrors int64

	// Wire-efficiency savings. Both fabrics report these with the same
	// semantics so predicted-vs-measured validation can compare them.
	//
	// DedupHits counts transfer offers the node satisfied from content it
	// already held (resident or sidelined), skipping the body entirely.
	DedupHits int64
	// BytesSavedDedup is the encoded payload bytes those accepted offers
	// avoided shipping.
	BytesSavedDedup int64
	// DeltaShips counts chunk updates shipped as ACHΔ deltas instead of
	// full encodings.
	DeltaShips int64
	// BytesSavedDelta is the full-encoding bytes minus the delta bytes for
	// those ships.
	BytesSavedDelta int64
	// BytesSavedCompress is raw payload bytes minus wire bytes saved by
	// per-frame compression (zero on the local fabric, which has no wire).
	BytesSavedCompress int64
	// RoundTripsSaved counts request round trips avoided: one per accepted
	// dedup offer (the skipped body ship) and n−1 per n-item batched call.
	RoundTripsSaved int64
}

// TotalRequests sums the per-type request counts.
func (n NetCounters) TotalRequests() int64 {
	var total int64
	for _, v := range n.Requests {
		total += v
	}
	return total
}

// JoinRequest asks a node to join two chunks resident in its local store
// and return the partial view-state chunks of the registered view. It is
// the unit of pushed-down join execution: the paper's nodes compute joins
// where the chunks live and ship only differentials.
type JoinRequest struct {
	// View names a view definition previously registered with the node.
	View string
	// P and Q identify the resident chunk pair (P is the α side).
	PArray string
	PKey   array.ChunkKey
	QArray string
	QKey   array.ChunkKey
	// BothDirections marks self-join pairs evaluated in both orientations.
	BothDirections bool
	// Sign scales the contributions (−1 retracts, for deletion batches).
	Sign float64
}

// JoinFabric is implemented by fabrics that can execute chunk-pair joins on
// the node holding the chunks, returning the partial view chunks. Fabrics
// without it (LocalFabric) fall back to executing joins in the driving
// process against fabric-fetched chunks.
type JoinFabric interface {
	Fabric
	ExecuteJoin(node int, req JoinRequest) ([]*array.Chunk, error)
}

// WireItem identifies one chunk in a batched wire-efficiency exchange. In
// offers and encoded reads only the identity fields are set; in encoded
// writes Data carries the canonical ACH1 encoding (Hash and Size describe
// it).
type WireItem struct {
	Array string
	Key   array.ChunkKey
	// Hash is the FNV-1a 64 content hash of the canonical encoding.
	Hash uint64
	// Size is the encoded length in bytes (the cheap collision guard).
	Size int64
	// Data is the encoding itself, present only in PutEncodedBatch items.
	Data []byte
}

// WireFabric is implemented by fabrics that support the wire-efficiency
// protocol: content-addressed dedup offers, ACHΔ delta patches, and batched
// encoded chunk movement. Callers must tolerate a fabric without it (assert
// and fall back to plain Put/Get shipping).
type WireFabric interface {
	Fabric
	// OfferBatch asks the node whether it can produce each offered chunk
	// (identified by content hash and encoded size) without receiving the
	// body. Accepted offers leave the chunk resident under its key.
	OfferBatch(node int, items []WireItem) ([]bool, error)
	// Patch applies an ACHΔ delta to the node's resident chunk, but only
	// when the resident content hash matches baseHash. applied=false means
	// the caller must fall back to a full ship; the call is idempotent (a
	// retried duplicate finds the new hash resident and reports false,
	// after which the fallback ships identical content). fullSize is the
	// encoded size of the post-patch chunk, used for savings accounting.
	Patch(node int, arrayName string, key array.ChunkKey, baseHash uint64, delta []byte, fullSize int64) (bool, error)
	// GetEncodedBatch fetches the canonical encodings of resident chunks
	// in one exchange. The returned buffers must be treated as read-only.
	GetEncodedBatch(node int, items []WireItem) ([][]byte, error)
	// PutEncodedBatch lands encodings verbatim in one exchange.
	PutEncodedBatch(node int, items []WireItem) error
}

// LocalFabric is the in-process fabric: each node is a storage.Store in
// this process and chunk movement is a map operation. It preserves the
// seed's simulator behavior exactly — the deterministic cost ledger remains
// the batch's reported maintenance time. Per-node operation and payload
// counters make the in-process data plane comparable to the TCP fabric's
// wire counters.
type LocalFabric struct {
	stores []*storage.Store
	net    []*localCounters
}

// localCounters is one node's in-process traffic accounting. The byte
// counters are chunk payload sizes (the serialized size the cost model
// charges), not socket bytes.
type localCounters struct {
	mu       sync.Mutex
	requests map[string]int64
	bytesIn  obs.Counter
	bytesOut obs.Counter

	dedupHits       obs.Counter
	bytesSavedDedup obs.Counter
	deltaShips      obs.Counter
	bytesSavedDelta obs.Counter
	roundTripsSaved obs.Counter
}

func (c *localCounters) record(op string, in, out int64) {
	c.mu.Lock()
	c.requests[op]++
	c.mu.Unlock()
	c.bytesIn.Add(in)
	c.bytesOut.Add(out)
}

func (c *localCounters) snapshot() NetCounters {
	c.mu.Lock()
	reqs := make(map[string]int64, len(c.requests))
	for k, v := range c.requests {
		reqs[k] = v
	}
	c.mu.Unlock()
	return NetCounters{
		Requests:        reqs,
		BytesIn:         c.bytesIn.Load(),
		BytesOut:        c.bytesOut.Load(),
		DedupHits:       c.dedupHits.Load(),
		BytesSavedDedup: c.bytesSavedDedup.Load(),
		DeltaShips:      c.deltaShips.Load(),
		BytesSavedDelta: c.bytesSavedDelta.Load(),
		RoundTripsSaved: c.roundTripsSaved.Load(),
	}
}

// NewLocalFabric wraps per-node stores into a fabric.
func NewLocalFabric(stores []*storage.Store) *LocalFabric {
	net := make([]*localCounters, len(stores))
	for i := range net {
		net[i] = &localCounters{requests: make(map[string]int64)}
	}
	return &LocalFabric{stores: stores, net: net}
}

func (f *LocalFabric) store(node int) (*storage.Store, error) {
	if node < 0 || node >= len(f.stores) {
		return nil, fmt.Errorf("cluster: fabric node %d out of range [0, %d)", node, len(f.stores))
	}
	return f.stores[node], nil
}

// Put implements Fabric.
func (f *LocalFabric) Put(node int, arrayName string, ch *array.Chunk) error {
	s, err := f.store(node)
	if err != nil {
		return err
	}
	f.net[node].record("Put", ch.SizeBytes(), 0)
	return s.Put(arrayName, ch)
}

// Get implements Fabric.
func (f *LocalFabric) Get(node int, arrayName string, key array.ChunkKey) (*array.Chunk, error) {
	s, err := f.store(node)
	if err != nil {
		return nil, err
	}
	ch, err := s.Get(arrayName, key)
	if err != nil {
		f.net[node].record("Get", 0, 0)
		return nil, err
	}
	f.net[node].record("Get", 0, ch.SizeBytes())
	return ch, nil
}

// Has implements Fabric.
func (f *LocalFabric) Has(node int, arrayName string, key array.ChunkKey) (bool, error) {
	s, err := f.store(node)
	if err != nil {
		return false, err
	}
	f.net[node].record("Has", 0, 0)
	return s.Has(arrayName, key), nil
}

// Delete implements Fabric.
func (f *LocalFabric) Delete(node int, arrayName string, key array.ChunkKey) (bool, error) {
	s, err := f.store(node)
	if err != nil {
		return false, err
	}
	f.net[node].record("Delete", 0, 0)
	return s.Delete(arrayName, key)
}

// Merge implements Fabric.
func (f *LocalFabric) Merge(node int, arrayName string, src *array.Chunk, spec MergeSpec) error {
	s, err := f.store(node)
	if err != nil {
		return err
	}
	fn, err := spec.Func()
	if err != nil {
		return err
	}
	f.net[node].record("Merge", src.SizeBytes(), 0)
	return s.Merge(arrayName, src, fn)
}

// Keys implements Fabric.
func (f *LocalFabric) Keys(node int, arrayName string) ([]array.ChunkKey, error) {
	s, err := f.store(node)
	if err != nil {
		return nil, err
	}
	f.net[node].record("Keys", 0, 0)
	return s.Keys(arrayName), nil
}

// DropArray implements Fabric.
func (f *LocalFabric) DropArray(node int, arrayName string) (int, error) {
	s, err := f.store(node)
	if err != nil {
		return 0, err
	}
	f.net[node].record("DropArray", 0, 0)
	return s.DropArray(arrayName)
}

// OfferBatch implements WireFabric: each offer is answered by the node's
// store, which adopts matching content (resident or sidelined) under the
// offered key.
func (f *LocalFabric) OfferBatch(node int, items []WireItem) ([]bool, error) {
	s, err := f.store(node)
	if err != nil {
		return nil, err
	}
	c := f.net[node]
	c.record("Offer", 0, 0)
	if n := int64(len(items)) - 1; n > 0 {
		c.roundTripsSaved.Add(n)
	}
	out := make([]bool, len(items))
	for i, it := range items {
		if _, ok := s.TryAdopt(it.Array, it.Key, it.Hash, it.Size); ok {
			out[i] = true
			c.dedupHits.Add(1)
			c.bytesSavedDedup.Add(it.Size)
			c.roundTripsSaved.Add(1)
		}
	}
	return out, nil
}

// Patch implements WireFabric.
func (f *LocalFabric) Patch(node int, arrayName string, key array.ChunkKey, baseHash uint64, delta []byte, fullSize int64) (bool, error) {
	s, err := f.store(node)
	if err != nil {
		return false, err
	}
	c := f.net[node]
	c.record("Patch", int64(len(delta)), 0)
	applied, err := s.Patch(arrayName, key, baseHash, delta)
	if err != nil || !applied {
		return false, err
	}
	c.deltaShips.Add(1)
	if saved := fullSize - int64(len(delta)); saved > 0 {
		c.bytesSavedDelta.Add(saved)
	}
	return true, nil
}

// GetEncodedBatch implements WireFabric.
func (f *LocalFabric) GetEncodedBatch(node int, items []WireItem) ([][]byte, error) {
	s, err := f.store(node)
	if err != nil {
		return nil, err
	}
	c := f.net[node]
	c.record("GetBatch", 0, 0)
	if n := int64(len(items)) - 1; n > 0 {
		c.roundTripsSaved.Add(n)
	}
	out := make([][]byte, len(items))
	for i, it := range items {
		buf, ok := s.GetEncoded(it.Array, it.Key)
		if !ok {
			return nil, fmt.Errorf("cluster: chunk %v of %q not resident on node %d", it.Key, it.Array, node)
		}
		c.bytesOut.Add(int64(len(buf)))
		out[i] = buf
	}
	return out, nil
}

// PutEncodedBatch implements WireFabric.
func (f *LocalFabric) PutEncodedBatch(node int, items []WireItem) error {
	s, err := f.store(node)
	if err != nil {
		return err
	}
	c := f.net[node]
	c.record("PutBatch", 0, 0)
	if n := int64(len(items)) - 1; n > 0 {
		c.roundTripsSaved.Add(n)
	}
	for _, it := range items {
		c.bytesIn.Add(int64(len(it.Data)))
		if err := s.PutEncoded(it.Array, it.Key, it.Data); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Fabric.
func (f *LocalFabric) Stats(node int) (FabricStats, error) {
	s, err := f.store(node)
	if err != nil {
		return FabricStats{}, err
	}
	return FabricStats{
		NumChunks: s.NumChunks(),
		Bytes:     s.Bytes(),
		Net:       f.net[node].snapshot(),
	}, nil
}

// NumNodes implements Fabric.
func (f *LocalFabric) NumNodes() int { return len(f.stores) }

// Close implements Fabric.
func (f *LocalFabric) Close() error { return nil }

var _ WireFabric = (*LocalFabric)(nil)
