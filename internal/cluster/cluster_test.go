package cluster

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

func fig1Schema() *array.Schema {
	return array.MustSchema("A",
		[]array.Dimension{
			{Name: "i", Start: 1, End: 6, ChunkSize: 2},
			{Name: "j", Start: 1, End: 8, ChunkSize: 2},
		},
		[]array.Attribute{{Name: "r", Type: array.Int64}, {Name: "s", Type: array.Int64}},
	)
}

func fig1Array() *array.Array {
	a := array.New(fig1Schema())
	for _, c := range []struct {
		p array.Point
		t array.Tuple
	}{
		{array.Point{1, 2}, array.Tuple{2, 5}},
		{array.Point{1, 3}, array.Tuple{6, 3}},
		{array.Point{3, 4}, array.Tuple{2, 9}},
		{array.Point{4, 1}, array.Tuple{2, 1}},
		{array.Point{5, 7}, array.Tuple{4, 8}},
		{array.Point{6, 5}, array.Tuple{4, 3}},
	} {
		if err := a.Set(c.p, c.t); err != nil {
			panic(err)
		}
	}
	return a
}

func TestClusterLoadRoundRobinMatchesPaper(t *testing.T) {
	// Figure 1 (a): the 6 occupied chunks of A are distributed round-robin
	// in row-major order over 3 servers X, Y, Z: chunks 1..6 go to
	// X, Y, Z, X, Y, Z.
	cl, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	a := fig1Array()
	if err := cl.LoadArray(a, &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	keys := cl.Catalog().Keys("A")
	if len(keys) != 6 {
		t.Fatalf("catalog has %d chunks, want 6", len(keys))
	}
	for i, key := range keys {
		home, ok := cl.Catalog().Home("A", key)
		if !ok || home != i%3 {
			t.Errorf("chunk %d home = %d, want %d", i+1, home, i%3)
		}
		if !cl.Node(home).Store.Has("A", key) {
			t.Errorf("chunk %d not resident on its home node", i+1)
		}
	}
}

func TestClusterGatherRoundTrips(t *testing.T) {
	cl, _ := New(3)
	a := fig1Array()
	if err := cl.LoadArray(a, HashPlacement{}); err != nil {
		t.Fatal(err)
	}
	back, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a) {
		t.Error("Gather must reconstruct the loaded array")
	}
	if _, err := cl.Gather("missing"); err == nil {
		t.Error("gathering an unregistered array must fail")
	}
}

func TestClusterLoadDuplicate(t *testing.T) {
	cl, _ := New(2)
	a := fig1Array()
	if err := cl.LoadArray(a, &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(a, &RoundRobin{}); err == nil {
		t.Error("loading the same array twice must fail")
	}
}

func TestClusterStageDeltaAndTransfer(t *testing.T) {
	cl, _ := New(2)
	a := fig1Array()
	if err := cl.LoadArray(a, &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	s := a.Schema()
	d := array.NewChunk(s, array.ChunkCoord{0, 2})
	_ = d.Set(array.Point{1, 5}, array.Tuple{5, 6})
	if err := cl.StageDelta("A", []*array.Chunk{d}); err != nil {
		t.Fatal(err)
	}
	home, ok := cl.Catalog().Home("A", d.Key())
	if !ok || home != Coordinator {
		t.Fatalf("delta home = %d, want coordinator", home)
	}

	ledger := cl.NewLedger()
	if err := cl.Transfer(ledger, "A", d.Key(), Coordinator, 1); err != nil {
		t.Fatal(err)
	}
	if !cl.Node(1).Store.Has("A", d.Key()) {
		t.Error("transfer must materialize the chunk at the target")
	}
	model := cl.CostModel()
	size := float64(cl.Catalog().ChunkSize("A", d.Key()))
	recv := size * model.Tntwk * model.ReceiveFactor
	// Coordinator sends are free but the receiving worker's link is busy.
	if got := ledger.Ntwk(1); got != recv {
		t.Errorf("receiver charge = %v, want %v", got, recv)
	}
	if ledger.Ntwk(0) != 0 {
		t.Error("no other node should be charged")
	}
	if !cl.Catalog().HasReplica("A", d.Key(), 1) {
		t.Error("transfer must record a replica")
	}

	// Node-to-node transfer charges the sender fully and the receiver per
	// the receive factor.
	if err := cl.Transfer(ledger, "A", d.Key(), 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := ledger.Ntwk(1); got != recv+size*model.Tntwk {
		t.Errorf("sender charge = %v, want %v", got, recv+size*model.Tntwk)
	}
	if got := ledger.Ntwk(0); got != recv {
		t.Errorf("receiver charge = %v, want %v", got, recv)
	}
	// Transferring to a node that already has a replica is a free no-op.
	before := ledger.Ntwk(0)
	if err := cl.Transfer(ledger, "A", d.Key(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if ledger.Ntwk(0) != before {
		t.Error("transfer to an existing replica must be free")
	}
}

func TestClusterStageDeltaUnregistered(t *testing.T) {
	cl, _ := New(2)
	if err := cl.StageDelta("A", nil); err == nil {
		t.Error("staging deltas for an unregistered array must fail")
	}
}

func TestClusterFetchChunkPrefersLocal(t *testing.T) {
	cl, _ := New(2)
	a := fig1Array()
	_ = cl.LoadArray(a, &RoundRobin{})
	keys := cl.Catalog().Keys("A")
	home, _ := cl.Catalog().Home("A", keys[0])
	other := 1 - home
	// Not resident at other: FetchChunk falls back to home.
	ch, err := cl.FetchChunk("A", keys[0], other)
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Key().Coord().Equal(keys[0].Coord()) {
		t.Error("fetched wrong chunk")
	}
	if _, err := cl.FetchChunk("A", array.ChunkCoord{9, 9}.Key(), 0); err == nil {
		t.Error("fetching unknown chunk must fail")
	}
}

func TestClusterRehomeRequiresReplica(t *testing.T) {
	cl, _ := New(2)
	a := fig1Array()
	_ = cl.LoadArray(a, &RoundRobin{})
	keys := cl.Catalog().Keys("A")
	home, _ := cl.Catalog().Home("A", keys[0])
	other := 1 - home
	if err := cl.Catalog().Rehome("A", keys[0], other, true); err == nil {
		t.Error("rehoming without a replica must fail when required")
	}
	ledger := cl.NewLedger()
	if err := cl.Transfer(ledger, "A", keys[0], home, other); err != nil {
		t.Fatal(err)
	}
	if err := cl.Catalog().Rehome("A", keys[0], other, true); err != nil {
		t.Fatal(err)
	}
	if got, _ := cl.Catalog().Home("A", keys[0]); got != other {
		t.Error("rehome did not move the home")
	}
}

func TestClusterClearReplicas(t *testing.T) {
	cl, _ := New(2)
	a := fig1Array()
	_ = cl.LoadArray(a, &RoundRobin{})
	keys := cl.Catalog().Keys("A")
	home, _ := cl.Catalog().Home("A", keys[0])
	_ = cl.Transfer(cl.NewLedger(), "A", keys[0], home, 1-home)
	cl.Catalog().ClearReplicas("A")
	if reps := cl.Catalog().Replicas("A", keys[0]); len(reps) != 1 || reps[0] != home {
		t.Errorf("replicas after clear = %v, want just home %d", reps, home)
	}
}

func TestRunPerNodeExecutesAll(t *testing.T) {
	cl, _ := New(3, WithWorkersPerNode(2))
	var count int64
	tasks := make(map[int][]Task)
	for n := 0; n < 3; n++ {
		for i := 0; i < 10; i++ {
			tasks[n] = append(tasks[n], func() error {
				atomic.AddInt64(&count, 1)
				return nil
			})
		}
	}
	if err := cl.RunPerNode(tasks); err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Errorf("executed %d tasks, want 30", count)
	}
}

func TestRunPerNodePropagatesError(t *testing.T) {
	cl, _ := New(2, WithWorkersPerNode(1))
	boom := errors.New("boom")
	tasks := map[int][]Task{
		0: {func() error { return boom }},
		1: {func() error { return nil }},
	}
	if err := cl.RunPerNode(tasks); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero nodes must fail")
	}
}

func TestNodeLoad(t *testing.T) {
	cl, _ := New(3)
	a := fig1Array()
	_ = cl.LoadArray(a, &RoundRobin{})
	load := cl.Catalog().NodeLoad("A", 3)
	total := int64(0)
	for _, b := range load {
		total += b
	}
	if total != a.SizeBytes() {
		t.Errorf("node load sums to %d, want %d", total, a.SizeBytes())
	}
}

func TestHashPlacementDeterministic(t *testing.T) {
	key := array.ChunkCoord{1, 2}.Key()
	p := HashPlacement{}
	if p.Place(key, 8) != p.Place(key, 8) {
		t.Error("hash placement must be deterministic")
	}
	if n := p.Place(key, 8); n < 0 || n >= 8 {
		t.Errorf("placement %d out of range", n)
	}
}
