package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/arrayview/arrayview/internal/array"
)

// retainedVer is one preserved pre-image of a chunk: the canonical encoding
// of the content the chunk had at every epoch <= until. The committer
// captures it from the pre-image it already reads for the undo log, so
// retention costs no extra chunk fetch.
type retainedVer struct {
	until uint64
	enc   []byte
}

// EpochStats is a point-in-time summary of the version manager, reported by
// the serve daemon's snapshot endpoint.
type EpochStats struct {
	Current       uint64
	Pins          int
	RetainedVers  int64
	RetainedBytes int64
}

// Epochs is the cluster's snapshot-isolation manager. Maintenance is the
// single writer: each maintain.Execute commit (or rollback) publishes a new
// epoch — an immutable deep copy of the catalog metadata of every durable
// array — and the committer retains the pre-image of every chunk it
// overwrites or deletes. Readers pin an epoch with Acquire and see exactly
// the chunk set and content that was live when that epoch was published,
// regardless of commits racing past them; retained versions are reclaimed
// once no pin can need them.
//
// The manager is off by default so maintenance-only workloads pay nothing:
// Retain and Publish are cheap no-ops until Enable. The concurrency model is
// one maintenance loop (writer) and any number of reader goroutines.
type Epochs struct {
	cl      *Cluster
	enabled atomic.Bool

	mu      sync.Mutex
	current uint64
	metas   map[string]*ArrayMeta // published epoch's catalog view; treated as immutable
	pins    map[uint64]int
	// retained maps array → chunk key → versions ordered by ascending until.
	retained map[string]map[array.ChunkKey][]retainedVer
	// hooks run synchronously after each publication (see OnPublish).
	hooks []func(epoch uint64)
}

func newEpochs(cl *Cluster) *Epochs {
	return &Epochs{
		cl:       cl,
		pins:     make(map[uint64]int),
		retained: make(map[string]map[array.ChunkKey][]retainedVer),
	}
}

// Enabled reports whether snapshot publication and retention are on.
func (e *Epochs) Enabled() bool { return e.enabled.Load() }

// Enable turns on version retention and publishes the first epoch from the
// current catalog state. Call it after loading base data and building the
// view, before serving readers.
func (e *Epochs) Enable() {
	e.enabled.Store(true)
	e.Publish()
}

// durableName reports whether an array belongs in a published snapshot.
// Every scratch namespace of the maintenance pipeline — "#stage", "#deltaN",
// "#tmp", "#result", "#noq" — carries a '#', so filtering on it keeps
// half-batch state out of snapshots by construction.
func durableName(name string) bool { return !strings.Contains(name, "#") }

// Publish atomically installs a new epoch: a deep copy of the catalog
// metadata of every durable array becomes the visible chunk map for readers
// that pin from now on. The committer calls it once after a batch fully
// commits and once after a rollback completes, so every published epoch
// describes a consistent (pre- or post-batch) state. No-op while disabled.
func (e *Epochs) Publish() uint64 {
	if !e.enabled.Load() {
		return 0
	}
	cat := e.cl.Catalog()
	metas := make(map[string]*ArrayMeta)
	for _, name := range cat.Names() {
		if !durableName(name) {
			continue
		}
		if m, ok := cat.SnapshotMeta(name); ok {
			metas[name] = m
		}
	}
	e.mu.Lock()
	e.current++
	epoch := e.current
	e.metas = metas
	e.reclaimLocked()
	hooks := e.hooks
	e.mu.Unlock()
	// Hooks run outside the lock (they may Acquire snapshots) but still on
	// the publisher's goroutine: with the single-writer discipline every
	// hook observes exactly the epoch it was handed, before the next one
	// can be published.
	for _, h := range hooks {
		h(epoch)
	}
	return epoch
}

// OnPublish registers a hook invoked synchronously after every epoch
// publication with the new epoch number, on the publisher's goroutine —
// commits are the only publishers, so a hook sees each committed (or
// rolled-back) state exactly once, in order. The streaming commit sink's
// consistency audit and the serve daemon's stats loop hang off this.
// Register hooks before maintenance starts; registration is not
// synchronized against in-flight publications.
func (e *Epochs) OnPublish(h func(epoch uint64)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hooks = append(append([]func(epoch uint64){}, e.hooks...), h)
}

// Current returns the most recently published epoch (0 before the first
// publish).
func (e *Epochs) Current() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.current
}

// FastForward raises the epoch counter to at least epoch without
// publishing. Crash recovery calls it so the first post-restart publish
// lands above every epoch a pre-crash reader could have pinned; it never
// lowers the counter.
func (e *Epochs) FastForward(epoch uint64) {
	e.mu.Lock()
	if epoch > e.current {
		e.current = epoch
	}
	e.mu.Unlock()
}

// Retain preserves a chunk's pre-image before the committer overwrites or
// deletes it. The encoding is captured immediately (the committer mutates
// nothing until after this returns, but the chunk object may be reused).
// Only the first retention of a (array, chunk) per epoch sticks: later
// writes in the same batch are overwriting intra-batch state no reader can
// have seen. No-op while disabled or for scratch arrays.
func (e *Epochs) Retain(name string, key array.ChunkKey, prev *array.Chunk) {
	if !e.enabled.Load() || !durableName(name) || prev == nil {
		return
	}
	enc := array.EncodeChunk(prev)
	e.mu.Lock()
	defer e.mu.Unlock()
	byKey, ok := e.retained[name]
	if !ok {
		byKey = make(map[array.ChunkKey][]retainedVer)
		e.retained[name] = byKey
	}
	vers := byKey[key]
	if n := len(vers); n > 0 && vers[n-1].until >= e.current {
		return
	}
	byKey[key] = append(vers, retainedVer{until: e.current, enc: enc})
}

// lookupRetained returns the encoding of the version valid at the given
// epoch: the retained version with the smallest until >= epoch. ok=false
// means the live copy is (still) the right one.
func (e *Epochs) lookupRetained(name string, key array.ChunkKey, epoch uint64) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, v := range e.retained[name][key] {
		if v.until >= epoch {
			return v.enc, true
		}
	}
	return nil, false
}

// reclaimLocked drops every retained version no pinned snapshot (and no
// future pin of the current epoch) can need. A version with until=U serves
// pins at epochs <= U, so it is droppable once U < min(current, oldest pin).
func (e *Epochs) reclaimLocked() {
	min := e.current
	for ep := range e.pins {
		if ep < min {
			min = ep
		}
	}
	for name, byKey := range e.retained {
		for key, vers := range byKey {
			i := 0
			for i < len(vers) && vers[i].until < min {
				i++
			}
			if i == 0 {
				continue
			}
			if i == len(vers) {
				delete(byKey, key)
				continue
			}
			byKey[key] = append([]retainedVer(nil), vers[i:]...)
		}
		if len(byKey) == 0 {
			delete(e.retained, name)
		}
	}
}

// Stats summarizes the manager's state.
func (e *Epochs) Stats() EpochStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EpochStats{Current: e.current}
	for _, n := range e.pins {
		st.Pins += n
	}
	for _, byKey := range e.retained {
		for _, vers := range byKey {
			st.RetainedVers += int64(len(vers))
			for _, v := range vers {
				st.RetainedBytes += int64(len(v.enc))
			}
		}
	}
	return st
}

// Acquire pins the current epoch and returns a snapshot reading against it.
// The pin holds retained versions alive until Release. Acquire never blocks
// on commit I/O — publication swaps a pointer under a short critical
// section — which is what keeps read admission independent of maintenance
// progress.
func (e *Epochs) Acquire() (*Snapshot, error) {
	if !e.enabled.Load() {
		return nil, fmt.Errorf("cluster: snapshot epochs not enabled")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.current == 0 {
		return nil, fmt.Errorf("cluster: no epoch published yet")
	}
	e.pins[e.current]++
	return &Snapshot{es: e, epoch: e.current, metas: e.metas}, nil
}

// Snapshot is a pinned, consistent view of the cluster at one epoch. All
// reads resolve against the epoch's catalog copy, never the live catalog, so
// a commit racing past the reader changes nothing the snapshot observes.
// Release the snapshot when done; a leaked pin blocks version reclamation.
type Snapshot struct {
	es       *Epochs
	epoch    uint64
	metas    map[string]*ArrayMeta
	released atomic.Bool
}

// Epoch returns the pinned epoch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Release unpins the snapshot's epoch and lets retention reclaim versions
// only this pin needed. Safe to call more than once.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	e := s.es
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := e.pins[s.epoch]; n <= 1 {
		delete(e.pins, s.epoch)
	} else {
		e.pins[s.epoch] = n - 1
	}
	e.reclaimLocked()
}

// Schema returns the pinned schema of an array, or nil if the array was not
// part of the snapshot's epoch.
func (s *Snapshot) Schema(name string) *array.Schema {
	if m, ok := s.metas[name]; ok {
		return m.Schema
	}
	return nil
}

// Names lists the arrays visible in the snapshot, sorted.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.metas))
	for n := range s.metas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Keys returns the sorted chunk keys of an array as of the snapshot epoch.
func (s *Snapshot) Keys(name string) []array.ChunkKey {
	m, ok := s.metas[name]
	if !ok {
		return nil
	}
	out := make([]array.ChunkKey, 0, len(m.Home))
	for k := range m.Home {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChunkMeta returns the pinned (home, size, cells) of one chunk.
func (s *Snapshot) ChunkMeta(name string, key array.ChunkKey) (home int, size int64, cells int, ok bool) {
	m, mok := s.metas[name]
	if !mok {
		return 0, 0, 0, false
	}
	home, ok = m.Home[key]
	return home, m.Size[key], m.Cells[key], ok
}

// ChunkHash returns the pinned content hash of one chunk, when the epoch's
// catalog copy knew it. Chunks touched by the publishing commit have no
// hash (SetChunk drops it); untouched chunks keep theirs, and those are
// exactly the chunks a content-addressed cache can serve without any read.
func (s *Snapshot) ChunkHash(name string, key array.ChunkKey) (uint64, bool) {
	m, ok := s.metas[name]
	if !ok {
		return 0, false
	}
	h, ok := m.Hash[key]
	return h, ok
}

// EncodedChunk returns the canonical encoding of a chunk's content as of
// the snapshot epoch. The read protocol closes the race against the single
// writer, whose order is retain-pre-image-then-overwrite:
//
//  1. retained lookup — a hit is definitively the epoch's content;
//  2. miss → read the live copy (snapshot home, failing over to snapshot
//     replicas);
//  3. re-check retained — a hit now means a commit overwrote the chunk
//     while step 2 ran, so the retained pre-image wins; a miss proves no
//     retention preceded our live read, hence the live read saw the
//     epoch's content.
func (s *Snapshot) EncodedChunk(name string, key array.ChunkKey) ([]byte, error) {
	if enc, ok := s.es.lookupRetained(name, key, s.epoch); ok {
		return enc, nil
	}
	enc, liveErr := s.readLive(name, key)
	if reEnc, ok := s.es.lookupRetained(name, key, s.epoch); ok {
		return reEnc, nil
	}
	return enc, liveErr
}

// Chunk returns a chunk's content as of the snapshot epoch.
func (s *Snapshot) Chunk(name string, key array.ChunkKey) (*array.Chunk, error) {
	enc, err := s.EncodedChunk(name, key)
	if err != nil {
		return nil, err
	}
	return array.DecodeChunk(enc)
}

// readLive fetches the live copy of a chunk using the snapshot's pinned
// home and replica set (the live catalog may have rehomed or dropped the
// chunk, and those placements mean nothing for this epoch).
func (s *Snapshot) readLive(name string, key array.ChunkKey) ([]byte, error) {
	m, ok := s.metas[name]
	if !ok {
		return nil, fmt.Errorf("cluster: array %q not in snapshot %d", name, s.epoch)
	}
	home, ok := m.Home[key]
	if !ok {
		return nil, fmt.Errorf("cluster: chunk %v of %q not in snapshot %d", key, name, s.epoch)
	}
	cands := []int{home}
	for n := range m.Replicas[key] {
		if n != home {
			cands = append(cands, n)
		}
	}
	sort.Ints(cands[1:])
	rerr := &ReadError{Array: name, Key: key}
	for _, n := range cands {
		ch, err := s.es.cl.GetAt(n, name, key)
		if err == nil {
			return array.EncodeChunk(ch), nil
		}
		rerr.Tried = append(rerr.Tried, n)
		rerr.Err = err
	}
	return nil, rerr
}

// Gather reconstructs the full logical array as of the snapshot epoch.
func (s *Snapshot) Gather(name string) (*array.Array, error) {
	return s.GatherCached(name, nil)
}

// GatherCached is Gather through an optional content-addressed read cache:
// chunks whose pinned content hash is known are served from (or inserted
// into) the cache, and cache hits skip the cluster read entirely.
func (s *Snapshot) GatherCached(name string, rc *ReadCache) (*array.Array, error) {
	sch := s.Schema(name)
	if sch == nil {
		return nil, fmt.Errorf("cluster: array %q not in snapshot %d", name, s.epoch)
	}
	out := array.New(sch)
	for _, key := range s.Keys(name) {
		ch, err := s.CachedChunk(name, key, rc)
		if err != nil {
			return nil, err
		}
		out.PutChunk(ch)
	}
	return out, nil
}

// CachedChunk is Chunk through an optional content-addressed read cache.
// The cache key is the chunk's content hash, so a hit can never serve the
// wrong version: a different version has a different hash by construction,
// and the hash used here is pinned to the snapshot epoch.
func (s *Snapshot) CachedChunk(name string, key array.ChunkKey, rc *ReadCache) (*array.Chunk, error) {
	if rc == nil {
		return s.Chunk(name, key)
	}
	hash, hok := s.ChunkHash(name, key)
	if !hok {
		hash, hok = rc.Hint(s.epoch, name, key)
	}
	if hok {
		if enc, ok := rc.Lookup(hash); ok {
			return array.DecodeChunk(enc)
		}
	}
	enc, err := s.EncodedChunk(name, key)
	if err != nil {
		return nil, err
	}
	h := array.HashChunkBytes(enc)
	rc.Insert(h, enc)
	rc.SetHint(s.epoch, name, key, h)
	return array.DecodeChunk(enc)
}
