// Package cluster simulates the paper's shared-nothing array database: N
// worker nodes plus a coordinator, a centralized system catalog mapping
// chunks to nodes, and a deterministic cost ledger implementing the MIP
// objective of Section 4.2 (Eq. 1).
//
// Join and merge work really executes, concurrently, against per-node
// storage managers; the ledger separately accounts the simulated network
// and CPU time that the same plan would cost on the paper's testbed, using
// calibrated per-byte constants Tntwk and Tcpu. The reported maintenance
// time for a batch is the ledger cost, which is exactly the quantity the
// paper's heuristics minimize, so relative comparisons between strategies
// carry over.
package cluster

import (
	"fmt"
	"math"
	"strings"
)

// Coordinator is the pseudo-node ID of the coordinator. New (delta) chunks
// live at the coordinator until the plan places them; the coordinator never
// computes joins.
const Coordinator = -1

// CostModel holds the calibrated per-byte time constants of the paper's
// cost model (Table 1): Tntwk is the time to transfer one byte between two
// nodes and Tcpu the time to join one byte of chunk data.
//
// ReceiveFactor extends Eq. 1, which charges only the sending node of a
// transfer: on a real link the receiving NIC is just as busy, so a node
// that hosts many hot view chunks bottlenecks on incoming differentials —
// the congestion view chunk reassignment exists to relieve. 1 charges
// receivers fully (full duplex realism, the default); 0 reproduces the
// paper's sender-only arithmetic (used by the Appendix B worked examples).
type CostModel struct {
	Tntwk         float64 // seconds per byte transferred
	Tcpu          float64 // seconds per byte joined
	ReceiveFactor float64 // fraction of Tntwk charged to receivers
}

// DefaultCostModel mirrors the paper's testbed: 125 MB/s links (Tntwk =
// 8 ns/byte) and nodes whose shape-based similarity joins are
// compute-heavy — the paper reports batch maintenance times of tens to
// hundreds of seconds over at most a few GB of referenced chunk data,
// which calibrates a node's effective join throughput near its link speed
// (Tcpu = 6 ns/byte with the worker pool overlapped). With computation and
// communication of the same order, both load balancing (Algorithm 1) and
// communication elimination (Algorithms 2-3) move the max objective — the
// regime the paper's heuristics are designed for.
func DefaultCostModel() CostModel {
	return CostModel{Tntwk: 8e-9, Tcpu: 6e-9, ReceiveFactor: 1}
}

// Ledger accumulates per-node simulated network and CPU time for one batch.
// The zero value is unusable; use NewLedger.
type Ledger struct {
	model CostModel
	ntwk  []float64
	cpu   []float64
}

// NewLedger returns a ledger for n nodes under the given cost model.
func NewLedger(n int, model CostModel) *Ledger {
	return &Ledger{model: model, ntwk: make([]float64, n), cpu: make([]float64, n)}
}

// Model returns the cost model the ledger charges under.
func (l *Ledger) Model() CostModel { return l.model }

// NumNodes returns the node count the ledger covers.
func (l *Ledger) NumNodes() int { return len(l.ntwk) }

// ChargeTransfer charges the sender node for shipping size bytes, and the
// receiver per the model's ReceiveFactor. Sends from the coordinator are
// free on worker ledgers (the coordinator is not a bottleneck the
// heuristics can influence), matching the paper's treatment of ∆ chunks
// "initially stored at the coordinator"; the receiving worker's link is
// still busy. Pass Coordinator (or the sender itself) as to when the
// receiver is out of scope.
func (l *Ledger) ChargeTransfer(from int, size int64) {
	l.ChargeTransferTo(from, Coordinator, size)
}

// ChargeTransferTo charges both ends of a transfer of size bytes.
//
// Actual-bytes rule: executors charge the ledger with the payload a
// transfer really moved, after wire-efficiency kicks in — a dedup-satisfied
// ship charges nothing (only the handshake crossed the wire), a delta ship
// charges the delta's byte length, and a full ship charges the chunk's
// logical size B_q. Planners, by contrast, keep charging full logical sizes
// (Plan.Charge): the MIP objective prices the worst case it can guarantee,
// and the measured ledger then validates how much the wire layer saved.
// Frame compression is not modeled here at all — it is a transport-level
// concern below the cost model, measured by NetCounters.BytesSavedCompress.
func (l *Ledger) ChargeTransferTo(from, to int, size int64) {
	if from != Coordinator && from != to {
		l.ntwk[from] += float64(size) * l.model.Tntwk
	}
	if to != Coordinator && to != from {
		l.ntwk[to] += float64(size) * l.model.Tntwk * l.model.ReceiveFactor
	}
}

// ChargeJoin charges node at for joining size bytes of chunk data.
func (l *Ledger) ChargeJoin(at int, size int64) {
	l.cpu[at] += float64(size) * l.model.Tcpu
}

// Ntwk returns node k's accumulated network time.
func (l *Ledger) Ntwk(k int) float64 { return l.ntwk[k] }

// CPU returns node k's accumulated CPU time.
func (l *Ledger) CPU(k int) float64 { return l.cpu[k] }

// MaxNtwk returns the largest per-node network time.
func (l *Ledger) MaxNtwk() float64 { return maxOf(l.ntwk) }

// MaxCPU returns the largest per-node CPU time.
func (l *Ledger) MaxCPU() float64 { return maxOf(l.cpu) }

// Cost evaluates the batch objective of Eq. 1: communication and
// computation overlap, so the batch finishes when the slowest of the two
// resources on the busiest node finishes:
//
//	max( max_k ntwk[k], max_k cpu[k] )
func (l *Ledger) Cost() float64 {
	return math.Max(l.MaxNtwk(), l.MaxCPU())
}

// CostWith returns the objective if extraNtwk/extraCPU were added on top,
// without mutating the ledger. Slices may be nil (treated as zero). This is
// the opt_now computation in Algorithms 1 and 2.
func (l *Ledger) CostWith(extraNtwk, extraCPU []float64) float64 {
	best := 0.0
	for k := range l.ntwk {
		n := l.ntwk[k]
		if extraNtwk != nil {
			n += extraNtwk[k]
		}
		c := l.cpu[k]
		if extraCPU != nil {
			c += extraCPU[k]
		}
		if n > best {
			best = n
		}
		if c > best {
			best = c
		}
	}
	return best
}

// Apply adds the per-node increments to the ledger (Algorithm 1 line 12).
func (l *Ledger) Apply(extraNtwk, extraCPU []float64) {
	for k := range l.ntwk {
		if extraNtwk != nil {
			l.ntwk[k] += extraNtwk[k]
		}
		if extraCPU != nil {
			l.cpu[k] += extraCPU[k]
		}
	}
}

// Add folds another ledger's charges into this one (same node count).
func (l *Ledger) Add(other *Ledger) {
	for k := range l.ntwk {
		l.ntwk[k] += other.ntwk[k]
		l.cpu[k] += other.cpu[k]
	}
}

// Scale multiplies every charge by w; used to weight historical batches.
func (l *Ledger) Scale(w float64) {
	for k := range l.ntwk {
		l.ntwk[k] *= w
		l.cpu[k] *= w
	}
}

// Clone returns an independent copy.
func (l *Ledger) Clone() *Ledger {
	out := NewLedger(len(l.ntwk), l.model)
	copy(out.ntwk, l.ntwk)
	copy(out.cpu, l.cpu)
	return out
}

// String renders per-node charges for diagnostics.
func (l *Ledger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost=%.6fs [", l.Cost())
	for k := range l.ntwk {
		if k > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "n%d(ntwk=%.6f,cpu=%.6f)", k, l.ntwk[k], l.cpu[k])
	}
	b.WriteString("]")
	return b.String()
}

func maxOf(v []float64) float64 {
	best := 0.0
	for _, x := range v {
		if x > best {
			best = x
		}
	}
	return best
}
