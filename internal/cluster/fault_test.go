package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/storage"
)

func faultCluster(t *testing.T, numNodes int) (*Cluster, *FaultFabric) {
	t.Helper()
	stores := make([]*storage.Store, numNodes)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	ff := NewFaultFabric(NewLocalFabric(stores), 1)
	cl, err := New(numNodes, WithFabric(ff.AsFabric()))
	if err != nil {
		t.Fatal(err)
	}
	return cl, ff
}

func TestIsNodeDown(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{ErrNodeDown, true},
		{fmt.Errorf("wrapped: %w", ErrNodeDown), true},
		{&net.OpError{Op: "dial", Err: errors.New("connection refused")}, true},
		{fmt.Errorf("transport: %w", &net.OpError{Op: "read", Err: errors.New("reset")}), true},
	}
	for i, c := range cases {
		if got := IsNodeDown(c.err); got != c.want {
			t.Errorf("case %d: IsNodeDown(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestFaultErrorInjection(t *testing.T) {
	cl, ff := faultCluster(t, 3)
	if err := cl.LoadArray(fig1Array(), &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	key := cl.Catalog().Keys("A")[0]

	rule := ff.Inject(&FaultRule{Node: 0, Op: "Get", Kind: FaultError})
	if _, err := cl.GetAt(0, "A", key); err == nil {
		t.Fatal("injected Get fault must surface")
	} else if !IsNodeDown(err) {
		t.Fatalf("default injected error must be node-down, got %v", err)
	}
	if rule.Fired() != 1 {
		t.Fatalf("rule fired %d times, want 1", rule.Fired())
	}
	// Other nodes and other ops are untouched.
	if _, err := cl.KeysAt(0, "A"); err != nil {
		t.Fatalf("unmatched op must pass through: %v", err)
	}
	if ff.FaultCounts().Errors != 1 {
		t.Fatalf("error counter = %d, want 1", ff.FaultCounts().Errors)
	}
	ff.ClearRules()
	if _, err := cl.GetAt(0, "A", key); err != nil {
		t.Fatalf("after ClearRules Get must succeed: %v", err)
	}
}

func TestFaultRuleAfterAndCount(t *testing.T) {
	cl, ff := faultCluster(t, 2)
	if err := cl.LoadArray(fig1Array(), &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	key := cl.Catalog().Keys("A")[0] // home = node 0

	ff.Inject(&FaultRule{Node: 0, Op: "Has", Kind: FaultError, After: 1, Count: 2})
	var errs int
	for i := 0; i < 5; i++ {
		if _, err := cl.HasAt(0, "A", key); err != nil {
			errs++
		}
	}
	// Op 1 passes (After), ops 2-3 fail (Count=2), ops 4-5 pass again.
	if errs != 2 {
		t.Fatalf("got %d injected failures, want 2", errs)
	}
}

func TestFaultLatencyDelaysButSucceeds(t *testing.T) {
	cl, ff := faultCluster(t, 2)
	if err := cl.LoadArray(fig1Array(), &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	key := cl.Catalog().Keys("A")[0]
	ff.Inject(&FaultRule{Node: AnyNode, Op: "Get", Kind: FaultLatency, Latency: 30 * time.Millisecond, Count: 1})
	start := time.Now()
	if _, err := cl.GetAt(0, "A", key); err != nil {
		t.Fatalf("latency fault must not fail the op: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("op returned in %v, want >= 30ms injected latency", d)
	}
	if ff.FaultCounts().Latencies != 1 {
		t.Fatalf("latency counter = %d, want 1", ff.FaultCounts().Latencies)
	}
}

func TestFaultDropAfterWriteApplies(t *testing.T) {
	cl, ff := faultCluster(t, 2)
	if err := cl.LoadArray(fig1Array(), &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	key := cl.Catalog().Keys("A")[0]
	ch, err := cl.GetAt(0, "A", key)
	if err != nil {
		t.Fatal(err)
	}

	ff.Inject(&FaultRule{Node: 1, Op: "Put", Kind: FaultDropAfterWrite, Count: 1})
	err = cl.PutAt(1, "A", ch)
	if err == nil {
		t.Fatal("dropped ack must surface as an error")
	}
	if IsNodeDown(err) {
		t.Fatalf("ack loss is not node-down: %v", err)
	}
	// The write itself applied: the chunk is resident despite the error.
	if ok, herr := cl.HasAt(1, "A", key); herr != nil || !ok {
		t.Fatalf("write behind dropped ack must have applied (resident=%v, err=%v)", ok, herr)
	}
	if ff.FaultCounts().AcksDropped != 1 {
		t.Fatalf("acksDropped counter = %d, want 1", ff.FaultCounts().AcksDropped)
	}
}

func TestFaultBlackoutBlocksEverything(t *testing.T) {
	cl, ff := faultCluster(t, 3)
	if err := cl.LoadArray(fig1Array(), &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	key := cl.Catalog().Keys("A")[1] // home = node 1
	ch, err := cl.GetAt(1, "A", key)
	if err != nil {
		t.Fatal(err)
	}

	ff.Blackout(1)
	if _, err := cl.GetAt(1, "A", key); !IsNodeDown(err) {
		t.Fatalf("Get on blacked-out node: got %v, want node-down", err)
	}
	// A Put during blackout must NOT apply (the node never saw it).
	other := cl.Catalog().Keys("A")[0]
	och, err := cl.GetAt(0, "A", other)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.PutAt(1, "A", och); !IsNodeDown(err) {
		t.Fatalf("Put on blacked-out node: got %v, want node-down", err)
	}
	ff.Restore(1)
	if ok, err := cl.HasAt(1, "A", other); err != nil || ok {
		t.Fatalf("blackout Put must not have applied (resident=%v, err=%v)", ok, err)
	}
	if _, err := cl.GetAt(1, "A", ch.Key()); err != nil {
		t.Fatalf("after Restore node must answer: %v", err)
	}
	if ff.FaultCounts().Blackouts == 0 {
		t.Fatal("blackout counter must record refused ops")
	}
}

func TestAsFabricPreservesJoinCapability(t *testing.T) {
	plain := NewLocalFabric([]*storage.Store{storage.NewStore()})
	ff := NewFaultFabric(plain, 1)
	if _, ok := ff.AsFabric().(JoinFabric); ok {
		t.Fatal("FaultFabric over a plain Fabric must not advertise ExecuteJoin")
	}
	jf := &stubJoinFabric{LocalFabric: plain}
	ffj := NewFaultFabric(jf, 1)
	if _, ok := ffj.AsFabric().(JoinFabric); !ok {
		t.Fatal("FaultFabric over a JoinFabric must stay join-capable")
	}
}

type stubJoinFabric struct {
	*LocalFabric
}

func (s *stubJoinFabric) ExecuteJoin(node int, req JoinRequest) ([]*array.Chunk, error) {
	return nil, nil
}

func TestTransferFailsOverToReplica(t *testing.T) {
	cl, ff := faultCluster(t, 3)
	if err := cl.LoadArray(fig1Array(), &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	key := cl.Catalog().Keys("A")[0] // home = node 0
	// Seed a replica on node 1, then kill the home node.
	if err := cl.Transfer(nil, "A", key, 0, 1); err != nil {
		t.Fatal(err)
	}
	ff.Blackout(0)

	// A transfer whose planned source is dead must fail over to the replica.
	ledger := cl.NewLedger()
	if err := cl.Transfer(ledger, "A", key, 0, 2); err != nil {
		t.Fatalf("transfer with dead source must fail over: %v", err)
	}
	if ok, err := cl.HasAt(2, "A", key); err != nil || !ok {
		t.Fatalf("chunk must be resident on node 2 (resident=%v, err=%v)", ok, err)
	}
	// The true sender — the replica — is charged, not the dead home.
	if ledger.Ntwk(1) == 0 {
		t.Error("replica sender must be charged for the failover ship")
	}
	if ledger.Ntwk(0) != 0 {
		t.Error("dead planned source must not be charged")
	}

	// Gather also reads around the dead home.
	if _, err := cl.Gather("A"); err == nil {
		t.Log("gather succeeded (other chunks on node 0 have no replicas, so failure is also acceptable)")
	}
}

func TestGatherFailsOverToReplica(t *testing.T) {
	cl, ff := faultCluster(t, 2)
	if err := cl.LoadArray(fig1Array(), &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	a := fig1Array()
	// Replicate every node-0 chunk onto node 1, then black out node 0.
	for _, key := range cl.Catalog().Keys("A") {
		if home, _ := cl.Catalog().Home("A", key); home == 0 {
			if err := cl.Transfer(nil, "A", key, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	ff.Blackout(0)
	back, err := cl.Gather("A")
	if err != nil {
		t.Fatalf("gather must fail over to replicas: %v", err)
	}
	if !back.Equal(a) {
		t.Error("failover gather must reconstruct the full array")
	}
}

func TestRunPerNodeCtxCancellation(t *testing.T) {
	cl, _ := faultCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tasks := map[int][]Task{}
	for n := 0; n < 2; n++ {
		for i := 0; i < 50; i++ {
			tasks[n] = append(tasks[n], func() error {
				cancel()
				time.Sleep(time.Millisecond)
				return nil
			})
		}
	}
	err := cl.RunPerNodeCtx(ctx, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wave must return ctx error, got %v", err)
	}
}

func TestCatalogUnregisteredErrors(t *testing.T) {
	cat := NewCatalog()
	key := array.ChunkKey("1|1")
	if err := cat.SetChunk("ghost", key, 0, 1, 1); err == nil {
		t.Error("SetChunk on unregistered array must error")
	}
	if err := cat.SetChunkBBox("ghost", key, array.Region{}); err == nil {
		t.Error("SetChunkBBox on unregistered array must error")
	}
	if err := cat.AddReplica("ghost", key, 0); err == nil {
		t.Error("AddReplica on unregistered array must error")
	}
	if err := cat.Rehome("ghost", key, 0, false); err == nil {
		t.Error("Rehome on unregistered array must error")
	}
	cat.ClearReplicas("ghost") // must not panic
	cat.RemoveReplica("ghost", key, 0)
}

func TestCatalogSnapshotRestore(t *testing.T) {
	cl, _ := faultCluster(t, 3)
	if err := cl.LoadArray(fig1Array(), &RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	cat := cl.Catalog()
	key := cat.Keys("A")[0]
	snap, ok := cat.SnapshotMeta("A")
	if !ok {
		t.Fatal("SnapshotMeta of registered array must succeed")
	}
	if _, ok := cat.SnapshotMeta("ghost"); ok {
		t.Fatal("SnapshotMeta of unknown array must report !ok")
	}

	// Mutate metadata after the snapshot.
	if err := cat.SetChunk("A", key, 2, 999, 42); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddReplica("A", key, 1); err != nil {
		t.Fatal(err)
	}
	cat.DropChunk("A", cat.Keys("A")[1])

	cat.RestoreMeta("A", snap)
	if home, _ := cat.Home("A", key); home != 0 {
		t.Errorf("restored home = %d, want 0", home)
	}
	if cat.ChunkSize("A", key) == 999 {
		t.Error("restored size must be pre-mutation")
	}
	if len(cat.Keys("A")) != 6 {
		t.Errorf("restored catalog has %d chunks, want 6", len(cat.Keys("A")))
	}
	// The snapshot is reusable: mutate and restore again.
	if err := cat.SetChunk("A", key, 1, 5, 5); err != nil {
		t.Fatal(err)
	}
	cat.RestoreMeta("A", snap)
	if home, _ := cat.Home("A", key); home != 0 {
		t.Error("second restore from the same snapshot must work")
	}
}
