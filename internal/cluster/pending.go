package cluster

import (
	"sort"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
)

// PendingEntry is one deferred light-chunk delta: the chunk's cells as
// staged by batch Seq, tagged with the epoch that was current when the
// batch's eager part committed. The epoch tag keeps snapshot isolation
// exact: a pinned reader at epoch E never observes an entry appended after
// E, because entries only become visible through a normal maintenance
// commit (materialization), which publishes its own later epoch.
type PendingEntry struct {
	Seq   int
	Key   array.ChunkKey
	Chunk *array.Chunk
	Epoch uint64
	Cells int
}

// PendingLog is the per-chunk pending-delta log of the adaptive
// maintenance path: light-chunk deltas are appended here instead of being
// maintained eagerly, and materialized — replayed through the normal
// executor in original batch order — on first query touch, on conflict
// with an incoming eager batch, or by the staleness-debt drainer. It lives
// in the catalog because, like the rest of the chunk metadata, it is
// coordinator state describing where a chunk's authoritative content is
// (here: partly in the log, not yet in the array).
//
// It is safe for concurrent use.
type PendingLog struct {
	mu    sync.Mutex
	byKey map[array.ChunkKey][]PendingEntry
	seqs  map[int]int // distinct batch seqs outstanding → entry count
	cells int

	appended, materialized, drained int64
}

// NewPendingLog returns an empty log.
func NewPendingLog() *PendingLog {
	return &PendingLog{
		byKey: make(map[array.ChunkKey][]PendingEntry),
		seqs:  make(map[int]int),
	}
}

// Append records one deferred delta chunk. The chunk is stored as given
// (callers clone if they keep mutating it).
func (l *PendingLog) Append(e PendingEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Cells = e.Chunk.NumCells()
	l.byKey[e.Key] = append(l.byKey[e.Key], e)
	l.seqs[e.Seq]++
	l.cells += e.Cells
	l.appended++
}

// Keys returns the chunk keys that currently have pending entries, in
// deterministic (sorted) order.
func (l *PendingLog) Keys() []array.ChunkKey {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]array.ChunkKey, 0, len(l.byKey))
	for k := range l.byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// EntriesFor returns how many pending entries and cells the key holds.
func (l *PendingLog) EntriesFor(key array.ChunkKey) (entries, cells int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.byKey[key] {
		entries++
		cells += e.Cells
	}
	return entries, cells
}

// OldestSeq returns the smallest batch seq with outstanding entries;
// ok=false when the log is empty.
func (l *PendingLog) OldestSeq() (seq int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	first := true
	for s := range l.seqs {
		if first || s < seq {
			seq, first = s, false
		}
	}
	return seq, !first
}

// KeysAtSeq returns the keys holding entries from the given batch seq.
func (l *PendingLog) KeysAtSeq(seq int) []array.ChunkKey {
	l.mu.Lock()
	defer l.mu.Unlock()
	var keys []array.ChunkKey
	for k, es := range l.byKey {
		for _, e := range es {
			if e.Seq == seq {
				keys = append(keys, k)
				break
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Take removes and returns every entry for the given keys, ordered by
// batch seq ascending (entries of one seq keep their append order). The
// caller replays them through the executor; on failure Restore puts them
// back.
func (l *PendingLog) Take(keys []array.ChunkKey) []PendingEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []PendingEntry
	for _, k := range keys {
		es, ok := l.byKey[k]
		if !ok {
			continue
		}
		out = append(out, es...)
		delete(l.byKey, k)
		for _, e := range es {
			l.cells -= e.Cells
			if l.seqs[e.Seq]--; l.seqs[e.Seq] == 0 {
				delete(l.seqs, e.Seq)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	l.materialized += int64(len(out))
	return out
}

// Restore re-inserts entries previously removed by Take (a failed
// materialization rolls its log reads back too).
func (l *PendingLog) Restore(entries []PendingEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		l.byKey[e.Key] = append(l.byKey[e.Key], e)
		l.seqs[e.Seq]++
		l.cells += e.Cells
		l.materialized--
	}
	for k := range l.byKey {
		es := l.byKey[k]
		sort.SliceStable(es, func(i, j int) bool { return es[i].Seq < es[j].Seq })
	}
}

// Entries snapshots every outstanding entry in deterministic order (batch
// seq ascending, then key), with the chunks cloned so the caller may hold
// them across later log mutations. Used by the durability layer to persist
// the log across restarts.
func (l *PendingLog) Entries() []PendingEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []PendingEntry
	for _, es := range l.byKey {
		for _, e := range es {
			e.Chunk = e.Chunk.Clone()
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Reset replaces the log's contents with the given snapshot (recovery
// path). Counters restart from the snapshot: appended equals the entry
// count, materialized and drained are zeroed.
func (l *PendingLog) Reset(entries []PendingEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byKey = make(map[array.ChunkKey][]PendingEntry)
	l.seqs = make(map[int]int)
	l.cells = 0
	l.appended, l.materialized, l.drained = int64(len(entries)), 0, 0
	for _, e := range entries {
		e.Cells = e.Chunk.NumCells()
		l.byKey[e.Key] = append(l.byKey[e.Key], e)
		l.seqs[e.Seq]++
		l.cells += e.Cells
	}
	for k := range l.byKey {
		es := l.byKey[k]
		sort.SliceStable(es, func(i, j int) bool { return es[i].Seq < es[j].Seq })
	}
}

// MarkDrained counts entries materialized by the background drainer rather
// than a query or conflict (observability only).
func (l *PendingLog) MarkDrained(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drained += int64(n)
}

// PendingStats is a point-in-time snapshot of the log.
type PendingStats struct {
	Chunks       int
	Entries      int64
	Cells        int
	Batches      int // distinct batch seqs outstanding
	Appended     int64
	Materialized int64
	Drained      int64
}

// Stats snapshots the log counters.
func (l *PendingLog) Stats() PendingStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	var entries int64
	for _, es := range l.byKey {
		entries += int64(len(es))
	}
	return PendingStats{
		Chunks:       len(l.byKey),
		Entries:      entries,
		Cells:        l.cells,
		Batches:      len(l.seqs),
		Appended:     l.appended,
		Materialized: l.materialized,
		Drained:      l.drained,
	}
}

// Pending returns the catalog's pending-delta log, creating it on first
// use.
func (c *Catalog) Pending() *PendingLog {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == nil {
		c.pending = NewPendingLog()
	}
	return c.pending
}
