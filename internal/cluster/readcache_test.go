package cluster

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

func TestReadCacheBodyRoundTrip(t *testing.T) {
	rc := NewReadCache(1 << 20)
	enc := []byte("chunk-encoding")
	h := array.HashChunkBytes(enc)

	if _, ok := rc.Lookup(h); ok {
		t.Fatal("lookup hit on empty cache")
	}
	rc.Insert(h, enc)
	got, ok := rc.Lookup(h)
	if !ok || string(got) != string(enc) {
		t.Fatalf("Lookup = %q, %v; want the inserted encoding", got, ok)
	}
	c := rc.Counters()
	if c.Hits.Load() != 1 || c.Misses.Load() != 1 {
		t.Errorf("counters hits=%d misses=%d, want 1/1", c.Hits.Load(), c.Misses.Load())
	}
	if rc.Bytes() != int64(len(enc)) {
		t.Errorf("Bytes = %d, want %d", rc.Bytes(), len(enc))
	}
}

// TestReadCacheEpochZeroReserved is the regression test for the phantom
// epoch-0 generation: the zero value of both generation slots carries
// epoch == 0, so a hint recorded before the first commit used to land in a
// "live" generation that rotation could never retire, and pre-first-commit
// reads could be served from it. Epoch 0 must be inert on both paths, and
// the first real commit must rotate cleanly.
func TestReadCacheEpochZeroReserved(t *testing.T) {
	key := array.ChunkKey("0,0")
	steps := []struct {
		name      string
		set       uint64 // SetHint at this epoch (0 entries still exercise the write path)
		query     uint64
		wantHash  uint64
		wantFound bool
	}{
		{"hint at reserved epoch 0 is dropped", 0, 0, 0, false},
		{"epoch 0 never answers even after a write to it", 0, 0, 0, false},
		{"first commit opens epoch 1", 1, 1, 101, true},
		{"epoch 0 still silent after first commit", 0, 0, 0, false},
		{"second commit keeps epoch 1 live", 2, 1, 101, true},
		{"second commit answers at epoch 2", 0, 2, 102, true},
		{"third commit retires epoch 1", 3, 1, 0, false},
		{"third commit keeps epoch 2", 0, 2, 102, true},
		{"third commit answers at epoch 3", 0, 3, 103, true},
	}
	rc := NewReadCache(1 << 20)
	for _, s := range steps {
		// Record a hash derived from the epoch so each generation is
		// distinguishable; epoch-0 writes must vanish.
		rc.SetHint(s.set, "V", key, 100+s.set)
		h, ok := rc.Hint(s.query, "V", key)
		if ok != s.wantFound || h != s.wantHash {
			t.Fatalf("%s: Hint(%d) = %d, %v; want %d, %v",
				s.name, s.query, h, ok, s.wantHash, s.wantFound)
		}
	}
	// The reserved epoch never occupies a generation slot: after the
	// rotations above the live generations are 3 and 2.
	if _, ok := rc.Hint(0, "V", key); ok {
		t.Fatal("epoch 0 became servable")
	}
}

func TestReadCacheHintGenerations(t *testing.T) {
	rc := NewReadCache(1 << 20)
	key := array.ChunkKey("0,0")

	rc.SetHint(1, "V", key, 111)
	if h, ok := rc.Hint(1, "V", key); !ok || h != 111 {
		t.Fatalf("Hint(1) = %d, %v; want 111", h, ok)
	}

	// The previous generation stays queryable: readers still pinned to the
	// prior epoch keep their cache routing across one commit.
	rc.SetHint(2, "V", key, 222)
	if h, ok := rc.Hint(1, "V", key); !ok || h != 111 {
		t.Fatalf("after epoch 2: Hint(1) = %d, %v; want 111 still live", h, ok)
	}
	if h, ok := rc.Hint(2, "V", key); !ok || h != 222 {
		t.Fatalf("Hint(2) = %d, %v; want 222", h, ok)
	}

	// A second advance retires epoch 1 wholesale — that is the epoch-based
	// invalidation — and hints for retired epochs are refused, not misfiled.
	rc.SetHint(3, "V", key, 333)
	if _, ok := rc.Hint(1, "V", key); ok {
		t.Error("epoch 1 hints must be dropped after two advances")
	}
	rc.SetHint(1, "V", key, 999)
	if _, ok := rc.Hint(1, "V", key); ok {
		t.Error("SetHint for a retired epoch must be a no-op")
	}
	if h, ok := rc.Hint(3, "V", key); !ok || h != 333 {
		t.Fatalf("Hint(3) = %d, %v; want 333", h, ok)
	}
}

func TestReadCacheServesSnapshotReads(t *testing.T) {
	cl, a := epochCluster(t)
	rc := NewReadCache(1 << 20)
	snap, err := cl.Epochs().Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// First gather misses and fills; the repeat must be all hits.
	g1, err := snap.GatherCached("A", rc)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(a) {
		t.Fatal("cached gather must reconstruct the array")
	}
	misses := rc.Counters().Misses.Load()
	if misses == 0 {
		t.Fatal("first gather should miss")
	}
	g2, err := snap.GatherCached("A", rc)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Equal(a) {
		t.Fatal("cached re-gather must reconstruct the array")
	}
	if rc.Counters().Misses.Load() != misses {
		t.Errorf("re-gather missed (%d -> %d); hints should have routed every read",
			misses, rc.Counters().Misses.Load())
	}
	if rc.Counters().Hits.Load() == 0 {
		t.Error("re-gather produced no cache hits")
	}
}
