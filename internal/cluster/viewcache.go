package cluster

import (
	"sort"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/obs"
)

// DefaultViewCacheBytes is the serve daemon's default assembled-view cache
// budget. A cached view is the fully decoded merge of every view chunk, so
// the budget is measured in decoded cell bytes, not encodings.
const DefaultViewCacheBytes = 256 << 20

// viewKey identifies one cached assembled view. The epoch is part of the
// key, so an entry can never be served to a reader pinned at a different
// epoch: invalidation is purely memory reclaim, never a correctness event.
type viewKey struct {
	name  string
	epoch uint64
}

// viewEntry is one cached assembled view. The builder publishes arr/err and
// closes ready exactly once; afterwards arr is warmed and never mutated, so
// any number of concurrent readers may share it (via Array.ShallowClone for
// paths that need to overlay writes).
type viewEntry struct {
	key   viewKey
	ready chan struct{}
	arr   *array.Array
	bytes int64
	err   error

	// pins counts readers currently holding the entry (including waiters
	// blocked on ready). stale marks the entry for removal once pins drains
	// to zero — set by InvalidateBefore when an epoch publish outruns a
	// long-running reader.
	pins  int
	stale bool
}

// ViewCache caches decoded, merged view arrays keyed by (view, epoch). The
// gather-decode-merge work of assembling a view from its chunks is the
// dominant per-answer cost once plans are memoized; the cache pays it once
// per epoch and shares the warmed result across all concurrent answers at
// that epoch. Lookups singleflight: the first reader of a (view, epoch)
// builds while later readers block on the entry, so a burst of identical
// queries triggers one gather.
//
// Entries are refcounted. Capacity eviction and epoch invalidation only
// drop unpinned entries; a pinned entry marked stale is reclaimed by its
// last Release. A nil *ViewCache is valid and falls through to an uncached
// gather.
type ViewCache struct {
	maxBytes int64
	ctrs     *obs.FastPathCounters

	mu      sync.Mutex
	entries map[viewKey]*viewEntry
	bytes   int64
}

// NewViewCache returns a cache bounded to maxBytes of decoded view data
// (DefaultViewCacheBytes if <= 0). ctrs may be nil.
func NewViewCache(maxBytes int64, ctrs *obs.FastPathCounters) *ViewCache {
	if maxBytes <= 0 {
		maxBytes = DefaultViewCacheBytes
	}
	return &ViewCache{
		maxBytes: maxBytes,
		ctrs:     ctrs,
		entries:  make(map[viewKey]*viewEntry),
	}
}

// Bytes returns the decoded bytes currently cached.
func (vc *ViewCache) Bytes() int64 {
	if vc == nil {
		return 0
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.bytes
}

// Acquire returns the assembled view of the named array as of the
// snapshot's epoch, plus a release func the caller must invoke when done
// reading. The returned array is shared and warmed: callers must not mutate
// it — overlay writes through array.ShallowClone instead. On a nil cache
// the view is gathered fresh (caller-owned, release is a no-op).
func (vc *ViewCache) Acquire(name string, snap *Snapshot, rc *ReadCache) (*array.Array, func(), error) {
	if vc == nil {
		arr, err := snap.GatherCached(name, rc)
		return arr, func() {}, err
	}
	k := viewKey{name: name, epoch: snap.Epoch()}
	vc.mu.Lock()
	if e, ok := vc.entries[k]; ok {
		e.pins++
		vc.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The builder already removed the failed entry; dropping our
			// pin needs no map or byte accounting.
			vc.mu.Lock()
			e.pins--
			vc.mu.Unlock()
			return nil, nil, e.err
		}
		if vc.ctrs != nil {
			vc.ctrs.ViewHits.Add(1)
		}
		return e.arr, func() { vc.release(e) }, nil
	}
	e := &viewEntry{key: k, ready: make(chan struct{}), pins: 1}
	vc.entries[k] = e
	vc.mu.Unlock()
	if vc.ctrs != nil {
		vc.ctrs.ViewMisses.Add(1)
	}

	arr, err := snap.GatherCached(name, rc)
	if err == nil {
		// Build every lazy per-chunk cache now, while the array is still
		// private: after ready closes the array serves concurrent readers
		// and must never be written again.
		arr.Warm()
	}
	vc.mu.Lock()
	if err != nil {
		e.err = err
		delete(vc.entries, k)
		close(e.ready)
		vc.mu.Unlock()
		return nil, nil, err
	}
	e.arr = arr
	e.bytes = decodedArrayBytes(arr)
	vc.bytes += e.bytes
	vc.evictLocked()
	vc.storeBytesLocked()
	close(e.ready)
	vc.mu.Unlock()
	return arr, func() { vc.release(e) }, nil
}

// release drops one pin and reclaims the entry if it went stale while
// pinned.
func (vc *ViewCache) release(e *viewEntry) {
	vc.mu.Lock()
	e.pins--
	if e.pins <= 0 && e.stale {
		if cur, ok := vc.entries[e.key]; ok && cur == e {
			delete(vc.entries, e.key)
			vc.bytes -= e.bytes
			vc.storeBytesLocked()
		}
	}
	vc.mu.Unlock()
}

// InvalidateBefore drops every cached view whose epoch is older than epoch.
// Pinned entries are marked stale and reclaimed by their last Release, so a
// reader mid-answer keeps its (still-correct, epoch-keyed) view while new
// readers at the fresh epoch rebuild. Wired to Epochs.OnPublish by the
// serve daemon.
func (vc *ViewCache) InvalidateBefore(epoch uint64) {
	if vc == nil {
		return
	}
	vc.mu.Lock()
	for k, e := range vc.entries {
		if k.epoch >= epoch {
			continue
		}
		e.stale = true
		if e.pins == 0 {
			delete(vc.entries, k)
			vc.bytes -= e.bytes
			if vc.ctrs != nil {
				vc.ctrs.ViewInvalidations.Add(1)
			}
		}
	}
	vc.storeBytesLocked()
	vc.mu.Unlock()
}

// evictLocked enforces the byte budget: unpinned entries go first, oldest
// epoch first, so the entries most likely to be invalidated next are the
// ones sacrificed.
func (vc *ViewCache) evictLocked() {
	if vc.bytes <= vc.maxBytes {
		return
	}
	cands := make([]*viewEntry, 0, len(vc.entries))
	for _, e := range vc.entries {
		if e.pins == 0 {
			cands = append(cands, e)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key.epoch != cands[j].key.epoch {
			return cands[i].key.epoch < cands[j].key.epoch
		}
		return cands[i].key.name < cands[j].key.name
	})
	for _, e := range cands {
		if vc.bytes <= vc.maxBytes {
			return
		}
		delete(vc.entries, e.key)
		vc.bytes -= e.bytes
		if vc.ctrs != nil {
			vc.ctrs.ViewEvictions.Add(1)
		}
	}
}

func (vc *ViewCache) storeBytesLocked() {
	if vc.ctrs != nil {
		vc.ctrs.ViewBytes.Store(vc.bytes)
	}
}

// decodedArrayBytes sums the in-memory cell payload of every chunk.
func decodedArrayBytes(a *array.Array) int64 {
	var n int64
	a.EachChunk(func(c *array.Chunk) bool {
		n += c.SizeBytes()
		return true
	})
	return n
}
