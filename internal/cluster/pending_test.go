package cluster

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

func pendingSchema() *array.Schema {
	return array.MustSchema("P",
		[]array.Dimension{
			{Name: "i", Start: 0, End: 9, ChunkSize: 2},
			{Name: "j", Start: 0, End: 9, ChunkSize: 2},
		},
		[]array.Attribute{{Name: "v", Type: array.Int64}},
	)
}

// pendingChunk builds a single chunk holding cells points, returning it with
// its key.
func pendingChunk(t *testing.T, points ...array.Point) (*array.Chunk, array.ChunkKey) {
	t.Helper()
	a := array.New(pendingSchema())
	for _, p := range points {
		if err := a.Set(p, array.Tuple{1}); err != nil {
			t.Fatal(err)
		}
	}
	if a.NumChunks() != 1 {
		t.Fatalf("points span %d chunks, want 1", a.NumChunks())
	}
	var ch *array.Chunk
	a.EachChunk(func(c *array.Chunk) bool { ch = c; return false })
	return ch, ch.Key()
}

func TestPendingLogAppendTakeOrder(t *testing.T) {
	l := NewPendingLog()
	cx1, kx := pendingChunk(t, array.Point{0, 0})
	cx2, _ := pendingChunk(t, array.Point{1, 1})
	cy1, ky := pendingChunk(t, array.Point{4, 4}, array.Point{5, 5})
	cy2, _ := pendingChunk(t, array.Point{4, 5})

	l.Append(PendingEntry{Seq: 2, Key: kx, Chunk: cx2, Epoch: 7})
	l.Append(PendingEntry{Seq: 1, Key: kx, Chunk: cx1, Epoch: 5})
	l.Append(PendingEntry{Seq: 1, Key: ky, Chunk: cy1, Epoch: 5})
	l.Append(PendingEntry{Seq: 3, Key: ky, Chunk: cy2, Epoch: 9})

	if n, cells := l.EntriesFor(kx); n != 2 || cells != 2 {
		t.Fatalf("EntriesFor(x) = %d entries / %d cells, want 2/2", n, cells)
	}
	if n, cells := l.EntriesFor(ky); n != 2 || cells != 3 {
		t.Fatalf("EntriesFor(y) = %d entries / %d cells, want 2/3", n, cells)
	}
	if seq, ok := l.OldestSeq(); !ok || seq != 1 {
		t.Fatalf("OldestSeq = %d/%v, want 1/true", seq, ok)
	}
	if got := l.KeysAtSeq(1); len(got) != 2 {
		t.Fatalf("KeysAtSeq(1) = %v, want both keys", got)
	}
	if got := l.KeysAtSeq(3); len(got) != 1 || got[0] != ky {
		t.Fatalf("KeysAtSeq(3) = %v, want [%v]", got, ky)
	}

	// Take returns everything for the keys ordered by seq ascending —
	// original batch order, which is what materialization must replay.
	out := l.Take([]array.ChunkKey{kx, ky})
	if len(out) != 4 {
		t.Fatalf("Take returned %d entries, want 4", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Seq > out[i].Seq {
			t.Fatalf("Take out of seq order: %d before %d", out[i-1].Seq, out[i].Seq)
		}
	}
	if out[3].Seq != 3 || out[3].Epoch != 9 {
		t.Fatalf("last entry %+v, want seq 3 epoch 9", out[3])
	}
	if _, ok := l.OldestSeq(); ok {
		t.Fatal("OldestSeq reports entries on a drained log")
	}
	st := l.Stats()
	if st.Entries != 0 || st.Cells != 0 || st.Appended != 4 || st.Materialized != 4 {
		t.Fatalf("post-take stats %+v", st)
	}
}

func TestPendingLogRestoreAfterFailedReplay(t *testing.T) {
	l := NewPendingLog()
	c1, k := pendingChunk(t, array.Point{0, 0})
	c2, _ := pendingChunk(t, array.Point{1, 0})
	l.Append(PendingEntry{Seq: 1, Key: k, Chunk: c1, Epoch: 1})
	l.Append(PendingEntry{Seq: 2, Key: k, Chunk: c2, Epoch: 2})

	taken := l.Take([]array.ChunkKey{k})
	if len(taken) != 2 {
		t.Fatalf("took %d entries, want 2", len(taken))
	}
	// A failed replay puts the entries back; the log must look untouched.
	l.Restore(taken)
	if n, cells := l.EntriesFor(k); n != 2 || cells != 2 {
		t.Fatalf("restore lost entries: %d/%d", n, cells)
	}
	st := l.Stats()
	if st.Materialized != 0 {
		t.Errorf("restore did not refund the materialized counter: %+v", st)
	}
	// Re-take: seq order must survive the round trip.
	again := l.Take([]array.ChunkKey{k})
	if again[0].Seq != 1 || again[1].Seq != 2 {
		t.Fatalf("seq order lost across restore: %d, %d", again[0].Seq, again[1].Seq)
	}
}

func TestPendingLogStatsAndDrainCounter(t *testing.T) {
	l := NewPendingLog()
	if _, ok := l.OldestSeq(); ok {
		t.Fatal("empty log reports an oldest seq")
	}
	c1, k1 := pendingChunk(t, array.Point{0, 0}, array.Point{1, 1})
	c2, k2 := pendingChunk(t, array.Point{4, 4})
	l.Append(PendingEntry{Seq: 1, Key: k1, Chunk: c1, Epoch: 1})
	l.Append(PendingEntry{Seq: 2, Key: k2, Chunk: c2, Epoch: 2})

	st := l.Stats()
	if st.Chunks != 2 || st.Entries != 2 || st.Cells != 3 || st.Batches != 2 {
		t.Fatalf("stats %+v, want 2 chunks / 2 entries / 3 cells / 2 batches", st)
	}
	keys := l.Keys()
	if len(keys) != 2 || keys[0] > keys[1] {
		t.Fatalf("Keys() not sorted: %v", keys)
	}
	l.MarkDrained(2)
	if st := l.Stats(); st.Drained != 2 {
		t.Errorf("drained counter %d, want 2", st.Drained)
	}

	// The catalog owns one log, created on first use.
	cl, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Catalog().Pending() != cl.Catalog().Pending() {
		t.Error("catalog pending log not a singleton")
	}
}
