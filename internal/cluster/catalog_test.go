package cluster

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

func catSchema() *array.Schema {
	return array.MustSchema("A",
		[]array.Dimension{{Name: "x", Start: 0, End: 99, ChunkSize: 10}}, nil)
}

func TestCatalogChunkBBox(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Register(catSchema()); err != nil {
		t.Fatal(err)
	}
	key := array.ChunkCoord{2}.Key()
	if _, ok := cat.ChunkBBox("A", key); ok {
		t.Error("bbox must be absent before recording")
	}
	if _, ok := cat.ChunkBBox("missing", key); ok {
		t.Error("bbox of unknown array must be absent")
	}
	bb := array.NewRegion(array.Point{22}, array.Point{27})
	cat.SetChunkBBox("A", key, bb)
	got, ok := cat.ChunkBBox("A", key)
	if !ok || !got.Lo.Equal(bb.Lo) || !got.Hi.Equal(bb.Hi) {
		t.Errorf("bbox round trip = %v, %v", got, ok)
	}
	// Mutating the original must not change the stored copy.
	bb.Lo[0] = 0
	got, _ = cat.ChunkBBox("A", key)
	if got.Lo[0] != 22 {
		t.Error("SetChunkBBox must copy the region")
	}
	cat.DropChunk("A", key)
	if _, ok := cat.ChunkBBox("A", key); ok {
		t.Error("DropChunk must clear the bbox")
	}
}

func TestCatalogDropChunkAndArray(t *testing.T) {
	cat := NewCatalog()
	_ = cat.Register(catSchema())
	key := array.ChunkCoord{1}.Key()
	cat.SetChunk("A", key, 0, 24, 1)
	cat.DropChunk("A", key)
	if _, ok := cat.Home("A", key); ok {
		t.Error("dropped chunk must leave the catalog")
	}
	cat.DropChunk("A", key)       // idempotent
	cat.DropChunk("missing", key) // unknown array is a no-op
	cat.Drop("A")
	if cat.Schema("A") != nil {
		t.Error("dropped array must leave the catalog")
	}
}

func TestCatalogReplicasAndSizes(t *testing.T) {
	cat := NewCatalog()
	_ = cat.Register(catSchema())
	key := array.ChunkCoord{0}.Key()
	cat.SetChunk("A", key, 2, 48, 2)
	if got := cat.ChunkSize("A", key); got != 48 {
		t.Errorf("ChunkSize = %d", got)
	}
	if got := cat.ChunkCells("A", key); got != 2 {
		t.Errorf("ChunkCells = %d", got)
	}
	if got := cat.ChunkSize("missing", key); got != 0 {
		t.Errorf("missing array size = %d", got)
	}
	if got := cat.ChunkCells("missing", key); got != 0 {
		t.Errorf("missing array cells = %d", got)
	}
	cat.AddReplica("A", key, 0)
	if got := cat.Replicas("A", key); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Replicas = %v", got)
	}
	if got := cat.Replicas("missing", key); got != nil {
		t.Errorf("missing replicas = %v", got)
	}
	if cat.HasReplica("missing", key, 0) {
		t.Error("unknown array has no replicas")
	}
	// AddReplica on a chunk with no replica entry creates it.
	other := array.ChunkCoord{5}.Key()
	cat.AddReplica("A", other, 1)
	if !cat.HasReplica("A", other, 1) {
		t.Error("AddReplica must create entries")
	}
}

func TestCatalogRehomeErrors(t *testing.T) {
	cat := NewCatalog()
	_ = cat.Register(catSchema())
	key := array.ChunkCoord{0}.Key()
	if err := cat.Rehome("A", key, 1, false); err == nil {
		t.Error("rehoming an unknown chunk must fail")
	}
	cat.SetChunk("A", key, 0, 24, 1)
	if err := cat.Rehome("A", key, 1, false); err != nil {
		t.Errorf("unconditional rehome failed: %v", err)
	}
	if h, _ := cat.Home("A", key); h != 1 {
		t.Error("rehome did not take")
	}
}

func TestRangePlacementBands(t *testing.T) {
	p := RangePlacement{Dim: 0, NumChunks: 10}
	seen := make(map[int]bool)
	for i := int64(0); i < 10; i++ {
		n := p.Place(array.ChunkCoord{i}.Key(), 4)
		if n < 0 || n >= 4 {
			t.Fatalf("band %d out of range", n)
		}
		seen[n] = true
		// Monotone: later chunks never map to earlier nodes.
		if i > 0 {
			prev := p.Place(array.ChunkCoord{i - 1}.Key(), 4)
			if n < prev {
				t.Fatalf("bands not monotone: chunk %d -> %d, chunk %d -> %d", i-1, prev, i, n)
			}
		}
	}
	if len(seen) != 4 {
		t.Errorf("10 chunks over 4 nodes must cover all nodes, got %d", len(seen))
	}
	// Degenerate configurations fall back to node 0 / clamp.
	if (RangePlacement{}).Place(array.ChunkCoord{3}.Key(), 4) != 0 {
		t.Error("zero NumChunks must place at node 0")
	}
	if (RangePlacement{Dim: 5, NumChunks: 10}).Place(array.ChunkCoord{3}.Key(), 4) != 0 {
		t.Error("out-of-range dim must place at node 0")
	}
	if n := (RangePlacement{Dim: 0, NumChunks: 10}).Place(array.ChunkCoord{99}.Key(), 4); n != 3 {
		t.Errorf("past-the-end chunk index must clamp to the last node, got %d", n)
	}
	if n := (RangePlacement{Dim: 0, NumChunks: 10}).Place(array.ChunkCoord{-5}.Key(), 4); n != 0 {
		t.Errorf("negative chunk index must clamp to node 0, got %d", n)
	}
}
