package cluster

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
)

// TestMergeCellsAbsorbsSource pins the move semantics of the cell merge:
// the compiled function drains the batch-local source into the destination,
// and the drained source can be mutated or discarded without reaching the
// destination's tuples.
func TestMergeCellsAbsorbsSource(t *testing.T) {
	fn, err := MergeSpec{Kind: MergeCells}.Func()
	if err != nil {
		t.Fatal(err)
	}
	s := fig1Schema()
	dst := array.NewChunk(s, array.ChunkCoord{0, 0})
	src := array.NewChunk(s, array.ChunkCoord{0, 0})
	if err := dst.Set(array.Point{1, 1}, array.Tuple{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := src.Set(array.Point{2, 2}, array.Tuple{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := fn(dst, src); err != nil {
		t.Fatal(err)
	}
	if src.NumCells() != 0 {
		t.Fatalf("source holds %d cells after cell merge, want 0 (moved)", src.NumCells())
	}
	if err := src.Set(array.Point{2, 2}, array.Tuple{-1, -1}); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Get(array.Point{2, 2})
	if !ok || got[0] != 7 || got[1] != 8 {
		t.Fatalf("dst cell = %v, %v after source reuse, want {7 8}", got, ok)
	}
}

// TestMergeAtCellsThroughFabric exercises the same merge through the
// cluster data plane: MergeAt consumes the caller's chunk (its tuples move
// into the resident chunk on the local fabric), and the merged result
// accumulates the cells of both.
func TestMergeAtCellsThroughFabric(t *testing.T) {
	cl, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Catalog().Register(fig1Schema()); err != nil {
		t.Fatal(err)
	}
	s := fig1Schema()
	base := array.NewChunk(s, array.ChunkCoord{0, 0})
	if err := base.Set(array.Point{1, 1}, array.Tuple{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutAt(1, "A", base); err != nil {
		t.Fatal(err)
	}
	delta := array.NewChunk(s, array.ChunkCoord{0, 0})
	if err := delta.Set(array.Point{2, 2}, array.Tuple{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := cl.MergeAt(1, "A", delta, MergeSpec{Kind: MergeCells}); err != nil {
		t.Fatal(err)
	}
	// MergeAt consumed the delta: on the local fabric its tuples moved into
	// the resident chunk, so the drained source is safe to drop.
	if delta.NumCells() != 0 {
		t.Fatalf("caller's delta chunk holds %d cells after MergeAt, want 0 (consumed)", delta.NumCells())
	}
	merged, err := cl.GetAt(1, "A", base.Key())
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumCells() != 2 {
		t.Fatalf("merged chunk holds %d cells, want 2", merged.NumCells())
	}
	got, ok := merged.Get(array.Point{2, 2})
	if !ok || got[0] != 7 || got[1] != 8 {
		t.Fatalf("merged cell = %v, %v, want {7 8}", got, ok)
	}
}
