package cluster

import (
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/storage"
)

// DefaultReadCacheBytes caps the serving layer's hot-chunk cache.
const DefaultReadCacheBytes = 128 << 20

// ReadCache is the serving layer's hot-chunk cache: a content-addressed LRU
// of encoded chunks plus epoch-keyed hash hints that route snapshot reads
// to it.
//
// The body store is keyed purely by content hash, so it needs no
// invalidation — an entry is immutable bytes, and a reader that presents
// the hash of the version its snapshot pins gets exactly that version or a
// miss. What must be invalidated on commit is the *mapping* from (array,
// chunk) to hash. Two sources provide it, both epoch-scoped: the published
// catalog copy carries hashes for every chunk the committing batch did not
// touch (SetChunk drops the rest), and the hint table remembers hashes this
// cache learned by reading at a given epoch. Hints are kept for the two
// most recent epochs seen and dropped wholesale as epochs advance — that is
// the epoch-based invalidation: a new commit silently retires every hint
// that could name superseded content.
type ReadCache struct {
	body *storage.ContentCache

	mu   sync.Mutex
	gens [2]hintGen // [0] = newest epoch seen
}

type hintGen struct {
	epoch uint64
	m     map[string]map[array.ChunkKey]uint64
}

// NewReadCache returns a cache bounded to capBytes (<=0 selects the
// default).
func NewReadCache(capBytes int64) *ReadCache {
	if capBytes <= 0 {
		capBytes = DefaultReadCacheBytes
	}
	return &ReadCache{body: storage.NewContentCache(capBytes)}
}

// Counters exposes hit/miss/bytes accounting of the body store.
func (rc *ReadCache) Counters() *obs.CacheCounters { return rc.body.Counters() }

// Bytes returns the body store's current footprint.
func (rc *ReadCache) Bytes() int64 { return rc.body.Bytes() }

// Lookup returns the cached encoding of the exact content named by hash.
func (rc *ReadCache) Lookup(hash uint64) ([]byte, bool) {
	return rc.body.Lookup(hash, -1)
}

// Insert admits an encoding under its (caller-computed) content hash.
func (rc *ReadCache) Insert(hash uint64, enc []byte) {
	rc.body.InsertHashed(hash, enc)
}

// Hint returns the content hash this cache learned for (name, key) at
// exactly the given epoch, if that epoch's hint generation is still live.
// Epoch 0 is reserved (see genFor) and never answers.
func (rc *ReadCache) Hint(epoch uint64, name string, key array.ChunkKey) (uint64, bool) {
	if epoch == 0 {
		return 0, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for i := range rc.gens {
		if rc.gens[i].epoch == epoch && rc.gens[i].m != nil {
			h, ok := rc.gens[i].m[name][key]
			return h, ok
		}
	}
	return 0, false
}

// SetHint records that (name, key) had the given content hash at the given
// epoch. Seeing a newer epoch rotates the generations, retiring hints two
// epochs old; hints for epochs older than both live generations are
// dropped (the reader holding such a pin still works, it just re-reads).
func (rc *ReadCache) SetHint(epoch uint64, name string, key array.ChunkKey, hash uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	g := rc.genFor(epoch)
	if g == nil {
		return
	}
	byKey, ok := g.m[name]
	if !ok {
		byKey = make(map[array.ChunkKey]uint64)
		g.m[name] = byKey
	}
	byKey[key] = hash
}

// genFor returns the hint generation for an epoch, rotating the table when
// the epoch is newer than any seen. Caller holds rc.mu.
//
// Epoch 0 is reserved: it is the zero value of both generation slots, so
// treating it as live would let hints recorded before the first commit land
// in — and be served from — a phantom generation that rotation can never
// retire cleanly. The epoch manager publishes 1 as its first real epoch;
// anything tagged 0 is dropped here.
func (rc *ReadCache) genFor(epoch uint64) *hintGen {
	if epoch == 0 {
		return nil
	}
	if epoch > rc.gens[0].epoch {
		rc.gens[1] = rc.gens[0]
		rc.gens[0] = hintGen{epoch: epoch, m: make(map[string]map[array.ChunkKey]uint64)}
		return &rc.gens[0]
	}
	for i := range rc.gens {
		if rc.gens[i].epoch == epoch {
			if rc.gens[i].m == nil {
				rc.gens[i].m = make(map[string]map[array.ChunkKey]uint64)
			}
			return &rc.gens[i]
		}
	}
	return nil
}
