package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/arrayview/arrayview/internal/array"
)

// ArrayMeta is the catalog entry for one array: its schema plus chunk-level
// metadata — home node (S_q in the paper), size in bytes (B_q), cell count,
// and the replica set built up by maintenance transfers.
type ArrayMeta struct {
	Schema *array.Schema
	// Home maps each occupied chunk to the node owning its primary copy.
	Home map[array.ChunkKey]int
	// Size caches the serialized byte size of each chunk (B_q).
	Size map[array.ChunkKey]int64
	// Cells caches the non-empty cell count of each chunk.
	Cells map[array.ChunkKey]int
	// Replicas tracks which nodes hold a copy of each chunk, including the
	// home node. Reassignment piggybacks on these copies (Section 4.5).
	Replicas map[array.ChunkKey]map[int]bool
	// BBox optionally caches the tight bounding region of each chunk's
	// non-empty cells — the "positional information on non-empty cells"
	// the paper says cell-granularity maintenance requires.
	BBox map[array.ChunkKey]array.Region
	// Hash optionally caches the FNV-1a content hash of each chunk's
	// canonical encoding, and EncSize the encoded length it covers. An
	// entry exists only while it is known to describe the current content:
	// SetChunk drops it, and only an explicit SetChunkHash by a writer that
	// holds the chunk restores it. A stale hash would make the dedup
	// handshake adopt old content while reporting success, so absence (and
	// a full ship) is always the safe state.
	Hash    map[array.ChunkKey]uint64
	EncSize map[array.ChunkKey]int64
}

func newArrayMeta(s *array.Schema) *ArrayMeta {
	return &ArrayMeta{
		Schema:   s,
		Home:     make(map[array.ChunkKey]int),
		Size:     make(map[array.ChunkKey]int64),
		Cells:    make(map[array.ChunkKey]int),
		Replicas: make(map[array.ChunkKey]map[int]bool),
		BBox:     make(map[array.ChunkKey]array.Region),
		Hash:     make(map[array.ChunkKey]uint64),
		EncSize:  make(map[array.ChunkKey]int64),
	}
}

// Catalog is the centralized system catalog stored at the coordinator. It
// is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	arrays map[string]*ArrayMeta
	// layout counts catalog mutations: every operation that can change what
	// a placement solve or pair enumeration would see (chunk set, homes,
	// sizes, replicas, restores) bumps it. Plan memos key on the value, so
	// a stale plan can never be served after the layout moves.
	layout atomic.Uint64
	// pending is the adaptive path's pending-delta log (see pending.go),
	// created lazily by Pending(). It has its own lock; the catalog only
	// guards the pointer.
	pending *PendingLog
}

// LayoutVersion returns the current mutation counter. Two calls returning
// the same value bracket a window with no catalog mutations, which is what
// makes a layout-keyed plan memo sound.
func (c *Catalog) LayoutVersion() uint64 { return c.layout.Load() }

// bumpLayout advances the mutation counter; called by every mutator.
func (c *Catalog) bumpLayout() { c.layout.Add(1) }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{arrays: make(map[string]*ArrayMeta)}
}

// Register adds an array schema to the catalog. Registering an existing
// name is an error.
func (c *Catalog) Register(s *array.Schema) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.arrays[s.Name]; ok {
		return fmt.Errorf("cluster: array %q already registered", s.Name)
	}
	c.arrays[s.Name] = newArrayMeta(s)
	c.bumpLayout()
	return nil
}

// Drop removes an array from the catalog.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.arrays, name)
	c.bumpLayout()
}

// Schema returns the schema of the named array, or nil.
func (c *Catalog) Schema(name string) *array.Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if m, ok := c.arrays[name]; ok {
		return m.Schema
	}
	return nil
}

// meta fetches the entry, reporting an error for unregistered arrays.
// Requests naming unknown arrays can arrive from remote peers over the
// fabric, so the catalog must refuse them instead of crashing the
// coordinator.
func (c *Catalog) meta(name string) (*ArrayMeta, error) {
	m, ok := c.arrays[name]
	if !ok {
		return nil, fmt.Errorf("cluster: array %q not registered", name)
	}
	return m, nil
}

// SetChunk records or updates the metadata of one chunk: home node, byte
// size, and cell count. It resets the replica set to just the home node and
// drops the cached content hash — the chunk's content may have changed, and
// an offer made with a stale hash would silently adopt old bytes.
func (c *Catalog) SetChunk(name string, key array.ChunkKey, home int, size int64, cells int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.meta(name)
	if err != nil {
		return err
	}
	m.Home[key] = home
	m.Size[key] = size
	m.Cells[key] = cells
	m.Replicas[key] = map[int]bool{home: true}
	delete(m.Hash, key)
	delete(m.EncSize, key)
	c.bumpLayout()
	return nil
}

// SetChunkHash records the content hash (and encoded length) of a chunk's
// current canonical encoding. Only a writer that holds the chunk it just
// wrote may call this: the entry asserts "this is the content every replica
// of the chunk has right now".
func (c *Catalog) SetChunkHash(name string, key array.ChunkKey, hash uint64, encSize int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.meta(name)
	if err != nil {
		return err
	}
	m.Hash[key] = hash
	m.EncSize[key] = encSize
	c.bumpLayout()
	return nil
}

// ChunkHash returns the cached content hash and encoded length of a chunk;
// ok=false means the hash is unknown (or stale-dropped) and transfers must
// full-ship.
func (c *Catalog) ChunkHash(name string, key array.ChunkKey) (hash uint64, encSize int64, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, okA := c.arrays[name]
	if !okA {
		return 0, 0, false
	}
	hash, ok = m.Hash[key]
	return hash, m.EncSize[key], ok
}

// Home returns the home node of a chunk; ok=false when the chunk is not in
// the catalog.
func (c *Catalog) Home(name string, key array.ChunkKey) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return 0, false
	}
	node, ok := m.Home[key]
	return node, ok
}

// ChunkSize returns the cached byte size of a chunk (0 if unknown).
func (c *Catalog) ChunkSize(name string, key array.ChunkKey) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return 0
	}
	return m.Size[key]
}

// ChunkCells returns the cached cell count of a chunk (0 if unknown).
func (c *Catalog) ChunkCells(name string, key array.ChunkKey) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return 0
	}
	return m.Cells[key]
}

// SetChunkBBox records the tight bounding region of a chunk's cells.
func (c *Catalog) SetChunkBBox(name string, key array.ChunkKey, bb array.Region) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.meta(name)
	if err != nil {
		return err
	}
	m.BBox[key] = bb.Clone()
	c.bumpLayout()
	return nil
}

// ChunkBBox returns the cached cell bounding box of a chunk, if recorded.
func (c *Catalog) ChunkBBox(name string, key array.ChunkKey) (array.Region, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return array.Region{}, false
	}
	bb, ok := m.BBox[key]
	return bb, ok
}

// AddReplica records that node holds a copy of the chunk.
func (c *Catalog) AddReplica(name string, key array.ChunkKey, node int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.meta(name)
	if err != nil {
		return err
	}
	reps, ok := m.Replicas[key]
	if !ok {
		reps = make(map[int]bool)
		m.Replicas[key] = reps
	}
	reps[node] = true
	c.bumpLayout()
	return nil
}

// RemoveReplica forgets node's copy of the chunk. Removing the home copy's
// entry is allowed (the home node still counts as a replica via HasReplica);
// unknown arrays or chunks are a no-op.
func (c *Catalog) RemoveReplica(name string, key array.ChunkKey, node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.arrays[name]
	if !ok {
		return
	}
	delete(m.Replicas[key], node)
	c.bumpLayout()
}

// HasReplica reports whether node holds a copy of the chunk (the home node
// always counts).
func (c *Catalog) HasReplica(name string, key array.ChunkKey, node int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return false
	}
	if home, known := m.Home[key]; known && home == node {
		return true
	}
	return m.Replicas[key][node]
}

// Replicas returns the sorted node IDs holding a copy of the chunk.
func (c *Catalog) Replicas(name string, key array.ChunkKey) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(m.Replicas[key]))
	for n := range m.Replicas[key] {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// DropChunk removes one chunk's metadata entirely (e.g., after all its
// cells are deleted).
func (c *Catalog) DropChunk(name string, key array.ChunkKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.arrays[name]
	if !ok {
		return
	}
	delete(m.Home, key)
	delete(m.Size, key)
	delete(m.Cells, key)
	delete(m.Replicas, key)
	delete(m.BBox, key)
	delete(m.Hash, key)
	delete(m.EncSize, key)
	c.bumpLayout()
}

// Rehome changes the home node of a chunk. The new home must already hold a
// replica when requireReplica is set — this is the Algorithm 3 constraint
// that reassignment piggybacks on existing copies and costs no transfer.
func (c *Catalog) Rehome(name string, key array.ChunkKey, node int, requireReplica bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.meta(name)
	if err != nil {
		return err
	}
	if _, ok := m.Home[key]; !ok {
		return fmt.Errorf("cluster: chunk %v of %q unknown", key, name)
	}
	if requireReplica && !m.Replicas[key][node] {
		return fmt.Errorf("cluster: node %d holds no replica of chunk %v of %q", node, key, name)
	}
	m.Home[key] = node
	if m.Replicas[key] == nil {
		m.Replicas[key] = make(map[int]bool)
	}
	m.Replicas[key][node] = true
	c.bumpLayout()
	return nil
}

// ClearReplicas trims every chunk's replica set back to its home node,
// modelling the end-of-batch garbage collection of scratch copies. Unknown
// arrays are a no-op (the batch may have dropped the array already).
func (c *Catalog) ClearReplicas(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.arrays[name]
	if !ok {
		return
	}
	for key, reps := range m.Replicas {
		if len(reps) == 1 && reps[m.Home[key]] {
			continue // already just the home copy; skip the realloc
		}
		m.Replicas[key] = map[int]bool{m.Home[key]: true}
	}
	c.bumpLayout()
}

// SnapshotMeta deep-copies the catalog entry of one array, for restoration
// after a failed batch. ok=false when the array is not registered.
func (c *Catalog) SnapshotMeta(name string) (*ArrayMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return nil, false
	}
	return copyArrayMeta(m), true
}

// RestoreMeta replaces (or re-creates) the catalog entry of one array with a
// snapshot taken by SnapshotMeta. The snapshot is deep-copied again so the
// caller may restore the same snapshot more than once.
func (c *Catalog) RestoreMeta(name string, m *ArrayMeta) {
	if m == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.arrays[name] = copyArrayMeta(m)
	c.bumpLayout()
}

// chunkMetaSnap is the pre-batch catalog entry of one chunk, or its
// recorded absence (exists=false: restoring deletes whatever records the
// batch created for the chunk).
type chunkMetaSnap struct {
	exists   bool
	home     int
	size     int64
	cells    int
	replicas map[int]bool
	bbox     array.Region
	hasBBox  bool
	hash     uint64
	encSize  int64
	hasHash  bool
}

// MetaPatch is a scoped catalog snapshot of one array: the pre-batch
// entries (or recorded absence) of an enumerated chunk set. Capturing and
// restoring one touches only those chunks, so rollback baselines cost
// O(batch footprint) instead of O(array size) — full-array SnapshotMeta
// deep-copies every chunk's maps and dominates per-batch overhead once the
// base grows past a few thousand chunks.
type MetaPatch struct {
	name    string
	entries map[array.ChunkKey]chunkMetaSnap
}

// SnapshotMetaScoped captures the catalog entries of the listed chunks of
// one array, recording absent chunks as such. ok=false when the array is
// not registered.
func (c *Catalog) SnapshotMetaScoped(name string, keys []array.ChunkKey) (*MetaPatch, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return nil, false
	}
	p := &MetaPatch{name: name, entries: make(map[array.ChunkKey]chunkMetaSnap, len(keys))}
	for _, k := range keys {
		if _, dup := p.entries[k]; dup {
			continue
		}
		home, exists := m.Home[k]
		s := chunkMetaSnap{exists: exists, home: home}
		if exists {
			s.size = m.Size[k]
			s.cells = m.Cells[k]
			if reps, ok := m.Replicas[k]; ok {
				s.replicas = make(map[int]bool, len(reps))
				for n, b := range reps {
					s.replicas[n] = b
				}
			}
			if bb, ok := m.BBox[k]; ok {
				s.bbox, s.hasBBox = bb.Clone(), true
			}
			if h, ok := m.Hash[k]; ok {
				s.hash, s.encSize, s.hasHash = h, m.EncSize[k], true
			}
		}
		p.entries[k] = s
	}
	return p, true
}

// RestoreMetaScoped puts the captured chunks back exactly as recorded —
// present entries field-for-field, absent ones deleted — and leaves every
// other chunk of the array untouched. A nil patch or a dropped array is a
// no-op; restoring the same patch more than once is safe (entries are
// copied on the way back in).
func (c *Catalog) RestoreMetaScoped(p *MetaPatch) {
	if p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.arrays[p.name]
	if !ok {
		return
	}
	for k, s := range p.entries {
		if !s.exists {
			delete(m.Home, k)
			delete(m.Size, k)
			delete(m.Cells, k)
			delete(m.Replicas, k)
			delete(m.BBox, k)
			delete(m.Hash, k)
			delete(m.EncSize, k)
			continue
		}
		m.Home[k] = s.home
		m.Size[k] = s.size
		m.Cells[k] = s.cells
		if s.replicas != nil {
			cp := make(map[int]bool, len(s.replicas))
			for n, b := range s.replicas {
				cp[n] = b
			}
			m.Replicas[k] = cp
		} else {
			delete(m.Replicas, k)
		}
		if s.hasBBox {
			m.BBox[k] = s.bbox.Clone()
		} else {
			delete(m.BBox, k)
		}
		if s.hasHash {
			m.Hash[k] = s.hash
			m.EncSize[k] = s.encSize
		} else {
			delete(m.Hash, k)
			delete(m.EncSize, k)
		}
	}
	c.bumpLayout()
}

func copyArrayMeta(m *ArrayMeta) *ArrayMeta {
	out := newArrayMeta(m.Schema)
	for k, v := range m.Home {
		out.Home[k] = v
	}
	for k, v := range m.Size {
		out.Size[k] = v
	}
	for k, v := range m.Cells {
		out.Cells[k] = v
	}
	for k, reps := range m.Replicas {
		cp := make(map[int]bool, len(reps))
		for n, b := range reps {
			cp[n] = b
		}
		out.Replicas[k] = cp
	}
	for k, bb := range m.BBox {
		out.BBox[k] = bb.Clone()
	}
	for k, h := range m.Hash {
		out.Hash[k] = h
	}
	for k, n := range m.EncSize {
		out.EncSize[k] = n
	}
	return out
}

// Names returns the sorted names of every registered array.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.arrays))
	for n := range c.arrays {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Keys returns the sorted chunk keys of the named array.
func (c *Catalog) Keys(name string) []array.ChunkKey {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return nil
	}
	out := make([]array.ChunkKey, 0, len(m.Home))
	for k := range m.Home {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumChunks returns how many chunks of the array the catalog tracks.
func (c *Catalog) NumChunks(name string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.arrays[name]
	if !ok {
		return 0
	}
	return len(m.Home)
}

// NodeLoad returns, for each node, the total bytes of chunks homed there.
func (c *Catalog) NodeLoad(name string, numNodes int) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	load := make([]int64, numNodes)
	m, ok := c.arrays[name]
	if !ok {
		return load
	}
	for k, node := range m.Home {
		if node >= 0 && node < numNodes {
			load[node] += m.Size[k]
		}
	}
	return load
}

// Placement decides the home node for a new chunk; used by the baseline
// algorithm and by initial data loading.
type Placement interface {
	// Place returns a node in [0, numNodes) for the chunk.
	Place(key array.ChunkKey, numNodes int) int
}

// RoundRobin assigns chunks to nodes cyclically in the order presented —
// with row-major-sorted input this is the paper's "distributed round-robin
// in row-major order". The zero value starts at node 0.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Place implements Placement.
func (r *RoundRobin) Place(_ array.ChunkKey, numNodes int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next % numNodes
	r.next++
	return n
}

// HashPlacement assigns chunks by FNV hash of the chunk key: the
// "hash-based chunking" strategy whose poor locality the paper discusses
// ("each join computation is likely to require communication because
// adjacent chunks are assigned to different nodes").
type HashPlacement struct{}

// Place implements Placement.
func (HashPlacement) Place(key array.ChunkKey, numNodes int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numNodes))
}

// RangePlacement is the space-partitioning assignment common in array
// databases: contiguous bands of one dimension's chunk index map to
// consecutive nodes. The paper notes its failure mode for maintenance:
// "most of the joins are concentrated on a single node, thus the load is
// imbalanced" when updates hit a narrow region.
type RangePlacement struct {
	// Dim is the banded dimension's position in the chunk coordinate.
	Dim int
	// NumChunks is the number of chunk slots along Dim.
	NumChunks int64
}

// Place implements Placement.
func (r RangePlacement) Place(key array.ChunkKey, numNodes int) int {
	cc := key.Coord()
	if r.Dim < 0 || r.Dim >= len(cc) || r.NumChunks <= 0 {
		return 0
	}
	idx := cc[r.Dim]
	if idx < 0 {
		idx = 0
	}
	if idx >= r.NumChunks {
		idx = r.NumChunks - 1
	}
	node := int(idx * int64(numNodes) / r.NumChunks)
	if node >= numNodes {
		node = numNodes - 1
	}
	return node
}
