package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/storage"
)

// Node is one shared-nothing worker. Store is its in-process storage
// manager under the default LocalFabric; on a cluster built over a custom
// fabric (WithFabric) the chunks live elsewhere and Store is nil — address
// chunk traffic through the Cluster's *At helpers instead.
type Node struct {
	ID    int
	Store *storage.Store
}

// Cluster is the distributed array database: N worker nodes plus a
// coordinator, a centralized system catalog mapping chunks to nodes, the
// cost model used to account plans, and the fabric all chunk traffic to
// worker nodes flows through. With the default LocalFabric the cluster is
// the paper's in-process simulator; with a network fabric the same plans
// execute over real sockets.
type Cluster struct {
	nodes       []*Node
	coordinator *storage.Store
	catalog     *Catalog
	model       CostModel
	workers     int
	fabric      Fabric
	epochs      *Epochs
	durable     atomic.Pointer[DurableSink]
}

// Option configures a Cluster.
type Option func(*Cluster)

// WithCostModel overrides the default calibrated cost model.
func WithCostModel(m CostModel) Option {
	return func(c *Cluster) { c.model = m }
}

// WithWorkersPerNode sets the worker-thread pool size per node. The paper
// sets it to the core count; we default to a value that keeps the whole
// simulation within the host's cores.
func WithWorkersPerNode(n int) Option {
	return func(c *Cluster) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithFabric replaces the default in-process fabric. The fabric's node
// count must match the cluster's. Nodes of a cluster built on a custom
// fabric carry no local store — all chunk traffic goes through the fabric.
func WithFabric(f Fabric) Option {
	return func(c *Cluster) { c.fabric = f }
}

// New creates a cluster with numNodes workers.
func New(numNodes int, opts ...Option) (*Cluster, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", numNodes)
	}
	c := &Cluster{
		coordinator: storage.NewStore(),
		catalog:     NewCatalog(),
		model:       DefaultCostModel(),
		workers:     max(1, runtime.NumCPU()/numNodes),
	}
	c.epochs = newEpochs(c)
	for _, opt := range opts {
		opt(c)
	}
	if c.fabric == nil {
		stores := make([]*storage.Store, numNodes)
		for i := range stores {
			stores[i] = storage.NewStore()
			c.nodes = append(c.nodes, &Node{ID: i, Store: stores[i]})
		}
		c.fabric = NewLocalFabric(stores)
	} else {
		if c.fabric.NumNodes() != numNodes {
			return nil, fmt.Errorf("cluster: fabric addresses %d nodes, cluster has %d", c.fabric.NumNodes(), numNodes)
		}
		for i := 0; i < numNodes; i++ {
			c.nodes = append(c.nodes, &Node{ID: i})
		}
	}
	return c, nil
}

// NumNodes returns the worker count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Catalog returns the system catalog.
func (c *Cluster) Catalog() *Catalog { return c.catalog }

// CostModel returns the cluster's cost model.
func (c *Cluster) CostModel() CostModel { return c.model }

// NewLedger returns a fresh per-batch ledger for this cluster.
func (c *Cluster) NewLedger() *Ledger { return NewLedger(len(c.nodes), c.model) }

// Fabric returns the data plane the cluster was built with.
func (c *Cluster) Fabric() Fabric { return c.fabric }

// Epochs returns the cluster's snapshot-isolation manager (disabled until
// Epochs().Enable is called).
func (c *Cluster) Epochs() *Epochs { return c.epochs }

// DurableSink receives durability barriers from the maintenance layer.
// internal/wal implements it; the interface lives here so cluster stays
// free of a wal dependency. CommitBarrier makes the current cluster state
// (store mutations, catalog, pending log) the crash-recovery point;
// RollbackBarrier does the same for the restored pre-batch state after an
// abort. A barrier may only be issued when no batch is mid-commit.
type DurableSink interface {
	CommitBarrier() error
	RollbackBarrier() error
}

// SetDurable installs (or clears, with nil) the cluster's durable sink.
// Install before maintenance traffic starts; the maintenance layer reads
// it at every commit/rollback boundary.
func (c *Cluster) SetDurable(d DurableSink) { c.durable.Store(&d) }

// Durable returns the installed durable sink, or nil.
func (c *Cluster) Durable() DurableSink {
	if p := c.durable.Load(); p != nil {
		return *p
	}
	return nil
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range [0, %d)", id, len(c.nodes)))
	}
	return c.nodes[id]
}

// PutAt stores a chunk at a node (or the coordinator) via the fabric.
func (c *Cluster) PutAt(node int, arrayName string, ch *array.Chunk) error {
	if node == Coordinator {
		return c.coordinator.Put(arrayName, ch)
	}
	return c.fabric.Put(node, arrayName, ch)
}

// GetAt fetches a chunk from a node (or the coordinator) via the fabric.
func (c *Cluster) GetAt(node int, arrayName string, key array.ChunkKey) (*array.Chunk, error) {
	if node == Coordinator {
		return c.coordinator.Get(arrayName, key)
	}
	return c.fabric.Get(node, arrayName, key)
}

// HasAt reports chunk residency at a node (or the coordinator).
func (c *Cluster) HasAt(node int, arrayName string, key array.ChunkKey) (bool, error) {
	if node == Coordinator {
		return c.coordinator.Has(arrayName, key), nil
	}
	return c.fabric.Has(node, arrayName, key)
}

// DeleteAt evicts a chunk from a node (or the coordinator).
func (c *Cluster) DeleteAt(node int, arrayName string, key array.ChunkKey) (bool, error) {
	if node == Coordinator {
		return c.coordinator.Delete(arrayName, key)
	}
	return c.fabric.Delete(node, arrayName, key)
}

// MergeAt folds src into the node-resident chunk with the same coordinate
// under the spec's semantics. The source chunk is consumed — a cell merge
// moves its tuples instead of cloning them — so callers must not reuse src
// after the call.
func (c *Cluster) MergeAt(node int, arrayName string, src *array.Chunk, spec MergeSpec) error {
	if node == Coordinator {
		fn, err := spec.Func()
		if err != nil {
			return err
		}
		return c.coordinator.Merge(arrayName, src, fn)
	}
	return c.fabric.Merge(node, arrayName, src, spec)
}

// KeysAt lists a node's resident chunk keys for one array.
func (c *Cluster) KeysAt(node int, arrayName string) ([]array.ChunkKey, error) {
	if node == Coordinator {
		return c.coordinator.Keys(arrayName), nil
	}
	return c.fabric.Keys(node, arrayName)
}

// DropArrayAt evicts every chunk of the named array from a node.
func (c *Cluster) DropArrayAt(node int, arrayName string) (int, error) {
	if node == Coordinator {
		return c.coordinator.DropArray(arrayName)
	}
	return c.fabric.DropArray(node, arrayName)
}

// LoadArray registers the array and distributes its chunks to nodes using
// the placement strategy, feeding chunks in row-major key order so that
// RoundRobin reproduces the paper's layout.
func (c *Cluster) LoadArray(a *array.Array, p Placement) error {
	if err := c.catalog.Register(a.Schema()); err != nil {
		return err
	}
	name := a.Schema().Name
	var err error
	a.EachChunk(func(ch *array.Chunk) bool {
		node := p.Place(ch.Key(), len(c.nodes))
		if node < 0 || node >= len(c.nodes) {
			err = fmt.Errorf("cluster: placement returned node %d", node)
			return false
		}
		if err = c.fabric.Put(node, name, ch); err != nil {
			return false
		}
		if err = c.catalog.SetChunk(name, ch.Key(), node, ch.SizeBytes(), ch.NumCells()); err != nil {
			return false
		}
		// The loader holds the chunk it just wrote, so it may record the
		// content hash that future transfers offer instead of the body.
		if err = c.catalog.SetChunkHash(name, ch.Key(), ch.ContentHash(), ch.EncodedSize()); err != nil {
			return false
		}
		if bb, ok := ch.BoundingBox(); ok {
			if err = c.catalog.SetChunkBBox(name, ch.Key(), bb); err != nil {
				return false
			}
		}
		return true
	})
	return err
}

// StageDelta places a batch's delta chunks at the coordinator and records
// them in the catalog with home = Coordinator. Chunks for an unregistered
// array are an error.
func (c *Cluster) StageDelta(name string, chunks []*array.Chunk) error {
	if c.catalog.Schema(name) == nil {
		return fmt.Errorf("cluster: array %q not registered", name)
	}
	for _, ch := range chunks {
		if err := c.coordinator.Put(name, ch); err != nil {
			return err
		}
		if err := c.catalog.SetChunk(name, ch.Key(), Coordinator, ch.SizeBytes(), ch.NumCells()); err != nil {
			return err
		}
		if err := c.catalog.SetChunkHash(name, ch.Key(), ch.ContentHash(), ch.EncodedSize()); err != nil {
			return err
		}
		if bb, ok := ch.BoundingBox(); ok {
			if err := c.catalog.SetChunkBBox(name, ch.Key(), bb); err != nil {
				return err
			}
		}
	}
	return nil
}

// Transfer copies a chunk from one node (or the coordinator) to another and
// charges the sender on the ledger with the bytes actually shipped. The
// catalog gains a replica entry; the home assignment is unchanged.
// Transfers to a node already holding a replica are free no-ops — but only
// after the fabric confirms the copy is actually resident: a catalog
// replica entry can outlive the data (a node daemon restart empties its
// store), and skipping the ship then surfaces later as a misleading read
// failure far from the cause.
//
// When the catalog knows the chunk's content hash and the fabric speaks the
// wire protocol, the transfer first offers (key, hash) to the destination;
// an accepted offer means the destination produced the content locally and
// the body ship — and its ledger charge — is skipped entirely.
func (c *Cluster) Transfer(ledger *Ledger, name string, key array.ChunkKey, from, to int) error {
	if from == to {
		return nil
	}
	if c.catalog.HasReplica(name, key, to) {
		if resident, err := c.HasAt(to, name, key); err == nil && resident {
			return nil
		}
		// Stale replica entry: fall through and re-ship the chunk.
	}
	if accepted, err := c.offerOne(name, key, to); err == nil && accepted {
		return c.catalog.AddReplica(name, key, to)
	}
	ch, src, err := c.readReplica(name, key, from)
	if err != nil {
		return fmt.Errorf("cluster: transfer %v of %q from node %d: %w", key, name, from, err)
	}
	if err := c.PutAtRetry(to, name, ch); err != nil {
		return fmt.Errorf("cluster: transfer %v of %q to node %d: %w", key, name, to, err)
	}
	if err := c.catalog.AddReplica(name, key, to); err != nil {
		return err
	}
	// The transfer just read the current content, so its hash may be
	// recorded: replicas are always copies of the current version, making
	// the next ship of this chunk a pure handshake.
	if _, _, known := c.catalog.ChunkHash(name, key); !known {
		_ = c.catalog.SetChunkHash(name, key, ch.ContentHash(), ch.EncodedSize())
	}
	if ledger != nil {
		// Charge the node actually read: under failover the sender differs
		// from the planned source, and the ledger should reflect the bytes
		// that really moved.
		ledger.ChargeTransferTo(src, to, c.catalog.ChunkSize(name, key))
	}
	return nil
}

// offerOne runs the dedup handshake for a single chunk against a worker
// node. accepted=false (with a nil error) covers every "just full-ship"
// case: unknown hash, a fabric without the wire protocol, or a declined
// offer. Errors are reported so callers can distinguish a down node.
func (c *Cluster) offerOne(name string, key array.ChunkKey, to int) (bool, error) {
	if to == Coordinator {
		return false, nil
	}
	wf, ok := c.fabric.(WireFabric)
	if !ok {
		return false, nil
	}
	h, sz, ok := c.catalog.ChunkHash(name, key)
	if !ok {
		return false, nil
	}
	acc, err := wf.OfferBatch(to, []WireItem{{Array: name, Key: key, Hash: h, Size: sz}})
	if err != nil {
		return false, err
	}
	return len(acc) == 1 && acc[0], nil
}

// TransferItem names one chunk of a batched transfer.
type TransferItem struct {
	Array string
	Key   array.ChunkKey
}

// TransferBatch ships several chunks from one node (or the coordinator) to
// another in a pipelined exchange: one dedup offer round for every chunk
// with a known content hash, one batched encoded read from the source, and
// one batched encoded write to the destination — three round trips for the
// whole wave instead of two per chunk. Chunks the destination already holds
// (or adopts from the offer) ship nothing and charge nothing; the rest
// charge the ledger with their full encoded payload, per the actual-bytes
// rule on Ledger.ChargeTransferTo. On fabrics without the wire protocol, or
// when any batched call fails, it falls back to per-chunk Transfer, which
// adds replica failover and node-down tolerance.
func (c *Cluster) TransferBatch(ledger *Ledger, items []TransferItem, from, to int) error {
	if from == to || len(items) == 0 {
		return nil
	}
	wf, wok := c.fabric.(WireFabric)
	if !wok || to == Coordinator {
		return c.transferEach(ledger, items, from, to)
	}

	// Partition: verified-resident chunks are done; chunks with a known
	// hash go into the offer; the rest ship in full. A catalog replica
	// entry alone is not trusted — for hashless chunks it is re-verified
	// with HasAt, for hashed chunks the offer itself confirms residency.
	var offers []WireItem
	var need []TransferItem
	for _, it := range items {
		h, sz, hok := c.catalog.ChunkHash(it.Array, it.Key)
		if hok {
			offers = append(offers, WireItem{Array: it.Array, Key: it.Key, Hash: h, Size: sz})
			continue
		}
		if c.catalog.HasReplica(it.Array, it.Key, to) {
			if resident, err := c.HasAt(to, it.Array, it.Key); err == nil && resident {
				continue
			}
		}
		need = append(need, it)
	}
	if len(offers) > 0 {
		acc, err := wf.OfferBatch(to, offers)
		if err != nil || len(acc) != len(offers) {
			return c.transferEach(ledger, items, from, to)
		}
		for i, o := range offers {
			if acc[i] {
				if err := c.catalog.AddReplica(o.Array, o.Key, to); err != nil {
					return err
				}
			} else {
				need = append(need, TransferItem{Array: o.Array, Key: o.Key})
			}
		}
	}
	if len(need) == 0 {
		return nil
	}

	// Batched body ship for the refused/hashless remainder.
	ship := make([]WireItem, len(need))
	for i, it := range need {
		ship[i] = WireItem{Array: it.Array, Key: it.Key}
	}
	if from == Coordinator {
		for i := range ship {
			buf, ok := c.coordinator.GetEncoded(ship[i].Array, ship[i].Key)
			if !ok {
				return c.transferEach(ledger, need, from, to)
			}
			ship[i].Data = buf
		}
	} else {
		bufs, err := wf.GetEncodedBatch(from, ship)
		if err != nil || len(bufs) != len(ship) {
			return c.transferEach(ledger, need, from, to)
		}
		for i := range ship {
			ship[i].Data = bufs[i]
		}
	}
	for i := range ship {
		ship[i].Size = int64(len(ship[i].Data))
		ship[i].Hash = array.HashChunkBytes(ship[i].Data)
	}
	if err := wf.PutEncodedBatch(to, ship); err != nil {
		return c.transferEach(ledger, need, from, to)
	}
	for i, it := range need {
		if err := c.catalog.AddReplica(it.Array, it.Key, to); err != nil {
			return err
		}
		// Shipped bytes are the current content by the replica invariant,
		// so the hash (computed above for the wire items) is recordable.
		if _, _, known := c.catalog.ChunkHash(it.Array, it.Key); !known {
			_ = c.catalog.SetChunkHash(it.Array, it.Key, ship[i].Hash, ship[i].Size)
		}
		if ledger != nil {
			ledger.ChargeTransferTo(from, to, c.catalog.ChunkSize(it.Array, it.Key))
		}
	}
	return nil
}

// transferEach is TransferBatch's per-chunk fallback path.
func (c *Cluster) transferEach(ledger *Ledger, items []TransferItem, from, to int) error {
	for _, it := range items {
		if err := c.Transfer(ledger, it.Array, it.Key, from, to); err != nil {
			return err
		}
	}
	return nil
}

// PutAtRetry stores a chunk with bounded retries. A write whose ack was lost
// may actually have applied, and Put is an idempotent overwrite, so retrying
// recovers one-shot ack loss; retries stop early when the node itself is
// down (failover, not persistence, is the answer there).
func (c *Cluster) PutAtRetry(node int, arrayName string, ch *array.Chunk) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = c.PutAt(node, arrayName, ch); err == nil {
			return nil
		}
		if IsNodeDown(err) {
			return err
		}
	}
	return err
}

// ReadReplica fetches a chunk from the preferred node, failing over to every
// catalog replica (and the home node); it returns the node actually read so
// callers can charge the true sender. Exported for executors that need to
// know the source of a failover read.
func (c *Cluster) ReadReplica(name string, key array.ChunkKey, prefer int) (*array.Chunk, int, error) {
	return c.readReplica(name, key, prefer)
}

// ReadError is the typed failure of a replicated chunk read: every candidate
// copy (preferred node, catalog replicas, home) was tried and none produced
// the chunk. Callers distinguishing "data truly unavailable" from transient
// single-node errors — Gather during failover, snapshot reads — match on it
// with errors.As; the partial result preceding it must be discarded, never
// returned as if complete.
type ReadError struct {
	Array string
	Key   array.ChunkKey
	// Tried lists the node IDs attempted, in order.
	Tried []int
	// Err is the error from the last attempt (nil when there was no
	// candidate at all, i.e. the chunk is unknown to the catalog).
	Err error
}

// Error implements error.
func (e *ReadError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("cluster: chunk %v of %q unknown", e.Key, e.Array)
	}
	return fmt.Sprintf("cluster: chunk %v of %q unreadable on all %d replicas %v: %v",
		e.Key, e.Array, len(e.Tried), e.Tried, e.Err)
}

// Unwrap exposes the last per-node error for errors.Is/As chains (e.g.
// IsNodeDown).
func (e *ReadError) Unwrap() error { return e.Err }

// readReplica fetches a chunk from the preferred node, failing over to every
// other catalog replica (and the home node) when the preferred copy is
// unreachable or missing. It returns the chunk and the node actually read so
// callers can charge the true sender. With no usable copy anywhere it
// returns a *ReadError naming every node tried.
func (c *Cluster) readReplica(name string, key array.ChunkKey, prefer int) (*array.Chunk, int, error) {
	cands := append([]int{prefer}, c.catalog.Replicas(name, key)...)
	if home, ok := c.catalog.Home(name, key); ok {
		cands = append(cands, home)
	}
	seen := make(map[int]bool, len(cands))
	rerr := &ReadError{Array: name, Key: key}
	for _, n := range cands {
		if seen[n] {
			continue
		}
		seen[n] = true
		ch, err := c.GetAt(n, name, key)
		if err == nil {
			return ch, n, nil
		}
		rerr.Tried = append(rerr.Tried, n)
		rerr.Err = err
	}
	return nil, 0, rerr
}

// FetchChunk reads a chunk from whichever node it is resident on (preferring
// the requested node) without charging the ledger; used by executors that
// already paid for transfers in the plan.
func (c *Cluster) FetchChunk(name string, key array.ChunkKey, at int) (*array.Chunk, error) {
	if at != Coordinator {
		if ok, err := c.HasAt(at, name, key); err == nil && ok {
			if ch, err := c.GetAt(at, name, key); err == nil {
				return ch, nil
			}
		}
	}
	home, ok := c.catalog.Home(name, key)
	if !ok {
		return nil, fmt.Errorf("cluster: chunk %v of %q unknown", key, name)
	}
	ch, _, err := c.readReplica(name, key, home)
	return ch, err
}

// Gather reconstructs the full logical array from the distributed chunks,
// reading each chunk from its home node. Used by tests and by clients that
// want a local copy. When any chunk is unreadable on every replica the whole
// gather fails with a *ReadError — a partial array is never returned, so a
// replica vanishing mid-read during failover surfaces as a typed error
// instead of silently missing data.
func (c *Cluster) Gather(name string) (*array.Array, error) {
	s := c.catalog.Schema(name)
	if s == nil {
		return nil, fmt.Errorf("cluster: array %q not registered", name)
	}
	out := array.New(s)
	for _, key := range c.catalog.Keys(name) {
		home, _ := c.catalog.Home(name, key)
		ch, _, err := c.readReplica(name, key, home)
		if err != nil {
			return nil, err
		}
		out.PutChunk(ch)
	}
	return out, nil
}

// Task is one unit of node-local work (a chunk-pair join or a view merge).
type Task func() error

// RunPerNode executes each node's task list concurrently: nodes run in
// parallel with each other and each node processes its own queue with the
// configured per-node worker pool, mirroring the paper's thread-pool
// servers. The first error aborts scheduling of further tasks and is
// returned.
func (c *Cluster) RunPerNode(tasks map[int][]Task) error {
	return c.RunPerNodeCtx(context.Background(), tasks)
}

// RunPerNodeCtx is RunPerNode with cancellation: when the context is
// cancelled, no further tasks are scheduled (in-flight tasks run to
// completion) and the context error is returned unless a task failed first.
// This is what lets a hung node cancel the rest of a wave instead of wedging
// the batch.
func (c *Cluster) RunPerNodeCtx(ctx context.Context, tasks map[int][]Task) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	nodeIDs := make([]int, 0, len(tasks))
	for id := range tasks {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Ints(nodeIDs)
	for _, id := range nodeIDs {
		queue := tasks[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch := make(chan Task)
			var nodeWG sync.WaitGroup
			for w := 0; w < c.workers; w++ {
				nodeWG.Add(1)
				go func() {
					defer nodeWG.Done()
					for t := range ch {
						if err := t(); err != nil {
							setErr(err)
						}
					}
				}()
			}
			for _, t := range queue {
				if failed() || ctx.Err() != nil {
					break
				}
				ch <- t
			}
			close(ch)
			nodeWG.Wait()
		}()
	}
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return firstErr
}
