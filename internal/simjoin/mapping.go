// Package simjoin implements the array similarity join operator of Section
// 2.2 (following Zhao et al., "Similarity Join over Array Data", SIGMOD
// 2016): given arrays α and β, a mapping function M from α cells to β
// cells, and a shape σ, the join matches every cell Υ of α with the
// non-empty cells of β inside σ centered on M(Υ).
//
// The package provides the two levels the maintenance layer needs:
// chunk-pair identification over catalog metadata, and the cell-level join
// of one chunk pair.
package simjoin

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/array"
)

// Mapping is the function M : Dα → Dβ of the join definition. Mappings must
// be monotone and rectilinear so that regions map to regions; that covers
// identity, translation, and regridding, which are the mappings used in
// practice.
type Mapping interface {
	// Map transforms one α coordinate into β space.
	Map(p array.Point) array.Point
	// MapInto writes the β coordinate of p into dst (which must have the β
	// dimensionality) without allocating; the join kernel's inner loop uses
	// it with a reused buffer.
	MapInto(p, dst array.Point)
	// MapRegion transforms an α region into the bounding β region of its
	// image.
	MapRegion(r array.Region) array.Region
	// Name identifies the mapping in plans and diagnostics.
	Name() string
}

// Identity maps α cells to the β cell with the same indices. Both arrays
// must share dimensionality.
type Identity struct{}

// Map implements Mapping.
func (Identity) Map(p array.Point) array.Point { return p }

// MapInto implements Mapping.
func (Identity) MapInto(p, dst array.Point) { copy(dst, p) }

// MapRegion implements Mapping.
func (Identity) MapRegion(r array.Region) array.Region { return r }

// Name implements Mapping.
func (Identity) Name() string { return "identity" }

// Translate maps p to p + Offset; used to align arrays with shifted
// coordinate origins.
type Translate struct {
	Offset []int64
}

// Map implements Mapping.
func (t Translate) Map(p array.Point) array.Point { return p.Add(t.Offset) }

// MapInto implements Mapping.
func (t Translate) MapInto(p, dst array.Point) {
	for i := range p {
		dst[i] = p[i] + t.Offset[i]
	}
}

// MapRegion implements Mapping.
func (t Translate) MapRegion(r array.Region) array.Region {
	return array.Region{Lo: r.Lo.Add(t.Offset), Hi: r.Hi.Add(t.Offset)}
}

// Name implements Mapping.
func (t Translate) Name() string { return fmt.Sprintf("translate%v", t.Offset) }

// Regrid maps p to floor(p / Factor) per dimension: the regridding
// operation that coarsens α's resolution into β's. Factors must be
// positive; coordinates are assumed non-negative (astronomy catalogs index
// from 1).
type Regrid struct {
	Factor []int64
}

// Map implements Mapping.
func (g Regrid) Map(p array.Point) array.Point {
	q := make(array.Point, len(p))
	g.MapInto(p, q)
	return q
}

// MapInto implements Mapping.
func (g Regrid) MapInto(p, dst array.Point) {
	for i := range p {
		dst[i] = floorDiv(p[i], g.Factor[i])
	}
}

// MapRegion implements Mapping.
func (g Regrid) MapRegion(r array.Region) array.Region {
	return array.Region{Lo: g.Map(r.Lo), Hi: g.Map(r.Hi)}
}

// Name implements Mapping.
func (g Regrid) Name() string { return fmt.Sprintf("regrid%v", g.Factor) }

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// ValueFunc combines the attribute tuples of a matched cell pair into the
// output tuple (the f of the join definition).
type ValueFunc func(a, b array.Tuple) array.Tuple

// ConcatValues is the default value function: the concatenation
// <a..., b...> used in the paper's running example.
func ConcatValues(a, b array.Tuple) array.Tuple {
	out := make(array.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}
