package simjoin

import (
	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
)

// Pred describes the full join predicate: the shape σ and the mapping M.
type Pred struct {
	Shape   *shape.Shape
	Mapping Mapping
}

// NewPred bundles a shape and mapping; a nil mapping defaults to identity.
func NewPred(s *shape.Shape, m Mapping) Pred {
	if m == nil {
		m = Identity{}
	}
	return Pred{Shape: s, Mapping: m}
}

// ReachRegion returns the β-space region of cells reachable through the
// predicate from any α cell in r: dilate(M(r), shape box).
func (p Pred) ReachRegion(r array.Region) array.Region {
	lo, hi := p.Shape.Box()
	return p.Mapping.MapRegion(r).Dilate(lo, hi)
}

// SourceRegion returns the α-space region of cells that can reach some β
// cell in r: the dilation by the reflected shape, pulled back through the
// mapping. It is exact for identity/translate mappings and a safe
// overapproximation for regridding.
func (p Pred) SourceRegion(r array.Region) array.Region {
	refl := p.Shape.Reflect()
	lo, hi := refl.Box()
	dilated := r.Dilate(lo, hi)
	switch m := p.Mapping.(type) {
	case Identity:
		return dilated
	case Translate:
		neg := make([]int64, len(m.Offset))
		for i, v := range m.Offset {
			neg[i] = -v
		}
		return Translate{Offset: neg}.MapRegion(dilated)
	case Regrid:
		lo2 := make(array.Point, len(dilated.Lo))
		hi2 := make(array.Point, len(dilated.Hi))
		for i := range dilated.Lo {
			lo2[i] = dilated.Lo[i] * m.Factor[i]
			hi2[i] = (dilated.Hi[i]+1)*m.Factor[i] - 1
		}
		return array.Region{Lo: lo2, Hi: hi2}
	default:
		return dilated
	}
}

// Matches reports whether β cell b is matched by α cell a under the
// predicate: b - M(a) must be in the shape.
func (p Pred) Matches(a, b array.Point) bool {
	ma := p.Mapping.Map(a)
	off := make([]int64, len(b))
	for i := range b {
		off[i] = b[i] - ma[i]
	}
	return p.Shape.Contains(off)
}

// PairChunks reports whether chunk regions ra (of α) and rb (of β) can
// contain at least one matching cell pair, using only metadata. This is the
// preprocessing step the paper performs over the catalog.
func (p Pred) PairChunks(ra, rb array.Region) bool {
	return p.ReachRegion(ra).Intersects(rb)
}

// JoinChunkPair enumerates all matching cell pairs between chunks ca (α
// side) and cb (β side) and calls emit for each; emit returning false stops
// the enumeration. The points and tuples passed to emit are owned by the
// chunks — clone before retaining.
//
// Two strategies are used per α cell: when the shape's bounding box is
// small, the box is probed directly against cb (offset probing); when the
// box is large relative to cb's occupancy, cb's cells are scanned and
// tested against the predicate (scan filtering). The crossover is chosen on
// cardinalities, mirroring how the similarity join operator picks between
// shape-order and data-order evaluation.
func (p Pred) JoinChunkPair(ca, cb *array.Chunk, emit func(a, b array.Point, ta, tb array.Tuple) bool) {
	if ca.NumCells() == 0 || cb.NumCells() == 0 {
		return
	}
	// Prune using the actual occupancy of ca, not just its chunk region.
	bbA, _ := ca.BoundingBox()
	if !p.ReachRegion(bbA).Intersects(cb.Region()) {
		return
	}
	boxVol := p.Shape.BoxVolume()
	probe := boxVol <= int64(cb.NumCells())*4
	stop := false
	ca.EachSorted(func(a array.Point, ta array.Tuple) bool {
		if probe {
			p.probeCell(a, ta, cb, emit, &stop)
		} else {
			p.scanCell(a, ta, cb, emit, &stop)
		}
		return !stop
	})
}

// probeCell enumerates shape offsets around M(a) and probes cb.
func (p Pred) probeCell(a array.Point, ta array.Tuple, cb *array.Chunk, emit func(a, b array.Point, ta, tb array.Tuple) bool, stop *bool) {
	ma := p.Mapping.Map(a)
	lo, hi := p.Shape.Box()
	cand, ok := array.Region{Lo: ma.Add(lo), Hi: ma.Add(hi)}.Intersect(cb.Region())
	if !ok {
		return
	}
	off := make([]int64, len(ma))
	cand.Each(func(b array.Point) bool {
		for i := range b {
			off[i] = b[i] - ma[i]
		}
		if !p.Shape.Contains(off) {
			return true
		}
		tb, found := cb.Get(b)
		if !found {
			return true
		}
		if !emit(a, b, ta, tb) {
			*stop = true
			return false
		}
		return true
	})
}

// scanCell scans cb's occupied cells and filters by the predicate.
func (p Pred) scanCell(a array.Point, ta array.Tuple, cb *array.Chunk, emit func(a, b array.Point, ta, tb array.Tuple) bool, stop *bool) {
	ma := p.Mapping.Map(a)
	off := make([]int64, len(ma))
	cb.EachSorted(func(b array.Point, tb array.Tuple) bool {
		for i := range b {
			off[i] = b[i] - ma[i]
		}
		if !p.Shape.Contains(off) {
			return true
		}
		if !emit(a, b, ta, tb) {
			*stop = true
			return false
		}
		return true
	})
}

// JoinArrays runs the similarity join between two in-memory arrays,
// emitting every matched cell pair. It is the single-node reference
// implementation used to validate the distributed path and to compute
// complete joins in tests.
func JoinArrays(alpha, beta *array.Array, p Pred, emit func(a, b array.Point, ta, tb array.Tuple) bool) {
	stop := false
	alpha.EachChunk(func(ca *array.Chunk) bool {
		reach := p.ReachRegion(ca.Region())
		for _, cc := range beta.Schema().ChunksOverlapping(reach) {
			cb := beta.Chunk(cc)
			if cb == nil {
				continue
			}
			p.JoinChunkPair(ca, cb, func(a, b array.Point, ta, tb array.Tuple) bool {
				if !emit(a, b, ta, tb) {
					stop = true
				}
				return !stop
			})
			if stop {
				break
			}
		}
		return !stop
	})
}

// Materialize evaluates the similarity join into the concatenated-dimension
// output array τ of the paper: output dimensionality is dα + dβ and the
// output tuple is f(Υ, σ[Ψ]). Intended for small arrays (tests, examples);
// production paths aggregate instead of materializing τ.
func Materialize(alpha, beta *array.Array, p Pred, f ValueFunc) (*array.Array, error) {
	if f == nil {
		f = ConcatValues
	}
	sa, sb := alpha.Schema(), beta.Schema()
	dims := make([]array.Dimension, 0, len(sa.Dims)+len(sb.Dims))
	dims = append(dims, sa.Dims...)
	for _, d := range sb.Dims {
		d.Name = d.Name + "'"
		dims = append(dims, d)
	}
	attrs := make([]array.Attribute, 0, len(sa.Attrs)+len(sb.Attrs))
	attrs = append(attrs, sa.Attrs...)
	for _, a := range sb.Attrs {
		a.Name = a.Name + "'"
		attrs = append(attrs, a)
	}
	schema, err := array.NewSchema(sa.Name+"_join_"+sb.Name, dims, attrs)
	if err != nil {
		return nil, err
	}
	out := array.New(schema)
	var setErr error
	JoinArrays(alpha, beta, p, func(a, b array.Point, ta, tb array.Tuple) bool {
		pt := make(array.Point, 0, len(a)+len(b))
		pt = append(pt, a...)
		pt = append(pt, b...)
		if err := out.Set(pt, f(ta, tb)); err != nil {
			setErr = err
			return false
		}
		return true
	})
	return out, setErr
}
