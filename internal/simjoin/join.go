package simjoin

import (
	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
)

// Pred describes the full join predicate: the shape σ and the mapping M.
type Pred struct {
	Shape   *shape.Shape
	Mapping Mapping
}

// NewPred bundles a shape and mapping; a nil mapping defaults to identity.
func NewPred(s *shape.Shape, m Mapping) Pred {
	if m == nil {
		m = Identity{}
	}
	return Pred{Shape: s, Mapping: m}
}

// ReachRegion returns the β-space region of cells reachable through the
// predicate from any α cell in r: dilate(M(r), shape box).
func (p Pred) ReachRegion(r array.Region) array.Region {
	lo, hi := p.Shape.Box()
	return p.Mapping.MapRegion(r).Dilate(lo, hi)
}

// SourceRegion returns the α-space region of cells that can reach some β
// cell in r: the dilation by the reflected shape, pulled back through the
// mapping. It is exact for identity/translate mappings and a safe
// overapproximation for regridding.
func (p Pred) SourceRegion(r array.Region) array.Region {
	refl := p.Shape.Reflect()
	lo, hi := refl.Box()
	dilated := r.Dilate(lo, hi)
	switch m := p.Mapping.(type) {
	case Identity:
		return dilated
	case Translate:
		neg := make([]int64, len(m.Offset))
		for i, v := range m.Offset {
			neg[i] = -v
		}
		return Translate{Offset: neg}.MapRegion(dilated)
	case Regrid:
		lo2 := make(array.Point, len(dilated.Lo))
		hi2 := make(array.Point, len(dilated.Hi))
		for i := range dilated.Lo {
			lo2[i] = dilated.Lo[i] * m.Factor[i]
			hi2[i] = (dilated.Hi[i]+1)*m.Factor[i] - 1
		}
		return array.Region{Lo: lo2, Hi: hi2}
	default:
		return dilated
	}
}

// Matches reports whether β cell b is matched by α cell a under the
// predicate: b - M(a) must be in the shape.
func (p Pred) Matches(a, b array.Point) bool {
	ma := p.Mapping.Map(a)
	off := make([]int64, len(b))
	for i := range b {
		off[i] = b[i] - ma[i]
	}
	return p.Shape.Contains(off)
}

// PairChunks reports whether chunk regions ra (of α) and rb (of β) can
// contain at least one matching cell pair, using only metadata. This is the
// preprocessing step the paper performs over the catalog.
func (p Pred) PairChunks(ra, rb array.Region) bool {
	return p.ReachRegion(ra).Intersects(rb)
}

// JoinChunkPair enumerates all matching cell pairs between chunks ca (α
// side) and cb (β side) and calls emit for each; emit returning false stops
// the enumeration. The points and tuples passed to emit are owned by the
// kernel and its chunks and are valid only for the duration of the callback
// — clone before retaining.
//
// Two strategies are used per α cell: when the shape's bounding box is
// small, the box is probed directly against cb (offset probing); when the
// box is large relative to cb's occupancy, cb's cells are scanned and
// tested against the predicate (scan filtering). The crossover is chosen on
// cardinalities, mirroring how the similarity join operator picks between
// shape-order and data-order evaluation.
//
// The kernel iterates both chunks through their cached sorted-offset
// indexes and runs every per-cell step out of a pooled scratch, so the
// steady-state inner loop performs no allocations and no per-call sorting.
func (p Pred) JoinChunkPair(ca, cb *array.Chunk, emit func(a, b array.Point, ta, tb array.Tuple) bool) {
	if ca.NumCells() == 0 || cb.NumCells() == 0 {
		return
	}
	sc := getScratch(ca.Region().NumDims(), cb.Region().NumDims())
	defer putScratch(sc)
	p.Shape.BoxInto(sc.shLo, sc.shHi)
	// Prune using the actual occupancy of ca, not just its chunk region:
	// the reach of ca's bounding box (dilate(M(bbox), shape box)) must
	// intersect cb's region. Unrolled over the scratch buffers instead of
	// composing ReachRegion/Intersects, which would allocate regions.
	bbA, _ := ca.BoundingBox()
	p.Mapping.MapInto(bbA.Lo, sc.mlo)
	p.Mapping.MapInto(bbA.Hi, sc.mhi)
	rb := cb.Region()
	for i := range rb.Lo {
		if sc.mlo[i]+sc.shLo[i] > rb.Hi[i] || sc.mhi[i]+sc.shHi[i] < rb.Lo[i] {
			return
		}
	}
	boxVol := p.Shape.BoxVolume()
	probe := boxVol <= int64(cb.NumCells())*4
	if probe {
		// Probes address cb by local row-major offset, tracked incrementally
		// from these strides. When the pair performs more probes than cb's
		// region has cells, materializing the occupancy into a flat table
		// pays for itself and replaces every map lookup with a slice load.
		vol := int64(1)
		for i := rb.NumDims() - 1; i >= 0; i-- {
			sc.stride[i] = vol
			vol *= rb.Hi[i] - rb.Lo[i] + 1
		}
		if vol <= maxDenseVol && vol <= int64(ca.NumCells())*boxVol {
			sc.prepDense(vol)
			cb.EachSortedInto(sc.b, func(b array.Point, tb array.Tuple) bool {
				idx := int64(0)
				for i := range b {
					idx += (b[i] - rb.Lo[i]) * sc.stride[i]
				}
				sc.tuples = append(sc.tuples, tb)
				sc.dense[idx] = int32(len(sc.tuples))
				return true
			})
		}
	}
	stop := false
	ca.EachSortedInto(sc.a, func(a array.Point, ta array.Tuple) bool {
		if probe {
			p.probeCell(sc, a, ta, cb, emit, &stop)
		} else {
			p.scanCell(sc, a, ta, cb, emit, &stop)
		}
		return !stop
	})
}

// probeCell enumerates shape offsets around M(a) and probes cb.
func (p Pred) probeCell(sc *joinScratch, a array.Point, ta array.Tuple, cb *array.Chunk, emit func(a, b array.Point, ta, tb array.Tuple) bool, stop *bool) {
	p.Mapping.MapInto(a, sc.ma)
	rb := cb.Region()
	d := len(sc.ma)
	// Candidate region: [M(a)+shLo, M(a)+shHi] ∩ cb's region.
	for i := 0; i < d; i++ {
		lo := sc.ma[i] + sc.shLo[i]
		if rb.Lo[i] > lo {
			lo = rb.Lo[i]
		}
		hi := sc.ma[i] + sc.shHi[i]
		if rb.Hi[i] < hi {
			hi = rb.Hi[i]
		}
		if lo > hi {
			return
		}
		sc.candLo[i], sc.candHi[i] = lo, hi
	}
	copy(sc.b, sc.candLo)
	idx := int64(0)
	for i := 0; i < d; i++ {
		idx += (sc.b[i] - rb.Lo[i]) * sc.stride[i]
	}
	for {
		for i := 0; i < d; i++ {
			sc.off[i] = sc.b[i] - sc.ma[i]
		}
		if p.Shape.Contains(sc.off) {
			var tb array.Tuple
			var found bool
			if sc.denseOK {
				if k := sc.dense[idx]; k > 0 {
					tb, found = sc.tuples[k-1], true
				}
			} else {
				tb, found = cb.GetOffset(idx)
			}
			if found {
				if !emit(a, sc.b, ta, tb) {
					*stop = true
					return
				}
			}
		}
		i := d - 1
		for ; i >= 0; i-- {
			sc.b[i]++
			idx += sc.stride[i]
			if sc.b[i] <= sc.candHi[i] {
				break
			}
			sc.b[i] = sc.candLo[i]
			idx -= (sc.candHi[i] - sc.candLo[i] + 1) * sc.stride[i]
		}
		if i < 0 {
			return
		}
	}
}

// scanCell scans cb's occupied cells and filters by the predicate.
func (p Pred) scanCell(sc *joinScratch, a array.Point, ta array.Tuple, cb *array.Chunk, emit func(a, b array.Point, ta, tb array.Tuple) bool, stop *bool) {
	p.Mapping.MapInto(a, sc.ma)
	cb.EachSortedInto(sc.b, func(b array.Point, tb array.Tuple) bool {
		for i := range b {
			sc.off[i] = b[i] - sc.ma[i]
		}
		if !p.Shape.Contains(sc.off) {
			return true
		}
		if !emit(a, b, ta, tb) {
			*stop = true
			return false
		}
		return true
	})
}

// JoinArrays runs the similarity join between two in-memory arrays,
// emitting every matched cell pair. It is the single-node reference
// implementation used to validate the distributed path and to compute
// complete joins in tests.
func JoinArrays(alpha, beta *array.Array, p Pred, emit func(a, b array.Point, ta, tb array.Tuple) bool) {
	stop := false
	alpha.EachChunk(func(ca *array.Chunk) bool {
		reach := p.ReachRegion(ca.Region())
		for _, cc := range beta.Schema().ChunksOverlapping(reach) {
			cb := beta.Chunk(cc)
			if cb == nil {
				continue
			}
			p.JoinChunkPair(ca, cb, func(a, b array.Point, ta, tb array.Tuple) bool {
				if !emit(a, b, ta, tb) {
					stop = true
				}
				return !stop
			})
			if stop {
				break
			}
		}
		return !stop
	})
}

// Materialize evaluates the similarity join into the concatenated-dimension
// output array τ of the paper: output dimensionality is dα + dβ and the
// output tuple is f(Υ, σ[Ψ]). Intended for small arrays (tests, examples);
// production paths aggregate instead of materializing τ.
func Materialize(alpha, beta *array.Array, p Pred, f ValueFunc) (*array.Array, error) {
	if f == nil {
		f = ConcatValues
	}
	sa, sb := alpha.Schema(), beta.Schema()
	dims := make([]array.Dimension, 0, len(sa.Dims)+len(sb.Dims))
	dims = append(dims, sa.Dims...)
	for _, d := range sb.Dims {
		d.Name = d.Name + "'"
		dims = append(dims, d)
	}
	attrs := make([]array.Attribute, 0, len(sa.Attrs)+len(sb.Attrs))
	attrs = append(attrs, sa.Attrs...)
	for _, a := range sb.Attrs {
		a.Name = a.Name + "'"
		attrs = append(attrs, a)
	}
	schema, err := array.NewSchema(sa.Name+"_join_"+sb.Name, dims, attrs)
	if err != nil {
		return nil, err
	}
	out := array.New(schema)
	var setErr error
	JoinArrays(alpha, beta, p, func(a, b array.Point, ta, tb array.Tuple) bool {
		pt := make(array.Point, 0, len(a)+len(b))
		pt = append(pt, a...)
		pt = append(pt, b...)
		if err := out.Set(pt, f(ta, tb)); err != nil {
			setErr = err
			return false
		}
		return true
	})
	return out, setErr
}
