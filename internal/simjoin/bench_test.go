package simjoin

import (
	"math/rand"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/shape"
)

// benchChunks builds two adjacent populated chunks for join kernels.
func benchChunks(b *testing.B, cells int) (*array.Chunk, *array.Chunk) {
	b.Helper()
	s := array.MustSchema("B",
		[]array.Dimension{
			{Name: "x", Start: 0, End: 199, ChunkSize: 100},
			{Name: "y", Start: 0, End: 49, ChunkSize: 50},
		},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	rng := rand.New(rand.NewSource(1))
	ca := array.NewChunk(s, array.ChunkCoord{0, 0})
	cb := array.NewChunk(s, array.ChunkCoord{1, 0})
	for i := 0; i < cells; i++ {
		_ = ca.Set(array.Point{rng.Int63n(100), rng.Int63n(50)}, array.Tuple{1})
		_ = cb.Set(array.Point{100 + rng.Int63n(100), rng.Int63n(50)}, array.Tuple{2})
	}
	return ca, cb
}

func benchJoinKernel(b *testing.B, sh *shape.Shape, cells int) {
	ca, cb := benchChunks(b, cells)
	pred := NewPred(sh, nil)
	b.ResetTimer()
	matches := 0
	for i := 0; i < b.N; i++ {
		pred.JoinChunkPair(ca, ca, func(_, _ array.Point, _, _ array.Tuple) bool {
			matches++
			return true
		})
		pred.JoinChunkPair(ca, cb, func(_, _ array.Point, _, _ array.Tuple) bool {
			matches++
			return true
		})
	}
	b.ReportMetric(float64(matches)/float64(b.N), "matches/op")
}

func BenchmarkJoinKernelL1r1Sparse(b *testing.B)  { benchJoinKernel(b, shape.L1(2, 1), 50) }
func BenchmarkJoinKernelL1r1Dense(b *testing.B)   { benchJoinKernel(b, shape.L1(2, 1), 1000) }
func BenchmarkJoinKernelLinf2Sparse(b *testing.B) { benchJoinKernel(b, shape.Linf(2, 2), 50) }
func BenchmarkJoinKernelLinf2Dense(b *testing.B)  { benchJoinKernel(b, shape.Linf(2, 2), 1000) }
func BenchmarkJoinKernelL2r3Dense(b *testing.B)   { benchJoinKernel(b, shape.L2(2, 3), 1000) }

func BenchmarkPairChunksMetadata(b *testing.B) {
	s := array.MustSchema("B",
		[]array.Dimension{
			{Name: "x", Start: 0, End: 9999, ChunkSize: 100},
			{Name: "y", Start: 0, End: 4999, ChunkSize: 50},
		}, nil)
	pred := NewPred(shape.L1(2, 1), nil)
	ra := s.ChunkRegion(array.ChunkCoord{3, 7})
	rb := s.ChunkRegion(array.ChunkCoord{4, 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pred.PairChunks(ra, rb) {
			b.Fatal("adjacent chunks must pair")
		}
	}
}
