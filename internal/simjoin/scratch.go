package simjoin

import (
	"sync"

	"github.com/arrayview/arrayview/internal/array"
)

// joinScratch holds every buffer one chunk-pair join needs: the α/β cell
// coordinates of the iteration, the mapped α coordinate M(a), the offset
// vector handed to Shape.Contains, the shape bounding box (fetched once per
// pair), the mapped bounding-box corners of the occupancy prune, and the
// candidate-region cursor bounds of the probe path. Scratches are pooled so
// steady-state joins allocate nothing.
type joinScratch struct {
	a, b   array.Point // α and β cell buffers
	ma     array.Point // M(a), recomputed per α cell
	off    []int64     // b - M(a), tested against the shape
	shLo   []int64     // shape box, cached per pair
	shHi   []int64
	mlo    array.Point // mapped occupancy bounding-box corners
	mhi    array.Point
	candLo array.Point // probe candidate region bounds
	candHi array.Point

	// Probe-path offset addressing: stride holds cb's row-major strides so
	// the cursor loop tracks the β local offset incrementally. When the
	// pair's probe count justifies it (denseOK), cb's occupancy is
	// materialized once into dense — tuple index + 1 per local offset, 0
	// for empty — so each probe is one slice load instead of a map lookup.
	stride  []int64
	dense   []int32
	tuples  []array.Tuple
	denseOK bool
}

// maxDenseVol caps the region volume materialized into the dense probe
// table (4 MiB of int32 slots); larger chunks fall back to map probing.
const maxDenseVol = 1 << 20

var scratchPool = sync.Pool{New: func() any { return new(joinScratch) }}

// getScratch returns a pooled scratch sized for da α-dimensions and db
// β-dimensions.
func getScratch(da, db int) *joinScratch {
	sc := scratchPool.Get().(*joinScratch)
	sc.a = growI64(sc.a, da)
	sc.b = growI64(sc.b, db)
	sc.ma = growI64(sc.ma, db)
	sc.off = growI64(sc.off, db)
	sc.shLo = growI64(sc.shLo, db)
	sc.shHi = growI64(sc.shHi, db)
	sc.mlo = growI64(sc.mlo, db)
	sc.mhi = growI64(sc.mhi, db)
	sc.candLo = growI64(sc.candLo, db)
	sc.candHi = growI64(sc.candHi, db)
	sc.stride = growI64(sc.stride, db)
	sc.denseOK = false
	return sc
}

func putScratch(sc *joinScratch) {
	// Drop the dense table's references to chunk-owned tuples so a pooled
	// scratch does not pin the last joined chunk in memory.
	clear(sc.tuples)
	sc.tuples = sc.tuples[:0]
	scratchPool.Put(sc)
}

// prepDense sizes and zeroes the dense probe table for a region of vol
// cells.
func (sc *joinScratch) prepDense(vol int64) {
	if int64(cap(sc.dense)) < vol {
		sc.dense = make([]int32, vol)
	} else {
		sc.dense = sc.dense[:vol]
		clear(sc.dense)
	}
	sc.tuples = sc.tuples[:0]
	sc.denseOK = true
}

// growI64 reslices buf to length n, reallocating only when the capacity is
// insufficient.
func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}
