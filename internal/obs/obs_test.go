package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAccumulate(t *testing.T) {
	tr := NewTrace()
	stop := tr.Start(PhaseTransfer)
	time.Sleep(2 * time.Millisecond)
	stop()
	tr.Add(PhaseTransfer, 5*time.Millisecond)
	tr.Add(PhaseMerge, time.Millisecond)

	ph := tr.Phases()
	if len(ph) != 2 {
		t.Fatalf("got %d phases, want 2", len(ph))
	}
	if ph[0].Name != PhaseTransfer || ph[1].Name != PhaseMerge {
		t.Fatalf("phase order = %v; want first-start order", ph)
	}
	if ph[0].Count != 2 {
		t.Errorf("transfer count = %d, want 2", ph[0].Count)
	}
	if got := tr.PhaseSeconds(PhaseTransfer); got < 0.007 {
		t.Errorf("transfer seconds = %v, want >= 7ms", got)
	}
	if tr.PhaseSeconds("absent") != 0 {
		t.Error("unknown phase must read 0")
	}
	if s := tr.String(); !strings.Contains(s, PhaseTransfer) || !strings.Contains(s, "·") {
		t.Errorf("summary %q lacks phases", s)
	}
}

func TestTraceConcurrentNodeTimings(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for node := 0; node < 4; node++ {
		for task := 0; task < 8; task++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				tr.AddNode(node, time.Millisecond)
				tr.Add(PhaseMerge, time.Millisecond)
			}(node)
		}
	}
	wg.Wait()
	nodes := tr.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes, want 4", len(nodes))
	}
	for i, n := range nodes {
		if n.Node != i {
			t.Errorf("nodes not sorted: %v", nodes)
		}
		if n.Tasks != 8 {
			t.Errorf("node %d: %d tasks, want 8", n.Node, n.Tasks)
		}
		if n.Seconds < 0.008 {
			t.Errorf("node %d: %v seconds, want >= 8ms", n.Node, n.Seconds)
		}
	}
	if got := tr.Phases()[0]; got.Count != 32 {
		t.Errorf("merge count = %d, want 32", got.Count)
	}
}

// TestTraceOverlappedSpans pins the concurrent-stage semantics: overlapped
// spans of one phase sum their busy time but union their wall-clock, so a
// pipelined run never double-books elapsed time.
func TestTraceOverlappedSpans(t *testing.T) {
	tr := NewTrace()
	// Two fully overlapping spans plus a third, disjoint, later one.
	stopA := tr.Start(PhaseTransfer)
	stopB := tr.Start(PhaseTransfer)
	time.Sleep(4 * time.Millisecond)
	stopB()
	stopA()
	stopC := tr.Start(PhaseTransfer)
	time.Sleep(2 * time.Millisecond)
	stopC()

	ph := tr.Phases()[0]
	if ph.Count != 3 {
		t.Fatalf("count = %d, want 3", ph.Count)
	}
	if ph.MaxConcurrent != 2 {
		t.Errorf("max concurrent = %d, want 2", ph.MaxConcurrent)
	}
	// Busy ≈ 4+4+2 = 10ms; wall ≈ 4+2 = 6ms. Bound loosely against timer
	// jitter, but the ordering busy > wall must hold and wall must not
	// include both overlapped spans.
	if ph.Seconds < 0.010 {
		t.Errorf("busy = %v, want >= 10ms", ph.Seconds)
	}
	if ph.WallSeconds < 0.006 {
		t.Errorf("wall = %v, want >= 6ms", ph.WallSeconds)
	}
	if ph.WallSeconds >= ph.Seconds {
		t.Errorf("wall %v not below busy %v under 2× overlap", ph.WallSeconds, ph.Seconds)
	}
	if s := tr.String(); !strings.Contains(s, "wall") || !strings.Contains(s, "×2") {
		t.Errorf("summary %q does not flag the concurrent phase", s)
	}

	// A sequential phase renders without the wall annotation.
	stop := tr.Start(PhaseCommit)
	stop()
	if s := tr.String(); strings.Contains(s, PhaseCommit+" wall") {
		t.Errorf("sequential phase rendered as concurrent: %q", s)
	}
}

// TestTraceSpanStressRace hammers one phase from many goroutines so -race
// can see the span bookkeeping.
func TestTraceSpanStressRace(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				stop := tr.Start(PhaseJoin)
				stop()
				stop() // double-stop must be idempotent
			}
		}()
	}
	// Concurrent snapshots while spans churn.
	for i := 0; i < 100; i++ {
		_ = tr.Phases()
		_ = tr.String()
	}
	wg.Wait()
	ph := tr.Phases()[0]
	if ph.Count != 16*50 {
		t.Fatalf("count = %d, want %d (double-stop must not double-count)", ph.Count, 16*50)
	}
	if ph.WallSeconds > ph.Seconds+0.001 {
		t.Errorf("wall %v exceeds busy %v", ph.WallSeconds, ph.Seconds)
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Start(PhaseJoin)()
	tr.Add(PhaseJoin, time.Second)
	tr.AddNode(0, time.Second)
	if tr.Phases() != nil || tr.Nodes() != nil || tr.PhaseSeconds(PhaseJoin) != 0 || tr.String() != "" {
		t.Error("nil trace must read empty")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Add(3) }()
	}
	wg.Wait()
	if c.Load() != 30 {
		t.Errorf("counter = %d, want 30", c.Load())
	}
}
