package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAccumulate(t *testing.T) {
	tr := NewTrace()
	stop := tr.Start(PhaseTransfer)
	time.Sleep(2 * time.Millisecond)
	stop()
	tr.Add(PhaseTransfer, 5*time.Millisecond)
	tr.Add(PhaseMerge, time.Millisecond)

	ph := tr.Phases()
	if len(ph) != 2 {
		t.Fatalf("got %d phases, want 2", len(ph))
	}
	if ph[0].Name != PhaseTransfer || ph[1].Name != PhaseMerge {
		t.Fatalf("phase order = %v; want first-start order", ph)
	}
	if ph[0].Count != 2 {
		t.Errorf("transfer count = %d, want 2", ph[0].Count)
	}
	if got := tr.PhaseSeconds(PhaseTransfer); got < 0.007 {
		t.Errorf("transfer seconds = %v, want >= 7ms", got)
	}
	if tr.PhaseSeconds("absent") != 0 {
		t.Error("unknown phase must read 0")
	}
	if s := tr.String(); !strings.Contains(s, PhaseTransfer) || !strings.Contains(s, "·") {
		t.Errorf("summary %q lacks phases", s)
	}
}

func TestTraceConcurrentNodeTimings(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for node := 0; node < 4; node++ {
		for task := 0; task < 8; task++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				tr.AddNode(node, time.Millisecond)
				tr.Add(PhaseMerge, time.Millisecond)
			}(node)
		}
	}
	wg.Wait()
	nodes := tr.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes, want 4", len(nodes))
	}
	for i, n := range nodes {
		if n.Node != i {
			t.Errorf("nodes not sorted: %v", nodes)
		}
		if n.Tasks != 8 {
			t.Errorf("node %d: %d tasks, want 8", n.Node, n.Tasks)
		}
		if n.Seconds < 0.008 {
			t.Errorf("node %d: %v seconds, want >= 8ms", n.Node, n.Seconds)
		}
	}
	if got := tr.Phases()[0]; got.Count != 32 {
		t.Errorf("merge count = %d, want 32", got.Count)
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Start(PhaseJoin)()
	tr.Add(PhaseJoin, time.Second)
	tr.AddNode(0, time.Second)
	if tr.Phases() != nil || tr.Nodes() != nil || tr.PhaseSeconds(PhaseJoin) != 0 || tr.String() != "" {
		t.Error("nil trace must read empty")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Add(3) }()
	}
	wg.Wait()
	if c.Load() != 30 {
		t.Errorf("counter = %d, want 30", c.Load())
	}
}
