// Package obs is the observability substrate of the maintenance pipeline:
// per-batch phase spans and atomic counters. It is deliberately pull-based
// and allocation-light — recording a span is two time.Now calls and an
// atomic add, so instrumentation never perturbs the numbers it reports.
//
// A Trace accumulates wall-clock per named phase plus per-node busy time.
// Sequential phases (validate, transfer, view-move, catalog-refresh,
// ingest, cleanup) are recorded as wall-clock spans; the join phase is the
// wall-clock of the whole per-node task run, while merge and per-node
// timings accumulate busy seconds across concurrent tasks and may exceed
// the join wall-clock on a multi-worker cluster.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical phase names of one maintained batch, in pipeline order.
const (
	PhaseValidate = "validate"        // plan validation + ledger charge
	PhaseTransfer = "transfer"        // chunk replication per the plan
	PhaseViewMove = "view-move"       // legacy: pre-commit view relocation
	PhaseJoin     = "join"            // per-node chunk-pair joins (wall-clock)
	PhaseMerge    = "merge"           // folding partials into staging (busy)
	PhaseCommit   = "commit"          // idempotent apply of staged mutations
	PhaseCatalog  = "catalog-refresh" // legacy: view chunk metadata refresh
	PhaseIngest   = "ingest"          // legacy: pre-commit delta ingestion
	PhaseCleanup  = "cleanup"         // staging + scratch replica teardown
)

// Counter is an atomic cumulative counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// CacheCounters is the hit/miss/bytes accounting of one read cache. All
// fields are atomic, so a cache may update them from any number of
// concurrent readers without coordination.
type CacheCounters struct {
	Hits          Counter
	Misses        Counter
	BytesServed   Counter // payload bytes answered from cache
	BytesInserted Counter // payload bytes admitted into cache
	Evictions     Counter
}

// CacheSnapshot is a point-in-time copy of a cache's counters.
type CacheSnapshot struct {
	Hits          int64
	Misses        int64
	BytesServed   int64
	BytesInserted int64
	Evictions     int64
}

// Snapshot copies the counters.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:          c.Hits.Load(),
		Misses:        c.Misses.Load(),
		BytesServed:   c.BytesServed.Load(),
		BytesInserted: c.BytesInserted.Load(),
		Evictions:     c.Evictions.Load(),
	}
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PhaseTiming is the snapshot of one phase of a trace.
type PhaseTiming struct {
	Name    string
	Seconds float64
	// Count is how many spans contributed to the phase.
	Count int64
}

// NodeTiming is the snapshot of one node's accumulated task time.
type NodeTiming struct {
	Node    int
	Seconds float64
	Tasks   int64
}

// phase accumulates one named phase; nanos and count are written by
// concurrent tasks, so they are atomic.
type phase struct {
	name  string
	nanos atomic.Int64
	count atomic.Int64
}

// Trace collects the phase breakdown of one maintained batch. Methods are
// safe for concurrent use and are no-ops on a nil receiver, so untraced
// call paths pay nothing.
type Trace struct {
	mu     sync.Mutex
	order  []*phase
	phases map[string]*phase
	nodes  map[int]*phase
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{phases: make(map[string]*phase), nodes: make(map[int]*phase)}
}

// lookup returns the named phase, registering it on first use.
func (t *Trace) lookup(name string) *phase {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.phases[name]
	if !ok {
		p = &phase{name: name}
		t.phases[name] = p
		t.order = append(t.order, p)
	}
	return p
}

// Start opens a span of the named phase and returns its stop function.
func (t *Trace) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	p := t.lookup(name)
	begin := time.Now()
	return func() {
		p.nanos.Add(int64(time.Since(begin)))
		p.count.Add(1)
	}
}

// Add folds an already-measured duration into the named phase.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	p := t.lookup(name)
	p.nanos.Add(int64(d))
	p.count.Add(1)
}

// AddNode folds one task's duration into a node's busy time.
func (t *Trace) AddNode(node int, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	p, ok := t.nodes[node]
	if !ok {
		p = &phase{}
		t.nodes[node] = p
	}
	t.mu.Unlock()
	p.nanos.Add(int64(d))
	p.count.Add(1)
}

// Phases snapshots every recorded phase in first-start order.
func (t *Trace) Phases() []PhaseTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	order := append([]*phase(nil), t.order...)
	t.mu.Unlock()
	out := make([]PhaseTiming, 0, len(order))
	for _, p := range order {
		out = append(out, PhaseTiming{
			Name:    p.name,
			Seconds: time.Duration(p.nanos.Load()).Seconds(),
			Count:   p.count.Load(),
		})
	}
	return out
}

// PhaseSeconds returns the accumulated seconds of one phase (0 if never
// recorded).
func (t *Trace) PhaseSeconds(name string) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	p, ok := t.phases[name]
	t.mu.Unlock()
	if !ok {
		return 0
	}
	return time.Duration(p.nanos.Load()).Seconds()
}

// Nodes snapshots per-node busy time, sorted by node ID.
func (t *Trace) Nodes() []NodeTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ids := make([]int, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]NodeTiming, 0, len(ids))
	for _, id := range ids {
		p := t.nodes[id]
		out = append(out, NodeTiming{
			Node:    id,
			Seconds: time.Duration(p.nanos.Load()).Seconds(),
			Tasks:   p.count.Load(),
		})
	}
	t.mu.Unlock()
	return out
}

// String renders a one-line span summary ("validate 12µs · join 3.1ms …").
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for i, p := range t.Phases() {
		if i > 0 {
			b.WriteString(" · ")
		}
		fmt.Fprintf(&b, "%s %s", p.Name, time.Duration(p.Seconds*float64(time.Second)).Round(time.Microsecond))
	}
	return b.String()
}
