// Package obs is the observability substrate of the maintenance pipeline:
// per-batch phase spans and atomic counters. It is deliberately pull-based
// and allocation-light — recording a span is two time.Now calls and an
// atomic add, so instrumentation never perturbs the numbers it reports.
//
// A Trace accumulates time per named phase plus per-node busy time. Every
// phase records two quantities with distinct semantics:
//
//   - busy seconds (PhaseTiming.Seconds): the sum of all span durations.
//     With concurrent spans of the same phase — pipelined batches running
//     their transfer stages at once, or per-node join tasks — busy time
//     exceeds wall-clock; it measures work, not elapsed time.
//   - wall seconds (PhaseTiming.WallSeconds): the union wall-clock, i.e.
//     elapsed time during which at least one span of the phase was open.
//     Overlapping spans never double-book it.
//
// For strictly sequential phases the two coincide. MaxConcurrent reports
// the peak number of simultaneously open spans, so renderers can tell which
// reading to present.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical phase names of one maintained batch, in pipeline order.
const (
	PhaseValidate = "validate"        // plan validation + ledger charge
	PhaseSnapshot = "snapshot"        // catalog rollback-baseline capture
	PhaseTransfer = "transfer"        // chunk replication per the plan
	PhaseViewMove = "view-move"       // legacy: pre-commit view relocation
	PhaseJoin     = "join"            // per-node chunk-pair joins (wall-clock)
	PhaseMerge    = "merge"           // folding partials into staging (busy)
	PhaseCommit   = "commit"          // idempotent apply of staged mutations
	PhaseCatalog  = "catalog-refresh" // legacy: view chunk metadata refresh
	PhaseIngest   = "ingest"          // legacy: pre-commit delta ingestion
	PhaseCleanup  = "cleanup"         // staging + scratch replica teardown
)

// Counter is an atomic cumulative counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Store overwrites the counter — for gauge-style values (current heavy
// chunk count, pending log depth) that are re-published rather than
// accumulated.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// CacheCounters is the hit/miss/bytes accounting of one read cache. All
// fields are atomic, so a cache may update them from any number of
// concurrent readers without coordination.
type CacheCounters struct {
	Hits          Counter
	Misses        Counter
	BytesServed   Counter // payload bytes answered from cache
	BytesInserted Counter // payload bytes admitted into cache
	Evictions     Counter
}

// CacheSnapshot is a point-in-time copy of a cache's counters.
type CacheSnapshot struct {
	Hits          int64
	Misses        int64
	BytesServed   int64
	BytesInserted int64
	Evictions     int64
}

// Snapshot copies the counters.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:          c.Hits.Load(),
		Misses:        c.Misses.Load(),
		BytesServed:   c.BytesServed.Load(),
		BytesInserted: c.BytesInserted.Load(),
		Evictions:     c.Evictions.Load(),
	}
}

// AdaptiveCounters is the observability surface of the heavy-light
// adaptive maintenance layer. Heavy/Light/PendingChunks/PendingCells are
// gauges (Store); the rest accumulate (Add).
type AdaptiveCounters struct {
	HeavyChunks   Counter // gauge: classes currently classified heavy
	LightChunks   Counter // gauge: classes seen but currently light
	PendingChunks Counter // gauge: chunks with deferred deltas outstanding
	PendingCells  Counter // gauge: cells deferred and not yet materialized
	Deferred      Counter // delta chunks routed to the pending log
	LazyMats      Counter // pending entries materialized on query touch
	Drained       Counter // pending entries materialized by drainer/conflict
	Promotions    Counter // light→heavy transitions (scores + pressure)
	Demotions     Counter // heavy→light transitions
	MemoHits      Counter // cached-join-state hits
	MemoMisses    Counter // cached-join-state misses
}

// AdaptiveSnapshot is a point-in-time copy of AdaptiveCounters.
type AdaptiveSnapshot struct {
	HeavyChunks   int64
	LightChunks   int64
	PendingChunks int64
	PendingCells  int64
	Deferred      int64
	LazyMats      int64
	Drained       int64
	Promotions    int64
	Demotions     int64
	MemoHits      int64
	MemoMisses    int64
}

// Snapshot copies the current values.
func (a *AdaptiveCounters) Snapshot() AdaptiveSnapshot {
	if a == nil {
		return AdaptiveSnapshot{}
	}
	return AdaptiveSnapshot{
		HeavyChunks:   a.HeavyChunks.Load(),
		LightChunks:   a.LightChunks.Load(),
		PendingChunks: a.PendingChunks.Load(),
		PendingCells:  a.PendingCells.Load(),
		Deferred:      a.Deferred.Load(),
		LazyMats:      a.LazyMats.Load(),
		Drained:       a.Drained.Load(),
		Promotions:    a.Promotions.Load(),
		Demotions:     a.Demotions.Load(),
		MemoHits:      a.MemoHits.Load(),
		MemoMisses:    a.MemoMisses.Load(),
	}
}

// DurableCounters is the observability surface of the WAL-backed durable
// chunk store: barrier, checkpoint, and byte accounting. All fields
// accumulate (Add).
type DurableCounters struct {
	Commits     Counter // commit barriers written (one per committed batch)
	Rollbacks   Counter // rollback barriers written (one per aborted batch)
	Checkpoints Counter // checkpoint compactions into a fresh generation
	WALBytes    Counter // bytes appended to journal + meta WALs
	SegBytes    Counter // chunk-body bytes appended to segment files
	Syncs       Counter // fsync calls issued (segments, WALs, directories)
}

// DurableSnapshot is a point-in-time copy of DurableCounters.
type DurableSnapshot struct {
	Commits     int64
	Rollbacks   int64
	Checkpoints int64
	WALBytes    int64
	SegBytes    int64
	Syncs       int64
}

// Snapshot copies the current values. Nil-safe: a nil receiver (durability
// disabled) snapshots to zeros.
func (d *DurableCounters) Snapshot() DurableSnapshot {
	if d == nil {
		return DurableSnapshot{}
	}
	return DurableSnapshot{
		Commits:     d.Commits.Load(),
		Rollbacks:   d.Rollbacks.Load(),
		Checkpoints: d.Checkpoints.Load(),
		WALBytes:    d.WALBytes.Load(),
		SegBytes:    d.SegBytes.Load(),
		Syncs:       d.Syncs.Load(),
	}
}

// FastPathCounters is the observability surface of the query answer fast
// path: the epoch-keyed assembled-view cache, the shape-keyed plan memo,
// and the placement solves both let the server skip. ViewBytes is a gauge
// (Store); the rest accumulate (Add).
type FastPathCounters struct {
	ViewHits          Counter // answers served from a cached assembled view
	ViewMisses        Counter // answers that had to gather + decode the view
	ViewBytes         Counter // gauge: bytes currently pinned by cached views
	ViewEvictions     Counter // cached views dropped for capacity
	ViewInvalidations Counter // cached views dropped by an epoch publish
	MemoHits          Counter // plan/decision memo hits (shape fingerprint)
	MemoMisses        Counter // plan/decision memo misses
	SolveSkips        Counter // placement solves skipped thanks to the memo
}

// FastPathSnapshot is a point-in-time copy of FastPathCounters.
type FastPathSnapshot struct {
	ViewHits          int64
	ViewMisses        int64
	ViewBytes         int64
	ViewEvictions     int64
	ViewInvalidations int64
	MemoHits          int64
	MemoMisses        int64
	SolveSkips        int64
}

// Snapshot copies the current values. Nil-safe: a nil receiver (fast path
// disabled) snapshots to zeros.
func (f *FastPathCounters) Snapshot() FastPathSnapshot {
	if f == nil {
		return FastPathSnapshot{}
	}
	return FastPathSnapshot{
		ViewHits:          f.ViewHits.Load(),
		ViewMisses:        f.ViewMisses.Load(),
		ViewBytes:         f.ViewBytes.Load(),
		ViewEvictions:     f.ViewEvictions.Load(),
		ViewInvalidations: f.ViewInvalidations.Load(),
		MemoHits:          f.MemoHits.Load(),
		MemoMisses:        f.MemoMisses.Load(),
		SolveSkips:        f.SolveSkips.Load(),
	}
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PhaseTiming is the snapshot of one phase of a trace.
type PhaseTiming struct {
	Name string
	// Seconds is busy time: the sum of span durations. Concurrent spans of
	// the same phase each contribute fully, so this can exceed WallSeconds.
	Seconds float64
	// WallSeconds is the union wall-clock: elapsed time with at least one
	// span of the phase open. Zero for durations folded in via Add (no span
	// boundaries to union).
	WallSeconds float64
	// MaxConcurrent is the peak number of simultaneously open spans (0 when
	// the phase only ever received Add'ed durations).
	MaxConcurrent int64
	// Count is how many spans contributed to the phase.
	Count int64
}

// NodeTiming is the snapshot of one node's accumulated task time.
type NodeTiming struct {
	Node    int
	Seconds float64
	Tasks   int64
}

// phase accumulates one named phase; nanos and count are written by
// concurrent tasks, so they are atomic. The wall-clock union is maintained
// under mu: a span opening while none are active notes the start instant,
// and the last span to close adds the elapsed stretch to wallNanos. Spans
// are per-stage events (a handful per batch), so the mutex is not a hot
// path.
type phase struct {
	name  string
	nanos atomic.Int64
	count atomic.Int64

	mu           sync.Mutex
	active       int64     // currently open spans
	maxActive    int64     // peak of active
	stretchStart time.Time // when active went 0 → 1
	wallNanos    int64     // closed stretches of ≥1-active time
}

// Trace collects the phase breakdown of one maintained batch. Methods are
// safe for concurrent use and are no-ops on a nil receiver, so untraced
// call paths pay nothing.
type Trace struct {
	mu     sync.Mutex
	order  []*phase
	phases map[string]*phase
	nodes  map[int]*phase
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{phases: make(map[string]*phase), nodes: make(map[int]*phase)}
}

// lookup returns the named phase, registering it on first use.
func (t *Trace) lookup(name string) *phase {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.phases[name]
	if !ok {
		p = &phase{name: name}
		t.phases[name] = p
		t.order = append(t.order, p)
	}
	return p
}

// Start opens a span of the named phase and returns its stop function.
// Concurrent spans of the same phase are safe: busy time accumulates per
// span while the wall-clock union advances only while the phase goes from
// idle to active and back.
func (t *Trace) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	p := t.lookup(name)
	begin := time.Now()
	p.open(begin)
	var once sync.Once
	return func() {
		once.Do(func() {
			end := time.Now()
			p.nanos.Add(int64(end.Sub(begin)))
			p.count.Add(1)
			p.close(end)
		})
	}
}

// open records a span opening at the given instant.
func (p *phase) open(now time.Time) {
	p.mu.Lock()
	p.active++
	if p.active > p.maxActive {
		p.maxActive = p.active
	}
	if p.active == 1 {
		p.stretchStart = now
	}
	p.mu.Unlock()
}

// close records a span closing at the given instant.
func (p *phase) close(now time.Time) {
	p.mu.Lock()
	p.active--
	if p.active == 0 {
		p.wallNanos += int64(now.Sub(p.stretchStart))
	}
	p.mu.Unlock()
}

// wallSnapshot returns the union wall-clock including any still-open
// stretch, plus the peak concurrency.
func (p *phase) wallSnapshot() (wallNanos, maxActive int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.wallNanos
	if p.active > 0 {
		w += int64(time.Since(p.stretchStart))
	}
	return w, p.maxActive
}

// Add folds an already-measured duration into the named phase.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	p := t.lookup(name)
	p.nanos.Add(int64(d))
	p.count.Add(1)
}

// AddNode folds one task's duration into a node's busy time.
func (t *Trace) AddNode(node int, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	p, ok := t.nodes[node]
	if !ok {
		p = &phase{}
		t.nodes[node] = p
	}
	t.mu.Unlock()
	p.nanos.Add(int64(d))
	p.count.Add(1)
}

// Phases snapshots every recorded phase in first-start order.
func (t *Trace) Phases() []PhaseTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	order := append([]*phase(nil), t.order...)
	t.mu.Unlock()
	out := make([]PhaseTiming, 0, len(order))
	for _, p := range order {
		wall, maxAct := p.wallSnapshot()
		out = append(out, PhaseTiming{
			Name:          p.name,
			Seconds:       time.Duration(p.nanos.Load()).Seconds(),
			WallSeconds:   time.Duration(wall).Seconds(),
			MaxConcurrent: maxAct,
			Count:         p.count.Load(),
		})
	}
	return out
}

// PhaseSeconds returns the accumulated seconds of one phase (0 if never
// recorded).
func (t *Trace) PhaseSeconds(name string) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	p, ok := t.phases[name]
	t.mu.Unlock()
	if !ok {
		return 0
	}
	return time.Duration(p.nanos.Load()).Seconds()
}

// Nodes snapshots per-node busy time, sorted by node ID.
func (t *Trace) Nodes() []NodeTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ids := make([]int, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]NodeTiming, 0, len(ids))
	for _, id := range ids {
		p := t.nodes[id]
		out = append(out, NodeTiming{
			Node:    id,
			Seconds: time.Duration(p.nanos.Load()).Seconds(),
			Tasks:   p.count.Load(),
		})
	}
	t.mu.Unlock()
	return out
}

// String renders a one-line span summary ("validate 12µs · join 3.1ms …").
// Phases that ran concurrent spans show busy and wall time separately, e.g.
// "transfer 8ms (wall 3ms ×4)".
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	round := func(s float64) time.Duration {
		return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
	}
	var b strings.Builder
	for i, p := range t.Phases() {
		if i > 0 {
			b.WriteString(" · ")
		}
		fmt.Fprintf(&b, "%s %s", p.Name, round(p.Seconds))
		if p.MaxConcurrent > 1 {
			fmt.Fprintf(&b, " (wall %s ×%d)", round(p.WallSeconds), p.MaxConcurrent)
		}
	}
	return b.String()
}

// StageCounters is the live instrumentation of one pipeline stage of a
// streaming operator graph: queue depth, throughput, and back-pressure
// stalls. All fields are atomic; a stage updates them from its own
// goroutine while observers snapshot concurrently.
type StageCounters struct {
	// Entered / Done count batches that arrived at / left the stage.
	Entered Counter
	Done    Counter
	// Depth is the number of batches currently queued at or inside the
	// stage (Entered − Done of the downstream edge, maintained explicitly
	// so it reads as a gauge).
	Depth Counter
	// Stalls counts back-pressure events: submissions or hand-offs that had
	// to wait because the downstream bounded channel was full. StallNanos
	// accumulates the time spent waiting.
	Stalls     Counter
	StallNanos Counter
	// BusyNanos accumulates time the stage spent processing batches.
	BusyNanos Counter
}

// StageSnapshot is a point-in-time copy of one stage's counters.
type StageSnapshot struct {
	Name         string
	Entered      int64
	Done         int64
	Depth        int64
	Stalls       int64
	StallSeconds float64
	BusySeconds  float64
}

// Snapshot copies the counters under the given stage name.
func (s *StageCounters) Snapshot(name string) StageSnapshot {
	return StageSnapshot{
		Name:         name,
		Entered:      s.Entered.Load(),
		Done:         s.Done.Load(),
		Depth:        s.Depth.Load(),
		Stalls:       s.Stalls.Load(),
		StallSeconds: time.Duration(s.StallNanos.Load()).Seconds(),
		BusySeconds:  time.Duration(s.BusyNanos.Load()).Seconds(),
	}
}
