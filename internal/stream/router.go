package stream

import (
	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/view"
)

// pairKey is the batch-independent identity of a chunk-pair join: the two
// chunk keys plus which sides are delta chunks. Delta namespaces are
// per-batch ("…#sdeltaN"), so the raw array names cannot key the cache.
type pairKey struct {
	p, q   array.ChunkKey
	pd, qd bool
}

func pairKeyOf(ctx *maintain.Context, u view.Unit) pairKey {
	return pairKey{p: u.P.Key, q: u.Q.Key, pd: ctx.IsDelta(u.P), qd: ctx.IsDelta(u.Q)}
}

// router is the chunk-router stage's placement policy: it amortizes the
// optimizer across micro-batches by caching the last full solve's join-site
// and view-home assignments and reusing them until the batch's chunk-touch
// distribution drifts away from the one the solve saw. Trickle workloads
// revisit the same sky region for many batches, so the solve cost — the
// dominant fixed per-batch overhead of the batch-at-a-time path — is paid
// once per drift episode instead of once per batch.
//
// The router is used from the single plan-stage goroutine; it needs no
// locking except for the stats snapshot.
type router struct {
	planner   maintain.Planner
	threshold float64
	// heavy, when non-nil, reports the adaptive classifier's verdict for a
	// chunk key; heavy-chunk touches count heavyTouchWeight× in the drift
	// coverage, so the router re-solves promptly when the hot footprint
	// moves but tolerates churn in the cold scatter tail.
	heavy func(array.ChunkKey) bool

	haveSolve bool
	joinSite  map[pairKey]int
	viewHome  map[array.ChunkKey]int
	// touch is the base-chunk-touch distribution (key → weighted unit
	// count) the cached solution was solved for.
	touch map[array.ChunkKey]int

	solves, reuses int64
}

// heavyTouchWeight is how many cold-chunk touches one hot-chunk touch is
// worth in the drift signal.
const heavyTouchWeight = 4

// RouterStats reports how often the router solved versus reused.
type RouterStats struct {
	Solves int64 `json:"solves"`
	Reuses int64 `json:"reuses"`
}

func newRouter(planner maintain.Planner, threshold float64, heavy func(array.ChunkKey) bool) *router {
	return &router{planner: planner, threshold: threshold, heavy: heavy}
}

// heavyFnOf adapts an optional adaptive maintainer into the router's
// classifier lookup.
func heavyFnOf(a *maintain.AdaptiveMaintainer) func(array.ChunkKey) bool {
	if a == nil {
		return nil
	}
	return a.IsHeavy
}

// touchesOf counts how many units read each base chunk key — the drift
// signal. Delta keys are included too (the batch's own footprint matters as
// much as the base's).
func touchesOf(units []view.Unit) map[array.ChunkKey]int {
	m := make(map[array.ChunkKey]int)
	for _, u := range units {
		m[u.P.Key]++
		m[u.Q.Key]++
	}
	return m
}

// coverage returns the fraction of the current batch's chunk touches that
// the reference distribution also touches, weighted by touch count:
// Σ_k min(cur_k, ref_k) / Σ_k cur_k. 1.0 means the batch lands entirely
// inside the solved footprint; 0.0 means a disjoint region.
func coverage(cur, ref map[array.ChunkKey]int) float64 {
	total, common := 0, 0
	for k, c := range cur {
		total += c
		r := ref[k]
		if r < c {
			common += r
		} else {
			common += c
		}
	}
	if total == 0 {
		return 1.0
	}
	return float64(common) / float64(total)
}

// plan produces the batch's maintenance plan. When the chunk-touch coverage
// against the cached solve is at or above the drift threshold — or when the
// batch carries conflicts with in-flight predecessors — the cached placement
// is reused and only the transfer list is rebuilt against the live catalog.
// Otherwise the configured planner runs a full solve and the cache is
// rebuilt from its solution.
//
// Conflicted batches never full-solve: optimizer plans may chain ships
// (a transfer sourced from a replica another transfer creates), which is
// incompatible with the deferred-transfer skip set (see
// maintain.Staged.RunTransfers). Reused plans ship every chunk directly from
// its home, so any subset may be deferred safely.
func (r *router) plan(ctx *maintain.Context, conflicted bool) (*maintain.Plan, bool, error) {
	cur := touchesOf(ctx.Units)
	if r.heavy != nil {
		for k, c := range cur {
			if r.heavy(k) {
				cur[k] = c * heavyTouchWeight
			}
		}
	}
	if r.haveSolve && (conflicted || coverage(cur, r.touch) >= r.threshold) {
		r.reuses++
		return r.reusePlan(ctx), true, nil
	}
	if !conflicted {
		p, err := r.planner.Plan(ctx)
		if err != nil {
			return nil, false, err
		}
		r.adopt(ctx, p, cur)
		r.solves++
		return p, false, nil
	}
	// Conflicted with no cached solve yet: route greedily this batch; the
	// next unconflicted batch seeds the cache.
	r.reuses++
	return r.reusePlan(ctx), true, nil
}

// adopt rebuilds the reuse cache from a full solve's assignments.
func (r *router) adopt(ctx *maintain.Context, p *maintain.Plan, touch map[array.ChunkKey]int) {
	r.haveSolve = true
	r.touch = touch
	r.joinSite = make(map[pairKey]int, len(ctx.Units))
	for i, u := range ctx.Units {
		r.joinSite[pairKeyOf(ctx, u)] = p.JoinSite[i]
	}
	r.viewHome = make(map[array.ChunkKey]int, len(p.ViewHome))
	for v, j := range p.ViewHome {
		r.viewHome[v] = j
	}
}

// reusePlan assembles an executable plan from the cached placement: cached
// join sites for known pairs, a cheap greedy site for new ones, cached (or
// hinted) view homes, and a flat direct-from-home transfer list. Pending
// chunks (absent from the catalog until a predecessor commits) get a
// placeholder transfer from the coordinator, which validates — HomeOf
// reports Coordinator for absent chunks — and is always deferred by the
// caller, then re-resolved against the live catalog after the commit fence.
func (r *router) reusePlan(ctx *maintain.Context) *maintain.Plan {
	n := ctx.Cluster.NumNodes()
	p := maintain.NewPlan("stream-reuse", len(ctx.Units))
	type ship struct {
		ref view.ChunkRef
		to  int
	}
	shipped := make(map[ship]bool)
	addShip := func(ref view.ChunkRef, to int) {
		from := ctx.HomeOf(ref)
		if from == to || shipped[ship{ref, to}] {
			return
		}
		shipped[ship{ref, to}] = true
		p.Transfers = append(p.Transfers, maintain.Transfer{Ref: ref, From: from, To: to})
	}
	for i, u := range ctx.Units {
		site, ok := r.joinSite[pairKeyOf(ctx, u)]
		if !ok {
			site = r.greedySite(ctx, u, n)
			if r.joinSite == nil {
				r.joinSite = make(map[pairKey]int)
			}
			r.joinSite[pairKeyOf(ctx, u)] = site
		}
		p.JoinSite[i] = site
		addShip(u.P, site)
		addShip(u.Q, site)
		for _, v := range u.Views {
			if _, ok := p.ViewHome[v]; ok {
				continue
			}
			home, ok := r.viewHome[v]
			if !ok {
				home = ctx.ViewHomeHint(v)
				if r.viewHome == nil {
					r.viewHome = make(map[array.ChunkKey]int)
				}
				r.viewHome[v] = home
			}
			p.ViewHome[v] = home
		}
	}
	// Brand-new delta chunks get their post-batch home from the static
	// placement, recorded in the plan so the commit uses it — and so a
	// successor's pending-key guess (the same placement) agrees with it.
	for _, ref := range ctx.DeltaRefs() {
		if !ctx.IsDelta(ref) {
			continue
		}
		base := ctx.BaseNameFor(ref.Array)
		if _, exists := ctx.Cluster.Catalog().Home(base, ref.Key); !exists {
			p.ArrayRehome[ref] = ctx.ArrayPlacement.Place(ref.Key, n)
		}
	}
	return p
}

// greedySite picks a join site for a pair outside the cached solution:
// prefer a base-side chunk's live home (joining where the data already sits
// ships only the delta chunk), else the first view chunk's home hint (the
// merge destination).
func (r *router) greedySite(ctx *maintain.Context, u view.Unit, n int) int {
	for _, ref := range []view.ChunkRef{u.Q, u.P} {
		if ctx.IsDelta(ref) {
			continue
		}
		if home, ok := ctx.Cluster.Catalog().Home(ref.Array, ref.Key); ok {
			return home
		}
	}
	if len(u.Views) > 0 {
		return ctx.ViewHomeHint(u.Views[0])
	}
	return 0
}

// stats snapshots the solve/reuse counters. Called from observer goroutines;
// the counters are only written by the plan stage, so a torn read costs at
// most an off-by-one in a monitoring number.
func (r *router) stats() RouterStats {
	return RouterStats{Solves: r.solves, Reuses: r.reuses}
}
