// Package stream is the pipelined micro-batch maintenance path: a small
// operator graph (delta source → chunk router → transfer → similarity join →
// merge/commit sink) that propagates update batches through bounded channels
// with back-pressure, reusing the batch executor's join kernel, shadow-staging
// commit protocol, and epoch publication.
//
// The point of the pipeline is to stop paying the full
// plan/validate/transfer/join/commit cycle per batch. Batch N+1 is admitted
// into planning and Phase-1 transfers while batch N is still joining: every
// in-flight batch stages under its own scratch namespaces
// ("<base>#sdeltaSEQ", "<view>#stage-sSEQ"), so concurrent stages never
// collide, and the commit sink serializes commits — and therefore epoch
// publications — in admission order, so snapshot readers observe the same
// linear history the batch-at-a-time path produces.
//
// Safe overlap is bounded by data conflicts, tracked per batch as a write
// set (the base chunks its commit rewrites or creates):
//
//   - unit generation runs against the catalog plus the pending keys of
//     in-flight predecessors (chunks their commits will create), with stale
//     bounding boxes disabled for chunks predecessors rewrite;
//   - transfers whose source chunk a predecessor will rewrite are deferred
//     out of Phase 1 and re-issued against the live catalog after the
//     predecessor commits (the commit fence at the join stage);
//   - scratch replicas shared across batches are reference-counted in a
//     claim table, so a predecessor's cleanup never scrubs a copy a
//     successor joins against;
//   - aborts publish rollback epochs, so they are serialized in the sink
//     too; a failed batch is retried as an isolated batch-at-a-time run
//     (bounded), which also re-grounds any successor that admitted the
//     failed batch's pending chunks.
//
// Planning is amortized with a placement-reuse router: the last full solve's
// join-site and view-home assignments are reused until the batch's
// chunk-touch distribution drifts below a coverage threshold, so trickle
// workloads pay the optimizer once per drift episode instead of per batch.
package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/view"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("stream: graph closed")

// stageID indexes the pipeline's stages in flow order.
type stageID int

const (
	stSource stageID = iota
	stRouter
	stTransfer
	stJoin
	stSink
	numStages
)

var stageNames = [numStages]string{"source", "router", "transfer", "join", "sink"}

// Config wires a Graph.
type Config struct {
	Cluster *cluster.Cluster
	// Def is the maintained view; streaming currently supports self-join
	// views (the PTF workload shape) under insertion batches.
	Def *view.Definition
	// Planner runs the full placement solves (drift episodes and isolated
	// retries). It must be stateless or safe for use from two goroutines;
	// the built-in planners are value types reading only the Context.
	Planner maintain.Planner
	Params  maintain.Params

	// QueueDepth bounds every inter-stage channel; a full downstream queue
	// back-pressures the upstream stage (and ultimately Submit). Default 2.
	QueueDepth int
	// MaxRetries bounds how many isolated batch-at-a-time retries a failed
	// batch gets in the sink before its error is surfaced. Default 2.
	MaxRetries int
	// DriftThreshold is the minimum chunk-touch coverage against the cached
	// placement solve below which the router re-solves. Default 0.5.
	DriftThreshold float64

	ArrayPlacement cluster.Placement
	ViewPlacement  cluster.Placement

	// Adaptive, when non-nil, connects the pipeline to the heavy-light
	// adaptive layer: the source stage feeds every batch's chunk keys into
	// its classification window, batch contexts share its join-state memo
	// (content-identical pairs skip the join kernel), and the router
	// weights heavy-chunk touches when judging placement drift — drift in
	// the hot footprint re-solves promptly while churn in the cold scatter
	// tail keeps reusing the cached solve. The streaming path itself still
	// maintains every chunk eagerly (deferral is the batch path's job);
	// this keeps the classifier warm across both paths.
	Adaptive *maintain.AdaptiveMaintainer

	// Ctx, when non-nil, bounds every batch's execution (see
	// maintain.Context.Ctx).
	Ctx context.Context
}

// Result is the terminal outcome of one submitted micro-batch.
type Result struct {
	// Seq is the batch's admission sequence number (also its scratch
	// namespace suffix).
	Seq int
	// Err is nil iff the batch committed (possibly after retries).
	Err error
	// Epoch is the epoch its commit published (0 when epochs are disabled
	// or the batch failed).
	Epoch uint64
	// Reused reports whether the router reused the cached placement.
	Reused bool
	// Retries counts isolated re-executions after a pipelined failure.
	Retries int
	// Units, Transfers, Deferred describe the executed plan.
	Units, Transfers, Deferred int
	// MaintenanceSeconds is the plan's modeled cost (cluster.Ledger).
	MaintenanceSeconds float64
	// Trace carries the batch's phase spans.
	Trace *obs.Trace
}

// Ticket resolves to a batch's Result once the commit sink is done with it.
type Ticket struct {
	res  Result
	done chan struct{}
}

// Wait blocks until the batch is terminal and returns its result.
func (t *Ticket) Wait() Result { <-t.done; return t.res }

// Done is closed when the batch is terminal.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Stats is a point-in-time picture of the pipeline.
type Stats struct {
	Stages   []obs.StageSnapshot `json:"stages"`
	Router   RouterStats         `json:"router"`
	Aborts   int64               `json:"aborts"`
	Retries  int64               `json:"retries"`
	InFlight int                 `json:"in_flight"`
}

// inflight is the conflict-tracking record of one admitted, not yet terminal
// batch. writeSet and newKeys are immutable after admission; done is closed
// by the sink (after aborted is set), which is what the commit fence waits
// on.
type inflight struct {
	seq      int
	writeSet map[chunkID]bool
	newKeys  []array.ChunkKey
	done     chan struct{}
	aborted  bool
}

// batch carries one micro-batch through the stages. Exactly one stage owns
// it at a time (channels hand it off), so its fields need no locking.
type batch struct {
	delta  *array.Array
	ticket *Ticket

	seq     int
	ctx     *maintain.Context
	flight  *inflight
	fences  []*inflight
	dirty   map[chunkID]bool
	plan    *maintain.Plan
	defers  []claim // transfers deferred past the commit fence, sorted
	reused  bool
	staged  *maintain.Staged
	claims  []claim
	retries int
	epoch   uint64
	ledger  *cluster.Ledger
	err     error
}

// Graph is the running pipeline. Submit admits micro-batches; five stage
// goroutines carry them to the commit sink; Close drains.
type Graph struct {
	cfg     Config
	cl      *cluster.Cluster
	def     *view.Definition
	router  *router
	claims  *claimTable
	history *maintain.History
	rng     *rand.Rand // source-stage goroutine only
	runCtx  context.Context

	chans [numStages]chan *batch
	ctrs  [numStages]obs.StageCounters
	wg    sync.WaitGroup

	ns     atomic.Int64 // scratch namespace sequence (pipelined + isolated runs)
	closed atomic.Bool
	// submitMu serializes Submit sends against Close's channel close.
	submitMu sync.RWMutex
	// histMu guards the history window: the router stage reads it during
	// full solves while the sink records committed batches into it.
	histMu sync.Mutex

	mu   sync.Mutex
	live []*inflight

	aborts  obs.Counter
	retries obs.Counter
}

// NewGraph validates the configuration and starts the stage goroutines.
func NewGraph(cfg Config) (*Graph, error) {
	if cfg.Cluster == nil || cfg.Def == nil {
		return nil, errors.New("stream: nil cluster or definition")
	}
	if !cfg.Def.SelfJoin() {
		return nil, fmt.Errorf("stream: view %s joins two arrays; streaming supports self-join views", cfg.Def.Name)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cluster.Catalog().Schema(cfg.Def.Alpha.Name) == nil {
		return nil, fmt.Errorf("stream: base array %q not loaded", cfg.Def.Alpha.Name)
	}
	if cfg.Planner == nil {
		cfg.Planner = maintain.Reassign{}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.5
	}
	if cfg.ArrayPlacement == nil {
		cfg.ArrayPlacement = cluster.HashPlacement{}
	}
	if cfg.ViewPlacement == nil {
		cfg.ViewPlacement = cluster.HashPlacement{}
	}
	if cfg.Ctx == nil {
		cfg.Ctx = context.Background()
	}
	if rf, ok := cfg.Cluster.Fabric().(interface {
		RegisterView(*view.Definition) error
	}); ok {
		if err := rf.RegisterView(cfg.Def); err != nil {
			return nil, fmt.Errorf("stream: registering view on fabric: %w", err)
		}
	}
	g := &Graph{
		cfg:     cfg,
		cl:      cfg.Cluster,
		def:     cfg.Def,
		router:  newRouter(cfg.Planner, cfg.DriftThreshold, heavyFnOf(cfg.Adaptive)),
		claims:  newClaimTable(cfg.Cluster),
		history: maintain.NewHistory(cfg.Params.Window),
		rng:     rand.New(rand.NewSource(cfg.Params.Seed)),
		runCtx:  cfg.Ctx,
	}
	for i := range g.chans {
		g.chans[i] = make(chan *batch, cfg.QueueDepth)
	}
	works := [numStages]func(*batch){
		stSource:   g.sourceWork,
		stRouter:   g.routeWork,
		stTransfer: g.transferWork,
		stJoin:     g.joinWork,
		stSink:     g.sinkWork,
	}
	for id := stSource; id < numStages; id++ {
		g.wg.Add(1)
		go g.runStage(id, works[id])
	}
	return g, nil
}

// Submit admits one insertion micro-batch. The delta's cells must be
// disjoint from the base array and from every in-flight delta (the same
// precondition ApplyBatch has, extended across the pipeline window). Submit
// blocks while the source queue is full — that is the graph's back-pressure
// boundary — and returns a Ticket resolving to the batch's outcome.
func (g *Graph) Submit(delta *array.Array) (*Ticket, error) {
	if delta == nil {
		return nil, errors.New("stream: nil delta")
	}
	g.submitMu.RLock()
	defer g.submitMu.RUnlock()
	if g.closed.Load() {
		return nil, ErrClosed
	}
	b := &batch{delta: delta, ticket: &Ticket{done: make(chan struct{})}}
	g.ctrs[stSource].Depth.Add(1)
	select {
	case g.chans[stSource] <- b:
	default:
		g.ctrs[stSource].Stalls.Add(1)
		start := time.Now()
		g.chans[stSource] <- b
		g.ctrs[stSource].StallNanos.Add(time.Since(start).Nanoseconds())
	}
	return b.ticket, nil
}

// Close stops admission. In-flight batches keep flowing; the stage
// goroutines exit as the pipeline drains. Safe to call more than once.
func (g *Graph) Close() {
	if g.closed.Swap(true) {
		return
	}
	// The write lock waits out Submits already past the closed check, so
	// the channel close below cannot race a send.
	g.submitMu.Lock()
	close(g.chans[stSource])
	g.submitMu.Unlock()
}

// Drain closes the graph and blocks until every admitted batch is terminal.
func (g *Graph) Drain() {
	g.Close()
	g.wg.Wait()
}

// Stats snapshots the per-stage counters and router statistics.
func (g *Graph) Stats() Stats {
	st := Stats{
		Router:  g.router.stats(),
		Aborts:  g.aborts.Load(),
		Retries: g.retries.Load(),
	}
	for id := stSource; id < numStages; id++ {
		st.Stages = append(st.Stages, g.ctrs[id].Snapshot(stageNames[id]))
	}
	g.mu.Lock()
	st.InFlight = len(g.live)
	g.mu.Unlock()
	return st
}

// runStage is the shared stage loop: dequeue, account, work, hand off.
// Batches that already failed skip the remaining work and fall through to
// the sink, which owns aborts (they publish epochs and must serialize with
// commits).
func (g *Graph) runStage(id stageID, work func(*batch)) {
	defer g.wg.Done()
	c := &g.ctrs[id]
	for b := range g.chans[id] {
		c.Entered.Add(1)
		start := time.Now()
		if b.err == nil || id == stSink {
			work(b)
		}
		c.BusyNanos.Add(time.Since(start).Nanoseconds())
		c.Done.Add(1)
		if id+1 < numStages {
			g.forward(id, id+1, b)
		}
		c.Depth.Add(-1)
	}
	if id+1 < numStages {
		close(g.chans[id+1])
	}
}

// forward hands a batch to the next stage, recording a back-pressure stall
// on the sending stage when the downstream queue is full.
func (g *Graph) forward(from, to stageID, b *batch) {
	g.ctrs[to].Depth.Add(1)
	select {
	case g.chans[to] <- b:
		return
	default:
	}
	g.ctrs[from].Stalls.Add(1)
	start := time.Now()
	g.chans[to] <- b
	g.ctrs[from].StallNanos.Add(time.Since(start).Nanoseconds())
}

// deltaName returns the scratch namespace of a batch's staged delta.
func (g *Graph) deltaName(seq int) string {
	return fmt.Sprintf("%s#sdelta%d", g.def.Alpha.Name, seq)
}

// stageDeltaChunks registers a delta namespace and stages the delta's chunks
// at the coordinator (mirrors Maintainer.stage).
func (g *Graph) stageDeltaChunks(name string, delta *array.Array) error {
	schema := *g.cl.Catalog().Schema(g.def.Alpha.Name)
	schema.Name = name
	if err := g.cl.Catalog().Register(&schema); err != nil {
		return err
	}
	var chunks []*array.Chunk
	delta.EachChunk(func(c *array.Chunk) bool {
		chunks = append(chunks, c)
		return true
	})
	return g.cl.StageDelta(name, chunks)
}

// sourceWork admits a batch: stage the delta, compute its write set, snapshot
// the in-flight predecessors, generate units against catalog + pending
// chunks, and build the maintenance context under a private scratch suffix.
func (g *Graph) sourceWork(b *batch) {
	b.seq = int(g.ns.Add(1))
	alpha := g.def.Alpha.Name
	deltaName := g.deltaName(b.seq)
	if err := g.stageDeltaChunks(deltaName, b.delta); err != nil {
		b.err = err
		return
	}
	cat := g.cl.Catalog()

	writeSet := make(map[chunkID]bool)
	var newKeys []array.ChunkKey
	for _, k := range cat.Keys(deltaName) {
		writeSet[chunkID{alpha, k}] = true
		if _, ok := cat.Home(alpha, k); !ok {
			newKeys = append(newKeys, k)
		}
	}

	g.mu.Lock()
	preds := append([]*inflight(nil), g.live...)
	b.flight = &inflight{seq: b.seq, writeSet: writeSet, newKeys: newKeys, done: make(chan struct{})}
	g.live = append(g.live, b.flight)
	g.mu.Unlock()

	// Pending = chunks a predecessor's commit will create; dirty = chunks a
	// predecessor's commit will rewrite (superset of pending). Both sets are
	// immutable snapshots — a predecessor that commits between here and our
	// join only makes them conservative.
	b.dirty = make(map[chunkID]bool)
	pendingSet := make(map[array.ChunkKey]bool)
	for _, p := range preds {
		for id := range p.writeSet {
			b.dirty[id] = true
		}
		for _, k := range p.newKeys {
			pendingSet[k] = true
		}
	}
	pending := make([]array.ChunkKey, 0, len(pendingSet))
	for k := range pendingSet {
		pending = append(pending, k)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })

	dirty := b.dirty
	gen := &view.UnitGen{
		Catalog: cat, Def: g.def,
		BaseAlpha: alpha, BaseBeta: g.def.Beta.Name,
		DeltaAlpha: deltaName, DeltaBeta: deltaName,
		CellPruning:  g.cfg.Params.CellPruning,
		PendingAlpha: pending,
		DirtyBase: func(name string, key array.ChunkKey) bool {
			return dirty[chunkID{name, key}]
		},
	}
	units, err := gen.Generate()
	if err != nil {
		b.err = err
		return
	}

	params := g.cfg.Params
	params.Seed = g.rng.Int63()
	ctx, err := maintain.NewContext(g.cl, g.def, units,
		alpha, g.def.Beta.Name, deltaName, deltaName,
		g.def.Name, g.history, params)
	if err != nil {
		b.err = err
		return
	}
	ctx.ArrayPlacement = g.cfg.ArrayPlacement
	ctx.ViewPlacement = g.cfg.ViewPlacement
	ctx.ScratchSuffix = fmt.Sprintf("-s%d", b.seq)
	ctx.RetireOnCommit = true // every graph batch is one input batch
	ctx.Trace = obs.NewTrace()
	ctx.Ctx = g.runCtx
	if g.cfg.Adaptive != nil {
		g.cfg.Adaptive.Observe(b.delta.ChunkKeys())
		ctx.JoinMemo = g.cfg.Adaptive.Memo()
	}
	b.ctx = ctx

	// Fence on every predecessor whose write set intersects our base reads.
	for _, p := range preds {
		if unitsTouch(units, ctx, p.writeSet) {
			b.fences = append(b.fences, p)
		}
	}
}

// unitsTouch reports whether any unit's base-side input is in the write set.
func unitsTouch(units []view.Unit, ctx *maintain.Context, ws map[chunkID]bool) bool {
	for _, u := range units {
		for _, ref := range [2]view.ChunkRef{u.P, u.Q} {
			if !ctx.IsDelta(ref) && ws[chunkID{ref.Array, ref.Key}] {
				return true
			}
		}
	}
	return false
}

// routeWork plans the batch (reuse or solve), splits off the transfers that
// must wait for the commit fence, claims the scratch replicas its joins
// read, and opens the staged execution (validate + charge).
func (g *Graph) routeWork(b *batch) {
	g.histMu.Lock()
	plan, reused, err := g.router.plan(b.ctx, len(b.fences) > 0)
	g.histMu.Unlock()
	if err != nil {
		b.err = err
		return
	}
	b.plan, b.reused = plan, reused
	for _, t := range plan.Transfers {
		if b.dirty[chunkID{t.Ref.Array, t.Ref.Key}] {
			b.defers = append(b.defers, claim{ref: t.Ref, node: t.To})
		}
	}
	b.claims = claimsFor(b.ctx, plan)
	g.claims.acquire(b.claims)
	b.staged, err = maintain.BeginStaged(b.ctx, plan)
	if err != nil {
		b.err = err
	}
}

// transferWork runs Phase-1 replication, skipping the deferred ships.
func (g *Graph) transferWork(b *batch) {
	var skip func(ref view.ChunkRef, to int) bool
	if len(b.defers) > 0 {
		deferred := make(map[claim]bool, len(b.defers))
		for _, d := range b.defers {
			deferred[d] = true
		}
		skip = func(ref view.ChunkRef, to int) bool {
			return deferred[claim{ref: ref, node: to}]
		}
	}
	b.err = b.staged.RunTransfers(skip)
}

// joinWork waits out the commit fence, re-issues the deferred transfers
// against the live catalog (their sources now hold the predecessors'
// committed content), and runs the join stage.
func (g *Graph) joinWork(b *batch) {
	for _, f := range b.fences {
		<-f.done
	}
	if len(b.defers) > 0 {
		stop := b.ctx.Trace.Start(obs.PhaseTransfer)
		err := g.catchUpTransfers(b)
		stop()
		if err != nil {
			b.err = err
			return
		}
	}
	b.err = b.staged.RunJoins()
}

// catchUpTransfers ships the deferred chunks from their post-commit homes.
// A chunk with no home means the predecessor that was going to create it
// aborted; the error sends the batch to the sink's isolated retry, which
// regenerates units against the real catalog.
func (g *Graph) catchUpTransfers(b *batch) error {
	cat := g.cl.Catalog()
	for _, d := range b.defers {
		home, ok := cat.Home(d.ref.Array, d.ref.Key)
		if !ok {
			return fmt.Errorf("stream: deferred source %s missing after commit fence (predecessor aborted)", d.ref)
		}
		if home == d.node {
			continue
		}
		if err := g.cl.Transfer(nil, d.ref.Array, d.ref.Key, home, d.node); err != nil {
			if cluster.IsNodeDown(err) {
				continue // the join stage re-plans around dead nodes
			}
			return err
		}
	}
	return nil
}

// appliedSink is the optional capability of a durable sink that tracks the
// applied input-batch cursor (implemented by wal.Durable). The sink uses it
// to record batches that terminated without a retiring commit barrier, so
// restart resume stays aligned with admission order.
type appliedSink interface {
	Applied() uint64
	RetireBarrier() error
}

// sinkWork is the merge/commit sink: the only stage that commits, aborts, or
// publishes epochs, in admission order. Failed batches are rolled back and
// retried as isolated batch-at-a-time runs with a bounded budget.
func (g *Graph) sinkWork(b *batch) {
	// The sink is the only stage that writes barriers, so comparing the
	// applied cursor across this batch's terminal handling is race-free.
	var as appliedSink
	var before uint64
	if d := g.cl.Durable(); d != nil {
		if s, ok := d.(appliedSink); ok {
			as, before = s, s.Applied()
		}
	}
	if b.err == nil && b.staged != nil {
		b.staged.CaptureSnapshots()
		if err := b.staged.Commit(); err != nil {
			b.err = err
		} else {
			b.epoch = g.cl.Epochs().Publish()
			b.ledger = b.staged.Ledger()
			g.histMu.Lock()
			g.history.Record(b.ctx)
			g.histMu.Unlock()
			b.staged.KeepScratch(g.claims.keep)
			b.staged.Cleanup()
		}
	}
	if b.err != nil {
		g.aborts.Add(1)
		if b.staged != nil {
			b.staged.KeepScratch(g.claims.keep)
			_ = b.staged.Abort(b.err)
		} else if b.seq > 0 {
			// Failed before BeginStaged: only the staged delta namespace
			// exists; drop it.
			_, _ = g.cl.DropArrayAt(cluster.Coordinator, g.deltaName(b.seq))
			g.cl.Catalog().Drop(g.deltaName(b.seq))
		}
		for b.err != nil && b.retries < g.cfg.MaxRetries {
			b.retries++
			g.retries.Add(1)
			b.err = g.runIsolated(b)
		}
	}
	if as != nil && as.Applied() == before {
		// The batch is terminal without a retiring commit barrier — every
		// attempt failed, or it never reached its barrier. Record the
		// consumed input batch (best-effort) so a restart resumes after it
		// instead of replaying it out of admission order; if even this
		// barrier fails, resume re-runs the batch from clean pre-batch
		// state, which is safe.
		_ = as.RetireBarrier()
	}
	g.finish(b)
}

// runIsolated re-executes a failed batch start-to-finish on the sink
// goroutine: every predecessor is terminal (the sink is serial), so units
// regenerate against the real catalog with no pending chunks, and the
// configured planner solves fresh. Successor claims are still honored during
// cleanup — successors may be mid-join concurrently.
func (g *Graph) runIsolated(b *batch) error {
	seq := int(g.ns.Add(1))
	alpha := g.def.Alpha.Name
	deltaName := g.deltaName(seq)
	if err := g.stageDeltaChunks(deltaName, b.delta); err != nil {
		return err
	}
	gen := &view.UnitGen{
		Catalog: g.cl.Catalog(), Def: g.def,
		BaseAlpha: alpha, BaseBeta: g.def.Beta.Name,
		DeltaAlpha: deltaName, DeltaBeta: deltaName,
		CellPruning: g.cfg.Params.CellPruning,
	}
	units, err := gen.Generate()
	if err != nil {
		return err
	}
	params := g.cfg.Params
	params.Seed = int64(seq) // deterministic, distinct per attempt
	ctx, err := maintain.NewContext(g.cl, g.def, units,
		alpha, g.def.Beta.Name, deltaName, deltaName,
		g.def.Name, g.history, params)
	if err != nil {
		return err
	}
	ctx.ArrayPlacement = g.cfg.ArrayPlacement
	ctx.ViewPlacement = g.cfg.ViewPlacement
	ctx.ScratchSuffix = fmt.Sprintf("-s%d", seq)
	ctx.RetireOnCommit = true // retries still consume the same input batch
	ctx.Trace = obs.NewTrace()
	if b.ctx != nil && b.ctx.Trace != nil {
		ctx.Trace = b.ctx.Trace
	}
	ctx.Ctx = g.runCtx
	if g.cfg.Adaptive != nil {
		ctx.JoinMemo = g.cfg.Adaptive.Memo()
	}
	g.histMu.Lock()
	plan, err := g.cfg.Planner.Plan(ctx)
	g.histMu.Unlock()
	if err != nil {
		return err
	}
	s, err := maintain.BeginStaged(ctx, plan)
	if err != nil {
		return err
	}
	s.KeepScratch(g.claims.keep)
	s.CaptureSnapshots()
	if err := s.RunTransfers(nil); err != nil {
		return s.Abort(err)
	}
	if err := s.RunJoins(); err != nil {
		return s.Abort(err)
	}
	if err := s.Commit(); err != nil {
		return s.Abort(err)
	}
	s.Cleanup()
	b.epoch = g.cl.Epochs().Publish()
	b.ledger = s.Ledger()
	b.plan = plan
	g.histMu.Lock()
	g.history.Record(ctx)
	g.histMu.Unlock()
	return nil
}

// finish releases the batch's claims, retires its in-flight record (waking
// fenced successors), and resolves its ticket.
func (g *Graph) finish(b *batch) {
	if b.claims != nil {
		g.claims.release(b.claims)
	}
	if b.flight != nil {
		b.flight.aborted = b.err != nil
		g.mu.Lock()
		for i, f := range g.live {
			if f == b.flight {
				g.live = append(g.live[:i], g.live[i+1:]...)
				break
			}
		}
		g.mu.Unlock()
		close(b.flight.done)
	}
	res := Result{
		Seq:      b.seq,
		Err:      b.err,
		Epoch:    b.epoch,
		Reused:   b.reused,
		Retries:  b.retries,
		Deferred: len(b.defers),
	}
	if b.ctx != nil {
		res.Units = len(b.ctx.Units)
		res.Trace = b.ctx.Trace
	}
	if b.plan != nil {
		res.Transfers = b.plan.NumTransfers()
	}
	if b.ledger != nil {
		res.MaintenanceSeconds = b.ledger.Cost()
	}
	b.ticket.res = res
	close(b.ticket.done)
}
