package stream

import (
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/view"
)

// claim identifies one scratch replica — a chunk copy at a node — that an
// in-flight batch's joins rely on.
type claim struct {
	ref  view.ChunkRef
	node int
}

// claimTable reference-counts the scratch replicas in-flight batches depend
// on, so a predecessor's cleanup never scrubs a copy a successor is about to
// join against. Cross-batch reuse is real: Cluster.Transfer dedups against
// resident replicas, so a successor's "ship" of a chunk a predecessor
// already moved is a no-op that physically relies on the predecessor's copy.
//
// The table also owns the deferred scrubs: when a cleanup skips a claimed
// replica, responsibility for removing it transfers here, and the scrub runs
// once the last claim is released (unless the replica became the chunk's
// home in the meantime).
type claimTable struct {
	cl *cluster.Cluster

	mu       sync.Mutex
	refs     map[claim]int
	deferred map[claim]bool
}

func newClaimTable(cl *cluster.Cluster) *claimTable {
	return &claimTable{
		cl:       cl,
		refs:     make(map[claim]int),
		deferred: make(map[claim]bool),
	}
}

// acquire registers every claim in the set.
func (t *claimTable) acquire(set []claim) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range set {
		t.refs[c]++
	}
}

// keep is the Staged.KeepScratch predicate: a replica with a live claim
// survives the batch's cleanup, and the skipped scrub is recorded for
// release to finish later.
func (t *claimTable) keep(ref view.ChunkRef, node int) bool {
	c := claim{ref, node}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.refs[c] > 0 {
		t.deferred[c] = true
		return true
	}
	return false
}

// release drops the batch's claims and scrubs every deferred replica whose
// last claim just went away. Scrubbing is cleanup-grade: best-effort, errors
// swallowed, and a replica that became its chunk's home is left alone.
func (t *claimTable) release(set []claim) {
	t.mu.Lock()
	var scrubs []claim
	for _, c := range set {
		if n := t.refs[c]; n <= 1 {
			delete(t.refs, c)
			if t.deferred[c] {
				delete(t.deferred, c)
				scrubs = append(scrubs, c)
			}
		} else {
			t.refs[c] = n - 1
		}
	}
	t.mu.Unlock()
	cat := t.cl.Catalog()
	for _, c := range scrubs {
		if home, ok := cat.Home(c.ref.Array, c.ref.Key); ok && home == c.node {
			continue
		}
		_, _ = t.cl.DeleteAt(c.node, c.ref.Array, c.ref.Key)
		cat.RemoveReplica(c.ref.Array, c.ref.Key, c.node)
	}
}

// claimsFor lists the distinct base-side residencies a plan's joins read:
// for every unit, each non-delta input chunk at the unit's join site. Delta
// chunks live in the batch's private namespace and need no protection.
func claimsFor(ctx *maintain.Context, plan *maintain.Plan) []claim {
	seen := make(map[claim]bool)
	var out []claim
	add := func(ref view.ChunkRef, node int) {
		if ctx.IsDelta(ref) {
			return
		}
		c := claim{ref, node}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for i, u := range ctx.Units {
		site := plan.JoinSite[i]
		add(u.P, site)
		add(u.Q, site)
	}
	return out
}

// chunkID names one catalog chunk; the unit of write-set bookkeeping.
type chunkID struct {
	name string
	key  array.ChunkKey
}
