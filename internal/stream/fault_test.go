package stream

import (
	"math/rand"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/storage"
)

// faultFixture is streamFixture over a FaultFabric-wrapped local fabric.
func faultFixture(t *testing.T, nodes int, seed int64, used map[string]bool) (*cluster.Cluster, *Graph, *array.Array, *cluster.FaultFabric) {
	t.Helper()
	stores := make([]*storage.Store, nodes)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	ff := cluster.NewFaultFabric(cluster.NewLocalFabric(stores), seed)
	cl, def, base := streamFixture(t, nodes, used, cluster.WithFabric(ff.AsFabric()))
	g, err := NewGraph(Config{Cluster: cl, Def: def, Params: maintain.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	return cl, g, base, ff
}

// shipReplicas gives every chunk of the named arrays a second copy one node
// over, so failover has somewhere to go.
func shipReplicas(t *testing.T, cl *cluster.Cluster, names ...string) {
	t.Helper()
	cat := cl.Catalog()
	for _, name := range names {
		for _, key := range cat.Keys(name) {
			home, ok := cat.Home(name, key)
			if !ok {
				t.Fatalf("no home for %v of %s", key, name)
			}
			if err := cl.Transfer(nil, name, key, home, (home+1)%cl.NumNodes()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// checkAgainstReplay replays exactly the committed deltas fault-free on a
// fresh cluster and requires the streamed cluster to match cell-for-cell —
// the streaming chaos contract: every ticket either committed (and its
// effects are fully present) or failed (and left no trace).
func checkAgainstReplay(t *testing.T, cl *cluster.Cluster, g *Graph, base *array.Array, deltas []*array.Array, results []Result) {
	t.Helper()
	var committed []*array.Array
	for i, r := range results {
		if r.Err == nil {
			if r.Epoch == 0 && cl.Epochs().Enabled() {
				t.Fatalf("batch %d committed without an epoch", i)
			}
			committed = append(committed, deltas[i])
		} else {
			t.Logf("batch %d failed (tolerated under faults): %v", i, r.Err)
		}
	}
	def := testDef(t)
	wantBase, wantView := replayBatches(t, def, base, committed)
	gotBase, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	gotView, err := cl.Gather("V")
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(gotBase, wantBase) {
		t.Fatalf("streamed base diverges from fault-free replay of the %d committed batches", len(committed))
	}
	if !statesEqual(gotView, wantView) {
		t.Fatalf("streamed view diverges from fault-free replay of the %d committed batches", len(committed))
	}
}

// TestStreamFaultBlackoutMidPipeline blacks out a node while batches occupy
// every pipeline stage, restores it, and checks the streaming chaos
// contract against a fault-free replay of whatever committed.
func TestStreamFaultBlackoutMidPipeline(t *testing.T) {
	used := make(map[string]bool)
	cl, g, base, ff := faultFixture(t, 4, 42, used)
	shipReplicas(t, cl, "A", "V")
	deltas := makeDeltas(t, rand.New(rand.NewSource(5)), used, 8, 8, 1, 20, 1, 20)

	tickets := make([]*Ticket, 0, len(deltas))
	for i, d := range deltas {
		if i == 3 {
			ff.Blackout(2)
		}
		if i == 6 {
			ff.Restore(2)
		}
		tk, err := g.Submit(d)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	g.Drain()
	// Lift every fault before inspecting state: verification reads must see
	// the cluster, not the chaos.
	ff.Restore(2)
	ff.ClearRules()

	results := make([]Result, 0, len(tickets))
	for _, tk := range tickets {
		results = append(results, tk.Wait())
	}
	checkAgainstReplay(t, cl, g, base, deltas, results)
}

// TestStreamFaultDropAfterWriteInSink loses one put ack during the commit
// path; the put retry loop must absorb it and every batch must commit.
func TestStreamFaultDropAfterWriteInSink(t *testing.T) {
	used := make(map[string]bool)
	cl, g, base, ff := faultFixture(t, 3, 42, used)
	ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: "Put",
		Kind: cluster.FaultDropAfterWrite, Count: 1})
	deltas := makeDeltas(t, rand.New(rand.NewSource(6)), used, 6, 8, 1, 20, 1, 20)

	results := drainAll(t, g, deltas)
	ff.ClearRules()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch %d should have absorbed the lost put ack, failed: %v", i, r.Err)
		}
	}
	if ff.FaultCounts().Total() == 0 {
		t.Fatal("fault rule never fired; the test exercised nothing")
	}
	checkAgainstReplay(t, cl, g, base, deltas, results)
}

// TestStreamFaultMergeAckLostRetries loses one merge ack — unretryable
// in-place, so the hit batch's first attempt aborts — and checks the sink's
// isolated re-execution commits it anyway.
func TestStreamFaultMergeAckLostRetries(t *testing.T) {
	used := make(map[string]bool)
	cl, g, base, ff := faultFixture(t, 3, 42, used)
	ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: "Merge",
		Kind: cluster.FaultDropAfterWrite, Count: 1})
	deltas := makeDeltas(t, rand.New(rand.NewSource(9)), used, 6, 8, 1, 20, 1, 20)

	results := drainAll(t, g, deltas)
	ff.ClearRules()
	if ff.FaultCounts().Total() == 0 {
		t.Fatal("fault rule never fired; the test exercised nothing")
	}
	retried := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch %d should have committed via isolated retry, failed: %v", i, r.Err)
		}
		retried += r.Retries
	}
	if retried == 0 {
		t.Fatal("merge ack was lost but no batch reports a retry")
	}
	if g.Stats().Retries == 0 {
		t.Fatal("graph retry counter did not record the isolated re-execution")
	}
	checkAgainstReplay(t, cl, g, base, deltas, results)
}
