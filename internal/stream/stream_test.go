package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/maintain"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

// testSchema is a 40×40 sky with 4×4 chunks — big enough that micro-batches
// in one region conflict with each other but not with batches elsewhere.
func testSchema() *array.Schema {
	return array.MustSchema("A",
		[]array.Dimension{
			{Name: "x", Start: 1, End: 40, ChunkSize: 4},
			{Name: "y", Start: 1, End: 40, ChunkSize: 4},
		},
		[]array.Attribute{{Name: "r", Type: array.Int64}},
	)
}

func testDef(t *testing.T) *view.Definition {
	t.Helper()
	s := testSchema()
	def, err := view.NewDefinition("V", s, s,
		simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"x", "y"},
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

// makeDeltas deals out unique points (never colliding with used) into
// per-batch insertion arrays confined to the given sub-region.
func makeDeltas(t *testing.T, rng *rand.Rand, used map[string]bool, batches, per int, xlo, xhi, ylo, yhi int64) []*array.Array {
	t.Helper()
	out := make([]*array.Array, 0, batches)
	for b := 0; b < batches; b++ {
		d := array.New(testSchema())
		for c := 0; c < per; {
			p := array.Point{xlo + rng.Int63n(xhi-xlo+1), ylo + rng.Int63n(yhi-ylo+1)}
			if used[p.String()] {
				continue
			}
			used[p.String()] = true
			if err := d.Set(p, array.Tuple{1}); err != nil {
				t.Fatal(err)
			}
			c++
		}
		out = append(out, d)
	}
	return out
}

// streamFixture loads a seeded base array and builds the view on a fresh
// cluster. The returned base is the logical pre-stream content (for replay).
func streamFixture(t *testing.T, nodes int, used map[string]bool, opts ...cluster.Option) (*cluster.Cluster, *view.Definition, *array.Array) {
	t.Helper()
	cl, err := cluster.New(nodes, append([]cluster.Option{cluster.WithWorkersPerNode(2)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	base := array.New(testSchema())
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		p := array.Point{1 + rng.Int63n(40), 1 + rng.Int63n(40)}
		if used[p.String()] {
			continue
		}
		used[p.String()] = true
		if err := base.Set(p, array.Tuple{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	return cl, def, base
}

// replayBatches applies the deltas batch-at-a-time on a fresh cluster and
// returns the final base and view — the fault-free reference state.
func replayBatches(t *testing.T, def *view.Definition, base *array.Array, deltas []*array.Array) (*array.Array, *array.Array) {
	t.Helper()
	cl, err := cluster.New(4, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	if err := maintain.BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	m, err := maintain.NewMaintainer(cl, def, maintain.Reassign{}, maintain.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deltas {
		if _, err := m.ApplyBatch(d); err != nil {
			t.Fatalf("replay batch %d: %v", i, err)
		}
	}
	gotBase, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	gotView, err := cl.Gather("V")
	if err != nil {
		t.Fatal(err)
	}
	return gotBase, gotView
}

func statesEqual(a, b *array.Array) bool {
	ok := true
	check := func(x, y *array.Array) {
		x.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := y.Get(p)
			if !found {
				for _, v := range tup {
					if v != 0 {
						ok = false
						return false
					}
				}
				return true
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
	}
	check(a, b)
	if ok {
		check(b, a)
	}
	return ok
}

// fingerprint renders an array's cells in sorted order — equal content,
// equal string.
func fingerprint(a *array.Array) string {
	type cell struct {
		p array.Point
		t array.Tuple
	}
	var cells []cell
	a.EachCell(func(p array.Point, tup array.Tuple) bool {
		cells = append(cells, cell{append(array.Point(nil), p...), append(array.Tuple(nil), tup...)})
		return true
	})
	sort.Slice(cells, func(i, j int) bool {
		for d := range cells[i].p {
			if cells[i].p[d] != cells[j].p[d] {
				return cells[i].p[d] < cells[j].p[d]
			}
		}
		return false
	})
	var sb strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&sb, "%v=%v;", c.p, c.t)
	}
	return sb.String()
}

// drainAll submits every delta, drains the graph, and returns the results.
func drainAll(t *testing.T, g *Graph, deltas []*array.Array) []Result {
	t.Helper()
	tickets := make([]*Ticket, 0, len(deltas))
	for i, d := range deltas {
		tk, err := g.Submit(d)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	g.Drain()
	out := make([]Result, 0, len(tickets))
	for _, tk := range tickets {
		out = append(out, tk.Wait())
	}
	return out
}

// TestGraphMatchesBatchReplay pushes conflicting micro-batches (all in one
// sky region, so successors overlap in-flight predecessors' write sets)
// through the pipeline and checks the committed state cell-for-cell against
// a batch-at-a-time replay of the same deltas.
func TestGraphMatchesBatchReplay(t *testing.T) {
	used := make(map[string]bool)
	cl, def, base := streamFixture(t, 4, used)
	deltas := makeDeltas(t, rand.New(rand.NewSource(7)), used, 8, 10, 1, 20, 1, 20)

	g, err := NewGraph(Config{Cluster: cl, Def: def, Params: maintain.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	results := drainAll(t, g, deltas)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch %d (seq %d) failed: %v", i, r.Seq, r.Err)
		}
	}

	wantBase, wantView := replayBatches(t, def, base, deltas)
	gotBase, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	gotView, err := cl.Gather("V")
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(gotBase, wantBase) {
		t.Fatal("streamed base diverges from batch replay")
	}
	if !statesEqual(gotView, wantView) {
		t.Fatal("streamed view diverges from batch replay")
	}

	st := g.Stats()
	if len(st.Stages) != int(numStages) {
		t.Fatalf("got %d stage snapshots, want %d", len(st.Stages), numStages)
	}
	for _, s := range st.Stages {
		if s.Entered != int64(len(deltas)) || s.Done != int64(len(deltas)) {
			t.Fatalf("stage %s processed %d/%d batches, want %d", s.Name, s.Entered, s.Done, len(deltas))
		}
		if s.Depth != 0 {
			t.Fatalf("stage %s reports residual depth %d after drain", s.Name, s.Depth)
		}
	}
	if st.InFlight != 0 {
		t.Fatalf("%d batches still in flight after drain", st.InFlight)
	}
	if rt := st.Router; rt.Solves+rt.Reuses != int64(len(deltas)) {
		t.Fatalf("router planned %d batches, want %d", rt.Solves+rt.Reuses, len(deltas))
	}
}

// TestGraphScratchNamespacesScrubbed checks that a drained pipeline leaves
// no scratch namespaces behind: every "#sdelta"/"#stage" array is gone from
// the catalog.
func TestGraphScratchNamespacesScrubbed(t *testing.T) {
	used := make(map[string]bool)
	cl, def, _ := streamFixture(t, 4, used)
	deltas := makeDeltas(t, rand.New(rand.NewSource(8)), used, 5, 8, 1, 24, 1, 24)
	g, err := NewGraph(Config{Cluster: cl, Def: def, Params: maintain.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range drainAll(t, g, deltas) {
		if r.Err != nil {
			t.Fatalf("batch %d failed: %v", i, r.Err)
		}
	}
	for _, name := range cl.Catalog().Names() {
		if strings.Contains(name, "#") {
			t.Fatalf("scratch namespace %q survived the drain", name)
		}
	}
}

// TestRouterDriftResolves drives batches through one sky region (the cached
// solve must be reused) and then jumps to a disjoint region (coverage
// collapses, forcing a re-solve). Batches run sequentially so reuse is the
// router's choice, not a conflict fallback.
func TestRouterDriftResolves(t *testing.T) {
	used := make(map[string]bool)
	cl, def, _ := streamFixture(t, 4, used)
	g, err := NewGraph(Config{Cluster: cl, Def: def, Params: maintain.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	submitWait := func(d *array.Array) Result {
		tk, err := g.Submit(d)
		if err != nil {
			t.Fatal(err)
		}
		return tk.Wait()
	}
	for i, d := range makeDeltas(t, rng, used, 3, 8, 1, 8, 1, 8) {
		if r := submitWait(d); r.Err != nil {
			t.Fatalf("region-1 batch %d: %v", i, r.Err)
		}
	}
	after1 := g.Stats().Router
	if after1.Solves != 1 {
		t.Fatalf("same-region trickle solved %d times, want 1", after1.Solves)
	}
	if after1.Reuses != 2 {
		t.Fatalf("same-region trickle reused %d times, want 2", after1.Reuses)
	}
	if r := submitWait(makeDeltas(t, rng, used, 1, 8, 33, 40, 33, 40)[0]); r.Err != nil {
		t.Fatalf("drifted batch: %v", r.Err)
	}
	after2 := g.Stats().Router
	if after2.Solves != 2 {
		t.Fatalf("drifted batch did not trigger a re-solve (solves=%d)", after2.Solves)
	}
	g.Drain()
}

// TestGraphSnapshotAuditWhileStreaming streams batches with epochs enabled
// while reader goroutines continuously pin snapshots and gather the view.
// Every published epoch's expected fingerprint is recorded by an OnPublish
// hook (on the sink goroutine, synchronous with the commit), and every
// reader gather must match the fingerprint of its pinned epoch exactly —
// zero violations.
func TestGraphSnapshotAuditWhileStreaming(t *testing.T) {
	used := make(map[string]bool)
	cl, def, _ := streamFixture(t, 4, used)

	var expected sync.Map // epoch → view fingerprint
	cl.Epochs().OnPublish(func(epoch uint64) {
		s, err := cl.Epochs().Acquire()
		if err != nil {
			t.Errorf("hook acquire at epoch %d: %v", epoch, err)
			return
		}
		defer s.Release()
		if s.Epoch() != epoch {
			t.Errorf("hook pinned epoch %d, published %d", s.Epoch(), epoch)
			return
		}
		v, err := s.Gather("V")
		if err != nil {
			t.Errorf("hook gather at epoch %d: %v", epoch, err)
			return
		}
		expected.Store(epoch, fingerprint(v))
	})
	cl.Epochs().Enable()

	g, err := NewGraph(Config{Cluster: cl, Def: def, Params: maintain.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}

	var violations atomic.Int64
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := cl.Epochs().Acquire()
				if err != nil {
					continue
				}
				v, err := s.Gather("V")
				if err != nil {
					violations.Add(1)
					s.Release()
					continue
				}
				if want, ok := expected.Load(s.Epoch()); ok && want.(string) != fingerprint(v) {
					violations.Add(1)
				}
				s.Release()
			}
		}()
	}

	deltas := makeDeltas(t, rand.New(rand.NewSource(13)), used, 8, 8, 1, 20, 1, 20)
	results := drainAll(t, g, deltas)
	close(stop)
	readers.Wait()

	epochs := make([]uint64, 0, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch %d failed: %v", i, r.Err)
		}
		if r.Epoch == 0 {
			t.Fatalf("batch %d committed without publishing an epoch", i)
		}
		epochs = append(epochs, r.Epoch)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("commit epochs not strictly increasing in admission order: %v", epochs)
		}
	}
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d snapshot consistency violations while streaming", n)
	}
}

// TestGraphSubmitAfterClose verifies admission shuts off cleanly.
func TestGraphSubmitAfterClose(t *testing.T) {
	used := make(map[string]bool)
	cl, def, _ := streamFixture(t, 4, used)
	g, err := NewGraph(Config{Cluster: cl, Def: def, Params: maintain.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	g.Drain()
	if _, err := g.Submit(array.New(testSchema())); err != ErrClosed {
		t.Fatalf("Submit after Close: got %v, want ErrClosed", err)
	}
}

// TestGraphRejectsTwoArrayView pins the v1 scope: streaming is self-join
// only.
func TestGraphRejectsTwoArrayView(t *testing.T) {
	used := make(map[string]bool)
	cl, _, _ := streamFixture(t, 3, used)
	sb := array.MustSchema("B",
		[]array.Dimension{
			{Name: "x", Start: 1, End: 40, ChunkSize: 4},
			{Name: "y", Start: 1, End: 40, ChunkSize: 4},
		},
		[]array.Attribute{{Name: "r", Type: array.Int64}},
	)
	def, err := view.NewDefinition("V2", testSchema(), sb,
		simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"x", "y"},
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGraph(Config{Cluster: cl, Def: def, Params: maintain.DefaultParams()}); err == nil {
		t.Fatal("NewGraph accepted a two-array view")
	}
}
