package maintain

import (
	"sort"
	"strings"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/view"
)

// PlanScratch caches a batch's geometric preparation — the generated unit
// list and the optimizer's join-site/view-home solution — keyed by the
// delta's chunk footprint. Replay-shaped workloads (the PTF correlated and
// periodic pointings) present the same delta chunk-key set batch after
// batch, and at scale triple generation plus the optimizer solve dominate
// per-batch maintenance cost; the scratch pays that cost once per distinct
// footprint and replays the answer.
//
// Exactness: with cell pruning off, the unit set is a pure function of the
// predicate geometry, the delta chunk-key set, and the base chunk-key set —
// chunk contents never matter. The footprint captures the delta side; a
// base-generation counter (bumped whenever a committed batch adds chunk
// keys to the base, and on any deletion) guards the base side, and a
// placement counter guards SetPlacements. A cached entry is reused only
// when both counters still match; anything else is a miss that re-solves.
// Join sites and view homes are placement policy, not correctness — any
// assignment yields the same view — but the transfer list is rebuilt
// against the live catalog on every reuse, so chunks that migrated since
// the solve still ship from their current homes. Under cell pruning the
// unit set depends on chunk contents (bounding boxes), so the scratch
// disables itself.
type PlanScratch struct {
	cap      int
	entries  map[string]*scratchEntry
	order    []string // insertion order, for eviction
	baseVer  int64
	placeVer int64

	hits, misses int64
}

// scratchUnit is one cached unit: the pair's chunk keys, which sides are
// delta chunks, and the affected view chunks. The delta array's per-batch
// namespace is re-bound at reuse time.
type scratchUnit struct {
	p, q   array.ChunkKey
	pd, qd bool
	both   bool
	views  []array.ChunkKey
}

type scratchEntry struct {
	baseVer, placeVer int64
	units             []scratchUnit
	joinSite          []int
	viewHome          map[array.ChunkKey]int
}

// DefaultPlanScratchCap bounds the number of cached footprints. Replay
// workloads cycle through a handful of distinct footprints; fresh-slab
// workloads never revalidate an entry, so a small cap keeps the scratch
// from hoarding unit lists it will never reuse.
const DefaultPlanScratchCap = 8

// NewPlanScratch returns an empty scratch (cap <= 0 uses the default).
func NewPlanScratch(capacity int) *PlanScratch {
	if capacity <= 0 {
		capacity = DefaultPlanScratchCap
	}
	return &PlanScratch{cap: capacity, entries: make(map[string]*scratchEntry)}
}

// PlanScratchStats counts footprint reuses versus solves.
type PlanScratchStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats snapshots the reuse counters. The scratch is only touched under the
// owning maintainer's batch serialization, so no locking is needed.
func (s *PlanScratch) Stats() PlanScratchStats {
	if s == nil {
		return PlanScratchStats{}
	}
	return PlanScratchStats{Hits: s.hits, Misses: s.misses}
}

// Invalidate marks every cached entry stale against the base chunk-key set.
func (s *PlanScratch) Invalidate() { s.baseVer++ }

// InvalidatePlacement marks every cached entry stale against the placement
// strategies.
func (s *PlanScratch) InvalidatePlacement() { s.placeVer++ }

// footprint builds the cache key from the delta chunk keys; order
// insensitive.
func scratchFootprint(keys []array.ChunkKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = string(k)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// lookup returns the cached entry for the footprint when it is still valid,
// counting a hit or miss either way. Stale entries are dropped.
func (s *PlanScratch) lookup(fp string) *scratchEntry {
	e, ok := s.entries[fp]
	if ok && e.baseVer == s.baseVer && e.placeVer == s.placeVer {
		s.hits++
		return e
	}
	if ok {
		s.drop(fp)
	}
	s.misses++
	return nil
}

func (s *PlanScratch) drop(fp string) {
	delete(s.entries, fp)
	for i, k := range s.order {
		if k == fp {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// store caches the generated units and the solved placement for the
// footprint, evicting the oldest entry at capacity.
func (s *PlanScratch) store(fp string, ctx *Context, p *Plan) {
	for len(s.entries) >= s.cap {
		s.drop(s.order[0])
	}
	e := &scratchEntry{
		baseVer:  s.baseVer,
		placeVer: s.placeVer,
		units:    make([]scratchUnit, len(ctx.Units)),
		joinSite: make([]int, len(ctx.Units)),
		viewHome: make(map[array.ChunkKey]int, len(p.ViewHome)),
	}
	for i, u := range ctx.Units {
		e.units[i] = scratchUnit{
			p: u.P.Key, q: u.Q.Key,
			pd: ctx.IsDelta(u.P), qd: ctx.IsDelta(u.Q),
			both: u.BothDirections, views: u.Views,
		}
		e.joinSite[i] = p.JoinSite[i]
	}
	for v, j := range p.ViewHome {
		e.viewHome[v] = j
	}
	if _, ok := s.entries[fp]; !ok {
		s.order = append(s.order, fp)
	}
	s.entries[fp] = e
}

// rebuildUnits materializes the cached unit list against a fresh batch's
// delta namespace.
func (e *scratchEntry) rebuildUnits(baseName, deltaName string) []view.Unit {
	units := make([]view.Unit, len(e.units))
	for i, su := range e.units {
		pArr, qArr := baseName, baseName
		if su.pd {
			pArr = deltaName
		}
		if su.qd {
			qArr = deltaName
		}
		units[i] = view.Unit{
			P:              view.ChunkRef{Array: pArr, Key: su.p},
			Q:              view.ChunkRef{Array: qArr, Key: su.q},
			Views:          su.views,
			BothDirections: su.both,
		}
	}
	return units
}

// rebuildPlan assembles an executable plan from the cached solution: cached
// join sites and view homes, with the transfer list rebuilt against the
// live catalog (chunks ship directly from wherever they live now). New
// delta chunks get their post-batch home from the static placement, as a
// fresh solve would record in ArrayRehome.
func (e *scratchEntry) rebuildPlan(ctx *Context) *Plan {
	n := ctx.Cluster.NumNodes()
	p := NewPlan("scratch-reuse", len(ctx.Units))
	type ship struct {
		ref view.ChunkRef
		to  int
	}
	shipped := make(map[ship]bool)
	addShip := func(ref view.ChunkRef, to int) {
		from := ctx.HomeOf(ref)
		if from == to || shipped[ship{ref, to}] {
			return
		}
		shipped[ship{ref, to}] = true
		p.Transfers = append(p.Transfers, Transfer{Ref: ref, From: from, To: to})
	}
	for i, u := range ctx.Units {
		site := e.joinSite[i]
		p.JoinSite[i] = site
		addShip(u.P, site)
		addShip(u.Q, site)
		for _, v := range u.Views {
			if _, ok := p.ViewHome[v]; ok {
				continue
			}
			if home, ok := e.viewHome[v]; ok {
				p.ViewHome[v] = home
			} else {
				p.ViewHome[v] = ctx.ViewHomeHint(v)
			}
		}
	}
	for _, ref := range ctx.DeltaRefs() {
		if !ctx.IsDelta(ref) {
			continue
		}
		base := ctx.BaseNameFor(ref.Array)
		if _, exists := ctx.Cluster.Catalog().Home(base, ref.Key); !exists {
			p.ArrayRehome[ref] = ctx.ArrayPlacement.Place(ref.Key, n)
		}
	}
	return p
}
