package maintain

import (
	"context"
	"fmt"
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/view"
)

// AdaptiveConfig tunes the heavy-light adaptive maintenance layer.
type AdaptiveConfig struct {
	// HeavyThreshold / TopK / Hysteresis / Project configure the
	// classifier (see Classifier). TopK > 0 switches to relative mode.
	HeavyThreshold float64
	TopK           float64
	Hysteresis     float64
	Project        func(array.ChunkKey) array.ChunkKey

	// MaxPendingBatches bounds staleness debt: at most this many distinct
	// batches may have deferred deltas outstanding before the drainer
	// materializes the oldest. <= 0 means unbounded.
	MaxPendingBatches int
	// MaxPendingCells bounds the total deferred cell count the same way.
	MaxPendingCells int
	// PromoteEntries force-promotes a light class once its chunks hold
	// this many pending entries — the log itself is evidence the chunk is
	// not actually cold. <= 0 disables.
	PromoteEntries int
	// PromoteTouches force-promotes a class after this many query-driven
	// lazy materializations hit it. <= 0 disables.
	PromoteTouches int
	// MemoCap bounds the cached-join-state entries (DefaultJoinMemoCap
	// when 0).
	MemoCap int

	// Counters, when non-nil, receives the layer's observability gauges
	// and counters.
	Counters *obs.AdaptiveCounters
}

// DefaultAdaptiveConfig returns the tuning used by the skew benchmark: an
// absolute promotion score of 1.5 (a class must have been touched in the
// current batch and at least once recently), 0.5 hysteresis, a staleness
// bound of 4 batches, and pressure promotion after 3 pending entries.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		HeavyThreshold:    1.5,
		Hysteresis:        0.5,
		MaxPendingBatches: 4,
		PromoteEntries:    3,
		PromoteTouches:    2,
	}
}

// AdaptiveReport summarizes one adaptively maintained batch.
type AdaptiveReport struct {
	// Heavy is the eager part's report; nil when every chunk deferred.
	Heavy *Report
	// Drains are the reports of materializations this batch forced
	// (conflict fences, pressure promotions, the staleness drainer).
	Drains []*Report

	HeavyChunks   int // delta chunks maintained eagerly
	LightChunks   int // delta chunks deferred to the pending log
	DeferredCells int
	// MaterializedEntries counts pending entries replayed during this
	// batch (for any reason).
	MaterializedEntries int
	Promoted, Demoted   int
}

// ExecSeconds sums measured execution wall-clock across the eager part and
// every forced materialization — the number comparable to an all-eager
// batch's ExecSeconds.
func (r *AdaptiveReport) ExecSeconds() float64 {
	var s float64
	if r.Heavy != nil {
		s += r.Heavy.ExecSeconds
	}
	for _, d := range r.Drains {
		s += d.ExecSeconds
	}
	return s
}

// AdaptiveMaintainer wraps a Maintainer with the heavy-light split: per
// batch it reclassifies chunks from the decaying update-frequency window,
// maintains heavy chunks eagerly (with two layers of cross-batch scratch —
// a content-addressed join-state memo and a per-footprint plan cache), and
// defers light chunks to the catalog's pending-delta log, materializing
// them on first query touch, on conflict with incoming eager work, on
// pressure promotion, or when the staleness bound trips.
//
// Exactness: the final view is bit-identical to all-eager maintenance.
// Two ingredients make that hold with no restrictions on the workload:
//
//  1. Order within a chunk: pending entries replay grouped by original
//     batch seq, ascending, each seq as its own executor batch — so a
//     chunk's cells apply in arrival order even when a later batch
//     overwrites an earlier one's cells (the PTF replay pattern).
//  2. Order across chunks: deferral reorders updates only where that is
//     provably invisible. A single deferred entry under a never-repeated
//     chunk key commutes with everything — any pair it can form is picked
//     up from the committed base by whichever side applies second, exactly
//     once either way. Where a chunk key repeats (an incoming chunk
//     overwriting base or deferred cells, or a multi-entry overwrite chain
//     in the log), the conflict fence materializes the hazardous pending
//     chunks and their join-reachable pending closure per-seq before the
//     eager part runs, so every pair involving overwritten content is
//     derived in eager-schedule order (see fenceConflicts).
//
// Snapshot isolation needs no extra machinery: deferred cells live only in
// the log (never in live arrays), and a materialization is a normal staged
// commit that publishes its own epoch — a pinned reader either sees the
// epoch before it (no pending content) or after it (all of it).
//
// All entry points serialize on one mutex; concurrent queries only contend
// when a materialization is actually needed.
type AdaptiveMaintainer struct {
	mu  sync.Mutex
	m   *Maintainer
	cls *Classifier
	cfg AdaptiveConfig

	seq     int
	touches map[array.ChunkKey]int // query-driven materializations per class
	seen    map[array.ChunkKey]bool
}

// NewAdaptiveMaintainer wires the adaptive layer over a fresh Maintainer.
func NewAdaptiveMaintainer(cl *cluster.Cluster, def *view.Definition, planner Planner, params Params, cfg AdaptiveConfig) (*AdaptiveMaintainer, error) {
	m, err := NewMaintainer(cl, def, planner, params)
	if err != nil {
		return nil, err
	}
	if !def.SelfJoin() {
		return nil, fmt.Errorf("maintain: adaptive maintenance supports self-join views only")
	}
	cls := &Classifier{
		HeavyThreshold: cfg.HeavyThreshold,
		TopK:           cfg.TopK,
		Hysteresis:     cfg.Hysteresis,
		Project:        cfg.Project,
	}
	if err := cls.Validate(); err != nil {
		return nil, err
	}
	m.memo = NewJoinMemo(cfg.MemoCap)
	m.scratch = NewPlanScratch(0)
	return &AdaptiveMaintainer{
		m:       m,
		cls:     cls,
		cfg:     cfg,
		touches: make(map[array.ChunkKey]int),
		seen:    make(map[array.ChunkKey]bool),
	}, nil
}

// Inner exposes the wrapped eager maintainer.
func (a *AdaptiveMaintainer) Inner() *Maintainer { return a.m }

// Classifier exposes the heavy-light classifier (for the stream router and
// tests).
func (a *AdaptiveMaintainer) Classifier() *Classifier { return a.cls }

// Memo exposes the shared join-state cache.
func (a *AdaptiveMaintainer) Memo() *JoinMemo { return a.m.memo }

func (a *AdaptiveMaintainer) pending() *cluster.PendingLog {
	return a.m.cl.Catalog().Pending()
}

// Observe records a batch's delta chunk keys into the classification
// window and reclassifies, without maintaining anything. The streaming
// graph calls this per micro-batch: the pipelined path maintains every
// chunk eagerly, but observing keeps the classifier learning (and the
// router's drift weighting current) across both paths.
func (a *AdaptiveMaintainer) Observe(keys []array.ChunkKey) {
	a.mu.Lock()
	defer a.mu.Unlock()
	classes := make([]array.ChunkKey, len(keys))
	for i, k := range keys {
		classes[i] = a.cls.ProjectKey(k)
		a.seen[classes[i]] = true
	}
	a.m.history.RecordUpdates(classes)
	a.cls.Reclassify(a.m.history.UpdateScores(a.m.params.Decay))
	a.publishGauges()
}

// IsHeavy reports the current classification of a chunk key. Safe for
// concurrent use (the stream router reads it while batches apply).
func (a *AdaptiveMaintainer) IsHeavy(k array.ChunkKey) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cls.IsHeavy(k)
}

// ApplyBatch adaptively maintains the view under a batch of insertions.
func (a *AdaptiveMaintainer) ApplyBatch(delta *array.Array) (*AdaptiveReport, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := &AdaptiveReport{}
	a.seq++
	seq := a.seq

	// Observe and reclassify: every delta chunk counts toward its class's
	// update frequency regardless of which path will handle it.
	keys := delta.ChunkKeys()
	classes := make([]array.ChunkKey, len(keys))
	for i, k := range keys {
		classes[i] = a.cls.ProjectKey(k)
		a.seen[classes[i]] = true
	}
	a.m.history.RecordUpdates(classes)
	rep.Promoted, rep.Demoted = a.cls.Reclassify(a.m.history.UpdateScores(a.m.params.Decay))

	// Split the batch. A chunk whose key already exists in the base (or in
	// the pending log) is routed eagerly regardless of its class score:
	// deferring an overwrite would immediately fence its whole join
	// neighborhood (see fenceConflicts), so the lazy path can only ever
	// profit on fresh chunk keys — and keeping replayed chunks eager keeps
	// the eager footprint reproducible, which is what lets the plan scratch
	// and the join memo hit on replay workloads.
	heavy := array.New(delta.Schema())
	var light []*array.Chunk
	cat := a.m.cl.Catalog()
	baseName := a.m.def.Alpha.Name
	delta.EachChunk(func(c *array.Chunk) bool {
		_, inBase := cat.Home(baseName, c.Key())
		if !inBase {
			if n, _ := a.pending().EntriesFor(c.Key()); n > 0 {
				inBase = true
			}
		}
		if inBase || a.cls.IsHeavy(c.Key()) {
			heavy.PutChunk(c)
			rep.HeavyChunks++
		} else {
			light = append(light, c)
			rep.LightChunks++
			rep.DeferredCells += c.NumCells()
		}
		return true
	})

	// Conflict fence: every pending chunk join-reachable from the eager
	// part (closure included) must apply no later than the eager part so
	// cross-chunk pair order matches the eager schedule. When the whole
	// conflicted closure is chunk-disjoint — from the incoming batch and
	// internally — it is folded into the eager batch itself (disjoint
	// inserts commute, and the combined delta×delta join derives exactly
	// the cross-batch pairs the sequential schedule would); only closures
	// with repeated chunk keys, where overwrite order is load-bearing, pay
	// for separate per-seq pre-applies.
	// The fence runs first, against the pre-batch pending log only; the
	// batch's own deferred deltas then enter the log *before* the eager
	// part runs, so the eager part's single retiring commit barrier
	// snapshots the whole input batch atomically — heavy chunks folded
	// into the stores, light chunks in the pending log. Appending after
	// the eager commit (the old order) left a crash window between the two
	// barriers of one input batch in which the lights were silently lost.
	var folded []cluster.PendingEntry
	if rep.HeavyChunks > 0 {
		var err error
		if folded, err = a.fenceConflicts(rep, heavy); err != nil {
			return nil, err
		}
	}
	epoch := a.m.cl.Epochs().Current()
	for _, c := range light {
		a.pending().Append(cluster.PendingEntry{Seq: seq, Key: c.Key(), Chunk: c.Clone(), Epoch: epoch})
	}
	if a.cfg.Counters != nil {
		a.cfg.Counters.Deferred.Add(int64(len(light)))
	}
	// takeLight undoes the appends when the batch fails: the keys were
	// fresh, never pending before, so Take removes exactly them — a failed
	// batch leaves the deferred state exactly as it found it.
	takeLight := func() {
		if len(light) == 0 {
			return
		}
		lightKeys := make([]array.ChunkKey, len(light))
		for i, c := range light {
			lightKeys[i] = c.Key()
		}
		a.pending().Take(lightKeys)
		if a.cfg.Counters != nil {
			a.cfg.Counters.Deferred.Add(-int64(len(light)))
		}
	}
	if rep.HeavyChunks > 0 {
		hr, err := a.m.apply(heavy, nil, false, false, true)
		if err != nil {
			// The eager part rolled back; the batch's own light appends come
			// out of the log, and the folded pending entries that rode in
			// the eager part go back into it.
			takeLight()
			if len(folded) > 0 {
				a.pending().Restore(folded)
				if a.cfg.Counters != nil {
					a.cfg.Counters.Drained.Add(-int64(len(folded)))
				}
			}
			return nil, err
		}
		rep.Heavy = hr
	} else if len(light) > 0 && a.m.cl.Durable() != nil {
		// All-light batch: nothing commits eagerly, so the appends need
		// their own retiring barrier before the batch is acked.
		if err := durableCommit(a.m.cl, true); err != nil {
			takeLight()
			return nil, err
		}
	}

	// Pressure promotion: a light class whose chunks pile up pending
	// entries is evidently not cold — promote it and clear its backlog.
	if a.cfg.PromoteEntries > 0 {
		perClass := make(map[array.ChunkKey]int)
		var hot []array.ChunkKey
		for _, k := range a.pending().Keys() {
			n, _ := a.pending().EntriesFor(k)
			cls := a.cls.ProjectKey(k)
			perClass[cls] += n
			if perClass[cls] >= a.cfg.PromoteEntries && a.cls.Promote(cls) {
				rep.Promoted++
				hot = append(hot, k)
			}
		}
		if len(hot) > 0 {
			if err := a.materializeKeys(rep, hot); err != nil {
				return nil, err
			}
		}
	}

	// Staleness-debt drainer: bound how far behind the lazy path may lag.
	if err := a.drainDebt(rep); err != nil {
		return nil, err
	}
	a.publishGauges()
	return rep, nil
}

// ApplyDelete adaptively maintains the view under a batch of deletions.
// Deletions retract against materialized content (view.SubsetOf validates
// cell-by-cell), so all pending deltas are materialized first and the
// deletion itself always runs eagerly.
func (a *AdaptiveMaintainer) ApplyDelete(del *array.Array) (*AdaptiveReport, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := &AdaptiveReport{}
	a.seq++
	classes := make([]array.ChunkKey, 0, del.NumChunks())
	for _, k := range del.ChunkKeys() {
		classes = append(classes, a.cls.ProjectKey(k))
		a.seen[a.cls.ProjectKey(k)] = true
	}
	a.m.history.RecordUpdates(classes)
	rep.Promoted, rep.Demoted = a.cls.Reclassify(a.m.history.UpdateScores(a.m.params.Decay))
	if err := a.materializeKeys(rep, a.pending().Keys()); err != nil {
		return nil, err
	}
	hr, err := a.m.apply(del, nil, true, false, true)
	if err != nil {
		return nil, err
	}
	rep.Heavy = hr
	rep.HeavyChunks = del.NumChunks()
	a.publishGauges()
	return rep, nil
}

// EnsureFresh materializes every outstanding pending delta — the query
// path's lazy hook. Serving gathers the whole view per answer, so any
// pending chunk anywhere could contribute to the result; freshness is
// all-or-nothing there. It returns quickly when the log is empty.
func (a *AdaptiveMaintainer) EnsureFresh(ctx context.Context) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := a.pending().Keys()
	if len(keys) == 0 {
		return nil
	}
	rep := &AdaptiveReport{}
	err := a.materializeKeys(rep, keys)
	if err == nil {
		if a.cfg.Counters != nil {
			a.cfg.Counters.LazyMats.Add(int64(rep.MaterializedEntries))
			// materializeKeys booked them as drains; reclassify as lazy.
			a.cfg.Counters.Drained.Add(-int64(rep.MaterializedEntries))
		}
		a.noteTouches(keys, rep)
	}
	a.publishGauges()
	return err
}

// EnsureFreshRegion materializes only the pending chunks whose region
// intersects r or its predicate reach (plus their reachable closure) — the
// partial-gather form for callers that read a bounded region rather than
// the whole view.
func (a *AdaptiveMaintainer) EnsureFreshRegion(ctx context.Context, r array.Region) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	schema := a.m.cl.Catalog().Schema(a.m.def.Alpha.Name)
	if schema == nil {
		return fmt.Errorf("maintain: base array %q not registered", a.m.def.Alpha.Name)
	}
	pred := a.m.def.Pred
	reach := pred.ReachRegion(r)
	var keys []array.ChunkKey
	for _, k := range a.pending().Keys() {
		kr := schema.ChunkRegion(k.Coord())
		if _, ok := kr.Intersect(r); ok {
			keys = append(keys, k)
			continue
		}
		if _, ok := kr.Intersect(reach); ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	rep := &AdaptiveReport{}
	err := a.materializeKeys(rep, keys)
	if err == nil {
		if a.cfg.Counters != nil {
			a.cfg.Counters.LazyMats.Add(int64(rep.MaterializedEntries))
			a.cfg.Counters.Drained.Add(-int64(rep.MaterializedEntries))
		}
		a.noteTouches(keys, rep)
	}
	a.publishGauges()
	return err
}

// Drain materializes the entire pending log (shutdown / end-of-run).
func (a *AdaptiveMaintainer) Drain() (*AdaptiveReport, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := &AdaptiveReport{}
	err := a.materializeKeys(rep, a.pending().Keys())
	a.publishGauges()
	return rep, err
}

// noteTouches counts query-driven materializations per class and promotes
// classes queried repeatedly — a chunk that is cold to writes but hot to
// reads should not keep paying the materialization latency.
func (a *AdaptiveMaintainer) noteTouches(keys []array.ChunkKey, rep *AdaptiveReport) {
	if a.cfg.PromoteTouches <= 0 {
		return
	}
	for _, k := range keys {
		cls := a.cls.ProjectKey(k)
		a.touches[cls]++
		if a.touches[cls] >= a.cfg.PromoteTouches && a.cls.Promote(cls) {
			rep.Promoted++
		}
	}
}

// fenceConflicts resolves the conflict fence for an incoming eager batch.
// Fencing is needed only where chunk-key overwrites make apply order
// load-bearing: a pending chunk with a single deferred entry whose key
// collides with nothing always commutes with the incoming batch (for any
// pair the two can form, whichever side applies second picks the pair up
// from the committed base — it is counted exactly once either way). Order
// matters only around overwrites, where the earlier content must have
// joined before the later content replaces it:
//
//   - an incoming chunk whose key already exists in the base (or in the
//     pending log) overwrites cells, so every pending chunk it can pair
//     with must materialize first;
//   - a pending chunk with multiple deferred entries is an overwrite chain
//     itself, so it must materialize before any incoming chunk it can pair
//     with.
//
// The risky set seeds a transitive closure over the pending log (pending
// chunks reachable from an overwrite chain carry the same hazard one hop
// out), which is materialized per-seq ahead of the batch. Fresh-slab
// insert-only workloads — where every chunk key is new — never trigger the
// fence at all, which is what lets their deferrals survive to a coalesced
// drain.
// The returned entries are the ones folded into heavy: they have been taken
// from the pending log and now ride the eager batch, so if that batch fails
// the caller must Restore them.
func (a *AdaptiveMaintainer) fenceConflicts(rep *AdaptiveReport, heavy *array.Array) ([]cluster.PendingEntry, error) {
	incoming := heavy.ChunkKeys()
	pendKeys := a.pending().Keys()
	if len(pendKeys) == 0 {
		return nil, nil
	}
	cat := a.m.cl.Catalog()
	baseName := a.m.def.Alpha.Name
	schema := cat.Schema(baseName)
	pred := a.m.def.Pred
	regionOf := func(k array.ChunkKey) array.Region { return schema.ChunkRegion(k.Coord()) }
	reachable := func(x, y array.ChunkKey) bool {
		xr, yr := regionOf(x), regionOf(y)
		return pred.PairChunks(xr, yr) || pred.PairChunks(yr, xr)
	}

	pendSet := make(map[array.ChunkKey]bool, len(pendKeys))
	for _, pk := range pendKeys {
		pendSet[pk] = true
	}
	// risky incoming chunks can overwrite committed or deferred cells.
	var risky []array.ChunkKey
	for _, ik := range incoming {
		if pendSet[ik] {
			risky = append(risky, ik)
			continue
		}
		if _, ok := cat.Home(baseName, ik); ok {
			risky = append(risky, ik)
		}
	}

	// Strict hazards need their pending cells committed in original seq
	// order BEFORE the batch: a pending key the incoming batch overwrites
	// (the old cells must join the world before the new cells replace
	// them), and any multi-entry overwrite chain the batch can pair with —
	// plus, for chains only, their join-reachable pending closure, which
	// must interleave with the chain's intermediate states in seq order.
	// Single-entry hazards need no closure: their neighbors commit this
	// batch via the fold below, which derives the same pairs. (With the
	// overwrite-eager routing in ApplyBatch, chains cannot actually form —
	// a repeat of a pending key runs eagerly and fences first — so the
	// chain arm is belt-and-braces.)
	strict := make(map[array.ChunkKey]bool)
	for _, ik := range incoming {
		if pendSet[ik] {
			strict[ik] = true
		}
	}
	chains := make(map[array.ChunkKey]bool)
	for _, pk := range pendKeys {
		if n, _ := a.pending().EntriesFor(pk); n > 1 {
			for _, ik := range incoming {
				if pk == ik || reachable(pk, ik) {
					chains[pk] = true
					strict[pk] = true
					break
				}
			}
		}
	}
	for grew := len(chains) > 0; grew; {
		grew = false
		for _, pk := range pendKeys {
			if chains[pk] {
				continue
			}
			for ck := range chains {
				if reachable(pk, ck) {
					chains[pk] = true
					strict[pk] = true
					grew = true
					break
				}
			}
		}
	}
	if len(strict) > 0 {
		keys := make([]array.ChunkKey, 0, len(strict))
		for _, pk := range pendKeys { // preserve deterministic order
			if strict[pk] {
				keys = append(keys, pk)
			}
		}
		if err := a.materializeKeys(rep, keys); err != nil {
			return nil, err
		}
	}

	// The remaining conflicted chunks — single-entry pending keys the risky
	// incoming (or just-materialized strict) chunks can pair with — fold
	// into the eager batch itself instead of paying a separate apply: every
	// key involved is distinct (disjoint inserts commute cell-wise), the
	// combined delta×delta join derives exactly the cross-batch pairs the
	// sequential schedule would, and a folded chunk joins a strict chunk's
	// pre-overwrite content through the base (the strict pre-apply
	// committed it) exactly as the eager schedule orders them. Base-side
	// pairs see the same base either way: any base chunk reachable from a
	// pending single is provably un-overwritten since its deferral — an
	// overwrite would have fenced it then.
	var fold []array.ChunkKey
	for _, pk := range pendKeys {
		if strict[pk] {
			continue
		}
		for _, ik := range risky {
			if reachable(pk, ik) {
				fold = append(fold, pk)
				break
			}
		}
	}
	if len(fold) == 0 {
		return nil, nil
	}
	entries := a.pending().Take(fold)
	for _, e := range entries {
		heavy.PutChunk(e.Chunk.Clone())
		rep.HeavyChunks++
	}
	rep.MaterializedEntries += len(entries)
	if a.cfg.Counters != nil {
		a.cfg.Counters.Drained.Add(int64(len(entries)))
	}
	return entries, nil
}

// materializeKeys replays all pending entries of the given chunk keys
// through the eager executor, in original batch seq order. Consecutive seq
// groups are coalesced into one executor batch while their chunk keys stay
// pairwise distinct: chunk-disjoint groups cannot overwrite each other's
// cells, and a combined batch derives exactly the pair contributions the
// per-seq schedule would (the combined delta×delta join covers the
// cross-seq pairs the later seq would otherwise pick up from the updated
// base). A repeated chunk key — the replay pattern, where apply order is
// load-bearing — cuts the group, falling back to per-seq replay. A failed
// replay restores the untaken entries to the log and returns the error
// (the executor already rolled the failed batch back).
func (a *AdaptiveMaintainer) materializeKeys(rep *AdaptiveReport, keys []array.ChunkKey) error {
	if len(keys) == 0 {
		return nil
	}
	entries := a.pending().Take(keys)
	for len(entries) > 0 {
		j := 0
		batch := array.New(a.m.cl.Catalog().Schema(a.m.def.Alpha.Name))
		inBatch := make(map[array.ChunkKey]bool)
		for ; j < len(entries); j++ {
			if entries[j].Seq != entries[0].Seq {
				// Next seq group: include it only if it is chunk-disjoint
				// from everything already coalesced.
				end, ok := j, true
				for ; end < len(entries) && entries[end].Seq == entries[j].Seq; end++ {
					if inBatch[entries[end].Key] {
						ok = false
					}
				}
				if !ok {
					break
				}
			}
			inBatch[entries[j].Key] = true
			batch.PutChunk(entries[j].Chunk.Clone())
		}
		group, rest := entries[:j], entries[j:]
		// The not-yet-applied remainder goes back into the log across the
		// apply, so the apply's durable commit barrier snapshots it: a crash
		// between coalesced applies then recovers to applied-prefix +
		// still-pending remainder instead of losing the remainder.
		if len(rest) > 0 {
			a.pending().Restore(rest)
		}
		dr, err := a.m.apply(batch, nil, false, true, false)
		if err != nil {
			// This seq rolled back; put it back too (the rest already is).
			a.pending().Restore(group)
			return err
		}
		rep.Drains = append(rep.Drains, dr)
		rep.MaterializedEntries += len(group)
		if a.cfg.Counters != nil {
			a.cfg.Counters.Drained.Add(int64(len(group)))
		}
		if len(rest) == 0 {
			break
		}
		restKeys := make([]array.ChunkKey, 0, len(rest))
		seen := make(map[array.ChunkKey]bool)
		for _, e := range rest {
			if !seen[e.Key] {
				seen[e.Key] = true
				restKeys = append(restKeys, e.Key)
			}
		}
		entries = a.pending().Take(restKeys)
	}
	return nil
}

// drainDebt enforces the staleness bounds: once the pending log holds more
// deferred batches (or cells) than allowed, the whole log is flushed in one
// coalesced materialization. Flushing everything — rather than evicting the
// oldest batch each time — keeps the drainer off the per-batch critical
// path in steady state: one amortized apply every MaxPendingBatches batches
// instead of one every batch.
func (a *AdaptiveMaintainer) drainDebt(rep *AdaptiveReport) error {
	if a.cfg.MaxPendingBatches <= 0 && a.cfg.MaxPendingCells <= 0 {
		return nil
	}
	st := a.pending().Stats()
	over := (a.cfg.MaxPendingBatches > 0 && st.Batches > a.cfg.MaxPendingBatches) ||
		(a.cfg.MaxPendingCells > 0 && st.Cells > a.cfg.MaxPendingCells)
	if !over {
		return nil
	}
	return a.materializeKeys(rep, a.pending().Keys())
}

// publishGauges refreshes the gauge-style counters from current state.
func (a *AdaptiveMaintainer) publishGauges() {
	c := a.cfg.Counters
	if c == nil {
		return
	}
	st := a.pending().Stats()
	heavy := a.cls.HeavyCount()
	c.HeavyChunks.Store(int64(heavy))
	c.LightChunks.Store(int64(len(a.seen) - heavy))
	c.PendingChunks.Store(int64(st.Chunks))
	c.PendingCells.Store(int64(st.Cells))
	promos, demos := a.cls.Flips()
	c.Promotions.Store(promos)
	c.Demotions.Store(demos)
	ms := a.m.memo.Stats()
	c.MemoHits.Store(ms.Hits)
	c.MemoMisses.Store(ms.Misses)
}

// Stats snapshots the adaptive layer's state.
func (a *AdaptiveMaintainer) Stats() AdaptiveStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	promos, demos := a.cls.Flips()
	return AdaptiveStats{
		HeavyClasses: a.cls.HeavyCount(),
		SeenClasses:  len(a.seen),
		Promotions:   promos,
		Demotions:    demos,
		Pending:      a.pending().Stats(),
		Memo:         a.m.memo.Stats(),
		Plans:        a.m.scratch.Stats(),
	}
}

// AdaptiveStats is a point-in-time view of the adaptive layer.
type AdaptiveStats struct {
	HeavyClasses int
	SeenClasses  int
	Promotions   int64
	Demotions    int64
	Pending      cluster.PendingStats
	Memo         JoinMemoStats
	Plans        PlanScratchStats
}
