package maintain

import (
	"fmt"
	"math"
	"sort"

	"github.com/arrayview/arrayview/internal/array"
)

// Classifier splits base-array chunks into heavy (frequently updated,
// maintained eagerly) and light (rarely updated, deferred to the pending
// log) by scoring update frequency over the decaying history window —
// heavy-light partitioning in the sense of Abo-Khamis et al., applied to
// array chunks instead of relation tuples.
//
// Classification is keyed by *projected* chunk identity: PTF batches land
// in a fresh time slab every night, so a raw chunk key never repeats and
// every chunk would look cold. Projecting out the time dimension maps all
// slabs of one sky pointing onto one identity, which is the thing whose
// update frequency is actually skewed. Project is identity when nil.
//
// Reclassification runs once per batch with hysteresis: a light class is
// promoted when its score reaches HeavyThreshold, but a heavy class is
// only demoted when its score falls below HeavyThreshold*Hysteresis, so
// classes near the boundary don't flap between paths batch over batch.
type Classifier struct {
	// HeavyThreshold is the absolute update-frequency score (Σ Decay^l
	// over window batches touching the class) at or above which a class
	// is heavy. Ignored when TopK > 0.
	HeavyThreshold float64
	// TopK, when in (0, 1], switches to relative mode: the ⌈TopK·n⌉
	// highest-scoring classes are heavy, the rest light. The effective
	// threshold is recomputed each batch from the score distribution.
	TopK float64
	// Hysteresis in [0, 1] scales the demotion threshold relative to the
	// promotion threshold. 1 disables hysteresis; the default 0.5 means a
	// heavy class keeps its status until its score halves below the bar.
	Hysteresis float64
	// Project maps a raw chunk key to its classification identity.
	Project func(array.ChunkKey) array.ChunkKey

	heavy map[array.ChunkKey]bool

	promotions, demotions int64
}

// NewClassifier returns a classifier with the given absolute threshold,
// default hysteresis 0.5, and identity projection.
func NewClassifier(threshold float64) *Classifier {
	return &Classifier{HeavyThreshold: threshold, Hysteresis: 0.5}
}

// Validate reports whether the classifier's knobs are usable.
func (c *Classifier) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"heavy threshold", c.HeavyThreshold}, {"top-k", c.TopK}, {"hysteresis", c.Hysteresis}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("maintain: classifier %s %v is not finite", f.name, f.v)
		}
	}
	if c.HeavyThreshold < 0 {
		return fmt.Errorf("maintain: negative classifier threshold %v", c.HeavyThreshold)
	}
	if c.TopK < 0 || c.TopK > 1 {
		return fmt.Errorf("maintain: classifier top-k %v outside [0, 1]", c.TopK)
	}
	if c.Hysteresis < 0 || c.Hysteresis > 1 {
		return fmt.Errorf("maintain: classifier hysteresis %v outside [0, 1]", c.Hysteresis)
	}
	return nil
}

// ProjectKey maps a raw chunk key to its classification identity.
func (c *Classifier) ProjectKey(k array.ChunkKey) array.ChunkKey {
	if c.Project == nil {
		return k
	}
	return c.Project(k)
}

// IsHeavy reports whether the (raw) chunk key currently classifies heavy.
func (c *Classifier) IsHeavy(k array.ChunkKey) bool {
	return c.heavy[c.ProjectKey(k)]
}

// Reclassify recomputes the heavy set from the given scores (keyed by
// projected identity, as returned by History.UpdateScores over projected
// keys) and returns how many classes were promoted and demoted. Classes
// absent from scores have score 0: they are demoted if heavy (subject to
// hysteresis with a 0 score, i.e. always, unless the demotion bar is 0).
func (c *Classifier) Reclassify(scores map[array.ChunkKey]float64) (promoted, demoted int) {
	up := c.HeavyThreshold
	if c.TopK > 0 {
		up = c.topKThreshold(scores)
	}
	down := up * c.Hysteresis
	if c.heavy == nil {
		c.heavy = make(map[array.ChunkKey]bool)
	}
	for k, s := range scores {
		if !c.heavy[k] && s >= up {
			c.heavy[k] = true
			promoted++
		}
	}
	for k := range c.heavy {
		if s := scores[k]; s < down {
			delete(c.heavy, k)
			demoted++
		}
	}
	c.promotions += int64(promoted)
	c.demotions += int64(demoted)
	return promoted, demoted
}

// topKThreshold returns the score of the ⌈TopK·n⌉-th ranked class — the
// effective promotion bar in relative mode. With no scores yet, it returns
// +Inf so nothing is heavy.
func (c *Classifier) topKThreshold(scores map[array.ChunkKey]float64) float64 {
	if len(scores) == 0 {
		return math.Inf(1)
	}
	ranked := make([]float64, 0, len(scores))
	for _, s := range scores {
		ranked = append(ranked, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ranked)))
	k := int(math.Ceil(c.TopK * float64(len(ranked))))
	if k < 1 {
		k = 1
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[k-1]
}

// Promote force-promotes a class (by projected key) outside the scoring
// cycle — used when a light chunk's pending log or query-touch rate
// crosses the pressure threshold. Returns false if it was already heavy.
func (c *Classifier) Promote(k array.ChunkKey) bool {
	if c.heavy == nil {
		c.heavy = make(map[array.ChunkKey]bool)
	}
	if c.heavy[k] {
		return false
	}
	c.heavy[k] = true
	c.promotions++
	return true
}

// HeavyCount returns the current number of heavy classes.
func (c *Classifier) HeavyCount() int { return len(c.heavy) }

// Flips returns the cumulative promotion and demotion counts.
func (c *Classifier) Flips() (promotions, demotions int64) {
	return c.promotions, c.demotions
}

// DropDims returns a projection that zeroes the given dimensions of the
// chunk coordinate — e.g. DropDims(0) collapses PTF's nightly time slabs
// so chunks are classified by sky pointing alone.
func DropDims(dims ...int) func(array.ChunkKey) array.ChunkKey {
	return func(k array.ChunkKey) array.ChunkKey {
		cc := k.Coord()
		for _, d := range dims {
			if d >= 0 && d < len(cc) {
				cc[d] = 0
			}
		}
		return cc.Key()
	}
}
