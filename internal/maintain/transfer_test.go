package maintain

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/storage"
	"github.com/arrayview/arrayview/internal/view"
)

// delayFabric wraps a fabric with fixed latency on Put — the shipping leg of
// a transfer — and counts the Puts it serves, so tests can observe both
// transfer overlap and ship deduplication.
type delayFabric struct {
	cluster.Fabric
	delay time.Duration
	puts  atomic.Int64
}

func (f *delayFabric) Put(node int, arrayName string, ch *array.Chunk) error {
	time.Sleep(f.delay)
	f.puts.Add(1)
	return f.Fabric.Put(node, arrayName, ch)
}

func newDelayFabric(nodes int, delay time.Duration) *delayFabric {
	stores := make([]*storage.Store, nodes)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	return &delayFabric{Fabric: cluster.NewLocalFabric(stores), delay: delay}
}

// TestRunTransfersChainedWaves checks the wave scheduler: a transfer whose
// source replica is created by an earlier transfer of the same plan must
// land after it, and duplicated ships collapse to one Put.
func TestRunTransfersChainedWaves(t *testing.T) {
	df := newDelayFabric(3, 0)
	ctx, cl := stageFig1BatchWith(t, cluster.WithFabric(df))
	keys := cl.Catalog().Keys("A")
	if len(keys) == 0 {
		t.Fatal("no base chunks staged")
	}
	k := keys[0]
	home, _ := cl.Catalog().Home("A", k)
	a, b := (home+1)%3, (home+2)%3
	ref := view.ChunkRef{Array: "A", Key: k}

	p := NewPlan("test", 0)
	p.Transfers = []Transfer{
		{Ref: ref, From: home, To: a},
		{Ref: ref, From: home, To: a}, // duplicate ship: must be elided
		{Ref: ref, From: a, To: b},    // chained: source created above
	}
	df.puts.Store(0)
	if err := runTransfers(ctx, p, nil); err != nil {
		t.Fatal(err)
	}
	for _, node := range []int{a, b} {
		resident, err := cl.HasAt(node, "A", k)
		if err != nil || !resident {
			t.Fatalf("chunk %v not resident on node %d after transfers (err %v)", k, node, err)
		}
	}
	if got := df.puts.Load(); got != 2 {
		t.Errorf("fabric served %d Puts, want 2 (dedup + chain)", got)
	}
}

// TestRunTransfersOverlap is the phase-level acceptance check: with ≥4
// transfers in a batch on a slow fabric, the concurrent transfer phase must
// finish well under the serial sum of the per-ship latencies.
func TestRunTransfersOverlap(t *testing.T) {
	const delay = 25 * time.Millisecond
	df := newDelayFabric(3, delay)
	ctx, cl := stageFig1BatchWith(t, cluster.WithFabric(df))
	ctx.Trace = obs.NewTrace()

	p := NewPlan("test", 0)
	for _, k := range cl.Catalog().Keys("A") {
		home, _ := cl.Catalog().Home("A", k)
		ref := view.ChunkRef{Array: "A", Key: k}
		p.Transfers = append(p.Transfers,
			Transfer{Ref: ref, From: home, To: (home + 1) % 3},
			Transfer{Ref: ref, From: home, To: (home + 2) % 3},
		)
	}
	if len(p.Transfers) < 4 {
		t.Fatalf("need at least 4 transfers for the overlap check, have %d", len(p.Transfers))
	}

	stop := ctx.Trace.Start(obs.PhaseTransfer)
	err := runTransfers(ctx, p, nil)
	stop()
	if err != nil {
		t.Fatal(err)
	}
	serial := time.Duration(len(p.Transfers)) * delay
	got := time.Duration(ctx.Trace.PhaseSeconds(obs.PhaseTransfer) * float64(time.Second))
	// Two workers per node on three nodes: the span must beat the serial
	// sum by a wide margin even on a loaded machine.
	if limit := serial * 11 / 20; got >= limit {
		t.Errorf("transfer span %v, want < %v (serial sum %v over %d ships)", got, limit, serial, len(p.Transfers))
	}
	for _, tr := range p.Transfers {
		resident, err := cl.HasAt(tr.To, tr.Ref.Array, tr.Ref.Key)
		if err != nil || !resident {
			t.Fatalf("chunk %v not resident on node %d (err %v)", tr.Ref.Key, tr.To, err)
		}
	}
}

// TestExecuteParallelPhasesEndToEnd runs full maintenance batches over the
// delay fabric with every planner, exercising the concurrent transfer and
// cleanup phases end to end (and under -race, their synchronization).
func TestExecuteParallelPhasesEndToEnd(t *testing.T) {
	for _, planner := range []Planner{Baseline{}, Differential{}, Reassign{}} {
		t.Run(planner.Name(), func(t *testing.T) {
			df := newDelayFabric(3, time.Millisecond)
			ctx, _ := stageFig1BatchWith(t, cluster.WithFabric(df))
			ctx.Trace = obs.NewTrace()
			p, err := planner.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Execute(ctx, p); err != nil {
				t.Fatal(err)
			}
			if len(p.Transfers) > 0 && ctx.Trace.PhaseSeconds(obs.PhaseTransfer) <= 0 {
				t.Error("transfer phase left no span in the trace")
			}
			if ctx.Trace.PhaseSeconds(obs.PhaseCleanup) <= 0 {
				t.Error("cleanup phase left no span in the trace")
			}
		})
	}
}

// TestCandidateWorkers pins the fan-out clamp of the parallel candidate
// loop: never more workers than candidates, never fewer than one.
func TestCandidateWorkers(t *testing.T) {
	if got := candidateWorkers(1); got != 1 {
		t.Errorf("candidateWorkers(1) = %d, want 1", got)
	}
	if got := candidateWorkers(0); got != 1 {
		t.Errorf("candidateWorkers(0) = %d, want 1", got)
	}
	for _, n := range []int{1, 2, 3, 16, 1000} {
		if got := candidateWorkers(n); got > n || got < 1 {
			t.Errorf("candidateWorkers(%d) = %d, want within [1, %d]", n, got, n)
		}
	}
}
