package maintain

import (
	"sync"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/view"
)

// memoKey identifies one chunk-pair join by the *content* of its inputs:
// the canonical content hashes of both chunks, the contribution sign, and
// whether both orientations were evaluated. Content addressing (rather
// than chunk keys) is what makes the cache survive across batches and
// across the per-batch "#sdeltaN" delta namespaces: a heavy chunk that a
// later batch overwrites with identical content — the PTF replay pattern —
// hits regardless of which slab or staging name it travels under, and any
// real mutation changes the hash, so invalidation is structural rather
// than tracked.
type memoKey struct {
	hp, hq uint64
	sign   float64
	both   bool
}

type memoEntry struct {
	key   memoKey
	parts []*array.Chunk // deep clones; never handed out directly
	bytes int64
}

// JoinMemo caches the differential partials of heavy chunk-pair joins
// across batches. Execute consults it per unit: a hit skips the join
// kernel (and, on pushdown fabrics, the remote execution round-trip)
// entirely and stages clones of the cached partials. Entries are cloned on
// store and on hit because the staging path's MergeAt consumes its source
// chunk; a clone of a small differential partial is far cheaper than the
// pair join it replaces.
//
// Admission is two-touch: a pair result is only cached once its key has
// missed before. Workloads whose content never repeats (fresh time slabs,
// uniform scatter) therefore never pay the store-clone cost — the dominant
// memo overhead — while replay workloads give up just one extra miss per
// pair before hitting.
//
// The memo is safe for concurrent use by the join-stage worker pools.
type JoinMemo struct {
	mu      sync.Mutex
	entries map[memoKey]*memoEntry
	order   []memoKey // FIFO eviction order
	cap     int

	missed map[memoKey]struct{} // two-touch admission set

	hits, misses, evictions int64
	bytes                   int64
}

// DefaultJoinMemoCap bounds the number of cached pair results; FIFO
// eviction keeps the footprint proportional to the recent heavy set.
const DefaultJoinMemoCap = 4096

// NewJoinMemo returns a memo holding at most cap pair results
// (DefaultJoinMemoCap if cap <= 0).
func NewJoinMemo(cap int) *JoinMemo {
	if cap <= 0 {
		cap = DefaultJoinMemoCap
	}
	return &JoinMemo{
		entries: make(map[memoKey]*memoEntry),
		missed:  make(map[memoKey]struct{}),
		cap:     cap,
	}
}

func clonePartials(parts []*array.Chunk) []*array.Chunk {
	out := make([]*array.Chunk, len(parts))
	for i, p := range parts {
		out[i] = p.Clone()
	}
	return out
}

// get returns clones of the cached partials for the key, if present.
func (m *JoinMemo) get(k memoKey) ([]*array.Chunk, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[k]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	return clonePartials(e.parts), true
}

// put stores clones of the partials under the key, evicting the oldest
// entry when at capacity. A key's first put only records it in the
// admission set; the clone-and-store happens on the second.
func (m *JoinMemo) put(k memoKey, parts []*array.Chunk) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[k]; ok {
		return
	}
	if _, ok := m.missed[k]; !ok {
		// Bound the admission set; resetting it merely delays admission of
		// live keys by one more miss.
		if len(m.missed) >= 4*m.cap {
			m.missed = make(map[memoKey]struct{})
		}
		m.missed[k] = struct{}{}
		return
	}
	delete(m.missed, k)
	for len(m.entries) >= m.cap && len(m.order) > 0 {
		old := m.order[0]
		m.order = m.order[1:]
		if e, ok := m.entries[old]; ok {
			m.bytes -= e.bytes
			delete(m.entries, old)
			m.evictions++
		}
	}
	e := &memoEntry{key: k, parts: clonePartials(parts)}
	for _, p := range e.parts {
		e.bytes += p.SizeBytes()
	}
	m.entries[k] = e
	m.order = append(m.order, k)
	m.bytes += e.bytes
}

// JoinMemoStats is a point-in-time snapshot of the memo counters.
type JoinMemoStats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats snapshots the memo's counters.
func (m *JoinMemo) Stats() JoinMemoStats {
	if m == nil {
		return JoinMemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return JoinMemoStats{
		Entries:   len(m.entries),
		Bytes:     m.bytes,
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
	}
}

// memoKeyFor builds the content-addressed key for a unit, or reports false
// when either input's content hash is not recorded in the catalog (e.g. a
// base chunk rewritten by a commit path that doesn't re-hash) — the join
// then simply runs uncached.
func memoKeyFor(ctx *Context, u view.Unit, sign float64) (memoKey, bool) {
	cat := ctx.Cluster.Catalog()
	hp, _, ok := cat.ChunkHash(u.P.Array, u.P.Key)
	if !ok {
		return memoKey{}, false
	}
	hq, _, ok := cat.ChunkHash(u.Q.Array, u.Q.Key)
	if !ok {
		return memoKey{}, false
	}
	return memoKey{hp: hp, hq: hq, sign: sign, both: u.BothDirections}, true
}
