package maintain

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
)

// Differential implements stage one of the heuristic — Algorithm 1,
// differential view computation: a randomized greedy pass over the chunk
// join pairs that places each join on the node minimizing the running
// max(network, CPU) objective, considering every node as a candidate (not
// just the chunks' current holders).
//
// As a standalone strategy it keeps view and array chunk assignment static
// (like the baseline), isolating the effect of join-plan optimization — the
// paper's "differential" method.
type Differential struct{}

// Name implements Planner.
func (Differential) Name() string { return "differential" }

// Plan implements Planner.
func (Differential) Plan(ctx *Context) (*Plan, error) {
	p, _, _ := planDifferential(ctx)
	// Static view homes and placement-assigned homes for new array chunks,
	// as in the baseline.
	assignStaticViewHomes(ctx, p)
	n := ctx.Cluster.NumNodes()
	for _, r := range ctx.DeltaRefs() {
		if !ctx.IsDelta(r) {
			continue
		}
		// Colliding chunks merge into their base incarnation; only brand-new
		// chunks need a static placement.
		if _, exists := ctx.Cluster.Catalog().Home(ctx.BaseNameFor(r.Array), r.Key); !exists {
			p.ArrayRehome[r] = ctx.ArrayPlacement.Place(r.Key, n)
		}
	}
	// Merging at static homes adds the shipping/merge state Algorithm 1
	// did not see; nothing else to decide.
	return p, nil
}

// planDifferential runs Algorithm 1 and returns the partially-filled plan
// (transfers and join sites), the running ledger state, and the holder
// tracker — stage two continues from both.
func planDifferential(ctx *Context) (*Plan, *cluster.Ledger, *holderTracker) {
	p := NewPlan("differential", len(ctx.Units))
	model := ctx.Model
	ledger := cluster.NewLedger(ctx.Cluster.NumNodes(), ctx.Model)
	holders := newHolderTracker(ctx, nil)

	// Line 2: iterate the chunk join pairs in random order (or, for the
	// ablation, largest pair first).
	order := make([]int, len(ctx.Units))
	for i := range order {
		order[i] = i
	}
	if ctx.Params.SortedPairOrder {
		sort.SliceStable(order, func(a, b int) bool {
			return ctx.PairBytes(ctx.Units[order[a]]) > ctx.PairBytes(ctx.Units[order[b]])
		})
	} else {
		ctx.Rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	}

	for _, i := range order {
		u := ctx.Units[i]
		dest := chooseJoinSite(ctx, ledger, holders, u, model)
		commitJoinSite(ctx, ledger, holders, u, dest, model)
		p.Transfers = append(p.Transfers, holders.ensure(u.P, dest)...)
		p.Transfers = append(p.Transfers, holders.ensure(u.Q, dest)...)
		p.JoinSite[i] = dest
	}
	return p, ledger, holders
}

// chooseJoinSite evaluates every node as the join site for unit u against
// the running ledger (Algorithm 1 lines 3-10) and returns the minimizer.
// Per Section 4.3, stage one solves the first line of Eq. 1 for z and x
// with the chunk assignment y fixed as S — so a candidate is charged
// co-location transfers, join CPU, and the merge-shipping term
// z_pqk·y_vj·B_pq·Tntwk toward the current (or statically-placed) homes of
// the affected view chunks. (The paper's Figure 7 walk-through shows only
// the first two terms because its example tracks no view chunks.)
func chooseJoinSite(ctx *Context, ledger *cluster.Ledger, holders *holderTracker, u view.Unit, model cluster.CostModel) int {
	n := ledger.NumNodes()
	if ctx.Params.ParallelCandidates && n >= parallelCandidateThreshold {
		return chooseJoinSiteParallel(ctx, ledger, holders, u, model)
	}
	extraNtwk := make([]float64, n)
	extraCPU := make([]float64, n)
	bestCost, bestLoad := 0.0, 0.0
	dest := -1
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			extraNtwk[k] = 0
			extraCPU[k] = 0
		}
		addJoinCharges(ctx, holders, u, j, model, extraNtwk, extraCPU)
		optNow := ledger.CostWith(extraNtwk, extraCPU)
		// The max objective is flat: many candidates leave the global max
		// untouched. Ties are broken by the smallest total added load, so
		// transfer- and shipping-free co-located sites win and placements
		// stay stable across correlated batches.
		load := sum(extraNtwk) + sum(extraCPU)
		if dest == -1 || optNow < bestCost || (optNow == bestCost && load < bestLoad) {
			bestCost = optNow
			bestLoad = load
			dest = j
		}
	}
	return dest
}

// parallelCandidateThreshold is the node count from which the candidate
// loop fans out to goroutines — the paper's "parallel processing of the
// inner loop over the nodes" for large clusters.
const parallelCandidateThreshold = 16

// chooseJoinSiteParallel evaluates all candidate nodes concurrently and
// reduces sequentially, preserving exactly the serial selection rule
// (minimum (cost, load), lowest node on full ties).
func chooseJoinSiteParallel(ctx *Context, ledger *cluster.Ledger, holders *holderTracker, u view.Unit, model cluster.CostModel) int {
	n := ledger.NumNodes()
	// Pre-warm every lazily-populated cache the candidate evaluation reads
	// (holder sets, origins, view home hints) so the fan-out is read-only.
	holders.originOf(u.P)
	holders.originOf(u.Q)
	holders.set(u.P)
	holders.set(u.Q)
	for _, v := range u.Views {
		ctx.ViewHomeHint(v)
	}
	costs := make([]float64, n)
	loads := make([]float64, n)
	var wg sync.WaitGroup
	workers := candidateWorkers(n)
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			extraNtwk := make([]float64, n)
			extraCPU := make([]float64, n)
			for {
				j := int(atomic.AddInt64(&next, 1))
				if j >= n {
					return
				}
				for k := 0; k < n; k++ {
					extraNtwk[k] = 0
					extraCPU[k] = 0
				}
				addJoinCharges(ctx, holders, u, j, model, extraNtwk, extraCPU)
				costs[j] = ledger.CostWith(extraNtwk, extraCPU)
				loads[j] = sum(extraNtwk) + sum(extraCPU)
			}
		}()
	}
	wg.Wait()
	dest := 0
	for j := 1; j < n; j++ {
		if costs[j] < costs[dest] || (costs[j] == costs[dest] && loads[j] < loads[dest]) {
			dest = j
		}
	}
	return dest
}

// candidateWorkers bounds the candidate-loop fan-out: never more goroutines
// than candidate nodes (spawning idle workers for small clusters is pure
// overhead) and never more than the scheduler can actually run.
func candidateWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// commitJoinSite applies the chosen site's charges to the ledger
// (Algorithm 1 lines 11-12).
func commitJoinSite(ctx *Context, ledger *cluster.Ledger, holders *holderTracker, u view.Unit, dest int, model cluster.CostModel) {
	n := ledger.NumNodes()
	extraNtwk := make([]float64, n)
	extraCPU := make([]float64, n)
	addJoinCharges(ctx, holders, u, dest, model, extraNtwk, extraCPU)
	ledger.Apply(extraNtwk, extraCPU)
}

// addJoinCharges accumulates the stage-one cost of joining u at node j:
// co-location transfers, join CPU (Algorithm 1 lines 6-7), and merge
// shipping toward the y = S view homes.
func addJoinCharges(ctx *Context, holders *holderTracker, u view.Unit, j int, model cluster.CostModel, extraNtwk, extraCPU []float64) {
	bpq := ctx.PairBytes(u)
	chargeColocation(ctx, holders, u, j, model, extraNtwk)
	extraCPU[j] += float64(bpq) * model.Tcpu
	ship := float64(bpq) * ctx.ResultScale
	for _, v := range u.Views {
		h := ctx.ViewHomeHint(v)
		if h != j {
			extraNtwk[j] += ship * model.Tntwk
			extraNtwk[h] += ship * model.Tntwk * model.ReceiveFactor
		}
		// Merge work lands at the y = S home; it is the same for every
		// candidate j but keeps the running ledger aligned with the full
		// objective.
		extraCPU[h] += float64(bpq) * model.Tcpu
	}
}

// chargeColocation accumulates into extraNtwk the transfer cost of making
// both chunks of u resident at node j (Algorithm 1 line 6, extended to
// charge the α-side chunk too — the paper's line 6 shows only q because its
// p is always a coordinator-staged delta, which sends for free). Charges
// originate at each chunk's original location S, matching the x_{i,S_i,j}
// variables.
func chargeColocation(ctx *Context, holders *holderTracker, u view.Unit, j int, model cluster.CostModel, extraNtwk []float64) {
	if !holders.has(u.P, j) {
		b := float64(ctx.SizeOf(u.P)) * model.Tntwk
		if src := holders.originOf(u.P); src != cluster.Coordinator {
			extraNtwk[src] += b
		}
		extraNtwk[j] += b * model.ReceiveFactor
	}
	if !holders.has(u.Q, j) {
		b := float64(ctx.SizeOf(u.Q)) * model.Tntwk
		if src := holders.originOf(u.Q); src != cluster.Coordinator {
			extraNtwk[src] += b
		}
		extraNtwk[j] += b * model.ReceiveFactor
	}
}
