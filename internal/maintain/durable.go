package maintain

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/cluster"
)

// retiringSink is the optional capability of a durable sink that tracks
// an applied input-batch cursor (implemented by wal.Durable). Kept as a
// local assertion so cluster.DurableSink stays wal-free.
type retiringSink interface {
	CommitBarrierRetire() error
}

// durableCommit drives the cluster's durable sink (if one is installed)
// through a commit barrier: every store mutation and catalog/pending change
// of the batch becomes the crash-recovery point. A barrier failure fails
// the batch — the caller aborts, restoring in-memory state, so memory never
// runs ahead of what a restart would recover. With retire set the barrier
// additionally advances the sink's applied input-batch cursor (see
// Context.RetireOnCommit).
func durableCommit(cl *cluster.Cluster, retire bool) error {
	d := cl.Durable()
	if d == nil {
		return nil
	}
	barrier := d.CommitBarrier
	if rs, ok := d.(retiringSink); ok && retire {
		barrier = rs.CommitBarrierRetire
	}
	if err := barrier(); err != nil {
		return fmt.Errorf("maintain: durable commit barrier: %w", err)
	}
	return nil
}

// durableRollback marks the restored pre-batch state as the recovery point
// after an abort. Best-effort like the rest of rollback: if the disk is
// failing too, recovery replays from the previous barrier, which is also
// pre-batch state.
func durableRollback(cl *cluster.Cluster) {
	if d := cl.Durable(); d != nil {
		_ = d.RollbackBarrier()
	}
}
