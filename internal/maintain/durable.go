package maintain

import (
	"fmt"

	"github.com/arrayview/arrayview/internal/cluster"
)

// durableCommit drives the cluster's durable sink (if one is installed)
// through a commit barrier: every store mutation and catalog/pending change
// of the batch becomes the crash-recovery point. A barrier failure fails
// the batch — the caller aborts, restoring in-memory state, so memory never
// runs ahead of what a restart would recover.
func durableCommit(cl *cluster.Cluster) error {
	d := cl.Durable()
	if d == nil {
		return nil
	}
	if err := d.CommitBarrier(); err != nil {
		return fmt.Errorf("maintain: durable commit barrier: %w", err)
	}
	return nil
}

// durableRollback marks the restored pre-batch state as the recovery point
// after an abort. Best-effort like the rest of rollback: if the disk is
// failing too, recovery replays from the previous barrier, which is also
// pre-batch state.
func durableRollback(cl *cluster.Cluster) {
	if d := cl.Durable(); d != nil {
		_ = d.RollbackBarrier()
	}
}
