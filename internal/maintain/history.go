package maintain

import (
	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/view"
)

// HistPair is one (array chunk, view chunk) co-occurrence recorded from a
// past batch's update triples, with the chunk's byte size at that time.
// Refs are normalized to base-array namespaces.
type HistPair struct {
	Ref   view.ChunkRef
	View  array.ChunkKey
	Bytes int64
}

type batchRec struct {
	pairs     []HistPair
	pairBytes int64 // Σ B_pq across the batch's triples
}

// History is the sliding window of past batch updates U_1..U_L that array
// chunk reassignment scores against (Section 4.5). Most recent first.
type History struct {
	window  int
	batches []batchRec
}

// NewHistory returns a history keeping at most window batches.
func NewHistory(window int) *History {
	return &History{window: window}
}

// Len returns how many batches are currently recorded.
func (h *History) Len() int { return len(h.batches) }

// Record captures the just-processed batch's units into the window,
// normalizing delta refs to their base identity (the chunks exist in the
// base array once the batch is merged).
func (h *History) Record(ctx *Context) {
	if h == nil || h.window == 0 {
		return
	}
	var rec batchRec
	for _, u := range ctx.Units {
		bp, bq := ctx.SizeOf(u.P), ctx.SizeOf(u.Q)
		for _, v := range u.Views {
			rec.pairs = append(rec.pairs,
				HistPair{Ref: normalizeRef(ctx, u.P), View: v, Bytes: bp},
				HistPair{Ref: normalizeRef(ctx, u.Q), View: v, Bytes: bq})
			rec.pairBytes += bp + bq
		}
	}
	h.batches = append([]batchRec{rec}, h.batches...)
	if len(h.batches) > h.window {
		h.batches = h.batches[:h.window]
	}
}
