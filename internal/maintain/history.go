package maintain

import (
	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/view"
)

// HistPair is one (array chunk, view chunk) co-occurrence recorded from a
// past batch's update triples, with the chunk's byte size at that time.
// Refs are normalized to base-array namespaces.
type HistPair struct {
	Ref   view.ChunkRef
	View  array.ChunkKey
	Bytes int64
}

type batchRec struct {
	pairs     []HistPair
	pairBytes int64 // Σ B_pq across the batch's triples
}

// History is the sliding window of past batch updates U_1..U_L that array
// chunk reassignment scores against (Section 4.5). Most recent first.
//
// Alongside the pair window it keeps a second ring, same length, of the
// chunk keys each batch updated. The pair window only sees units the
// executor actually ran, so under adaptive maintenance (where light-chunk
// deltas are deferred) it would never learn about light chunks; the touch
// ring records every delta chunk of every batch regardless of which path
// handled it, and is what the heavy/light classifier scores against.
type History struct {
	window  int
	batches []batchRec
	touched []map[array.ChunkKey]bool // most recent first, same window
}

// NewHistory returns a history keeping at most window batches.
func NewHistory(window int) *History {
	return &History{window: window}
}

// Len returns how many batches are currently recorded.
func (h *History) Len() int { return len(h.batches) }

// Record captures the just-processed batch's units into the window,
// normalizing delta refs to their base identity (the chunks exist in the
// base array once the batch is merged).
func (h *History) Record(ctx *Context) {
	if h == nil || h.window == 0 {
		return
	}
	var rec batchRec
	for _, u := range ctx.Units {
		bp, bq := ctx.SizeOf(u.P), ctx.SizeOf(u.Q)
		for _, v := range u.Views {
			rec.pairs = append(rec.pairs,
				HistPair{Ref: normalizeRef(ctx, u.P), View: v, Bytes: bp},
				HistPair{Ref: normalizeRef(ctx, u.Q), View: v, Bytes: bq})
			rec.pairBytes += bp + bq
		}
	}
	h.batches = append([]batchRec{rec}, h.batches...)
	if len(h.batches) > h.window {
		h.batches = h.batches[:h.window]
	}
}

// RecordUpdates captures the full set of chunk keys a batch updated into
// the touch ring, independent of which units (if any) were executed for
// it. Keys are recorded as given — callers that want spatial rather than
// per-slab identity project them first (see Classifier.Project).
func (h *History) RecordUpdates(keys []array.ChunkKey) {
	if h == nil || h.window == 0 {
		return
	}
	set := make(map[array.ChunkKey]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	h.touched = append([]map[array.ChunkKey]bool{set}, h.touched...)
	if len(h.touched) > h.window {
		h.touched = h.touched[:h.window]
	}
}

// TouchLen returns how many batches the touch ring currently holds.
func (h *History) TouchLen() int {
	if h == nil {
		return 0
	}
	return len(h.touched)
}

// UpdateScores returns each chunk key's update-frequency score over the
// touch ring: Σ Decay^l over the batches l (0 = most recent) that updated
// the key — the same W_l = Decay^l batch weights Eq. 1 uses for the pair
// window. A chunk touched every batch scores Σ_{l<window} Decay^l; one
// touched once, long ago, decays toward zero.
func (h *History) UpdateScores(decay float64) map[array.ChunkKey]float64 {
	scores := make(map[array.ChunkKey]float64)
	if h == nil {
		return scores
	}
	w := 1.0
	for _, set := range h.touched {
		for k := range set {
			scores[k] += w
		}
		w *= decay
	}
	return scores
}
