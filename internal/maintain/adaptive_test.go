package maintain

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/storage"
	"github.com/arrayview/arrayview/internal/view"
)

func ck(coords ...int64) array.ChunkKey { return array.ChunkCoord(coords).Key() }

// --- Params validation (NaN regression) -------------------------------------

func TestParamsValidateRejectsNonFinite(t *testing.T) {
	cases := map[string]func(*Params){
		"nan lambda":    func(p *Params) { p.Lambda = math.NaN() },
		"nan decay":     func(p *Params) { p.Decay = math.NaN() },
		"nan cpu":       func(p *Params) { p.CPUThresholdFactor = math.NaN() },
		"inf lambda":    func(p *Params) { p.Lambda = math.Inf(1) },
		"-inf decay":    func(p *Params) { p.Decay = math.Inf(-1) },
		"inf cpu":       func(p *Params) { p.CPUThresholdFactor = math.Inf(1) },
		"neg window":    func(p *Params) { p.Window = -1 },
		"zero decay":    func(p *Params) { p.Decay = 0 },
		"lambda above1": func(p *Params) { p.Lambda = 1.5 },
	}
	for name, mut := range cases {
		p := DefaultParams()
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
}

// A NaN decay must be stopped at construction: every comparison against NaN
// is false, so without the explicit check it would slip through the range
// checks and silently zero both the Eq. 1 window weights and the adaptive
// classifier's scores.
func TestNewMaintainerRejectsNaNParams(t *testing.T) {
	cl, _, def := setupFig1(t, Differential{})
	p := DefaultParams()
	p.Decay = math.NaN()
	if _, err := NewMaintainer(cl, def, Differential{}, p); err == nil {
		t.Fatal("NewMaintainer accepted NaN decay")
	}
	if _, err := NewAdaptiveMaintainer(cl, def, nil, p, DefaultAdaptiveConfig()); err == nil {
		t.Fatal("NewAdaptiveMaintainer accepted NaN decay")
	}
}

// --- History touch-ring properties ------------------------------------------

// A key touched in every one of L recorded batches scores Σ_{l<L} Decay^l;
// one touched only in the oldest batch scores exactly Decay^(L-1).
func TestHistoryUpdateScoreDecayWeights(t *testing.T) {
	const batches = 4
	h := NewHistory(8)
	hot, once := ck(0, 0), ck(9, 9)
	h.RecordUpdates([]array.ChunkKey{hot, once})
	for i := 1; i < batches; i++ {
		h.RecordUpdates([]array.ChunkKey{hot})
	}
	for _, decay := range []float64{0.25, 0.5, 1.0} {
		scores := h.UpdateScores(decay)
		var wantHot float64
		for l := 0; l < batches; l++ {
			wantHot += math.Pow(decay, float64(l))
		}
		if math.Abs(scores[hot]-wantHot) > 1e-12 {
			t.Errorf("decay %v: hot score %v, want %v", decay, scores[hot], wantHot)
		}
		wantOnce := math.Pow(decay, float64(batches-1))
		if math.Abs(scores[once]-wantOnce) > 1e-12 {
			t.Errorf("decay %v: once score %v, want %v", decay, scores[once], wantOnce)
		}
	}
}

func TestHistoryTouchWindowTruncation(t *testing.T) {
	h := NewHistory(3)
	for i := 0; i < 5; i++ {
		h.RecordUpdates([]array.ChunkKey{ck(int64(i))})
	}
	if h.TouchLen() != 3 {
		t.Fatalf("touch ring holds %d batches, want 3", h.TouchLen())
	}
	scores := h.UpdateScores(0.5)
	for _, evicted := range []array.ChunkKey{ck(0), ck(1)} {
		if _, ok := scores[evicted]; ok {
			t.Errorf("evicted batch key %v still scored", evicted)
		}
	}
	if scores[ck(4)] != 1.0 {
		t.Errorf("most recent touch scores %v, want weight 1", scores[ck(4)])
	}
	if scores[ck(3)] != 0.5 || scores[ck(2)] != 0.25 {
		t.Errorf("decayed touches score %v/%v, want 0.5/0.25", scores[ck(3)], scores[ck(2)])
	}
}

// Scores are a deterministic function of the recorded touch sequence: two
// histories built from the same batches agree exactly, for any decay.
func TestHistoryScoresDeterministicProperty(t *testing.T) {
	f := func(raw [][]uint8, decayBits uint8) bool {
		decay := (float64(decayBits%100) + 1) / 100 // (0, 1]
		build := func() map[array.ChunkKey]float64 {
			h := NewHistory(5)
			for _, batch := range raw {
				keys := make([]array.ChunkKey, len(batch))
				for i, b := range batch {
					keys[i] = ck(int64(b % 8))
				}
				h.RecordUpdates(keys)
			}
			return h.UpdateScores(decay)
		}
		a, b := build(), build()
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Classifier --------------------------------------------------------------

func TestClassifierHysteresis(t *testing.T) {
	c := NewClassifier(1.0) // default hysteresis 0.5
	k := ck(1)
	if p, _ := c.Reclassify(map[array.ChunkKey]float64{k: 0.9}); p != 0 || c.IsHeavy(k) {
		t.Fatal("promoted below threshold")
	}
	if p, _ := c.Reclassify(map[array.ChunkKey]float64{k: 1.0}); p != 1 || !c.IsHeavy(k) {
		t.Fatal("not promoted at threshold")
	}
	// Between the demotion bar (0.5) and the promotion bar: stays heavy.
	if _, d := c.Reclassify(map[array.ChunkKey]float64{k: 0.6}); d != 0 || !c.IsHeavy(k) {
		t.Fatal("hysteresis did not hold the class heavy")
	}
	if _, d := c.Reclassify(map[array.ChunkKey]float64{k: 0.49}); d != 1 || c.IsHeavy(k) {
		t.Fatal("not demoted below the hysteresis bar")
	}
	// A heavy class absent from the scores has score 0 and demotes.
	c.Reclassify(map[array.ChunkKey]float64{k: 2.0})
	if _, d := c.Reclassify(map[array.ChunkKey]float64{}); d != 1 || c.IsHeavy(k) {
		t.Fatal("absent class kept heavy status")
	}
	promos, demos := c.Flips()
	if promos != 2 || demos != 2 {
		t.Errorf("flip counters %d/%d, want 2/2", promos, demos)
	}
}

func TestClassifierTopK(t *testing.T) {
	c := &Classifier{TopK: 0.3, Hysteresis: 1}
	scores := map[array.ChunkKey]float64{ck(1): 3, ck(2): 2, ck(3): 1}
	c.Reclassify(scores) // ⌈0.3·3⌉ = 1 heavy class
	if !c.IsHeavy(ck(1)) || c.IsHeavy(ck(2)) || c.IsHeavy(ck(3)) {
		t.Fatalf("top-k picked wrong classes: heavy=%d", c.HeavyCount())
	}
	// With no scores the threshold is +Inf: nothing promotes.
	c2 := &Classifier{TopK: 0.5, Hysteresis: 1}
	c2.Reclassify(map[array.ChunkKey]float64{})
	if c2.HeavyCount() != 0 {
		t.Fatal("empty score map promoted classes")
	}
}

func TestClassifierDropDimsProjection(t *testing.T) {
	proj := DropDims(0)
	if proj(ck(3, 7)) != ck(0, 7) {
		t.Fatalf("DropDims(0) maps (3,7) to %v", proj(ck(3, 7)))
	}
	c := &Classifier{HeavyThreshold: 1, Hysteresis: 0.5, Project: proj}
	c.Reclassify(map[array.ChunkKey]float64{ck(0, 7): 1.0})
	// Any time slab of the same pointing classifies by the shared identity.
	if !c.IsHeavy(ck(5, 7)) {
		t.Error("projection did not collapse slabs onto one class")
	}
	if c.IsHeavy(ck(5, 6)) {
		t.Error("unrelated pointing classified heavy")
	}
}

func TestClassifierPromoteIdempotent(t *testing.T) {
	c := NewClassifier(2)
	if !c.Promote(ck(1)) {
		t.Fatal("first promote reported already-heavy")
	}
	if c.Promote(ck(1)) {
		t.Fatal("second promote reported a fresh promotion")
	}
	if promos, _ := c.Flips(); promos != 1 {
		t.Errorf("promotions %d, want 1", promos)
	}
}

func TestClassifierValidate(t *testing.T) {
	bad := []*Classifier{
		{HeavyThreshold: math.NaN()},
		{HeavyThreshold: -1},
		{TopK: 1.5},
		{TopK: math.Inf(1)},
		{Hysteresis: -0.1},
		{Hysteresis: 2},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	if err := NewClassifier(1.5).Validate(); err != nil {
		t.Fatalf("default classifier rejected: %v", err)
	}
}

// --- Plan scratch -----------------------------------------------------------

func TestPlanScratchFootprint(t *testing.T) {
	a := scratchFootprint([]array.ChunkKey{ck(1, 2), ck(3, 4)})
	b := scratchFootprint([]array.ChunkKey{ck(3, 4), ck(1, 2)})
	if a != b {
		t.Fatal("footprint is order sensitive")
	}
	if a == scratchFootprint([]array.ChunkKey{ck(1, 2)}) {
		t.Fatal("distinct key sets share a footprint")
	}
}

func TestPlanScratchInvalidationAndEviction(t *testing.T) {
	s := NewPlanScratch(2)
	put := func(fp string) { s.store(fp, &Context{}, NewPlan("t", 0)) }

	put("a")
	if s.lookup("a") == nil {
		t.Fatal("fresh entry missed")
	}
	s.Invalidate()
	if s.lookup("a") != nil {
		t.Fatal("entry survived base invalidation")
	}
	put("a")
	s.InvalidatePlacement()
	if s.lookup("a") != nil {
		t.Fatal("entry survived placement invalidation")
	}

	put("a")
	put("b")
	put("c") // cap 2: evicts the oldest ("a")
	if s.lookup("a") != nil {
		t.Error("oldest entry not evicted at capacity")
	}
	if s.lookup("b") == nil || s.lookup("c") == nil {
		t.Error("surviving entries missed")
	}

	st := s.Stats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Errorf("stats %+v, want 3 hits / 3 misses", st)
	}
	if got := (*PlanScratch)(nil).Stats(); got != (PlanScratchStats{}) {
		t.Errorf("nil scratch stats %+v", got)
	}
}

// Replayed footprints (the same chunk-key set batch over batch) must reuse
// the cached plan and still produce a view bit-identical to a maintainer
// with no scratch attached.
func TestPlanScratchReplayEquivalence(t *testing.T) {
	clPlain, mPlain, _ := setupFig1(t, Differential{})
	clCached, mCached, defCached := setupFig1(t, Differential{})
	scratch := NewPlanScratch(0)
	mCached.SetPlanScratch(scratch)

	// Each round inserts fresh points into the same three chunks, so the
	// delta footprint recurs while the workload stays insert-only (cell
	// overwrites are outside the maintenance algebra's exactness contract).
	offsets := []array.Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	mkBatch := func(round int) *array.Array {
		d := array.New(fig1Schema())
		off := offsets[round]
		for _, p := range []array.Point{{1, 5}, {3, 5}, {5, 1}} {
			q := array.Point{p[0] + off[0], p[1] + off[1]}
			if err := d.Set(q, array.Tuple{float64(round + 1), 1}); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	for r := 0; r < 4; r++ {
		if _, err := mPlain.ApplyBatch(mkBatch(r)); err != nil {
			t.Fatal(err)
		}
		if _, err := mCached.ApplyBatch(mkBatch(r)); err != nil {
			t.Fatal(err)
		}
		requireSameState(t, fmt.Sprintf("round %d", r), clPlain, clCached, "A", defCached.Name)
	}
	verifyView(t, clCached, defCached)
	// Round 1 commits new base keys (no store); round 2 solves and stores;
	// rounds 3-4 reuse.
	if st := scratch.Stats(); st.Hits < 2 {
		t.Errorf("expected plan reuse on replayed footprints, got %+v", st)
	}
}

// --- Adaptive equivalence ---------------------------------------------------

func requireSameState(t *testing.T, tag string, clA, clB *cluster.Cluster, names ...string) {
	t.Helper()
	for _, n := range names {
		a, err := clA.Gather(n)
		if err != nil {
			t.Fatalf("%s: gather %s: %v", tag, n, err)
		}
		b, err := clB.Gather(n)
		if err != nil {
			t.Fatalf("%s: gather %s: %v", tag, n, err)
		}
		if !statesEqual(a, b) {
			t.Fatalf("%s: %s diverges between legs", tag, n)
		}
	}
}

func adaptiveSetup(t *testing.T, cfg AdaptiveConfig) (*cluster.Cluster, *AdaptiveMaintainer, *view.Definition) {
	t.Helper()
	cl, err := cluster.New(3, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(fig1Array(), &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := fig1Def(t)
	if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	am, err := NewAdaptiveMaintainer(cl, def, nil, DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl, am, def
}

func cloneArray(a *array.Array) *array.Array {
	out := array.New(a.Schema())
	a.EachChunk(func(c *array.Chunk) bool {
		out.PutChunk(c.Clone())
		return true
	})
	return out
}

// Adaptive maintenance must be bit-identical to all-eager maintenance at
// every freshness point, across classifier configurations that exercise
// every path: full deferral (fences, folds, coalesced drains), full
// eagerness, top-k mode, projection, pressure promotion, and deletion.
func TestAdaptiveEquivalenceConfigs(t *testing.T) {
	configs := map[string]AdaptiveConfig{
		"default":   DefaultAdaptiveConfig(),
		"all-light": {HeavyThreshold: math.MaxFloat64, Hysteresis: 0.5},
		"all-heavy": {HeavyThreshold: 0, Hysteresis: 1},
		"topk":      {TopK: 0.5, Hysteresis: 0.5, MaxPendingBatches: 2},
		"projected": {HeavyThreshold: 1.5, Hysteresis: 0.5, Project: DropDims(0),
			MaxPendingBatches: 3, PromoteEntries: 2, PromoteTouches: 1},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			clEager, mEager, _ := setupFig1(t, Differential{})
			clAd, am, def := adaptiveSetup(t, cfg)

			rng := rand.New(rand.NewSource(42))
			// The workload stays insert-only (the maintenance algebra's
			// exactness contract): batches draw fresh points from a pool,
			// but land in already-populated chunks, so the overwrite⇒eager
			// routing, the conflict fence, and the fold path all fire.
			type cell struct {
				p array.Point
				t array.Tuple
			}
			occupied := make(map[string]cell)
			fig1Array().EachCell(func(p array.Point, tup array.Tuple) bool {
				occupied[fmt.Sprint(p)] = cell{append(array.Point{}, p...), append(array.Tuple{}, tup...)}
				return true
			})
			var pool []array.Point
			for i := int64(1); i <= 6; i++ {
				for j := int64(1); j <= 8; j++ {
					if _, ok := occupied[fmt.Sprint(array.Point{i, j})]; !ok {
						pool = append(pool, array.Point{i, j})
					}
				}
			}

			randomBatch := func() *array.Array {
				d := array.New(fig1Schema())
				n := 2 + rng.Intn(2)
				for i := 0; i < n && len(pool) > 0; i++ {
					idx := rng.Intn(len(pool))
					p := pool[idx]
					pool = append(pool[:idx], pool[idx+1:]...)
					tup := array.Tuple{float64(1 + rng.Intn(9)), float64(1 + rng.Intn(9))}
					if err := d.Set(p, tup); err != nil {
						t.Fatal(err)
					}
					occupied[fmt.Sprint(p)] = cell{p, tup}
				}
				return d
			}
			apply := func(d *array.Array) {
				if _, err := mEager.ApplyBatch(cloneArray(d)); err != nil {
					t.Fatal(err)
				}
				if _, err := am.ApplyBatch(cloneArray(d)); err != nil {
					t.Fatal(err)
				}
			}

			for b := 0; b < 12; b++ {
				apply(randomBatch())
				if b%4 == 3 {
					// Query touch: the lazy path materializes, then both legs
					// must agree exactly.
					if err := am.EnsureFresh(context.Background()); err != nil {
						t.Fatal(err)
					}
					requireSameState(t, fmt.Sprintf("batch %d", b), clEager, clAd, "A", def.Name)
				}
			}

			// Delete two committed cells (exact values), returning their
			// points to the pool.
			keys := make([]string, 0, len(occupied))
			for k := range occupied {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			del := array.New(fig1Schema())
			for _, k := range keys[:2] {
				c := occupied[k]
				if err := del.Set(c.p, c.t); err != nil {
					t.Fatal(err)
				}
				delete(occupied, k)
				pool = append(pool, c.p)
			}
			if _, err := mEager.ApplyDelete(cloneArray(del)); err != nil {
				t.Fatal(err)
			}
			if _, err := am.ApplyDelete(cloneArray(del)); err != nil {
				t.Fatal(err)
			}
			requireSameState(t, "post-delete", clEager, clAd, "A", def.Name)

			apply(randomBatch())
			apply(randomBatch())
			if _, err := am.Drain(); err != nil {
				t.Fatal(err)
			}
			requireSameState(t, "final", clEager, clAd, "A", def.Name)
			verifyView(t, clAd, def)

			st := am.Stats()
			if st.Pending.Entries != 0 {
				t.Errorf("pending entries remain after Drain: %+v", st.Pending)
			}
		})
	}
}

func TestAdaptiveRejectsInvalidConfigAndTwoArrayViews(t *testing.T) {
	cl, _, def := setupFig1(t, Differential{})
	if _, err := NewAdaptiveMaintainer(cl, def, nil, DefaultParams(), AdaptiveConfig{HeavyThreshold: math.NaN()}); err == nil {
		t.Fatal("NaN classifier threshold accepted")
	}

	// A two-array view has no adaptive path.
	sB := array.MustSchema("B",
		[]array.Dimension{
			{Name: "i", Start: 1, End: 6, ChunkSize: 2},
			{Name: "j", Start: 1, End: 8, ChunkSize: 2},
		},
		[]array.Attribute{{Name: "r", Type: array.Int64}, {Name: "s", Type: array.Int64}},
	)
	arrB := array.New(sB)
	if err := arrB.Set(array.Point{1, 1}, array.Tuple{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(arrB, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def2, err := view.NewDefinition("V2", fig1Schema(), sB,
		simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"i", "j"},
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildView(cl, def2, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	_, err = NewAdaptiveMaintainer(cl, def2, nil, DefaultParams(), DefaultAdaptiveConfig())
	if err == nil || !strings.Contains(err.Error(), "self-join") {
		t.Fatalf("two-array view accepted (err=%v)", err)
	}
}

// --- Rollback exactness ------------------------------------------------------

func faultClusterSetup(t *testing.T, cfg AdaptiveConfig) (*cluster.FaultFabric, *cluster.Cluster, *AdaptiveMaintainer, *view.Definition) {
	t.Helper()
	stores := make([]*storage.Store, 3)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	ff := cluster.NewFaultFabric(cluster.NewLocalFabric(stores), 1)
	cl, err := cluster.New(3, cluster.WithWorkersPerNode(2), cluster.WithFabric(ff.AsFabric()))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(fig1Array(), &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := fig1Def(t)
	if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	am, err := NewAdaptiveMaintainer(cl, def, nil, DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ff, cl, am, def
}

// A failed eager batch must leave the deferred state exactly as it found it:
// no pending appends from the failed batch, and pending entries the conflict
// fence folded into the failed batch restored to the log.
func TestAdaptiveFailedBatchRollsBackPending(t *testing.T) {
	allLight := AdaptiveConfig{HeavyThreshold: math.MaxFloat64, Hysteresis: 0.5}
	ff, clAd, am, def := faultClusterSetup(t, allLight)
	clRef, mRef, _ := setupFig1(t, Differential{})

	// Batch 1: one fresh chunk key — deferred.
	d1 := array.New(fig1Schema())
	if err := d1.Set(array.Point{1, 5}, array.Tuple{3, 3}); err != nil { // chunk (0,2): fresh
		t.Fatal(err)
	}
	if _, err := am.ApplyBatch(cloneArray(d1)); err != nil {
		t.Fatal(err)
	}
	if st := am.Stats(); st.Pending.Entries != 1 {
		t.Fatalf("batch 1 not deferred: %+v", st.Pending)
	}

	// Batch 2: an overwrite of a committed chunk (heavy routing; its join
	// reach covers the pending chunk, so the fence folds that entry into the
	// eager batch) plus a fresh light chunk. Every write is failed with a
	// non-node-down error, so the eager part cannot fail over and must roll
	// back.
	d2 := array.New(fig1Schema())
	if err := d2.Set(array.Point{2, 4}, array.Tuple{9, 9}); err != nil { // chunk (0,1): in base
		t.Fatal(err)
	}
	if err := d2.Set(array.Point{5, 1}, array.Tuple{2, 2}); err != nil { // chunk (2,0): fresh, light
		t.Fatal(err)
	}
	rule := ff.Inject(&cluster.FaultRule{
		Node: cluster.AnyNode, Op: "Put", Kind: cluster.FaultError,
		Err: errors.New("injected write failure"),
	})
	if _, err := am.ApplyBatch(cloneArray(d2)); err == nil {
		t.Fatal("batch applied despite write faults")
	}
	if rule.Fired() == 0 {
		t.Fatal("fault rule never fired; the failure path was not exercised")
	}
	ff.ClearRules()

	st := am.Stats()
	if st.Pending.Entries != 1 {
		t.Fatalf("failed batch disturbed the pending log: %+v", st.Pending)
	}
	if n, _ := clAd.Catalog().Pending().EntriesFor(ck(0, 2)); n != 1 {
		t.Fatalf("folded entry not restored after rollback (entries=%d)", n)
	}
	if n, _ := clAd.Catalog().Pending().EntriesFor(ck(2, 0)); n != 0 {
		t.Fatal("failed batch appended its light chunks")
	}

	// The cluster state must equal the reference having applied batch 1 only.
	if _, err := mRef.ApplyBatch(cloneArray(d1)); err != nil {
		t.Fatal(err)
	}
	if _, err := am.Drain(); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, "after failed batch", clRef, clAd, "A", def.Name)

	// Retrying the failed batch now succeeds and converges with the
	// reference.
	if _, err := am.ApplyBatch(cloneArray(d2)); err != nil {
		t.Fatal(err)
	}
	if _, err := mRef.ApplyBatch(cloneArray(d2)); err != nil {
		t.Fatal(err)
	}
	if _, err := am.Drain(); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, "after retry", clRef, clAd, "A", def.Name)
	verifyView(t, clAd, def)
}

// A failed lazy materialization restores the taken entries to the log.
func TestAdaptiveMaterializeRestoresOnFailure(t *testing.T) {
	allLight := AdaptiveConfig{HeavyThreshold: math.MaxFloat64, Hysteresis: 0.5}
	ff, clAd, am, def := faultClusterSetup(t, allLight)

	d1 := array.New(fig1Schema())
	if err := d1.Set(array.Point{1, 5}, array.Tuple{3, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := am.ApplyBatch(d1); err != nil {
		t.Fatal(err)
	}
	ff.Inject(&cluster.FaultRule{
		Node: cluster.AnyNode, Op: "Put", Kind: cluster.FaultError,
		Err: errors.New("injected write failure"),
	})
	if err := am.EnsureFresh(context.Background()); err == nil {
		t.Fatal("materialization succeeded despite write faults")
	}
	if st := am.Stats(); st.Pending.Entries != 1 {
		t.Fatalf("failed materialization lost entries: %+v", st.Pending)
	}
	ff.ClearRules()
	if err := am.EnsureFresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := am.Stats(); st.Pending.Entries != 0 {
		t.Fatalf("retry left entries pending: %+v", st.Pending)
	}
	verifyView(t, clAd, def)
}

// --- Snapshot isolation under concurrency ------------------------------------

func digestArray(a *array.Array) string {
	var cells []string
	a.EachCell(func(p array.Point, tup array.Tuple) bool {
		cells = append(cells, fmt.Sprint(p, tup))
		return true
	})
	sort.Strings(cells)
	return strings.Join(cells, ";")
}

// Pinned snapshot readers racing adaptive maintenance (deferrals, fences,
// lazy materializations) must always observe exactly the committed state of
// their pinned epoch — the lazy path adds no isolation violations. Run with
// -race to check the synchronization too.
func TestAdaptiveSnapshotIsolationConcurrent(t *testing.T) {
	clAd, am, def := adaptiveSetup(t, DefaultAdaptiveConfig())

	type obsRec struct {
		epoch  uint64
		digest string
	}
	var emu sync.Mutex
	expected := make(map[uint64]string)
	var hookWG sync.WaitGroup
	clAd.Epochs().OnPublish(func(epoch uint64) {
		snap, err := clAd.Epochs().Acquire()
		if err != nil {
			return
		}
		hookWG.Add(1)
		go func() {
			defer hookWG.Done()
			defer snap.Release()
			v, err := snap.Gather(def.Name)
			if err != nil {
				return
			}
			emu.Lock()
			expected[snap.Epoch()] = digestArray(v)
			emu.Unlock()
		}()
	})
	clAd.Epochs().Enable()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	observed := make([][]obsRec, 2)
	for i := range observed {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur := clAd.Epochs().Current()
				if cur == last {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				last = cur
				snap, err := clAd.Epochs().Acquire()
				if err != nil {
					continue
				}
				if v, err := snap.Gather(def.Name); err == nil {
					observed[i] = append(observed[i], obsRec{snap.Epoch(), digestArray(v)})
				}
				snap.Release()
			}
		}()
	}

	rng := rand.New(rand.NewSource(7))
	for b := 0; b < 10; b++ {
		d := array.New(fig1Schema())
		for i, n := 0, 3+rng.Intn(5); i < n; i++ {
			p := array.Point{int64(1 + rng.Intn(6)), int64(1 + rng.Intn(8))}
			if err := d.Set(p, array.Tuple{float64(1 + rng.Intn(9)), 1}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := am.ApplyBatch(d); err != nil {
			t.Fatal(err)
		}
		if b%3 == 2 {
			if err := am.EnsureFresh(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	hookWG.Wait()

	total, violations := 0, 0
	for _, list := range observed {
		for _, o := range list {
			total++
			emu.Lock()
			want, ok := expected[o.epoch]
			emu.Unlock()
			if !ok || want != o.digest {
				violations++
			}
		}
	}
	if violations != 0 {
		t.Fatalf("%d/%d snapshot observations violated isolation", violations, total)
	}
	if total == 0 {
		t.Error("auditors made no observations")
	}
}
