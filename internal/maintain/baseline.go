package maintain

import (
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
)

// Baseline is the parallel relational view maintenance procedure of Luo et
// al. adapted to arrays and batch updates (Section 4.1):
//
//  1. new (delta) chunks are first assigned to nodes by the array's static
//     chunking strategy, and new view chunks by the view's strategy;
//  2. each chunk-pair join runs at the node storing the base-array chunk,
//     so delta chunks are shipped to every joining base chunk's node;
//  3. differential results are shipped to the nodes statically storing the
//     corresponding view chunks.
//
// Its two failure modes — excessive communication and load imbalance — are
// what the optimization addresses.
type Baseline struct{}

// Name implements Planner.
func (Baseline) Name() string { return "baseline" }

// Plan implements Planner.
func (Baseline) Plan(ctx *Context) (*Plan, error) {
	p := NewPlan("baseline", len(ctx.Units))
	n := ctx.Cluster.NumNodes()

	// Step 1: static placement of the new chunks. A delta chunk whose key
	// already exists in the base array goes to that chunk's node — regular
	// chunking is deterministic by coordinate — and needs no rehome entry.
	placed := make(map[view.ChunkRef]int)
	for _, r := range ctx.DeltaRefs() {
		if !ctx.IsDelta(r) {
			continue
		}
		baseName := ctx.BaseNameFor(r.Array)
		node, exists := ctx.Cluster.Catalog().Home(baseName, r.Key)
		if !exists {
			node = ctx.ArrayPlacement.Place(r.Key, n)
			p.ArrayRehome[r] = node
		}
		placed[r] = node
		p.Transfers = append(p.Transfers, Transfer{Ref: r, From: cluster.Coordinator, To: node})
	}
	homeOf := func(r view.ChunkRef) int {
		if node, ok := placed[r]; ok {
			return node
		}
		return ctx.HomeOf(r)
	}

	// Step 2: join each pair at the node holding the base (β-side for
	// delta×base pairs) chunk; ship the delta there.
	holders := newHolderTracker(ctx, placed)
	for i, u := range ctx.Units {
		var site int
		switch {
		case ctx.IsDelta(u.P) && !ctx.IsDelta(u.Q):
			site = homeOf(u.Q)
		case !ctx.IsDelta(u.P) && ctx.IsDelta(u.Q):
			site = homeOf(u.P)
		default: // delta×delta: the β-side's assigned node, as in the
			// paper's 7⋈8-on-Y example.
			site = homeOf(u.Q)
		}
		p.JoinSite[i] = site
		p.Transfers = append(p.Transfers, holders.ensure(u.P, site)...)
		p.Transfers = append(p.Transfers, holders.ensure(u.Q, site)...)
	}

	// Step 3: view chunks stay at (or are statically assigned) their homes.
	assignStaticViewHomes(ctx, p)
	return p, nil
}

// assignStaticViewHomes fills ViewHome with current homes for existing view
// chunks and placement-assigned homes for new ones.
func assignStaticViewHomes(ctx *Context, p *Plan) {
	n := ctx.Cluster.NumNodes()
	for _, u := range ctx.Units {
		for _, v := range u.Views {
			if _, done := p.ViewHome[v]; done {
				continue
			}
			if home, ok := ctx.ViewHomeOf(v); ok {
				p.ViewHome[v] = home
			} else {
				p.ViewHome[v] = ctx.ViewPlacement.Place(v, n)
			}
		}
	}
}

// holderTracker tracks which nodes hold each chunk as a plan is built, so
// planners emit each required transfer exactly once.
type holderTracker struct {
	ctx     *Context
	origin  map[view.ChunkRef]int
	holders map[view.ChunkRef]map[int]bool
}

// newHolderTracker seeds each chunk at its catalog home, overridden by the
// placed map (baseline's static assignment of new chunks).
func newHolderTracker(ctx *Context, placed map[view.ChunkRef]int) *holderTracker {
	t := &holderTracker{
		ctx:     ctx,
		origin:  make(map[view.ChunkRef]int),
		holders: make(map[view.ChunkRef]map[int]bool),
	}
	for r, node := range placed {
		t.origin[r] = node
	}
	return t
}

func (t *holderTracker) originOf(r view.ChunkRef) int {
	if node, ok := t.origin[r]; ok {
		return node
	}
	node := t.ctx.HomeOf(r)
	t.origin[r] = node
	return node
}

func (t *holderTracker) set(r view.ChunkRef) map[int]bool {
	s, ok := t.holders[r]
	if !ok {
		s = map[int]bool{t.originOf(r): true}
		t.holders[r] = s
	}
	return s
}

// has reports whether node already holds r.
func (t *holderTracker) has(r view.ChunkRef, node int) bool { return t.set(r)[node] }

// ensure returns the transfers (possibly none) needed to make r resident at
// node, shipping from the chunk's origin as in the x_{i,S_i,j} variables,
// and records the new replica.
func (t *holderTracker) ensure(r view.ChunkRef, node int) []Transfer {
	s := t.set(r)
	if s[node] {
		return nil
	}
	s[node] = true
	return []Transfer{{Ref: r, From: t.originOf(r), To: node}}
}
