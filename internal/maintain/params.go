// Package maintain implements distributed incremental array view
// maintenance (Section 4 of the paper): the baseline algorithm adapted from
// parallel relational view maintenance, the MIP cost objective (Eq. 1), and
// the three-stage heuristic — differential view computation (Algorithm 1),
// view chunk reassignment (Algorithm 2), and array chunk reassignment over
// a window of past batches (Algorithm 3) — plus the executor that applies a
// plan to the cluster.
package maintain

import (
	"fmt"
	"math"
)

// Params are the tunable constants of the optimization (Table 1 and
// Section 6.2).
type Params struct {
	// Lambda weighs the current batch against the historical window in the
	// objective (λ in Eq. 1).
	Lambda float64
	// Window is the number of past batches considered by array chunk
	// reassignment. The paper uses 5.
	Window int
	// Decay is the exponential decay base of the batch weights W_l: the
	// l-th previous batch has weight Decay^l.
	Decay float64
	// CPUThresholdFactor scales Algorithm 3's per-node CPU quota relative
	// to the average weighted join bytes per node. 1.0 reproduces the
	// paper's "average join cost per node"; 0 disables reassignment of all
	// but the cheapest chunks (ablation).
	CPUThresholdFactor float64
	// Seed drives the randomized iteration order of Algorithms 1 and 2 so
	// that runs are reproducible.
	Seed int64
	// SortedPairOrder replaces the randomized pair order of Algorithm 1
	// with a deterministic largest-pair-first order (ablation).
	SortedPairOrder bool
	// CellPruning generates update triples against each chunk's cell
	// bounding box rather than its full region, pruning join pairs that
	// cannot match — the paper's cell-granularity alternative (ablation).
	CellPruning bool
	// ParallelCandidates evaluates Algorithm 1's candidate nodes
	// concurrently on clusters of 16+ nodes — the acceleration the paper
	// names as future work for thousand-node clusters. The chosen plan is
	// bit-identical to the serial one.
	ParallelCandidates bool
}

// DefaultParams mirror the paper's experimental configuration: a window of
// 5 previous batches with exponentially decaying weights.
func DefaultParams() Params {
	return Params{
		Lambda:             0.5,
		Window:             5,
		Decay:              0.5,
		CPUThresholdFactor: 1.0,
		Seed:               1,
	}
}

// Validate reports whether the parameters are usable. NaN is rejected
// explicitly: every range comparison below is false for NaN, so without
// these checks a NaN Lambda/Decay/CPUThresholdFactor would validate and
// silently poison the Eq. 1 objective (and now the classifier scores too).
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"lambda", p.Lambda},
		{"decay", p.Decay},
		{"cpu threshold factor", p.CPUThresholdFactor},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("maintain: %s %v is not finite", f.name, f.v)
		}
	}
	if p.Lambda < 0 || p.Lambda > 1 {
		return fmt.Errorf("maintain: lambda %v outside [0, 1]", p.Lambda)
	}
	if p.Window < 0 {
		return fmt.Errorf("maintain: negative window %d", p.Window)
	}
	if p.Decay <= 0 || p.Decay > 1 {
		return fmt.Errorf("maintain: decay %v outside (0, 1]", p.Decay)
	}
	if p.CPUThresholdFactor < 0 {
		return fmt.Errorf("maintain: negative cpu threshold factor %v", p.CPUThresholdFactor)
	}
	return nil
}
