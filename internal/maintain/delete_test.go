package maintain

import (
	"math/rand"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
)

// TestDistributedDeleteAllStrategies: a deletion batch maintained on the
// cluster must match local recomputation over the shrunken base, for every
// strategy.
func TestDistributedDeleteAllStrategies(t *testing.T) {
	for name, planner := range Strategies() {
		cl, m, def := setupFig1(t, planner)
		// First grow the array a bit so deletions interact with history.
		grow := array.New(fig1Schema())
		_ = grow.Set(array.Point{2, 2}, array.Tuple{7, 7})
		_ = grow.Set(array.Point{2, 3}, array.Tuple{8, 8})
		if _, err := m.ApplyBatch(grow); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Delete two original cells and one inserted cell.
		del := array.New(fig1Schema())
		_ = del.Set(array.Point{1, 2}, array.Tuple{2, 5})
		_ = del.Set(array.Point{6, 5}, array.Tuple{4, 3})
		_ = del.Set(array.Point{2, 2}, array.Tuple{7, 7})
		base, err := cl.Gather("A")
		if err != nil {
			t.Fatal(err)
		}
		if err := view.SubsetOf(base, del); err != nil {
			t.Fatal(err)
		}
		rep, err := m.ApplyDelete(del)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.NumUnits == 0 {
			t.Errorf("%s: deletion produced no units", name)
		}
		// Base no longer holds the deleted cells.
		base, err = cl.Gather("A")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := base.Get(array.Point{1, 2}); ok {
			t.Errorf("%s: deleted cell still present", name)
		}
		if base.NumCells() != 6+2-3 {
			t.Errorf("%s: base has %d cells, want 5", name, base.NumCells())
		}
		verifyView(t, cl, def)
	}
}

// TestDeleteWholeChunk: deleting every cell of a chunk drops the chunk
// from storage and catalog.
func TestDeleteWholeChunk(t *testing.T) {
	cl, m, def := setupFig1(t, Reassign{})
	del := array.New(fig1Schema())
	_ = del.Set(array.Point{1, 2}, array.Tuple{2, 5}) // chunk (0,0)'s only cell... and
	if _, err := m.ApplyDelete(del); err != nil {
		t.Fatal(err)
	}
	key := array.ChunkCoord{0, 0}.Key()
	if _, ok := cl.Catalog().Home("A", key); ok {
		t.Error("fully-deleted chunk must leave the catalog")
	}
	for n := 0; n < cl.NumNodes(); n++ {
		if cl.Node(n).Store.Has("A", key) {
			t.Errorf("fully-deleted chunk still on node %d", n)
		}
	}
	verifyView(t, cl, def)
}

// TestInsertDeleteInterleaved: alternating inserts and deletes stay exact
// across a random sequence.
func TestInsertDeleteInterleaved(t *testing.T) {
	cl, m, def := setupFig1(t, Reassign{})
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 5; round++ {
		base, err := cl.Gather("A")
		if err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			delta := array.New(fig1Schema())
			for delta.NumCells() < 3 {
				p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
				if _, ok := base.Get(p); ok {
					continue
				}
				_ = delta.Set(p, array.Tuple{float64(rng.Intn(9) + 1), 1})
			}
			if _, err := m.ApplyBatch(delta); err != nil {
				t.Fatalf("round %d insert: %v", round, err)
			}
		} else {
			del := array.New(fig1Schema())
			base.EachCell(func(p array.Point, tup array.Tuple) bool {
				if del.NumCells() < 2 && rng.Intn(3) == 0 {
					_ = del.Set(p, tup)
				}
				return true
			})
			if del.NumCells() == 0 {
				continue
			}
			if _, err := m.ApplyDelete(del); err != nil {
				t.Fatalf("round %d delete: %v", round, err)
			}
		}
		verifyView(t, cl, def)
	}
}

func TestApplyDeleteValidation(t *testing.T) {
	// MIN/MAX views refuse deletions.
	cl, err := cluster.New(3, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(fig1Array(), &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	s := fig1Schema()
	def, err := view.NewDefinition("VM", s, s, fig1Def(t).Pred,
		[]string{"i", "j"}, []view.Aggregate{{Kind: view.Max, Attr: "r", As: "m"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(cl, def, Reassign{}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	del := array.New(s)
	_ = del.Set(array.Point{1, 2}, array.Tuple{2, 5})
	if _, err := m.ApplyDelete(del); err == nil {
		t.Error("MIN/MAX view must reject ApplyDelete")
	}
}

// TestFilteredViewMaintenance: attribute filters compose with distributed
// maintenance under every strategy.
func TestFilteredViewMaintenance(t *testing.T) {
	for name, planner := range Strategies() {
		cl, err := cluster.New(3, cluster.WithWorkersPerNode(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.LoadArray(fig1Array(), &cluster.RoundRobin{}); err != nil {
			t.Fatal(err)
		}
		def := fig1Def(t)
		if err := def.SetFilters(nil, []view.Condition{{Attr: "r", Op: view.Le, Value: 4}}); err != nil {
			t.Fatal(err)
		}
		if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
			t.Fatal(err)
		}
		m, err := NewMaintainer(cl, def, planner, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		delta := array.New(fig1Schema())
		_ = delta.Set(array.Point{1, 4}, array.Tuple{9, 9}) // filtered out on β side
		_ = delta.Set(array.Point{2, 2}, array.Tuple{3, 3}) // passes
		if _, err := m.ApplyBatch(delta); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifyView(t, cl, def)
		// Spot check: with the β filter r <= 4, V[1,3] counts only its
		// neighbor (1,2) (r=2) — its own r=6 and the r=9 insertion at (1,4)
		// are filtered off the β side.
		got, err := cl.Gather("V")
		if err != nil {
			t.Fatal(err)
		}
		tup, ok := got.Get(array.Point{1, 3})
		if !ok || tup[0] != 1 {
			t.Errorf("%s: filtered V[1,3] = %v (ok=%v), want count 1", name, tup, ok)
		}
	}
}
