package maintain

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/view"
)

// Context bundles everything a planner needs for one batch: the cluster
// (catalog = S_q, B_q), the view definition, the batch's update units, the
// historical window, and the parameters.
type Context struct {
	Cluster *cluster.Cluster
	Def     *view.Definition
	Units   []view.Unit

	// Catalog namespaces.
	BaseAlpha, BaseBeta   string
	DeltaAlpha, DeltaBeta string
	ViewName              string

	// Model is the cost model plans are priced under. It defaults to the
	// cluster's calibrated model; the query layer overrides Tcpu per shape
	// because join CPU scales with the shape's offset count (the paper's
	// "empirical calibration" of Tcpu is per workload shape).
	Model cluster.CostModel

	// ResultScale scales the differential-result volume shipped per triple
	// relative to B_pq. It defaults to 1 (maintenance, calibrated at the
	// view's shape); the query layer sets it to the relative shape
	// cardinality because larger shapes match more pairs per chunk.
	ResultScale float64

	// Deleting marks the batch as a deletion: the staged chunks hold cells
	// to retract. Join contributions flip sign per the identity
	// ΔV = −(D⋈A) − (A⋈D) + (D⋈D), and ingestion removes the cells.
	Deleting bool

	// ArrayPlacement and ViewPlacement assign homes to new chunks when no
	// optimization does (baseline and differential strategies).
	ArrayPlacement cluster.Placement
	ViewPlacement  cluster.Placement

	History *History
	Params  Params
	Rng     *rand.Rand

	// JoinMemo, when non-nil, lets Execute reuse cached join partials for
	// chunk pairs whose input content hashes match a previously executed
	// pair (the adaptive path's precomputed join state for heavy chunks).
	// It also makes the commit path re-record base-chunk content hashes
	// after folding deltas in, so subsequent batches can address those
	// chunks by content.
	JoinMemo *JoinMemo

	// Trace, when non-nil, receives the per-phase spans and per-node task
	// timings of Execute. A nil trace costs nothing.
	Trace *obs.Trace

	// Ctx, when non-nil, bounds the batch: cancellation or deadline expiry
	// stops scheduling further work in the parallel phases, so a hung node
	// fails the batch (atomically) instead of wedging it.
	Ctx context.Context

	// ScratchSuffix disambiguates the batch's shadow staging namespace
	// ("<view>#stage<suffix>"). The batch-at-a-time path leaves it empty;
	// the streaming pipeline gives every in-flight micro-batch its own
	// suffix so concurrently staged partials never collide.
	ScratchSuffix string

	// RetireOnCommit marks this batch's durable commit barrier as retiring
	// one top-level input batch: the barrier advances the applied-batch
	// cursor (wal.Recovered.Applied) that restart resume indexes the input
	// feed with. Top-level entry points set it; internal applies — the
	// adaptive layer's pending-log materializations, fence pre-applies,
	// promotions — leave it false, because their barriers replay batches
	// that already retired. Rollback barriers never retire regardless.
	RetireOnCommit bool

	viewHints map[array.ChunkKey]int
}

// StagingName returns the batch's shadow staging namespace. The "#" infix
// keeps it out of durable epoch snapshots (see cluster.durableName).
func (c *Context) StagingName() string {
	return c.ViewName + "#stage" + c.ScratchSuffix
}

// execContext returns the batch's context, defaulting to Background.
func (c *Context) execContext() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// NewContext validates and completes a context.
func NewContext(cl *cluster.Cluster, def *view.Definition, units []view.Unit, baseAlpha, baseBeta, deltaAlpha, deltaBeta, viewName string, hist *History, params Params) (*Context, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if cl == nil || def == nil {
		return nil, fmt.Errorf("maintain: nil cluster or definition")
	}
	ctx := &Context{
		Cluster: cl, Def: def, Units: units,
		BaseAlpha: baseAlpha, BaseBeta: baseBeta,
		DeltaAlpha: deltaAlpha, DeltaBeta: deltaBeta,
		ViewName:       viewName,
		Model:          cl.CostModel(),
		ResultScale:    1,
		ArrayPlacement: cluster.HashPlacement{},
		ViewPlacement:  cluster.HashPlacement{},
		History:        hist,
		Params:         params,
		Rng:            rand.New(rand.NewSource(params.Seed)),
	}
	return ctx, nil
}

// SizeOf returns B for a chunk reference from the catalog.
func (c *Context) SizeOf(r view.ChunkRef) int64 {
	return c.Cluster.Catalog().ChunkSize(r.Array, r.Key)
}

// HomeOf returns S for a chunk reference (cluster.Coordinator for staged
// deltas).
func (c *Context) HomeOf(r view.ChunkRef) int {
	home, ok := c.Cluster.Catalog().Home(r.Array, r.Key)
	if !ok {
		return cluster.Coordinator
	}
	return home
}

// PairBytes returns B_pq = B_p + B_q of a unit.
func (c *Context) PairBytes(u view.Unit) int64 {
	return c.SizeOf(u.P) + c.SizeOf(u.Q)
}

// ViewHomeOf returns the current home of a view chunk and whether the chunk
// already exists.
func (c *Context) ViewHomeOf(key array.ChunkKey) (int, bool) {
	return c.Cluster.Catalog().Home(c.ViewName, key)
}

// ViewHomeHint resolves the y = S view home used by stage one of the
// heuristic (the paper fixes the chunk assignment to S when solving for z
// and x): the catalog home for existing view chunks, the static placement
// for new ones. Hints are cached per context.
func (c *Context) ViewHomeHint(key array.ChunkKey) int {
	if h, ok := c.viewHints[key]; ok {
		return h
	}
	h, ok := c.ViewHomeOf(key)
	if !ok {
		h = c.ViewPlacement.Place(key, c.Cluster.NumNodes())
	}
	if c.viewHints == nil {
		c.viewHints = make(map[array.ChunkKey]int)
	}
	c.viewHints[key] = h
	return h
}

// DeltaRefs returns the distinct array-side chunk refs of the batch (the
// "a" chunks of Algorithm 3): every chunk participating in some unit.
func (c *Context) DeltaRefs() []view.ChunkRef {
	seen := make(map[view.ChunkRef]bool)
	var out []view.ChunkRef
	add := func(r view.ChunkRef) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, u := range c.Units {
		add(u.P)
		add(u.Q)
	}
	return out
}

// IsDelta reports whether the ref belongs to a staged delta namespace.
func (c *Context) IsDelta(r view.ChunkRef) bool {
	return r.Array == c.DeltaAlpha || r.Array == c.DeltaBeta
}

// BaseNameFor maps a delta namespace to its base array name (identity for
// base refs).
func (c *Context) BaseNameFor(arrayName string) string {
	switch arrayName {
	case c.DeltaAlpha:
		return c.BaseAlpha
	case c.DeltaBeta:
		return c.BaseBeta
	default:
		return arrayName
	}
}
