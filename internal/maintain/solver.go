package maintain

import (
	"fmt"
	"math"
	"sort"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/view"
)

// maxExhaustiveStates bounds the search space of the reference solver.
const maxExhaustiveStates = 5_000_000

// OptimalPlan exhaustively enumerates join-site and view-home assignments
// and returns a plan with the minimum Eq. 1 single-batch objective. It
// plays the role CPLEX plays in the paper — a ground-truth optimum — but
// only for tiny instances (the problem is NP-hard); larger inputs return an
// error. Array rehoming does not affect the single-batch objective, so new
// delta chunks are assigned to their join sites where possible.
func OptimalPlan(ctx *Context) (*Plan, error) {
	nUnits := len(ctx.Units)
	n := ctx.Cluster.NumNodes()
	viewKeys := affectedViewKeys(ctx)
	states := math.Pow(float64(n), float64(nUnits+len(viewKeys)))
	if states > maxExhaustiveStates {
		return nil, fmt.Errorf("maintain: instance too large for exhaustive search (%d units, %d views, %d nodes)",
			nUnits, len(viewKeys), n)
	}

	joinSites := make([]int, nUnits)
	viewHomes := make([]int, len(viewKeys))
	best := math.Inf(1)
	var bestPlan *Plan

	var rec func(depth int)
	rec = func(depth int) {
		if depth == nUnits+len(viewKeys) {
			p := buildCandidate(ctx, joinSites, viewHomes, viewKeys)
			if cost := p.Cost(ctx); cost < best {
				best = cost
				bestPlan = p
			}
			return
		}
		for j := 0; j < n; j++ {
			if depth < nUnits {
				joinSites[depth] = j
			} else {
				viewHomes[depth-nUnits] = j
			}
			rec(depth + 1)
		}
	}
	rec(0)
	if bestPlan == nil {
		return nil, fmt.Errorf("maintain: no feasible plan found")
	}
	bestPlan.Strategy = "optimal"
	// Give new delta chunks a home so the plan is executable.
	for _, r := range ctx.DeltaRefs() {
		if ctx.IsDelta(r) {
			if _, ok := bestPlan.ArrayRehome[r]; !ok {
				bestPlan.ArrayRehome[r] = ctx.ArrayPlacement.Place(r.Key, n)
			}
		}
	}
	return bestPlan, nil
}

// buildCandidate assembles an executable plan (with the implied minimal
// transfer set) from raw join-site and view-home assignments.
func buildCandidate(ctx *Context, joinSites, viewHomes []int, viewKeys []array.ChunkKey) *Plan {
	p := NewPlan("candidate", len(ctx.Units))
	copy(p.JoinSite, joinSites)
	for i, v := range viewKeys {
		p.ViewHome[v] = viewHomes[i]
	}
	holders := newHolderTracker(ctx, nil)
	for i, u := range ctx.Units {
		p.Transfers = append(p.Transfers, holders.ensure(u.P, joinSites[i])...)
		p.Transfers = append(p.Transfers, holders.ensure(u.Q, joinSites[i])...)
	}
	return p
}

// affectedViewKeys returns the distinct view chunks of the batch, sorted.
func affectedViewKeys(ctx *Context) []array.ChunkKey {
	seen := make(map[array.ChunkKey]bool)
	var out []array.ChunkKey
	for _, u := range ctx.Units {
		for _, v := range u.Views {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Strategies returns the built-in planners keyed by name, for CLIs and
// benches.
func Strategies() map[string]Planner {
	return map[string]Planner{
		"baseline":     Baseline{},
		"differential": Differential{},
		"reassign":     Reassign{},
	}
}

// StrategyNames returns the canonical evaluation order of the built-in
// strategies.
func StrategyNames() []string { return []string{"baseline", "differential", "reassign"} }

var _ = view.ChunkRef{} // keep the import stable across refactors
