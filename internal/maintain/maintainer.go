package maintain

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/view"
)

// Maintainer owns one materialized array view on a cluster and applies
// batch updates to it with a chosen planning strategy. It keeps the
// history window across batches so array reassignment can learn the
// workload.
type Maintainer struct {
	cl       *cluster.Cluster
	def      *view.Definition
	planner  Planner
	params   Params
	history  *History
	rng      *rand.Rand
	batchSeq int
	// memo, when non-nil, is the content-addressed join-state cache shared
	// across this maintainer's batches (set by the adaptive layer or
	// SetJoinMemo); Execute consults it per unit.
	memo *JoinMemo
	// scratch, when non-nil, caches unit lists and optimizer solutions per
	// delta footprint (set by the adaptive layer or SetPlanScratch).
	scratch *PlanScratch

	arrayPlacement cluster.Placement
	viewPlacement  cluster.Placement
}

// Report summarizes one maintained batch.
type Report struct {
	Strategy string
	// MaintenanceSeconds is the plan's simulated cost (Eq. 1): the batch's
	// view maintenance time on the modeled cluster.
	MaintenanceSeconds float64
	// OptimizationSeconds is the measured wall-clock time of triple
	// generation plus planning — the Figure 5 quantity.
	OptimizationSeconds float64
	// TripleGenSeconds is the triple-generation share of optimization,
	// common to all strategies (the paper's "baseline" optimization time).
	TripleGenSeconds float64
	// ExecSeconds is the measured wall-clock time of plan execution — the
	// real data movement and join work on whatever fabric the cluster runs
	// on. Compare against MaintenanceSeconds to validate the cost model.
	ExecSeconds  float64
	NumUnits     int
	NumTriples   int
	NumTransfers int
	Plan         *Plan
	Ledger       *cluster.Ledger
	// Trace is the phase-span breakdown of Execute: where ExecSeconds went
	// (transfer, view-move, join, merge, catalog-refresh, ingest, cleanup)
	// and per-node task busy time.
	Trace *obs.Trace
}

// NewMaintainer wires a maintainer for the given view on the cluster. The
// base array(s) and the materialized view must already be loaded (see
// BuildView).
func NewMaintainer(cl *cluster.Cluster, def *view.Definition, planner Planner, params Params) (*Maintainer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if planner == nil {
		planner = Reassign{}
	}
	if cl.Catalog().Schema(def.Alpha.Name) == nil {
		return nil, fmt.Errorf("maintain: base array %q not loaded", def.Alpha.Name)
	}
	if cl.Catalog().Schema(def.Beta.Name) == nil {
		return nil, fmt.Errorf("maintain: base array %q not loaded", def.Beta.Name)
	}
	// Join pushdown on a remote fabric evaluates the join at the node
	// holding the chunks, which needs the view definition on that side.
	if rf, ok := cl.Fabric().(interface {
		RegisterView(*view.Definition) error
	}); ok {
		if err := rf.RegisterView(def); err != nil {
			return nil, fmt.Errorf("maintain: registering view on fabric: %w", err)
		}
	}
	return &Maintainer{
		cl:             cl,
		def:            def,
		planner:        planner,
		params:         params,
		history:        NewHistory(params.Window),
		rng:            rand.New(rand.NewSource(params.Seed)),
		arrayPlacement: cluster.HashPlacement{},
		viewPlacement:  cluster.HashPlacement{},
	}, nil
}

// SetPlacements overrides the static placement strategies used for new
// chunks by the baseline/differential strategies and fallbacks.
func (m *Maintainer) SetPlacements(arrayP, viewP cluster.Placement) {
	if arrayP != nil {
		m.arrayPlacement = arrayP
	}
	if viewP != nil {
		m.viewPlacement = viewP
	}
	if m.scratch != nil {
		m.scratch.InvalidatePlacement()
	}
}

// SetPlanScratch attaches (or detaches, with nil) a per-footprint cache of
// generated units and solved placements (see PlanScratch).
func (m *Maintainer) SetPlanScratch(s *PlanScratch) { m.scratch = s }

// SetJoinMemo attaches (or detaches, with nil) a cross-batch join-state
// cache. Pass a shared memo to let several maintainers — e.g. the batch
// path and the streaming graph — reuse each other's join results.
func (m *Maintainer) SetJoinMemo(memo *JoinMemo) { m.memo = memo }

// Planner returns the active planning strategy.
func (m *Maintainer) Planner() Planner { return m.planner }

// History exposes the maintained history window (for inspection/tests).
func (m *Maintainer) History() *History { return m.history }

// BuildView materializes the view from the cluster-resident base array(s)
// and distributes it with the given placement. This is the eager initial
// evaluation of the view definition.
func BuildView(cl *cluster.Cluster, def *view.Definition, p cluster.Placement) error {
	alpha, err := cl.Gather(def.Alpha.Name)
	if err != nil {
		return err
	}
	beta := alpha
	if !def.SelfJoin() {
		beta, err = cl.Gather(def.Beta.Name)
		if err != nil {
			return err
		}
	}
	v, err := view.Materialize(def, alpha, beta)
	if err != nil {
		return err
	}
	return cl.LoadArray(v, p)
}

// ApplyBatch incrementally maintains the view under a batch of insertions
// to the base array (self-join views). The delta must be disjoint from the
// current base content at cell granularity.
func (m *Maintainer) ApplyBatch(delta *array.Array) (*Report, error) {
	if !m.def.SelfJoin() {
		return nil, fmt.Errorf("maintain: view %s joins two arrays; use ApplyBatch2", m.def.Name)
	}
	return m.apply(delta, nil, false, false, true)
}

// ApplyDelete incrementally maintains the view under a batch of deletions
// from the base array (self-join views): the staged cells must exist in
// the base (see view.SubsetOf) and every aggregate must be retractable
// (MIN/MAX are not).
func (m *Maintainer) ApplyDelete(del *array.Array) (*Report, error) {
	if !m.def.SelfJoin() {
		return nil, fmt.Errorf("maintain: view %s joins two arrays; deletions are supported for self joins", m.def.Name)
	}
	if !m.def.Retractable() {
		return nil, fmt.Errorf("maintain: view %s has non-retractable aggregates (MIN/MAX)", m.def.Name)
	}
	return m.apply(del, nil, true, false, true)
}

// ApplyBatch2 maintains a two-array view under simultaneous insertions to
// α and/or β (either may be nil).
func (m *Maintainer) ApplyBatch2(dAlpha, dBeta *array.Array) (*Report, error) {
	if m.def.SelfJoin() {
		return nil, fmt.Errorf("maintain: view %s is a self join; use ApplyBatch", m.def.Name)
	}
	return m.apply(dAlpha, dBeta, false, false, true)
}

// apply runs one staged maintenance batch. ephemeral batches — the
// adaptive layer's pending-log materializations — skip the planner's
// history window: their pairs replay activity from original batches in
// bulk, and letting a large coalesced drain haunt the window would inflate
// every subsequent solve's scoring pass. retire marks the batch's durable
// commit barrier as consuming one top-level input batch (see
// Context.RetireOnCommit); ephemeral replays pass false.
func (m *Maintainer) apply(dAlpha, dBeta *array.Array, deleting, ephemeral, retire bool) (*Report, error) {
	m.batchSeq++
	deltaAlphaName := fmt.Sprintf("%s#delta%d", m.def.Alpha.Name, m.batchSeq)
	deltaBetaName := deltaAlphaName
	if !m.def.SelfJoin() {
		deltaBetaName = fmt.Sprintf("%s#delta%d", m.def.Beta.Name, m.batchSeq)
	}

	// Stage the delta chunks at the coordinator.
	if err := m.stage(deltaAlphaName, m.def.Alpha, dAlpha); err != nil {
		return nil, err
	}
	if !m.def.SelfJoin() {
		if err := m.stage(deltaBetaName, m.def.Beta, dBeta); err != nil {
			return nil, err
		}
	}

	// Footprint cache: with cell pruning off, the unit set and the solved
	// placement are pure functions of the delta chunk-key footprint and the
	// base chunk-key generation, so replayed footprints skip triple
	// generation and the optimizer solve entirely. Deletions shrink the
	// base key set, so they bypass and invalidate the scratch.
	useScratch := m.scratch != nil && m.def.SelfJoin() && !deleting && !m.params.CellPruning
	var footprint string
	var cached *scratchEntry
	var newBaseKeys bool
	if useScratch {
		footprint = scratchFootprint(dAlpha.ChunkKeys())
		cached = m.scratch.lookup(footprint)
		for _, k := range dAlpha.ChunkKeys() {
			if _, ok := m.cl.Catalog().Home(m.def.Alpha.Name, k); !ok {
				newBaseKeys = true
				break
			}
		}
	}

	// Preprocessing: generate the update triples from catalog metadata.
	tripleStart := time.Now()
	var units []view.Unit
	var err error
	if cached != nil {
		units = cached.rebuildUnits(m.def.Alpha.Name, deltaAlphaName)
	} else {
		gen := &view.UnitGen{
			Catalog: m.cl.Catalog(), Def: m.def,
			BaseAlpha: m.def.Alpha.Name, BaseBeta: m.def.Beta.Name,
			DeltaAlpha: deltaAlphaName, DeltaBeta: deltaBetaName,
			CellPruning: m.params.CellPruning,
		}
		units, err = gen.Generate()
		if err != nil {
			return nil, err
		}
	}
	tripleGen := time.Since(tripleStart)

	params := m.params
	params.Seed = m.rng.Int63() // fresh randomized order per batch, reproducibly
	ctx, err := NewContext(m.cl, m.def, units,
		m.def.Alpha.Name, m.def.Beta.Name, deltaAlphaName, deltaBetaName,
		m.def.Name, m.history, params)
	if err != nil {
		return nil, err
	}
	ctx.ArrayPlacement = m.arrayPlacement
	ctx.ViewPlacement = m.viewPlacement
	ctx.Deleting = deleting
	ctx.RetireOnCommit = retire
	ctx.JoinMemo = m.memo

	planStart := time.Now()
	var plan *Plan
	if cached != nil {
		plan = cached.rebuildPlan(ctx)
	} else {
		plan, err = m.planner.Plan(ctx)
		if err != nil {
			return nil, err
		}
	}
	planning := time.Since(planStart)

	ctx.Trace = obs.NewTrace()
	execStart := time.Now()
	ledger, err := Execute(ctx, plan)
	if err != nil {
		return nil, err
	}
	execWall := time.Since(execStart)
	if !ephemeral {
		m.history.Record(ctx)
	}
	if useScratch {
		// A batch that added chunk keys to the base invalidates every
		// cached footprint: they solved against a base that no longer
		// exists (and its own solution is equally stale, so it is not
		// stored). Pure-overwrite batches — the replay pattern — leave the
		// key set intact and their solutions reusable.
		if newBaseKeys {
			m.scratch.Invalidate()
		} else if cached == nil {
			m.scratch.store(footprint, ctx, plan)
		}
	}
	if m.scratch != nil && deleting {
		m.scratch.Invalidate()
	}

	nTriples := 0
	for _, u := range units {
		nTriples += len(u.Views)
	}
	return &Report{
		Strategy:            m.planner.Name(),
		MaintenanceSeconds:  ledger.Cost(),
		OptimizationSeconds: (tripleGen + planning).Seconds(),
		TripleGenSeconds:    tripleGen.Seconds(),
		ExecSeconds:         execWall.Seconds(),
		NumUnits:            len(units),
		NumTriples:          nTriples,
		NumTransfers:        plan.NumTransfers(),
		Plan:                plan,
		Ledger:              ledger,
		Trace:               ctx.Trace,
	}, nil
}

// stage registers a per-batch delta namespace and stages the delta's
// chunks at the coordinator, validating the disjoint-insert precondition
// at chunk metadata level (cell-level validation is the caller's job; see
// view.DisjointInsert).
func (m *Maintainer) stage(deltaName string, base *array.Schema, delta *array.Array) error {
	if delta == nil {
		delta = array.New(base)
	}
	schema := *base
	schema.Name = deltaName
	if err := m.cl.Catalog().Register(&schema); err != nil {
		return err
	}
	var chunks []*array.Chunk
	delta.EachChunk(func(c *array.Chunk) bool {
		chunks = append(chunks, c)
		return true
	})
	return m.cl.StageDelta(deltaName, chunks)
}
