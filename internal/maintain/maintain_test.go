package maintain

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/shape"
	"github.com/arrayview/arrayview/internal/simjoin"
	"github.com/arrayview/arrayview/internal/view"
)

func fig1Schema() *array.Schema {
	return array.MustSchema("A",
		[]array.Dimension{
			{Name: "i", Start: 1, End: 6, ChunkSize: 2},
			{Name: "j", Start: 1, End: 8, ChunkSize: 2},
		},
		[]array.Attribute{{Name: "r", Type: array.Int64}, {Name: "s", Type: array.Int64}},
	)
}

func fig1Array() *array.Array {
	a := array.New(fig1Schema())
	for _, c := range []struct {
		p array.Point
		t array.Tuple
	}{
		{array.Point{1, 2}, array.Tuple{2, 5}},
		{array.Point{1, 3}, array.Tuple{6, 3}},
		{array.Point{3, 4}, array.Tuple{2, 9}},
		{array.Point{4, 1}, array.Tuple{2, 1}},
		{array.Point{5, 7}, array.Tuple{4, 8}},
		{array.Point{6, 5}, array.Tuple{4, 3}},
	} {
		if err := a.Set(c.p, c.t); err != nil {
			panic(err)
		}
	}
	return a
}

func fig1Delta() *array.Array {
	d := array.New(fig1Schema())
	for _, p := range []array.Point{{1, 5}, {2, 1}, {2, 3}, {4, 2}, {4, 4}, {5, 4}, {5, 6}} {
		if err := d.Set(p, array.Tuple{1, 1}); err != nil {
			panic(err)
		}
	}
	return d
}

func fig1Def(t *testing.T) *view.Definition {
	t.Helper()
	s := fig1Schema()
	def, err := view.NewDefinition("V", s, s,
		simjoin.NewPred(shape.L1(2, 1), nil),
		[]string{"i", "j"},
		[]view.Aggregate{{Kind: view.Count, As: "cnt"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

// setupFig1 builds a 3-node cluster with array A and view V loaded
// round-robin, plus a maintainer with the given strategy.
func setupFig1(t *testing.T, planner Planner) (*cluster.Cluster, *Maintainer, *view.Definition) {
	t.Helper()
	cl, err := cluster.New(3, cluster.WithWorkersPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(fig1Array(), &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := fig1Def(t)
	if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(cl, def, planner, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return cl, m, def
}

// verifyView gathers base and view from the cluster and checks that the
// view equals a local recomputation.
func verifyView(t *testing.T, cl *cluster.Cluster, def *view.Definition) {
	t.Helper()
	base, err := cl.Gather(def.Alpha.Name)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Gather(def.Name)
	if err != nil {
		t.Fatal(err)
	}
	want, err := view.Materialize(def, base, base)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(got, want) {
		t.Fatal("maintained view diverges from recomputation")
	}
}

func statesEqual(a, b *array.Array) bool {
	ok := true
	check := func(x, y *array.Array) {
		x.EachCell(func(p array.Point, tup array.Tuple) bool {
			got, found := y.Get(p)
			if !found {
				for _, v := range tup {
					if v != 0 {
						ok = false
						return false
					}
				}
				return true
			}
			for i := range tup {
				if got[i] != tup[i] {
					ok = false
					return false
				}
			}
			return true
		})
	}
	check(a, b)
	check(b, a)
	return ok
}

func TestMaintainFigure1AllStrategies(t *testing.T) {
	costs := make(map[string]float64)
	for name, planner := range Strategies() {
		cl, m, def := setupFig1(t, planner)
		rep, err := m.ApplyBatch(fig1Delta())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifyView(t, cl, def)
		if rep.MaintenanceSeconds <= 0 {
			t.Errorf("%s: non-positive maintenance cost", name)
		}
		if rep.NumUnits == 0 || rep.NumTriples < rep.NumUnits {
			t.Errorf("%s: implausible units=%d triples=%d", name, rep.NumUnits, rep.NumTriples)
		}
		costs[name] = rep.MaintenanceSeconds
		// The base array must contain the inserted cells afterwards.
		base, err := cl.Gather("A")
		if err != nil {
			t.Fatal(err)
		}
		if base.NumCells() != 13 {
			t.Errorf("%s: base has %d cells after ingest, want 13", name, base.NumCells())
		}
		// Delta namespaces must be gone.
		for _, k := range cl.Catalog().Keys("A#delta1") {
			t.Errorf("%s: stale delta chunk %v", name, k)
		}
	}
	// The optimized join plan must not be worse than the baseline.
	if costs["differential"] > costs["baseline"]+1e-12 {
		t.Errorf("differential cost %v exceeds baseline %v", costs["differential"], costs["baseline"])
	}
}

func TestMaintainSequenceOfBatches(t *testing.T) {
	// Several disjoint batches applied in sequence stay correct under every
	// strategy, including inserts into already-occupied chunks.
	batches := [][]array.Point{
		{{1, 5}, {2, 1}},
		{{2, 3}, {4, 2}, {1, 1}},
		{{4, 4}, {5, 4}, {5, 6}, {6, 6}},
		{{2, 2}}, // lands in the occupied chunk (0,0)
	}
	for name, planner := range Strategies() {
		cl, m, def := setupFig1(t, planner)
		for bi, pts := range batches {
			d := array.New(fig1Schema())
			for _, p := range pts {
				if err := d.Set(p, array.Tuple{1, float64(bi)}); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := m.ApplyBatch(d); err != nil {
				t.Fatalf("%s batch %d: %v", name, bi, err)
			}
			verifyView(t, cl, def)
		}
	}
}

func TestMaintainEmptyBatch(t *testing.T) {
	cl, m, def := setupFig1(t, Reassign{})
	rep, err := m.ApplyBatch(array.New(fig1Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumUnits != 0 || rep.MaintenanceSeconds != 0 {
		t.Errorf("empty batch: units=%d cost=%v", rep.NumUnits, rep.MaintenanceSeconds)
	}
	verifyView(t, cl, def)
}

func TestMaintainIrrelevantBatch(t *testing.T) {
	// An insert whose chunk neighborhood contains no occupied base chunk
	// produces only the delta-self unit: the paper's "irrelevant update"
	// prunes all base joins at metadata level.
	cl, m, def := setupFig1(t, Differential{})
	d := array.New(fig1Schema())
	_ = d.Set(array.Point{1, 7}, array.Tuple{1, 1})
	rep, err := m.ApplyBatch(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumUnits != 1 {
		t.Errorf("irrelevant batch generated %d units, want 1 (self unit)", rep.NumUnits)
	}
	verifyView(t, cl, def)
}

func TestMaintainChunkGranularityOverApproximation(t *testing.T) {
	// An insert at (6,8) joins no cell, but its chunk's neighborhood
	// overlaps occupied base chunks (2,2) and (2,3): chunk-granularity
	// maintenance evaluates those pairs anyway — the cost the paper accepts
	// to keep metadata small. The view must still come out exact.
	cl, m, def := setupFig1(t, Differential{})
	d := array.New(fig1Schema())
	_ = d.Set(array.Point{6, 8}, array.Tuple{1, 1})
	rep, err := m.ApplyBatch(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumUnits != 3 {
		t.Errorf("chunk-granularity batch generated %d units, want 3", rep.NumUnits)
	}
	verifyView(t, cl, def)
}

func TestPlanValidation(t *testing.T) {
	_, m, def := setupFig1(t, Differential{})
	_ = def
	// Build a context manually via a staged batch, then corrupt plans.
	cl := m.cl
	deltaName := "A#deltaX"
	schema := *fig1Schema()
	schema.Name = deltaName
	if err := cl.Catalog().Register(&schema); err != nil {
		t.Fatal(err)
	}
	d := fig1Delta()
	var chunks []*array.Chunk
	d.EachChunk(func(c *array.Chunk) bool { chunks = append(chunks, c); return true })
	if err := cl.StageDelta(deltaName, chunks); err != nil {
		t.Fatal(err)
	}
	gen := &view.UnitGen{Catalog: cl.Catalog(), Def: m.def,
		BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: deltaName, DeltaBeta: deltaName}
	units, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(cl, m.def, units, "A", "A", deltaName, deltaName, "V", nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	good, err := (Differential{}).Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(ctx); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}

	bad := *good
	bad.JoinSite = append([]int(nil), good.JoinSite...)
	bad.JoinSite[0] = 99
	if err := bad.Validate(ctx); err == nil {
		t.Error("out-of-range join site must be rejected (C3)")
	}

	bad2 := *good
	bad2.Transfers = nil // joins now reference non-resident chunks
	if err := bad2.Validate(ctx); err == nil {
		t.Error("missing transfers must be rejected (C2)")
	}

	bad3 := *good
	bad3.ViewHome = map[array.ChunkKey]int{}
	if err := bad3.Validate(ctx); err == nil {
		t.Error("missing view home must be rejected (C1)")
	}

	bad4 := *good
	bad4.JoinSite = good.JoinSite[:1]
	if err := bad4.Validate(ctx); err == nil {
		t.Error("wrong unit arity must be rejected")
	}
}

func TestHeuristicsVsOptimalOnTinyInstances(t *testing.T) {
	// On instances small enough for exhaustive search, the plans must
	// bracket: optimal ≤ differential-class plans, and every strategy beats
	// nothing (cost ≥ optimal). Empirically the heuristic lands within 2x
	// of optimal on these seeds.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cl, err := cluster.New(2, cluster.WithWorkersPerNode(1))
		if err != nil {
			t.Fatal(err)
		}
		base := array.New(fig1Schema())
		for i := 0; i < 4; i++ {
			_ = base.Set(array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}, array.Tuple{1, 1})
		}
		if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
			t.Fatal(err)
		}
		def := fig1Def(t)
		if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
			t.Fatal(err)
		}
		deltaName := "A#d"
		schema := *fig1Schema()
		schema.Name = deltaName
		_ = cl.Catalog().Register(&schema)
		d := array.New(fig1Schema())
		for i := 0; i < 2; i++ {
			p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
			if _, ok := base.Get(p); !ok {
				_ = d.Set(p, array.Tuple{1, 1})
			}
		}
		var chunks []*array.Chunk
		d.EachChunk(func(c *array.Chunk) bool { chunks = append(chunks, c); return true })
		if err := cl.StageDelta(deltaName, chunks); err != nil {
			t.Fatal(err)
		}
		gen := &view.UnitGen{Catalog: cl.Catalog(), Def: def,
			BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: deltaName, DeltaBeta: deltaName}
		units, err := gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(units) == 0 || len(units) > 5 {
			continue
		}
		ctx, err := NewContext(cl, def, units, "A", "A", deltaName, deltaName, "V", nil, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalPlan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		optCost := opt.Cost(ctx)
		for name, planner := range Strategies() {
			p, err := planner.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(ctx); err != nil {
				t.Fatalf("seed %d %s: invalid plan: %v", seed, name, err)
			}
			c := p.Cost(ctx)
			if c < optCost-1e-12 {
				t.Errorf("seed %d: %s cost %v below exhaustive optimum %v", seed, name, c, optCost)
			}
			if name != "baseline" && optCost > 0 && c > 2*optCost+1e-12 {
				t.Errorf("seed %d: %s cost %v more than 2x optimum %v", seed, name, c, optCost)
			}
		}
	}
}

func TestOptimalPlanRejectsLargeInstances(t *testing.T) {
	cl, _ := cluster.New(8)
	base := fig1Array()
	_ = cl.LoadArray(base, &cluster.RoundRobin{})
	def := fig1Def(t)
	_ = BuildView(cl, def, &cluster.RoundRobin{})
	units := make([]view.Unit, 20)
	for i := range units {
		units[i] = view.Unit{
			P:     view.ChunkRef{Array: "A", Key: array.ChunkCoord{0, 0}.Key()},
			Q:     view.ChunkRef{Array: "A", Key: array.ChunkCoord{0, 0}.Key()},
			Views: []array.ChunkKey{array.ChunkCoord{int64(i), 0}.Key()},
		}
	}
	ctx, _ := NewContext(cl, def, units, "A", "A", "A", "A", "V", nil, DefaultParams())
	if _, err := OptimalPlan(ctx); err == nil {
		t.Error("large instance must be rejected")
	}
}

func TestHistoryWindowEviction(t *testing.T) {
	h := NewHistory(2)
	cl, m, _ := setupFig1(t, Reassign{})
	_ = cl
	m.history = h
	for i := 0; i < 4; i++ {
		d := array.New(fig1Schema())
		_ = d.Set(array.Point{1 + int64(i), 8}, array.Tuple{1, 1})
		if _, err := m.ApplyBatch(d); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 2 {
		t.Errorf("history holds %d batches, want window of 2", h.Len())
	}
	// Nil and zero-window histories are no-ops.
	var nilH *History
	nilH.Record(nil)
	zero := NewHistory(0)
	zero.Record(nil)
	if zero.Len() != 0 {
		t.Error("zero-window history must stay empty")
	}
}

func TestCorrelatedBatchesConvergence(t *testing.T) {
	// Repeated batches hitting the same chunks: reassignment should reduce
	// the maintenance cost after the first batch, and end no worse than the
	// baseline ends. This is the Figure 3 "correlated" effect.
	run := func(planner Planner) []float64 {
		schema := array.MustSchema("A",
			[]array.Dimension{
				{Name: "i", Start: 1, End: 40, ChunkSize: 2},
				{Name: "j", Start: 1, End: 40, ChunkSize: 2},
			},
			[]array.Attribute{{Name: "r", Type: array.Int64}})
		rng := rand.New(rand.NewSource(42))
		base := array.New(schema)
		for i := 0; i < 300; i++ {
			_ = base.Set(array.Point{1 + rng.Int63n(40), 1 + rng.Int63n(40)}, array.Tuple{1})
		}
		cl, err := cluster.New(4, cluster.WithWorkersPerNode(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.LoadArray(base, cluster.HashPlacement{}); err != nil {
			t.Fatal(err)
		}
		def, err := view.NewDefinition("V", schema, schema,
			simjoin.NewPred(shape.L1(2, 1), nil),
			[]string{"i", "j"}, []view.Aggregate{{Kind: view.Count, As: "c"}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := BuildView(cl, def, cluster.HashPlacement{}); err != nil {
			t.Fatal(err)
		}
		m, err := NewMaintainer(cl, def, planner, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		// 6 batches inside the same 10x10 region: correlated updates.
		var costs []float64
		used := make(map[string]bool)
		base.EachCell(func(p array.Point, _ array.Tuple) bool { used[p.String()] = true; return true })
		for b := 0; b < 6; b++ {
			d := array.New(schema)
			for d.NumCells() < 12 {
				p := array.Point{1 + rng.Int63n(10), 1 + rng.Int63n(10)}
				if used[p.String()] {
					continue
				}
				used[p.String()] = true
				_ = d.Set(p, array.Tuple{1})
			}
			rep, err := m.ApplyBatch(d)
			if err != nil {
				t.Fatal(err)
			}
			costs = append(costs, rep.MaintenanceSeconds)
		}
		verifyView(t, cl, def)
		return costs
	}
	baseCosts := run(Baseline{})
	reCosts := run(Reassign{})
	// After warm-up, reassign must beat the baseline on this workload.
	if reCosts[5] >= baseCosts[5] {
		t.Errorf("correlated: reassign final cost %v not below baseline %v", reCosts[5], baseCosts[5])
	}
	sum := func(v []float64) (s float64) {
		for _, x := range v {
			s += x
		}
		return
	}
	if sum(reCosts) >= sum(baseCosts) {
		t.Errorf("correlated: reassign total %v not below baseline total %v", sum(reCosts), sum(baseCosts))
	}
}

func TestMaintainerAPIMisuse(t *testing.T) {
	cl, _ := cluster.New(2)
	_ = cl.LoadArray(fig1Array(), &cluster.RoundRobin{})
	def := fig1Def(t)
	if _, err := NewMaintainer(cl, def, nil, Params{Lambda: 2}); err == nil {
		t.Error("invalid params must be rejected")
	}
	// View not built yet is fine (it appears in catalog after BuildView);
	// but a missing base array is not.
	other, _ := cluster.New(2)
	if _, err := NewMaintainer(other, def, nil, DefaultParams()); err == nil {
		t.Error("missing base array must be rejected")
	}
	_ = BuildView(cl, def, &cluster.RoundRobin{})
	m, err := NewMaintainer(cl, def, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.Planner().Name() != "reassign" {
		t.Error("nil planner must default to reassign")
	}
	if _, err := m.ApplyBatch2(nil, nil); err == nil {
		t.Error("ApplyBatch2 on a self-join view must fail")
	}
}

func TestReportFields(t *testing.T) {
	_, m, _ := setupFig1(t, Reassign{})
	rep, err := m.ApplyBatch(fig1Delta())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != "reassign" {
		t.Errorf("strategy = %q", rep.Strategy)
	}
	if rep.OptimizationSeconds < rep.TripleGenSeconds {
		t.Error("optimization time must include triple generation")
	}
	if rep.Plan == nil || rep.Ledger == nil {
		t.Error("report must carry plan and ledger")
	}
	if rep.Plan.String() == "" {
		t.Error("plan must render")
	}
}

func TestStrategiesRegistry(t *testing.T) {
	s := Strategies()
	for _, name := range StrategyNames() {
		p, ok := s[name]
		if !ok {
			t.Fatalf("strategy %q missing", name)
		}
		if p.Name() != name {
			t.Errorf("strategy %q reports name %q", name, p.Name())
		}
	}
}

func TestTwoArrayMaintenance(t *testing.T) {
	sa := array.MustSchema("X",
		[]array.Dimension{{Name: "i", Start: 1, End: 20, ChunkSize: 4}},
		[]array.Attribute{{Name: "v", Type: array.Float64}})
	sb := array.MustSchema("Y",
		[]array.Dimension{{Name: "i", Start: 1, End: 20, ChunkSize: 5}},
		[]array.Attribute{{Name: "w", Type: array.Float64}})
	def, err := view.NewDefinition("V2", sa, sb,
		simjoin.NewPred(shape.Linf(1, 2), nil),
		[]string{"i"},
		[]view.Aggregate{{Kind: view.Count, As: "c"}, {Kind: view.Sum, Attr: "w", As: "ws"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, planner := range Strategies() {
		cl, err := cluster.New(3, cluster.WithWorkersPerNode(1))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		alpha := array.New(sa)
		beta := array.New(sb)
		for i := 0; i < 8; i++ {
			_ = alpha.Set(array.Point{1 + rng.Int63n(20)}, array.Tuple{1})
			_ = beta.Set(array.Point{1 + rng.Int63n(20)}, array.Tuple{2})
		}
		if err := cl.LoadArray(alpha, &cluster.RoundRobin{}); err != nil {
			t.Fatal(err)
		}
		if err := cl.LoadArray(beta, &cluster.RoundRobin{}); err != nil {
			t.Fatal(err)
		}
		if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
			t.Fatal(err)
		}
		m, err := NewMaintainer(cl, def, planner, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		dA := array.New(sa)
		dB := array.New(sb)
		for i := 0; i < 4; i++ {
			p := array.Point{1 + rng.Int63n(20)}
			if _, ok := alpha.Get(p); !ok {
				_ = dA.Set(p, array.Tuple{3})
			}
			q := array.Point{1 + rng.Int63n(20)}
			if _, ok := beta.Get(q); !ok {
				_ = dB.Set(q, array.Tuple{4})
			}
		}
		if _, err := m.ApplyBatch2(dA, dB); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Verify against local recompute over both gathered bases.
		a2, err := cl.Gather("X")
		if err != nil {
			t.Fatal(err)
		}
		b2, err := cl.Gather("Y")
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Gather("V2")
		if err != nil {
			t.Fatal(err)
		}
		want, err := view.Materialize(def, a2, b2)
		if err != nil {
			t.Fatal(err)
		}
		if !statesEqual(got, want) {
			t.Fatalf("%s: two-array view diverges from recomputation", name)
		}
		if _, err := m.ApplyBatch(dA); err == nil {
			t.Error("ApplyBatch on a two-array view must fail")
		}
	}
}

func TestChargeAccounting(t *testing.T) {
	// A hand-built single-unit scenario with exact charge arithmetic.
	cl, err := cluster.New(2, cluster.WithWorkersPerNode(1),
		cluster.WithCostModel(cluster.CostModel{Tntwk: 1, Tcpu: 1}))
	if err != nil {
		t.Fatal(err)
	}
	base := fig1Array()
	if err := cl.LoadArray(base, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := fig1Def(t)
	if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	pKey := array.ChunkCoord{0, 0}.Key()
	qKey := array.ChunkCoord{0, 1}.Key()
	vKey := array.ChunkCoord{0, 0}.Key()
	units := []view.Unit{{
		P:     view.ChunkRef{Array: "A", Key: pKey},
		Q:     view.ChunkRef{Array: "A", Key: qKey},
		Views: []array.ChunkKey{vKey},
	}}
	ctx, err := NewContext(cl, def, units, "A", "A", "A#none", "A#none", "V", nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bp := ctx.SizeOf(units[0].P)
	bq := ctx.SizeOf(units[0].Q)
	bpq := float64(bp + bq)

	p := NewPlan("manual", 1)
	homeP := mustHome(t, cl, "A", pKey)
	homeQ := mustHome(t, cl, "A", qKey)
	if homeP == homeQ {
		t.Fatalf("test requires chunks on different nodes")
	}
	// Join at homeQ: ship P from homeP; merge at node homeP (forcing the
	// differential shipping charge), view chunk currently at its home.
	p.JoinSite[0] = homeQ
	p.Transfers = []Transfer{{Ref: units[0].P, From: homeP, To: homeQ}}
	curV, _ := cl.Catalog().Home("V", vKey)
	other := 1 - curV
	p.ViewHome[vKey] = other
	ledger := p.Charge(ctx)

	// Expected charges with Tntwk = Tcpu = 1:
	//   transfer:  ntwk[homeP] += B_p
	//   join:      cpu[homeQ]  += B_pq
	//   merge:     cpu[other] += B_pq; if other != homeQ, ntwk[homeQ] += B_pq
	wantNtwk := make([]float64, 2)
	wantCPU := make([]float64, 2)
	wantNtwk[homeP] += float64(bp)
	wantCPU[homeQ] += bpq
	wantCPU[other] += bpq
	if other != homeQ {
		wantNtwk[homeQ] += bpq
	}
	for k := 0; k < 2; k++ {
		if ledger.Ntwk(k) != wantNtwk[k] {
			t.Errorf("ntwk[%d] = %v, want %v", k, ledger.Ntwk(k), wantNtwk[k])
		}
		if ledger.CPU(k) != wantCPU[k] {
			t.Errorf("cpu[%d] = %v, want %v", k, ledger.CPU(k), wantCPU[k])
		}
	}
	if ledger.Cost() <= 0 {
		t.Fatal("cost must be positive")
	}
}

func mustHome(t *testing.T, cl *cluster.Cluster, name string, key array.ChunkKey) int {
	t.Helper()
	h, ok := cl.Catalog().Home(name, key)
	if !ok {
		t.Fatalf("chunk %v of %q not in catalog", key, name)
	}
	return h
}

func TestDeterministicPlansAcrossRuns(t *testing.T) {
	costs := make([]float64, 2)
	for trial := 0; trial < 2; trial++ {
		_, m, _ := setupFig1(t, Reassign{})
		rep, err := m.ApplyBatch(fig1Delta())
		if err != nil {
			t.Fatal(err)
		}
		costs[trial] = rep.MaintenanceSeconds
	}
	if costs[0] != costs[1] {
		t.Errorf("same seed produced different costs: %v vs %v", costs[0], costs[1])
	}
}

func ExampleReport() {
	fmt.Println("strategy baseline|differential|reassign")
	// Output: strategy baseline|differential|reassign
}

// TestParallelCandidatesIdenticalPlans: the parallel candidate evaluation
// must pick bit-identical plans to the serial loop.
func TestParallelCandidatesIdenticalPlans(t *testing.T) {
	mk := func(parallel bool) float64 {
		rng := rand.New(rand.NewSource(7))
		schema := array.MustSchema("A",
			[]array.Dimension{
				{Name: "i", Start: 1, End: 64, ChunkSize: 2},
				{Name: "j", Start: 1, End: 64, ChunkSize: 2},
			},
			[]array.Attribute{{Name: "r", Type: array.Int64}})
		base := array.New(schema)
		for i := 0; i < 400; i++ {
			_ = base.Set(array.Point{1 + rng.Int63n(64), 1 + rng.Int63n(64)}, array.Tuple{1})
		}
		cl, err := cluster.New(16, cluster.WithWorkersPerNode(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.LoadArray(base, cluster.HashPlacement{}); err != nil {
			t.Fatal(err)
		}
		def, err := view.NewDefinition("V", schema, schema,
			simjoin.NewPred(shape.L1(2, 1), nil),
			[]string{"i", "j"}, []view.Aggregate{{Kind: view.Count, As: "c"}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := BuildView(cl, def, cluster.HashPlacement{}); err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		params.ParallelCandidates = parallel
		m, err := NewMaintainer(cl, def, Reassign{}, params)
		if err != nil {
			t.Fatal(err)
		}
		delta := array.New(schema)
		for delta.NumCells() < 30 {
			p := array.Point{1 + rng.Int63n(64), 1 + rng.Int63n(64)}
			if _, ok := base.Get(p); ok {
				continue
			}
			_ = delta.Set(p, array.Tuple{1})
		}
		rep, err := m.ApplyBatch(delta)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaintenanceSeconds
	}
	serial := mk(false)
	parallel := mk(true)
	if serial != parallel {
		t.Errorf("parallel candidates changed the plan: %v vs %v", serial, parallel)
	}
}

// TestPlansAlwaysValidProperty: for random bases, deltas, and strategies,
// every produced plan satisfies the MIP constraints and executes to a view
// identical to recomputation.
func TestPlansAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		planners := []Planner{Baseline{}, Differential{}, Reassign{}}
		planner := planners[rng.Intn(len(planners))]
		cl, err := cluster.New(2+rng.Intn(4), cluster.WithWorkersPerNode(1))
		if err != nil {
			return false
		}
		base := array.New(fig1Schema())
		for i := 0; i < 6+rng.Intn(8); i++ {
			_ = base.Set(array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}, array.Tuple{1, 1})
		}
		placements := []cluster.Placement{&cluster.RoundRobin{}, cluster.HashPlacement{},
			cluster.RangePlacement{Dim: 0, NumChunks: 3}}
		if err := cl.LoadArray(base, placements[rng.Intn(len(placements))]); err != nil {
			return false
		}
		def := fig1Def(t)
		if err := BuildView(cl, def, placements[rng.Intn(len(placements))]); err != nil {
			return false
		}
		params := DefaultParams()
		params.Seed = seed
		params.CellPruning = rng.Intn(2) == 0
		m, err := NewMaintainer(cl, def, planner, params)
		if err != nil {
			return false
		}
		delta := array.New(fig1Schema())
		for i := 0; i < 4; i++ {
			p := array.Point{1 + rng.Int63n(6), 1 + rng.Int63n(8)}
			if _, ok := base.Get(p); ok {
				continue
			}
			_ = delta.Set(p, array.Tuple{1, 1})
		}
		rep, err := m.ApplyBatch(delta)
		if err != nil {
			return false
		}
		_ = rep
		got, err := cl.Gather("V")
		if err != nil {
			return false
		}
		fullBase, err := cl.Gather("A")
		if err != nil {
			return false
		}
		want, err := view.Materialize(def, fullBase, fullBase)
		if err != nil {
			return false
		}
		return statesEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
