package maintain

import (
	"fmt"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/view"
)

// Planner produces a maintenance plan for one batch.
type Planner interface {
	// Name identifies the strategy in reports.
	Name() string
	// Plan solves the batch.
	Plan(ctx *Context) (*Plan, error)
}

// Execute applies a validated plan to the cluster: it performs the chunk
// transfers, runs every chunk-pair join concurrently on its assigned node,
// merges differential results into the view at each view chunk's assigned
// home, ingests the delta chunks into the base array, and applies the
// array chunk reassignments. It returns the plan's deterministic cost
// ledger (the modeled maintenance time of the batch).
//
// Every chunk movement goes through the cluster's fabric: on the default
// LocalFabric this is the paper's in-process simulator; on a network
// fabric the same plan ships real bytes, and joins are pushed down to the
// node holding the chunks when the fabric supports it.
func Execute(ctx *Context, p *Plan) (*cluster.Ledger, error) {
	tr := ctx.Trace

	stop := tr.Start(obs.PhaseValidate)
	err := p.Validate(ctx)
	if err != nil {
		stop()
		return nil, err
	}
	ledger := p.Charge(ctx)
	stop()

	// Phase 1: replicate chunks per the plan (x variables), concurrently
	// grouped by destination node.
	stop = tr.Start(obs.PhaseTransfer)
	err = runTransfers(ctx, p)
	stop()
	if err != nil {
		return nil, err
	}

	// Phase 2: move view chunks whose home changes, so differential merges
	// land on the fresh home.
	stop = tr.Start(obs.PhaseViewMove)
	moved, err := moveViewChunks(ctx, p)
	stop()
	if err != nil {
		return nil, err
	}

	// Phase 3: evaluate joins per node, merging partial differentials into
	// the view as they are produced (asynchronously, as in the paper). The
	// join span is the wall-clock of the whole per-node run; merge busy
	// time and per-node task time accumulate inside it.
	stop = tr.Start(obs.PhaseJoin)
	err = runJoins(ctx, p)
	stop()
	if err != nil {
		return nil, err
	}

	// Phase 4: refresh catalog metadata for every touched view chunk.
	stop = tr.Start(obs.PhaseCatalog)
	err = refreshViewCatalog(ctx, p, moved)
	stop()
	if err != nil {
		return nil, err
	}

	// Phase 5: ingest delta chunks into the base array and apply array
	// chunk reassignments; then drop scratch replicas (the cleanup span is
	// recorded inside, around cleanupBatch).
	if err := ingestAndRehome(ctx, p); err != nil {
		return nil, err
	}
	return ledger, nil
}

// runTransfers executes the plan's Phase-1 replications (x variables)
// concurrently: identical ships — the same chunk bound for the same
// destination — are deduplicated, and the rest are grouped by destination
// node and drained through the cluster's bounded per-node worker pools, so
// a batch shipping to k destinations overlaps its network transfers
// instead of serializing them. The first error aborts the remaining
// queues.
//
// Plans may chain ships (the baseline stages a delta chunk at its placed
// node and fans out from there), so transfers are scheduled in waves: a
// transfer whose source replica is itself created by this plan runs one
// wave after the transfer creating it, preserving the in-order residency
// guarantee Validate checks while everything within a wave runs in
// parallel.
func runTransfers(ctx *Context, p *Plan) error {
	cl := ctx.Cluster
	type ship struct {
		ref view.ChunkRef
		to  int
	}
	seen := make(map[ship]int, len(p.Transfers)) // destination replica → wave it lands in
	var waves []map[int][]cluster.Task
	for _, t := range p.Transfers {
		s := ship{t.Ref, t.To}
		if _, dup := seen[s]; dup {
			continue
		}
		w := 0
		if src, created := seen[ship{t.Ref, t.From}]; created {
			w = src + 1
		}
		seen[s] = w
		for len(waves) <= w {
			waves = append(waves, make(map[int][]cluster.Task))
		}
		waves[w][t.To] = append(waves[w][t.To], func() error {
			return cl.Transfer(nil, t.Ref.Array, t.Ref.Key, t.From, t.To)
		})
	}
	for _, wave := range waves {
		if err := cl.RunPerNode(wave); err != nil {
			return err
		}
	}
	return nil
}

// moveViewChunks relocates existing view chunks to their newly assigned
// homes. Returns the set of keys that physically moved.
func moveViewChunks(ctx *Context, p *Plan) (map[array.ChunkKey]bool, error) {
	cl := ctx.Cluster
	moved := make(map[array.ChunkKey]bool)
	for v, j := range p.ViewHome {
		cur, exists := ctx.ViewHomeOf(v)
		if !exists || cur == j {
			continue
		}
		ch, err := cl.GetAt(cur, ctx.ViewName, v)
		if err != nil {
			return nil, fmt.Errorf("maintain: moving view chunk %v: %w", v, err)
		}
		if err := cl.PutAt(j, ctx.ViewName, ch); err != nil {
			return nil, fmt.Errorf("maintain: moving view chunk %v: %w", v, err)
		}
		if _, err := cl.DeleteAt(cur, ctx.ViewName, v); err != nil {
			return nil, err
		}
		moved[v] = true
	}
	return moved, nil
}

// runJoins executes every unit at its planned node with the cluster's
// per-node worker pools. Each task joins one chunk pair (both orientations
// when required), accumulates per-view-chunk partial state chunks, and
// merges them into the view store of each view chunk's home node. On a
// JoinFabric with the view registered, the join itself executes on the
// remote node (only the differential partials travel back); otherwise the
// chunks are fetched through the fabric and joined here.
func runJoins(ctx *Context, p *Plan) error {
	cl := ctx.Cluster
	def := ctx.Def
	tr := ctx.Trace
	stateSpec := def.StateMergeSpec()
	joinFabric, _ := cl.Fabric().(cluster.JoinFabric)

	tasks := make(map[int][]cluster.Task)
	for i := range ctx.Units {
		i := i
		u := ctx.Units[i]
		site := p.JoinSite[i]
		// Under a deletion batch, contributions retract per the identity
		// ΔV = −(D⋈A) − (A⋈D) + (D⋈D): pairs wholly inside the staged
		// deletion are over-subtracted by the two mixed terms and come back
		// positive.
		sign := 1.0
		if ctx.Deleting && !(ctx.IsDelta(u.P) && ctx.IsDelta(u.Q)) {
			sign = -1
		}
		tasks[site] = append(tasks[site], func() error {
			taskStart := time.Now()
			defer func() { tr.AddNode(site, time.Since(taskStart)) }()
			var partials []*array.Chunk
			if joinFabric != nil {
				remote, err := joinFabric.ExecuteJoin(site, cluster.JoinRequest{
					View:   ctx.ViewName,
					PArray: u.P.Array, PKey: u.P.Key,
					QArray: u.Q.Array, QKey: u.Q.Key,
					BothDirections: u.BothDirections,
					Sign:           sign,
				})
				if err != nil {
					return fmt.Errorf("maintain: unit %d at node %d: %w", i, site, err)
				}
				partials = remote
			} else {
				cp, err := cl.GetAt(site, u.P.Array, u.P.Key)
				if err != nil {
					return fmt.Errorf("maintain: unit %d at node %d: %w", i, site, err)
				}
				cq, err := cl.GetAt(site, u.Q.Array, u.Q.Key)
				if err != nil {
					return fmt.Errorf("maintain: unit %d at node %d: %w", i, site, err)
				}
				parts, err := view.JoinPartials(def, cp, cq, u.BothDirections, sign)
				if err != nil {
					return fmt.Errorf("maintain: unit %d at node %d: %w", i, site, err)
				}
				for _, part := range parts {
					partials = append(partials, part)
				}
			}
			mergeStart := time.Now()
			defer func() { tr.Add(obs.PhaseMerge, time.Since(mergeStart)) }()
			for _, part := range partials {
				home, ok := p.ViewHome[part.Key()]
				if !ok {
					return fmt.Errorf("maintain: partial for unplanned view chunk %v", part.Key().Coord())
				}
				if err := cl.MergeAt(home, ctx.ViewName, part, stateSpec); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return cl.RunPerNode(tasks)
}

// refreshViewCatalog re-reads every planned view chunk at its home and
// updates the catalog (home, size, cells). View chunks that received no
// actual contributions and did not previously exist are skipped.
func refreshViewCatalog(ctx *Context, p *Plan, moved map[array.ChunkKey]bool) error {
	cl := ctx.Cluster
	cat := cl.Catalog()
	for v, j := range p.ViewHome {
		resident, err := cl.HasAt(j, ctx.ViewName, v)
		if err != nil {
			return err
		}
		if !resident {
			if _, exists := ctx.ViewHomeOf(v); exists && !moved[v] {
				// Existing chunk untouched at its old home; nothing to do.
				continue
			}
			if moved[v] {
				return fmt.Errorf("maintain: moved view chunk %v vanished", v.Coord())
			}
			continue // planned but no contributions materialized
		}
		ch, err := cl.GetAt(j, ctx.ViewName, v)
		if err != nil {
			return err
		}
		cat.SetChunk(ctx.ViewName, v, j, ch.SizeBytes(), ch.NumCells())
	}
	return nil
}

// ingestAndRehome folds the staged delta chunks into the base array (or,
// for a deletion batch, removes their cells) and applies the plan's array
// chunk reassignments, then clears scratch replicas from the batch.
func ingestAndRehome(ctx *Context, p *Plan) error {
	deltaNames := []string{ctx.DeltaAlpha}
	if ctx.DeltaBeta != ctx.DeltaAlpha {
		deltaNames = append(deltaNames, ctx.DeltaBeta)
	}
	stop := ctx.Trace.Start(obs.PhaseIngest)
	var err error
	if ctx.Deleting {
		err = removeDeleted(ctx, deltaNames)
	} else {
		err = ingestInserts(ctx, p, deltaNames)
	}
	stop()
	if err != nil {
		return err
	}
	stop = ctx.Trace.Start(obs.PhaseCleanup)
	err = cleanupBatch(ctx, p, deltaNames)
	stop()
	return err
}

// ingestInserts merges the staged insert chunks into the base array and
// applies the plan's array chunk reassignments.
func ingestInserts(ctx *Context, p *Plan, deltaNames []string) error {
	cl := ctx.Cluster
	cat := cl.Catalog()
	n := cl.NumNodes()

	handled := make(map[view.ChunkRef]bool)
	for _, dn := range deltaNames {
		baseName := ctx.BaseNameFor(dn)
		for _, key := range cat.Keys(dn) {
			ref := view.ChunkRef{Array: dn, Key: key}
			ch, err := cl.FetchChunk(dn, key, cluster.Coordinator)
			if err != nil {
				return err
			}
			if baseHome, exists := cat.Home(baseName, key); exists {
				// Merge new cells into the existing base chunk — at its
				// rehome target when the plan moved it and a fresh replica
				// is already there (free: the join plan shipped it), else
				// at its current home.
				baseRef := view.ChunkRef{Array: baseName, Key: key}
				target := baseHome
				if j, ok := p.ArrayRehome[baseRef]; ok && j != baseHome && cat.HasReplica(baseName, key, j) {
					if resident, err := cl.HasAt(j, baseName, key); err == nil && resident {
						target = j
					}
				}
				if err := cl.MergeAt(target, baseName, ch, cluster.MergeSpec{Kind: cluster.MergeCells}); err != nil {
					return err
				}
				merged, err := cl.GetAt(target, baseName, key)
				if err != nil {
					return err
				}
				if target != baseHome {
					if _, err := cl.DeleteAt(baseHome, baseName, key); err != nil {
						return err
					}
				}
				cat.SetChunk(baseName, key, target, merged.SizeBytes(), merged.NumCells())
				if bb, ok := merged.BoundingBox(); ok {
					cat.SetChunkBBox(baseName, key, bb)
				}
				handled[baseRef] = true
				continue
			}
			// Brand-new chunk: home from the plan, falling back to static
			// placement.
			home, ok := p.ArrayRehome[ref]
			if !ok {
				home = ctx.ArrayPlacement.Place(key, n)
			}
			if err := cl.PutAt(home, baseName, ch); err != nil {
				return err
			}
			cat.SetChunk(baseName, key, home, ch.SizeBytes(), ch.NumCells())
			if bb, ok := ch.BoundingBox(); ok {
				cat.SetChunkBBox(baseName, key, bb)
			}
		}
	}

	// Reassign existing base chunks that gained a replica this batch and
	// were not already handled by the delta merge above.
	for ref, j := range p.ArrayRehome {
		if ctx.IsDelta(ref) || handled[ref] {
			continue
		}
		cur, exists := cat.Home(ref.Array, ref.Key)
		if !exists || cur == j {
			continue
		}
		if !cat.HasReplica(ref.Array, ref.Key, j) {
			continue // plan promised a replica; be safe if it is absent
		}
		if resident, err := cl.HasAt(j, ref.Array, ref.Key); err != nil || !resident {
			continue
		}
		if _, err := cl.DeleteAt(cur, ref.Array, ref.Key); err != nil {
			return err
		}
		if err := cat.Rehome(ref.Array, ref.Key, j, true); err != nil {
			return err
		}
	}

	return nil
}

// removeDeleted erases the staged deletion cells from the base array,
// dropping chunks that become empty.
func removeDeleted(ctx *Context, deltaNames []string) error {
	cl := ctx.Cluster
	cat := cl.Catalog()
	for _, dn := range deltaNames {
		baseName := ctx.BaseNameFor(dn)
		for _, key := range cat.Keys(dn) {
			dch, err := cl.FetchChunk(dn, key, cluster.Coordinator)
			if err != nil {
				return err
			}
			baseHome, exists := cat.Home(baseName, key)
			if !exists {
				return fmt.Errorf("maintain: deleting from absent chunk %v of %s", key.Coord(), baseName)
			}
			if err := cl.MergeAt(baseHome, baseName, dch, cluster.MergeSpec{Kind: cluster.MergeErase}); err != nil {
				return err
			}
			remaining, err := cl.GetAt(baseHome, baseName, key)
			if err != nil {
				return err
			}
			if remaining.NumCells() == 0 {
				if _, err := cl.DeleteAt(baseHome, baseName, key); err != nil {
					return err
				}
				cat.DropChunk(baseName, key)
				continue
			}
			cat.SetChunk(baseName, key, baseHome, remaining.SizeBytes(), remaining.NumCells())
			if bb, ok := remaining.BoundingBox(); ok {
				cat.SetChunkBBox(baseName, key, bb)
			}
		}
	}
	return nil
}

// cleanupBatch drops the delta namespaces and scrubs scratch replicas:
// every node that holds a copy of a chunk away from its final home loses
// it. Discards target independent (node, array, key) triples, so they are
// decided serially against the catalog and then drained concurrently
// through the same bounded per-node worker pools as the transfer phase.
func cleanupBatch(ctx *Context, p *Plan, deltaNames []string) error {
	cl := ctx.Cluster
	cat := cl.Catalog()
	n := cl.NumNodes()
	tasks := make(map[int][]cluster.Task)
	for _, dn := range deltaNames {
		for node := 0; node < n; node++ {
			tasks[node] = append(tasks[node], func() error {
				_, err := cl.DropArrayAt(node, dn)
				return err
			})
		}
	}
	type scrub struct {
		ref view.ChunkRef
		to  int
	}
	seen := make(map[scrub]bool, len(p.Transfers))
	for _, t := range p.Transfers {
		if ctx.IsDelta(t.Ref) {
			continue // already dropped with the namespace
		}
		s := scrub{t.Ref, t.To}
		if seen[s] {
			continue
		}
		seen[s] = true
		home, exists := cat.Home(t.Ref.Array, t.Ref.Key)
		if exists && t.To == home {
			continue // the scratch replica became the chunk's home; keep it
		}
		// The chunk vanished (fully deleted) or t.To holds a copy away from
		// the final home; scrub it.
		tasks[t.To] = append(tasks[t.To], func() error {
			_, err := cl.DeleteAt(t.To, t.Ref.Array, t.Ref.Key)
			return err
		})
	}
	if err := cl.RunPerNode(tasks); err != nil {
		return err
	}
	for _, dn := range deltaNames {
		cat.Drop(dn)
	}
	for _, name := range []string{ctx.BaseAlpha, ctx.BaseBeta} {
		cat.ClearReplicas(name)
	}
	return nil
}
