package maintain

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/obs"
	"github.com/arrayview/arrayview/internal/view"
)

// Planner produces a maintenance plan for one batch.
type Planner interface {
	// Name identifies the strategy in reports.
	Name() string
	// Plan solves the batch.
	Plan(ctx *Context) (*Plan, error)
}

// Execute applies a validated plan to the cluster with crash-consistent,
// fault-tolerant semantics: the batch either commits fully or leaves the
// view and base arrays provably unchanged.
//
// The pipeline stages all mutations before touching any live state. Phase 1
// replicates chunks per the plan (transfers whose endpoints are dead are
// skipped — the join phase re-plans around them). Phase 2 runs every
// chunk-pair join at its assigned node, accumulating partial view state
// under a shadow staging namespace ("<view>#stage") instead of merging into
// the view directly; joins and staging merges that hit a dead node fail over
// to surviving nodes with the ledger re-charged. Phase 3 commits: for every
// touched view and base chunk it reads the pre-image, records it in an undo
// log, and applies the final content with idempotent put/delete operations,
// so an ack-lost write can be retried and a failed commit rolls back to the
// exact pre-batch state (including a catalog snapshot). Phase 4 tears down
// staging data, delta namespaces, and scratch replicas best-effort — cleanup
// hiccups never fail a committed batch.
//
// It returns the plan's deterministic cost ledger (the modeled maintenance
// time of the batch, plus any failover re-charges).
func Execute(ctx *Context, p *Plan) (*cluster.Ledger, error) {
	s, err := BeginStaged(ctx, p)
	if err != nil {
		return nil, err
	}
	s.CaptureSnapshots()
	if err := s.RunTransfers(nil); err != nil {
		return nil, s.Abort(err)
	}
	if err := s.RunJoins(); err != nil {
		return nil, s.Abort(err)
	}
	if err := s.Commit(); err != nil {
		return nil, s.Abort(err)
	}
	s.Cleanup()
	// The batch is now fully committed and scrubbed; publish the new epoch
	// so snapshot readers pinning from here see post-batch state. (No-op
	// unless serving has enabled the epoch manager.)
	ctx.Cluster.Epochs().Publish()
	return s.Ledger(), nil
}

// Staged drives one batch through the executor's stages individually, so a
// pipelined caller (internal/stream) can interleave the stages of several
// batches: batch N+1's transfers may run while batch N is joining, as long
// as the batches stage under disjoint scratch namespaces (Context.
// ScratchSuffix) and commits stay serialized in admission order.
//
// The stage protocol is: BeginStaged → RunTransfers → RunJoins →
// CaptureSnapshots → Commit → Cleanup, with Abort replacing the remainder
// after any failed stage. Execute is exactly that sequence for one batch
// (with snapshots captured up front, since nothing commits concurrently).
// Unlike Execute, the staged path leaves epoch publication to the caller —
// the commit sink owns ordering.
type Staged struct {
	ctx    *Context
	plan   *Plan
	es     *execState
	ledger *cluster.Ledger
}

// BeginStaged validates and prices the plan and initializes the batch's
// execution state. No cluster state is touched yet.
func BeginStaged(ctx *Context, p *Plan) (*Staged, error) {
	tr := ctx.Trace
	stop := tr.Start(obs.PhaseValidate)
	defer stop()
	if err := p.Validate(ctx); err != nil {
		return nil, err
	}
	ledger := p.Charge(ctx)
	return &Staged{ctx: ctx, plan: p, es: newExecState(ctx, ledger), ledger: ledger}, nil
}

// Ledger exposes the batch's cost ledger (mutated by failover re-charges
// as stages run).
func (s *Staged) Ledger() *cluster.Ledger { return s.ledger }

// CaptureSnapshots records the catalog metadata of every array the batch
// mutates, as the rollback baseline. The batch-at-a-time path captures
// before its transfers; a pipelined caller must defer the capture until all
// predecessor batches have committed or aborted, so an abort of this batch
// never rolls the catalog back over a predecessor's committed state.
// Calling it more than once keeps the first capture.
func (s *Staged) CaptureSnapshots() {
	stop := s.ctx.Trace.Start(obs.PhaseSnapshot)
	defer stop()
	s.es.captureSnaps(s.ctx, s.plan)
}

// RunTransfers executes the plan's Phase-1 replications. A non-nil skip
// predicate exempts individual ships — the streaming pipeline defers
// transfers whose source chunk an in-flight predecessor batch is about to
// rewrite, re-issuing them (against the then-live catalog) after the
// predecessor commits.
func (s *Staged) RunTransfers(skip func(ref view.ChunkRef, to int) bool) error {
	stop := s.ctx.Trace.Start(obs.PhaseTransfer)
	defer stop()
	return runTransfers(s.ctx, s.plan, skip)
}

// RunJoins evaluates every unit at its planned node, staging partial
// differentials under the batch's scratch namespace.
func (s *Staged) RunJoins() error {
	stop := s.ctx.Trace.Start(obs.PhaseJoin)
	defer stop()
	return runJoins(s.ctx, s.plan, s.es)
}

// Commit folds the staged state into the view and base arrays with
// undo-logged idempotent writes. CaptureSnapshots must have been called.
func (s *Staged) Commit() error {
	stop := s.ctx.Trace.Start(obs.PhaseCommit)
	defer stop()
	if !s.es.snapped {
		return fmt.Errorf("maintain: Commit before CaptureSnapshots")
	}
	if err := commitBatch(s.ctx, s.plan, s.es); err != nil {
		return err
	}
	// Harden the committed batch before acknowledging it: the durable
	// barrier (when a sink is installed) fsyncs the batch's journaled writes
	// and appends the commit cut. On failure the caller aborts, rolling the
	// in-memory commit back, so acked state never outruns recoverable state.
	return durableCommit(s.ctx.Cluster, s.ctx.RetireOnCommit)
}

// Cleanup tears down the batch's scratch state best-effort.
func (s *Staged) Cleanup() {
	stop := s.ctx.Trace.Start(obs.PhaseCleanup)
	defer stop()
	cleanupBatch(s.ctx, s.plan, s.es)
}

// KeepScratch installs a predicate consulted during Cleanup: a scratch
// replica (array chunk at a node) for which keep returns true survives the
// scrub, both physically and in the catalog. The streaming pipeline uses it
// to protect replicas that in-flight successor batches claimed for their
// own joins. Installing any predicate also preserves the base arrays'
// replica records wholesale (successors resolve sources from them).
func (s *Staged) KeepScratch(keep func(ref view.ChunkRef, node int) bool) {
	s.es.keep = keep
}

// Abort undoes the batch — rolls back committed writes, restores catalog
// snapshots, tears down scratch state — and returns the original cause.
// Safe to call after a failure in any stage. Unlike Commit, Abort publishes
// the rollback epoch itself (the live state equals a consistent pre-batch
// state again the moment it returns); a pipelined caller must therefore
// invoke it serialized with commits, from the sink.
func (s *Staged) Abort(cause error) error {
	return s.es.abort(s.ctx, s.plan, cause)
}

// extraShip records a failover-driven chunk copy not present in the plan's
// transfer list, so cleanup can scrub it.
type extraShip struct {
	ref view.ChunkRef
	to  int
}

// execState is the mutable bookkeeping of one Execute call: dead-node
// tracking, the staging location of every view chunk, failover re-charges
// against the (not thread-safe) ledger, and the commit undo log.
type execState struct {
	mu         sync.Mutex
	ledger     *cluster.Ledger
	dead       map[int]bool
	stageHome  map[array.ChunkKey]int
	stageCount map[array.ChunkKey]int
	keyLocks   map[array.ChunkKey]*sync.Mutex
	extra      []extraShip
	snaps      map[string]*cluster.MetaPatch
	snapped    bool
	staging    string
	deltaNames []string
	cm         *committer
	// keep, when non-nil, protects scratch replicas from Cleanup's scrub
	// (see Staged.KeepScratch) and preserves base replica records.
	keep func(ref view.ChunkRef, node int) bool
}

func newExecState(ctx *Context, ledger *cluster.Ledger) *execState {
	es := &execState{
		ledger:     ledger,
		dead:       make(map[int]bool),
		stageHome:  make(map[array.ChunkKey]int),
		stageCount: make(map[array.ChunkKey]int),
		keyLocks:   make(map[array.ChunkKey]*sync.Mutex),
		snaps:      make(map[string]*cluster.MetaPatch),
		staging:    ctx.StagingName(),
		deltaNames: []string{ctx.DeltaAlpha},
	}
	if ctx.DeltaBeta != ctx.DeltaAlpha {
		es.deltaNames = append(es.deltaNames, ctx.DeltaBeta)
	}
	return es
}

// captureSnaps records the rollback baseline of every chunk the batch can
// mutate, so a failed batch restores the catalog to its exact pre-commit
// state. The capture is scoped: join inputs, ingest targets (delta keys
// land in the base namespace), transfer and rehome refs, and the affected
// view chunks. Nothing else changes its catalog entry during the batch, so
// the baseline costs O(batch footprint) instead of O(base size) — with a
// full-array snapshot the capture dominated per-batch overhead and grew
// linearly with the base, breaking the cost-∝-|Δ| contract. First capture
// wins.
func (es *execState) captureSnaps(ctx *Context, p *Plan) {
	if es.snapped {
		return
	}
	es.snapped = true
	cat := ctx.Cluster.Catalog()
	keys := map[string]map[array.ChunkKey]bool{
		ctx.ViewName:  {},
		ctx.BaseAlpha: {},
		ctx.BaseBeta:  {},
	}
	addRef := func(r view.ChunkRef) {
		name := r.Array
		switch name {
		case ctx.DeltaAlpha:
			name = ctx.BaseAlpha
		case ctx.DeltaBeta:
			name = ctx.BaseBeta
		}
		if set, ok := keys[name]; ok {
			set[r.Key] = true
		}
	}
	for i := range ctx.Units {
		u := &ctx.Units[i]
		addRef(u.P)
		addRef(u.Q)
		for _, vk := range u.Views {
			keys[ctx.ViewName][vk] = true
		}
	}
	if p != nil {
		for _, t := range p.Transfers {
			addRef(t.Ref)
		}
		for vk := range p.ViewHome {
			keys[ctx.ViewName][vk] = true
		}
		for r := range p.ArrayRehome {
			addRef(r)
		}
	}
	for name, set := range keys {
		if _, dup := es.snaps[name]; dup {
			continue
		}
		ks := make([]array.ChunkKey, 0, len(set))
		for k := range set {
			ks = append(ks, k)
		}
		if mp, ok := cat.SnapshotMetaScoped(name, ks); ok {
			es.snaps[name] = mp
		}
	}
}

func (es *execState) isDead(node int) bool {
	es.mu.Lock()
	defer es.mu.Unlock()
	return es.dead[node]
}

func (es *execState) markDead(node int) {
	es.mu.Lock()
	es.dead[node] = true
	es.mu.Unlock()
}

// pickAlive returns the lowest-numbered surviving worker.
func (es *execState) pickAlive(n int) (int, error) {
	es.mu.Lock()
	defer es.mu.Unlock()
	return es.pickAliveLocked(n)
}

func (es *execState) pickAliveLocked(n int) (int, error) {
	for node := 0; node < n; node++ {
		if !es.dead[node] {
			return node, nil
		}
	}
	return 0, fmt.Errorf("maintain: no surviving nodes")
}

// chargeTransfer re-charges the ledger for a failover ship. The ledger is
// not thread-safe and join tasks run concurrently, so charges serialize here.
func (es *execState) chargeTransfer(from, to int, size int64) {
	es.mu.Lock()
	es.ledger.ChargeTransferTo(from, to, size)
	es.mu.Unlock()
}

// chargeJoin re-charges a join re-planned onto a surviving node.
func (es *execState) chargeJoin(at int, size int64) {
	es.mu.Lock()
	es.ledger.ChargeJoin(at, size)
	es.mu.Unlock()
}

func (es *execState) keyLock(v array.ChunkKey) *sync.Mutex {
	es.mu.Lock()
	defer es.mu.Unlock()
	lk, ok := es.keyLocks[v]
	if !ok {
		lk = &sync.Mutex{}
		es.keyLocks[v] = lk
	}
	return lk
}

func (es *execState) addExtraShip(ref view.ChunkRef, to int) {
	es.mu.Lock()
	es.extra = append(es.extra, extraShip{ref, to})
	es.mu.Unlock()
}

func (es *execState) extraShips() []extraShip {
	es.mu.Lock()
	defer es.mu.Unlock()
	return append([]extraShip(nil), es.extra...)
}

// abort undoes a failed batch: roll back every committed write, restore the
// catalog snapshots, and tear down staging state. The original cause is
// returned; rollback itself is best-effort (a node that is down never
// received the write being undone).
func (es *execState) abort(ctx *Context, p *Plan, cause error) error {
	if es.cm != nil {
		es.cm.rollback()
	}
	cat := ctx.Cluster.Catalog()
	for _, m := range es.snaps {
		cat.RestoreMetaScoped(m)
	}
	cleanupBatch(ctx, p, es)
	durableRollback(ctx.Cluster)
	// Publish after the rollback completes: live state equals the pre-batch
	// state again, so the new epoch is consistent. Versions retained during
	// the partial commit stay until every reader pinned at or before the
	// aborted epoch releases — a reader racing the rollback itself still
	// resolves them through the retained-live-retained protocol.
	ctx.Cluster.Epochs().Publish()
	return cause
}

// runTransfers executes the plan's Phase-1 replications (x variables)
// concurrently: identical ships — the same chunk bound for the same
// destination — are deduplicated, the rest are grouped by (source,
// destination) route and shipped through Cluster.TransferBatch, so one
// route's whole wave moves in a single pipelined offer/read/write exchange
// instead of two round trips per chunk. Routes are drained through the
// cluster's bounded per-node worker pools, so a batch shipping to k
// destinations overlaps its network transfers instead of serializing them.
// The first error aborts the remaining queues.
//
// Plans may chain ships (the baseline stages a delta chunk at its placed
// node and fans out from there), so transfers are scheduled in waves: a
// transfer whose source replica is itself created by this plan runs one
// wave after the transfer creating it, preserving the in-order residency
// guarantee Validate checks while everything within a wave runs in
// parallel.
//
// A transfer that fails because a node is down — dead destination, or dead
// source with no surviving replica — is skipped rather than fatal: the join
// phase re-plans work around dead nodes and re-fetches from replicas, and a
// chunk that is truly unreachable everywhere fails the batch there,
// atomically. Application failures (chunk not resident on a live node)
// still abort immediately.
// A non-nil skip predicate exempts ships (see Staged.RunTransfers); a
// skipped ship never enters a wave. Callers passing skip must use plans
// without chained ships (a ship sourced from a replica another ship
// creates): the streaming router's plans ship every chunk directly from its
// home, so deferring any subset stays safe.
func runTransfers(ctx *Context, p *Plan, skip func(ref view.ChunkRef, to int) bool) error {
	cl := ctx.Cluster
	type ship struct {
		ref view.ChunkRef
		to  int
	}
	type route struct {
		from, to int
	}
	seen := make(map[ship]int, len(p.Transfers)) // destination replica → wave it lands in
	var waves []map[route][]cluster.TransferItem
	for _, t := range p.Transfers {
		s := ship{t.Ref, t.To}
		if _, dup := seen[s]; dup {
			continue
		}
		if skip != nil && skip(t.Ref, t.To) {
			continue
		}
		w := 0
		if src, created := seen[ship{t.Ref, t.From}]; created {
			w = src + 1
		}
		seen[s] = w
		for len(waves) <= w {
			waves = append(waves, make(map[route][]cluster.TransferItem))
		}
		r := route{t.From, t.To}
		waves[w][r] = append(waves[w][r], cluster.TransferItem{Array: t.Ref.Array, Key: t.Ref.Key})
	}
	for _, wave := range waves {
		tasks := make(map[int][]cluster.Task, len(wave))
		for r, items := range wave {
			r, items := r, items
			tasks[r.to] = append(tasks[r.to], func() error {
				err := cl.TransferBatch(nil, items, r.from, r.to)
				if err == nil || !cluster.IsNodeDown(err) {
					return err
				}
				// A dead endpoint surfaced mid-batch: retry per chunk so
				// live transfers in the group still land (Transfer is
				// idempotent for chunks the batch already moved), skipping
				// the dead ones for the join phase to re-plan around.
				for _, it := range items {
					err := cl.Transfer(nil, it.Array, it.Key, r.from, r.to)
					if err != nil && !cluster.IsNodeDown(err) {
						return err
					}
				}
				return nil
			})
		}
		if err := cl.RunPerNodeCtx(ctx.execContext(), tasks); err != nil {
			return err
		}
	}
	return nil
}

// runJoins executes every unit at its planned node with the cluster's
// per-node worker pools. Each task joins one chunk pair (both orientations
// when required) and stages the per-view-chunk partial state chunks under
// the shadow namespace at each view chunk's planned home. On a JoinFabric
// with the view registered, the join itself executes on the remote node
// (only the differential partials travel back); otherwise the chunks are
// fetched through the fabric and joined here.
//
// A unit whose site is unreachable is re-planned onto a surviving node: the
// input chunks are re-fetched from catalog replicas (shipping them to the
// fallback node when the fabric pushes joins down), the join re-executes
// there, and the ledger is re-charged for the extra work.
func runJoins(ctx *Context, p *Plan, es *execState) error {
	cl := ctx.Cluster
	def := ctx.Def
	tr := ctx.Trace
	stateSpec := def.StateMergeSpec()
	joinFabric, _ := cl.Fabric().(cluster.JoinFabric)

	tasks := make(map[int][]cluster.Task)
	for i := range ctx.Units {
		i := i
		u := ctx.Units[i]
		site := p.JoinSite[i]
		// Under a deletion batch, contributions retract per the identity
		// ΔV = −(D⋈A) − (A⋈D) + (D⋈D): pairs wholly inside the staged
		// deletion are over-subtracted by the two mixed terms and come back
		// positive.
		sign := 1.0
		if ctx.Deleting && !(ctx.IsDelta(u.P) && ctx.IsDelta(u.Q)) {
			sign = -1
		}
		tasks[site] = append(tasks[site], func() error {
			taskStart := time.Now()
			defer func() { tr.AddNode(site, time.Since(taskStart)) }()
			at := site
			// Content-addressed join reuse: when both input hashes are
			// known and a prior batch already joined identical content,
			// stage clones of the cached partials instead of re-running
			// the kernel (or the pushdown round-trip).
			var mk memoKey
			memoable := false
			if ctx.JoinMemo != nil {
				mk, memoable = memoKeyFor(ctx, u, sign)
				if memoable {
					if parts, ok := ctx.JoinMemo.get(mk); ok {
						mergeStart := time.Now()
						defer func() { tr.Add(obs.PhaseMerge, time.Since(mergeStart)) }()
						for _, part := range parts {
							if err := es.stagePartial(ctx, p, part, at, stateSpec); err != nil {
								return err
							}
						}
						return nil
					}
				}
			}
			partials, err := joinUnitAt(ctx, es, u, at, sign, joinFabric)
			if err != nil && cluster.IsNodeDown(err) {
				es.markDead(at)
				partials, at, err = failoverJoin(ctx, es, u, i, sign, joinFabric)
			}
			if err != nil {
				return fmt.Errorf("maintain: unit %d at node %d: %w", i, site, err)
			}
			if memoable {
				ctx.JoinMemo.put(mk, partials)
			}
			mergeStart := time.Now()
			defer func() { tr.Add(obs.PhaseMerge, time.Since(mergeStart)) }()
			for _, part := range partials {
				if err := es.stagePartial(ctx, p, part, at, stateSpec); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return cl.RunPerNodeCtx(ctx.execContext(), tasks)
}

// joinUnitAt evaluates one unit at the given node, pushing the join down
// when the fabric supports it.
func joinUnitAt(ctx *Context, es *execState, u view.Unit, at int, sign float64, joinFabric cluster.JoinFabric) ([]*array.Chunk, error) {
	cl := ctx.Cluster
	if joinFabric != nil {
		return joinFabric.ExecuteJoin(at, cluster.JoinRequest{
			View:   ctx.ViewName,
			PArray: u.P.Array, PKey: u.P.Key,
			QArray: u.Q.Array, QKey: u.Q.Key,
			BothDirections: u.BothDirections,
			Sign:           sign,
		})
	}
	cp, err := cl.GetAt(at, u.P.Array, u.P.Key)
	if err != nil {
		return nil, err
	}
	cq, err := cl.GetAt(at, u.Q.Array, u.Q.Key)
	if err != nil {
		return nil, err
	}
	parts, err := view.JoinPartials(ctx.Def, cp, cq, u.BothDirections, sign)
	if err != nil {
		return nil, err
	}
	return sortedPartials(parts), nil
}

// failoverJoin re-plans a unit whose planned site is dead onto surviving
// nodes. On a pushdown fabric the input chunks are first made resident on
// the fallback node from catalog replicas (recorded as extra ships for
// cleanup and re-charged on the ledger); without pushdown the chunks are
// fetched from any replica and joined in-process. The node that ran the
// join is returned for per-node accounting.
func failoverJoin(ctx *Context, es *execState, u view.Unit, i int, sign float64, joinFabric cluster.JoinFabric) ([]*array.Chunk, int, error) {
	cl := ctx.Cluster
	n := cl.NumNodes()
	for {
		s, err := es.pickAlive(n)
		if err != nil {
			return nil, 0, fmt.Errorf("maintain: unit %d: %w", i, err)
		}
		var parts []*array.Chunk
		if joinFabric != nil {
			err = es.ensureResident(ctx, s, u.P)
			if err == nil {
				err = es.ensureResident(ctx, s, u.Q)
			}
			if err == nil {
				parts, err = joinUnitAt(ctx, es, u, s, sign, joinFabric)
			}
		} else {
			var cp, cq *array.Chunk
			cp, _, err = cl.ReadReplica(u.P.Array, u.P.Key, s)
			if err == nil {
				cq, _, err = cl.ReadReplica(u.Q.Array, u.Q.Key, s)
			}
			if err == nil {
				var pm map[array.ChunkKey]*array.Chunk
				pm, err = view.JoinPartials(ctx.Def, cp, cq, u.BothDirections, sign)
				parts = sortedPartials(pm)
			}
		}
		if err == nil {
			es.chargeJoin(s, ctx.PairBytes(u))
			return parts, s, nil
		}
		if !cluster.IsNodeDown(err) {
			return nil, 0, err
		}
		es.markDead(s)
	}
}

// ensureResident ships a chunk to the node from the nearest live replica
// unless it is already there, re-charging the ledger for the failover copy.
func (es *execState) ensureResident(ctx *Context, node int, ref view.ChunkRef) error {
	cl := ctx.Cluster
	if resident, err := cl.HasAt(node, ref.Array, ref.Key); err == nil && resident {
		return nil
	}
	ch, src, err := cl.ReadReplica(ref.Array, ref.Key, ctx.HomeOf(ref))
	if err != nil {
		return err
	}
	if err := cl.PutAtRetry(node, ref.Array, ch); err != nil {
		return err
	}
	if err := cl.Catalog().AddReplica(ref.Array, ref.Key, node); err != nil {
		return err
	}
	es.chargeTransfer(src, node, ctx.SizeOf(ref))
	es.addExtraShip(ref, node)
	return nil
}

// stagePartial folds one partial view-state chunk into the shadow staging
// namespace at the view chunk's staging home (the planned home while it is
// alive). The first merge for a key may relocate its staging home to a
// surviving node; once any merge has landed, the home is pinned — losing it
// mid-batch means staged contributions are gone and the batch must abort
// (atomically) rather than silently drop state. State merges do not consume
// their source, so re-merging the same partial at a fallback node is safe.
func (es *execState) stagePartial(ctx *Context, p *Plan, part *array.Chunk, site int, spec cluster.MergeSpec) error {
	cl := ctx.Cluster
	v := part.Key()
	home, ok := p.ViewHome[v]
	if !ok {
		return fmt.Errorf("maintain: partial for unplanned view chunk %v", v.Coord())
	}
	lk := es.keyLock(v)
	lk.Lock()
	defer lk.Unlock()

	es.mu.Lock()
	target, pinned := es.stageHome[v]
	if !pinned {
		target = home
		if es.dead[target] {
			alt, err := es.pickAliveLocked(cl.NumNodes())
			if err != nil {
				es.mu.Unlock()
				return err
			}
			target = alt
		}
	}
	count := es.stageCount[v]
	es.mu.Unlock()

	size := part.SizeBytes()
	err := cl.MergeAt(target, es.staging, part, spec)
	if err != nil && cluster.IsNodeDown(err) && count == 0 {
		es.markDead(target)
		alt, aerr := es.pickAlive(cl.NumNodes())
		if aerr != nil {
			return err
		}
		if merr := cl.MergeAt(alt, es.staging, part, spec); merr != nil {
			return merr
		}
		target = alt
		err = nil
	}
	if err != nil {
		return err
	}
	es.mu.Lock()
	es.stageHome[v] = target
	es.stageCount[v] = count + 1
	if target != home {
		// Failover overhead: the plan charged the ship to the planned home.
		es.ledger.ChargeTransferTo(site, target, size)
	}
	es.mu.Unlock()
	return nil
}

// sortedPartials flattens a partials map into view-chunk-key order so every
// execution of the same batch stages merges in the same sequence.
func sortedPartials(m map[array.ChunkKey]*array.Chunk) []*array.Chunk {
	keys := make([]array.ChunkKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]*array.Chunk, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
