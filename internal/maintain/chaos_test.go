package maintain

import (
	"errors"
	"testing"
	"time"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/storage"
	"github.com/arrayview/arrayview/internal/view"
)

// chaosBatch builds the Figure 1 batch on a 3-node cluster whose fabric is
// wrapped in a FaultFabric, and snapshots the pre-batch base and view
// states for atomicity checks.
func chaosBatch(t *testing.T, seed int64) (*Context, *cluster.Cluster, *cluster.FaultFabric, *array.Array, *array.Array) {
	t.Helper()
	stores := make([]*storage.Store, 3)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	ff := cluster.NewFaultFabric(cluster.NewLocalFabric(stores), seed)
	ctx, cl := stageFig1BatchWith(t, cluster.WithFabric(ff.AsFabric()))
	preBase, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	preView, err := cl.Gather("V")
	if err != nil {
		t.Fatal(err)
	}
	return ctx, cl, ff, preBase, preView
}

// replicateAll ships one replica of every chunk of the named arrays to the
// next node over, giving failover somewhere to go.
func replicateAll(t *testing.T, cl *cluster.Cluster, names ...string) {
	t.Helper()
	cat := cl.Catalog()
	for _, name := range names {
		for _, key := range cat.Keys(name) {
			home, ok := cat.Home(name, key)
			if !ok {
				t.Fatalf("no home for %v of %s", key, name)
			}
			to := (home + 1) % cl.NumNodes()
			if err := cl.Transfer(nil, name, key, home, to); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// checkCompleted verifies the post-batch invariant: the base holds the
// delta's cells and the view equals a from-scratch recompute.
func checkCompleted(t *testing.T, cl *cluster.Cluster, ctx *Context) {
	t.Helper()
	base, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	if _, found := base.Get(array.Point{1, 5}); !found {
		t.Fatal("batch reported success but delta cell (1,5) is absent from the base")
	}
	verifyView(t, cl, ctx.Def)
}

// checkAtomic verifies the failed-batch invariant: base and view both equal
// their pre-batch snapshots — no hybrid state.
func checkAtomic(t *testing.T, cl *cluster.Cluster, preBase, preView *array.Array) {
	t.Helper()
	base, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(base, preBase) {
		t.Fatal("failed batch left the base in a hybrid state")
	}
	v, err := cl.Gather("V")
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(v, preView) {
		t.Fatal("failed batch left the view in a hybrid state")
	}
}

// TestChaosFaultMatrix injects one fault class at a time into the Figure 1
// batch and checks the chaos contract: every execution either completes
// (and the view matches a from-scratch recompute) or fails atomically (and
// a gather of base and view equals the pre-batch state).
func TestChaosFaultMatrix(t *testing.T) {
	const (
		wantEither = iota // contract only: completed XOR atomic
		wantComplete
		wantFail
	)
	scenarios := []struct {
		name      string
		replicate bool // pre-ship replicas of A and V
		inject    func(ff *cluster.FaultFabric)
		restore   func(ff *cluster.FaultFabric)
		want      int
	}{
		{
			name: "latency-spikes",
			inject: func(ff *cluster.FaultFabric) {
				ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: cluster.AnyOp,
					Kind: cluster.FaultLatency, Latency: 200 * time.Microsecond, Count: 25})
			},
			want: wantComplete,
		},
		{
			name: "put-ack-lost-once",
			inject: func(ff *cluster.FaultFabric) {
				ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: "Put",
					Kind: cluster.FaultDropAfterWrite, Count: 1})
			},
			want: wantComplete,
		},
		{
			name: "merge-ack-lost-once",
			inject: func(ff *cluster.FaultFabric) {
				// A merge cannot be retried blindly (double-apply), so a
				// lost merge ack must abort the batch atomically.
				ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: "Merge",
					Kind: cluster.FaultDropAfterWrite, Count: 1})
			},
			want: wantFail,
		},
		{
			name:      "transient-get-errors",
			replicate: true,
			inject: func(ff *cluster.FaultFabric) {
				ff.Inject(&cluster.FaultRule{Node: 0, Op: "Get",
					Kind: cluster.FaultError, Count: 2})
			},
			want: wantComplete,
		},
		{
			name:      "node0-dead-all-ops",
			replicate: true,
			inject: func(ff *cluster.FaultFabric) {
				ff.Inject(&cluster.FaultRule{Node: 0, Op: cluster.AnyOp,
					Kind: cluster.FaultError})
			},
			want: wantComplete,
		},
		{
			name:      "blackout-with-replicas",
			replicate: true,
			inject:    func(ff *cluster.FaultFabric) { ff.Blackout(2) },
			restore:   func(ff *cluster.FaultFabric) { ff.Restore(2) },
			want:      wantComplete,
		},
		{
			name:    "blackout-no-replicas",
			inject:  func(ff *cluster.FaultFabric) { ff.Blackout(1) },
			restore: func(ff *cluster.FaultFabric) { ff.Restore(1) },
			want:    wantEither,
		},
		{
			name: "disk-full-one-node",
			inject: func(ff *cluster.FaultFabric) {
				// A persistent non-node-down error is not recoverable by
				// retry or failover; it must surface and roll back. (A
				// single flaky put is absorbed by the put retry loop.)
				ff.Inject(&cluster.FaultRule{Node: 1, Op: "Put",
					Kind: cluster.FaultError, Err: errors.New("store: disk full")})
			},
			want: wantFail,
		},
		{
			name: "flaky-everything-seeded",
			inject: func(ff *cluster.FaultFabric) {
				ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: cluster.AnyOp,
					Kind: cluster.FaultError, P: 0.05})
			},
			want: wantEither,
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ctx, cl, ff, preBase, preView := chaosBatch(t, 42)
			if sc.replicate {
				replicateAll(t, cl, "A", "V")
			}
			p, err := (Differential{}).Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sc.inject(ff)
			_, execErr := Execute(ctx, p)
			// Lift every fault before inspecting state: verification reads
			// must see the cluster, not the chaos.
			ff.ClearRules()
			if sc.restore != nil {
				sc.restore(ff)
			}
			if ff.FaultCounts().Total() == 0 && sc.name != "flaky-everything-seeded" {
				t.Fatal("scenario injected no faults — matrix entry is vacuous")
			}
			switch {
			case execErr == nil:
				if sc.want == wantFail {
					t.Fatal("expected the batch to fail, but it completed")
				}
				checkCompleted(t, cl, ctx)
			default:
				if sc.want == wantComplete {
					t.Fatalf("expected failover to complete the batch, got: %v", execErr)
				}
				checkAtomic(t, cl, preBase, preView)
			}
		})
	}
}

// TestChaosReexecutionAfterFailure checks that a batch that failed
// atomically can be safely re-executed: after the fault clears, re-staging
// and re-running the same delta converges to the correct state.
func TestChaosReexecutionAfterFailure(t *testing.T) {
	ctx, cl, ff, preBase, preView := chaosBatch(t, 7)
	p, err := (Differential{}).Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: "Put",
		Kind: cluster.FaultError, Err: errors.New("store: write refused")})
	if _, err := Execute(ctx, p); err == nil {
		t.Fatal("expected the injected write error to fail the batch")
	}
	ff.ClearRules()
	checkAtomic(t, cl, preBase, preView)

	// The failed batch's scratch state is gone; re-stage the delta under a
	// fresh namespace, exactly as a retrying maintainer would.
	deltaName := "A#x2"
	ds := *fig1Schema()
	ds.Name = deltaName
	if err := cl.Catalog().Register(&ds); err != nil {
		t.Fatal(err)
	}
	var chunks []*array.Chunk
	fig1Delta().EachChunk(func(c *array.Chunk) bool { chunks = append(chunks, c); return true })
	if err := cl.StageDelta(deltaName, chunks); err != nil {
		t.Fatal(err)
	}
	gen := &view.UnitGen{Catalog: cl.Catalog(), Def: ctx.Def,
		BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: deltaName, DeltaBeta: deltaName}
	units, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ctx2, err := NewContext(cl, ctx.Def, units, "A", "A", deltaName, deltaName, "V", nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := (Differential{}).Plan(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(ctx2, p2); err != nil {
		t.Fatal(err)
	}
	checkCompleted(t, cl, ctx2)
}

// TestChaosDeletionAtomicity runs a deletion batch under an injected
// commit-phase failure and checks that erased cells reappear after
// rollback.
func TestChaosDeletionAtomicity(t *testing.T) {
	stores := make([]*storage.Store, 3)
	for i := range stores {
		stores[i] = storage.NewStore()
	}
	ff := cluster.NewFaultFabric(cluster.NewLocalFabric(stores), 11)
	cl, err := cluster.New(3, cluster.WithWorkersPerNode(2), cluster.WithFabric(ff.AsFabric()))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(fig1Array(), &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := fig1Def(t)
	if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(cl, def, Differential{}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	preBase, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	preView, err := cl.Gather("V")
	if err != nil {
		t.Fatal(err)
	}

	// Retract one existing cell; fail the commit's first write.
	del := array.New(fig1Schema())
	if err := del.Set(array.Point{1, 2}, array.Tuple{2, 5}); err != nil {
		t.Fatal(err)
	}
	ff.Inject(&cluster.FaultRule{Node: cluster.AnyNode, Op: "Put",
		Kind: cluster.FaultError, Err: errors.New("store: write refused")})
	if _, err := m.ApplyDelete(del); err == nil {
		t.Fatal("expected the injected write error to fail the deletion batch")
	}
	ff.ClearRules()
	checkAtomic(t, cl, preBase, preView)

	// With the fault cleared the same deletion applies cleanly.
	if _, err := m.ApplyDelete(del); err != nil {
		t.Fatal(err)
	}
	base, err := cl.Gather("A")
	if err != nil {
		t.Fatal(err)
	}
	if _, found := base.Get(array.Point{1, 2}); found {
		t.Fatal("retracted cell survived the deletion batch")
	}
	verifyView(t, cl, def)
}
