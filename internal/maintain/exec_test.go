package maintain

import (
	"strings"
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
)

// stageFig1Batch stages the Figure 1 delta and returns a ready context.
func stageFig1Batch(t *testing.T) (*Context, *cluster.Cluster) {
	t.Helper()
	return stageFig1BatchWith(t)
}

// stageFig1BatchWith is stageFig1Batch with extra cluster options (e.g. a
// custom fabric) appended to the defaults.
func stageFig1BatchWith(t *testing.T, opts ...cluster.Option) (*Context, *cluster.Cluster) {
	t.Helper()
	cl, err := cluster.New(3, append([]cluster.Option{cluster.WithWorkersPerNode(2)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadArray(fig1Array(), &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	def := fig1Def(t)
	if err := BuildView(cl, def, &cluster.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	deltaName := "A#x"
	ds := *fig1Schema()
	ds.Name = deltaName
	if err := cl.Catalog().Register(&ds); err != nil {
		t.Fatal(err)
	}
	var chunks []*array.Chunk
	fig1Delta().EachChunk(func(c *array.Chunk) bool { chunks = append(chunks, c); return true })
	if err := cl.StageDelta(deltaName, chunks); err != nil {
		t.Fatal(err)
	}
	gen := &view.UnitGen{Catalog: cl.Catalog(), Def: def,
		BaseAlpha: "A", BaseBeta: "A", DeltaAlpha: deltaName, DeltaBeta: deltaName}
	units, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(cl, def, units, "A", "A", deltaName, deltaName, "V", nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return ctx, cl
}

func TestExecuteRejectsInvalidPlan(t *testing.T) {
	ctx, _ := stageFig1Batch(t)
	p, err := (Differential{}).Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.JoinSite = append([]int(nil), p.JoinSite...)
	bad.JoinSite[0] = 99
	if _, err := Execute(ctx, &bad); err == nil {
		t.Error("invalid plan must be rejected before execution")
	}
}

func TestExecuteMissingTransferChunk(t *testing.T) {
	ctx, cl := stageFig1Batch(t)
	p, err := (Differential{}).Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: drop a base chunk from its home store so a planned
	// transfer or join fails cleanly instead of corrupting state.
	keys := cl.Catalog().Keys("A")
	home, _ := cl.Catalog().Home("A", keys[0])
	cl.Node(home).Store.Delete("A", keys[0])
	_, err = Execute(ctx, p)
	if err == nil {
		t.Fatal("execution over missing storage must fail")
	}
	if !strings.Contains(err.Error(), "not resident") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestExecuteChargeIsDeterministic(t *testing.T) {
	ctx, _ := stageFig1Batch(t)
	p, err := (Reassign{}).Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c1 := p.Charge(ctx).Cost()
	c2 := p.Charge(ctx).Cost()
	if c1 != c2 {
		t.Errorf("Charge must be deterministic: %v vs %v", c1, c2)
	}
	led, err := Execute(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if led.Cost() != c1 {
		t.Errorf("executed ledger %v differs from plan charge %v", led.Cost(), c1)
	}
}

func TestLedgerFromXZMatchesChargeSubset(t *testing.T) {
	ctx, _ := stageFig1Batch(t)
	p, err := (Differential{}).Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	xz := ledgerFromXZ(ctx, p)
	full := p.Charge(ctx)
	// The x/z-only ledger can never exceed the full charge on any node.
	for k := 0; k < ctx.Cluster.NumNodes(); k++ {
		if xz.Ntwk(k) > full.Ntwk(k)+1e-15 {
			t.Errorf("node %d: xz ntwk %v exceeds full %v", k, xz.Ntwk(k), full.Ntwk(k))
		}
		if xz.CPU(k) > full.CPU(k)+1e-15 {
			t.Errorf("node %d: xz cpu %v exceeds full %v", k, xz.CPU(k), full.CPU(k))
		}
	}
}
