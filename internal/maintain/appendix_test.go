package maintain

// Tests reproducing the worked examples of Appendix B of the paper, with
// the exact arithmetic of Figure 7 (Algorithm 1), Table 2 (Algorithm 2),
// and Figure 8 (Algorithm 3).

import (
	"testing"

	"github.com/arrayview/arrayview/internal/array"
	"github.com/arrayview/arrayview/internal/cluster"
	"github.com/arrayview/arrayview/internal/view"
)

// nodes X, Y, Z of the examples map to 0, 1, 2.
const (
	nodeX = 0
	nodeY = 1
	nodeZ = 2
)

// TestAppendixB1DifferentialChoice reproduces Figure 7: when the triple
// (ΔA7, A2, *) is processed with state
//
//	X: ntwk=0 cpu=4, Y: ntwk=4 cpu=2, Z: ntwk=4 cpu=0,
//
// ΔA7 (size 1) on X and A2 (size 1) on Y, Tntwk=4 and Tcpu=1, the
// candidate costs are X:8, Y:4, Z:8 and the join is assigned to Y.
func TestAppendixB1DifferentialChoice(t *testing.T) {
	model := cluster.CostModel{Tntwk: 4, Tcpu: 1}
	cl, err := cluster.New(3, cluster.WithCostModel(model))
	if err != nil {
		t.Fatal(err)
	}
	cat := cl.Catalog()
	schema := array.MustSchema("A",
		[]array.Dimension{{Name: "i", Start: 1, End: 6, ChunkSize: 2}}, nil)
	if err := cat.Register(schema); err != nil {
		t.Fatal(err)
	}
	dschema := *schema
	dschema.Name = "D"
	if err := cat.Register(&dschema); err != nil {
		t.Fatal(err)
	}
	dA7 := view.ChunkRef{Array: "D", Key: array.ChunkCoord{0}.Key()}
	a2 := view.ChunkRef{Array: "A", Key: array.ChunkCoord{1}.Key()}
	cat.SetChunk("D", dA7.Key, nodeX, 1, 1)
	cat.SetChunk("A", a2.Key, nodeY, 1, 1)

	// The figure's walk-through prices only co-location and join CPU, so
	// the unit carries no view targets here (merge terms are exercised by
	// the B2 example).
	unit := view.Unit{P: dA7, Q: a2}
	def := fig1Def(t)
	ctx, err := NewContext(cl, def, []view.Unit{unit}, "A", "A", "D", "D", "V", nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	ledger := cl.NewLedger()
	ledger.Apply([]float64{0, 4, 4}, []float64{4, 2, 0})
	holders := newHolderTracker(ctx, nil)

	dest := chooseJoinSite(ctx, ledger, holders, unit, model)
	if dest != nodeY {
		t.Fatalf("join assigned to node %d, want Y (%d)", dest, nodeY)
	}
	// Check the three candidate opt_now values the figure reports.
	wantOptNow := map[int]float64{nodeX: 8, nodeY: 4, nodeZ: 8}
	for j, want := range wantOptNow {
		extraNtwk := make([]float64, 3)
		extraCPU := make([]float64, 3)
		addJoinCharges(ctx, holders, unit, j, model, extraNtwk, extraCPU)
		if got := ledger.CostWith(extraNtwk, extraCPU); got != want {
			t.Errorf("opt_now for node %d = %v, want %v", j, got, want)
		}
	}
	// Committing updates the ledger exactly as the figure's bottom row.
	commitJoinSite(ctx, ledger, holders, unit, dest, model)
	if ledger.Ntwk(nodeX) != 4 || ledger.CPU(nodeY) != 4 {
		t.Errorf("after commit: ntwk[X]=%v cpu[Y]=%v, want 4 and 4",
			ledger.Ntwk(nodeX), ledger.CPU(nodeY))
	}
}

// TestAppendixB2ViewChunkChoice reproduces Table 2: with per-node state
// ntwk=(32,36,30), cpu=(36,30,35), joins J1,J2 on X and J3 on Y (B_pq = 1
// each), Tntwk=4 and Tcpu=2, assigning V1 to X/Y/Z costs 42/40/41 and Y
// wins.
func TestAppendixB2ViewChunkChoice(t *testing.T) {
	model := cluster.CostModel{Tntwk: 4, Tcpu: 2}
	ledger := cluster.NewLedger(3, model)
	ledger.Apply([]float64{32, 36, 30}, []float64{36, 30, 35})
	contribs := []viewContrib{
		{site: nodeX, bytes: 1, ship: 1}, // J1: ΔA1 ⋈ A1 on X
		{site: nodeX, bytes: 1, ship: 1}, // J2: ΔA4 ⋈ A1 on X
		{site: nodeY, bytes: 1, ship: 1}, // J3: ΔA2 ⋈ A1 on Y
	}
	wantCosts := map[int]float64{nodeX: 42, nodeY: 40, nodeZ: 41}
	for j, want := range wantCosts {
		extraNtwk := make([]float64, 3)
		extraCPU := make([]float64, 3)
		addViewCharges(extraNtwk, extraCPU, model, contribs, j)
		if got := ledger.CostWith(extraNtwk, extraCPU); got != want {
			t.Errorf("opt_now for V1 at node %d = %v, want %v", j, got, want)
		}
	}
	if dest := chooseViewHome(ledger, model, contribs, -1); dest != nodeY {
		t.Errorf("V1 assigned to node %d, want Y (%d)", dest, nodeY)
	}
}

// TestAppendixB3ArrayChunkGreedy reproduces Figure 8: scores (A2,V1)=8,
// (A1,V1)=6, (A1,V2)=4, (A2,V3)=4, (A3,V3)=2; view homes V1→Y, V2→X,
// V3→Z; replicas A1:{X,Z}, A2:{Y,Z}, A3:{Z,Y}; quotas X=4, Y=3, Z=1; all
// chunk sizes 1. Expected assignment: A2→Y, A1→X (skipping V1 because A1
// has no replica on Y), A3→Z.
func TestAppendixB3ArrayChunkGreedy(t *testing.T) {
	ref := func(name string) view.ChunkRef {
		return view.ChunkRef{Array: "A", Key: array.ChunkKey(name)}
	}
	vkey := func(name string) array.ChunkKey { return array.ChunkKey(name) }
	pairs := []scoredPair{
		{ref: ref("A2"), viewKey: vkey("V1"), score: 8},
		{ref: ref("A1"), viewKey: vkey("V1"), score: 6},
		{ref: ref("A1"), viewKey: vkey("V2"), score: 4},
		{ref: ref("A2"), viewKey: vkey("V3"), score: 4},
		{ref: ref("A3"), viewKey: vkey("V3"), score: 2},
	}
	viewHomes := map[array.ChunkKey]int{
		vkey("V1"): nodeY, vkey("V4"): nodeY, vkey("V7"): nodeY,
		vkey("V2"): nodeX, vkey("V6"): nodeX,
		vkey("V3"): nodeZ, vkey("V5"): nodeZ, vkey("V8"): nodeZ,
	}
	replicas := map[view.ChunkRef]map[int]bool{
		ref("A1"): {nodeX: true, nodeZ: true},
		ref("A2"): {nodeY: true, nodeZ: true},
		ref("A3"): {nodeZ: true, nodeY: true},
	}
	quota := []float64{4, 3, 1} // X, Y, Z

	assigned, bestView := greedyCoLocate(pairs, quota,
		func(view.ChunkRef) int64 { return 1 },
		func(v array.ChunkKey) (int, bool) { h, ok := viewHomes[v]; return h, ok },
		func(r view.ChunkRef, j int) bool { return replicas[r][j] },
	)
	want := map[view.ChunkRef]int{
		ref("A2"): nodeY,
		ref("A1"): nodeX,
		ref("A3"): nodeZ,
	}
	for r, node := range want {
		if got, ok := assigned[r]; !ok || got != node {
			t.Errorf("%s assigned to %v (ok=%v), want node %d", r.Key, got, ok, node)
		}
	}
	// Z's quota is exhausted after A3.
	if quota[nodeZ] != 0 {
		t.Errorf("Z quota = %v, want 0", quota[nodeZ])
	}
	// Highest-score view per chunk (the tight-quota fallback input).
	if bestView[ref("A2")] != vkey("V1") || bestView[ref("A1")] != vkey("V1") || bestView[ref("A3")] != vkey("V3") {
		t.Errorf("bestView = %v", bestView)
	}
}

// TestAppendixB3QuotaExhaustion: with zero quota nothing is assigned and
// every chunk keeps its location (Algorithm 3 line 14 / the fallback).
func TestAppendixB3QuotaExhaustion(t *testing.T) {
	pairs := []scoredPair{
		{ref: view.ChunkRef{Array: "A", Key: "A1"}, viewKey: "V1", score: 5},
	}
	assigned, _ := greedyCoLocate(pairs, []float64{0, 0, 0},
		func(view.ChunkRef) int64 { return 1 },
		func(array.ChunkKey) (int, bool) { return nodeX, true },
		func(view.ChunkRef, int) bool { return true },
	)
	if len(assigned) != 0 {
		t.Errorf("zero quota assigned %d chunks, want 0", len(assigned))
	}
}
